(* Regression gate over the two perf claims that matter (ISSUE 8 /
   docs/parallel.md): hybrid bit-vector word ops must stay near-linear
   in program size, and a 4-way pool must never cost more than a
   pinned overhead factor versus sequential.  Reduced configuration so
   it is cheap enough for the default make flow (`make bench-check`);
   exit code 1 on any regression.

   Pins are deliberately conservative: they are tripwires for
   accidental quadratic blowups or pool-startup regressions, not tight
   performance assertions.

   Two word-ops ladders, because the families answer different
   questions:

   - [fortran_fixed] holds the global population constant, so summary
     sets are bounded and total word work should be genuinely linear
     in program size (~2x per doubling).  This is where the paper's
     O(N+E) bound is visible in word counts; a regression here means
     the hybrid representation or the compact escape universe broke.

   - [fortran_style] scales globals with n, so the summary sets
     themselves grow ~4x per doubling — total output size is
     inherently quadratic and no representation can beat
     Σ_edges |GMOD(src)| words.  The pin here asserts we stay near
     that information floor (dense vectors gave ~4x per doubling at
     these sizes; hybrid + renumbering gives ~2.2x). *)

module A = Core.Analyze

let parse_ladder env default =
  (* Override for ad-hoc probing, e.g. SIDEFX_BENCH_LADDER=512,1024,2048. *)
  match Sys.getenv_opt env with
  | Some s -> List.map int_of_string (String.split_on_char ',' s)
  | None -> default

let word_ops_ladders =
  [
    ( "fortran_fixed",
      Workload.Families.fortran_fixed,
      parse_ladder "SIDEFX_BENCH_LADDER_FIXED" [ 256; 512; 1024; 2048 ],
      (* linear regime: 2x per doubling + headroom *)
      2.4 );
    ( "fortran_style",
      Workload.Families.fortran_style,
      parse_ladder "SIDEFX_BENCH_LADDER" [ 128; 256; 512; 1024 ],
      (* near the quadratic-output information floor *)
      2.5 );
  ]

(* Pool overhead: minimum jobs-4 / jobs-1 wall-clock ratio on the
   2048-proc families.  The floor depends on what the host can
   deliver: with >= 4 cores the pool must actually win (ISSUE 8 claims
   >1.5x there); with fewer cores extra domains can only add GC
   rendezvous cost, so the floor just bounds that overhead. *)
let speedup_families =
  [ ("fortran_style", Workload.Families.fortran_style);
    ("dag_style", Workload.Families.dag_style) ]

let speedup_n = 2048
let speedup_jobs = 4

let speedup_floor =
  let cores = Domain.recommended_domain_count () in
  if cores >= speedup_jobs then 1.5 else if cores >= 2 then 0.85 else 0.5

let reps = 3

let word_ops_metric = Obs.Metric.counter "bitvec.word_ops"

let failures = ref 0

let check name ok detail =
  Printf.printf "   [%s] %s — %s\n%!" (if ok then "ok" else "FAIL") name detail;
  if not ok then incr failures

let timed f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let gmod_word_ops build n =
  let prog = build ~seed:7 ~n in
  let info = Ir.Info.make prog in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build prog in
  let imod = Frontend.Local.imod info in
  let rmod = Core.Rmod.solve binding ~imod in
  let imod_plus = Core.Imod_plus.compute info ~rmod ~imod in
  let snap = Obs.Metric.snapshot () in
  ignore (Core.Gmod.solve info call ~imod_plus);
  Obs.Metric.value_since ~since:snap word_ops_metric

(* The must-side dual of the ladder above: MUSTMOD alone, after the
   may-side inputs it consumes are in hand.  On [fortran_fixed]'s
   bounded summaries the pass must stay in the linear regime. *)
let mustmod_word_ops build n =
  let prog = build ~seed:7 ~n in
  let a = A.run prog in
  let snap = Obs.Metric.snapshot () in
  ignore (Core.Mustmod.solve a.A.info a.A.call ~alias:a.A.alias ~gmod:a.A.gmod);
  Obs.Metric.value_since ~since:snap word_ops_metric

let mustmod_ladder =
  parse_ladder "SIDEFX_BENCH_LADDER_MUST" [ 256; 512; 1024; 2048 ]

(* MUSTMOD rounds per procedure wobble with the random call graph's
   SCC shapes (the chaotic iteration of a giant component converges
   through more intermediate values as its diameter grows), so
   individual doubling steps are noisy.  The gate is therefore the
   growth exponent fitted across the whole ladder — 1.0 is linear,
   2.0 is quadratic; measured ~1.3 with the compact frames — plus a
   loose per-step cap that catches a localized cliff. *)
let mustmod_exponent_max = 1.6
let mustmod_step_max = 4.0

let () =
  Printf.printf "== bench-check: pinned perf regressions (reduced config) ==\n";
  (* 1. word-ops growth ladders *)
  List.iter
    (fun (family, build, ladder, ratio_max) ->
      let counts = List.map (fun n -> (n, gmod_word_ops build n)) ladder in
      List.iter
        (fun (n, w) ->
          Printf.printf "   %s gmod_word_ops n=%-5d %d\n%!" family n w)
        counts;
      let rec ratios = function
        | (n0, w0) :: ((n1, w1) :: _ as rest) ->
          let r = float_of_int w1 /. float_of_int (max 1 w0) in
          check
            (Printf.sprintf "%s word-ops growth %d->%d" family n0 n1)
            (r <= ratio_max)
            (Printf.sprintf "%.2fx per doubling (max %.2f)" r ratio_max);
          ratios rest
        | _ -> ()
      in
      ratios counts)
    word_ops_ladders;
  (* 1b. MUSTMOD growth-exponent gate on the linear regime *)
  let counts =
    List.map
      (fun n -> (n, mustmod_word_ops Workload.Families.fortran_fixed n))
      mustmod_ladder
  in
  List.iter
    (fun (n, w) ->
      Printf.printf "   fortran_fixed mustmod_word_ops n=%-5d %d\n%!" n w)
    counts;
  let rec must_steps = function
    | (n0, w0) :: ((n1, w1) :: _ as rest) ->
      let r = float_of_int w1 /. float_of_int (max 1 w0) in
      check
        (Printf.sprintf "mustmod word-ops step %d->%d" n0 n1)
        (r <= mustmod_step_max)
        (Printf.sprintf "%.2fx per doubling (cliff cap %.2f)" r mustmod_step_max);
      must_steps rest
    | _ -> ()
  in
  must_steps counts;
  (match (counts, List.rev counts) with
  | (n0, w0) :: _, (n1, w1) :: _ when n1 > n0 ->
    let e =
      log (float_of_int w1 /. float_of_int (max 1 w0))
      /. log (float_of_int n1 /. float_of_int n0)
    in
    check
      (Printf.sprintf "mustmod word-ops growth exponent %d..%d" n0 n1)
      (e <= mustmod_exponent_max)
      (Printf.sprintf "n^%.2f fitted over the ladder (max n^%.2f)" e
         mustmod_exponent_max)
  | _ -> ());
  (* 2. jobs-4 overhead + bit-identity on the 2048-proc families *)
  Printf.printf "   speedup floor %.2f (recommended_domain_count %d)\n%!"
    speedup_floor
    (Domain.recommended_domain_count ());
  List.iter
    (fun (family, build) ->
      let prog = build ~seed:7 ~n:speedup_n in
      let seq = A.run prog in
      let seq_s = timed (fun () -> A.run prog) in
      let pool = Par.Pool.create ~jobs:speedup_jobs in
      Fun.protect
        ~finally:(fun () -> Par.Pool.shutdown pool)
        (fun () ->
          let par = A.run ~pool prog in
          let identical =
            Array.for_all2 Bitvec.equal seq.A.gmod par.A.gmod
            && Array.for_all2 Bitvec.equal seq.A.guse par.A.guse
            && Array.for_all2 Bitvec.equal seq.A.mustmod.Core.Mustmod.mustmod
                 par.A.mustmod.Core.Mustmod.mustmod
            && Array.for_all2 Bool.equal seq.A.rmod.Core.Rmod.rmod
                 par.A.rmod.Core.Rmod.rmod
          in
          check
            (Printf.sprintf "%s n=%d jobs-%d identity" family speedup_n
               speedup_jobs)
            identical "summaries bit-identical to sequential";
          let par_s = timed (fun () -> A.run ~pool prog) in
          let speedup = seq_s /. Float.max par_s 1e-9 in
          check
            (Printf.sprintf "%s n=%d jobs-%d speedup" family speedup_n
               speedup_jobs)
            (speedup >= speedup_floor)
            (Printf.sprintf "%.2fx (floor %.2f; seq %.4fs, par %.4fs)" speedup
               speedup_floor seq_s par_s)))
    speedup_families;
  if !failures > 0 then begin
    Printf.printf "bench-check: %d failure(s)\n" !failures;
    exit 1
  end
  else Printf.printf "bench-check: all pins hold\n"
