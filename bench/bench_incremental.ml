(* Incremental vs from-scratch re-analysis after single-procedure
   edits (experiment for the incremental engine; see
   docs/incremental.md).

   Workload: the two chain families whose condensation makes locality
   visible — [ref_chain n] (main -> p1 -> ... -> pn through one by-ref
   formal) and [global_chain n] (same spine, effects through a global).
   The edit stream alternates adding and removing [g0 := 1] at the head
   procedure [p1], whose ancestor cone is just {main, p1}; every edit
   flips IMOD(p1), so nothing is amortised away by no-op detection.

   Every edit is also an equality assertion: the engine's GMOD/GUSE and
   RMOD/RUSE are compared bit for bit against the fresh run it is being
   timed against.

     dune exec bench/bench_incremental.exe                  # writes BENCH_incremental.json
     dune exec bench/bench_incremental.exe -- --jobs 4      # cone re-solves on a 4-way pool *)

module A = Core.Analyze
module Engine = Incremental.Engine
module Edit = Incremental.Edit

let edits_per_size = 20

(* --jobs N: run both sides (engine cone re-solves and the from-scratch
   baseline) on a shared domain pool; output is identical by the
   determinism contract, only the timings move. *)
let jobs =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then 1
    else if Sys.argv.(i) = "--jobs" then int_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  Par.Pool.effective_jobs (scan 1)

let pool = if jobs > 1 then Some (Par.Pool.create ~jobs) else None
let () = at_exit (fun () -> Option.iter Par.Pool.shutdown pool)

let bool_arrays_equal = Array.for_all2 Bool.equal
let vec_arrays_equal = Array.for_all2 Bitvec.equal

let assert_equal ~family ~n ~i (inc : A.t) (batch : A.t) =
  let ok =
    bool_arrays_equal inc.A.rmod.Core.Rmod.rmod batch.A.rmod.Core.Rmod.rmod
    && bool_arrays_equal inc.A.ruse.Core.Rmod.rmod batch.A.ruse.Core.Rmod.rmod
    && vec_arrays_equal inc.A.gmod batch.A.gmod
    && vec_arrays_equal inc.A.guse batch.A.guse
  in
  if not ok then
    failwith
      (Printf.sprintf "%s n=%d edit %d: incremental result diverges from batch"
         family n i)

(* One family at one size: drive the same edit stream through the
   engine and through from-scratch analysis, timing each side. *)
let measure family build n =
  let prog = build n in
  let p1 = (Option.get (Ir.Prog.find_proc prog "p1")).Ir.Prog.pid in
  let g0 = (Option.get (Ir.Prog.find_var prog ~proc:p1 "g0")).Ir.Prog.vid in
  let add = Edit.Add_assign { proc = p1; target = g0; value = Ir.Expr.Int 1 } in
  let base_len = List.length (Ir.Prog.proc prog p1).Ir.Prog.body in
  let remove = Edit.Remove_assign { proc = p1; index = base_len } in
  let resolved = Obs.Metric.counter "incremental.procs_resolved" in
  let fallbacks = Obs.Metric.counter "incremental.full_fallbacks" in
  let snap = Obs.Metric.snapshot () in
  let gc0 = Gc.quick_stat () in
  let engine = Engine.create ?pool prog in
  let inc_time = ref 0.0 and batch_time = ref 0.0 in
  let cur = ref prog in
  for i = 0 to edits_per_size - 1 do
    let edit = if i mod 2 = 0 then add else remove in
    let t0 = Obs.Clock.now () in
    let (_ : Engine.outcome) = Engine.apply engine edit in
    inc_time := !inc_time +. (Obs.Clock.now () -. t0);
    cur := Edit.apply !cur edit;
    let t0 = Obs.Clock.now () in
    let batch = A.run ?pool !cur in
    batch_time := !batch_time +. (Obs.Clock.now () -. t0);
    assert_equal ~family ~n ~i (Engine.analysis engine) batch
  done;
  let speedup = !batch_time /. Float.max !inc_time 1e-9 in
  Printf.printf "   %-12s %6d | %10.6f %10.6f | %8.1fx | %6d %4d\n" family n
    !inc_time !batch_time speedup
    (Obs.Metric.value_since ~since:snap resolved)
    (Obs.Metric.value_since ~since:snap fallbacks);
  Obs.Json.Obj
    [
      ("family", Obs.Json.String family);
      ("n_procs", Obs.Json.Int n);
      ("edits", Obs.Json.Int edits_per_size);
      ("incremental_s", Obs.Json.Float !inc_time);
      ("batch_s", Obs.Json.Float !batch_time);
      ("speedup", Obs.Json.Float speedup);
      ( "procs_resolved",
        Obs.Json.Int (Obs.Metric.value_since ~since:snap resolved) );
      ( "full_fallbacks",
        Obs.Json.Int (Obs.Metric.value_since ~since:snap fallbacks) );
      ( "major_collections",
        Obs.Json.Int
          ((Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections)
      );
      ("top_heap_words", Obs.Json.Int (Gc.quick_stat ()).Gc.top_heap_words);
    ]

let () =
  Printf.printf
    "== incremental re-analysis vs from-scratch (head edit, %d edits/row, jobs=%d) ==\n"
    edits_per_size jobs;
  Printf.printf "   %-12s %6s | %10s %10s | %9s | %6s %4s\n" "family" "N"
    "inc (s)" "batch (s)" "speedup" "rslv" "fb";
  let rows =
    List.concat_map
      (fun n ->
        let r = measure "ref_chain" Workload.Families.ref_chain n in
        let g = measure "global_chain" Workload.Families.global_chain n in
        [ r; g ])
      [ 64; 256; 1024; 4096 ]
  in
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "incremental");
        ( "claim",
          Obs.Json.String
            "single-procedure edits re-solve the condensation-ancestor cone, \
             beating from-scratch analysis at n >= 256; results asserted \
             bit-identical per edit" );
        ( "workload",
          Obs.Json.String
            "ref_chain/global_chain, alternating add/remove of g0 := 1 in p1" );
        ("rows", Obs.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_incremental.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_incremental.json)\n"
