(* The parallel condensation-wavefront solver vs the sequential
   one-pass solvers (docs/parallel.md).

   Workloads: [fortran_style] (the default scaling family, a few
   recursive back edges) and [dag_style] (recursion disabled, the
   Fortran-77 reality: singleton components and wide condensation
   levels — the high-parallelism shape for the wavefront scheduler).

   Every parallel run is also an equality assertion: results must be
   bit-identical to the sequential run, and the bitvec.vector_ops
   interval must match exactly — parallelism is a pure performance
   knob, never a precision or cost knob.

   Speedup is wall-clock ([Unix.gettimeofday], not [Sys.time]: domain
   time must count once, not per domain).  On a single-core host the
   scheduler cannot win — domains multiplex one CPU and the wavefront
   barriers are pure overhead — so the honest expectation there is
   speedup <= 1.0 with small overhead; the recorded
   [recommended_domain_count] says which regime a given JSON file came
   from.

     dune exec bench/bench_parallel.exe        # writes BENCH_parallel.json *)

module A = Core.Analyze
module Pool = Par.Pool

let sizes = [ 1024; 2048; 4096; 8192 ]
let par_jobs = [ 2; 4; 8 ]
let reps = 3

let bool_arrays_equal = Array.for_all2 Bool.equal
let vec_arrays_equal = Array.for_all2 Bitvec.equal

let assert_identical ~family ~n ~jobs (seq : A.t) (par : A.t) =
  let ok =
    bool_arrays_equal seq.A.rmod.Core.Rmod.rmod par.A.rmod.Core.Rmod.rmod
    && bool_arrays_equal seq.A.ruse.Core.Rmod.rmod par.A.ruse.Core.Rmod.rmod
    && seq.A.rmod.Core.Rmod.steps = par.A.rmod.Core.Rmod.steps
    && vec_arrays_equal seq.A.gmod par.A.gmod
    && vec_arrays_equal seq.A.guse par.A.guse
  in
  if not ok then
    failwith
      (Printf.sprintf "%s n=%d jobs=%d: parallel result diverges from sequential"
         family n jobs)

let vector_ops = Obs.Metric.counter "bitvec.vector_ops"
let par_tasks = Obs.Metric.counter "par.tasks"
let par_batches = Obs.Metric.counter "par.batches"

(* One instrumented run: result, vector_ops interval, tasks, batches. *)
let counted f =
  let snap = Obs.Metric.snapshot () in
  let r = f () in
  ( r,
    Obs.Metric.value_since ~since:snap vector_ops,
    Obs.Metric.value_since ~since:snap par_tasks,
    Obs.Metric.value_since ~since:snap par_batches )

(* Best wall-clock time of [reps] runs. *)
let timed f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* Level structure of the call-graph condensation: how much same-level
   concurrency the wavefront has to work with. *)
let condensation graph =
  let scc = Graphs.Scc.compute graph in
  let csuccs = Array.make (max 1 scc.Graphs.Scc.n_comps) [] in
  Graphs.Digraph.iter_edges graph (fun _ src dst ->
      let cs = scc.Graphs.Scc.comp.(src) and cd = scc.Graphs.Scc.comp.(dst) in
      if cs <> cd then csuccs.(cs) <- cd :: csuccs.(cs));
  Par.Wavefront.of_comp_succs ~n_comps:scc.Graphs.Scc.n_comps
    ~succs_of:(Array.get csuccs)

let measure family build n =
  let prog = build ~seed:7 ~n in
  let call = Callgraph.Call.build prog in
  let levels = condensation call.Callgraph.Call.graph in
  let gc0 = Gc.quick_stat () in
  let seq, seq_vec, _, _ = counted (fun () -> A.run prog) in
  let seq_s = timed (fun () -> A.run prog) in
  let rows =
    List.map
      (fun jobs ->
        (* Shape of the coarse plan at this job count (deterministic,
           cost probe = 1 per component: structure, not estimates). *)
        let plan = Par.Wavefront.plan levels ~jobs ~cost:(fun _ -> 1) in
        let pool = Pool.create ~jobs in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            let par, par_vec, tasks, batches =
              counted (fun () -> A.run ~pool prog)
            in
            assert_identical ~family ~n ~jobs seq par;
            if par_vec <> seq_vec then
              failwith
                (Printf.sprintf "%s n=%d jobs=%d: vector_ops %d <> sequential %d"
                   family n jobs par_vec seq_vec);
            let par_s = timed (fun () -> A.run ~pool prog) in
            let speedup = seq_s /. Float.max par_s 1e-9 in
            Printf.printf
              "   %-13s %6d | %3d levels, width %4d | jobs %2d | %9.4f %9.4f | %5.2fx | %6d tasks %4d batches\n%!"
              family n levels.Par.Wavefront.n_levels
              levels.Par.Wavefront.max_width jobs seq_s par_s speedup tasks
              batches;
            Obs.Json.Obj
              [
                ("jobs", Obs.Json.Int jobs);
                ("elapsed_s", Obs.Json.Float par_s);
                ("speedup", Obs.Json.Float speedup);
                ("par_tasks", Obs.Json.Int tasks);
                ("par_batches", Obs.Json.Int batches);
                ("fused_levels", Obs.Json.Int plan.Par.Wavefront.fused_levels);
                ("plan_batches", Obs.Json.Int plan.Par.Wavefront.n_batches);
                ( "mean_batch_cost",
                  Obs.Json.Float plan.Par.Wavefront.mean_batch_cost );
                ("chain", Obs.Json.Bool plan.Par.Wavefront.chain);
              ]))
      par_jobs
  in
  Obs.Json.Obj
    [
      ("family", Obs.Json.String family);
      ("n_procs", Obs.Json.Int n);
      ("call_levels", Obs.Json.Int levels.Par.Wavefront.n_levels);
      ("call_max_width", Obs.Json.Int levels.Par.Wavefront.max_width);
      ("vector_ops", Obs.Json.Int seq_vec);
      ("sequential_s", Obs.Json.Float seq_s);
      ( "major_collections",
        Obs.Json.Int
          ((Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections)
      );
      ("top_heap_words", Obs.Json.Int (Gc.quick_stat ()).Gc.top_heap_words);
      ("parallel", Obs.Json.List rows);
    ]

let () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "== parallel wavefront solver vs sequential (best of %d, wall clock) ==\n\
    \   host: recommended_domain_count = %d%s\n"
    reps cores
    (if cores <= 1 then
       " — single core: speedup <= 1 expected, numbers measure overhead"
     else "");
  let rows =
    List.concat_map
      (fun n ->
        [
          measure "fortran_style" Workload.Families.fortran_style n;
          measure "dag_style" Workload.Families.dag_style n;
        ])
      sizes
  in
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "parallel");
        ( "claim",
          Obs.Json.String
            "condensation-wavefront scheduling keeps GMOD/GUSE/RMOD \
             bit-identical to the sequential one-pass solvers with identical \
             bitvec.vector_ops; wall-clock speedup tracks \
             recommended_domain_count and level width, and degrades to pure \
             (small) overhead on a single core" );
        ( "workload",
          Obs.Json.String "fortran_style and dag_style, seed 7, full Analyze.run"
        );
        ("recommended_domain_count", Obs.Json.Int cores);
        ("rows", Obs.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_parallel.json)\n"
