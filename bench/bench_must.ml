(* MUSTMOD solve cost: time and counted bit-vector word operations for
   the interprocedural must-modify pass, after the may-side summaries
   it consumes (GMOD, §5 aliases) are in hand.

   The claim being measured: the pass is one structural sweep per
   procedure per fixpoint round, and on the linear regime
   ([fortran_fixed] holds the global population constant, so summary
   sets are bounded) rounds stay flat and total word work grows
   near-linearly in program size — the same leaves-to-roots budget as
   Figure 1's RMOD, paid on the intersection side.

     dune exec bench/bench_must.exe        # writes BENCH_must.json *)

module A = Core.Analyze
module M = Core.Mustmod

let reps = 3
let sizes = [ 50; 100; 200; 400; 800; 1600 ]
let word_ops_metric = Obs.Metric.counter "bitvec.word_ops"

let timed f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let measure n =
  let prog = Workload.Families.fortran_fixed ~seed:7 ~n in
  let gc0 = Gc.quick_stat () in
  let a = A.run prog in
  let solve () = M.solve a.A.info a.A.call ~alias:a.A.alias ~gmod:a.A.gmod in
  let snap = Obs.Metric.snapshot () in
  let m = solve () in
  let word_ops = Obs.Metric.value_since ~since:snap word_ops_metric in
  let elapsed = timed solve in
  let n_procs = Ir.Prog.n_procs prog in
  let bits = ref 0 in
  Array.iter (fun v -> bits := !bits + Bitvec.cardinal v) m.M.mustmod;
  let us_per_proc = 1e6 *. elapsed /. float_of_int (max 1 n_procs) in
  Printf.printf
    "   n=%5d | %5d procs %6d must bits %2d rounds | %8d word ops  %8.4fs  \
     %6.2f us/proc\n\
     %!"
    n n_procs !bits m.M.rounds word_ops elapsed us_per_proc;
  Obs.Json.Obj
    [
      ("n_procs", Obs.Json.Int n_procs);
      ("must_bits", Obs.Json.Int !bits);
      ("rounds", Obs.Json.Int m.M.rounds);
      ("word_ops", Obs.Json.Int word_ops);
      ("elapsed_s", Obs.Json.Float elapsed);
      ("us_per_proc", Obs.Json.Float us_per_proc);
      ( "major_collections",
        Obs.Json.Int
          ((Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections)
      );
    ]

let () =
  Printf.printf
    "== interprocedural MUSTMOD solve (best of %d, wall clock, after \
     Analyze.run) ==\n"
    reps;
  let rows = List.map measure sizes in
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "mustmod");
        ( "claim",
          Obs.Json.String
            "on the bounded-summary regime the must-modify pass does \
             near-linear word work: one structural sweep per procedure per \
             round, rounds flat on acyclic condensations, word ops ~2x per \
             size doubling" );
        ( "workload",
          Obs.Json.String "fortran_fixed, seed 7, Mustmod.solve alone" );
        ("rows", Obs.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_must.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_must.json)\n"
