(* Benchmark harness: one Bechamel test per experiment of DESIGN.md's
   per-figure/per-claim index (F1, F2, F3, C1, C2, C3), plus the L1
   empirical-linearity operation-count table.

   The paper has no measurement tables (it is a 1988 algorithms paper);
   what we regenerate is the shape of its complexity claims: who wins,
   by roughly what factor, and that the new algorithms scale linearly.
   Absolute numbers are machine-dependent.

     dune exec bench/main.exe               # run everything
     dune exec bench/main.exe -- quick      # smaller quota
     dune exec bench/main.exe -- --jobs 4   # pooled solvers where supported *)

open Bechamel
open Toolkit

(* --jobs N: run the pool-aware solvers (figure1 RMOD, findgmod,
   by-levels nesting, whole-pipeline analyze) on a shared domain pool.
   Results are bit-identical either way; only the timings move. *)
let jobs =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then 1
    else if Sys.argv.(i) = "--jobs" then int_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  Par.Pool.effective_jobs (scan 1)

let pool = if jobs > 1 then Some (Par.Pool.create ~jobs) else None
let () = at_exit (fun () -> Option.iter Par.Pool.shutdown pool)

(* --- prepared inputs ------------------------------------------------ *)

type prepared = {
  n : int;
  prog : Ir.Prog.t;
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  imod : Bitvec.t array;
  imod_plus : Bitvec.t array;
}

let prepare prog =
  let info = Ir.Info.make prog in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build prog in
  let imod = Frontend.Local.imod info in
  let rmod = Core.Rmod.solve binding ~imod in
  let imod_plus = Core.Imod_plus.compute info ~rmod ~imod in
  { n = Ir.Prog.n_procs prog; prog; info; call; binding; imod; imod_plus }

let flat_sizes = [ 256; 1024; 4096 ]
let flat = List.map (fun n -> prepare (Workload.Families.fortran_style ~seed:7 ~n)) flat_sizes

let nested_depths = [ 2; 4; 8 ]
let nested =
  List.map
    (fun d -> (d, prepare (Workload.Families.pascal_style ~seed:7 ~n:1024 ~depth:d)))
    nested_depths

let kernel_sizes = [ 16; 64 ]
let kernels =
  List.map (fun k -> (k, Workload.Arrays.generate ~seed:7 ~n_kernels:k)) kernel_sizes

(* --- test groups ---------------------------------------------------- *)

let t name f = Test.make ~name (Staged.stage f)

(* F1: the reference-formal problem.  Figure 1 vs the swift-style
   bit-vector solver vs naive iteration. *)
let f1_tests =
  List.concat_map
    (fun p ->
      let tag alg = Printf.sprintf "rmod/%s/n=%d" alg p.n in
      [
        t (tag "figure1") (fun () -> Core.Rmod.solve ?pool p.binding ~imod:p.imod);
        t (tag "swift") (fun () -> Baseline.Swift.rmod p.binding ~imod:p.imod);
        t (tag "iterative") (fun () -> Baseline.Iterative.rmod p.binding ~imod:p.imod);
      ])
    flat

(* F1b: the adversarial chain — the write sits at the end of a long
   by-reference chain, so naive iteration over β's edge list needs a
   pass per link (quadratic total) while Figure 1's condensation pass
   stays linear. *)
let f1b_tests =
  let chain = prepare (Workload.Families.ref_chain 4096) in
  [
    t "rmod-chain/figure1/n=4096" (fun () ->
        Core.Rmod.solve chain.binding ~imod:chain.imod);
    t "rmod-chain/iterative/n=4096" (fun () ->
        Baseline.Iterative.rmod chain.binding ~imod:chain.imod);
    t "rmod-chain/swift/n=4096" (fun () ->
        Baseline.Swift.rmod chain.binding ~imod:chain.imod);
  ]

(* F2: the global-variable problem.  findgmod (Figure 2) vs iterative
   eq-(4) vs the O(N·(N+E)) reachability closed form. *)
let f2_tests =
  List.concat_map
    (fun p ->
      let tag alg = Printf.sprintf "gmod/%s/n=%d" alg p.n in
      [
        t (tag "findgmod") (fun () -> Core.Gmod.solve ?pool p.info p.call ~imod_plus:p.imod_plus);
        t (tag "iterative") (fun () ->
            Baseline.Iterative.gmod p.info p.call ~imod_plus:p.imod_plus);
      ]
      @
      if p.n <= 1030 then
        [
          t (tag "reachability") (fun () ->
              Baseline.Reach.gmod p.info p.call ~imod_plus:p.imod_plus);
        ]
      else [])
    flat

(* F3: regular sections.  The sectioned chain vs the bit chain on the
   same array-kernel programs (Figure 3's lattice in action). *)
let f3_tests =
  List.concat_map
    (fun (k, prog) ->
      let p = prepare prog in
      let tag alg = Printf.sprintf "sections/%s/k=%d" alg k in
      [
        t (tag "rsmod")
          (let info = p.info and binding = p.binding in
           fun () -> Sections.Rsmod.solve info binding);
        t (tag "full-sectioned") (fun () -> Sections.Analyze_sections.run prog);
        t (tag "bit-level") (fun () -> Core.Analyze.run ?pool prog);
      ])
    kernels

(* C1: the multi-level nesting ablation: one-pass lowlink vectors vs
   repeating Figure 2 per level. *)
let c1_tests =
  List.concat_map
    (fun (d, p) ->
      let tag alg = Printf.sprintf "nesting/%s/dP=%d" alg d in
      [
        t (tag "one-pass") (fun () ->
            Core.Gmod_nested.solve p.info p.call ~imod_plus:p.imod_plus);
        t (tag "by-levels") (fun () ->
            Core.Gmod_nested.solve_by_levels ?pool p.info p.call ~imod_plus:p.imod_plus);
      ])
    nested

(* C2: the end-to-end pipeline, analysis only and with the front end. *)
let c2_tests =
  List.concat_map
    (fun p ->
      let src = Ir.Pp.to_string p.prog in
      [
        t (Printf.sprintf "pipeline/analyze/n=%d" p.n) (fun () -> Core.Analyze.run ?pool p.prog);
        t
          (Printf.sprintf "pipeline/frontend/n=%d" p.n)
          (fun () -> Frontend.Sema.compile_exn ~file:"bench" src);
      ])
    flat

(* X1: the abstract's generality claim — the same binding-structure
   machinery solving a richer lattice (interprocedural constant
   propagation). *)
let x1_tests =
  List.map
    (fun p ->
      t (Printf.sprintf "ipcp/analyze/n=%d" p.n) (fun () ->
          Ipcp.analyze p.info ~imod_plus:p.imod_plus))
    flat

(* C3: β construction is linear and β is only k× larger than C. *)
let c3_tests =
  List.map
    (fun p ->
      t (Printf.sprintf "beta/build/n=%d" p.n) (fun () -> Callgraph.Binding.build p.prog))
    flat

let groups =
  [
    ("F1  reference formals (Figure 1)", f1_tests);
    ("F1b reference formals, adversarial chain", f1b_tests);
    ("F2  global variables (Figure 2)", f2_tests);
    ("F3  regular sections (Figure 3)", f3_tests);
    ("C1  multi-level nesting ablation", c1_tests);
    ("C2  end-to-end pipeline", c2_tests);
    ("C3  binding multi-graph construction", c3_tests);
    ("X1  constant propagation on the binding structure", x1_tests);
  ]

(* --- measurement ---------------------------------------------------- *)

let quota =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" then 0.1 else 0.4

let measure_test elt =
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.OLS.ols ~bootstrap:0 ~r_square:true ~responder:"monotonic-clock"
      ~predictors:[| "run" |] raw.Benchmark.lr
  in
  let ns =
    match Analyze.OLS.estimates ols with
    | Some [ est ] -> est
    | _ -> nan
  in
  let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
  (ns, r2)

let human ns =
  if ns >= 1e9 then Printf.sprintf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

let () =
  Printf.printf
    "== Cooper-Kennedy PLDI'88 reproduction: benchmark suite ==\n\
     workloads: flat n in {%s} (seed 7), nested n=1024 dP in {%s}, array kernels k in {%s}\n\n"
    (String.concat ", " (List.map string_of_int flat_sizes))
    (String.concat ", " (List.map string_of_int nested_depths))
    (String.concat ", " (List.map string_of_int kernel_sizes));
  let results = Hashtbl.create 64 in
  List.iter
    (fun (group, tests) ->
      Printf.printf "-- %s --\n%!" group;
      List.iter
        (fun test ->
          List.iter
            (fun elt ->
              let ns, r2 = measure_test elt in
              Hashtbl.replace results (Test.Elt.name elt) ns;
              Printf.printf "  %-32s %s/run   (r2 %.3f)\n%!" (Test.Elt.name elt)
                (human ns) r2)
            (Test.elements test))
        tests;
      print_newline ())
    groups;
  (* Derived tables: the paper's comparative claims. *)
  let get name = try Hashtbl.find results name with Not_found -> nan in
  Printf.printf "== derived: RMOD speedup over the swift-style solver (claim 3.2) ==\n";
  Printf.printf "   %8s %14s %14s %10s\n" "N" "figure1" "swift" "speedup";
  List.iter
    (fun p ->
      let f = get (Printf.sprintf "rmod/figure1/n=%d" p.n) in
      let s = get (Printf.sprintf "rmod/swift/n=%d" p.n) in
      Printf.printf "   %8d %s %s %9.1fx\n" p.n (human f) (human s) (s /. f))
    flat;
  Printf.printf "\n== derived: findgmod vs baselines (claim 4) ==\n";
  Printf.printf "   %8s %14s %14s %14s\n" "N" "findgmod" "iterative" "reachability";
  List.iter
    (fun p ->
      let f = get (Printf.sprintf "gmod/findgmod/n=%d" p.n) in
      let i = get (Printf.sprintf "gmod/iterative/n=%d" p.n) in
      let r = get (Printf.sprintf "gmod/reachability/n=%d" p.n) in
      Printf.printf "   %8d %s %s %s\n" p.n (human f) (human i)
        (if Float.is_nan r then "      (skipped)" else human r))
    flat;
  Printf.printf "\n== derived: linearity of the new algorithms (time per N+E) ==\n";
  Printf.printf "   %8s %10s %16s %16s\n" "N" "N+E" "figure1/(N+E)" "findgmod/(N+E)";
  List.iter
    (fun p ->
      let size = float_of_int (p.n + Ir.Prog.n_sites p.prog) in
      let f1 = get (Printf.sprintf "rmod/figure1/n=%d" p.n) /. size in
      let f2 = get (Printf.sprintf "gmod/findgmod/n=%d" p.n) /. size in
      Printf.printf "   %8d %10.0f %13.1f ns %13.1f ns\n" p.n size f1 f2)
    flat;
  Printf.printf "\n== derived: multi-level nesting, one-pass vs per-level (claim 4 end) ==\n";
  Printf.printf "   %8s %14s %14s %10s\n" "dP" "one-pass" "by-levels" "ratio";
  List.iter
    (fun d ->
      let o = get (Printf.sprintf "nesting/one-pass/dP=%d" d) in
      let l = get (Printf.sprintf "nesting/by-levels/dP=%d" d) in
      Printf.printf "   %8d %s %s %9.1fx\n" d (human o) (human l) (l /. o))
    nested_depths;
  (* L1: operation counts, the claims measured in the paper's own cost
     units rather than nanoseconds.  The table also lands in
     BENCH_linearity.json so the linearity claim is machine-checkable
     (EXPERIMENTS.md L1). *)
  Printf.printf "\n== L1: operation counts vs problem size (bit-vector steps / boolean steps) ==\n";
  Printf.printf "   %8s %8s %8s %8s | %12s %10s | %12s %10s\n" "N" "E" "Nb" "Eb"
    "rmod steps" "/(Nb+Eb)" "gmod vecops" "/(N+E)";
  let l1_row family n =
        let prog = family ~seed:7 ~n in
        let p = prepare prog in
        let rmod = Core.Rmod.solve p.binding ~imod:p.imod in
        let (), gmod_span =
          Obs.Span.collect "gmod" (fun () ->
              ignore (Core.Gmod.solve p.info p.call ~imod_plus:p.imod_plus))
        in
        let vec_ops = Obs.Span.metric gmod_span "bitvec.vector_ops" in
        let word_ops = Obs.Span.metric gmod_span "bitvec.word_ops" in
        let nb = Callgraph.Binding.n_nodes p.binding
        and eb = Callgraph.Binding.n_edges p.binding in
        let e = Ir.Prog.n_sites prog in
        let rmod_per = float_of_int rmod.Core.Rmod.steps /. float_of_int (nb + eb) in
        let gmod_per = float_of_int vec_ops /. float_of_int (n + e) in
        Printf.printf "   %8d %8d %8d %8d | %12d %10.2f | %12d %10.2f\n" n e nb eb
          rmod.Core.Rmod.steps rmod_per vec_ops gmod_per;
        Obs.Json.Obj
          [
            ("n_procs", Obs.Json.Int n);
            ("n_sites", Obs.Json.Int e);
            ("beta_nodes", Obs.Json.Int nb);
            ("beta_edges", Obs.Json.Int eb);
            ("rmod_steps", Obs.Json.Int rmod.Core.Rmod.steps);
            ("rmod_steps_per_beta_size", Obs.Json.Float rmod_per);
            ("gmod_vector_ops", Obs.Json.Int vec_ops);
            ("gmod_word_ops", Obs.Json.Int word_ops);
            ("gmod_vector_ops_per_size", Obs.Json.Float gmod_per);
            ("gmod_elapsed_s", Obs.Json.Float gmod_span.Obs.Span.elapsed);
            ( "major_collections",
              Obs.Json.Int gmod_span.Obs.Span.gc.Obs.Span.major_collections );
            ( "top_heap_words",
              Obs.Json.Int gmod_span.Obs.Span.gc.Obs.Span.top_heap_words );
          ]
  in
  (* Two scaling regimes (docs/parallel.md, bench_check): fortran_style
     grows globals with n (summary-set output size is inherently
     quadratic, word ops sit near that floor); fortran_fixed holds the
     global population constant, where word ops too are linear. *)
  let l1_rows =
    List.concat_map
      (fun (fname, family) ->
        Printf.printf "   -- %s --\n" fname;
        List.map
          (fun n ->
            match l1_row family n with
            | Obs.Json.Obj fields ->
              Obs.Json.Obj (("family", Obs.Json.String fname) :: fields)
            | j -> j)
          [ 128; 256; 512; 1024; 2048; 4096; 8192 ])
      [
        ("fortran_style", fun ~seed ~n -> Workload.Families.fortran_style ~seed ~n);
        ("fortran_fixed", fun ~seed ~n -> Workload.Families.fortran_fixed ~seed ~n);
      ]
  in
  let l1_json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "L1");
        ( "claim",
          Obs.Json.String
            "rmod boolean steps scale with N_beta+E_beta; findgmod bit-vector \
             steps scale with N+E" );
        ("workload", Obs.Json.String "fortran_style and fortran_fixed, seed 7");
        ("rows", Obs.Json.List l1_rows);
      ]
  in
  let oc = open_out "BENCH_linearity.json" in
  output_string oc (Obs.Json.to_string l1_json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_linearity.json)\n";
  (* P1: precision — the §2 motivation measured.  Compare, per executed
     call site, the worst-case assumption (everything visible), the
     computed MOD, and the dynamically observed modifications. *)
  Printf.printf "\n== P1: precision of MOD vs worst-case and vs observed behaviour ==\n";
  Printf.printf "   %8s %10s %10s %10s %12s\n" "N" "visible" "MOD" "observed" "sites run";
  List.iter
    (fun n ->
      (* A more layered workload than the scaling sweeps: mostly
         forward calls and moderate by-ref traffic, so MOD sets differ
         visibly between shallow and deep procedures. *)
      let rng = Random.State.make [| 7; n; 0x51 |] in
      let prog =
        Workload.Gen.generate rng
          {
            Workload.Gen.default with
            Workload.Gen.n_procs = n;
            n_globals = (n / 2) + 8;
            recursion = 0.05;
            binding_density = 0.4;
            sites_per_proc = 2;
          }
      in
      let t = Core.Analyze.run prog in
      let o = Interp.run ~fuel:200_000 ~max_depth:1024 prog in
      let vis = ref 0 and m = ref 0 and obs = ref 0 and ran = ref 0 in
      Ir.Prog.iter_sites prog (fun s ->
          let sid = s.Ir.Prog.sid in
          if o.Interp.calls_executed.(sid) > 0 then begin
            incr ran;
            vis :=
              !vis + Bitvec.cardinal (Ir.Info.visible t.Core.Analyze.info s.Ir.Prog.caller);
            m := !m + Bitvec.cardinal (Core.Analyze.mod_of_site t sid);
            obs := !obs + Bitvec.cardinal (Interp.observed_mod o sid)
          end);
      let per x = float_of_int x /. float_of_int (max 1 !ran) in
      Printf.printf "   %8d %10.1f %10.1f %10.1f %12d\n" n (per !vis) (per !m)
        (per !obs) !ran)
    [ 32; 64; 128 ];
  Printf.printf "\n== C3: beta vs C sizes (claim 3.1: beta is only k x larger) ==\n";
  Printf.printf "   %8s %8s %8s %8s %8s %8s\n" "N" "E" "Nb" "Eb" "mu_f" "mu_a";
  List.iter
    (fun p ->
      Printf.printf "   %8d %8d %8d %8d %8.2f %8.2f\n" p.n (Ir.Prog.n_sites p.prog)
        (Callgraph.Binding.n_nodes p.binding)
        (Callgraph.Binding.n_edges p.binding)
        (Callgraph.Binding.mu_f p.prog) (Callgraph.Binding.mu_a p.prog))
    flat
