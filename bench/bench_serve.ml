(* Analysis-server load test: thousands of scripted clients against a
   live Unix-socket server (experiment for lib/serve; docs/serve.md).

   Each client mirrors its program locally, replays Workload.Edits
   scripts rendered to the wire grammar, interleaves queries drawn
   against the mirror, and pins the server's session source against
   its own copy byte for byte — so the run is simultaneously a
   benchmark and a correctness gate: any unparseable response, id echo
   mismatch, failed valid-by-construction request, or mirror
   divergence counts as a protocol error, and the process exits
   non-zero if there is a single one.

     dune exec bench/bench_serve.exe                    # 1000 clients, writes BENCH_serve.json
     dune exec bench/bench_serve.exe -- --clients 200 --jobs 4 *)

let arg name default =
  let rec scan i =
    if i + 1 >= Array.length Sys.argv then default
    else if Sys.argv.(i) = name then int_of_string Sys.argv.(i + 1)
    else scan (i + 1)
  in
  scan 1

let clients = arg "--clients" 1000
let jobs = Par.Pool.effective_jobs (arg "--jobs" 2)
let concurrency = arg "--concurrency" 64
let seed = arg "--seed" 42

(* A corpus spanning the program families: flat call graphs, nested
   scopes, and the two chain spines.  Sources are the pretty-printed
   text — exactly what a client would send. *)
let programs =
  [
    ("flat", Workload.Families.fortran_style ~seed:3 ~n:12);
    ("nested", Workload.Families.pascal_style ~seed:4 ~n:12 ~depth:4);
    ("ref_chain", Workload.Families.ref_chain 12);
    ("global_chain", Workload.Families.global_chain 12);
  ]
  |> List.map (fun (name, prog) -> (name, Ir.Pp.to_string prog))

let () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sidefx-bench-%d.sock" (Unix.getpid ()))
  in
  let pool = if jobs > 1 then Some (Par.Pool.create ~jobs) else None in
  let server = Serve.Server.create ?pool () in
  let domain = Domain.spawn (fun () -> Serve.Server.serve_socket server ~path) in
  let gc0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let report =
    Serve.Loadgen.run ~concurrency ~clients ~seed ~programs
      ~connect:(fun () -> Serve.Loadgen.socket_conn ~path ())
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  (* Scripted shutdown, then join the server domain. *)
  let c = Serve.Loadgen.socket_conn ~path () in
  c.Serve.Loadgen.send (Serve.Protocol.to_line Serve.Protocol.Shutdown);
  (try ignore (c.Serve.Loadgen.recv ()) with _ -> ());
  c.Serve.Loadgen.close ();
  Domain.join domain;
  Option.iter Par.Pool.shutdown pool;
  let gc1 = Gc.quick_stat () in
  Printf.printf
    "== serve load test: %d clients (concurrency %d, jobs %d) over %s ==\n"
    clients concurrency jobs path;
  Printf.printf
    "   %d requests in %.2fs (%.0f req/s), %d edits sent, %d skipped, %d \
     protocol errors\n"
    report.Serve.Loadgen.requests wall
    (float_of_int report.Serve.Loadgen.requests /. Float.max wall 1e-9)
    report.Serve.Loadgen.edits_sent report.Serve.Loadgen.edits_skipped
    report.Serve.Loadgen.protocol_errors;
  Printf.printf "   %-16s %8s | %10s %10s %10s\n" "class" "count" "p50 (us)"
    "p95 (us)" "p99 (us)";
  List.iter
    (fun c ->
      Printf.printf "   %-16s %8d | %10.1f %10.1f %10.1f\n"
        c.Serve.Loadgen.cls c.Serve.Loadgen.count
        (float_of_int c.Serve.Loadgen.p50_ns /. 1e3)
        (float_of_int c.Serve.Loadgen.p95_ns /. 1e3)
        (float_of_int c.Serve.Loadgen.p99_ns /. 1e3))
    report.Serve.Loadgen.classes;
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "serve");
        ( "claim",
          Obs.Json.String
            "scripted clients replaying rendered edit scripts and mirror-pinned \
             queries over the line protocol see zero protocol errors; \
             per-request-class client-side latency percentiles below" );
        ("transport", Obs.Json.String "unix-socket");
        ("clients", Obs.Json.Int clients);
        ("concurrency", Obs.Json.Int concurrency);
        ("jobs", Obs.Json.Int jobs);
        ("seed", Obs.Json.Int seed);
        ( "programs",
          Obs.Json.List
            (List.map (fun (n, _) -> Obs.Json.String n) programs) );
        ("wall_s", Obs.Json.Float wall);
        ( "requests_per_s",
          Obs.Json.Float
            (float_of_int report.Serve.Loadgen.requests /. Float.max wall 1e-9)
        );
        ("report", Serve.Loadgen.report_json report);
        ( "major_collections",
          Obs.Json.Int (gc1.Gc.major_collections - gc0.Gc.major_collections) );
        ("top_heap_words", Obs.Json.Int gc1.Gc.top_heap_words);
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_serve.json)\n";
  if report.Serve.Loadgen.protocol_errors > 0 then begin
    List.iter (Printf.eprintf "   error: %s\n") report.Serve.Loadgen.error_samples;
    exit 1
  end
