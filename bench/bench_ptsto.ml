(* Points-to tier cost and precision on the pointer workload families.

   Two numbers per (family, size, tier): the solver's own wall time
   (constraint extraction + unification or inclusion fixpoint +
   storage closure) and the §5 alias-pair count the projection
   induces.  The claim: Andersen's projection is pointwise contained
   in Steensgaard's — strictly smaller on the funnel family (n vs 2n
   pairs, the precision unification gives up by merging the funnel) —
   and neither tier's raw solve dominates; the cost that does grow is
   the storage closure on deep by-ref chains (ptr_chain), which is
   shared by both tiers and quadratic in the chain depth.

     dune exec bench/bench_ptsto.exe        # writes BENCH_ptsto.json *)

module A = Core.Analyze

let reps = 3
let sizes = [ 50; 100; 200; 400 ]

let families =
  [
    ("ptr_chain", Workload.Families.ptr_chain);
    ("ptr_heap", Workload.Families.ptr_heap);
    ("ptr_funnel", Workload.Families.ptr_funnel);
  ]

let timed f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let total_pairs t prog =
  let n = ref 0 in
  for pid = 0 to Ir.Prog.n_procs prog - 1 do
    n := !n + List.length (Core.Alias.pairs t.A.alias pid)
  done;
  !n

let tier_row prog tier =
  let solve_s = timed (fun () -> Ptsto.analyze ~tier prog) in
  let pt = Ptsto.analyze ~tier prog in
  let t = A.run ~ptsto:tier prog in
  let pairs = total_pairs t prog in
  (Ptsto.tier_name tier, solve_s, Ptsto.size pt, pairs)

let measure name family n =
  let prog = family n in
  let rows =
    List.map (tier_row prog) [ Ptsto.Steensgaard; Ptsto.Andersen ]
  in
  let (_, s_time, s_size, s_pairs), (_, a_time, a_size, a_pairs) =
    match rows with [ s; a ] -> (s, a) | _ -> assert false
  in
  assert (a_pairs <= s_pairs);
  Printf.printf
    "   %-10s n=%4d | steens %8.5fs size %5d pairs %5d | ander %8.5fs size \
     %5d pairs %5d\n\
     %!"
    name n s_time s_size s_pairs a_time a_size a_pairs;
  Obs.Json.Obj
    [
      ("family", Obs.Json.String name);
      ("n", Obs.Json.Int n);
      ( "tiers",
        Obs.Json.List
          (List.map
             (fun (tname, solve_s, size, pairs) ->
               Obs.Json.Obj
                 [
                   ("tier", Obs.Json.String tname);
                   ("solve_s", Obs.Json.Float solve_s);
                   ("size", Obs.Json.Int size);
                   ("alias_pairs", Obs.Json.Int pairs);
                 ])
             rows) );
    ]

let () =
  Printf.printf "== points-to solve (best of %d, wall clock) ==\n" reps;
  let rows =
    List.concat_map
      (fun (name, family) -> List.map (measure name family) sizes)
      families
  in
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "ptsto");
        ( "claim",
          Obs.Json.String
            "Andersen's projection is pointwise contained in Steensgaard's: \
             strictly smaller on ptr_funnel (n vs 2n section-5 pairs), \
             identical where there is nothing to refine; the dominating \
             cost on ptr_chain is the storage closure over the by-ref \
             chain, shared by both tiers and quadratic in chain depth" );
        ( "workload",
          Obs.Json.String
            "ptr_chain / ptr_heap / ptr_funnel (Workload.Families), both \
             tiers, pair counts after the section-5 closure" );
        ("rows", Obs.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_ptsto.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_ptsto.json)\n"
