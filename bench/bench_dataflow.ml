(* Statement-level dataflow cost: time to build every procedure's CFG
   and run the liveness + reaching-definitions solvers to fixpoint,
   after the interprocedural summaries are in hand.

   The claim being measured: round-robin pass counts stay flat
   (structured CFGs are reducible; ~2 passes to fixpoint regardless of
   size), so liveness cost is linear in instructions.  Reaching
   definitions instead tracks its definition universe — every call
   contributes one definition per variable of MOD(s), so the universe
   grows with summary sizes, not with the CFG; the per-definition cost
   column is the one that should stay nearly flat.

     dune exec bench/bench_dataflow.exe        # writes BENCH_dataflow.json *)

module A = Core.Analyze

let reps = 3
let sizes = [ 50; 100; 200; 400; 800 ]

let timed f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

let solve_fresh t () =
  let d = Dataflow.Driver.create t in
  Dataflow.Driver.solve_all d;
  d

let measure n =
  let prog = Workload.Families.fortran_style ~seed:7 ~n in
  let gc0 = Gc.quick_stat () in
  let t = A.run prog in
  let d = solve_fresh t () in
  let blocks = ref 0 and instrs = ref 0 and defs = ref 0 in
  let live_passes = ref 0 and reach_passes = ref 0 in
  let defblocks = ref 0 in
  Ir.Prog.iter_procs prog (fun p ->
      let s = Dataflow.Driver.solution d p.Ir.Prog.pid in
      let b = Dataflow.Cfg.n_blocks s.Dataflow.Driver.cfg in
      let nd = Dataflow.Reach.n_defs s.Dataflow.Driver.reach in
      blocks := !blocks + b;
      instrs := !instrs + Dataflow.Cfg.n_instrs s.Dataflow.Driver.cfg;
      defs := !defs + nd;
      defblocks := !defblocks + (b * nd);
      live_passes := !live_passes + Dataflow.Live.passes s.Dataflow.Driver.live;
      reach_passes :=
        !reach_passes + Dataflow.Reach.passes s.Dataflow.Driver.reach);
  let elapsed = timed (solve_fresh t) in
  let n_procs = Ir.Prog.n_procs prog in
  let us_per_instr = 1e6 *. elapsed /. float_of_int (max 1 !instrs) in
  (* The reach state is one bit per (def, block) pair of each
     procedure; normalise by that sum, the actual work term. *)
  let ns_per_defblock = 1e9 *. elapsed /. float_of_int (max 1 !defblocks) in
  Printf.printf
    "   n=%4d | %5d blocks %6d instrs %6d defs | %.2f live + %.2f reach \
     passes/proc | %8.4fs  %6.2f us/instr  %5.2f ns/def-block\n\
     %!"
    n !blocks !instrs !defs
    (float_of_int !live_passes /. float_of_int n_procs)
    (float_of_int !reach_passes /. float_of_int n_procs)
    elapsed us_per_instr ns_per_defblock;
  Obs.Json.Obj
    [
      ("n_procs", Obs.Json.Int n_procs);
      ("blocks", Obs.Json.Int !blocks);
      ("instrs", Obs.Json.Int !instrs);
      ("defs", Obs.Json.Int !defs);
      ("live_passes", Obs.Json.Int !live_passes);
      ("reach_passes", Obs.Json.Int !reach_passes);
      ("elapsed_s", Obs.Json.Float elapsed);
      ("us_per_instr", Obs.Json.Float us_per_instr);
      ("ns_per_defblock", Obs.Json.Float ns_per_defblock);
      ( "major_collections",
        Obs.Json.Int
          ((Gc.quick_stat ()).Gc.major_collections - gc0.Gc.major_collections)
      );
      ("top_heap_words", Obs.Json.Int (Gc.quick_stat ()).Gc.top_heap_words);
    ]

let () =
  Printf.printf
    "== statement-level dataflow solve (best of %d, wall clock, after \
     Analyze.run) ==\n"
    reps;
  let rows = List.map measure sizes in
  let json =
    Obs.Json.Obj
      [
        ("experiment", Obs.Json.String "dataflow");
        ( "claim",
          Obs.Json.String
            "round-robin pass counts stay flat (~2) on structured CFGs, so \
             liveness is linear in instructions; reaching definitions scales \
             with its definition universe (one def per MOD variable per \
             call), which grows with summary sizes, not the CFG — the \
             per-(def x block) cost is the near-constant column" );
        ( "workload",
          Obs.Json.String "fortran_style, seed 7, Driver.create + solve_all" );
        ("rows", Obs.Json.List rows);
      ]
  in
  let oc = open_out "BENCH_dataflow.json" in
  output_string oc (Obs.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "   (table written to BENCH_dataflow.json)\n"
