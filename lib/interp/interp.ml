module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt

(* Storage blocks carry a unique id so physical locations can be keyed
   in hash tables.  Scalars are 1-cell blocks; arrays are row-major. *)
type block = {
  bid : int;
  data : int array;
}

type slot =
  | Scalar_slot of block * int  (* block, cell index *)
  | Array_slot of block * int list  (* block, dims *)

type activation = {
  act_proc : int;
  act_slots : (int, slot) Hashtbl.t; (* vid -> slot *)
  act_link : activation option;
}

(* Per-call effect accumulators.  Every load/store is recorded (as a
   deduplicated (block id, cell) key) in the record of the innermost
   active call only; when a call finishes, its tables are matched
   against the caller's view and then merged into the parent record.
   Total cost is O(events + calls · distinct locations), where the
   log-slicing alternative is quadratic in call depth. *)
type call_record = {
  writes : (int * int, unit) Hashtbl.t;
  reads : (int * int, unit) Hashtbl.t;
  live_reads : (int * int, unit) Hashtbl.t;
      (* Reads NOT preceded by a write to the same cell within this
         call's extent: the cells whose pre-call value the call actually
         consumed — the dynamic witness of liveness across the site. *)
}

let fresh_record () =
  {
    writes = Hashtbl.create 16;
    reads = Hashtbl.create 16;
    live_reads = Hashtbl.create 16;
  }

type entry_summary =
  | Never
  | Always of int
  | Varies

type outcome = {
  output : int list;
  steps : int;
  truncated : bool;
  site_mods : Bitvec.t array;
  site_uses : Bitvec.t array;
  site_lives : Bitvec.t array;
  site_musts : Bitvec.t array;
  must_runs : int array;
  calls_executed : int array;
  formal_entry : entry_summary array;
  ptr_obs : (int * int * int) list;
  alias_obs : (int * int * int) list;
}

exception Out_of_fuel
exception Arith_fault
exception Depth_skip

type state = {
  prog : Prog.t;
  globals : (int, slot) Hashtbl.t;
  mutable records : call_record list; (* innermost active call first *)
  mutable depth : int;
  max_depth : int;
  mutable depth_skips : int;
  mutable fuel : int;
  mutable steps : int;
  mutable next_bid : int;
  mutable next_input : int;
  mutable output_rev : int list;
  site_mods : Bitvec.t array;
  site_uses : Bitvec.t array;
  site_lives : Bitvec.t array;
  site_musts : Bitvec.t array;
      (* Per site: caller-nameable variables written by EVERY completed,
         skip-free execution — the dynamic must-modify oracle
         (intersection over executions; all-ones until the first). *)
  must_runs : int array; (* executions contributing to site_musts *)
  calls_executed : int array;
  formal_entry : entry_summary array;
  (* Pointer runtime.  A pointer value is 0 (null) or 1 + an index into
     [ptr_cells], which names a concrete scalar cell.  Cells are
     interned so [&x] evaluates to the same value every time. *)
  mutable ptr_cells : (block * int) array;
  mutable n_ptrs : int;
  ptr_ids : (int * int, int) Hashtbl.t; (* (bid, cell) -> index *)
  block_owner : (int, int) Hashtbl.t; (* bid -> owning vid; absent = heap/anon *)
  ptr_obs : (int * int * int, unit) Hashtbl.t;
      (* (pointer vid, depth, target vid | -1 for heap): observed
         dereference targets — the dynamic points-to oracle. *)
  alias_obs : (int * int * int, unit) Hashtbl.t;
      (* (callee pid, x, y) with x < y: two names bound to one cell on
         entry — the dynamic §5 alias-pair oracle. *)
}

let fresh_block ?owner st size =
  let bid = st.next_bid in
  st.next_bid <- bid + 1;
  (match owner with
  | Some vid -> Hashtbl.replace st.block_owner bid vid
  | None -> ());
  { bid; data = Array.make size 0 }

let slot_for_var st (v : Prog.var) =
  match v.Prog.vty with
  | Ir.Types.Int | Ir.Types.Bool | Ir.Types.Ptr _ ->
    Scalar_slot (fresh_block ~owner:v.Prog.vid st 1, 0)
  | Ir.Types.Array dims ->
    Array_slot (fresh_block ~owner:v.Prog.vid st (List.fold_left ( * ) 1 dims), dims)

(* Intern a concrete cell as a pointer value (> 0; 0 is null). *)
let intern_ptr st (b : block) i =
  match Hashtbl.find_opt st.ptr_ids (b.bid, i) with
  | Some id -> id + 1
  | None ->
    let id = st.n_ptrs in
    if id = Array.length st.ptr_cells then begin
      let grown = Array.make (max 16 (2 * id)) (b, i) in
      Array.blit st.ptr_cells 0 grown 0 id;
      st.ptr_cells <- grown
    end;
    st.ptr_cells.(id) <- (b, i);
    st.n_ptrs <- id + 1;
    Hashtbl.replace st.ptr_ids (b.bid, i) id;
    id + 1

(* The cell a pointer value names; null or garbage faults the run. *)
let ptr_cell st n =
  if n <= 0 || n > st.n_ptrs then raise Arith_fault;
  st.ptr_cells.(n - 1)

let observe_deref st ~ptr_vid ~depth (b : block) =
  let target =
    match Hashtbl.find_opt st.block_owner b.bid with
    | Some vid -> vid
    | None -> -1
  in
  Hashtbl.replace st.ptr_obs (ptr_vid, depth, target) ()

(* Static scoping lookup: the activation chain, then globals.  With
   recursion the innermost activation of the owner is the one in the
   chain closest to the start — exactly the Pascal display. *)
let lookup st act vid =
  let rec walk = function
    | Some a -> (
      match Hashtbl.find_opt a.act_slots vid with
      | Some slot -> slot
      | None -> walk a.act_link)
    | None -> (
      match Hashtbl.find_opt st.globals vid with
      | Some slot -> slot
      | None -> invalid_arg "Interp: unbound variable (scope bug)")
  in
  walk (Some act)

(* MiniProc array semantics: indices wrap modulo the extent, making
   every access total (needed to execute arbitrary generated
   programs deterministically). *)
let flatten_index dims idxs =
  List.fold_left2
    (fun acc d i ->
      let i = ((i mod d) + d) mod d in
      (acc * d) + i)
    0 dims idxs

let record st is_write block idx =
  match st.records with
  | [] -> ()
  | r :: _ ->
    let key = (block.bid, idx) in
    if is_write then Hashtbl.replace r.writes key ()
    else begin
      if not (Hashtbl.mem r.writes key) then Hashtbl.replace r.live_reads key ();
      Hashtbl.replace r.reads key ()
    end

(* Follow [d] dereferences starting from pointer variable [p]: reads
   [p]'s cell and every intermediate cell, returns the final cell
   without touching it. *)
let deref_chain st act p d =
  let b0, i0 =
    match lookup st act p with
    | Scalar_slot (b, i) -> (b, i)
    | Array_slot _ -> invalid_arg "Interp: array dereferenced (type bug)"
  in
  record st false b0 i0;
  let cell = ref (ptr_cell st b0.data.(i0)) in
  observe_deref st ~ptr_vid:p ~depth:1 (fst !cell);
  for k = 2 to d do
    let b, i = !cell in
    record st false b i;
    cell := ptr_cell st b.data.(i);
    observe_deref st ~ptr_vid:p ~depth:k (fst !cell)
  done;
  !cell

let truth n = n <> 0
let of_bool b = if b then 1 else 0

let rec eval st act (e : Expr.t) : int =
  match e with
  | Expr.Int n -> n
  | Expr.Bool b -> of_bool b
  | Expr.Var v -> (
    match lookup st act v with
    | Scalar_slot (b, i) ->
      record st false b i;
      b.data.(i)
    | Array_slot _ -> invalid_arg "Interp: array read as scalar (type bug)")
  | Expr.Index (a, idxs) -> (
    let ns = List.map (eval st act) idxs in
    match lookup st act a with
    | Array_slot (b, dims) ->
      let i = flatten_index dims ns in
      record st false b i;
      b.data.(i)
    | Scalar_slot _ -> invalid_arg "Interp: scalar indexed (type bug)")
  | Expr.Binop (op, l, r) -> (
    match op with
    | Expr.And -> of_bool (truth (eval st act l) && truth (eval st act r))
    | Expr.Or -> of_bool (truth (eval st act l) || truth (eval st act r))
    | _ -> (
      let a = eval st act l in
      let b = eval st act r in
      match op with
      | Expr.Add -> a + b
      | Expr.Sub -> a - b
      | Expr.Mul -> a * b
      | Expr.Div -> if b = 0 then raise Arith_fault else a / b
      | Expr.Mod -> if b = 0 then raise Arith_fault else a mod b
      | Expr.Lt -> of_bool (a < b)
      | Expr.Le -> of_bool (a <= b)
      | Expr.Gt -> of_bool (a > b)
      | Expr.Ge -> of_bool (a >= b)
      | Expr.Eq -> of_bool (a = b)
      | Expr.Ne -> of_bool (a <> b)
      | Expr.And | Expr.Or -> assert false))
  | Expr.Unop (Expr.Neg, e) -> -eval st act e
  | Expr.Unop (Expr.Not, e) -> of_bool (not (truth (eval st act e)))
  | Expr.Addr v -> (
    match lookup st act v with
    | Scalar_slot (b, i) -> intern_ptr st b i
    | Array_slot _ -> invalid_arg "Interp: address of array (type bug)")
  | Expr.Deref (p, d) ->
    let b, i = deref_chain st act p d in
    record st false b i;
    b.data.(i)
  | Expr.New _ ->
    let b = fresh_block st 1 in
    intern_ptr st b 0

(* Resolve an lvalue to a concrete scalar cell (evaluating subscripts,
   which records their reads). *)
let resolve_cell st act (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar v -> (
    match lookup st act v with
    | Scalar_slot (b, i) -> (b, i)
    | Array_slot _ -> invalid_arg "Interp: whole-array lvalue in scalar position")
  | Expr.Lindex (a, idxs) -> (
    let ns = List.map (eval st act) idxs in
    match lookup st act a with
    | Array_slot (b, dims) -> (b, flatten_index dims ns)
    | Scalar_slot _ -> invalid_arg "Interp: scalar indexed (type bug)")
  | Expr.Lderef (p, d) -> deref_chain st act p d

let store st block idx n =
  record st true block idx;
  block.data.(idx) <- n

let tick st =
  st.steps <- st.steps + 1;
  if st.fuel <= 0 then raise Out_of_fuel;
  st.fuel <- st.fuel - 1

(* The variables the caller can name at a site, as physical locations:
   block id -> [(vid, Some cell)] for scalars / [(vid, None)] for whole
   arrays.  Innermost declarations shadow nothing here because vids are
   globally unique; with recursion the innermost activation wins
   (first-writer-wins on the vid set). *)
let caller_view st act =
  let table : (int, (int * int option) list) Hashtbl.t = Hashtbl.create 32 in
  let seen = Hashtbl.create 32 in
  let add vid slot =
    if not (Hashtbl.mem seen vid) then begin
      Hashtbl.add seen vid ();
      let key, entry =
        match slot with
        | Scalar_slot (b, i) -> (b.bid, (vid, Some i))
        | Array_slot (b, _) -> (b.bid, (vid, None))
      in
      Hashtbl.replace table key
        (entry :: Option.value ~default:[] (Hashtbl.find_opt table key))
    end
  in
  let rec walk = function
    | Some a ->
      Hashtbl.iter add a.act_slots;
      walk a.act_link
    | None -> Hashtbl.iter add st.globals
  in
  walk (Some act);
  table

let rec exec_stmts st act stmts = List.iter (exec_stmt st act) stmts

and exec_stmt st act (s : Stmt.t) =
  tick st;
  match s with
  | Stmt.Assign (lv, e) ->
    let b, i = resolve_cell st act lv in
    let n = eval st act e in
    store st b i n
  | Stmt.If (c, then_, else_) ->
    if truth (eval st act c) then exec_stmts st act then_ else exec_stmts st act else_
  | Stmt.While (c, body) ->
    while truth (eval st act c) do
      tick st;
      exec_stmts st act body
    done
  | Stmt.For (v, lo, hi, body) ->
    let b, i =
      match lookup st act v with
      | Scalar_slot (b, i) -> (b, i)
      | Array_slot _ -> invalid_arg "Interp: array loop variable"
    in
    let lo = eval st act lo in
    let hi = eval st act hi in
    store st b i lo;
    let continue_ () =
      record st false b i;
      b.data.(i) <= hi
    in
    while continue_ () do
      tick st;
      exec_stmts st act body;
      record st false b i;
      store st b i (b.data.(i) + 1)
    done
  | Stmt.Read lv ->
    let b, i = resolve_cell st act lv in
    let n = st.next_input in
    st.next_input <- n + 1;
    store st b i n
  | Stmt.Write e -> st.output_rev <- eval st act e :: st.output_rev
  | Stmt.Call sid -> ( try exec_call st act sid with Depth_skip -> ())

and exec_call st act sid =
  let site = Prog.site st.prog sid in
  let callee = Prog.proc st.prog site.Prog.callee in
  st.calls_executed.(sid) <- st.calls_executed.(sid) + 1;
  (* Evaluate arguments in the caller's frame. *)
  let bindings =
    Array.mapi
      (fun i arg ->
        let formal_vid = callee.Prog.formals.(i) in
        match arg with
        | Prog.Arg_value e ->
          let n = eval st act e in
          let b = fresh_block ~owner:formal_vid st 1 in
          b.data.(0) <- n;
          (formal_vid, Scalar_slot (b, 0))
        | Prog.Arg_ref (Expr.Lvar v) -> (formal_vid, lookup st act v)
        | Prog.Arg_ref ((Expr.Lindex _ | Expr.Lderef _) as lv) ->
          let b, i = resolve_cell st act (lv :> Expr.lvalue) in
          (formal_vid, Scalar_slot (b, i)))
      site.Prog.args
  in
  (* Dynamic §5 oracle: names bound to one physical cell on entry.
     Two by-ref formals handed the same cell alias each other, and a
     by-ref formal handed the cell of a variable visible inside the
     callee aliases that variable. *)
  let ref_keys =
    Array.to_list bindings
    |> List.filter_map (fun (fvid, slot) ->
           let is_ref =
             match (Prog.var st.prog fvid).Prog.kind with
             | Prog.Formal { mode = Prog.By_ref; _ } -> true
             | _ -> false
           in
           if not is_ref then None
           else
             match slot with
             | Scalar_slot (b, i) -> Some (fvid, b.bid, Some i)
             | Array_slot (b, _) -> Some (fvid, b.bid, None))
  in
  if ref_keys <> [] then begin
    let overlap c1 c2 =
      match (c1, c2) with
      | Some i, Some j -> i = j
      | None, _ | _, None -> true
    in
    let obs x y =
      if x <> y then
        let x, y = if x < y then (x, y) else (y, x) in
        Hashtbl.replace st.alias_obs (site.Prog.callee, x, y) ()
    in
    let rec pairs = function
      | [] -> ()
      | (fi, bi, ci) :: rest ->
        List.iter (fun (fj, bj, cj) -> if bi = bj && overlap ci cj then obs fi fj) rest;
        pairs rest
    in
    pairs ref_keys;
    let view = caller_view st act in
    List.iter
      (fun (fi, bid, ci) ->
        match Hashtbl.find_opt view bid with
        | None -> ()
        | Some entries ->
          List.iter
            (fun (vid, cell) ->
              if
                vid <> fi && overlap ci cell
                && Prog.visible st.prog ~proc:site.Prog.callee ~var:vid
              then obs fi vid)
            entries)
      ref_keys
  end;
  (* Static link: the innermost activation of the callee's lexical
     parent along the caller's chain. *)
  let link =
    match callee.Prog.parent with
    | None -> None
    | Some parent ->
      let rec find = function
        | Some a -> if a.act_proc = parent then Some a else find a.act_link
        | None -> None
      in
      find (Some act)
  in
  let slots = Hashtbl.create 8 in
  Array.iter
    (fun (vid, slot) ->
      Hashtbl.replace slots vid slot;
      (* Entry-value summary for the constant-propagation oracle. *)
      let summary =
        match slot with
        | Scalar_slot (b, i) -> (
          let n = b.data.(i) in
          match st.formal_entry.(vid) with
          | Never -> Always n
          | Always m when m = n -> Always n
          | Always _ | Varies -> Varies)
        | Array_slot _ -> Varies
      in
      st.formal_entry.(vid) <- summary)
    bindings;
  List.iter
    (fun vid -> Hashtbl.replace slots vid (slot_for_var st (Prog.var st.prog vid)))
    callee.Prog.locals;
  let callee_act = { act_proc = site.Prog.callee; act_slots = slots; act_link = link } in
  (* Attribute the locations touched in the call's dynamic extent to
     this site, through the caller's view — also when unwinding on a
     fault — then pass them up to the enclosing call. *)
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then begin
    (* Skip just this call: the rest of the program still executes and
       every observation stays valid (we merely under-observe). *)
    st.depth <- st.depth - 1;
    st.depth_skips <- st.depth_skips + 1;
    raise Depth_skip
  end;
  let mine = fresh_record () in
  st.records <- mine :: st.records;
  let skips0 = st.depth_skips in
  let completed = ref false in
  let attribute () =
    st.depth <- st.depth - 1;
    st.records <- List.tl st.records;
    let view = caller_view st act in
    let match_into target table =
      Hashtbl.iter
        (fun (bid, idx) () ->
          match Hashtbl.find_opt view bid with
          | None -> ()
          | Some entries ->
            List.iter
              (fun (vid, cell) ->
                let matches =
                  match cell with
                  | None -> true (* whole array *)
                  | Some i -> i = idx
                in
                if matches then Bitvec.set target vid)
              entries)
        table
    in
    match_into st.site_mods.(sid) mine.writes;
    match_into st.site_uses.(sid) mine.reads;
    match_into st.site_lives.(sid) mine.live_reads;
    (* The must oracle only trusts executions that ran to completion
       with no depth-skipped call inside their extent: a terminating,
       fully observed run.  The first such execution seeds the set;
       later ones intersect. *)
    if !completed && st.depth_skips = skips0 then begin
      let w = Bitvec.create (Prog.n_vars st.prog) in
      match_into w mine.writes;
      if st.must_runs.(sid) = 0 then st.site_musts.(sid) <- w
      else ignore (Bitvec.inter_into ~src:w ~dst:st.site_musts.(sid));
      st.must_runs.(sid) <- st.must_runs.(sid) + 1
    end;
    match st.records with
    | [] -> ()
    | parent :: _ ->
      (* A read live across this call is live across the parent's
         extent only if the parent had not already written the cell
         before the call began — test before merging the writes. *)
      Hashtbl.iter
        (fun k () ->
          if not (Hashtbl.mem parent.writes k) then
            Hashtbl.replace parent.live_reads k ())
        mine.live_reads;
      Hashtbl.iter (fun k () -> Hashtbl.replace parent.writes k ()) mine.writes;
      Hashtbl.iter (fun k () -> Hashtbl.replace parent.reads k ()) mine.reads
  in
  Fun.protect ~finally:attribute (fun () ->
      exec_stmts st callee_act callee.Prog.body;
      completed := true)

let run ?(fuel = 200_000) ?(max_depth = 2048) prog =
  let nv = Prog.n_vars prog in
  let ns = Prog.n_sites prog in
  let st =
    {
      prog;
      globals = Hashtbl.create 32;
      records = [];
      depth = 0;
      max_depth;
      depth_skips = 0;
      fuel;
      steps = 0;
      next_bid = 0;
      next_input = 1;
      output_rev = [];
      site_mods = Array.init ns (fun _ -> Bitvec.create nv);
      site_uses = Array.init ns (fun _ -> Bitvec.create nv);
      site_lives = Array.init ns (fun _ -> Bitvec.create nv);
      site_musts = Array.init ns (fun _ -> Bitvec.create nv);
      must_runs = Array.make ns 0;
      calls_executed = Array.make ns 0;
      formal_entry = Array.make nv Never;
      ptr_cells = [||];
      n_ptrs = 0;
      ptr_ids = Hashtbl.create 32;
      block_owner = Hashtbl.create 64;
      ptr_obs = Hashtbl.create 32;
      alias_obs = Hashtbl.create 32;
    }
  in
  Prog.iter_vars prog (fun v ->
      if Prog.is_global v then Hashtbl.replace st.globals v.Prog.vid (slot_for_var st v));
  let main = Prog.proc prog prog.Prog.main in
  let slots = Hashtbl.create 8 in
  List.iter
    (fun vid -> Hashtbl.replace slots vid (slot_for_var st (Prog.var prog vid)))
    main.Prog.locals;
  let main_act = { act_proc = prog.Prog.main; act_slots = slots; act_link = None } in
  let truncated =
    try
      exec_stmts st main_act main.Prog.body;
      st.depth_skips > 0
    with
    | Out_of_fuel | Arith_fault -> true
  in
  {
    output = List.rev st.output_rev;
    steps = st.steps;
    truncated;
    site_mods = st.site_mods;
    site_uses = st.site_uses;
    site_lives = st.site_lives;
    site_musts = st.site_musts;
    must_runs = st.must_runs;
    calls_executed = st.calls_executed;
    formal_entry = st.formal_entry;
    ptr_obs = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) st.ptr_obs []);
    alias_obs =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) st.alias_obs []);
  }

let observed_mod (o : outcome) sid = o.site_mods.(sid)
let observed_use (o : outcome) sid = o.site_uses.(sid)
let observed_live (o : outcome) sid = o.site_lives.(sid)

let observed_must (o : outcome) sid =
  if o.must_runs.(sid) = 0 then None else Some o.site_musts.(sid)
