(** A MiniProc interpreter with effect tracing — the dynamic oracle for
    the static analysis.

    Programs execute under Pascal semantics: fresh locals per
    activation, static links for nested procedures (a nested procedure
    reads and writes the {e current} enclosing activation's locals),
    by-value parameters copied in, by-reference parameters aliased to
    the actual's physical location (a whole variable or a single array
    element).

    Every store and load is recorded against the {e physical} location
    it touches.  For each call site, the locations touched during the
    dynamic extent of each of its executions are mapped back to the
    variables the {e caller} can name at that site (through its own
    static chain — exactly the frame of reference of the paper's
    [MOD(s)]/[USE(s)] sets) and accumulated.  This yields, per site,
    the set of variables {e observed} modified and used:

    - soundness of the analysis demands
      [observed_mod ⊆ MOD(s)] and [observed_use ⊆ USE(s)] —
      checked by the differential test-suite on random programs;
    - the gap [|MOD(s)| − |observed|] measures (an upper bound of) the
      imprecision of flow-insensitive summaries.

    Runs are deterministic: [read] statements consume 1, 2, 3, …; there
    is no other input.  A fuel limit bounds recursion and loops; a run
    that exhausts fuel (or divides by zero) is {e truncated}, which
    leaves the observations valid — every event already recorded really
    happened. *)

(** What the run saw bound to a formal parameter across all
    invocations of its procedure. *)
type entry_summary =
  | Never  (** The procedure was never invoked. *)
  | Always of int  (** Every invocation bound this value (scalars). *)
  | Varies  (** Different values, or a whole-array binding. *)

type outcome = {
  output : int list;  (** Values written by [write], in order. *)
  steps : int;  (** Statements executed. *)
  truncated : bool;  (** Fuel ran out or an arithmetic fault occurred. *)
  site_mods : Bitvec.t array;
      (** Per call site: caller-nameable variables observed modified
          during the site's executions (union over executions). *)
  site_uses : Bitvec.t array;  (** Same for loads. *)
  site_lives : Bitvec.t array;
      (** Per call site: caller-nameable variables some execution of
          the site {e read before writing} — cells whose pre-call value
          the call consumed.  The dynamic witness of liveness into a
          call: soundness of the statement-level liveness solver demands
          [observed_live ⊆ alias-closure(b_e(LIVE_in(callee entry)))]
          for executed sites of non-truncated runs. *)
  site_musts : Bitvec.t array;
      (** Per call site: caller-nameable variables written by {e every}
          completed, skip-free execution of the site — the intersection
          over such executions, the dynamic must-modify oracle.
          Meaningless (all zeros) while [must_runs] is 0.  Soundness of
          {!Core.Mustmod} demands the projected [MUSTMOD(callee)]
          (minus alias demotions) be a subset of this set whenever at
          least one execution contributed: a must-claim names only
          variables every terminating run writes. *)
  must_runs : int array;
      (** Per site: executions that contributed to [site_musts] — ran
          to completion with no depth-skipped call in their extent. *)
  calls_executed : int array;  (** Per site: how many times it ran. *)
  formal_entry : entry_summary array;
      (** Per variable id: entry-value summary for formals (the
          dynamic oracle of the {!Ipcp} analysis). *)
  ptr_obs : (int * int * int) list;
      (** [(p, d, v)]: the [d]-fold dereference of pointer variable [p]
          was observed to reach the cell of variable [v] ([-1] for a
          heap or anonymous cell).  The dynamic points-to oracle:
          soundness demands every [(p, d, v)] with [v >= 0] appear in
          the static [deref_targets], and every [(p, d, -1)] be covered
          by a heap location in the points-to set. *)
  alias_obs : (int * int * int) list;
      (** [(pid, x, y)] with [x < y]: on entry to procedure [pid], the
          names [x] and [y] were bound to one physical cell (two by-ref
          formals handed the same cell, or a by-ref formal handed the
          cell of a variable visible in the callee).  The dynamic §5
          oracle: soundness demands each pair appear in
          [Alias.may_alias]. *)
}

val run : ?fuel:int -> ?max_depth:int -> Ir.Prog.t -> outcome
(** Execute from the main block.  Default [fuel] is [200_000]
    statements; [max_depth] (default 2048) bounds the call stack —
    a call that would exceed it is skipped (marking the run truncated),
    so the rest of the program still executes. *)

val observed_mod : outcome -> int -> Bitvec.t
(** Per site id.  Do not mutate. *)

val observed_use : outcome -> int -> Bitvec.t

val observed_live : outcome -> int -> Bitvec.t
(** Per site id: variables read-before-written in the site's dynamic
    extent.  Do not mutate. *)

val observed_must : outcome -> int -> Bitvec.t option
(** Per site id: the always-written set over the site's completed,
    skip-free executions — [None] when no execution qualified.  Do not
    mutate. *)
