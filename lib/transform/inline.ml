module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt

let site_record prog sid = Prog.site prog sid

let inlinable prog sid =
  if sid < 0 || sid >= Prog.n_sites prog then false
  else begin
    let s = site_record prog sid in
    let callee = Prog.proc prog s.Prog.callee in
    callee.Prog.nested = []
    && Array.for_all
         (fun arg ->
           match arg with
           | Prog.Arg_ref (Expr.Lindex _ | Expr.Lderef _) -> false
           | Prog.Arg_ref (Expr.Lvar _) | Prog.Arg_value _ -> true)
         s.Prog.args
    && List.for_all
         (fun l ->
           let ty = (Prog.var prog l).Prog.vty in
           (* No zero literal exists for pointers, so pointer locals
              cannot be re-initialised at the inline point. *)
           not (Ir.Types.is_array ty || Ir.Types.is_ptr ty))
         callee.Prog.locals
  end

(* Substitute variable ids through expressions and statements. *)
let rec subst_expr sub (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Bool _ | Expr.New _ -> e
  | Expr.Var v -> Expr.Var (sub v)
  | Expr.Addr v -> Expr.Addr (sub v)
  | Expr.Deref (v, d) -> Expr.Deref (sub v, d)
  | Expr.Index (a, idx) -> Expr.Index (sub a, List.map (subst_expr sub) idx)
  | Expr.Binop (op, l, r) -> Expr.Binop (op, subst_expr sub l, subst_expr sub r)
  | Expr.Unop (op, e) -> Expr.Unop (op, subst_expr sub e)

let subst_lvalue sub (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar v -> Expr.Lvar (sub v)
  | Expr.Lindex (a, idx) -> Expr.Lindex (sub a, List.map (subst_expr sub) idx)
  | Expr.Lderef (v, d) -> Expr.Lderef (sub v, d)

let site prog ~sid =
  if not (inlinable prog sid) then None
  else begin
    let s = site_record prog sid in
    let caller_pid = s.Prog.caller in
    let callee = Prog.proc prog s.Prog.callee in
    let nv = Prog.n_vars prog in
    (* Fresh locals of the caller: by-value formals and callee locals. *)
    let new_vars = ref [] in
    let n_new = ref 0 in
    let fresh_local ~of_var =
      let v = Prog.var prog of_var in
      let vid = nv + !n_new in
      incr n_new;
      new_vars :=
        {
          Prog.vid;
          vname = Printf.sprintf "inl%d_%s" vid v.Prog.vname;
          vty = v.Prog.vty;
          kind = Prog.Local caller_pid;
        }
        :: !new_vars;
      vid
    in
    let sub_table = Hashtbl.create 16 in
    let init_stmts = ref [] in
    (* Formals, in positional order (argument evaluation order). *)
    Array.iteri
      (fun i arg ->
        let f = callee.Prog.formals.(i) in
        match arg with
        | Prog.Arg_ref (Expr.Lvar v) -> Hashtbl.replace sub_table f v
        | Prog.Arg_value e ->
          let fresh = fresh_local ~of_var:f in
          Hashtbl.replace sub_table f fresh;
          init_stmts := Stmt.Assign (Expr.Lvar fresh, e) :: !init_stmts
        | Prog.Arg_ref (Expr.Lindex _ | Expr.Lderef _) -> assert false)
      s.Prog.args;
    (* Locals: fresh, zero-initialised at the inline point (a callee
       activation always starts them at 0; the inlined copy may execute
       many times in one caller activation). *)
    List.iter
      (fun l ->
        let fresh = fresh_local ~of_var:l in
        Hashtbl.replace sub_table l fresh;
        let zero =
          match (Prog.var prog l).Prog.vty with
          | Ir.Types.Bool -> Expr.Bool false
          | Ir.Types.Int -> Expr.Int 0
          | Ir.Types.Array _ | Ir.Types.Ptr _ -> assert false
        in
        init_stmts := Stmt.Assign (Expr.Lvar fresh, zero) :: !init_stmts)
      callee.Prog.locals;
    let sub v = Option.value ~default:v (Hashtbl.find_opt sub_table v) in
    (* Rewrite the callee body.  Call sites inside it become new sites
       of the caller, provisionally numbered after the existing ones. *)
    let new_sites = ref [] in
    let n_new_sites = ref 0 in
    let clone_site inner_sid =
      let inner = site_record prog inner_sid in
      let provisional = Prog.n_sites prog + !n_new_sites in
      incr n_new_sites;
      new_sites :=
        {
          Prog.sid = provisional;
          caller = caller_pid;
          callee = inner.Prog.callee;
          args =
            Array.map
              (fun arg ->
                match arg with
                | Prog.Arg_value e -> Prog.Arg_value (subst_expr sub e)
                | Prog.Arg_ref lv -> Prog.Arg_ref (subst_lvalue sub lv))
              inner.Prog.args;
        }
        :: !new_sites;
      provisional
    in
    let rec rewrite_stmt (st : Stmt.t) =
      match st with
      | Stmt.Assign (lv, e) -> Stmt.Assign (subst_lvalue sub lv, subst_expr sub e)
      | Stmt.If (c, a, b) ->
        Stmt.If (subst_expr sub c, List.map rewrite_stmt a, List.map rewrite_stmt b)
      | Stmt.While (c, b) -> Stmt.While (subst_expr sub c, List.map rewrite_stmt b)
      | Stmt.For (v, lo, hi, b) ->
        Stmt.For (sub v, subst_expr sub lo, subst_expr sub hi, List.map rewrite_stmt b)
      | Stmt.Call inner_sid -> Stmt.Call (clone_site inner_sid)
      | Stmt.Read lv -> Stmt.Read (subst_lvalue sub lv)
      | Stmt.Write e -> Stmt.Write (subst_expr sub e)
    in
    let inlined_body =
      List.rev !init_stmts @ List.map rewrite_stmt callee.Prog.body
    in
    (* Splice into the caller's body, replacing the call statement. *)
    let rec splice stmts =
      List.concat_map
        (fun (st : Stmt.t) ->
          match st with
          | Stmt.Call k when k = sid -> inlined_body
          | Stmt.If (c, a, b) -> [ Stmt.If (c, splice a, splice b) ]
          | Stmt.While (c, b) -> [ Stmt.While (c, splice b) ]
          | Stmt.For (v, lo, hi, b) -> [ Stmt.For (v, lo, hi, splice b) ]
          | Stmt.Assign _ | Stmt.Call _ | Stmt.Read _ | Stmt.Write _ -> [ st ])
        stmts
    in
    (* Renumber sites densely: survivors keep order, new sites follow. *)
    let survivors =
      Array.to_list prog.Prog.sites |> List.filter (fun t -> t.Prog.sid <> sid)
    in
    let final_sites = survivors @ List.rev !new_sites in
    let remap = Hashtbl.create 32 in
    List.iteri (fun i t -> Hashtbl.replace remap t.Prog.sid i) final_sites;
    let final_sites =
      List.mapi (fun i t -> { t with Prog.sid = i }) final_sites |> Array.of_list
    in
    let rec renumber (st : Stmt.t) =
      match st with
      | Stmt.Call k -> Stmt.Call (Hashtbl.find remap k)
      | Stmt.If (c, a, b) -> Stmt.If (c, List.map renumber a, List.map renumber b)
      | Stmt.While (c, b) -> Stmt.While (c, List.map renumber b)
      | Stmt.For (v, lo, hi, b) -> Stmt.For (v, lo, hi, List.map renumber b)
      | Stmt.Assign _ | Stmt.Read _ | Stmt.Write _ -> st
    in
    let procs =
      Array.map
        (fun pr ->
          let body =
            if pr.Prog.pid = caller_pid then splice pr.Prog.body else pr.Prog.body
          in
          let locals =
            if pr.Prog.pid = caller_pid then
              pr.Prog.locals @ List.rev_map (fun v -> v.Prog.vid) !new_vars
            else pr.Prog.locals
          in
          { pr with Prog.body = List.map renumber body; locals })
        prog.Prog.procs
    in
    Some
      {
        prog with
        Prog.vars = Array.append prog.Prog.vars (Array.of_list (List.rev !new_vars));
        procs;
        sites = final_sites;
      }
  end

let inline_all_once prog ~max =
  let rec go prog budget =
    if budget = 0 then prog
    else begin
      let candidate = ref None in
      let n = Prog.n_sites prog in
      let i = ref 0 in
      while !candidate = None && !i < n do
        if inlinable prog !i then candidate := Some !i;
        incr i
      done;
      match !candidate with
      | None -> prog
      | Some sid -> (
        match site prog ~sid with
        | None -> prog
        | Some prog' -> go prog' (budget - 1))
    end
  in
  go prog max
