(* Dense bit vectors over int arrays.  See bitvec.mli for the API
   contract.  Bits are stored little-endian within each word; unused
   high bits of the last word are kept at zero so that whole-word
   comparisons and population counts need no masking. *)

let bits_per_word = Sys.int_size

type t = {
  length : int;
  words : int array;
}

(* Operation counters, see mli.  Registry-backed: the counters are
   monotonic Obs handles, never reset; consumers measure intervals with
   Obs.Metric.snapshot/delta. *)
let vector_ops_metric = Obs.Metric.counter "bitvec.vector_ops"
let word_ops_metric = Obs.Metric.counter "bitvec.word_ops"

module Stats = struct
  (* Deprecated shim over the registry.  [reset] no longer zeroes the
     global counters (that would clobber any concurrent snapshot/delta
     measurement); it re-bases this module's private baseline, so the
     old read-after-reset protocol keeps its exact semantics.

     The baseline pair is mutex-guarded so concurrent [reset]/readers
     cannot observe a torn (vector from one reset, word from another)
     baseline.  Exactness of the values themselves follows the sharded
     registry contract: reads are exact at quiescent points (e.g.
     after a Par.Pool batch join); a read racing live worker
     increments may lag them. *)
  let mu = Mutex.create ()
  let base_vector = ref 0
  let base_word = ref 0

  let reset () =
    let v = Obs.Metric.value vector_ops_metric in
    let w = Obs.Metric.value word_ops_metric in
    Mutex.lock mu;
    base_vector := v;
    base_word := w;
    Mutex.unlock mu

  let read metric base =
    let v = Obs.Metric.value metric in
    Mutex.lock mu;
    let b = !base in
    Mutex.unlock mu;
    v - b

  let vector_ops () = read vector_ops_metric base_vector
  let word_ops () = read word_ops_metric base_word
end

let count_words n =
  Obs.Metric.incr vector_ops_metric;
  Obs.Metric.add word_ops_metric n

let words_for length = (length + bits_per_word - 1) / bits_per_word

let create length =
  if length < 0 then invalid_arg "Bitvec.create: negative length";
  { length; words = Array.make (words_for length) 0 }

let length v = v.length

let check_index v i op =
  if i < 0 || i >= v.length then
    invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0, %d)" op i v.length)

let get v i =
  check_index v i "get";
  v.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set v i =
  check_index v i "set";
  let w = i / bits_per_word in
  v.words.(w) <- v.words.(w) lor (1 lsl (i mod bits_per_word))

let unset v i =
  check_index v i "unset";
  let w = i / bits_per_word in
  v.words.(w) <- v.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear v =
  count_words (Array.length v.words);
  Array.fill v.words 0 (Array.length v.words) 0

let copy v =
  count_words (Array.length v.words);
  { length = v.length; words = Array.copy v.words }

let check_same_length a b op =
  if a.length <> b.length then
    invalid_arg
      (Printf.sprintf "Bitvec.%s: lengths differ (%d vs %d)" op a.length b.length)

let blit ~src ~dst =
  check_same_length src dst "blit";
  count_words (Array.length src.words);
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

(* The three destructive set operations share their loop shape: combine
   each word pair, track whether any word changed. *)
let combine_into op ~src ~dst name =
  check_same_length src dst name;
  count_words (Array.length src.words);
  let changed = ref false in
  for w = 0 to Array.length dst.words - 1 do
    let v = op dst.words.(w) src.words.(w) in
    if v <> dst.words.(w) then begin
      dst.words.(w) <- v;
      changed := true
    end
  done;
  !changed

let union_into ~src ~dst = combine_into (fun d s -> d lor s) ~src ~dst "union_into"
let inter_into ~src ~dst = combine_into (fun d s -> d land s) ~src ~dst "inter_into"
let diff_into ~src ~dst = combine_into (fun d s -> d land lnot s) ~src ~dst "diff_into"

let union a b =
  let r = copy a in
  ignore (union_into ~src:b ~dst:r);
  r

let inter a b =
  let r = copy a in
  ignore (inter_into ~src:b ~dst:r);
  r

let diff a b =
  let r = copy a in
  ignore (diff_into ~src:b ~dst:r);
  r

let equal a b =
  check_same_length a b "equal";
  count_words (Array.length a.words);
  let rec loop w =
    w < 0 || (a.words.(w) = b.words.(w) && loop (w - 1))
  in
  loop (Array.length a.words - 1)

let subset a b =
  check_same_length a b "subset";
  count_words (Array.length a.words);
  let rec loop w =
    w < 0 || (a.words.(w) land lnot b.words.(w) = 0 && loop (w - 1))
  in
  loop (Array.length a.words - 1)

let disjoint a b =
  check_same_length a b "disjoint";
  count_words (Array.length a.words);
  let rec loop w =
    w < 0 || (a.words.(w) land b.words.(w) = 0 && loop (w - 1))
  in
  loop (Array.length a.words - 1)

let is_empty v =
  count_words (Array.length v.words);
  let rec loop w = w < 0 || (v.words.(w) = 0 && loop (w - 1)) in
  loop (Array.length v.words - 1)

(* Branch-free SWAR popcount.  The masks are built programmatically
   because the usual 0x5555... literals overflow OCaml's 63-bit [int];
   repeating the pattern across [Sys.int_size] bits (high partial
   repetition truncated by [lsl]) gives the same field layout.  The
   final multiply accumulates the byte sums into the top byte; the
   top field is only [int_size mod 8] bits wide, but the total count
   (<= int_size < 128) always fits. *)
let rep pattern width =
  let rec go acc shift =
    if shift >= Sys.int_size then acc else go (acc lor (pattern lsl shift)) (shift + width)
  in
  go 0 0

let m1 = rep 0x1 2
let m2 = rep 0x3 4
let m4 = rep 0xf 8
let m8 = rep 0x01 8
let popcount_shift = (Sys.int_size - 1) / 8 * 8

let popcount_word x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * m8) lsr popcount_shift

let cardinal v =
  count_words (Array.length v.words);
  Array.fold_left (fun acc w -> acc + popcount_word w) 0 v.words

let iter f v =
  count_words (Array.length v.words);
  for w = 0 to Array.length v.words - 1 do
    let word = v.words.(w) in
    if word <> 0 then begin
      let base = w * bits_per_word in
      let rest = ref word in
      while !rest <> 0 do
        (* Index of the lowest set bit: isolate it, then count its
           trailing zeros by repeated shifting of the isolated bit. *)
        let low = !rest land - !rest in
        let bit = ref 0 in
        let probe = ref low in
        while !probe land 1 = 0 do
          probe := !probe lsr 1;
          incr bit
        done;
        f (base + !bit);
        rest := !rest land lnot low
      done
    end
  done

let fold f v init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) v;
  !acc

exception Found

let exists p v =
  try
    iter (fun i -> if p i then raise Found) v;
    false
  with Found -> true

let to_list v = List.rev (fold (fun i acc -> i :: acc) v [])

let of_list n is =
  let v = create n in
  List.iter (fun i -> set v i) is;
  v

let choose v =
  let result = ref None in
  (try iter (fun i -> result := Some i; raise Found) v with Found -> ());
  !result

let pp ppf v =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list v)
