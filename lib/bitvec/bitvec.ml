(* Hybrid sparse/dense bit vectors.  See bitvec.mli for the API and
   cost-accounting contract.

   Two representations behind one mutable [t]:

   - [Small]: a sorted array of set-bit indices (a [card]-long prefix
     of [elts]).  Operations cost O(live cardinalities), independent of
     the universe size.  Auto-promotes to [Dense] when the cardinality
     exceeds [small_threshold length] (~ the dense word count, so the
     small form is never asymptotically worse than dense in either
     memory or per-op cost).
   - [Dense]: the classic int-array bitset, little-endian bits within a
     word, unused high bits zero — plus an exact [top]: the number of
     words up to and including the highest nonzero one.  Dense
     operations only walk the occupied prefix, so a promoted set whose
     members cluster at low indices (see the per-SCC renumbering pass
     in lib/core/renumber.ml) still pays live-size costs.

   Representation transitions are pure functions of the per-vector
   operation sequence, so parallel schedules that replay the sequential
   op sequence per vector (lib/par) reproduce word counts exactly.

   [set_hybrid false] restores the seed's dense-only behaviour: new
   vectors are created dense, promotion/demotion never happens, and
   every dense operation charges the full word count of the universe —
   the legacy accounting, kept so hybrid runs can be qcheck-compared
   against dense runs op-for-op. *)

let bits_per_word = Sys.int_size
let words_for length = (length + bits_per_word - 1) / bits_per_word

type repr =
  | Small of { mutable card : int; mutable elts : int array }
  | Dense of { mutable top : int; words : int array }

type t = {
  length : int;
  mutable repr : repr;
}

(* Operation counters, see mli.  Registry-backed: the counters are
   monotonic Obs handles, never reset; consumers measure intervals with
   Obs.Metric.snapshot/delta. *)
let vector_ops_metric = Obs.Metric.counter "bitvec.vector_ops"
let word_ops_metric = Obs.Metric.counter "bitvec.word_ops"
let small_ops_metric = Obs.Metric.counter "bitvec.small_ops"

module Stats = struct
  (* Deprecated shim over the registry.  [reset] no longer zeroes the
     global counters (that would clobber any concurrent snapshot/delta
     measurement); it re-bases this module's private baseline, so the
     old read-after-reset protocol keeps its exact semantics.

     The baseline pair is mutex-guarded so concurrent [reset]/readers
     cannot observe a torn (vector from one reset, word from another)
     baseline.  Exactness of the values themselves follows the sharded
     registry contract: reads are exact at quiescent points (e.g.
     after a Par.Pool batch join); a read racing live worker
     increments may lag them. *)
  let mu = Mutex.create ()
  let base_vector = ref 0
  let base_word = ref 0

  let reset () =
    let v = Obs.Metric.value vector_ops_metric in
    let w = Obs.Metric.value word_ops_metric in
    Mutex.lock mu;
    base_vector := v;
    base_word := w;
    Mutex.unlock mu

  let read metric base =
    let v = Obs.Metric.value metric in
    Mutex.lock mu;
    let b = !base in
    Mutex.unlock mu;
    v - b

  let vector_ops () = read vector_ops_metric base_vector
  let word_ops () = read word_ops_metric base_word
end

let count_words n =
  Obs.Metric.incr vector_ops_metric;
  Obs.Metric.add word_ops_metric n

let count_small n =
  Obs.Metric.incr small_ops_metric;
  count_words n

(* --- mode --- *)

let hybrid_mode =
  ref (match Sys.getenv_opt "SIDEFX_BITVEC" with Some "dense" -> false | _ -> true)

let set_hybrid b = hybrid_mode := b
let hybrid_enabled () = !hybrid_mode
let small_threshold length = max 16 (words_for length)

(* Cost of a dense walk that actually touched [actual] words: the
   occupied prefix in hybrid mode, the full legacy universe in dense
   mode. *)
let dense_cost length actual =
  if !hybrid_mode then max 1 actual else max 1 (words_for length)

(* --- representation helpers (uncounted) --- *)

let small_copy card elts = Small { card; elts = Array.sub elts 0 card }

let repr_copy = function
  | Small { card; elts } -> small_copy card elts
  | Dense { top; words } -> Dense { top; words = Array.copy words }

(* Exact top of a word array, scanning down from [from] (exclusive). *)
let rescan_top words from =
  let w = ref (from - 1) in
  while !w >= 0 && words.(!w) = 0 do
    decr w
  done;
  !w + 1

(* Promote a small prefix to a dense array.  The zero-fill of the
   fresh array is allocation, not a bit-vector step; the counted cost
   of a promotion is the [card] scattered elements (charged by the
   caller). *)
let dense_of_small length card elts =
  let words = Array.make (words_for length) 0 in
  for i = 0 to card - 1 do
    let e = elts.(i) in
    words.(e / bits_per_word) <- words.(e / bits_per_word) lor (1 lsl (e mod bits_per_word))
  done;
  let top = if card = 0 then 0 else (elts.(card - 1) / bits_per_word) + 1 in
  Dense { top; words }

(* Collect the [card] set bits of [words.(0..top-1)] into a sorted
   element array (the demotion direction). *)
let small_of_dense top words card =
  let elts = Array.make (max card 1) 0 in
  let k = ref 0 in
  for w = 0 to top - 1 do
    let word = ref words.(w) in
    let base = w * bits_per_word in
    while !word <> 0 do
      let low = !word land - !word in
      let bit = ref 0 in
      let probe = ref low in
      while !probe land 1 = 0 do
        probe := !probe lsr 1;
        incr bit
      done;
      elts.(!k) <- base + !bit;
      incr k;
      word := !word land lnot low
    done
  done;
  Small { card; elts }

(* Binary search in a sorted prefix: Ok index if present, Error
   insertion point otherwise. *)
let search elts card x =
  let lo = ref 0 and hi = ref card in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if elts.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if !lo < card && elts.(!lo) = x then Ok !lo else Error !lo

(* Branch-free SWAR popcount.  The masks are built programmatically
   because the usual 0x5555... literals overflow OCaml's 63-bit [int];
   repeating the pattern across [Sys.int_size] bits (high partial
   repetition truncated by [lsl]) gives the same field layout.  The
   final multiply accumulates the byte sums into the top byte; the
   top field is only [int_size mod 8] bits wide, but the total count
   (<= int_size < 128) always fits. *)
let rep pattern width =
  let rec go acc shift =
    if shift >= Sys.int_size then acc else go (acc lor (pattern lsl shift)) (shift + width)
  in
  go 0 0

let m1 = rep 0x1 2
let m2 = rep 0x3 4
let m4 = rep 0xf 8
let m8 = rep 0x01 8
let popcount_shift = (Sys.int_size - 1) / 8 * 8

let popcount_word x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  (x * m8) lsr popcount_shift

(* --- construction --- *)

let create length =
  if length < 0 then invalid_arg "Bitvec.create: negative length";
  let repr =
    if !hybrid_mode then Small { card = 0; elts = [||] }
    else Dense { top = 0; words = Array.make (words_for length) 0 }
  in
  { length; repr }

let length v = v.length

let check_index v i op =
  if i < 0 || i >= v.length then
    invalid_arg (Printf.sprintf "Bitvec.%s: index %d out of [0, %d)" op i v.length)

let check_same_length a b op =
  if a.length <> b.length then
    invalid_arg
      (Printf.sprintf "Bitvec.%s: lengths differ (%d vs %d)" op a.length b.length)

(* --- point operations (uncounted, as before) --- *)

let get v i =
  check_index v i "get";
  match v.repr with
  | Small { card; elts } -> (match search elts card i with Ok _ -> true | Error _ -> false)
  | Dense { words; _ } -> words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let rec set v i =
  check_index v i "set";
  match v.repr with
  | Small r -> (
    match search r.elts r.card i with
    | Ok _ -> ()
    | Error at ->
      if r.card > small_threshold v.length - 1 then begin
        (* Promotion boundary crossed via [set]: materialise dense,
           then set the bit there.  Point operations stay uncounted. *)
        v.repr <- dense_of_small v.length r.card r.elts;
        set v i
      end
      else begin
        let cap = Array.length r.elts in
        if r.card = cap then begin
          let grown = Array.make (max 4 (2 * cap)) 0 in
          Array.blit r.elts 0 grown 0 r.card;
          r.elts <- grown
        end;
        Array.blit r.elts at r.elts (at + 1) (r.card - at);
        r.elts.(at) <- i;
        r.card <- r.card + 1
      end)
  | Dense d ->
    let w = i / bits_per_word in
    d.words.(w) <- d.words.(w) lor (1 lsl (i mod bits_per_word));
    if w + 1 > d.top then d.top <- w + 1

let unset v i =
  check_index v i "unset";
  match v.repr with
  | Small r -> (
    match search r.elts r.card i with
    | Error _ -> ()
    | Ok at ->
      Array.blit r.elts (at + 1) r.elts at (r.card - at - 1);
      r.card <- r.card - 1)
  | Dense d ->
    let w = i / bits_per_word in
    d.words.(w) <- d.words.(w) land lnot (1 lsl (i mod bits_per_word));
    if w = d.top - 1 && d.words.(w) = 0 then d.top <- rescan_top d.words w

(* --- whole-vector operations (counted) --- *)

let clear v =
  if !hybrid_mode then begin
    count_small 1;
    v.repr <- Small { card = 0; elts = [||] }
  end
  else begin
    count_words (words_for v.length);
    match v.repr with
    | Small r -> r.card <- 0
    | Dense d ->
      Array.fill d.words 0 (Array.length d.words) 0;
      d.top <- 0
  end

let copy v =
  (match v.repr with
  | Small { card; _ } -> count_small (max 1 card)
  | Dense { top; _ } -> count_words (dense_cost v.length top));
  { length = v.length; repr = repr_copy v.repr }

let blit ~src ~dst =
  check_same_length src dst "blit";
  match (src.repr, dst.repr) with
  | Dense s, Dense d ->
    (* In place: copy the occupied prefix, zero what the destination
       had above it. *)
    count_words (dense_cost src.length (max s.top d.top));
    Array.blit s.words 0 d.words 0 s.top;
    if d.top > s.top then Array.fill d.words s.top (d.top - s.top) 0;
    d.top <- s.top
  | Small { card; _ }, _ ->
    count_small (max 1 card);
    dst.repr <- repr_copy src.repr
  | Dense { top; _ }, _ ->
    count_words (dense_cost src.length top);
    dst.repr <- repr_copy src.repr

(* Merge two sorted prefixes into [out]; returns the merged length. *)
let merge_union a ca b cb out =
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < ca && !j < cb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then (out.(!k) <- x; incr i)
    else if y < x then (out.(!k) <- y; incr j)
    else (out.(!k) <- x; incr i; incr j);
    incr k
  done;
  while !i < ca do out.(!k) <- a.(!i); incr i; incr k done;
  while !j < cb do out.(!k) <- b.(!j); incr j; incr k done;
  !k

let union_into ~src ~dst =
  check_same_length src dst "union_into";
  match (src.repr, dst.repr) with
  | Small s, Small d ->
    let out = Array.make (max 1 (s.card + d.card)) 0 in
    let merged = merge_union s.elts s.card d.elts d.card out in
    let changed = merged <> d.card in
    if changed then
      if !hybrid_mode && merged > small_threshold dst.length then begin
        count_small (max 1 (s.card + d.card) + merged);
        dst.repr <- dense_of_small dst.length merged out
      end
      else begin
        count_small (max 1 (s.card + d.card));
        d.elts <- out;
        d.card <- merged
      end
    else count_small (max 1 (s.card + d.card));
    changed
  | Small s, Dense d ->
    count_small (max 1 s.card);
    let changed = ref false in
    for i = 0 to s.card - 1 do
      let e = s.elts.(i) in
      let w = e / bits_per_word in
      let bit = 1 lsl (e mod bits_per_word) in
      if d.words.(w) land bit = 0 then begin
        d.words.(w) <- d.words.(w) lor bit;
        changed := true;
        if w + 1 > d.top then d.top <- w + 1
      end
    done;
    !changed
  | Dense s, Small d ->
    (* Result is at least |src| big: promote the destination, then take
       the dense path.  Promotion charges the scattered elements. *)
    count_small d.card;
    dst.repr <- dense_of_small dst.length d.card d.elts;
    (match dst.repr with
    | Dense d' ->
      count_words (dense_cost src.length s.top);
      let changed = ref false in
      for w = 0 to s.top - 1 do
        let v = d'.words.(w) lor s.words.(w) in
        if v <> d'.words.(w) then begin
          d'.words.(w) <- v;
          changed := true
        end
      done;
      if s.top > d'.top then d'.top <- s.top;
      !changed
    | Small _ -> assert false)
  | Dense s, Dense d ->
    count_words (dense_cost src.length s.top);
    let changed = ref false in
    let span = if !hybrid_mode then s.top else Array.length s.words in
    for w = 0 to span - 1 do
      let v = d.words.(w) lor s.words.(w) in
      if v <> d.words.(w) then begin
        d.words.(w) <- v;
        changed := true
      end
    done;
    if s.top > d.top then d.top <- s.top;
    !changed

(* Sorted intersection of two prefixes into [out]; returns length. *)
let merge_inter a ca b cb out =
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < ca && !j < cb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else (out.(!k) <- x; incr i; incr j; incr k)
  done;
  !k

let inter_into ~src ~dst =
  check_same_length src dst "inter_into";
  match (src.repr, dst.repr) with
  | Small s, Small d ->
    count_small (max 1 (s.card + d.card));
    let out = Array.make (max 1 d.card) 0 in
    let kept = merge_inter s.elts s.card d.elts d.card out in
    let changed = kept <> d.card in
    if changed then begin
      d.elts <- out;
      d.card <- kept
    end;
    changed
  | Dense s, Small d ->
    (* Filter the small destination by membership probes. *)
    count_small (max 1 d.card);
    let k = ref 0 in
    for i = 0 to d.card - 1 do
      let e = d.elts.(i) in
      if s.words.(e / bits_per_word) land (1 lsl (e mod bits_per_word)) <> 0 then begin
        d.elts.(!k) <- e;
        incr k
      end
    done;
    let changed = !k <> d.card in
    d.card <- !k;
    changed
  | Small s, Dense d ->
    (* Result ⊆ src, so it is small: collect src's elements present in
       dst, and charge the dense prefix scan that decides [changed]. *)
    let kept = Array.make (max 1 s.card) 0 in
    let k = ref 0 in
    for i = 0 to s.card - 1 do
      let e = s.elts.(i) in
      if d.words.(e / bits_per_word) land (1 lsl (e mod bits_per_word)) <> 0 then begin
        kept.(!k) <- e;
        incr k
      end
    done;
    let card_dst = ref 0 in
    let span = if !hybrid_mode then d.top else Array.length d.words in
    for w = 0 to span - 1 do
      card_dst := !card_dst + popcount_word d.words.(w)
    done;
    let changed = !k <> !card_dst in
    if !hybrid_mode then begin
      count_small (max 1 s.card + span);
      dst.repr <- Small { card = !k; elts = kept }
    end
    else begin
      count_words (max 1 s.card + span);
      Array.fill d.words 0 (Array.length d.words) 0;
      d.top <- 0;
      for i = 0 to !k - 1 do
        let e = kept.(i) in
        let w = e / bits_per_word in
        d.words.(w) <- d.words.(w) lor (1 lsl (e mod bits_per_word));
        if w + 1 > d.top then d.top <- w + 1
      done
    end;
    changed
  | Dense s, Dense d ->
    let span = if !hybrid_mode then d.top else Array.length d.words in
    let changed = ref false in
    let card = ref 0 in
    let last = ref 0 in
    for w = 0 to span - 1 do
      let sv = if w < s.top then s.words.(w) else 0 in
      let v = d.words.(w) land sv in
      if v <> d.words.(w) then begin
        d.words.(w) <- v;
        changed := true
      end;
      if v <> 0 then begin
        card := !card + popcount_word v;
        last := w + 1
      end
    done;
    d.top <- (if !hybrid_mode then !last else rescan_top d.words (Array.length d.words));
    if !hybrid_mode && !card <= small_threshold dst.length / 2 then begin
      (* Demotion boundary: the intersection shrank below half the
         threshold; collect the survivors into the small form. *)
      count_small (max 1 span + !last);
      dst.repr <- small_of_dense !last d.words !card
    end
    else count_words (dense_cost dst.length span);
    !changed

(* Sorted difference a ∖ b into [out]; returns length. *)
let merge_diff a ca b cb out =
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < ca && !j < cb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then (out.(!k) <- x; incr i; incr k)
    else if y < x then incr j
    else (incr i; incr j)
  done;
  while !i < ca do out.(!k) <- a.(!i); incr i; incr k done;
  !k

let diff_into ~src ~dst =
  check_same_length src dst "diff_into";
  match (src.repr, dst.repr) with
  | Small s, Small d ->
    count_small (max 1 (s.card + d.card));
    let out = Array.make (max 1 d.card) 0 in
    let kept = merge_diff d.elts d.card s.elts s.card out in
    let changed = kept <> d.card in
    if changed then begin
      d.elts <- out;
      d.card <- kept
    end;
    changed
  | Dense s, Small d ->
    count_small (max 1 d.card);
    let k = ref 0 in
    for i = 0 to d.card - 1 do
      let e = d.elts.(i) in
      if s.words.(e / bits_per_word) land (1 lsl (e mod bits_per_word)) = 0 then begin
        d.elts.(!k) <- e;
        incr k
      end
    done;
    let changed = !k <> d.card in
    d.card <- !k;
    changed
  | Small s, Dense d ->
    count_small (max 1 s.card);
    let changed = ref false in
    for i = 0 to s.card - 1 do
      let e = s.elts.(i) in
      let w = e / bits_per_word in
      let bit = 1 lsl (e mod bits_per_word) in
      if d.words.(w) land bit <> 0 then begin
        d.words.(w) <- d.words.(w) land lnot bit;
        changed := true
      end
    done;
    if d.top > 0 && d.words.(d.top - 1) = 0 then d.top <- rescan_top d.words d.top;
    !changed
  | Dense s, Dense d ->
    let span =
      if !hybrid_mode then min s.top d.top else Array.length d.words
    in
    count_words (dense_cost dst.length span);
    let changed = ref false in
    for w = 0 to span - 1 do
      let sv = if w < s.top then s.words.(w) else 0 in
      let v = d.words.(w) land lnot sv in
      if v <> d.words.(w) then begin
        d.words.(w) <- v;
        changed := true
      end
    done;
    if d.top > 0 && d.words.(d.top - 1) = 0 then d.top <- rescan_top d.words d.top;
    !changed

let union a b =
  let r = copy a in
  ignore (union_into ~src:b ~dst:r);
  r

let inter a b =
  let r = copy a in
  ignore (inter_into ~src:b ~dst:r);
  r

let diff a b =
  let r = copy a in
  ignore (diff_into ~src:b ~dst:r);
  r

(* Check a dense prefix [words.(0..top-1)] against a sorted element
   array: true iff they encode the same set. *)
let dense_equals_small top words card elts =
  let i = ref 0 in
  let ok = ref true in
  let w = ref 0 in
  while !ok && !w < top do
    let expected = ref 0 in
    let base = !w * bits_per_word in
    let limit = base + bits_per_word in
    while !i < card && elts.(!i) < limit do
      expected := !expected lor (1 lsl (elts.(!i) - base));
      incr i
    done;
    if words.(!w) <> !expected then ok := false;
    incr w
  done;
  !ok && !i = card

let equal a b =
  check_same_length a b "equal";
  match (a.repr, b.repr) with
  | Small x, Small y ->
    if x.card <> y.card then (count_small 1; false)
    else begin
      count_small (max 1 x.card);
      let rec loop i = i < 0 || (x.elts.(i) = y.elts.(i) && loop (i - 1)) in
      loop (x.card - 1)
    end
  | Small s, Dense d | Dense d, Small s ->
    count_words (dense_cost a.length d.top);
    dense_equals_small d.top d.words s.card s.elts
  | Dense x, Dense y ->
    if !hybrid_mode && x.top <> y.top then (count_words 1; false)
    else begin
      let span = if !hybrid_mode then x.top else Array.length x.words in
      count_words (dense_cost a.length span);
      let rec loop w = w < 0 || (x.words.(w) = y.words.(w) && loop (w - 1)) in
      loop (span - 1)
    end

let subset a b =
  check_same_length a b "subset";
  match (a.repr, b.repr) with
  | Small x, _ ->
    count_small (max 1 x.card);
    let rec loop i = i < 0 || (get b x.elts.(i) && loop (i - 1)) in
    loop (x.card - 1)
  | Dense x, Small y ->
    (* a ⊆ b iff every occupied word of a is covered by b's elements. *)
    count_words (dense_cost a.length x.top);
    let i = ref 0 in
    let ok = ref true in
    let w = ref 0 in
    while !ok && !w < x.top do
      let cover = ref 0 in
      let base = !w * bits_per_word in
      let limit = base + bits_per_word in
      while !i < y.card && y.elts.(!i) < limit do
        cover := !cover lor (1 lsl (y.elts.(!i) - base));
        incr i
      done;
      if x.words.(!w) land lnot !cover <> 0 then ok := false;
      incr w
    done;
    !ok
  | Dense x, Dense y ->
    if !hybrid_mode && x.top > y.top then (count_words 1; false)
    else begin
      let span = if !hybrid_mode then x.top else Array.length x.words in
      count_words (dense_cost a.length span);
      let rec loop w =
        w < 0
        || (x.words.(w) land lnot (if w < y.top then y.words.(w) else 0) = 0
            && loop (w - 1))
      in
      loop (span - 1)
    end

let disjoint a b =
  check_same_length a b "disjoint";
  match (a.repr, b.repr) with
  | Small x, _ ->
    count_small (max 1 x.card);
    let rec loop i = i < 0 || ((not (get b x.elts.(i))) && loop (i - 1)) in
    loop (x.card - 1)
  | _, Small y ->
    count_small (max 1 y.card);
    let rec loop i = i < 0 || ((not (get a y.elts.(i))) && loop (i - 1)) in
    loop (y.card - 1)
  | Dense x, Dense y ->
    let span = if !hybrid_mode then min x.top y.top else Array.length x.words in
    count_words (dense_cost a.length span);
    let rec loop w = w < 0 || (x.words.(w) land y.words.(w) = 0 && loop (w - 1)) in
    loop (span - 1)

let is_empty v =
  match v.repr with
  | Small { card; _ } ->
    count_small 1;
    card = 0
  | Dense d ->
    count_words (dense_cost v.length 1);
    d.top = 0

let cardinal v =
  match v.repr with
  | Small { card; _ } ->
    count_small 1;
    card
  | Dense d ->
    count_words (dense_cost v.length d.top);
    let acc = ref 0 in
    for w = 0 to d.top - 1 do
      acc := !acc + popcount_word d.words.(w)
    done;
    !acc

let live_estimate v =
  match v.repr with
  | Small { card; _ } -> card
  | Dense { top; _ } -> top * bits_per_word

let repr_kind v = match v.repr with Small _ -> `Small | Dense _ -> `Dense

let iter f v =
  match v.repr with
  | Small { card; elts } ->
    count_small (max 1 card);
    for i = 0 to card - 1 do
      f elts.(i)
    done
  | Dense d ->
    count_words (dense_cost v.length d.top);
    for w = 0 to d.top - 1 do
      let word = d.words.(w) in
      if word <> 0 then begin
        let base = w * bits_per_word in
        let rest = ref word in
        while !rest <> 0 do
          (* Index of the lowest set bit: isolate it, then count its
             trailing zeros by repeated shifting of the isolated bit. *)
          let low = !rest land - !rest in
          let bit = ref 0 in
          let probe = ref low in
          while !probe land 1 = 0 do
            probe := !probe lsr 1;
            incr bit
          done;
          f (base + !bit);
          rest := !rest land lnot low
        done
      end
    done

let fold f v init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) v;
  !acc

exception Found

let exists p v =
  try
    iter (fun i -> if p i then raise Found) v;
    false
  with Found -> true

let to_list v = List.rev (fold (fun i acc -> i :: acc) v [])

let of_list n is =
  let v = create n in
  List.iter (fun i -> set v i) is;
  v

let choose v =
  let result = ref None in
  (try iter (fun i -> result := Some i; raise Found) v with Found -> ());
  !result

let pp ppf v =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Format.pp_print_int)
    (to_list v)
