(** Dense bit vectors.

    The paper measures its algorithms in "bit-vector steps": one step is
    a whole-vector operation (union, copy, comparison) over vectors
    whose length grows with the program (the number of formal
    parameters, or of global variables).  This module is that substrate:
    fixed-length mutable bitsets backed by [int] arrays, with the
    destructive operations the solvers need ([union_into] returning a
    change flag drives every fixpoint loop) and a global operation
    counter used by the empirical-linearity experiment (L1 in
    DESIGN.md). *)

type t
(** A fixed-length mutable bit vector.  Indices range over
    [0 .. length v - 1]. *)

val create : int -> t
(** [create n] is a vector of [n] bits, all zero.  [n >= 0]. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** [get v i] is bit [i].  Raises [Invalid_argument] if out of range. *)

val set : t -> int -> unit
(** [set v i] sets bit [i] to one. *)

val unset : t -> int -> unit
(** [unset v i] sets bit [i] to zero. *)

val clear : t -> unit
(** Zero every bit. *)

val copy : t -> t
(** Fresh vector with the same contents. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src].  Lengths must agree. *)

val union_into : src:t -> dst:t -> bool
(** [union_into ~src ~dst] sets [dst := dst ∪ src]; returns [true] iff
    [dst] changed.  Lengths must agree. *)

val inter_into : src:t -> dst:t -> bool
(** [dst := dst ∩ src]; returns [true] iff [dst] changed. *)

val diff_into : src:t -> dst:t -> bool
(** [dst := dst ∖ src]; returns [true] iff [dst] changed. *)

val union : t -> t -> t
(** Functional union; operands must have equal length. *)

val inter : t -> t -> t
(** Functional intersection. *)

val diff : t -> t -> t
(** Functional difference. *)

val equal : t -> t -> bool
(** Bitwise equality.  Lengths must agree. *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every bit of [a] is set in [b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] is [true] iff [a ∩ b] is empty. *)

val is_empty : t -> bool
(** [true] iff no bit is set. *)

val cardinal : t -> int
(** Number of set bits. *)

val popcount_word : int -> int
(** Population count of a raw machine word — the branch-free SWAR
    kernel under {!cardinal}.  Exposed so tests can pin it against a
    reference implementation; counts nothing. *)

val iter : (int -> unit) -> t -> unit
(** [iter f v] applies [f] to the index of every set bit, ascending. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f v init] folds over set-bit indices, ascending. *)

val exists : (int -> bool) -> t -> bool
(** [exists p v] is [true] iff some set bit's index satisfies [p]. *)

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val of_list : int -> int list -> t
(** [of_list n is] is a vector of length [n] with exactly the bits in
    [is] set.  Raises [Invalid_argument] on out-of-range indices. *)

val choose : t -> int option
(** Index of the lowest set bit, if any. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{i1, i2, ...}]. *)

(** Global operation counters.

    Every whole-vector operation above bumps the registry counters
    [bitvec.vector_ops] (by one) and [bitvec.word_ops] (by the number
    of machine words touched) — the bit-vector-step counts the paper's
    complexity claims are stated in.

    {b Deprecated.}  New code should measure intervals with
    {!Obs.Metric.snapshot}/{!Obs.Metric.delta} on those counters (or
    read them off a {!Obs.Span}); the snapshot/delta protocol composes
    under nesting where the reset protocol clobbers outer measurements.
    This shim keeps the historical semantics: [reset] re-bases a module
    baseline (the registry counters themselves are never reset) and the
    readers report counts since the last [reset].

    Domain-safety: the baseline is mutex-guarded, so concurrent calls
    cannot tear it, and the underlying counters are per-domain sharded
    (see {!Obs.Metric}).  Values are exact when the reader is
    quiescent with respect to worker domains — e.g. after a
    [Par.Pool.run] batch join; a read racing live workers may lag
    their most recent increments but never over-counts. *)
module Stats : sig
  val reset : unit -> unit
  val vector_ops : unit -> int
  val word_ops : unit -> int
end
