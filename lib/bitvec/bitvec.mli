(** Hybrid sparse/dense bit vectors.

    The paper measures its algorithms in "bit-vector steps": one step is
    a whole-vector operation (union, copy, comparison) over vectors
    whose length grows with the program (the number of formal
    parameters, or of global variables).  This module is that substrate:
    fixed-length mutable bitsets with the destructive operations the
    solvers need ([union_into] returning a change flag drives every
    fixpoint loop) and global operation counters used by the
    empirical-linearity experiment (L1 in DESIGN.md).

    {b Representation.}  Behind the abstract [t], a vector is either
    {i small} — a sorted array of set-bit indices — or {i dense} — the
    classic word array, annotated with the exact number of occupied
    words (its "top").  Vectors start small and promote to dense when
    their cardinality exceeds {!small_threshold}; shrinking operations
    ([clear], intersections that leave few survivors) demote back.  All
    transitions are deterministic functions of the per-vector operation
    sequence, which is what keeps parallel schedules (lib/par) and
    sequential runs op-count-identical.

    {b Cost accounting.}  Every whole-vector operation bumps
    [bitvec.vector_ops] by one and [bitvec.word_ops] by the number of
    machine words of live data it actually touched: live cardinalities
    for small operands, occupied-prefix lengths for dense ones (never
    less than 1 per operation).  Operations on small operands
    additionally bump [bitvec.small_ops] by one.  Point operations
    ([get]/[set]/[unset]) and representation bookkeeping (allocation
    zero-fill, top rescans) are not counted.  Under
    [set_hybrid false] the accounting reverts to the legacy dense
    contract: every operation charges the full word count of the
    universe. *)

type t
(** A fixed-length mutable bit vector.  Indices range over
    [0 .. length v - 1]. *)

val create : int -> t
(** [create n] is a vector of [n] bits, all zero.  [n >= 0]. *)

val length : t -> int
(** Number of bits. *)

val get : t -> int -> bool
(** [get v i] is bit [i].  Raises [Invalid_argument] if out of range. *)

val set : t -> int -> unit
(** [set v i] sets bit [i] to one. *)

val unset : t -> int -> unit
(** [unset v i] sets bit [i] to zero. *)

val clear : t -> unit
(** Zero every bit. *)

val copy : t -> t
(** Fresh vector with the same contents. *)

val blit : src:t -> dst:t -> unit
(** Overwrite [dst] with the contents of [src].  Lengths must agree. *)

val union_into : src:t -> dst:t -> bool
(** [union_into ~src ~dst] sets [dst := dst ∪ src]; returns [true] iff
    [dst] changed.  Lengths must agree. *)

val inter_into : src:t -> dst:t -> bool
(** [dst := dst ∩ src]; returns [true] iff [dst] changed. *)

val diff_into : src:t -> dst:t -> bool
(** [dst := dst ∖ src]; returns [true] iff [dst] changed. *)

val union : t -> t -> t
(** Functional union; operands must have equal length. *)

val inter : t -> t -> t
(** Functional intersection. *)

val diff : t -> t -> t
(** Functional difference. *)

val equal : t -> t -> bool
(** Bitwise equality.  Lengths must agree. *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every bit of [a] is set in [b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] is [true] iff [a ∩ b] is empty. *)

val is_empty : t -> bool
(** [true] iff no bit is set. *)

val cardinal : t -> int
(** Number of set bits. *)

val popcount_word : int -> int
(** Population count of a raw machine word — the branch-free SWAR
    kernel under {!cardinal}.  Exposed so tests can pin it against a
    reference implementation; counts nothing. *)

val iter : (int -> unit) -> t -> unit
(** [iter f v] applies [f] to the index of every set bit, ascending. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold f v init] folds over set-bit indices, ascending. *)

val exists : (int -> bool) -> t -> bool
(** [exists p v] is [true] iff some set bit's index satisfies [p]. *)

val to_list : t -> int list
(** Indices of set bits, ascending. *)

val of_list : int -> int list -> t
(** [of_list n is] is a vector of length [n] with exactly the bits in
    [is] set.  Raises [Invalid_argument] on out-of-range indices. *)

val choose : t -> int option
(** Index of the lowest set bit, if any. *)

val pp : Format.formatter -> t -> unit
(** Prints as [{i1, i2, ...}]. *)

(** {1 Representation control and probes} *)

val set_hybrid : bool -> unit
(** [set_hybrid false] switches the module to the legacy dense-only
    behaviour: new vectors are created dense, promotion/demotion is
    disabled, and every whole-vector operation charges the full word
    count of the universe.  [set_hybrid true] (the default, unless the
    environment sets [SIDEFX_BITVEC=dense]) restores hybrid mode.
    The switch is global; flip it only between complete analysis runs
    (vectors created under one mode remain valid under the other, but
    their op costs follow the mode current at operation time). *)

val hybrid_enabled : unit -> bool
(** Current mode (see {!set_hybrid}). *)

val small_threshold : int -> int
(** [small_threshold n] is the promotion boundary for vectors of
    length [n]: a small vector whose cardinality would exceed this
    promotes to dense.  It is [max 16 (words n)], so the small form is
    never asymptotically worse than the dense one.  Demotion (from a
    shrinking dense intersection) triggers at half this value.
    Exposed so tests can exercise the boundaries exactly. *)

val live_estimate : t -> int
(** Uncounted O(1) upper bound on the cardinality: the exact
    cardinality of a small vector, occupied-words × word-size for a
    dense one.  The parallel scheduler uses this as its batch-cost
    probe (see lib/par/wavefront.ml). *)

val repr_kind : t -> [ `Small | `Dense ]
(** Current physical representation; uncounted.  For tests and
    observability only — the choice is a deterministic function of the
    vector's operation history. *)

(** Global operation counters.

    Every whole-vector operation above bumps the registry counters
    [bitvec.vector_ops] (by one) and [bitvec.word_ops] (by the number
    of machine words of live data touched) — the bit-vector-step
    counts the paper's complexity claims are stated in.  Small-path
    operations additionally bump [bitvec.small_ops].

    {b Deprecated.}  New code should measure intervals with
    {!Obs.Metric.snapshot}/{!Obs.Metric.delta} on those counters (or
    read them off a {!Obs.Span}); the snapshot/delta protocol composes
    under nesting where the reset protocol clobbers outer measurements.
    This shim keeps the historical semantics: [reset] re-bases a module
    baseline (the registry counters themselves are never reset) and the
    readers report counts since the last [reset].

    Domain-safety: the baseline is mutex-guarded, so concurrent calls
    cannot tear it, and the underlying counters are per-domain sharded
    (see {!Obs.Metric}).  Values are exact when the reader is
    quiescent with respect to worker domains — e.g. after a
    [Par.Pool.run] batch join; a read racing live workers may lag
    their most recent increments but never over-counts. *)
module Stats : sig
  val reset : unit -> unit
  val vector_ops : unit -> int
  val word_ops : unit -> int
end
