(* Telemetry core.  See obs.mli for the contract.  Stdlib only: this
   sits below bitvec in the dependency order, so it can depend on
   nothing. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape_to buf s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\b' -> Buffer.add_string buf "\\b"
        | '\012' -> Buffer.add_string buf "\\f"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'

  let float_to_string f =
    if not (Float.is_finite f) then "null"
    else
      let s = Printf.sprintf "%.9g" f in
      (* "%g" may print an integral float without '.' or exponent,
         which would re-parse as Int and break encoding stability. *)
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_to buf s
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          emit buf v)
        fields;
      Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 256 in
    emit buf j;
    Buffer.contents buf

  let pp ppf j = Format.pp_print_string ppf (to_string j)

  exception Bad of int * string

  let parse src =
    let n = String.length src in
    let pos = ref 0 in
    let fail msg = raise (Bad (!pos, msg)) in
    let peek () = if !pos < n then Some src.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && match src.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word value =
      let l = String.length word in
      if !pos + l <= n && String.sub src !pos l = word then begin
        pos := !pos + l;
        value
      end
      else fail (Printf.sprintf "expected '%s'" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match src.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match src.[!pos] with
           | '"' -> Buffer.add_char buf '"'; advance ()
           | '\\' -> Buffer.add_char buf '\\'; advance ()
           | '/' -> Buffer.add_char buf '/'; advance ()
           | 'n' -> Buffer.add_char buf '\n'; advance ()
           | 'r' -> Buffer.add_char buf '\r'; advance ()
           | 't' -> Buffer.add_char buf '\t'; advance ()
           | 'b' -> Buffer.add_char buf '\b'; advance ()
           | 'f' -> Buffer.add_char buf '\012'; advance ()
           | 'u' ->
             advance ();
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub src !pos 4 in
             let code =
               try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
             in
             pos := !pos + 4;
             (* Re-encode as UTF-8 (the common BMP case; surrogate
                pairs are out of scope for our own output). *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
             end
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      if peek () = Some '-' then advance ();
      let digits () =
        let any = ref false in
        while !pos < n && src.[!pos] >= '0' && src.[!pos] <= '9' do
          any := true;
          advance ()
        done;
        if not !any then fail "expected digit"
      in
      digits ();
      if peek () = Some '.' then begin
        is_float := true;
        advance ();
        digits ()
      end;
      (match peek () with
      | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
      | _ -> ());
      let text = String.sub src start (!pos - start) in
      if !is_float then Float (float_of_string text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> Float (float_of_string text)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          List (List.rev !items)
        end
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

module Metric = struct
  type kind = Counter | Gauge

  type handle = {
    id : int;
    mname : string;
    mkind : kind;
    mutable gvalue : int;  (* gauges only; counters live in the shards *)
  }

  (* Counter storage is sharded per domain: each domain owns one int
     array indexed by metric id (its shard), registered in a global
     list the first time the domain touches any counter.  The hot path
     ([incr]/[add]) writes the caller's own shard — no lock, no
     contention — and reads aggregate by summing every shard.  Shards
     of terminated domains stay registered so their counts survive;
     sums are exact whenever the reader synchronises with all writers
     (the pool's batch join provides that barrier; see Par.Pool). *)
  let shards : int array ref list ref = ref []
  let shards_mu = Mutex.create ()

  let shard_key =
    Domain.DLS.new_key (fun () ->
        let s = ref [||] in
        Mutex.lock shards_mu;
        shards := s :: !shards;
        Mutex.unlock shards_mu;
        s)

  (* Registration order matters for stable output: keep both a reverse
     list (cheap append) and a name index.  Guarded by a mutex so a
     worker-domain registration cannot corrupt the table (in practice
     all registration happens at module initialisation, before any
     domain is spawned). *)
  let registry_mu = Mutex.create ()
  let registered : handle list ref = ref []
  let by_name : (string, handle) Hashtbl.t = Hashtbl.create 32
  let count = ref 0

  let register mname mkind =
    Mutex.lock registry_mu;
    let h =
      match Hashtbl.find_opt by_name mname with
      | Some h ->
        if h.mkind <> mkind then begin
          Mutex.unlock registry_mu;
          invalid_arg
            (Printf.sprintf "Obs.Metric: %s already registered with the other kind"
               mname)
        end;
        h
      | None ->
        let h = { id = !count; mname; mkind; gvalue = 0 } in
        incr count;
        registered := h :: !registered;
        Hashtbl.add by_name mname h;
        h
    in
    Mutex.unlock registry_mu;
    h

  let counter name = register name Counter
  let gauge name = register name Gauge

  (* The calling domain's shard, grown to cover [id]. *)
  let slot id =
    let s = Domain.DLS.get shard_key in
    let a = !s in
    if id < Array.length a then a
    else begin
      let b = Array.make (max 16 (max (id + 1) (2 * Array.length a))) 0 in
      Array.blit a 0 b 0 (Array.length a);
      s := b;
      b
    end

  let add h n =
    match h.mkind with
    | Counter ->
      let a = slot h.id in
      a.(h.id) <- a.(h.id) + n
    | Gauge -> h.gvalue <- h.gvalue + n

  let incr h = add h 1

  let sum_shards id =
    Mutex.lock shards_mu;
    let l = !shards in
    Mutex.unlock shards_mu;
    List.fold_left
      (fun acc s ->
        let a = !s in
        acc + (if id < Array.length a then a.(id) else 0))
      0 l

  let value h =
    match h.mkind with Gauge -> h.gvalue | Counter -> sum_shards h.id

  let set h v =
    match h.mkind with
    | Gauge -> h.gvalue <- v
    | Counter ->
      (* Legacy absolute write on a counter: adjust the caller's shard
         so the aggregate becomes [v].  Only meaningful at quiescent
         points (no concurrent writers). *)
      let a = slot h.id in
      a.(h.id) <- a.(h.id) + (v - sum_shards h.id)

  let name h = h.mname
  let kind h = h.mkind

  let find name =
    Mutex.lock registry_mu;
    let r = Hashtbl.find_opt by_name name in
    Mutex.unlock registry_mu;
    r

  let in_order () =
    Mutex.lock registry_mu;
    let l = !registered in
    Mutex.unlock registry_mu;
    List.rev l

  let all () = List.map (fun h -> (h.mname, h.mkind, value h)) (in_order ())

  type snapshot = int array
  (* values.(id) at capture time; handles registered later read 0. *)

  let snapshot () =
    let handles = in_order () in
    let values = Array.make !count 0 in
    List.iter (fun h -> values.(h.id) <- value h) handles;
    values

  let value_since ~since h =
    let base = if h.id < Array.length since then since.(h.id) else 0 in
    value h - base

  let delta ~since =
    List.map (fun h -> (h.mname, value_since ~since h)) (in_order ())

  (* --- latency histograms ------------------------------------------- *)

  (* Histograms live in their own registry, deliberately outside the
     counter/gauge table: [snapshot]/[delta] — and therefore span
     metric attribution and the op-count contracts the benchmarks
     assert — are byte-identical whether or not any histogram exists.
     Buckets are powers of two in nanoseconds: bucket 0 holds
     observations under 2 ns (including clamped negatives), bucket [i]
     holds [2^i, 2^(i+1)) ns, and bucket 63 is the overflow sink. *)

  let hist_buckets = 64

  type histogram = {
    hname : string;
    buckets : int array;
    mutable observations : int;
    mutable sum_ns : int;
  }

  let hist_mu = Mutex.create ()
  let hist_registered : histogram list ref = ref []
  let hist_by_name : (string, histogram) Hashtbl.t = Hashtbl.create 16

  let histogram hname =
    Mutex.lock hist_mu;
    let h =
      match Hashtbl.find_opt hist_by_name hname with
      | Some h -> h
      | None ->
        let h =
          { hname; buckets = Array.make hist_buckets 0; observations = 0; sum_ns = 0 }
        in
        hist_registered := h :: !hist_registered;
        Hashtbl.add hist_by_name hname h;
        h
    in
    Mutex.unlock hist_mu;
    h

  let bucket_of_ns ns =
    if ns < 2 then 0
    else begin
      let i = ref 0 in
      let v = ref ns in
      while !v > 1 do
        i := !i + 1;
        v := !v lsr 1
      done;
      min !i (hist_buckets - 1)
    end

  let bucket_lower_ns i = if i = 0 then 0 else 1 lsl i

  let observe_ns h ns =
    let ns = max 0 ns in
    Mutex.lock hist_mu;
    h.buckets.(bucket_of_ns ns) <- h.buckets.(bucket_of_ns ns) + 1;
    h.observations <- h.observations + 1;
    h.sum_ns <- h.sum_ns + ns;
    Mutex.unlock hist_mu

  let observe h seconds = observe_ns h (int_of_float (seconds *. 1e9))

  let hist_name h = h.hname
  let hist_observations h = h.observations
  let hist_sum_ns h = h.sum_ns

  let hist_nonzero_buckets h =
    Mutex.lock hist_mu;
    let acc = ref [] in
    for i = hist_buckets - 1 downto 0 do
      if h.buckets.(i) <> 0 then acc := (bucket_lower_ns i, h.buckets.(i)) :: !acc
    done;
    Mutex.unlock hist_mu;
    !acc

  (* Bucketed quantile: the upper bound of the bucket holding the
     ceil(q*n)-th smallest observation, so the answer is conservative
     (never under-reports a latency) and exact to one power of two —
     all a p50/p95/p99 server-stats row needs. *)
  let hist_quantile_ns h q =
    Mutex.lock hist_mu;
    let n = h.observations in
    let r =
      if n = 0 then 0
      else begin
        let q = Float.max 0. (Float.min 1. q) in
        let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
        let rec go i seen =
          if i >= hist_buckets then bucket_lower_ns (hist_buckets - 1)
          else
            let seen = seen + h.buckets.(i) in
            if seen >= rank then
              if i >= hist_buckets - 1 then bucket_lower_ns i
              else (1 lsl (i + 1)) - 1
            else go (i + 1) seen
        in
        go 0 0
      end
    in
    Mutex.unlock hist_mu;
    r

  let find_histogram name =
    Mutex.lock hist_mu;
    let r = Hashtbl.find_opt hist_by_name name in
    Mutex.unlock hist_mu;
    r

  let histograms_in_order () =
    Mutex.lock hist_mu;
    let l = !hist_registered in
    Mutex.unlock hist_mu;
    List.rev l
end

module Clock = struct
  let source = ref Sys.time
  let now () = !source ()
  let set f = source := f
end

module Span = struct
  type gc = {
    minor_collections : int;
    major_collections : int;
    promoted_words : int;
    top_heap_words : int;
  }

  let gc_zero =
    { minor_collections = 0; major_collections = 0; promoted_words = 0; top_heap_words = 0 }

  type t = {
    name : string;
    start : float;
    elapsed : float;
    metrics : (string * int) list;
    gc : gc;
    children : t list;
  }

  type frame = {
    fname : string;
    start : float;
    snap : Metric.snapshot;
    gc_start : Gc.stat;
    mutable children_rev : t list;
  }

  (* The open-frame stack and the completed-root buffer are per domain
     (DLS): a span opened inside a worker task nests under that
     worker's own frames, never under another domain's, so the trace
     tree is race-free by construction.  Only the main domain's roots
     are observable through [drain]/[collect] in practice — the solvers
     open spans around whole phases, outside any pool task.  The
     enabled flag is an [Atomic] so workers read a coherent value. *)
  type state = { mutable stack : frame list; mutable roots_rev : t list }

  let state_key = Domain.DLS.new_key (fun () -> { stack = []; roots_rev = [] })
  let state () = Domain.DLS.get state_key
  let enabled_flag = Atomic.make false

  let enabled () = Atomic.get enabled_flag
  let set_enabled b = Atomic.set enabled_flag b

  let close st fr =
    let elapsed = Clock.now () -. fr.start in
    let gc_end = Gc.quick_stat () in
    let gc =
      {
        minor_collections =
          gc_end.Gc.minor_collections - fr.gc_start.Gc.minor_collections;
        major_collections =
          gc_end.Gc.major_collections - fr.gc_start.Gc.major_collections;
        promoted_words =
          int_of_float (gc_end.Gc.promoted_words -. fr.gc_start.Gc.promoted_words);
        top_heap_words = gc_end.Gc.top_heap_words;
      }
    in
    Metric.observe (Metric.histogram ("phase." ^ fr.fname)) elapsed;
    let span =
      {
        name = fr.fname;
        start = fr.start;
        elapsed;
        metrics = Metric.delta ~since:fr.snap;
        gc;
        children = List.rev fr.children_rev;
      }
    in
    (match st.stack with
    | top :: rest when top == fr -> st.stack <- rest
    | other -> st.stack <- other (* unbalanced close; keep going *));
    match st.stack with
    | parent :: _ -> parent.children_rev <- span :: parent.children_rev
    | [] -> st.roots_rev <- span :: st.roots_rev

  let record name f =
    let st = state () in
    let fr =
      {
        fname = name;
        start = Clock.now ();
        snap = Metric.snapshot ();
        gc_start = Gc.quick_stat ();
        children_rev = [];
      }
    in
    st.stack <- fr :: st.stack;
    match f () with
    | v ->
      close st fr;
      v
    | exception e ->
      close st fr;
      raise e

  (* The hot path: one branch when tracing is off. *)
  let with_ name f = if not (Atomic.get enabled_flag) then f () else record name f

  let drain () =
    let st = state () in
    let spans = List.rev st.roots_rev in
    st.roots_rev <- [];
    spans

  let collect name f =
    let st = state () in
    let saved_enabled = Atomic.get enabled_flag in
    let saved_stack = st.stack in
    let saved_roots = st.roots_rev in
    Atomic.set enabled_flag true;
    st.stack <- [];
    st.roots_rev <- [];
    let restore () =
      Atomic.set enabled_flag saved_enabled;
      st.stack <- saved_stack;
      st.roots_rev <- saved_roots
    in
    match record name f with
    | v ->
      let span =
        match st.roots_rev with
        | [ s ] -> s
        | l ->
          let children = List.rev l in
          let start = match children with c :: _ -> c.start | [] -> 0.0 in
          { name; start; elapsed = 0.0; metrics = []; gc = gc_zero; children }
      in
      restore ();
      (v, span)
    | exception e ->
      restore ();
      raise e

  let metric span name =
    match List.assoc_opt name span.metrics with Some v -> v | None -> 0

  let rec find span name =
    if span.name = name then Some span
    else
      List.fold_left
        (fun acc child -> match acc with Some _ -> acc | None -> find child name)
        None span.children
end

(* --- sinks ----------------------------------------------------------- *)

let vec_ops_name = "bitvec.vector_ops"
let word_ops_name = "bitvec.word_ops"

let pp_time ppf seconds =
  let ms = seconds *. 1e3 in
  if ms >= 1000.0 then Format.fprintf ppf "%9.2f s " (seconds)
  else if ms >= 0.001 then Format.fprintf ppf "%9.3f ms" ms
  else Format.fprintf ppf "%9.1f ns" (seconds *. 1e9)

let pp_trace ppf spans =
  Format.fprintf ppf "@[<v>%-40s %12s %12s %12s@," "phase" "time" "vector_ops"
    "word_ops";
  let rec go indent (s : Span.t) =
    let pad = String.make (2 * indent) ' ' in
    let others =
      List.filter
        (fun (k, v) -> v <> 0 && k <> vec_ops_name && k <> word_ops_name)
        s.Span.metrics
    in
    Format.fprintf ppf "%-40s %a %12d %12d" (pad ^ s.Span.name) pp_time
      s.Span.elapsed
      (Span.metric s vec_ops_name)
      (Span.metric s word_ops_name);
    List.iter (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v) others;
    Format.fprintf ppf "@,";
    List.iter (go (indent + 1)) s.Span.children
  in
  List.iter (go 0) spans;
  Format.fprintf ppf "@]"

let gc_json (g : Span.gc) =
  Json.Obj
    [
      ("minor_collections", Json.Int g.Span.minor_collections);
      ("major_collections", Json.Int g.Span.major_collections);
      ("promoted_words", Json.Int g.Span.promoted_words);
      ("top_heap_words", Json.Int g.Span.top_heap_words);
    ]

let rec span_json (s : Span.t) =
  Json.Obj
    [
      ("name", Json.String s.Span.name);
      ("start_s", Json.Float s.Span.start);
      ("elapsed_s", Json.Float s.Span.elapsed);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Span.metrics));
      ("gc", gc_json s.Span.gc);
      ("children", Json.List (List.map span_json s.Span.children));
    ]

let trace_json spans = Json.List (List.map span_json spans)

let trace_events_json spans =
  let base =
    List.fold_left (fun acc (s : Span.t) -> Float.min acc s.Span.start) infinity spans
  in
  let base = if Float.is_finite base then base else 0.0 in
  let events = ref [] in
  let rec go (s : Span.t) =
    let metric_args =
      List.filter_map
        (fun (k, v) -> if v <> 0 then Some (k, Json.Int v) else None)
        s.Span.metrics
    in
    let g = s.Span.gc in
    let gc_args =
      [
        ("gc.minor_collections", Json.Int g.Span.minor_collections);
        ("gc.major_collections", Json.Int g.Span.major_collections);
        ("gc.promoted_words", Json.Int g.Span.promoted_words);
        ("gc.top_heap_words", Json.Int g.Span.top_heap_words);
      ]
    in
    events :=
      Json.Obj
        [
          ("name", Json.String s.Span.name);
          ("ph", Json.String "X");
          ("ts", Json.Float ((s.Span.start -. base) *. 1e6));
          ("dur", Json.Float (s.Span.elapsed *. 1e6));
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("args", Json.Obj (metric_args @ gc_args));
        ]
      :: !events;
    List.iter go s.Span.children
  in
  List.iter go spans;
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev !events));
      ("displayTimeUnit", Json.String "ms");
    ]

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int (Metric.hist_observations h));
      ("sum_ns", Json.Int (Metric.hist_sum_ns h));
      ( "buckets",
        Json.List
          (List.map
             (fun (lower_ns, n) -> Json.List [ Json.Int lower_ns; Json.Int n ])
             (Metric.hist_nonzero_buckets h)) );
    ]

let histograms_json () =
  Json.Obj
    (List.map
       (fun h -> (Metric.hist_name h, histogram_json h))
       (Metric.histograms_in_order ()))

let metrics_json () =
  Json.Obj (List.map (fun (name, _, value) -> (name, Json.Int value)) (Metric.all ()))
