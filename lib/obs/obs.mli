(** Telemetry core: metric registry, hierarchical tracing spans, and
    machine-readable sinks.

    The paper's results are complexity bounds stated in operation counts
    — [O(Nβ + Eβ)] boolean steps for Figure 1, [O(N + E)] bit-vector
    steps for [findgmod] — so the repository needs first-class counting
    and timing to witness them.  This module is the substrate: every
    analysis phase runs under a {!Span}, every cost unit the paper
    reasons about is a registered {!Metric}, and both serialise to a
    stable hand-rolled {!Json} encoding consumed by [sidefx profile
    --json] and [BENCH_linearity.json].

    Design constraints, in order:

    - {e zero dependencies} — stdlib only, so every library (including
      [bitvec], the bottom of the dependency stack) can link it;
    - {e no hot-path cost when idle} — incrementing a pre-registered
      counter handle is one field mutation; opening a span when tracing
      is disabled is a single branch on one [bool ref];
    - {e reset-free} — measurements are snapshot/delta pairs against
      monotonic counters, so nested or overlapping measurements never
      clobber each other (the flaw of the old [Bitvec.Stats.reset]
      design). *)

(** Minimal JSON tree, encoder and parser.

    The encoder is stable: object fields are emitted in the order
    given, floats with ["%.9g"], and re-encoding a parsed encoding
    reproduces it byte for byte ([to_string (parse (to_string j)) =
    to_string j]).  The parser accepts standard JSON and exists so the
    repository can validate its own output ([sidefx json-validate],
    [make profile-smoke]) without an external [jq]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact single-line encoding. *)

  val pp : Format.formatter -> t -> unit
  (** Same encoding, onto a formatter. *)

  val parse : string -> (t, string) result
  (** Parse one JSON value (surrounding whitespace allowed; trailing
      non-whitespace is an error).  Errors carry a character offset. *)

  val member : string -> t -> t option
  (** Field lookup in an [Obj]; [None] otherwise. *)
end

(** Named monotonic counters and gauges.

    Registration returns a {e handle}; the hot path ([incr]/[add]) is
    an [O(1)] update of the calling domain's own storage, so solvers
    register at module initialisation and count inside inner loops.
    Metrics are process-global and never reset; consumers measure by
    taking a {!snapshot} before and reading {!delta} after.

    {b Domain safety.}  Counters are {e sharded per domain}: each
    domain increments a private shard (no lock, no cache-line
    contention), and {!value}/{!snapshot} aggregate by summing every
    shard ever created — shards of terminated domains are retained, so
    no count is ever lost.  The aggregate is exact at any point that
    {e happens-after} all writers' increments; a [Par.Pool] batch join
    is such a point, which is how [bitvec.vector_ops]/[word_ops] stay
    exact under the parallel wavefront solver.  An aggregate read that
    races a worker mid-batch may miss in-flight increments (it never
    invents counts).  Gauges remain plain last-write-wins fields and
    should be [set] from one domain at a time (all in-tree gauges are
    written by the main domain only). *)
module Metric : sig
  type kind =
    | Counter  (** Monotonic; observed as a delta between snapshots. *)
    | Gauge  (** Last-write-wins level; observed as its current value. *)

  type handle

  val counter : string -> handle
  (** Register (or retrieve) the counter of that name.  Raises
      [Invalid_argument] if the name is registered as a gauge. *)

  val gauge : string -> handle
  (** Register (or retrieve) the gauge of that name. *)

  val incr : handle -> unit
  val add : handle -> int -> unit

  val set : handle -> int -> unit
  (** Overwrite the value (intended for gauges).  On a counter this
      adjusts the calling domain's shard so the aggregate becomes the
      given value — only meaningful with no concurrent writers. *)

  val value : handle -> int
  val name : handle -> string
  val kind : handle -> kind

  val find : string -> handle option
  val all : unit -> (string * kind * int) list
  (** Every registered metric, in registration order. *)

  type snapshot
  (** An immutable capture of all counter values at one instant. *)

  val snapshot : unit -> snapshot

  val delta : since:snapshot -> (string * int) list
  (** One entry per registered metric, registration order, each
      reporting [current - at-snapshot] (metrics registered after the
      snapshot count from zero).  For gauges the difference attributes
      the value to whichever measurement interval set it. *)

  val value_since : since:snapshot -> handle -> int
  (** One metric's delta. *)

  (** {2 Latency histograms}

      Log2-bucketed duration distributions, for the per-phase,
      per-edit and per-query latency stories that single counters
      cannot tell.  Histograms live in a registry of their own:
      {!snapshot}/{!delta} (and therefore span metric attribution and
      every op-count contract) are unaffected by their existence.
      Bucket [0] holds observations under 2 ns; bucket [i] holds
      durations in [[2^i, 2^(i+1))] ns; the last bucket absorbs
      overflow. *)

  type histogram

  val histogram : string -> histogram
  (** Register (or retrieve) the histogram of that name. *)

  val observe : histogram -> float -> unit
  (** Record one duration, in seconds (negatives clamp to zero). *)

  val observe_ns : histogram -> int -> unit
  (** Record one duration, in nanoseconds. *)

  val hist_name : histogram -> string
  val hist_observations : histogram -> int
  val hist_sum_ns : histogram -> int

  val hist_nonzero_buckets : histogram -> (int * int) list
  (** [(lower_bound_ns, count)] for each non-empty bucket, ascending. *)

  val hist_quantile_ns : histogram -> float -> int
  (** [hist_quantile_ns h q] (with [q] clamped to [[0,1]]) is a
      conservative bucketed quantile: the upper bound (in ns) of the
      bucket containing the [ceil (q * n)]-th smallest observation, [0]
      when the histogram is empty.  Exact to one power of two and never
      under an actual observed latency — the resolution the server's
      per-request-class p50/p95/p99 stats report at. *)

  val find_histogram : string -> histogram option

  val histograms_in_order : unit -> histogram list
  (** Every registered histogram, in registration order. *)
end

(** Hierarchical tracing spans.

    [with_ "gmod" f] runs [f] and, when tracing is enabled, records its
    wall-clock time and the {!Metric} delta across it, nested under the
    enclosing span.  When tracing is disabled the call is a single
    branch and a tail call — no allocation, no clock read — so
    instrumented solvers cost nothing in benchmarks.

    {b Domain safety.}  The open-frame stack and the completed-root
    buffer are per domain, so a span opened inside a worker task nests
    under that worker's own frames and cannot corrupt the main trace;
    {!drain} and {!collect} observe the calling domain's roots only.
    The in-tree solvers open spans around whole phases — outside any
    pool task — so traces are unchanged by [--jobs].  The enabled flag
    is shared (atomic) across domains. *)
module Span : sig
  type gc = {
    minor_collections : int;  (** Delta across the span. *)
    major_collections : int;  (** Delta across the span. *)
    promoted_words : int;  (** Delta across the span. *)
    top_heap_words : int;
        (** Absolute high-water mark at close.  [0] on OCaml 5 until
            the shared major heap has actually grown — tiny runs live
            entirely in the minor heap. *)
  }
  (** [Gc.quick_stat] deltas attached to every span, so a trace shows
      where allocation pressure (and therefore collector time) lands —
      the memory half of the million-procedure story. *)

  type t = {
    name : string;
    start : float;  (** {!Clock} reading at open (seconds). *)
    elapsed : float;  (** Seconds. *)
    metrics : (string * int) list;
        (** {!Metric.delta} across the span, registration order. *)
    gc : gc;
    children : t list;  (** Sub-spans, in completion order. *)
  }

  val enabled : unit -> bool
  val set_enabled : bool -> unit

  val with_ : string -> (unit -> 'a) -> 'a
  (** Run a function under a span.  Exceptions propagate; the span is
      still closed and recorded. *)

  val collect : string -> (unit -> 'a) -> 'a * t
  (** [collect name f] forces tracing on, runs [f] under a root span
      [name] isolated from any surrounding trace, restores the previous
      tracing state, and returns the completed span.  This is the
      programmatic entry point ([sidefx profile], tests). *)

  val drain : unit -> t list
  (** Completed root spans, oldest first; clears the buffer.  Used by
      [--trace] to flush at command exit. *)

  val metric : t -> string -> int
  (** A metric's delta recorded on one span ([0] if absent). *)

  val find : t -> string -> t option
  (** First descendant span (depth-first, the span itself included)
      with that name. *)
end

(** The overridable time source: defaults to [Sys.time] (processor
    time — adequate for the single-threaded, CPU-bound phases measured
    here); hosts with better clocks may [set] one. *)
module Clock : sig
  val now : unit -> float
  val set : (unit -> float) -> unit
end

val pp_trace : Format.formatter -> Span.t list -> unit
(** Pretty phase table: indented span tree with per-span time, the two
    [bitvec] columns, and any other nonzero metric deltas. *)

val trace_json : Span.t list -> Json.t
(** The span tree as JSON: per span [name], [start_s], [elapsed_s],
    [metrics] (every registered metric, see {!Metric.delta}), [gc]
    and [children]. *)

val trace_events_json : Span.t list -> Json.t
(** The span tree as Chrome trace-event JSON (the
    [{"traceEvents": [...]}] format Perfetto and [chrome://tracing]
    load): one complete event (["ph":"X"]) per span, timestamps in
    microseconds relative to the earliest root, nonzero metric deltas
    and GC counters as [args]. *)

val histograms_json : unit -> Json.t
(** Every registered histogram: per name [count], [sum_ns] and
    [buckets] as [[lower_bound_ns, count]] pairs (non-empty buckets
    only, ascending), so the encoding is stable and compact. *)

val metrics_json : unit -> Json.t
(** Current absolute value of every registered metric. *)
