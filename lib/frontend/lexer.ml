exception Error of Loc.t * string

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let loc st = Loc.make ~file:st.file ~line:st.line ~col:st.col

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_block_comment st start_loc depth =
  match (peek st, peek2 st) with
  | None, _ -> raise (Error (start_loc, "unterminated comment"))
  | Some '*', Some ')' ->
    advance st;
    advance st;
    if depth > 1 then skip_block_comment st start_loc (depth - 1)
  | Some '(', Some '*' ->
    advance st;
    advance st;
    skip_block_comment st start_loc (depth + 1)
  | Some _, _ ->
    advance st;
    skip_block_comment st start_loc depth

let rec skip_line_comment st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
    advance st;
    skip_line_comment st

let rec skip_trivia st =
  match (peek st, peek2 st) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_trivia st
  | Some '(', Some '*' ->
    let l = loc st in
    advance st;
    advance st;
    skip_block_comment st l 1;
    skip_trivia st
  | Some '/', Some '/' ->
    skip_line_comment st;
    skip_trivia st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while
    match peek st with
    | Some c -> is_ident_char c
    | None -> false
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_int st l =
  let start = st.pos in
  while
    match peek st with
    | Some c -> is_digit c
    | None -> false
  do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match int_of_string_opt text with
  | Some n -> n
  | None -> raise (Error (l, "integer literal out of range: " ^ text))

let next_token st =
  skip_trivia st;
  let l = loc st in
  match peek st with
  | None -> (Token.EOF, l)
  | Some c when is_ident_start c ->
    let word = lex_ident st in
    let tok =
      match Token.keyword_of_string word with
      | Some kw -> kw
      | None -> Token.IDENT word
    in
    (tok, l)
  | Some c when is_digit c -> (Token.INT (lex_int st l), l)
  | Some c ->
    let two target result =
      advance st;
      match peek st with
      | Some c2 when c2 = target ->
        advance st;
        result
      | _ -> raise (Error (l, Printf.sprintf "unexpected character '%c'" c))
    in
    let one_or_two target with2 without =
      advance st;
      match peek st with
      | Some c2 when c2 = target ->
        advance st;
        with2
      | _ -> without
    in
    let single tok =
      advance st;
      tok
    in
    let tok =
      match c with
      | ';' -> single Token.SEMI
      | ':' -> one_or_two '=' Token.ASSIGN Token.COLON
      | ',' -> single Token.COMMA
      | '.' -> single Token.DOT
      | '(' -> single Token.LPAREN
      | ')' -> single Token.RPAREN
      | '[' -> single Token.LBRACKET
      | ']' -> single Token.RBRACKET
      | '+' -> single Token.PLUS
      | '-' -> single Token.MINUS
      | '*' -> single Token.STAR
      | '&' -> single Token.AMP
      | '/' -> single Token.SLASH
      | '%' -> single Token.PERCENT
      | '<' -> one_or_two '=' Token.LE Token.LT
      | '>' -> one_or_two '=' Token.GE Token.GT
      | '=' -> two '=' Token.EQEQ
      | '!' -> two '=' Token.NE
      | _ -> raise (Error (l, Printf.sprintf "unexpected character '%c'" c))
    in
    (tok, l)

let tokenize ?(file = "<string>") src =
  let st = { src; file; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let tok, l = next_token st in
    let acc = (tok, l) :: acc in
    match tok with
    | Token.EOF -> List.rev acc
    | _ -> loop acc
  in
  loop []
