(** Semantic analysis: surface AST → resolved {!Ir.Prog}.

    Performs static-scope name resolution (formals and locals shadow
    enclosing declarations; procedures may call themselves, any
    lexically visible procedure — ancestors, siblings, ancestors'
    siblings — and their own nested procedures, with forward references
    allowed) and a simple type check:

    - [int] and [bool] are distinct; conditions are [bool], arithmetic
      and comparisons are over [int];
    - arrays are indexed with exactly their declared rank, elements are
      [int]; whole arrays cannot be assigned, read, or written;
    - by-reference actuals must be lvalues (a variable or an array
      element) whose type equals the formal's; whole arrays can only be
      passed by reference; array elements may be passed by reference to
      scalar [int] formals;
    - by-value formals must be scalars and receive [int]/[bool]
      expressions of matching type.

    Procedure names are required to be globally unique (a MiniProc
    simplification); variable names only need to be unique within
    their declaring scope.

    The id layout of the result: main is procedure 0 and other
    procedures are numbered in declaration pre-order; variables are
    numbered globals first, then per procedure formals before locals in
    pre-order; call sites are numbered by textual order of the call
    statements within increasing procedure id. *)

type error = {
  loc : Loc.t;
  msg : string;
}

val pp_error : Format.formatter -> error -> unit

val resolve : Ast.program -> (Ir.Prog.t, error list) result
(** All diagnostics are collected; the program is returned only when
    there are none. *)

val resolve_with_locs : Ast.program -> (Ir.Prog.t * Locs.t, error list) result
(** As {!resolve}, also returning the {!Locs} side table (source
    positions by procedure / variable / call-site id), which only the
    front end can build.  Consumed by diagnostics clients
    ({!Lint}, [sidefx lint]). *)

val compile : ?file:string -> string -> (Ir.Prog.t, error list) result
(** [parse] + [resolve]; parse errors are reported as a singleton
    list. *)

val compile_with_locs :
  ?file:string -> string -> (Ir.Prog.t * Locs.t, error list) result
(** [parse] + [resolve_with_locs]. *)

val compile_exn : ?file:string -> string -> Ir.Prog.t
(** Raises [Failure] with a formatted report on any diagnostic. *)
