type ident = {
  name : string;
  loc : Loc.t;
}

type ty =
  | Ty_int
  | Ty_bool
  | Ty_array of int list
  | Ty_ptr of ty

type expr =
  | Int of int * Loc.t
  | Bool of bool * Loc.t
  | Name of ident
  | Index of ident * expr list
  | Binop of Ir.Expr.binop * expr * expr
  | Unop of Ir.Expr.unop * expr
  | Addr of ident  (** [&x] *)
  | Deref of int * ident  (** [Deref (d, p)]: [d] stars before [p] *)
  | New of ty * Loc.t  (** [new T] *)

type lvalue =
  | Lname of ident
  | Lindex of ident * expr list
  | Lderef of int * ident  (** [*...*p :=]: [d] stars before [p] *)

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of ident * expr * expr * stmt list
  | Call of ident * expr list
  | Read of lvalue
  | Write of expr
  | Skip

type param = {
  p_mode : Ir.Prog.param_mode;
  p_name : ident;
  p_ty : ty;
}

type decl = {
  d_names : ident list;
  d_ty : ty;
}

type proc = {
  proc_name : ident;
  params : param list;
  decls : decl list;
  procs : proc list;
  body : stmt list;
}

type program = {
  prog_name : ident;
  globals : decl list;
  top_procs : proc list;
  main_body : stmt list;
}

let rec expr_loc = function
  | Int (_, loc) | Bool (_, loc) -> loc
  | Name id | Index (id, _) | Addr id | Deref (_, id) -> id.loc
  | New (_, loc) -> loc
  | Binop (_, l, _) -> expr_loc l
  | Unop (_, e) -> expr_loc e

let lvalue_loc = function
  | Lname id | Lindex (id, _) | Lderef (_, id) -> id.loc
