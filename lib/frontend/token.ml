type t =
  | IDENT of string
  | INT of int
  | PROGRAM
  | PROCEDURE
  | VAR
  | BEGIN
  | END
  | IF
  | THEN
  | ELSE
  | WHILE
  | DO
  | FOR
  | TO
  | CALL
  | READ
  | WRITE
  | SKIP
  | TINT
  | TBOOL
  | ARRAY
  | OF
  | PTR
  | NEW
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  | SEMI
  | COLON
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | AMP
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | EOF

let keywords =
  [
    ("program", PROGRAM);
    ("procedure", PROCEDURE);
    ("var", VAR);
    ("begin", BEGIN);
    ("end", END);
    ("if", IF);
    ("then", THEN);
    ("else", ELSE);
    ("while", WHILE);
    ("do", DO);
    ("for", FOR);
    ("to", TO);
    ("call", CALL);
    ("read", READ);
    ("write", WRITE);
    ("skip", SKIP);
    ("int", TINT);
    ("bool", TBOOL);
    ("array", ARRAY);
    ("of", OF);
    ("ptr", PTR);
    ("new", NEW);
    ("and", AND);
    ("or", OR);
    ("not", NOT);
    ("true", TRUE);
    ("false", FALSE);
  ]

let keyword_of_string s = List.assoc_opt s keywords

let to_string = function
  | IDENT s -> s
  | INT n -> string_of_int n
  | SEMI -> ";"
  | COLON -> ":"
  | COMMA -> ","
  | DOT -> "."
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | ASSIGN -> ":="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | AMP -> "&"
  | SLASH -> "/"
  | PERCENT -> "%"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | EOF -> "<eof>"
  | t ->
    (* Keywords: find the spelling in the table. *)
    let rec find = function
      | [] -> assert false
      | (s, t') :: rest -> if t' = t then s else find rest
    in
    find keywords

let pp ppf t = Format.pp_print_string ppf (to_string t)
