(** Local (intraprocedural) effect analysis — the inputs the paper
    assumes are available.

    [LMOD(s)] / [LUSE(s)] are the variables a single statement may
    modify / use, {e exclusive of any procedure calls in it}: a call
    statement's [LMOD] is empty, and its [LUSE] contains only the
    variables read to evaluate its arguments (value-argument
    expressions and the subscripts of reference actuals — evaluated at
    the call, in the caller).

    Modifying an array element counts as modifying the whole array at
    this granularity; §6's regular sections refine that separately.

    Pointer dereferences are expanded through the optional [deref]
    projection: [deref p d] must list every variable the [d]-fold
    dereference of [p] may name (the points-to solution provides it,
    see {!Ptsto}).  The default projection is empty — exact on
    pointer-free programs, where no dereference exists.

    [IMOD(p) = ⋃_{s∈p} LMOD(s)], extended for nested procedure
    declarations per §3.3:
    [IMOD(p) ⊇ IMOD(q) ∖ LOCAL(q)] for each [q ∈ Nest(p)]
    (the paper's overbar on LOCAL restored — see DESIGN.md), computed
    bottom-up over the nesting tree.  [IUSE] is the symmetric
    computation from [LUSE]. *)

val no_deref : int -> int -> int list
(** The empty dereference projection (returns [[]] everywhere). *)

val expr_reads : ?deref:(int -> int -> int list) -> Ir.Expr.t -> int list
(** Variables whose value evaluating this expression reads, ascending.
    [&x] reads nothing; [*p] reads [p] and its [deref] targets. *)

val lvalue_addr_reads : ?deref:(int -> int -> int list) -> Ir.Expr.lvalue -> int list
(** Variables read to compute the lvalue's address: subscripts of an
    element, the pointer and intermediate cells of a dereference. *)

val lvalue_writes : ?deref:(int -> int -> int list) -> Ir.Expr.lvalue -> int list
(** Variables assigning through this lvalue may modify: the base for a
    variable or element, the depth-[d] [deref] targets for [*...*p]. *)

val lmod_stmt : ?deref:(int -> int -> int list) -> Ir.Prog.t -> Ir.Stmt.t -> int list
(** Variables directly modified by this one statement (not its
    sub-statements), ascending. *)

val luse_stmt : ?deref:(int -> int -> int list) -> Ir.Prog.t -> Ir.Stmt.t -> int list
(** Variables directly used by this one statement (not its
    sub-statements), ascending. *)

val imod_flat :
  ?pool:Par.Pool.t -> ?deref:(int -> int -> int list) -> Ir.Info.t -> Bitvec.t array
(** Per-procedure [⋃ LMOD(s)] without the nesting extension.  With
    [?pool], procedures are scanned in parallel chunks (the
    per-procedure sets are independent); identical results and — these
    passes perform no whole-vector operations — identical counter
    state. *)

val iuse_flat :
  ?pool:Par.Pool.t -> ?deref:(int -> int -> int list) -> Ir.Info.t -> Bitvec.t array

val imod :
  ?pool:Par.Pool.t -> ?deref:(int -> int -> int list) -> Ir.Info.t -> Bitvec.t array
(** Per-procedure [IMOD] with the §3.3 nesting extension (the nesting
    fold itself is sequential). *)

val iuse :
  ?pool:Par.Pool.t -> ?deref:(int -> int -> int list) -> Ir.Info.t -> Bitvec.t array
(** Per-procedure [IUSE] with the §3.3 nesting extension. *)
