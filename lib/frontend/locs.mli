(** Source positions for the entities of a resolved program.

    {!Ir.Prog} is deliberately position-free (ids only), but client
    analyses — the lint engine above all — need to point a finding at a
    line of source.  This side table carries one {!Loc.t} per
    procedure, variable, and call site of a program, plus the [for]
    loops of each procedure in statement pre-order (loops have no ids
    of their own).  {!Sema.resolve_with_locs} fills it during
    resolution, where the surface locations are still at hand.

    A table is only meaningful against the exact program it was built
    with: ids are positional.  Programs that never saw the front end
    (generated workloads, post-edit programs — {!Ir.Patch} renumbers
    ids) use {!dummy}, whose every entry is {!Loc.dummy}. *)

type t = {
  procs : Loc.t array;  (** By pid; the procedure-name token ([main]: the program name). *)
  vars : Loc.t array;  (** By vid; the declaring identifier. *)
  sites : Loc.t array;  (** By sid; the callee name at the call statement. *)
  loops : Loc.t array array;
      (** By pid, then [for]-loop ordinal in statement pre-order (the
          order {!Ir.Stmt.iter} visits them). *)
  stmts : Loc.t array array;
      (** By pid, then statement ordinal in pre-order — {e every}
          statement of the body, not just loops, so statement-level
          clients (the dataflow layer's dead-store rule) can point at
          the exact statement.  Statements inside a [for] body carry
          their own positions, not the loop header's. *)
}

val dummy : Ir.Prog.t -> t
(** Every entry {!Loc.dummy}, shaped to the given program. *)

val proc : t -> int -> Loc.t
val var : t -> int -> Loc.t
val site : t -> int -> Loc.t

val loop : t -> proc:int -> int -> Loc.t
(** Location of the [ordinal]-th [for] loop of a procedure in pre-order;
    {!Loc.dummy} when out of range (a table from {!dummy}, or an edited
    program). *)

val stmt : t -> proc:int -> int -> Loc.t
(** Location of the [ordinal]-th statement of a procedure's body in
    pre-order ({!Ir.Stmt.iter} order, the ordinal a CFG instruction
    carries); {!Loc.dummy} when out of range. *)
