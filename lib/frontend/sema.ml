type error = {
  loc : Loc.t;
  msg : string;
}

let pp_error ppf e = Format.fprintf ppf "%a: %s" Loc.pp e.loc e.msg

module Smap = Map.Make (String)
module Types = Ir.Types

(* Raised to abandon the current statement after recording an error;
   resolution then continues with the next statement so one pass can
   report many diagnostics. *)
exception Bail

type ctx = {
  mutable errors : error list;
  mutable vars : Ir.Prog.var list; (* reverse order *)
  mutable n_vars : int;
  mutable sites : Ir.Prog.site list; (* reverse order *)
  mutable n_sites : int;
  mutable proc_names : unit Smap.t; (* global uniqueness of procedure names *)
  (* Source positions for the Locs side table, recorded as ids are
     assigned (all reverse order; loops are (caller pid, loc) pairs in
     statement pre-order per procedure). *)
  mutable var_locs : Loc.t list;
  mutable site_locs : Loc.t list;
  mutable loop_locs : (int * Loc.t) list;
  mutable stmt_locs : (int * Loc.t) list;
}

let report ctx loc fmt =
  Format.kasprintf (fun msg -> ctx.errors <- { loc; msg } :: ctx.errors) fmt

let bail ctx loc fmt =
  Format.kasprintf
    (fun msg ->
      ctx.errors <- { loc; msg } :: ctx.errors;
      raise Bail)
    fmt

let rec ty_of_ast = function
  | Ast.Ty_int -> Types.Int
  | Ast.Ty_bool -> Types.Bool
  | Ast.Ty_array dims -> Types.Array dims
  | Ast.Ty_ptr t -> Types.Ptr (ty_of_ast t)

let fresh_var ctx ~loc ~name ~ty ~kind =
  let vid = ctx.n_vars in
  ctx.n_vars <- vid + 1;
  ctx.vars <- { Ir.Prog.vid; vname = name; vty = ty; kind } :: ctx.vars;
  ctx.var_locs <- loc :: ctx.var_locs;
  vid

(* Declaration pass output, one record per procedure: everything body
   resolution will need. *)
type pending = {
  pid : int;
  pname : string;
  ploc : Loc.t;
  parent : int option;
  level : int;
  formals : int array;
  locals : int list;
  nested : int list;
  venv : int Smap.t; (* var name -> vid, as seen from this proc's body *)
  penv : int Smap.t; (* proc name -> pid, as seen from this proc's body *)
  body : Ast.stmt list;
}

let rec check_array_extents ctx (ty : Ast.ty) loc =
  match ty with
  | Ast.Ty_array dims ->
    if dims = [] then report ctx loc "array type needs at least one dimension";
    List.iter
      (fun d -> if d <= 0 then report ctx loc "array extent %d is not positive" d)
      dims
  | Ast.Ty_ptr (Ast.Ty_array _) ->
    report ctx loc "pointer to array types are not supported"
  | Ast.Ty_ptr t -> check_array_extents ctx t loc
  | Ast.Ty_int | Ast.Ty_bool -> ()

(* Declare the variables of one scope (formals then locals), reporting
   duplicate names within the scope.  Returns the extended venv and the
   vid lists. *)
let declare_scope ctx ~pid ~params ~decls venv =
  let seen = Hashtbl.create 8 in
  let check_dup (id : Ast.ident) =
    if Hashtbl.mem seen id.Ast.name then begin
      report ctx id.Ast.loc "duplicate declaration of '%s' in this scope" id.Ast.name;
      false
    end
    else begin
      Hashtbl.add seen id.Ast.name ();
      true
    end
  in
  let venv = ref venv in
  let formals =
    List.mapi
      (fun index (p : Ast.param) ->
        let ty = ty_of_ast p.Ast.p_ty in
        check_array_extents ctx p.Ast.p_ty p.Ast.p_name.Ast.loc;
        (match (p.Ast.p_mode, ty) with
        | Ir.Prog.By_value, Types.Array _ ->
          report ctx p.Ast.p_name.Ast.loc
            "array parameter '%s' must be passed by reference ('var')"
            p.Ast.p_name.Ast.name
        | (Ir.Prog.By_ref | Ir.Prog.By_value), _ -> ());
        ignore (check_dup p.Ast.p_name);
        let vid =
          fresh_var ctx ~loc:p.Ast.p_name.Ast.loc ~name:p.Ast.p_name.Ast.name ~ty
            ~kind:(Ir.Prog.Formal { proc = pid; index; mode = p.Ast.p_mode })
        in
        venv := Smap.add p.Ast.p_name.Ast.name vid !venv;
        vid)
      params
  in
  let locals =
    List.concat_map
      (fun (d : Ast.decl) ->
        let ty = ty_of_ast d.Ast.d_ty in
        List.filter_map
          (fun (id : Ast.ident) ->
            check_array_extents ctx d.Ast.d_ty id.Ast.loc;
            if check_dup id then begin
              let vid =
                fresh_var ctx ~loc:id.Ast.loc ~name:id.Ast.name ~ty
                  ~kind:(Ir.Prog.Local pid)
              in
              venv := Smap.add id.Ast.name vid !venv;
              Some vid
            end
            else None)
          d.Ast.d_names)
      decls
  in
  (Array.of_list formals, locals, !venv)

let rec declare_procs ctx ~next_pid ~parent ~level ~venv ~penv
    (procs : Ast.proc list) : pending list * int list =
  (* Sibling procedures are mutually visible, so extend penv with every
     sibling before descending into any of them. *)
  let assigned =
    List.map
      (fun (p : Ast.proc) ->
        let pid = !next_pid in
        incr next_pid;
        (pid, p))
      procs
  in
  let penv =
    List.fold_left
      (fun env (pid, (p : Ast.proc)) ->
        let name = p.Ast.proc_name.Ast.name in
        if Smap.mem name ctx.proc_names then
          report ctx p.Ast.proc_name.Ast.loc
            "procedure name '%s' is already used (MiniProc procedure names are \
             globally unique)"
            name
        else ctx.proc_names <- Smap.add name () ctx.proc_names;
        Smap.add name pid env)
      penv assigned
  in
  let results =
    List.map
      (fun (pid, (p : Ast.proc)) ->
        let formals, locals, venv' =
          declare_scope ctx ~pid ~params:p.Ast.params ~decls:p.Ast.decls venv
        in
        let sub_pendings, child_pids =
          declare_procs ctx ~next_pid ~parent:pid ~level:(level + 1) ~venv:venv'
            ~penv p.Ast.procs
        in
        let child_penv =
          List.fold_left2
            (fun env (c : Ast.proc) cpid -> Smap.add c.Ast.proc_name.Ast.name cpid env)
            penv p.Ast.procs child_pids
        in
        let this =
          {
            pid;
            pname = p.Ast.proc_name.Ast.name;
            ploc = p.Ast.proc_name.Ast.loc;
            parent = Some parent;
            level = level + 1;
            formals;
            locals;
            nested = child_pids;
            venv = venv';
            penv = child_penv;
            body = p.Ast.body;
          }
        in
        (this, sub_pendings))
      assigned
  in
  let pendings = List.concat_map (fun (this, subs) -> this :: subs) results in
  let pids = List.map (fun (pid, _) -> pid) assigned in
  (pendings, pids)

(* --- body resolution (pass 2) --- *)

(* Variable table snapshot for type lookups during pass 2. *)
type tables = {
  var_arr : Ir.Prog.var array;
}

let var_ty tb vid = tb.var_arr.(vid).Ir.Prog.vty

let lookup_var ctx venv (id : Ast.ident) =
  match Smap.find_opt id.Ast.name venv with
  | Some vid -> vid
  | None -> bail ctx id.Ast.loc "unknown variable '%s'" id.Ast.name

let rec resolve_expr ctx tb venv (e : Ast.expr) : Ir.Expr.t * Types.t =
  match e with
  | Ast.Int (n, _) -> (Ir.Expr.Int n, Types.Int)
  | Ast.Bool (b, _) -> (Ir.Expr.Bool b, Types.Bool)
  | Ast.Name id ->
    let vid = lookup_var ctx venv id in
    (match var_ty tb vid with
    | Types.Array _ ->
      bail ctx id.Ast.loc "array '%s' cannot be read as a scalar" id.Ast.name
    | (Types.Int | Types.Bool | Types.Ptr _) as ty -> (Ir.Expr.Var vid, ty))
  | Ast.Index (id, idx) ->
    let vid = lookup_var ctx venv id in
    let rank = Types.rank (var_ty tb vid) in
    if rank = 0 then bail ctx id.Ast.loc "scalar '%s' cannot be indexed" id.Ast.name;
    if rank <> List.length idx then
      bail ctx id.Ast.loc "'%s' has rank %d but %d subscripts were given" id.Ast.name
        rank (List.length idx);
    let idx' = List.map (fun e -> resolve_expr_expect ctx tb venv e Types.Int) idx in
    (Ir.Expr.Index (vid, idx'), Types.Int)
  | Ast.Binop (op, l, r) ->
    let want, result =
      match op with
      | Ir.Expr.And | Ir.Expr.Or -> (Types.Bool, Types.Bool)
      | Ir.Expr.Lt | Ir.Expr.Le | Ir.Expr.Gt | Ir.Expr.Ge | Ir.Expr.Eq | Ir.Expr.Ne ->
        (Types.Int, Types.Bool)
      | Ir.Expr.Add | Ir.Expr.Sub | Ir.Expr.Mul | Ir.Expr.Div | Ir.Expr.Mod ->
        (Types.Int, Types.Int)
    in
    let l' = resolve_expr_expect ctx tb venv l want in
    let r' = resolve_expr_expect ctx tb venv r want in
    (Ir.Expr.Binop (op, l', r'), result)
  | Ast.Unop (op, e0) ->
    let want =
      match op with
      | Ir.Expr.Neg -> Types.Int
      | Ir.Expr.Not -> Types.Bool
    in
    (Ir.Expr.Unop (op, resolve_expr_expect ctx tb venv e0 want), want)
  | Ast.Addr id -> (
    let vid = lookup_var ctx venv id in
    match var_ty tb vid with
    | Types.Array _ ->
      bail ctx id.Ast.loc "cannot take the address of array '%s'" id.Ast.name
    | (Types.Int | Types.Bool | Types.Ptr _) as ty ->
      (Ir.Expr.Addr vid, Types.Ptr ty))
  | Ast.Deref (d, id) -> (
    let vid = lookup_var ctx venv id in
    let ty = var_ty tb vid in
    match Types.deref d ty with
    | Some t -> (Ir.Expr.Deref (vid, d), t)
    | None ->
      bail ctx id.Ast.loc "'%s' of type %s cannot be dereferenced %d time(s)"
        id.Ast.name (Types.to_string ty) d)
  | Ast.New (ty_ast, loc) -> (
    check_array_extents ctx ty_ast loc;
    match ty_of_ast ty_ast with
    | Types.Array _ -> bail ctx loc "cannot allocate an array with 'new'"
    | (Types.Int | Types.Bool | Types.Ptr _) as ty ->
      (Ir.Expr.New ty, Types.Ptr ty))

and resolve_expr_expect ctx tb venv e want =
  let e', ty = resolve_expr ctx tb venv e in
  if not (Types.equal ty want) then
    bail ctx (Ast.expr_loc e) "expected type %s, found %s" (Types.to_string want)
      (Types.to_string ty);
  e'

(* An lvalue that must denote a scalar location (assignment, read). *)
let resolve_scalar_lvalue ctx tb venv (lv : Ast.lvalue) : Ir.Expr.lvalue * Types.t =
  match lv with
  | Ast.Lname id ->
    let vid = lookup_var ctx venv id in
    (match var_ty tb vid with
    | Types.Array _ ->
      bail ctx id.Ast.loc "whole array '%s' cannot be assigned or read" id.Ast.name
    | (Types.Int | Types.Bool | Types.Ptr _) as ty -> (Ir.Expr.Lvar vid, ty))
  | Ast.Lindex (id, idx) -> (
    match resolve_expr ctx tb venv (Ast.Index (id, idx)) with
    | Ir.Expr.Index (vid, idx'), ty -> (Ir.Expr.Lindex (vid, idx'), ty)
    | _ -> assert false)
  | Ast.Lderef (d, id) -> (
    let vid = lookup_var ctx venv id in
    let ty = var_ty tb vid in
    match Types.deref d ty with
    | Some t -> (Ir.Expr.Lderef (vid, d), t)
    | None ->
      bail ctx id.Ast.loc "'%s' of type %s cannot be dereferenced %d time(s)"
        id.Ast.name (Types.to_string ty) d)

(* A by-reference actual: a variable (any type, including whole arrays)
   or an array element. *)
let resolve_ref_actual ctx tb venv (e : Ast.expr) : Ir.Expr.lvalue * Types.t =
  match e with
  | Ast.Name id ->
    let vid = lookup_var ctx venv id in
    (Ir.Expr.Lvar vid, var_ty tb vid)
  | Ast.Index (id, idx) -> (
    match resolve_expr ctx tb venv (Ast.Index (id, idx)) with
    | Ir.Expr.Index (vid, idx'), ty -> (Ir.Expr.Lindex (vid, idx'), ty)
    | _ -> assert false)
  | Ast.Deref (d, id) -> (
    let vid = lookup_var ctx venv id in
    let ty = var_ty tb vid in
    match Types.deref d ty with
    | Some t -> (Ir.Expr.Lderef (vid, d), t)
    | None ->
      bail ctx id.Ast.loc "'%s' of type %s cannot be dereferenced %d time(s)"
        id.Ast.name (Types.to_string ty) d)
  | _ ->
    bail ctx (Ast.expr_loc e)
      "this argument is bound to a 'var' parameter and must be a variable, an \
       array element, or a pointer dereference"

let resolve_call ctx tb ~caller ~pendings venv penv (callee : Ast.ident) args =
  let callee_pid =
    match Smap.find_opt callee.Ast.name penv with
    | Some pid -> pid
    | None -> bail ctx callee.Ast.loc "unknown procedure '%s'" callee.Ast.name
  in
  let callee_pending : pending = List.nth pendings callee_pid in
  let formals = callee_pending.formals in
  if Array.length formals <> List.length args then
    bail ctx callee.Ast.loc "'%s' expects %d argument(s), got %d" callee.Ast.name
      (Array.length formals) (List.length args);
  let resolved_args =
    List.mapi
      (fun i arg ->
        let formal_vid = formals.(i) in
        let formal = tb.var_arr.(formal_vid) in
        let formal_ty = formal.Ir.Prog.vty in
        match formal.Ir.Prog.kind with
        | Ir.Prog.Formal { mode = Ir.Prog.By_ref; _ } ->
          let lv, ty = resolve_ref_actual ctx tb venv arg in
          if not (Types.equal ty formal_ty) then
            bail ctx (Ast.expr_loc arg)
              "argument %d of '%s': type %s cannot bind to 'var' parameter of type %s"
              (i + 1) callee.Ast.name (Types.to_string ty) (Types.to_string formal_ty);
          Ir.Prog.Arg_ref lv
        | Ir.Prog.Formal { mode = Ir.Prog.By_value; _ } ->
          Ir.Prog.Arg_value (resolve_expr_expect ctx tb venv arg formal_ty)
        | Ir.Prog.Global | Ir.Prog.Local _ -> assert false)
      args
  in
  let sid = ctx.n_sites in
  ctx.n_sites <- sid + 1;
  ctx.sites <-
    { Ir.Prog.sid; caller; callee = callee_pid; args = Array.of_list resolved_args }
    :: ctx.sites;
  ctx.site_locs <- callee.Ast.loc :: ctx.site_locs;
  sid

let rec resolve_stmts ctx tb ~caller ~pendings venv penv (stmts : Ast.stmt list) :
    Ir.Stmt.t list =
  List.filter_map
    (fun s ->
      try resolve_stmt ctx tb ~caller ~pendings venv penv s with
      | Bail -> None)
    stmts

and resolve_stmt ctx tb ~caller ~pendings venv penv (s : Ast.stmt) : Ir.Stmt.t option =
  (* Statement locations are recorded up front, before any sub-body is
     resolved, so their ordinals follow pre-order — the order
     Ir.Stmt.iter visits the resolved body.  [Skip] resolves to no
     statement at all and must record nothing.  A statement that bails
     leaves a stray entry, but then ctx.errors is non-empty and the loc
     tables are never built. *)
  (match s with
  | Ast.Skip -> ()
  | Ast.Assign (lv, _) | Ast.Read lv ->
    ctx.stmt_locs <- (caller, Ast.lvalue_loc lv) :: ctx.stmt_locs
  | Ast.If (c, _, _) | Ast.While (c, _) ->
    ctx.stmt_locs <- (caller, Ast.expr_loc c) :: ctx.stmt_locs
  | Ast.For (v, _, _, _) -> ctx.stmt_locs <- (caller, v.Ast.loc) :: ctx.stmt_locs
  | Ast.Call (callee, _) ->
    ctx.stmt_locs <- (caller, callee.Ast.loc) :: ctx.stmt_locs
  | Ast.Write e -> ctx.stmt_locs <- (caller, Ast.expr_loc e) :: ctx.stmt_locs);
  match s with
  | Ast.Skip -> None
  | Ast.Assign (lv, e) ->
    let lv', ty = resolve_scalar_lvalue ctx tb venv lv in
    let e' = resolve_expr_expect ctx tb venv e ty in
    Some (Ir.Stmt.Assign (lv', e'))
  | Ast.If (c, then_, else_) ->
    let c' = resolve_expr_expect ctx tb venv c Types.Bool in
    let then' = resolve_stmts ctx tb ~caller ~pendings venv penv then_ in
    let else' = resolve_stmts ctx tb ~caller ~pendings venv penv else_ in
    Some (Ir.Stmt.If (c', then', else'))
  | Ast.While (c, body) ->
    let c' = resolve_expr_expect ctx tb venv c Types.Bool in
    let body' = resolve_stmts ctx tb ~caller ~pendings venv penv body in
    Some (Ir.Stmt.While (c', body'))
  | Ast.For (v, lo, hi, body) ->
    let vid = lookup_var ctx venv v in
    (match var_ty tb vid with
    | Types.Int -> ()
    | ty ->
      bail ctx v.Ast.loc "loop variable '%s' must be int, found %s" v.Ast.name
        (Types.to_string ty));
    (* Recorded before the body so loop ordinals follow statement
       pre-order, matching Ir.Stmt.iter on the resolved program. *)
    ctx.loop_locs <- (caller, v.Ast.loc) :: ctx.loop_locs;
    let lo' = resolve_expr_expect ctx tb venv lo Types.Int in
    let hi' = resolve_expr_expect ctx tb venv hi Types.Int in
    let body' = resolve_stmts ctx tb ~caller ~pendings venv penv body in
    Some (Ir.Stmt.For (vid, lo', hi', body'))
  | Ast.Call (callee, args) ->
    Some (Ir.Stmt.Call (resolve_call ctx tb ~caller ~pendings venv penv callee args))
  | Ast.Read lv -> (
    let lv', ty = resolve_scalar_lvalue ctx tb venv lv in
    match ty with
    | Types.Int | Types.Bool -> Some (Ir.Stmt.Read lv')
    | Types.Ptr _ -> bail ctx (Ast.lvalue_loc lv) "cannot read into a pointer"
    | Types.Array _ -> assert false)
  | Ast.Write e -> (
    (* write accepts int or bool *)
    match resolve_expr ctx tb venv e with
    | e', (Types.Int | Types.Bool) -> Some (Ir.Stmt.Write e')
    | _, Types.Array _ -> bail ctx (Ast.expr_loc e) "cannot write a whole array"
    | _, Types.Ptr _ -> bail ctx (Ast.expr_loc e) "cannot write a pointer")

(* --- entry point --- *)

let resolve_with_locs (ast : Ast.program) : (Ir.Prog.t * Locs.t, error list) result =
  let ctx =
    {
      errors = [];
      vars = [];
      n_vars = 0;
      sites = [];
      n_sites = 0;
      proc_names = Smap.empty;
      var_locs = [];
      site_locs = [];
      loop_locs = [];
      stmt_locs = [];
    }
  in
  (* Globals. *)
  let genv = ref Smap.empty in
  let seen_globals = Hashtbl.create 16 in
  List.iter
    (fun (d : Ast.decl) ->
      let ty = ty_of_ast d.Ast.d_ty in
      List.iter
        (fun (id : Ast.ident) ->
          check_array_extents ctx d.Ast.d_ty id.Ast.loc;
          if Hashtbl.mem seen_globals id.Ast.name then
            report ctx id.Ast.loc "duplicate global '%s'" id.Ast.name
          else begin
            Hashtbl.add seen_globals id.Ast.name ();
            let vid =
              fresh_var ctx ~loc:id.Ast.loc ~name:id.Ast.name ~ty
                ~kind:Ir.Prog.Global
            in
            genv := Smap.add id.Ast.name vid !genv
          end)
        d.Ast.d_names)
    ast.Ast.globals;
  (* Declaration pass: main is pid 0; its children are the top-level
     procedures. *)
  let next_pid = ref 1 in
  ctx.proc_names <- Smap.add ast.Ast.prog_name.Ast.name () ctx.proc_names;
  let sub_pendings, top_pids =
    declare_procs ctx ~next_pid ~parent:0 ~level:0 ~venv:!genv ~penv:Smap.empty
      ast.Ast.top_procs
  in
  let top_penv =
    List.fold_left2
      (fun env (p : Ast.proc) pid -> Smap.add p.Ast.proc_name.Ast.name pid env)
      Smap.empty ast.Ast.top_procs top_pids
  in
  let main_pending =
    {
      pid = 0;
      pname = ast.Ast.prog_name.Ast.name;
      ploc = ast.Ast.prog_name.Ast.loc;
      parent = None;
      level = 0;
      formals = [||];
      locals = [];
      nested = top_pids;
      venv = !genv;
      penv = top_penv;
      body = ast.Ast.main_body;
    }
  in
  let pendings =
    List.sort
      (fun a b -> compare a.pid b.pid)
      (main_pending :: sub_pendings)
  in
  (* Sanity: pids dense. *)
  List.iteri (fun i p -> assert (p.pid = i)) pendings;
  let tb = { var_arr = Array.of_list (List.rev ctx.vars) } in
  (* Pass 2: bodies in pid order (so site ids follow pid order). *)
  let bodies =
    List.map
      (fun (p : pending) ->
        resolve_stmts ctx tb ~caller:p.pid ~pendings p.venv p.penv p.body)
      pendings
  in
  match ctx.errors with
  | _ :: _ -> Error (List.rev ctx.errors)
  | [] ->
    let procs =
      Array.of_list
        (List.map2
           (fun (p : pending) body ->
             {
               Ir.Prog.pid = p.pid;
               pname = p.pname;
               parent = p.parent;
               level = p.level;
               formals = p.formals;
               locals = p.locals;
               nested = p.nested;
               body;
             })
           pendings bodies)
    in
    let prog =
      {
        Ir.Prog.name = ast.Ast.prog_name.Ast.name;
        vars = tb.var_arr;
        procs;
        sites = Array.of_list (List.rev ctx.sites);
        main = 0;
      }
    in
    let loops = Array.make (Array.length procs) [] in
    List.iter
      (fun (pid, loc) -> loops.(pid) <- loc :: loops.(pid))
      ctx.loop_locs (* reversed input, so consing restores pre-order *);
    let stmts = Array.make (Array.length procs) [] in
    List.iter
      (fun (pid, loc) -> stmts.(pid) <- loc :: stmts.(pid))
      ctx.stmt_locs (* reversed input, so consing restores pre-order *);
    let locs =
      {
        Locs.procs = Array.of_list (List.map (fun p -> p.ploc) pendings);
        vars = Array.of_list (List.rev ctx.var_locs);
        sites = Array.of_list (List.rev ctx.site_locs);
        loops = Array.map Array.of_list loops;
        stmts = Array.map Array.of_list stmts;
      }
    in
    Ok (prog, locs)

let resolve ast = Result.map fst (resolve_with_locs ast)

let compile_with_locs ?file src =
  Obs.Span.with_ "frontend.compile" @@ fun () ->
  match Obs.Span.with_ "frontend.parse" (fun () -> Parser.parse ?file src) with
  | Result.Error (loc, msg) -> Error [ { loc; msg } ]
  | Ok ast -> Obs.Span.with_ "frontend.resolve" (fun () -> resolve_with_locs ast)

let compile ?file src = Result.map fst (compile_with_locs ?file src)

let compile_exn ?file src =
  match compile ?file src with
  | Ok p -> p
  | Error errs ->
    failwith
      (Format.asprintf "@[<v>%a@]"
         (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_error)
         errs)
