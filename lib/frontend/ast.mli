(** Surface abstract syntax, as produced by the parser: names are
    unresolved strings with source locations; {!Sema} turns this into
    the id-based {!Ir.Prog} representation.

    Binary and unary operators are shared with the resolved IR
    ({!Ir.Expr}) — resolution does not change them. *)

type ident = {
  name : string;
  loc : Loc.t;
}

type ty =
  | Ty_int
  | Ty_bool
  | Ty_array of int list
  | Ty_ptr of ty

type expr =
  | Int of int * Loc.t
  | Bool of bool * Loc.t
  | Name of ident  (** Scalar variable read. *)
  | Index of ident * expr list
  | Binop of Ir.Expr.binop * expr * expr
  | Unop of Ir.Expr.unop * expr
  | Addr of ident  (** [&x] *)
  | Deref of int * ident  (** [Deref (d, p)]: [d] stars before [p]. *)
  | New of ty * Loc.t  (** [new T] *)

type lvalue =
  | Lname of ident
  | Lindex of ident * expr list
  | Lderef of int * ident  (** [*...*p]: [d] stars before [p]. *)

type stmt =
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of ident * expr * expr * stmt list
  | Call of ident * expr list
      (** Arguments are parsed as general expressions; {!Sema} checks
          lvalue-ness against the callee's by-reference formals. *)
  | Read of lvalue
  | Write of expr
  | Skip  (** No-op; dropped during resolution. *)

type param = {
  p_mode : Ir.Prog.param_mode;
  p_name : ident;
  p_ty : ty;
}

type decl = {
  d_names : ident list;
  d_ty : ty;
}

type proc = {
  proc_name : ident;
  params : param list;
  decls : decl list;
  procs : proc list;  (** Nested procedure declarations, in order. *)
  body : stmt list;
}

type program = {
  prog_name : ident;
  globals : decl list;
  top_procs : proc list;
  main_body : stmt list;
}

val expr_loc : expr -> Loc.t
val lvalue_loc : lvalue -> Loc.t
