module Prog = Ir.Prog
module Stmt = Ir.Stmt
module Expr = Ir.Expr

module Int_set = Set.Make (Int)

let no_deref _ _ = []

(* Variables whose value a (side-effect free) expression reads.  [&x]
   reads nothing — only the address is taken; [*p] reads [p] and every
   cell the dereference chain may name, which the [deref] projection
   (from the points-to solution) supplies per depth. *)
let rec read_vars ~deref acc (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Bool _ | Expr.New _ | Expr.Addr _ -> acc
  | Expr.Var v -> Int_set.add v acc
  | Expr.Index (a, idx) -> List.fold_left (read_vars ~deref) (Int_set.add a acc) idx
  | Expr.Binop (_, l, r) -> read_vars ~deref (read_vars ~deref acc l) r
  | Expr.Unop (_, e0) -> read_vars ~deref acc e0
  | Expr.Deref (p, d) ->
    let acc = ref (Int_set.add p acc) in
    for k = 1 to d do
      List.iter (fun v -> acc := Int_set.add v !acc) (deref p k)
    done;
    !acc

(* Variables read to compute an lvalue's address: subscripts for an
   element, the pointer and every intermediate cell for a dereference
   (the final cell is the location itself, not part of the address
   computation). *)
let lvalue_addr_vars ~deref acc (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar _ -> acc
  | Expr.Lindex (_, idx) -> List.fold_left (read_vars ~deref) acc idx
  | Expr.Lderef (p, d) ->
    let acc = ref (Int_set.add p acc) in
    for k = 1 to d - 1 do
      List.iter (fun v -> acc := Int_set.add v !acc) (deref p k)
    done;
    !acc

let lmod_lvalue ~deref (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar v | Expr.Lindex (v, _) -> [ v ]
  | Expr.Lderef (p, d) -> deref p d

let expr_reads ?(deref = no_deref) e =
  Int_set.elements (read_vars ~deref Int_set.empty e)

let lvalue_addr_reads ?(deref = no_deref) lv =
  Int_set.elements (lvalue_addr_vars ~deref Int_set.empty lv)

let lvalue_writes ?(deref = no_deref) lv = lmod_lvalue ~deref lv

let lmod_stmt ?(deref = no_deref) _p (s : Stmt.t) =
  match s with
  | Stmt.Assign (lv, _) | Stmt.Read lv -> lmod_lvalue ~deref lv
  | Stmt.For (v, _, _, _) -> [ v ]
  | Stmt.If _ | Stmt.While _ | Stmt.Call _ | Stmt.Write _ -> []

let luse_stmt ?(deref = no_deref) p (s : Stmt.t) =
  let set =
    match s with
    | Stmt.Assign (lv, e) -> read_vars ~deref (lvalue_addr_vars ~deref Int_set.empty lv) e
    | Stmt.If (c, _, _) | Stmt.While (c, _) -> read_vars ~deref Int_set.empty c
    | Stmt.For (v, lo, hi, _) ->
      read_vars ~deref (read_vars ~deref (Int_set.singleton v) lo) hi
    | Stmt.Read lv -> lvalue_addr_vars ~deref Int_set.empty lv
    | Stmt.Write e -> read_vars ~deref Int_set.empty e
    | Stmt.Call sid ->
      let site = Prog.site p sid in
      Array.fold_left
        (fun acc arg ->
          match arg with
          | Prog.Arg_value e -> read_vars ~deref acc e
          | Prog.Arg_ref lv -> lvalue_addr_vars ~deref acc lv)
        Int_set.empty site.Prog.args
  in
  Int_set.elements set

(* Per-procedure union of a per-statement set.  Procedures are
   independent, so with a pool they fill in chunked tasks; only
   single-bit sets are involved (nothing counted), and the batch join
   publishes every vector before the caller reads them. *)
let flat_union ?pool info per_stmt =
  let p = Ir.Info.prog info in
  let fill (pr : Prog.proc) acc =
    Stmt.iter
      (fun s -> List.iter (fun v -> Bitvec.set acc v) (per_stmt p s))
      pr.Prog.body
  in
  match pool with
  | None ->
    Array.map
      (fun pr ->
        let acc = Ir.Info.fresh info in
        fill pr acc;
        acc)
      p.Prog.procs
  | Some pool ->
    let procs = p.Prog.procs in
    let n = Array.length procs in
    let result = Array.init n (fun _ -> Ir.Info.fresh info) in
    if n > 0 then begin
      let jobs = Par.Pool.jobs pool in
      let chunk = max 1 ((n + (jobs * 4) - 1) / (jobs * 4)) in
      let n_tasks = (n + chunk - 1) / chunk in
      Par.Pool.run pool
        (Array.init n_tasks (fun ti _slot ->
             for i = ti * chunk to min n ((ti + 1) * chunk) - 1 do
               fill procs.(i) result.(i)
             done))
    end;
    result

let imod_flat ?pool ?(deref = no_deref) info =
  flat_union ?pool info (fun p s -> lmod_stmt ~deref p s)

let iuse_flat ?pool ?(deref = no_deref) info =
  flat_union ?pool info (fun p s -> luse_stmt ~deref p s)

(* The nesting fold is a short bottom-up pass over the declaration
   tree; it stays sequential (its unions are ordered along tree
   paths). *)
let imod ?pool ?deref info = Ir.Info.fold_up_nesting info (imod_flat ?pool ?deref info)
let iuse ?pool ?deref info = Ir.Info.fold_up_nesting info (iuse_flat ?pool ?deref info)
