module Prog = Ir.Prog
module Stmt = Ir.Stmt
module Expr = Ir.Expr

module Int_set = Set.Make (Int)

let expr_vars acc e = List.fold_left (fun acc v -> Int_set.add v acc) acc (Expr.vars e)

let lvalue_index_vars acc lv =
  List.fold_left (fun acc v -> Int_set.add v acc) acc (Expr.lvalue_index_vars lv)

let lmod_stmt _p (s : Stmt.t) =
  match s with
  | Stmt.Assign (lv, _) | Stmt.Read lv -> [ Expr.lvalue_base lv ]
  | Stmt.For (v, _, _, _) -> [ v ]
  | Stmt.If _ | Stmt.While _ | Stmt.Call _ | Stmt.Write _ -> []

let luse_stmt p (s : Stmt.t) =
  let set =
    match s with
    | Stmt.Assign (lv, e) -> expr_vars (lvalue_index_vars Int_set.empty lv) e
    | Stmt.If (c, _, _) | Stmt.While (c, _) -> expr_vars Int_set.empty c
    | Stmt.For (v, lo, hi, _) ->
      expr_vars (expr_vars (Int_set.singleton v) lo) hi
    | Stmt.Read lv -> lvalue_index_vars Int_set.empty lv
    | Stmt.Write e -> expr_vars Int_set.empty e
    | Stmt.Call sid ->
      let site = Prog.site p sid in
      Array.fold_left
        (fun acc arg ->
          match arg with
          | Prog.Arg_value e -> expr_vars acc e
          | Prog.Arg_ref lv -> lvalue_index_vars acc lv)
        Int_set.empty site.Prog.args
  in
  Int_set.elements set

(* Per-procedure union of a per-statement set.  Procedures are
   independent, so with a pool they fill in chunked tasks; only
   single-bit sets are involved (nothing counted), and the batch join
   publishes every vector before the caller reads them. *)
let flat_union ?pool info per_stmt =
  let p = Ir.Info.prog info in
  let fill (pr : Prog.proc) acc =
    Stmt.iter
      (fun s -> List.iter (fun v -> Bitvec.set acc v) (per_stmt p s))
      pr.Prog.body
  in
  match pool with
  | None ->
    Array.map
      (fun pr ->
        let acc = Ir.Info.fresh info in
        fill pr acc;
        acc)
      p.Prog.procs
  | Some pool ->
    let procs = p.Prog.procs in
    let n = Array.length procs in
    let result = Array.init n (fun _ -> Ir.Info.fresh info) in
    if n > 0 then begin
      let jobs = Par.Pool.jobs pool in
      let chunk = max 1 ((n + (jobs * 4) - 1) / (jobs * 4)) in
      let n_tasks = (n + chunk - 1) / chunk in
      Par.Pool.run pool
        (Array.init n_tasks (fun ti _slot ->
             for i = ti * chunk to min n ((ti + 1) * chunk) - 1 do
               fill procs.(i) result.(i)
             done))
    end;
    result

let imod_flat ?pool info = flat_union ?pool info lmod_stmt
let iuse_flat ?pool info = flat_union ?pool info luse_stmt

(* The nesting fold is a short bottom-up pass over the declaration
   tree; it stays sequential (its unions are ordered along tree
   paths). *)
let imod ?pool info = Ir.Info.fold_up_nesting info (imod_flat ?pool info)
let iuse ?pool info = Ir.Info.fold_up_nesting info (iuse_flat ?pool info)
