type t = {
  procs : Loc.t array;
  vars : Loc.t array;
  sites : Loc.t array;
  loops : Loc.t array array;
  stmts : Loc.t array array;
}

let count_loops body =
  let n = ref 0 in
  Ir.Stmt.iter
    (fun s ->
      match s with
      | Ir.Stmt.For _ -> incr n
      | Ir.Stmt.Assign _ | Ir.Stmt.If _ | Ir.Stmt.While _ | Ir.Stmt.Call _
      | Ir.Stmt.Read _ | Ir.Stmt.Write _ ->
        ())
    body;
  !n

let dummy prog =
  {
    procs = Array.make (Ir.Prog.n_procs prog) Loc.dummy;
    vars = Array.make (Ir.Prog.n_vars prog) Loc.dummy;
    sites = Array.make (Ir.Prog.n_sites prog) Loc.dummy;
    loops =
      Array.init (Ir.Prog.n_procs prog) (fun pid ->
          Array.make (count_loops (Ir.Prog.proc prog pid).Ir.Prog.body) Loc.dummy);
    stmts =
      Array.init (Ir.Prog.n_procs prog) (fun pid ->
          Array.make (Ir.Stmt.count (Ir.Prog.proc prog pid).Ir.Prog.body) Loc.dummy);
  }

let proc t pid = t.procs.(pid)
let var t vid = t.vars.(vid)
let site t sid = t.sites.(sid)

let loop t ~proc ordinal =
  let row = t.loops.(proc) in
  if ordinal >= 0 && ordinal < Array.length row then row.(ordinal) else Loc.dummy

let stmt t ~proc ordinal =
  let row = t.stmts.(proc) in
  if ordinal >= 0 && ordinal < Array.length row then row.(ordinal) else Loc.dummy
