(** Tokens of the MiniProc lexical grammar. *)

type t =
  | IDENT of string
  | INT of int
  (* Keywords. *)
  | PROGRAM
  | PROCEDURE
  | VAR
  | BEGIN
  | END
  | IF
  | THEN
  | ELSE
  | WHILE
  | DO
  | FOR
  | TO
  | CALL
  | READ
  | WRITE
  | SKIP
  | TINT
  | TBOOL
  | ARRAY
  | OF
  | PTR
  | NEW
  | AND
  | OR
  | NOT
  | TRUE
  | FALSE
  (* Punctuation and operators. *)
  | SEMI
  | COLON
  | COMMA
  | DOT
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | ASSIGN  (** [:=] *)
  | PLUS
  | MINUS
  | STAR
  | AMP
  | SLASH
  | PERCENT
  | LT
  | LE
  | GT
  | GE
  | EQEQ
  | NE
  | EOF

val pp : Format.formatter -> t -> unit
(** Prints the token's concrete spelling (identifiers and literals show
    their payload). *)

val to_string : t -> string

val keyword_of_string : string -> t option
(** Recognise a keyword; [None] for plain identifiers.  Keywords are
    case-sensitive and lower-case. *)
