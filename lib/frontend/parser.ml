exception Error of Loc.t * string

type state = {
  mutable toks : (Token.t * Loc.t) list;
}

let error loc fmt = Format.kasprintf (fun msg -> raise (Error (loc, msg))) fmt

let peek st =
  match st.toks with
  | [] -> assert false (* tokenize always ends with EOF *)
  | (t, l) :: _ -> (t, l)

let advance st =
  match st.toks with
  | [] -> assert false
  | _ :: rest -> st.toks <- rest

let next st =
  let t, l = peek st in
  advance st;
  (t, l)

let expect st tok what =
  let t, l = next st in
  if t <> tok then error l "expected %s, found '%a'" what Token.pp t;
  l

let expect_ident st what : Ast.ident =
  let t, l = next st in
  match t with
  | Token.IDENT name -> { Ast.name; loc = l }
  | _ -> error l "expected %s, found '%a'" what Token.pp t

let expect_int st what =
  let t, l = next st in
  match t with
  | Token.INT n -> n
  | _ -> error l "expected %s, found '%a'" what Token.pp t

(* --- types --- *)

let rec parse_type st : Ast.ty =
  let t, l = next st in
  match t with
  | Token.TINT -> Ast.Ty_int
  | Token.TBOOL -> Ast.Ty_bool
  | Token.PTR ->
    let _ = expect st Token.OF "'of'" in
    Ast.Ty_ptr (parse_type st)
  | Token.ARRAY ->
    let _ = expect st Token.LBRACKET "'['" in
    let rec dims acc =
      let d = expect_int st "array extent" in
      match peek st with
      | Token.COMMA, _ ->
        advance st;
        dims (d :: acc)
      | _ -> List.rev (d :: acc)
    in
    let ds = dims [] in
    let _ = expect st Token.RBRACKET "']'" in
    let _ = expect st Token.OF "'of'" in
    let _ = expect st Token.TINT "'int'" in
    Ast.Ty_array ds
  | _ -> error l "expected a type, found '%a'" Token.pp t

(* --- expressions --- *)

let rec parse_expr_or st : Ast.expr =
  let rec loop lhs =
    match peek st with
    | Token.OR, _ ->
      advance st;
      loop (Ast.Binop (Ir.Expr.Or, lhs, parse_expr_and st))
    | _ -> lhs
  in
  loop (parse_expr_and st)

and parse_expr_and st =
  let rec loop lhs =
    match peek st with
    | Token.AND, _ ->
      advance st;
      loop (Ast.Binop (Ir.Expr.And, lhs, parse_expr_cmp st))
    | _ -> lhs
  in
  loop (parse_expr_cmp st)

and parse_expr_cmp st =
  let op_of = function
    | Token.LT -> Some Ir.Expr.Lt
    | Token.LE -> Some Ir.Expr.Le
    | Token.GT -> Some Ir.Expr.Gt
    | Token.GE -> Some Ir.Expr.Ge
    | Token.EQEQ -> Some Ir.Expr.Eq
    | Token.NE -> Some Ir.Expr.Ne
    | _ -> None
  in
  let rec loop lhs =
    match op_of (fst (peek st)) with
    | Some op ->
      advance st;
      loop (Ast.Binop (op, lhs, parse_expr_add st))
    | None -> lhs
  in
  loop (parse_expr_add st)

and parse_expr_add st =
  let op_of = function
    | Token.PLUS -> Some Ir.Expr.Add
    | Token.MINUS -> Some Ir.Expr.Sub
    | _ -> None
  in
  let rec loop lhs =
    match op_of (fst (peek st)) with
    | Some op ->
      advance st;
      loop (Ast.Binop (op, lhs, parse_expr_mul st))
    | None -> lhs
  in
  loop (parse_expr_mul st)

and parse_expr_mul st =
  let op_of = function
    | Token.STAR -> Some Ir.Expr.Mul
    | Token.SLASH -> Some Ir.Expr.Div
    | Token.PERCENT -> Some Ir.Expr.Mod
    | _ -> None
  in
  let rec loop lhs =
    match op_of (fst (peek st)) with
    | Some op ->
      advance st;
      loop (Ast.Binop (op, lhs, parse_expr_unary st))
    | None -> lhs
  in
  loop (parse_expr_unary st)

and parse_expr_unary st =
  match peek st with
  | Token.MINUS, _ ->
    advance st;
    Ast.Unop (Ir.Expr.Neg, parse_expr_unary st)
  | Token.NOT, _ ->
    advance st;
    Ast.Unop (Ir.Expr.Not, parse_expr_unary st)
  | Token.STAR, _ ->
    let d = parse_stars st in
    let id = expect_ident st "a pointer variable" in
    Ast.Deref (d, id)
  | Token.AMP, _ ->
    advance st;
    let id = expect_ident st "a variable" in
    Ast.Addr id
  | _ -> parse_expr_atom st

(* Consecutive ['*'] tokens of a dereference. *)
and parse_stars st =
  match peek st with
  | Token.STAR, _ ->
    advance st;
    1 + parse_stars st
  | _ -> 0

and parse_expr_atom st =
  let t, l = next st in
  match t with
  | Token.INT n -> Ast.Int (n, l)
  | Token.TRUE -> Ast.Bool (true, l)
  | Token.FALSE -> Ast.Bool (false, l)
  | Token.IDENT name -> (
    let id = { Ast.name; loc = l } in
    match peek st with
    | Token.LBRACKET, _ ->
      advance st;
      let idx = parse_expr_list st in
      let _ = expect st Token.RBRACKET "']'" in
      Ast.Index (id, idx)
    | _ -> Ast.Name id)
  | Token.LPAREN ->
    let e = parse_expr_or st in
    let _ = expect st Token.RPAREN "')'" in
    e
  | Token.NEW ->
    let ty = parse_type st in
    Ast.New (ty, l)
  | _ -> error l "expected an expression, found '%a'" Token.pp t

and parse_expr_list st =
  let rec loop acc =
    let e = parse_expr_or st in
    match peek st with
    | Token.COMMA, _ ->
      advance st;
      loop (e :: acc)
    | _ -> List.rev (e :: acc)
  in
  loop []

let parse_lvalue st what : Ast.lvalue =
  match peek st with
  | Token.STAR, _ ->
    let d = parse_stars st in
    let id = expect_ident st "a pointer variable" in
    Ast.Lderef (d, id)
  | _ -> (
    let id = expect_ident st what in
    match peek st with
    | Token.LBRACKET, _ ->
      advance st;
      let idx = parse_expr_list st in
      let _ = expect st Token.RBRACKET "']'" in
      Ast.Lindex (id, idx)
    | _ -> Ast.Lname id)

(* --- statements --- *)

let starts_stmt = function
  | Token.IDENT _ | Token.STAR | Token.IF | Token.WHILE | Token.FOR | Token.CALL
  | Token.READ | Token.WRITE | Token.SKIP ->
    true
  | _ -> false

let rec parse_stmts st : Ast.stmt list =
  let rec loop acc =
    if starts_stmt (fst (peek st)) then loop (parse_stmt st :: acc) else List.rev acc
  in
  loop []

and parse_stmt st : Ast.stmt =
  let t, l = peek st in
  match t with
  | Token.SKIP ->
    advance st;
    let _ = expect st Token.SEMI "';'" in
    Ast.Skip
  | Token.IDENT _ | Token.STAR ->
    let lv = parse_lvalue st "a variable" in
    let _ = expect st Token.ASSIGN "':='" in
    let e = parse_expr_or st in
    let _ = expect st Token.SEMI "';'" in
    Ast.Assign (lv, e)
  | Token.IF ->
    advance st;
    let cond = parse_expr_or st in
    let _ = expect st Token.THEN "'then'" in
    let then_ = parse_stmts st in
    let else_ =
      match peek st with
      | Token.ELSE, _ ->
        advance st;
        parse_stmts st
      | _ -> []
    in
    let _ = expect st Token.END "'end'" in
    let _ = expect st Token.SEMI "';'" in
    Ast.If (cond, then_, else_)
  | Token.WHILE ->
    advance st;
    let cond = parse_expr_or st in
    let _ = expect st Token.DO "'do'" in
    let body = parse_stmts st in
    let _ = expect st Token.END "'end'" in
    let _ = expect st Token.SEMI "';'" in
    Ast.While (cond, body)
  | Token.FOR ->
    advance st;
    let v = expect_ident st "loop variable" in
    let _ = expect st Token.ASSIGN "':='" in
    let lo = parse_expr_or st in
    let _ = expect st Token.TO "'to'" in
    let hi = parse_expr_or st in
    let _ = expect st Token.DO "'do'" in
    let body = parse_stmts st in
    let _ = expect st Token.END "'end'" in
    let _ = expect st Token.SEMI "';'" in
    Ast.For (v, lo, hi, body)
  | Token.CALL ->
    advance st;
    let callee = expect_ident st "procedure name" in
    let _ = expect st Token.LPAREN "'('" in
    let args =
      match peek st with
      | Token.RPAREN, _ -> []
      | _ -> parse_expr_list st
    in
    let _ = expect st Token.RPAREN "')'" in
    let _ = expect st Token.SEMI "';'" in
    Ast.Call (callee, args)
  | Token.READ ->
    advance st;
    let lv = parse_lvalue st "a variable" in
    let _ = expect st Token.SEMI "';'" in
    Ast.Read lv
  | Token.WRITE ->
    advance st;
    let e = parse_expr_or st in
    let _ = expect st Token.SEMI "';'" in
    Ast.Write e
  | _ -> error l "expected a statement, found '%a'" Token.pp t

(* --- declarations --- *)

let parse_ident_list st what =
  let rec loop acc =
    let id = expect_ident st what in
    match peek st with
    | Token.COMMA, _ ->
      advance st;
      loop (id :: acc)
    | _ -> List.rev (id :: acc)
  in
  loop []

let parse_var_decls st : Ast.decl list =
  let rec loop acc =
    match peek st with
    | Token.VAR, _ ->
      advance st;
      let names = parse_ident_list st "variable name" in
      let _ = expect st Token.COLON "':'" in
      let ty = parse_type st in
      let _ = expect st Token.SEMI "';'" in
      loop ({ Ast.d_names = names; d_ty = ty } :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_param st : Ast.param =
  let mode =
    match peek st with
    | Token.VAR, _ ->
      advance st;
      Ir.Prog.By_ref
    | _ -> Ir.Prog.By_value
  in
  let name = expect_ident st "parameter name" in
  let _ = expect st Token.COLON "':'" in
  let ty = parse_type st in
  { Ast.p_mode = mode; p_name = name; p_ty = ty }

let parse_params st =
  match peek st with
  | Token.RPAREN, _ -> []
  | _ ->
    let rec loop acc =
      let p = parse_param st in
      match peek st with
      | Token.SEMI, _ ->
        advance st;
        loop (p :: acc)
      | _ -> List.rev (p :: acc)
    in
    loop []

let rec parse_proc st : Ast.proc =
  let _ = expect st Token.PROCEDURE "'procedure'" in
  let name = expect_ident st "procedure name" in
  let _ = expect st Token.LPAREN "'('" in
  let params = parse_params st in
  let _ = expect st Token.RPAREN "')'" in
  let _ = expect st Token.SEMI "';'" in
  let decls = parse_var_decls st in
  let procs = parse_procs st in
  let _ = expect st Token.BEGIN "'begin'" in
  let body = parse_stmts st in
  let _ = expect st Token.END "'end'" in
  let _ = expect st Token.SEMI "';'" in
  { Ast.proc_name = name; params; decls; procs; body }

and parse_procs st =
  let rec loop acc =
    match peek st with
    | Token.PROCEDURE, _ -> loop (parse_proc st :: acc)
    | _ -> List.rev acc
  in
  loop []

let parse_program st : Ast.program =
  let _ = expect st Token.PROGRAM "'program'" in
  let name = expect_ident st "program name" in
  let _ = expect st Token.SEMI "';'" in
  let globals = parse_var_decls st in
  let top_procs = parse_procs st in
  let _ = expect st Token.BEGIN "'begin'" in
  let main_body = parse_stmts st in
  let _ = expect st Token.END "'end'" in
  let _ = expect st Token.DOT "'.'" in
  let _ = expect st Token.EOF "end of input" in
  { Ast.prog_name = name; globals; top_procs; main_body }

(* --- entry points --- *)

let with_tokens ?file src k =
  try
    let toks = Lexer.tokenize ?file src in
    Ok (k { toks })
  with
  | Lexer.Error (l, msg) -> Result.Error (l, msg)
  | Error (l, msg) -> Result.Error (l, msg)

let parse ?file src = with_tokens ?file src parse_program

let parse_exn ?file src =
  match parse ?file src with
  | Ok p -> p
  | Result.Error (l, msg) -> raise (Error (l, msg))

let parse_expr ?file src =
  with_tokens ?file src (fun st ->
      let e = parse_expr_or st in
      let _ = expect st Token.EOF "end of input" in
      e)
