(** The server's program registry: named programs, compiled once,
    analysed lazily.

    [load] compiles immediately (so clients learn about bad sources in
    the load response) but defers the batch {!Core.Analyze.run} until
    the first query touches the program — a server pre-loading a corpus
    pays analysis cost only for programs actually queried.  The base
    analysis runs with provenance so [explain] works out of the box,
    and the base lint findings are cached for [lint-delta] queries.

    The registry itself is only mutated by serial requests
    ([load]/[unload] — the server never runs those inside a pool
    batch); concurrent query tasks on {e distinct} entries may force
    distinct lazies safely. *)

type entry = {
  name : string;
  source : string;
  prog : Ir.Prog.t;
  locs : Frontend.Locs.t;
  analysis : Core.Analyze.t Lazy.t;
  base_lint : Lint.Diagnostic.t list Lazy.t;
      (** Findings of the base program at dummy positions — the
          [lint-delta] baseline ({!Incremental.Engine.lint} uses dummy
          positions too, so deltas match on equal keys). *)
}

type t

val create : unit -> t

val load : t -> name:string -> source:string -> (entry, string) result
(** Compile and register (replacing any previous program of that
    name).  Compilation errors come back as one [Error] string. *)

val unload : t -> string -> (unit, string) result
(** [Error] when no such program is loaded. *)

val find : t -> string -> entry option

val entries : t -> entry list
(** Loaded entries, sorted by name. *)
