type entry = {
  name : string;
  source : string;
  prog : Ir.Prog.t;
  locs : Frontend.Locs.t;
  analysis : Core.Analyze.t Lazy.t;
  base_lint : Lint.Diagnostic.t list Lazy.t;
}

type t = { programs : (string, entry) Hashtbl.t }

let create () = { programs = Hashtbl.create 16 }

let load t ~name ~source =
  if name = "" then Error "program name must be non-empty"
  else
    match Frontend.Sema.compile_with_locs ~file:name source with
    | Error errs ->
      Error
        (Format.asprintf "@[<h>%a@]"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
              Frontend.Sema.pp_error)
           errs)
    | Ok (prog, locs) ->
      let analysis = lazy (Core.Analyze.run ~provenance:true prog) in
      let base_lint =
        lazy (Lint.Engine.run (Lazy.force analysis))
      in
      let entry = { name; source; prog; locs; analysis; base_lint } in
      Hashtbl.replace t.programs name entry;
      Ok entry

let unload t name =
  if Hashtbl.mem t.programs name then begin
    Hashtbl.remove t.programs name;
    Ok ()
  end
  else Error (Printf.sprintf "unknown program '%s'" name)

let find t name = Hashtbl.find_opt t.programs name

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.programs []
  |> List.sort (fun a b -> compare a.name b.name)
