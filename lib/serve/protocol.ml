module Json = Obs.Json

type query =
  | Gmod of { proc : string }
  | Guse of { proc : string }
  | Rmod of { proc : string; var : string }
  | Ruse of { proc : string; var : string }
  | Must of { proc : string }
  | Alias of { proc : string }
  | Purity of { proc : string }
  | Mod_site of { site : int }
  | Use_site of { site : int }
  | Lint_delta
  | Source

type request =
  | Load of { program : string; source : string }
  | Unload of { program : string }
  | Query of { program : string; session : string; query : query }
  | Edit of { program : string; session : string; script : string; lint : bool }
  | Explain of {
      program : string;
      session : string;
      fact : string option;
      all : bool;
    }
  | Stats
  | Shutdown

type incoming = { id : Json.t; request : (request, string) result }

let ( let* ) = Result.bind

let str_field obj name =
  match Json.member name obj with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field '%s' must be a string" name)
  | None -> Error (Printf.sprintf "missing field '%s'" name)

let opt_str_field obj name ~default =
  match Json.member name obj with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field '%s' must be a string" name)
  | None -> Ok default

let opt_bool_field obj name ~default =
  match Json.member name obj with
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field '%s' must be a boolean" name)
  | None -> Ok default

let int_field obj name =
  match Json.member name obj with
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field '%s' must be an integer" name)
  | None -> Error (Printf.sprintf "missing field '%s'" name)

let parse_query obj =
  let* what = str_field obj "what" in
  let proc () = str_field obj "proc" in
  match what with
  | "gmod" ->
    let* proc = proc () in
    Ok (Gmod { proc })
  | "guse" ->
    let* proc = proc () in
    Ok (Guse { proc })
  | "rmod" ->
    let* proc = proc () in
    let* var = str_field obj "var" in
    Ok (Rmod { proc; var })
  | "ruse" ->
    let* proc = proc () in
    let* var = str_field obj "var" in
    Ok (Ruse { proc; var })
  | "must" ->
    let* proc = proc () in
    Ok (Must { proc })
  | "alias" ->
    let* proc = proc () in
    Ok (Alias { proc })
  | "purity" ->
    let* proc = proc () in
    Ok (Purity { proc })
  | "mod" ->
    let* site = int_field obj "site" in
    Ok (Mod_site { site })
  | "use" ->
    let* site = int_field obj "site" in
    Ok (Use_site { site })
  | "lint-delta" -> Ok Lint_delta
  | "source" -> Ok Source
  | w ->
    Error
      (Printf.sprintf
         "unknown query '%s' (expected gmod | guse | rmod | ruse | must | \
          alias | purity | mod | use | lint-delta | source)"
         w)

let parse_obj obj =
  let* op = str_field obj "op" in
  match op with
  | "load" ->
    let* program = str_field obj "program" in
    let* source = str_field obj "source" in
    Ok (Load { program; source })
  | "unload" ->
    let* program = str_field obj "program" in
    Ok (Unload { program })
  | "query" ->
    let* program = str_field obj "program" in
    let* session = opt_str_field obj "session" ~default:"" in
    let* query = parse_query obj in
    Ok (Query { program; session; query })
  | "edit" ->
    let* program = str_field obj "program" in
    let* session = opt_str_field obj "session" ~default:"" in
    let* script = str_field obj "script" in
    let* lint = opt_bool_field obj "lint" ~default:false in
    Ok (Edit { program; session; script; lint })
  | "explain" ->
    let* program = str_field obj "program" in
    let* session = opt_str_field obj "session" ~default:"" in
    let* all = opt_bool_field obj "all" ~default:false in
    let* fact =
      match Json.member "fact" obj with
      | Some (Json.String s) -> Ok (Some s)
      | Some _ -> Error "field 'fact' must be a string"
      | None -> Ok None
    in
    if (fact = None) = not all then
      Error "explain: give exactly one of 'fact' or 'all': true"
    else Ok (Explain { program; session; fact; all })
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | op ->
    Error
      (Printf.sprintf
         "unknown op '%s' (expected load | unload | query | edit | explain | \
          stats | shutdown)"
         op)

let parse line =
  match Json.parse line with
  | Error msg -> { id = Json.Null; request = Error ("bad JSON: " ^ msg) }
  | Ok (Json.Obj _ as obj) ->
    let id = Option.value ~default:Json.Null (Json.member "id" obj) in
    { id; request = parse_obj obj }
  | Ok _ -> { id = Json.Null; request = Error "request must be a JSON object" }

let query_fields = function
  | Gmod { proc } -> [ ("what", Json.String "gmod"); ("proc", Json.String proc) ]
  | Guse { proc } -> [ ("what", Json.String "guse"); ("proc", Json.String proc) ]
  | Rmod { proc; var } ->
    [
      ("what", Json.String "rmod");
      ("proc", Json.String proc);
      ("var", Json.String var);
    ]
  | Ruse { proc; var } ->
    [
      ("what", Json.String "ruse");
      ("proc", Json.String proc);
      ("var", Json.String var);
    ]
  | Must { proc } -> [ ("what", Json.String "must"); ("proc", Json.String proc) ]
  | Alias { proc } ->
    [ ("what", Json.String "alias"); ("proc", Json.String proc) ]
  | Purity { proc } ->
    [ ("what", Json.String "purity"); ("proc", Json.String proc) ]
  | Mod_site { site } -> [ ("what", Json.String "mod"); ("site", Json.Int site) ]
  | Use_site { site } -> [ ("what", Json.String "use"); ("site", Json.Int site) ]
  | Lint_delta -> [ ("what", Json.String "lint-delta") ]
  | Source -> [ ("what", Json.String "source") ]

let session_field session =
  if session = "" then [] else [ ("session", Json.String session) ]

let to_json ?(id = Json.Null) request =
  let id_field = match id with Json.Null -> [] | v -> [ ("id", v) ] in
  let fields =
    match request with
    | Load { program; source } ->
      [
        ("op", Json.String "load");
        ("program", Json.String program);
        ("source", Json.String source);
      ]
    | Unload { program } ->
      [ ("op", Json.String "unload"); ("program", Json.String program) ]
    | Query { program; session; query } ->
      [ ("op", Json.String "query"); ("program", Json.String program) ]
      @ session_field session @ query_fields query
    | Edit { program; session; script; lint } ->
      [ ("op", Json.String "edit"); ("program", Json.String program) ]
      @ session_field session
      @ [ ("script", Json.String script) ]
      @ (if lint then [ ("lint", Json.Bool true) ] else [])
    | Explain { program; session; fact; all } ->
      [ ("op", Json.String "explain"); ("program", Json.String program) ]
      @ session_field session
      @ (match fact with
        | Some f -> [ ("fact", Json.String f) ]
        | None -> [])
      @ if all then [ ("all", Json.Bool true) ] else []
    | Stats -> [ ("op", Json.String "stats") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
  in
  Json.Obj (id_field @ fields)

let to_line ?id request = Json.to_string (to_json ?id request)

let ok_response ~id result =
  Json.to_string
    (Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ])

let error_response ~id msg =
  Json.to_string
    (Json.Obj [ ("id", id); ("ok", Json.Bool false); ("error", Json.String msg) ])

let op_class = function
  | Error _ -> "invalid"
  | Ok (Load _) -> "load"
  | Ok (Unload _) -> "unload"
  | Ok (Query { query; _ }) ->
    let what =
      match query with
      | Gmod _ -> "gmod"
      | Guse _ -> "guse"
      | Rmod _ -> "rmod"
      | Ruse _ -> "ruse"
      | Must _ -> "must"
      | Alias _ -> "alias"
      | Purity _ -> "purity"
      | Mod_site _ -> "mod"
      | Use_site _ -> "use"
      | Lint_delta -> "lint-delta"
      | Source -> "source"
    in
    "query." ^ what
  | Ok (Edit _) -> "edit"
  | Ok (Explain _) -> "explain"
  | Ok Stats -> "stats"
  | Ok Shutdown -> "shutdown"
