type row = string * string list * string list

let set_names prog set =
  List.map (Ir.Pp.qualified_var_name prog) (Bitvec.to_list set)
  |> List.sort_uniq compare

type snapshot = {
  smod : (string, string list) Hashtbl.t;
  suse : (string, string list) Hashtbl.t;
}

let capture (t : Core.Analyze.t) sets =
  let table = Hashtbl.create 16 in
  Ir.Prog.iter_procs t.Core.Analyze.prog (fun p ->
      Hashtbl.replace table p.Ir.Prog.pname
        (set_names t.Core.Analyze.prog sets.(p.Ir.Prog.pid)));
  table

let snapshot (t : Core.Analyze.t) =
  {
    smod = capture t t.Core.Analyze.gmod;
    suse = capture t t.Core.Analyze.guse;
  }

let diff before after =
  let added = List.filter (fun v -> not (List.mem v before)) after in
  let removed = List.filter (fun v -> not (List.mem v after)) before in
  (added, removed)

let rows snap (ta : Core.Analyze.t) ~side =
  let before, project =
    match side with
    | `Mod -> (snap.smod, ta.Core.Analyze.gmod)
    | `Use -> (snap.suse, ta.Core.Analyze.guse)
  in
  let rows = ref [] in
  Ir.Prog.iter_procs ta.Core.Analyze.prog (fun p ->
      let after = set_names ta.Core.Analyze.prog project.(p.Ir.Prog.pid) in
      let old =
        Option.value ~default:[] (Hashtbl.find_opt before p.Ir.Prog.pname)
      in
      let added, removed = diff old after in
      if added <> [] || removed <> [] then
        rows := (p.Ir.Prog.pname, added, removed) :: !rows);
  Hashtbl.iter
    (fun name old ->
      if Ir.Prog.find_proc ta.Core.Analyze.prog name = None && old <> [] then
        rows := (name, [], old) :: !rows)
    before;
  List.sort compare !rows

let pp_rows ~title ppf rows =
  Format.fprintf ppf "== %s delta ==@." title;
  if rows = [] then Format.fprintf ppf "  (none)@."
  else
    List.iter
      (fun (name, added, removed) ->
        Format.fprintf ppf "  %-12s" name;
        if added <> [] then Format.fprintf ppf " +{%s}" (String.concat "," added);
        if removed <> [] then
          Format.fprintf ppf " -{%s}" (String.concat "," removed);
        Format.fprintf ppf "@.")
      rows

let rows_json rows =
  Obs.Json.List
    (List.map
       (fun (name, added, removed) ->
         Obs.Json.Obj
           [
             ("proc", Obs.Json.String name);
             ( "added",
               Obs.Json.List (List.map (fun s -> Obs.Json.String s) added) );
             ( "removed",
               Obs.Json.List (List.map (fun s -> Obs.Json.String s) removed) );
           ])
       rows)

let lint_fields = function
  | None -> []
  | Some (added, removed) ->
    [
      ("lint_added", Obs.Json.List (List.map Lint.Diagnostic.to_json added));
      ("lint_removed", Obs.Json.List (List.map Lint.Diagnostic.to_json removed));
    ]
