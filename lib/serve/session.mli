(** One client's editing session on one loaded program.

    A session is created on the client's first [edit] (queries without
    a session read the registry's shared base analysis directly) and
    wraps an {!Incremental.Engine.t} adopted from the base via
    {!Incremental.Engine.of_analysis} — re-entry costs the engine
    caches, not a re-analysis.  Sessions are keyed by
    [(client, program, session-name)] in the server; distinct keys
    never share an engine, which is what makes concurrent sessions on
    distinct programs safe to run in one pool batch. *)

type t = {
  program : string;  (** Registry name this session edits. *)
  name : string;  (** Session name ([""] is the client default). *)
  engine : Incremental.Engine.t;
}

val create : Registry.entry -> name:string -> t
(** Forces the entry's base analysis (first session on a program pays
    the batch run if no query did yet) and adopts it. *)

val analysis : t -> Core.Analyze.t
val edits : t -> int
