(** The one delta encoder both query surfaces share.

    [sidefx edit] and the server's [edit] response must report the same
    GMOD/GUSE and lint deltas — two formatters would drift (the exact
    bug class the json-validate contract exists to catch), so the CLI's
    table/JSON rendering lives here and the server reuses the JSON
    half.

    Rows are keyed by {e name}, not id: procedure and variable ids are
    renumbered by [remove-proc], so a delta between two program
    versions only reads stably in names.  A {!snapshot} captures the
    name-keyed per-procedure sets of the pre-edit analysis, which is
    what lets a server session report deltas without retaining the
    whole pre-edit {!Core.Analyze.t} (the incremental engine replaces
    it in place). *)

type row = string * string list * string list
(** [(proc, added, removed)] — qualified variable names, sorted. *)

val set_names : Ir.Prog.t -> Bitvec.t -> string list
(** Qualified names of a variable set, sorted and deduplicated. *)

type snapshot
(** Name-keyed GMOD/GUSE sets of one analysis, captured before edits. *)

val snapshot : Core.Analyze.t -> snapshot

val rows : snapshot -> Core.Analyze.t -> side:[ `Mod | `Use ] -> row list
(** Per-procedure delta rows between the snapshot and an analysis:
    procedures present after with changed sets, plus one [(name, [],
    old)] row per vanished procedure whose set was non-empty.  Sorted;
    empty when nothing changed. *)

val pp_rows : title:string -> Format.formatter -> row list -> unit
(** The CLI table: [== TITLE delta ==] then one [  name +{..} -{..}]
    line per row, or [  (none)]. *)

val rows_json : row list -> Obs.Json.t
(** Stable key set per row: [proc], [added], [removed]. *)

val lint_fields :
  (Lint.Diagnostic.t list * Lint.Diagnostic.t list) option ->
  (string * Obs.Json.t) list
(** The [lint_added]/[lint_removed] JSON fields for an optional
    {!Lint.Engine.delta} result; [[]] when lint was not requested. *)
