module Json = Obs.Json

type conn = {
  send : string -> unit;
  recv : unit -> string;
  close : unit -> unit;
}

let in_process server =
  let next = ref 100_000 in
  fun () ->
    let id = !next in
    incr next;
    let pending = Queue.create () in
    {
      send =
        (fun line -> Queue.add (Server.handle_line server ~client:id line) pending);
      recv = (fun () -> Queue.pop pending);
      close = ignore;
    }

let write_all fd s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

let socket_conn ?(retries = 100) ~path () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec connect attempt =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when attempt < retries ->
      Unix.sleepf 0.05;
      connect (attempt + 1)
  in
  connect 0;
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 8192 in
  let rec recv_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
      String.sub s 0 i
    | None ->
      let k = Unix.read fd chunk 0 (Bytes.length chunk) in
      if k = 0 then failwith "server closed the connection"
      else begin
        Buffer.add_subbytes buf chunk 0 k;
        recv_line ()
      end
  in
  {
    send = (fun line -> write_all fd (line ^ "\n"));
    recv = recv_line;
    close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
  }

type class_stats = {
  cls : string;
  count : int;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  max_ns : int;
}

type report = {
  clients : int;
  requests : int;
  protocol_errors : int;
  error_samples : string list;
  edits_sent : int;
  edits_skipped : int;
  classes : class_stats list;
}

(* --- per-client scripts --- *)

(* A plan step: the request plus a response check beyond the generic
   envelope validation (None = fine, Some = protocol-error message). *)
type step = { req : Protocol.request; check : Json.t -> string option }

let no_check _ = None

(* Source responses must equal the client's own mirror, byte for byte
   — the strongest cheap statement of session tracking. *)
let source_check expected j =
  match Option.bind (Json.member "result" j) (Json.member "source") with
  | Some (Json.String s) when s = expected -> None
  | Some (Json.String _) -> Some "source mismatch with client mirror"
  | _ -> Some "source response missing 'source'"

let explain_all_check j =
  match Option.bind (Json.member "result" j) (Json.member "missing") with
  | Some (Json.Int 0) -> None
  | Some (Json.Int n) -> Some (Printf.sprintf "%d facts missing witnesses" n)
  | _ -> Some "explain response missing 'missing'"

let array_of_procs prog =
  let acc = ref [] in
  Ir.Prog.iter_procs prog (fun p -> acc := p.Ir.Prog.pname :: !acc);
  Array.of_list (List.rev !acc)

let byref_formals prog =
  let acc = ref [] in
  Ir.Prog.iter_vars prog (fun v ->
      match v.Ir.Prog.kind with
      | Ir.Prog.Formal { proc; mode = Ir.Prog.By_ref; _ } ->
        acc := ((Ir.Prog.proc prog proc).Ir.Prog.pname, v.Ir.Prog.vname) :: !acc
      | _ -> ());
  Array.of_list (List.rev !acc)

let gen_query rand ~program prog =
  let pick arr = arr.(Random.State.int rand (Array.length arr)) in
  let procs = array_of_procs prog in
  let formals = byref_formals prog in
  let proc () = pick procs in
  let query =
    match Random.State.int rand 9 with
    | 0 -> Protocol.Gmod { proc = proc () }
    | 1 -> Protocol.Guse { proc = proc () }
    | 2 when formals <> [||] ->
      let p, v = pick formals in
      Protocol.Rmod { proc = p; var = v }
    | 3 when formals <> [||] ->
      let p, v = pick formals in
      Protocol.Ruse { proc = p; var = v }
    | 4 -> Protocol.Alias { proc = proc () }
    | 5 -> Protocol.Purity { proc = proc () }
    | 6 when Ir.Prog.n_sites prog > 0 ->
      Protocol.Mod_site { site = Random.State.int rand (Ir.Prog.n_sites prog) }
    | 7 when Ir.Prog.n_sites prog > 0 ->
      Protocol.Use_site { site = Random.State.int rand (Ir.Prog.n_sites prog) }
    | _ -> Protocol.Lint_delta
  in
  { req = Protocol.Query { program; session = ""; query }; check = no_check }

(* Build one client's request plan against a local mirror.  Only edits
   the renderer can put on the wire advance the mirror, so mirror and
   server session stay in lock-step by construction. *)
let build_plan ~rand ~program ~edits ~queries ~explain_all base =
  let mirror = ref base in
  let skipped = ref 0 in
  let steps = ref [] in
  let push s = steps := s :: !steps in
  let per_round = max 1 (queries / max 1 edits) in
  for _ = 1 to edits do
    (match Workload.Edits.gen ~rand ~steps:1 !mirror with
    | [ (edit, prog') ] -> (
      match Incremental.Script.render !mirror edit with
      | Some line ->
        let lint = Random.State.int rand 8 = 0 in
        push
          {
            req = Protocol.Edit { program; session = ""; script = line; lint };
            check = no_check;
          };
        mirror := prog'
      | None -> incr skipped)
    | _ | (exception _) -> incr skipped);
    for _ = 1 to per_round do
      push (gen_query rand ~program !mirror)
    done
  done;
  (* End every script by pinning the mirror: the server's session
     program must match ours byte for byte. *)
  push
    {
      req = Protocol.Query { program; session = ""; query = Protocol.Source };
      check = source_check (Ir.Pp.to_string !mirror);
    };
  if explain_all then
    push
      {
        req =
          Protocol.Explain { program; session = ""; fact = None; all = true };
        check = explain_all_check;
      };
  (List.rev !steps, !skipped)

(* --- run --- *)

let validate ~expect_id line =
  match Json.parse line with
  | Error m -> Error ("unparseable response: " ^ m)
  | Ok j -> (
    match (Json.member "id" j, Json.member "ok" j) with
    | Some id, Some (Json.Bool true) ->
      if id = expect_id then Ok j else Error "id echo mismatch"
    | _, Some (Json.Bool false) ->
      let e =
        match Json.member "error" j with
        | Some (Json.String m) -> m
        | _ -> "(no error message)"
      in
      Error ("server error: " ^ e)
    | _ -> Error "response not a {id, ok, ...} object")

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1)))

let run ?(concurrency = 32) ?(edits_per_client = 2) ?(queries_per_client = 8)
    ~clients ~seed ~programs ~connect () =
  let compiled =
    List.map
      (fun (name, source) ->
        match Frontend.Sema.compile ~file:name source with
        | Ok prog -> (name, prog)
        | Error _ -> invalid_arg ("Loadgen.run: program does not compile: " ^ name))
      programs
  in
  let bases = Array.of_list compiled in
  if bases = [||] then invalid_arg "Loadgen.run: no programs";
  let requests = ref 0 in
  let proto_errors = ref 0 in
  let error_samples = ref [] in
  let edits_sent = ref 0 in
  let edits_skipped = ref 0 in
  let samples : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let next_id = ref 0 in
  let note_error cls msg =
    incr proto_errors;
    if List.length !error_samples < 8 then
      error_samples := !error_samples @ [ cls ^ ": " ^ msg ]
  in
  let record cls ns =
    incr requests;
    match Hashtbl.find_opt samples cls with
    | Some cell -> cell := ns :: !cell
    | None -> Hashtbl.add samples cls (ref [ ns ])
  in
  let request_on conn step k =
    incr next_id;
    let id = Json.Int !next_id in
    let cls = Protocol.op_class (Ok step.req) in
    let t0 = Unix.gettimeofday () in
    conn.send (Protocol.to_line ~id step.req);
    k (fun () ->
        match conn.recv () with
        | line -> (
          record cls (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
          match validate ~expect_id:id line with
          | Error m -> note_error cls m
          | Ok j -> (
            match step.check j with
            | Some m -> note_error cls m
            | None -> ()))
        | exception e ->
          record cls (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9));
          note_error cls ("recv failed: " ^ Printexc.to_string e))
  in
  (* Load the corpus through one setup connection. *)
  let setup = connect () in
  List.iter
    (fun (name, source) ->
      request_on setup
        { req = Protocol.Load { program = name; source }; check = no_check }
        (fun recv -> recv ()))
    programs;
  setup.close ();
  (* Waves of concurrently-open clients: send phase, then recv phase,
     so the server sees the wave's requests as concurrent batches. *)
  let wave_start = ref 0 in
  while !wave_start < clients do
    let wave = min concurrency (clients - !wave_start) in
    let members =
      Array.init wave (fun w ->
          let c = !wave_start + w in
          let name, base = bases.(c mod Array.length bases) in
          let rand = Random.State.make [| seed; c; 0x10ad |] in
          let plan, skipped =
            build_plan ~rand ~program:name ~edits:edits_per_client
              ~queries:queries_per_client ~explain_all:(c mod 32 = 0) base
          in
          edits_skipped := !edits_skipped + skipped;
          edits_sent :=
            !edits_sent
            + List.length
                (List.filter
                   (fun s ->
                     match s.req with Protocol.Edit _ -> true | _ -> false)
                   plan);
          (connect (), ref plan))
    in
    let live = ref true in
    while !live do
      live := false;
      let receivers = ref [] in
      Array.iter
        (fun (conn, plan) ->
          match !plan with
          | [] -> ()
          | step :: rest ->
            plan := rest;
            live := true;
            request_on conn step (fun recv -> receivers := recv :: !receivers))
        members;
      List.iter (fun recv -> recv ()) (List.rev !receivers)
    done;
    Array.iter (fun (conn, _) -> conn.close ()) members;
    wave_start := !wave_start + wave
  done;
  let classes =
    Hashtbl.fold (fun cls cell acc -> (cls, !cell) :: acc) samples []
    |> List.sort compare
    |> List.map (fun (cls, lst) ->
           let sorted = Array.of_list lst in
           Array.sort compare sorted;
           {
             cls;
             count = Array.length sorted;
             p50_ns = percentile sorted 0.50;
             p95_ns = percentile sorted 0.95;
             p99_ns = percentile sorted 0.99;
             max_ns = sorted.(Array.length sorted - 1);
           })
  in
  {
    clients;
    requests = !requests;
    protocol_errors = !proto_errors;
    error_samples = !error_samples;
    edits_sent = !edits_sent;
    edits_skipped = !edits_skipped;
    classes;
  }

let report_json r =
  Json.Obj
    [
      ("clients", Json.Int r.clients);
      ("requests", Json.Int r.requests);
      ("protocol_errors", Json.Int r.protocol_errors);
      ( "error_samples",
        Json.List (List.map (fun s -> Json.String s) r.error_samples) );
      ("edits_sent", Json.Int r.edits_sent);
      ("edits_skipped", Json.Int r.edits_skipped);
      ( "classes",
        Json.List
          (List.map
             (fun c ->
               Json.Obj
                 [
                   ("class", Json.String c.cls);
                   ("count", Json.Int c.count);
                   ("p50_ns", Json.Int c.p50_ns);
                   ("p95_ns", Json.Int c.p95_ns);
                   ("p99_ns", Json.Int c.p99_ns);
                   ("max_ns", Json.Int c.max_ns);
                 ])
             r.classes) );
    ]
