type t = {
  program : string;
  name : string;
  engine : Incremental.Engine.t;
}

let create (entry : Registry.entry) ~name =
  {
    program = entry.Registry.name;
    name;
    engine = Incremental.Engine.of_analysis (Lazy.force entry.Registry.analysis);
  }

let analysis t = Incremental.Engine.analysis t.engine
let edits t = Incremental.Engine.edits_applied t.engine
