(** The analysis server: a {!Registry.t} of loaded programs, per-client
    {!Session.t} state machines, and the request executor behind both
    transports ([sidefx serve] stdio and the Unix-socket loop).

    {b Concurrency model.}  Requests are handled in {e batches} (one
    stdio line is a batch of one; one socket select round yields one
    batch).  Within a batch, maximal runs of program-scoped requests
    ([query]/[edit]/[explain]) are grouped by program name and the
    groups execute concurrently on the server's [Par.Pool] — distinct
    programs never share a session or an engine, and the base analyses
    are distinct lazies, so groups touch disjoint mutable state (the
    session table itself is mutex-guarded).  Registry-mutating and
    global requests ([load]/[unload]/[stats]/[shutdown], and malformed
    lines) are barriers: they run alone, in arrival order.  Responses
    always come back in arrival order, so per-client request order is
    preserved.

    {b Telemetry.}  Every request increments [serve.requests] and
    [serve.requests.<class>] ([class] per {!Protocol.op_class}),
    failures increment [serve.errors], latency lands in the
    [serve.<class>_s] histogram, and each execution runs under a
    [serve.<class>] span. *)

type t

val create : ?pool:Par.Pool.t -> unit -> t
(** The pool (optional) is used for batch fan-out and stays owned by
    the caller. *)

val registry : t -> Registry.t

val load_file : t -> name:string -> path:string -> (unit, string) result
(** Pre-load a program from disk (the [--load NAME=FILE] flag). *)

val stopping : t -> bool
(** True once a [shutdown] request has been executed. *)

val handle_line : t -> client:int -> string -> string
(** Execute one request line and return the one response line (no
    trailing newline).  Never raises: internal exceptions become
    structured error responses. *)

val handle_batch : t -> (int * string) list -> string list
(** Execute a batch of [(client, request-line)] pairs and return the
    response lines in arrival order (see the concurrency model
    above). *)

val drop_client : t -> int -> unit
(** Forget a disconnected client's sessions. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** The stdio transport: one request line in, one response line out
    (flushed), until EOF or [shutdown]. *)

val serve_socket : ?max_clients:int -> t -> path:string -> unit
(** The Unix-socket transport: accept clients at [path] (unlinked
    first, and on exit), read request lines from every ready
    connection into one batch per select round, write responses back,
    until [shutdown].  [max_clients] (default 512, bounded by the
    [select] FD limit) — connections beyond it are refused. *)
