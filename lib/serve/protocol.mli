(** The wire protocol: one JSON object per line, request in, response
    out, over stdio or a Unix socket (docs/serve.md has the full
    schema and a worked transcript).

    Every request is an object with an ["op"] field and an optional
    ["id"] echoed verbatim in the response; every response is
    [{"id": .., "ok": true, "result": ..}] or
    [{"id": .., "ok": false, "error": ".."}].  {!parse} never raises:
    hostile bytes come back as [Error] inside {!incoming}, and the
    server turns that into a structured error response — a malformed
    line can never kill the connection (protocol-fuzz suite in
    [test_serve.ml]). *)

type query =
  | Gmod of { proc : string }  (** Variables in GMOD(proc). *)
  | Guse of { proc : string }  (** Variables in GUSE(proc). *)
  | Rmod of { proc : string; var : string }  (** Is var in RMOD? *)
  | Ruse of { proc : string; var : string }  (** Is var in RUSE? *)
  | Must of { proc : string }
      (** MUSTMOD(proc), with its intra and demoted columns. *)
  | Alias of { proc : string }  (** §5 alias pairs of proc. *)
  | Purity of { proc : string }  (** {!Lint.Rule.pure_procs} verdict. *)
  | Mod_site of { site : int }  (** MOD(s) for one call site. *)
  | Use_site of { site : int }  (** USE(s) for one call site. *)
  | Lint_delta  (** Findings added/removed by the session's edits. *)
  | Source  (** The session's current program, pretty-printed. *)

type request =
  | Load of { program : string; source : string }
  | Unload of { program : string }
  | Query of { program : string; session : string; query : query }
  | Edit of { program : string; session : string; script : string; lint : bool }
  | Explain of {
      program : string;
      session : string;
      fact : string option;  (** [None] iff [all]. *)
      all : bool;
    }
  | Stats
  | Shutdown

type incoming = {
  id : Obs.Json.t;  (** The request's ["id"] field; [Null] if absent. *)
  request : (request, string) result;
}

val parse : string -> incoming
(** Parse one request line.  Total: malformed JSON, a non-object, an
    unknown op, or a missing/mistyped field yield [Error] with a
    message naming the problem (and still recover ["id"] when the line
    was an object). *)

val to_json : ?id:Obs.Json.t -> request -> Obs.Json.t
(** Encode a request (the client half; {!parse} is its inverse). *)

val to_line : ?id:Obs.Json.t -> request -> string

val ok_response : id:Obs.Json.t -> Obs.Json.t -> string
(** [{"id": id, "ok": true, "result": ..}], one line. *)

val error_response : id:Obs.Json.t -> string -> string
(** [{"id": id, "ok": false, "error": ..}], one line. *)

val op_class : (request, string) result -> string
(** The request-class label used for metrics and latency histograms:
    the op name ([query] refined to [query.gmod] etc.), or [invalid]. *)
