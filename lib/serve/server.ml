module Json = Obs.Json
module Engine = Incremental.Engine

type t = {
  registry : Registry.t;
  sessions : (int * string * string, Session.t) Hashtbl.t;
  sessions_mu : Mutex.t;
  pool : Par.Pool.t option;
  mutable stop : bool;
}

(* Lazy so that merely linking the server (every [sidefx] build) does
   not register serve metrics into unrelated commands' --json dumps —
   they exist once the first request is actually handled. *)
let requests_total = lazy (Obs.Metric.counter "serve.requests")
let errors_total = lazy (Obs.Metric.counter "serve.errors")
let class_counter cls = Obs.Metric.counter ("serve.requests." ^ cls)
let class_hist cls = Obs.Metric.histogram ("serve." ^ cls ^ "_s")

let create ?pool () =
  {
    registry = Registry.create ();
    sessions = Hashtbl.create 64;
    sessions_mu = Mutex.create ();
    pool;
    stop = false;
  }

let registry t = t.registry
let stopping t = t.stop

let ( let* ) = Result.bind

(* --- session table (mutex-guarded: concurrent groups may create
   sessions for distinct programs in the same batch) --- *)

let session_find t ~client ~program ~session =
  Mutex.lock t.sessions_mu;
  let r = Hashtbl.find_opt t.sessions (client, program, session) in
  Mutex.unlock t.sessions_mu;
  r

let session_get_or_create t (entry : Registry.entry) ~client ~session =
  (* Force the base analysis outside the lock so a slow first analysis
     of one program never serialises sessions on other programs. *)
  ignore (Lazy.force entry.Registry.analysis);
  Mutex.lock t.sessions_mu;
  let key = (client, entry.Registry.name, session) in
  let s =
    match Hashtbl.find_opt t.sessions key with
    | Some s -> s
    | None ->
      let s = Session.create entry ~name:session in
      Hashtbl.add t.sessions key s;
      s
  in
  Mutex.unlock t.sessions_mu;
  s

let drop_sessions_if t pred =
  Mutex.lock t.sessions_mu;
  let doomed =
    Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) t.sessions []
  in
  List.iter (Hashtbl.remove t.sessions) doomed;
  Mutex.unlock t.sessions_mu

let drop_client t client =
  drop_sessions_if t (fun (c, _, _) -> c = client)

let drop_program_sessions t program =
  drop_sessions_if t (fun (_, p, _) -> p = program)

let sessions_of_program t program =
  Mutex.lock t.sessions_mu;
  let acc =
    Hashtbl.fold
      (fun (_, p, _) s acc -> if p = program then s :: acc else acc)
      t.sessions []
  in
  Mutex.unlock t.sessions_mu;
  acc

(* --- resolution helpers --- *)

let find_entry t program =
  match Registry.find t.registry program with
  | Some e -> Ok e
  | None -> Error (Printf.sprintf "unknown program '%s'" program)

let resolve_proc prog name =
  match Ir.Prog.find_proc prog name with
  | Some p -> Ok p.Ir.Prog.pid
  | None -> Error (Printf.sprintf "unknown procedure '%s'" name)

let resolve_var prog ~proc name =
  match Ir.Prog.find_var prog ~proc name with
  | Some v -> Ok v.Ir.Prog.vid
  | None ->
    Error
      (Printf.sprintf "unknown variable '%s' in scope of '%s'" name
         (Ir.Prog.proc prog proc).Ir.Prog.pname)

let names_json prog set =
  Json.List
    (List.map (fun n -> Json.String n) (Delta.set_names prog set))

(* The session's view of a program: its engine's analysis when the
   client has opened a session, the shared registry base otherwise. *)
let analysis_for t (entry : Registry.entry) ~client ~session =
  match session_find t ~client ~program:entry.Registry.name ~session with
  | Some s -> (Session.analysis s, Some s)
  | None -> (Lazy.force entry.Registry.analysis, None)

(* --- query --- *)

let exec_query t entry ~client ~session (q : Protocol.query) =
  let a, sess = analysis_for t entry ~client ~session in
  let prog = a.Core.Analyze.prog in
  match q with
  | Protocol.Gmod { proc } ->
    let* pid = resolve_proc prog proc in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ("vars", names_json prog a.Core.Analyze.gmod.(pid));
         ])
  | Protocol.Guse { proc } ->
    let* pid = resolve_proc prog proc in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ("vars", names_json prog a.Core.Analyze.guse.(pid));
         ])
  | Protocol.Rmod { proc; var } ->
    let* pid = resolve_proc prog proc in
    let* vid = resolve_var prog ~proc:pid var in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ("var", Json.String var);
           ("member", Json.Bool (Core.Rmod.modified a.Core.Analyze.rmod vid));
         ])
  | Protocol.Ruse { proc; var } ->
    let* pid = resolve_proc prog proc in
    let* vid = resolve_var prog ~proc:pid var in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ("var", Json.String var);
           ("member", Json.Bool (Core.Rmod.modified a.Core.Analyze.ruse vid));
         ])
  | Protocol.Must { proc } ->
    let* pid = resolve_proc prog proc in
    let m = a.Core.Analyze.mustmod in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ("vars", names_json prog (Core.Mustmod.mustmod_of m pid));
           ("intra", names_json prog (Core.Mustmod.intra_of m pid));
           ("demoted", names_json prog (Core.Mustmod.demoted_of m pid));
         ])
  | Protocol.Alias { proc } ->
    let* pid = resolve_proc prog proc in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ( "pairs",
             Json.List
               (List.map
                  (fun (x, y) ->
                    Json.List
                      [
                        Json.String (Ir.Pp.qualified_var_name prog x);
                        Json.String (Ir.Pp.qualified_var_name prog y);
                      ])
                  (Core.Alias.pairs a.Core.Analyze.alias pid)) );
         ])
  | Protocol.Purity { proc } ->
    let* pid = resolve_proc prog proc in
    Ok
      (Json.Obj
         [
           ("proc", Json.String proc);
           ("pure", Json.Bool (List.mem pid (Lint.Rule.pure_procs a)));
         ])
  | Protocol.Mod_site { site } | Protocol.Use_site { site } ->
    if site < 0 || site >= Ir.Prog.n_sites prog then
      Error (Printf.sprintf "no such site: %d" site)
    else
      let set =
        match q with
        | Protocol.Mod_site _ -> Core.Analyze.mod_of_site a site
        | _ -> Core.Analyze.use_of_site a site
      in
      Ok (Json.Obj [ ("site", Json.Int site); ("vars", names_json prog set) ])
  | Protocol.Lint_delta ->
    let before = Lazy.force entry.Registry.base_lint in
    let after =
      match sess with
      | Some s -> Engine.lint s.Session.engine
      | None -> before
    in
    let added, removed = Lint.Engine.delta ~before ~after in
    Ok (Json.Obj (Delta.lint_fields (Some (added, removed))))
  | Protocol.Source -> Ok (Json.Obj [ ("source", Json.String (Ir.Pp.to_string prog)) ])

(* --- edit --- *)

let exec_edit t entry ~client ~program ~session ~script ~lint =
  let s = session_get_or_create t entry ~client ~session in
  let engine = s.Session.engine in
  let snap = Delta.snapshot (Engine.analysis engine) in
  let lint_before = if lint then Some (Engine.lint engine) else None in
  match Incremental.Script.parse (Engine.prog engine) script with
  | Error e ->
    Error ("bad edit script: " ^ Incremental.Script.error_to_string e)
  | Ok steps ->
    let rendered =
      List.rev
        (fst
           (List.fold_left
              (fun (acc, p) (edit, p') ->
                (Incremental.Edit.to_string p edit :: acc, p'))
              ([], Engine.prog engine)
              steps))
    in
    let fallbacks = ref 0 and resolved = ref 0 in
    List.iter
      (fun (edit, _) ->
        let o = Engine.apply engine edit in
        if o.Engine.fallback <> None then incr fallbacks;
        resolved := !resolved + o.Engine.procs_resolved)
      steps;
    let after = Engine.analysis engine in
    let lint_delta =
      match lint_before with
      | Some before ->
        Some (Lint.Engine.delta ~before ~after:(Engine.lint engine))
      | None -> None
    in
    Ok
      (Json.Obj
         ([
            ("program", Json.String program);
            ("session", Json.String session);
            ( "edits",
              Json.List (List.map (fun e -> Json.String e) rendered) );
            ("gmod_delta", Delta.rows_json (Delta.rows snap after ~side:`Mod));
            ("guse_delta", Delta.rows_json (Delta.rows snap after ~side:`Use));
            ("fallbacks", Json.Int !fallbacks);
            ("procs_resolved", Json.Int !resolved);
          ]
         @ Delta.lint_fields lint_delta))

(* --- explain (the CLI fact grammar, served) --- *)

type fact =
  | Fglobal of [ `Mod | `Use ] * string * string
  | Fref of [ `Mod | `Use ] * string * string
  | Falias of string * string * string
  | Fmust of string * string
  | Fdiag of string * string option

let parse_fact s =
  match String.split_on_char ':' s with
  | [ "gmod"; p; v ] -> Ok (Fglobal (`Mod, p, v))
  | [ "guse"; p; v ] -> Ok (Fglobal (`Use, p, v))
  | [ "rmod"; p; f ] -> Ok (Fref (`Mod, p, f))
  | [ "ruse"; p; f ] -> Ok (Fref (`Use, p, f))
  | [ "alias"; p; x; y ] -> Ok (Falias (p, x, y))
  | [ "must"; p; v ] -> Ok (Fmust (p, v))
  | [ "diag"; code ] -> Ok (Fdiag (code, None))
  | "diag" :: code :: rest -> Ok (Fdiag (code, Some (String.concat ":" rest)))
  | _ ->
    Error
      (Printf.sprintf
         "unrecognised fact '%s' (expected gmod:P:V | guse:P:V | must:P:V | \
          rmod:P:F | ruse:P:F | alias:P:X:Y | diag:CODE[:FILTER])"
         s)

let has_substring hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  n = 0 || go 0

let lint_for t entry sess =
  ignore t;
  match sess with
  | Some s -> Engine.lint s.Session.engine
  | None -> Lazy.force entry.Registry.base_lint

let witness_json fact lines =
  Json.Obj
    [
      ("fact", Json.String fact);
      ( "witness",
        match lines with
        | None -> Json.Null
        | Some ls -> Json.List (List.map (fun l -> Json.String l) ls) );
    ]

let exec_explain t entry ~client ~program ~session ~fact ~all =
  let a, sess = analysis_for t entry ~client ~session in
  let prog = a.Core.Analyze.prog in
  let locs =
    (* Edited programs have no source spans; the base keeps its real
       location table. *)
    match sess with
    | Some s when Session.edits s > 0 -> Frontend.Locs.dummy prog
    | _ -> entry.Registry.locs
  in
  if all then begin
    let results = ref [] in
    let push fact lines = results := (fact, lines) :: !results in
    Ir.Prog.iter_procs prog (fun pr ->
        let pid = pr.Ir.Prog.pid in
        let pn = pr.Ir.Prog.pname in
        List.iter
          (fun (label, side, sets) ->
            List.iter
              (fun vid ->
                push
                  (Printf.sprintf "%s:%s:%s" label pn (Ir.Pp.var_name prog vid))
                  (Core.Explain.explain_gmod a ~locs ~side ~proc:pid ~var:vid))
              (Bitvec.to_list sets.(pid)))
          [
            ("gmod", `Mod, a.Core.Analyze.gmod);
            ("guse", `Use, a.Core.Analyze.guse);
          ];
        List.iter
          (fun vid ->
            push
              (Printf.sprintf "must:%s:%s" pn (Ir.Pp.var_name prog vid))
              (Core.Explain.explain_must a ~locs ~proc:pid ~var:vid))
          (Bitvec.to_list (Core.Mustmod.mustmod_of a.Core.Analyze.mustmod pid));
        List.iter
          (fun (x, y) ->
            push
              (Printf.sprintf "alias:%s:%s:%s" pn (Ir.Pp.var_name prog x)
                 (Ir.Pp.var_name prog y))
              (Core.Explain.explain_alias a ~locs ~proc:pid x y))
          (Core.Alias.pairs a.Core.Analyze.alias pid));
    Ir.Prog.iter_vars prog (fun v ->
        match v.Ir.Prog.kind with
        | Ir.Prog.Formal { proc; mode = Ir.Prog.By_ref; _ } ->
          let pn = (Ir.Prog.proc prog proc).Ir.Prog.pname in
          if Core.Rmod.modified a.Core.Analyze.rmod v.Ir.Prog.vid then
            push
              (Printf.sprintf "rmod:%s:%s" pn v.Ir.Prog.vname)
              (Core.Explain.explain_rmod a ~locs ~side:`Mod ~var:v.Ir.Prog.vid);
          if Core.Rmod.modified a.Core.Analyze.ruse v.Ir.Prog.vid then
            push
              (Printf.sprintf "ruse:%s:%s" pn v.Ir.Prog.vname)
              (Core.Explain.explain_rmod a ~locs ~side:`Use ~var:v.Ir.Prog.vid)
        | _ -> ());
    List.iter
      (fun d ->
        push
          (Printf.sprintf "diag:%s:%s" d.Lint.Diagnostic.code
             d.Lint.Diagnostic.scope)
          (match d.Lint.Diagnostic.witness with [] -> None | w -> Some w))
      (lint_for t entry sess);
    let results = List.rev !results in
    let missing = List.filter (fun (_, w) -> w = None) results in
    Ok
      (Json.Obj
         [
           ("program", Json.String program);
           ( "facts",
             Json.List (List.map (fun (f, w) -> witness_json f w) results) );
           ("total", Json.Int (List.length results));
           ("missing", Json.Int (List.length missing));
           ( "missing_facts",
             Json.List
               (List.map (fun (f, _) -> Json.String f) missing) );
         ])
  end
  else
    let fact_str = Option.get fact in
    let* f = parse_fact fact_str in
    match f with
    | Fdiag (code, filter) ->
      let matches d =
        d.Lint.Diagnostic.code = code
        &&
        match filter with
        | None -> true
        | Some sub ->
          has_substring d.Lint.Diagnostic.scope sub
          || has_substring d.Lint.Diagnostic.message sub
      in
      let found = List.filter matches (lint_for t entry sess) in
      if found = [] then
        Error (Printf.sprintf "no finding matches '%s'" fact_str)
      else
        Ok
          (Json.Obj
             [
               ("program", Json.String program);
               ("fact", Json.String fact_str);
               ( "findings",
                 Json.List (List.map Lint.Diagnostic.to_json found) );
             ])
    | _ ->
      let* lines =
        match f with
        | Fglobal (side, p, v) ->
          let* pid = resolve_proc prog p in
          let* vid = resolve_var prog ~proc:pid v in
          Ok (Core.Explain.explain_gmod a ~locs ~side ~proc:pid ~var:vid)
        | Fref (side, p, fm) ->
          let* pid = resolve_proc prog p in
          let* vid = resolve_var prog ~proc:pid fm in
          Ok (Core.Explain.explain_rmod a ~locs ~side ~var:vid)
        | Falias (p, x, y) ->
          let* pid = resolve_proc prog p in
          let* xv = resolve_var prog ~proc:pid x in
          let* yv = resolve_var prog ~proc:pid y in
          Ok (Core.Explain.explain_alias a ~locs ~proc:pid xv yv)
        | Fmust (p, v) ->
          let* pid = resolve_proc prog p in
          let* vid = resolve_var prog ~proc:pid v in
          Ok (Core.Explain.explain_must a ~locs ~proc:pid ~var:vid)
        | Fdiag _ -> assert false
      in
      match lines with
      | None -> Error (Printf.sprintf "fact '%s' does not hold" fact_str)
      | Some ls ->
        Ok
          (Json.Obj
             [
               ("program", Json.String program);
               ("fact", Json.String fact_str);
               ("witness", Json.List (List.map (fun l -> Json.String l) ls));
             ])

(* --- stats --- *)

let quantiles_json h =
  Json.Obj
    [
      ("count", Json.Int (Obs.Metric.hist_observations h));
      ("p50_ns", Json.Int (Obs.Metric.hist_quantile_ns h 0.50));
      ("p95_ns", Json.Int (Obs.Metric.hist_quantile_ns h 0.95));
      ("p99_ns", Json.Int (Obs.Metric.hist_quantile_ns h 0.99));
    ]

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let exec_stats t =
  let programs =
    List.map
      (fun (e : Registry.entry) ->
        let sessions = sessions_of_program t e.Registry.name in
        (* Condensation shape of the call multi-graph: how much level
           parallelism a pooled re-analysis of this program could use.
           Graph work only — safe to compute for unanalyzed entries. *)
        let call = Callgraph.Call.build e.Registry.prog in
        let scc = Graphs.Scc.compute call.Callgraph.Call.graph in
        let csuccs = Array.make (max 1 scc.Graphs.Scc.n_comps) [] in
        Graphs.Digraph.iter_edges call.Callgraph.Call.graph (fun _ src dst ->
            let cs = scc.Graphs.Scc.comp.(src)
            and cd = scc.Graphs.Scc.comp.(dst) in
            if cs <> cd then csuccs.(cs) <- cd :: csuccs.(cs));
        let levels =
          Par.Wavefront.of_comp_succs ~n_comps:scc.Graphs.Scc.n_comps
            ~succs_of:(Array.get csuccs)
        in
        Json.Obj
          [
            ("name", Json.String e.Registry.name);
            ("procedures", Json.Int (Ir.Prog.n_procs e.Registry.prog));
            ("sites", Json.Int (Ir.Prog.n_sites e.Registry.prog));
            ("analyzed", Json.Bool (Lazy.is_val e.Registry.analysis));
            ("sessions", Json.Int (List.length sessions));
            ( "edits",
              Json.Int
                (List.fold_left (fun acc s -> acc + Session.edits s) 0 sessions)
            );
            ("call_levels", Json.Int levels.Par.Wavefront.n_levels);
            ("call_max_width", Json.Int levels.Par.Wavefront.max_width);
          ])
      (Registry.entries t.registry)
  in
  let requests =
    List.filter_map
      (fun (name, _, value) ->
        if starts_with ~prefix:"serve.requests." name then
          Some
            ( String.sub name 15 (String.length name - 15),
              Json.Int value )
        else None)
      (Obs.Metric.all ())
    |> List.sort compare
  in
  let latency =
    List.filter_map
      (fun h ->
        let name = Obs.Metric.hist_name h in
        if starts_with ~prefix:"serve." name then
          Some (name, quantiles_json h)
        else None)
      (Obs.Metric.histograms_in_order ())
    |> List.sort compare
  in
  Ok
    (Json.Obj
       [
         ("programs", Json.List programs);
         ( "recommended_domain_count",
           Json.Int (Domain.recommended_domain_count ()) );
         ("requests", Json.Obj requests);
         ("latency", Json.Obj latency);
       ])

(* --- dispatch --- *)

let exec t ~client (req : Protocol.request) =
  match req with
  | Protocol.Load { program; source } ->
    let* entry = Registry.load t.registry ~name:program ~source in
    (* A reload invalidates every session on the old version. *)
    drop_program_sessions t program;
    Ok
      (Json.Obj
         [
           ("program", Json.String program);
           ("procedures", Json.Int (Ir.Prog.n_procs entry.Registry.prog));
           ("sites", Json.Int (Ir.Prog.n_sites entry.Registry.prog));
         ])
  | Protocol.Unload { program } ->
    let* () = Registry.unload t.registry program in
    drop_program_sessions t program;
    Ok (Json.Obj [ ("unloaded", Json.String program) ])
  | Protocol.Query { program; session; query } ->
    let* entry = find_entry t program in
    exec_query t entry ~client ~session query
  | Protocol.Edit { program; session; script; lint } ->
    let* entry = find_entry t program in
    exec_edit t entry ~client ~program ~session ~script ~lint
  | Protocol.Explain { program; session; fact; all } ->
    let* entry = find_entry t program in
    exec_explain t entry ~client ~program ~session ~fact ~all
  | Protocol.Stats -> exec_stats t
  | Protocol.Shutdown ->
    t.stop <- true;
    Ok (Json.Obj [ ("stopping", Json.Bool true) ])

(* --- batches --- *)

(* Program-scoped requests may fan out; everything else is a barrier. *)
let parallel_safe = function
  | Ok (Protocol.Query _ | Protocol.Edit _ | Protocol.Explain _) -> true
  | _ -> false

let program_of = function
  | Ok (Protocol.Query { program; _ })
  | Ok (Protocol.Edit { program; _ })
  | Ok (Protocol.Explain { program; _ }) ->
    program
  | _ -> ""

let handle_batch t items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let parsed = Array.map (fun (_, line) -> Protocol.parse line) arr in
  let out = Array.make n "" in
  let lat_ns = Array.make n 0 in
  let failed = Array.make n false in
  let exec_one i =
    let client, _ = arr.(i) in
    let inc = parsed.(i) in
    let cls = Protocol.op_class inc.Protocol.request in
    let t0 = Unix.gettimeofday () in
    let resp =
      Obs.Span.with_ ("serve." ^ cls) @@ fun () ->
      match inc.Protocol.request with
      | Error msg ->
        failed.(i) <- true;
        Protocol.error_response ~id:inc.Protocol.id msg
      | Ok req -> (
        match exec t ~client req with
        | Ok result -> Protocol.ok_response ~id:inc.Protocol.id result
        | Error msg ->
          failed.(i) <- true;
          Protocol.error_response ~id:inc.Protocol.id msg
        | exception e ->
          failed.(i) <- true;
          Protocol.error_response ~id:inc.Protocol.id
            ("internal error: " ^ Printexc.to_string e))
    in
    lat_ns.(i) <- int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
    out.(i) <- resp
  in
  let i = ref 0 in
  while !i < n do
    if not (parallel_safe parsed.(!i).Protocol.request) then begin
      exec_one !i;
      incr i
    end
    else begin
      let j = ref !i in
      while !j < n && parallel_safe parsed.(!j).Protocol.request do
        incr j
      done;
      (* Group the run [i, j) by program, keeping arrival order inside
         each group (per-client, per-program order is what sessions
         depend on). *)
      let order = ref [] in
      let groups : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
      for k = !i to !j - 1 do
        let p = program_of parsed.(k).Protocol.request in
        match Hashtbl.find_opt groups p with
        | Some cell -> cell := k :: !cell
        | None ->
          Hashtbl.add groups p (ref [ k ]);
          order := p :: !order
      done;
      let tasks =
        List.rev_map
          (fun p -> List.rev !(Hashtbl.find groups p))
          !order
      in
      (match t.pool with
      | Some pool when List.length tasks > 1 ->
        Par.Pool.run pool
          (Array.of_list
             (List.map (fun idxs _slot -> List.iter exec_one idxs) tasks))
      | _ -> List.iter (fun idxs -> List.iter exec_one idxs) tasks);
      i := !j
    end
  done;
  (* Metrics on the calling domain, after any fan-out has joined. *)
  for k = 0 to n - 1 do
    let cls = Protocol.op_class parsed.(k).Protocol.request in
    Obs.Metric.incr (Lazy.force requests_total);
    Obs.Metric.incr (class_counter cls);
    if failed.(k) then Obs.Metric.incr (Lazy.force errors_total);
    Obs.Metric.observe_ns (class_hist cls) lat_ns.(k)
  done;
  Array.to_list out

let handle_line t ~client line =
  match handle_batch t [ (client, line) ] with
  | [ resp ] -> resp
  | _ -> assert false

(* --- transports --- *)

let load_file t ~name ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | source -> Result.map (fun (_ : Registry.entry) -> ()) (Registry.load t.registry ~name ~source)
  | exception Sys_error msg -> Error msg

let serve_channels t ic oc =
  let rec loop () =
    if t.stop then ()
    else
      match input_line ic with
      | exception End_of_file -> ()
      | line ->
        output_string oc (handle_line t ~client:0 line);
        output_char oc '\n';
        flush oc;
        loop ()
  in
  loop ()

(* One connected socket client: a stable id for session keying, a
   buffer holding a partial trailing line, and an output buffer of
   responses not yet accepted by the (non-blocking) socket.  The
   server must never block on a send: a client that has queued many
   requests and not yet read a large response (explain --all can
   exceed the socket buffer) would otherwise deadlock the whole loop
   against itself — it is waiting for a response the server cannot
   write until the client drains the previous one. *)
type conn = {
  fd : Unix.file_descr;
  cid : int;
  buf : Buffer.t;
  out : Buffer.t;
  mutable out_off : int;
}

(* Push as much pending output as the socket accepts right now.
   [`Ok] when fully drained, [`Partial] when the socket would block,
   [`Closed] when the peer is gone. *)
let flush_conn c =
  let rec go () =
    let pending = Buffer.length c.out - c.out_off in
    if pending = 0 then begin
      Buffer.clear c.out;
      c.out_off <- 0;
      `Ok
    end
    else
      match Unix.write_substring c.fd (Buffer.contents c.out) c.out_off pending with
      | 0 -> `Partial
      | k ->
        c.out_off <- c.out_off + k;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Partial
      | exception Unix.Unix_error _ -> `Closed
  in
  go ()

(* Split the buffered bytes into complete lines; the tail (no newline
   yet) stays buffered. *)
let take_lines buf =
  let s = Buffer.contents buf in
  match String.rindex_opt s '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_string buf (String.sub s (last + 1) (String.length s - last - 1));
    String.split_on_char '\n' (String.sub s 0 last)

let serve_socket ?(max_clients = 512) t ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let clients : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 64 in
  let cleanup () =
    Hashtbl.iter
      (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ())
      clients;
    (try Unix.close srv with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 128;
  let next_id = ref 1 in
  let chunk = Bytes.create 65536 in
  while not t.stop do
    let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let wfds =
      Hashtbl.fold
        (fun fd c acc -> if Buffer.length c.out > c.out_off then fd :: acc else acc)
        clients []
    in
    match Unix.select fds wfds [] 0.5 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, writable, _ ->
      if List.memq srv ready then begin
        match Unix.accept srv with
        | fd, _ ->
          if Hashtbl.length clients >= max_clients then (
            try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            Unix.set_nonblock fd;
            Hashtbl.add clients fd
              {
                fd;
                cid = !next_id;
                buf = Buffer.create 256;
                out = Buffer.create 256;
                out_off = 0;
              };
            incr next_id
          end
        | exception Unix.Unix_error _ -> ()
      end;
      let batch = ref [] in
      let closed = ref [] in
      List.iter
        (fun fd ->
          if fd != srv then
            match Hashtbl.find_opt clients fd with
            | None -> ()
            | Some c -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> closed := c :: !closed
              | k ->
                Buffer.add_subbytes c.buf chunk 0 k;
                List.iter
                  (fun line -> batch := (c, line) :: !batch)
                  (take_lines c.buf)
              | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                ->
                ()
              | exception Unix.Unix_error _ -> closed := c :: !closed))
        ready;
      let batch = List.rev !batch in
      if batch <> [] then begin
        let responses =
          handle_batch t (List.map (fun (c, line) -> (c.cid, line)) batch)
        in
        List.iter2
          (fun (c, _) resp ->
            if not (List.memq c !closed) then begin
              Buffer.add_string c.out resp;
              Buffer.add_char c.out '\n'
            end)
          batch responses
      end;
      (* Drain what each socket will take: everything that became
         writable, plus anything that just got a response queued. *)
      let flushed = Hashtbl.create 16 in
      let try_flush c =
        if (not (Hashtbl.mem flushed c.fd)) && not (List.memq c !closed) then begin
          Hashtbl.add flushed c.fd ();
          match flush_conn c with
          | `Ok | `Partial -> ()
          | `Closed -> closed := c :: !closed
        end
      in
      List.iter
        (fun fd -> Option.iter try_flush (Hashtbl.find_opt clients fd))
        writable;
      List.iter (fun (c, _) -> try_flush c) batch;
      List.iter
        (fun c ->
          if Hashtbl.mem clients c.fd then begin
            (try Unix.close c.fd with Unix.Unix_error _ -> ());
            Hashtbl.remove clients c.fd;
            drop_client t c.cid
          end)
        !closed
  done;
  (* Best-effort drain of unsent responses — above all the shutdown
     acknowledgement itself — before the fds are closed. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  Hashtbl.iter
    (fun _ c ->
      let rec drain () =
        if Unix.gettimeofday () < deadline then
          match flush_conn c with
          | `Ok | `Closed -> ()
          | `Partial ->
            (match Unix.select [] [ c.fd ] [] 0.1 with
            | exception Unix.Unix_error _ -> ()
            | _ -> ());
            drain ()
      in
      drain ())
    clients
