(** Scripted-client load generator for the analysis server.

    Each client keeps a local {e mirror} of its program, draws valid
    edits from {!Workload.Edits}, renders them to wire scripts with
    {!Incremental.Script.render}, and interleaves them with queries
    generated against the mirror — so every request it sends is valid
    by construction and any [ok: false] response (or a response that
    fails to parse, or an id echo mismatch) counts as a protocol
    error.  [bench/bench_serve.ml] drives thousands of these against a
    live socket server and writes the per-request-class p50/p95/p99
    rows to [BENCH_serve.json]; the acceptance bar is {e zero}
    protocol errors.

    Clients run in waves of [concurrency] open connections; within a
    wave every client sends its next request before any response is
    read, so a socket server sees genuinely concurrent batches (the
    select loop hands them to {!Server.handle_batch} as one batch). *)

type conn = {
  send : string -> unit;  (** Send one request line. *)
  recv : unit -> string;  (** Block for one response line. *)
  close : unit -> unit;
}

val in_process : Server.t -> unit -> conn
(** Connections that call {!Server.handle_line} directly (no I/O, no
    batching) — what the test suite uses. Each call is a new client. *)

val socket_conn : ?retries:int -> path:string -> unit -> conn
(** Connect to a Unix-socket server, retrying [retries] (default 100)
    times at 50 ms while the server is still binding. *)

type class_stats = {
  cls : string;
  count : int;
  p50_ns : int;
  p95_ns : int;
  p99_ns : int;
  max_ns : int;
}
(** Exact client-side percentiles (sorted raw samples, not bucketed). *)

type report = {
  clients : int;
  requests : int;
  protocol_errors : int;
  error_samples : string list;  (** First few error messages, for triage. *)
  edits_sent : int;
  edits_skipped : int;  (** Generated edits {!Incremental.Script.render} declined. *)
  classes : class_stats list;
}

val run :
  ?concurrency:int ->
  ?edits_per_client:int ->
  ?queries_per_client:int ->
  clients:int ->
  seed:int ->
  programs:(string * string) list ->
  connect:(unit -> conn) ->
  unit ->
  report
(** Load the named programs through one setup connection, then drive
    [clients] scripted clients (assigned round-robin to programs) in
    waves of [concurrency] (default 32; keep it under the [select] FD
    budget).  Defaults: 2 edits and 8 queries per client.  The whole
    run is deterministic in [seed] (up to latency values). *)

val report_json : report -> Obs.Json.t
