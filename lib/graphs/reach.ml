let from g root =
  let n = Digraph.n_nodes g in
  let seen = Bitvec.create n in
  let stack = ref [ root ] in
  Bitvec.set seen root;
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Digraph.iter_succ g v (fun w ->
          if not (Bitvec.get seen w) then begin
            Bitvec.set seen w;
            stack := w :: !stack
          end);
      loop ()
  in
  loop ();
  seen

let from_set g seeds =
  let n = Digraph.n_nodes g in
  let seen = Bitvec.create n in
  let stack = ref [] in
  for v = 0 to n - 1 do
    if Bitvec.get seeds v then begin
      Bitvec.set seen v;
      stack := v :: !stack
    end
  done;
  let rec loop () =
    match !stack with
    | [] -> ()
    | v :: rest ->
      stack := rest;
      Digraph.iter_succ g v (fun w ->
          if not (Bitvec.get seen w) then begin
            Bitvec.set seen w;
            stack := w :: !stack
          end);
      loop ()
  in
  loop ();
  seen

let ancestors g seeds = from_set (Digraph.reverse g) seeds

let all g = Array.init (Digraph.n_nodes g) (fun v -> from g v)

let reaches g ~src ~dst = Bitvec.get (from g src) dst
