(** Reachability over directed graphs.

    [GMOD] is "a generalization of the reachability problem" (§4):
    [GMOD(p)] collects effects of every procedure reachable from [p].
    This module is the brute-force form of that statement — one DFS per
    source — which the baseline library and the test oracle build on. *)

val from : Digraph.t -> Digraph.node -> Bitvec.t
(** [from g v] is the set of nodes reachable from [v], including [v]
    itself (the paper follows Tarjan's empty-path convention). *)

val from_set : Digraph.t -> Bitvec.t -> Bitvec.t
(** [from_set g seeds] is the union of [from g v] over every [v] in
    [seeds] — one multi-source DFS, [O(N+E)]. *)

val ancestors : Digraph.t -> Bitvec.t -> Bitvec.t
(** [ancestors g seeds] is the set of nodes with a path {e into}
    [seeds] (seeds included): [from_set] on the reversed graph.  On a
    condensation this is exactly the invalidation cone of an
    incremental update — components whose fixpoint value can depend on
    a changed seed. *)

val all : Digraph.t -> Bitvec.t array
(** [all g] is [from g v] for every [v] — [O(N·(N+E))]. *)

val reaches : Digraph.t -> src:Digraph.node -> dst:Digraph.node -> bool
