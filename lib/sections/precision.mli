(** The §6 precision report: how often the regular-section lattice
    stays strictly between ⊥ and whole-array.

    Every (array, context) pair — [GMOD(p)], [GUSE(p)] for each
    procedure, sectioned [MOD(s)]/[USE(s)] for each call site — is
    classified as {e bottom} (the context never touches the array),
    {e partial} (some dimension is still [Exact]: a row, column or
    element — the information bit-level analysis destroys), or
    {e whole} (all-[Star], no better than a bit).  The partial share of
    the touched contexts is what regular sections buy on a program. *)

type counts = {
  bottom : int;
  partial : int;
  whole : int;
}

type row = {
  vid : int;
  rank : int;
  gmod : counts;  (** Over the per-procedure [GMOD] maps. *)
  guse : counts;
  site_mod : counts;  (** Over the per-site sectioned [MOD]/[USE]. *)
  site_use : counts;
}

val touched : counts -> int
(** Contexts that touch the array: [partial + whole]. *)

val partial_pct : counts -> int
(** [100 * partial / touched], 0 when untouched — the precision win. *)

val classify : Section.t -> [ `Bottom | `Partial | `Whole ]

val report : Analyze_sections.t -> row list
(** One row per array variable, ascending id. *)

val pp : Ir.Prog.t -> Format.formatter -> row list -> unit
(** Aligned table with per-row and aggregate precision percentages. *)

val to_json : Ir.Prog.t -> row list -> Obs.Json.t
(** Stable shape: [{"program", "arrays": [{"array", "rank", "gmod":
    {"bottom","partial","whole"}, "guse": .., "site_mod": ..,
    "site_use": .., "touched", "partial", "precision_pct"}...],
    "totals": {...}}]. *)
