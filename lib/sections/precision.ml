module P = Ir.Prog

type counts = {
  bottom : int;
  partial : int;
  whole : int;
}

type row = {
  vid : int;
  rank : int;
  gmod : counts;
  guse : counts;
  site_mod : counts;
  site_use : counts;
}

let zero = { bottom = 0; partial = 0; whole = 0 }
let touched c = c.partial + c.whole

let partial_pct c =
  let t = touched c in
  if t = 0 then 0 else 100 * c.partial / t

let classify (s : Section.t) =
  match s with
  | Section.Bottom -> `Bottom
  | Section.Section dims ->
    if Array.exists (fun d -> match d with Section.Exact _ -> true | Section.Star -> false) dims
    then `Partial
    else `Whole

let bump c s =
  match classify s with
  | `Bottom -> { c with bottom = c.bottom + 1 }
  | `Partial -> { c with partial = c.partial + 1 }
  | `Whole -> { c with whole = c.whole + 1 }

let report (t : Analyze_sections.t) =
  let prog = Ir.Info.prog t.Analyze_sections.info in
  let arrays = ref [] in
  P.iter_vars prog (fun v ->
      if Ir.Types.is_array v.P.vty then arrays := v.P.vid :: !arrays);
  let arrays = List.rev !arrays in
  let np = P.n_procs prog and ns = P.n_sites prog in
  (* Site maps are derived on demand by Analyze_sections; compute each
     once, not once per array. *)
  let site_mods = Array.init ns (Analyze_sections.mod_of_site t) in
  let site_uses = Array.init ns (Analyze_sections.use_of_site t) in
  List.map
    (fun vid ->
      let over n maps =
        let c = ref zero in
        for i = 0 to n - 1 do
          c := bump !c (Secmap.get maps.(i) vid)
        done;
        !c
      in
      let rank =
        match (P.var prog vid).P.vty with
        | Ir.Types.Array dims -> List.length dims
        | _ -> 0
      in
      {
        vid;
        rank;
        gmod = over np t.Analyze_sections.gmod;
        guse = over np t.Analyze_sections.guse;
        site_mod = over ns site_mods;
        site_use = over ns site_uses;
      })
    arrays

let total rows =
  List.fold_left
    (fun acc r ->
      let add a b =
        {
          bottom = a.bottom + b.bottom;
          partial = a.partial + b.partial;
          whole = a.whole + b.whole;
        }
      in
      add (add (add (add acc r.gmod) r.guse) r.site_mod) r.site_use)
    zero rows

let combined r = total [ r ]

let pp prog ppf rows =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "%-12s %4s  %18s %18s  %7s@," "array" "rank" "GMOD b/p/w"
    "site MOD b/p/w" "partial";
  List.iter
    (fun r ->
      let all = combined r in
      Format.fprintf ppf "%-12s %4d  %5d/%4d/%5d %6d/%4d/%5d  %6d%%@,"
        (P.var prog r.vid).P.vname r.rank
        (r.gmod.bottom + r.guse.bottom)
        (r.gmod.partial + r.guse.partial)
        (r.gmod.whole + r.guse.whole)
        (r.site_mod.bottom + r.site_use.bottom)
        (r.site_mod.partial + r.site_use.partial)
        (r.site_mod.whole + r.site_use.whole)
        (partial_pct all))
    rows;
  let t = total rows in
  Format.fprintf ppf "total: %d contexts touch an array, %d (%d%%) stay sectioned@]"
    (touched t) t.partial (partial_pct t)

let counts_json c =
  Obs.Json.Obj
    [
      ("bottom", Obs.Json.Int c.bottom);
      ("partial", Obs.Json.Int c.partial);
      ("whole", Obs.Json.Int c.whole);
    ]

let to_json prog rows =
  let t = total rows in
  Obs.Json.Obj
    [
      ("program", Obs.Json.String prog.P.name);
      ( "arrays",
        Obs.Json.List
          (List.map
             (fun r ->
               let all = combined r in
               Obs.Json.Obj
                 [
                   ("array", Obs.Json.String (P.var prog r.vid).P.vname);
                   ("rank", Obs.Json.Int r.rank);
                   ("gmod", counts_json r.gmod);
                   ("guse", counts_json r.guse);
                   ("site_mod", counts_json r.site_mod);
                   ("site_use", counts_json r.site_use);
                   ("touched", Obs.Json.Int (touched all));
                   ("partial", Obs.Json.Int all.partial);
                   ("precision_pct", Obs.Json.Int (partial_pct all));
                 ])
             rows) );
      ( "totals",
        Obs.Json.Obj
          [
            ("touched", Obs.Json.Int (touched t));
            ("partial", Obs.Json.Int t.partial);
            ("precision_pct", Obs.Json.Int (partial_pct t));
          ] );
    ]
