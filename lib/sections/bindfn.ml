module Prog = Ir.Prog
module Expr = Ir.Expr

let globally_immutable info =
  let result = Bitvec.copy (Ir.Info.global info) in
  let imod_flat = Frontend.Local.imod_flat info in
  Array.iter (fun m -> ignore (Bitvec.diff_into ~src:m ~dst:result)) imod_flat;
  result

(* Substitute a callee-frame atom into the caller's frame at one call
   site.  [caller_unstable] disqualifies atoms the caller modifies. *)
let subst_atom info ~(site : Prog.site) ~caller_unstable (atom : Section.atom) :
    Section.dim =
  let prog = Ir.Info.prog info in
  match atom with
  | Section.Const _ -> Section.Exact atom
  | Section.Affine { var = u; offset } -> (
    match (Prog.var prog u).Prog.kind with
    | Prog.Global ->
      if Bitvec.get caller_unstable u then Section.Star else Section.Exact atom
    | Prog.Local _ -> Section.Star
    | Prog.Formal { proc; index; _ } ->
      if proc <> site.Prog.callee then Section.Star
      else begin
        (* Translate through the actual at the formal's position. *)
        match site.Prog.args.(index) with
        | Prog.Arg_value e -> (
          match Lrsd.atomize ~unstable:caller_unstable e with
          | Section.Star -> Section.Star
          | Section.Exact (Section.Const c) -> Section.Exact (Section.Const (c + offset))
          | Section.Exact (Section.Affine a) ->
            Section.Exact (Section.Affine { a with offset = a.offset + offset }))
        | Prog.Arg_ref (Expr.Lvar w) ->
          if
            (not (Ir.Types.is_array (Prog.var prog w).Prog.vty))
            && not (Bitvec.get caller_unstable w)
          then Section.Exact (Section.Affine { var = w; offset })
          else Section.Star
        | Prog.Arg_ref (Expr.Lindex _ | Expr.Lderef _) -> Section.Star
      end)

let subst_section info ~site ~caller_unstable (s : Section.t) : Section.t =
  match s with
  | Section.Bottom -> Section.Bottom
  | Section.Section dims ->
    Section.Section
      (Array.map
         (fun d ->
           match d with
           | Section.Star -> Section.Star
           | Section.Exact a -> subst_atom info ~site ~caller_unstable a)
         dims)

let project_unstable info ~(site : Prog.site) ~arg_pos ~caller_unstable
    ~callee_section =
  match site.Prog.args.(arg_pos) with
  | Prog.Arg_value _ -> invalid_arg "Bindfn.project: by-value argument"
  | Prog.Arg_ref (Expr.Lvar base) ->
    (base, subst_section info ~site ~caller_unstable callee_section)
  | Prog.Arg_ref (Expr.Lindex (base, idx)) -> (
    (* Element binding: a scalar formal restricts to one element. *)
    match callee_section with
    | Section.Bottom -> (base, Section.Bottom)
    | Section.Section [||] ->
      ( base,
        Section.Section
          (Array.of_list (List.map (Lrsd.atomize ~unstable:caller_unstable) idx)) )
    | Section.Section _ ->
      invalid_arg "Bindfn.project: element binding with non-scalar formal section")
  | Prog.Arg_ref (Expr.Lderef (base, _)) ->
    (* A dereference actual binds scalar storage; no array section to
       project.  Report the pointer base, itself a scalar (rank 0). *)
    (base, Section.whole ~rank:0)

let project info ~site ~arg_pos ~callee_section =
  let caller_unstable = Lrsd.unstable_vars info site.Prog.caller in
  project_unstable info ~site ~arg_pos ~caller_unstable ~callee_section

let retarget_global info s =
  match s with
  | Section.Bottom -> Section.Bottom
  | Section.Section dims ->
    let immutable = globally_immutable info in
    Section.Section
      (Array.map
         (fun d ->
           match d with
           | Section.Star -> Section.Star
           | Section.Exact (Section.Const _) -> d
           | Section.Exact (Section.Affine { var; _ }) ->
             if Bitvec.get immutable var then d else Section.Star)
         dims)
