type verdict = {
  parallel : bool;
  conflicts : (int * string) list;
}

let pinned_to_ivar ~ivar (d : Section.dim) =
  match d with
  | Section.Exact (Section.Affine { var; offset }) when var = ivar -> Some offset
  | Section.Exact (Section.Affine _ | Section.Const _) | Section.Star -> None

let loop_independent ~ivar a b =
  match (a, b) with
  | Section.Bottom, _ | _, Section.Bottom -> true
  | Section.Section d1, Section.Section d2 ->
    Array.length d1 = Array.length d2
    && Array.exists2
         (fun x y ->
           match (pinned_to_ivar ~ivar x, pinned_to_ivar ~ivar y) with
           | Some o1, Some o2 -> o1 = o2
           | (Some _ | None), _ -> false)
         d1 d2

let analyze_loop prog ~ivar ~mod_map ~use_map =
  let conflicts = ref [] in
  let conflict vid reason = conflicts := (vid, reason) :: !conflicts in
  List.iter
    (fun (vid, msec) ->
      let v = Ir.Prog.var prog vid in
      if vid = ivar then () (* the loop's own induction variable *)
      else if not (Ir.Types.is_array v.Ir.Prog.vty) then
        conflict vid (Printf.sprintf "scalar %s written by every iteration" v.Ir.Prog.vname)
      else begin
        if not (loop_independent ~ivar msec msec) then
          conflict vid
            (Printf.sprintf "array %s: writes of distinct iterations may collide"
               v.Ir.Prog.vname);
        let usec = Secmap.get use_map vid in
        if not (loop_independent ~ivar msec usec) then
          conflict vid
            (Printf.sprintf
               "array %s: a write may collide with another iteration's read"
               v.Ir.Prog.vname)
      end)
    (Secmap.touched mod_map);
  (* Deduped and sorted so downstream consumers (the lint engine emits
     one finding per pair) see a canonical list. *)
  let conflicts = List.sort_uniq compare !conflicts in
  { parallel = conflicts = []; conflicts }
