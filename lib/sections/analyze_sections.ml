module Prog = Ir.Prog

type t = {
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  rsmod : Rsmod.result;
  rsuse : Rsmod.result;
  imod_plus : Secmap.t array;
  iuse_plus : Secmap.t array;
  gmod : Secmap.t array;
  guse : Secmap.t array;
}

let applicable prog = Prog.max_level prog <= 1

(* Sectioned equation (5): local sections plus, per call site, the
   binding-function image of each modified formal's section. *)
let imod_plus_sections info ~(rs : Rsmod.result) ~lrsd_of =
  let prog = Ir.Info.prog info in
  let result = Array.init (Prog.n_procs prog) (fun pid -> lrsd_of pid) in
  Prog.iter_sites prog (fun s ->
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun arg_pos arg ->
          match arg with
          | Prog.Arg_value _ -> ()
          | Prog.Arg_ref _ ->
            let callee_section = Rsmod.section_of rs callee.Prog.formals.(arg_pos) in
            if not (Section.equal callee_section Section.bottom) then begin
              let base, induced =
                Bindfn.project info ~site:s ~arg_pos ~callee_section
              in
              ignore (Secmap.add result.(s.Prog.caller) base induced)
            end)
        s.Prog.args);
  result

let run prog =
  if not (applicable prog) then
    invalid_arg "Analyze_sections.run: nested programs are out of scope for §6";
  Obs.Span.with_ "sections" @@ fun () ->
  let info = Ir.Info.make prog in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build prog in
  let rsmod = Obs.Span.with_ "sections.rsmod" (fun () -> Rsmod.solve info binding) in
  let rsuse = Obs.Span.with_ "sections.rsuse" (fun () -> Rsmod.solve_use info binding) in
  let imod_plus =
    Obs.Span.with_ "sections.imod_plus" (fun () ->
        imod_plus_sections info ~rs:rsmod ~lrsd_of:(Lrsd.lrsd_mod info))
  in
  let iuse_plus =
    Obs.Span.with_ "sections.iuse_plus" (fun () ->
        imod_plus_sections info ~rs:rsuse ~lrsd_of:(Lrsd.lrsd_use info))
  in
  let gmod =
    Obs.Span.with_ "sections.gmod" (fun () -> Gmod_sections.solve info call ~seed:imod_plus)
  in
  let guse =
    Obs.Span.with_ "sections.guse" (fun () -> Gmod_sections.solve info call ~seed:iuse_plus)
  in
  { info; call; binding; rsmod; rsuse; imod_plus; iuse_plus; gmod; guse }

(* Sectioned equation (2) projection for one site, under a chosen
   caller instability set. *)
let project_site_unstable t ~which ~caller_unstable sid =
  let info = t.info in
  let prog = Ir.Info.prog info in
  let s = Prog.site prog sid in
  let callee = Prog.proc prog s.Prog.callee in
  let summary =
    match which with
    | `Mod -> t.gmod.(s.Prog.callee)
    | `Use -> t.guse.(s.Prog.callee)
  in
  let result = Secmap.create prog in
  (* Non-local survivors.  The site is known here, so callee-formal
     atoms can be substituted through the actual bindings (more precise
     than the frame-independent widening used inside the fixpoint). *)
  let mask = Ir.Info.non_local info s.Prog.callee in
  List.iter
    (fun (vid, sec) ->
      if Bitvec.get mask vid then
        ignore
          (Secmap.add result vid (Bindfn.subst_section info ~site:s ~caller_unstable sec)))
    (Secmap.touched summary);
  (* Formal sections onto actuals, through g_e. *)
  Array.iteri
    (fun arg_pos arg ->
      match arg with
      | Prog.Arg_value _ -> ()
      | Prog.Arg_ref _ ->
        let callee_section = Secmap.get summary callee.Prog.formals.(arg_pos) in
        if not (Section.equal callee_section Section.bottom) then begin
          let base, induced =
            Bindfn.project_unstable info ~site:s ~arg_pos ~caller_unstable
              ~callee_section
          in
          ignore (Secmap.add result base induced)
        end)
    s.Prog.args;
  result

let project_site t ~which sid =
  let prog = Ir.Info.prog t.info in
  let s = Prog.site prog sid in
  let caller_unstable = Lrsd.unstable_vars t.info s.Prog.caller in
  project_site_unstable t ~which ~caller_unstable sid

let mod_of_site t sid = project_site t ~which:`Mod sid

let use_of_site t sid =
  let result = project_site t ~which:`Use sid in
  (* Argument evaluation: the caller-local uses of the call statement,
     sectioned. *)
  let prog = Ir.Info.prog t.info in
  let s = Prog.site prog sid in
  let unstable = Lrsd.unstable_vars t.info s.Prog.caller in
  let add vid sec = ignore (Secmap.add result vid sec) in
  Array.iter
    (fun arg ->
      match arg with
      | Prog.Arg_value e -> Lrsd.use_expr_into ~unstable ~add e
      | Prog.Arg_ref lv -> Lrsd.use_lvalue_indices_into ~unstable ~add lv)
    s.Prog.args;
  result

let pp_report ppf t =
  let prog = Ir.Info.prog t.info in
  Format.fprintf ppf "@[<v>== sectioned analysis: %s ==@," prog.Prog.name;
  Prog.iter_procs prog (fun pr ->
      let pid = pr.Prog.pid in
      Format.fprintf ppf "procedure %s:@,  GMOD = %a@,  GUSE = %a@," pr.Prog.pname
        (Secmap.pp prog) t.gmod.(pid) (Secmap.pp prog) t.guse.(pid));
  Prog.iter_sites prog (fun s ->
      Format.fprintf ppf "site %d (%s -> %s): MOD = %a, USE = %a@," s.Prog.sid
        (Prog.proc prog s.Prog.caller).Prog.pname
        (Prog.proc prog s.Prog.callee).Prog.pname
        (Secmap.pp prog) (mod_of_site t s.Prog.sid)
        (Secmap.pp prog) (use_of_site t s.Prog.sid));
  Format.fprintf ppf "@]"

(* Per-iteration summary of one loop: local sectioned effects of the
   body plus the projections of the call sites it contains, all with
   the loop variable treated as stable (it is fixed within an
   iteration). *)
let loop_summary t ~proc ~ivar ~body =
  let prog = Ir.Info.prog t.info in
  let unstable = Bitvec.copy (Lrsd.unstable_vars t.info proc) in
  Bitvec.unset unstable ivar;
  let mod_map = Lrsd.stmts_mod prog ~unstable body in
  let use_map = Lrsd.stmts_use prog ~unstable body in
  List.iter
    (fun sid ->
      ignore
        (Secmap.join_into
           ~src:(project_site_unstable t ~which:`Mod ~caller_unstable:unstable sid)
           ~dst:mod_map);
      ignore
        (Secmap.join_into
           ~src:(project_site_unstable t ~which:`Use ~caller_unstable:unstable sid)
           ~dst:use_map))
    (Ir.Stmt.call_sites body);
  (mod_map, use_map)
