module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt

let atomize ~unstable (e : Expr.t) : Section.dim =
  let stable v = not (Bitvec.get unstable v) in
  match e with
  | Expr.Int c -> Section.Exact (Section.Const c)
  | Expr.Var v when stable v -> Section.Exact (Section.Affine { var = v; offset = 0 })
  | Expr.Binop (Expr.Add, Expr.Var v, Expr.Int c) when stable v ->
    Section.Exact (Section.Affine { var = v; offset = c })
  | Expr.Binop (Expr.Add, Expr.Int c, Expr.Var v) when stable v ->
    Section.Exact (Section.Affine { var = v; offset = c })
  | Expr.Binop (Expr.Sub, Expr.Var v, Expr.Int c) when stable v ->
    Section.Exact (Section.Affine { var = v; offset = -c })
  | _ -> Section.Star

let unstable_vars info pid = (Frontend.Local.imod_flat info).(pid)

(* Shared traversal: record modifications and uses as sections. *)
let element_section ~unstable idx =
  Section.Section (Array.of_list (List.map (atomize ~unstable) idx))

let scalar_section = Section.Section [||]

let rec use_expr ~unstable ~add (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Bool _ -> ()
  | Expr.Var v -> add v scalar_section
  | Expr.Index (a, idx) ->
    add a (element_section ~unstable idx);
    List.iter (use_expr ~unstable ~add) idx
  | Expr.Binop (_, l, r) ->
    use_expr ~unstable ~add l;
    use_expr ~unstable ~add r
  | Expr.Unop (_, e) -> use_expr ~unstable ~add e
  (* Pointers never name array cells (no pointer-to-array, no
     address-of-element), so sections — an array refinement — see a
     dereference only as a scalar use of the pointer; the scalar
     cells it may name are covered by the bit-level analysis. *)
  | Expr.Addr _ | Expr.New _ -> ()
  | Expr.Deref (p, _) -> add p scalar_section

let use_lvalue_indices ~unstable ~add (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar _ -> ()
  | Expr.Lindex (_, idx) -> List.iter (use_expr ~unstable ~add) idx
  | Expr.Lderef (p, _) -> add p scalar_section

let mod_lvalue ~unstable ~add (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar v -> add v scalar_section
  | Expr.Lindex (a, idx) -> add a (element_section ~unstable idx)
  | Expr.Lderef _ -> ()

let collect_stmts prog ~unstable ~want stmts =
  let map = Secmap.create prog in
  let add vid s = ignore (Secmap.add map vid s) in
  let add_mod vid s = if want = `Mod then add vid s in
  let add_use vid s = if want = `Use then add vid s in
  let use_e = use_expr ~unstable ~add:add_use in
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Assign (lv, e) ->
        mod_lvalue ~unstable ~add:add_mod lv;
        use_lvalue_indices ~unstable ~add:add_use lv;
        use_e e
      | Stmt.If (c, _, _) | Stmt.While (c, _) -> use_e c
      | Stmt.For (v, lo, hi, _) ->
        add_mod v scalar_section;
        add_use v scalar_section;
        use_e lo;
        use_e hi
      | Stmt.Read lv ->
        mod_lvalue ~unstable ~add:add_mod lv;
        use_lvalue_indices ~unstable ~add:add_use lv
      | Stmt.Write e -> use_e e
      | Stmt.Call sid ->
        (* Exclusive of the call's effects; argument evaluation is a
           local use. *)
        let site = Prog.site prog sid in
        Array.iter
          (fun arg ->
            match arg with
            | Prog.Arg_value e -> use_e e
            | Prog.Arg_ref lv -> use_lvalue_indices ~unstable ~add:add_use lv)
          site.Prog.args)
    stmts;
  map

let collect info pid ~want =
  let prog = Ir.Info.prog info in
  collect_stmts prog ~unstable:(unstable_vars info pid) ~want
    (Prog.proc prog pid).Prog.body

let lrsd_mod info pid = collect info pid ~want:`Mod
let lrsd_use info pid = collect info pid ~want:`Use

let stmts_mod prog ~unstable stmts = collect_stmts prog ~unstable ~want:`Mod stmts
let stmts_use prog ~unstable stmts = collect_stmts prog ~unstable ~want:`Use stmts

let use_expr_into ~unstable ~add e = use_expr ~unstable ~add e
let use_lvalue_indices_into ~unstable ~add lv = use_lvalue_indices ~unstable ~add lv
