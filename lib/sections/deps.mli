(** Loop-level dependence testing on sectioned summaries — the use case
    that motivates §6 ("the most effective way to parallelize a loop is
    through data decomposition").

    Given the sectioned [MOD] and [USE] maps of a loop body whose
    iterations are distinguished by the loop variable [ivar], a loop is
    parallelisable when no two distinct iterations conflict: no
    modified location of iteration [i] is modified or used by iteration
    [i' ≠ i].

    Two sections of the same array accessed in different iterations are
    {e independent} when some dimension is pinned, in both, to the same
    affine atom over [ivar] with the same offset — distinct iterations
    then address provably distinct elements.  Everything else
    (a [Star] dimension, atoms over other variables, differing offsets)
    conservatively conflicts. *)

type verdict = {
  parallel : bool;
  conflicts : (int * string) list;
      (** Variables (and a human-readable reason) that prevent
          parallelisation; empty iff [parallel].  Deduplicated and
          sorted by [(vid, reason)], so a variable that conflicts for
          several reasons appears once per distinct reason and repeated
          detections of the same conflict never repeat an entry. *)
}

val loop_independent : ivar:int -> Section.t -> Section.t -> bool
(** May two {e distinct} iterations (different values of [ivar]) touch
    a common element through these two sections?  [true] = provably
    not. *)

val analyze_loop :
  Ir.Prog.t -> ivar:int -> mod_map:Secmap.t -> use_map:Secmap.t -> verdict
(** Checks every variable either map touches: scalars written by the
    body conflict (unless they are the loop variable itself); arrays
    are subjected to {!loop_independent} on mod/mod and mod/use
    pairs. *)
