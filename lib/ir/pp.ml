let var_name p vid = (Prog.var p vid).Prog.vname
let proc_name p pid = (Prog.proc p pid).Prog.pname

(* Expressions are printed with minimal parentheses: a subexpression is
   parenthesised only when its operator binds looser than the context,
   or equally on the right of a left-associative operator. *)
let rec pp_expr_prec p ctx ppf (e : Expr.t) =
  match e with
  | Int n -> if n < 0 then Format.fprintf ppf "(%d)" n else Format.pp_print_int ppf n
  | Bool true -> Format.pp_print_string ppf "true"
  | Bool false -> Format.pp_print_string ppf "false"
  | Var v -> Format.pp_print_string ppf (var_name p v)
  | Index (a, idx) ->
    Format.fprintf ppf "%s[%a]" (var_name p a)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_expr_prec p 0))
      idx
  | Binop (op, l, r) ->
    let prec = Expr.binop_precedence op in
    let needs_parens = prec < ctx in
    if needs_parens then Format.pp_print_string ppf "(";
    Format.fprintf ppf "%a %a %a" (pp_expr_prec p prec) l Expr.pp_binop op
      (pp_expr_prec p (prec + 1))
      r;
    if needs_parens then Format.pp_print_string ppf ")"
  | Unop (op, e) ->
    let needs_parens = ctx > 6 in
    if needs_parens then Format.pp_print_string ppf "(";
    (match op with
    | Expr.Neg -> Format.fprintf ppf "-%a" (pp_expr_prec p 7) e
    | Expr.Not -> Format.fprintf ppf "not %a" (pp_expr_prec p 7) e);
    if needs_parens then Format.pp_print_string ppf ")"
  | Addr v -> Format.fprintf ppf "&%s" (var_name p v)
  | Deref (v, d) -> Format.fprintf ppf "%s%s" (String.make d '*') (var_name p v)
  | New ty -> Format.fprintf ppf "new %a" Types.pp ty

let pp_expr p ppf e = pp_expr_prec p 0 ppf e

let pp_lvalue p ppf = function
  | Expr.Lvar v -> Format.pp_print_string ppf (var_name p v)
  | Expr.Lindex (a, idx) ->
    Format.fprintf ppf "%s[%a]" (var_name p a)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_expr p))
      idx
  | Expr.Lderef (v, d) ->
    Format.fprintf ppf "%s%s" (String.make d '*') (var_name p v)

let pp_arg p ppf = function
  | Prog.Arg_ref lv -> pp_lvalue p ppf lv
  | Prog.Arg_value e -> pp_expr p ppf e

let rec pp_stmt p ppf (s : Stmt.t) =
  match s with
  | Assign (lv, e) -> Format.fprintf ppf "@[<h>%a := %a;@]" (pp_lvalue p) lv (pp_expr p) e
  | If (c, then_, []) ->
    Format.fprintf ppf "@[<v 2>if %a then@,%a@]@,end;" (pp_expr p) c (pp_stmts p) then_
  | If (c, then_, else_) ->
    Format.fprintf ppf "@[<v 2>if %a then@,%a@]@,@[<v 2>else@,%a@]@,end;" (pp_expr p) c
      (pp_stmts p) then_ (pp_stmts p) else_
  | While (c, body) ->
    Format.fprintf ppf "@[<v 2>while %a do@,%a@]@,end;" (pp_expr p) c (pp_stmts p) body
  | For (v, lo, hi, body) ->
    Format.fprintf ppf "@[<v 2>for %s := %a to %a do@,%a@]@,end;" (var_name p v)
      (pp_expr p) lo (pp_expr p) hi (pp_stmts p) body
  | Call sid ->
    let site = Prog.site p sid in
    Format.fprintf ppf "@[<h>call %s(%a);@]"
      (proc_name p site.Prog.callee)
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (pp_arg p))
      (Array.to_list site.Prog.args)
  | Read lv -> Format.fprintf ppf "@[<h>read %a;@]" (pp_lvalue p) lv
  | Write e -> Format.fprintf ppf "@[<h>write %a;@]" (pp_expr p) e

and pp_stmts p ppf stmts =
  match stmts with
  | [] -> Format.fprintf ppf "skip;"
  | _ ->
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,") (pp_stmt p)
      ppf stmts

let group_decls p vids =
  (* Merge adjacent declarations of the same type into one [var] line,
     preserving order. *)
  let rec group = function
    | [] -> []
    | vid :: rest ->
      let ty = (Prog.var p vid).Prog.vty in
      let same, others =
        let rec take acc = function
          | v :: tl when Types.equal (Prog.var p v).Prog.vty ty -> take (v :: acc) tl
          | tl -> (List.rev acc, tl)
        in
        take [ vid ] rest
      in
      (same, ty) :: group others
  in
  group vids

let pp_var_decls p ppf vids =
  List.iter
    (fun (group, ty) ->
      Format.fprintf ppf "var %a : %a;@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf vid -> Format.pp_print_string ppf (var_name p vid)))
        group Types.pp ty)
    (group_decls p vids)

let pp_param p ppf vid =
  let v = Prog.var p vid in
  let mode_prefix =
    match v.Prog.kind with
    | Prog.Formal { mode = Prog.By_ref; _ } -> "var "
    | Prog.Formal { mode = Prog.By_value; _ } -> ""
    | Prog.Global | Prog.Local _ -> ""
  in
  Format.fprintf ppf "%s%s : %a" mode_prefix v.Prog.vname Types.pp v.Prog.vty

let rec pp_proc p ppf (pr : Prog.proc) =
  Format.fprintf ppf "@[<v 2>procedure %s(%a);@," pr.Prog.pname
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") (pp_param p))
    (Array.to_list pr.Prog.formals);
  pp_var_decls p ppf pr.Prog.locals;
  List.iter
    (fun nested_pid ->
      pp_proc p ppf (Prog.proc p nested_pid);
      Format.fprintf ppf ";@,")
    pr.Prog.nested;
  Format.fprintf ppf "@[<v 2>begin@,%a@]@,end@]" (pp_stmts p) pr.Prog.body

let pp_program ppf (p : Prog.t) =
  let main = Prog.proc p p.Prog.main in
  let globals =
    Array.to_list p.Prog.vars
    |> List.filter_map (fun v ->
           if Prog.is_global v then Some v.Prog.vid else None)
  in
  Format.fprintf ppf "@[<v>program %s;@," p.Prog.name;
  pp_var_decls p ppf globals;
  pp_var_decls p ppf main.Prog.locals;
  List.iter
    (fun pid ->
      pp_proc p ppf (Prog.proc p pid);
      Format.fprintf ppf ";@,")
    main.Prog.nested;
  Format.fprintf ppf "@[<v 2>begin@,%a@]@,end.@]" (pp_stmts p) main.Prog.body

let to_string p = Format.asprintf "%a@." pp_program p

let qualified_var_name p vid =
  let v = Prog.var p vid in
  match Prog.var_owner v with
  | None -> v.Prog.vname
  | Some pid -> Printf.sprintf "%s.%s" (proc_name p pid) v.Prog.vname

let pp_var_set p ppf set =
  let qualified = qualified_var_name p in
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf vid -> Format.pp_print_string ppf (qualified vid)))
    (Bitvec.to_list set)
