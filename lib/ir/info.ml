type t = {
  prog : Prog.t;
  local : Bitvec.t array;
  non_local : Bitvec.t array;
  global : Bitvec.t;
  visible : Bitvec.t array;
  var_level : int array;
  by_level : Bitvec.t array; (* index l: vars with level <= l *)
}

let make prog =
  let nv = Prog.n_vars prog in
  let np = Prog.n_procs prog in
  let local = Array.init np (fun _ -> Bitvec.create nv) in
  let global = Bitvec.create nv in
  let var_level = Array.make nv 0 in
  Prog.iter_vars prog (fun v ->
      (match Prog.var_owner v with
      | None -> Bitvec.set global v.Prog.vid
      | Some owner -> Bitvec.set local.(owner) v.Prog.vid);
      var_level.(v.Prog.vid) <- Prog.owner_level prog v);
  let full = Bitvec.create nv in
  for i = 0 to nv - 1 do
    Bitvec.set full i
  done;
  let non_local = Array.map (fun l -> Bitvec.diff full l) local in
  let visible = Array.make np global in
  (* Walk procedures in increasing pid?  Parents may have any pid, so
     compute by recursion over the nesting chain with memoisation. *)
  let computed = Array.make np false in
  let rec vis pid =
    if computed.(pid) then visible.(pid)
    else begin
      let base =
        match (Prog.proc prog pid).Prog.parent with
        | None -> global
        | Some parent -> vis parent
      in
      let v = Bitvec.copy base in
      ignore (Bitvec.union_into ~src:local.(pid) ~dst:v);
      visible.(pid) <- v;
      computed.(pid) <- true;
      v
    end
  in
  for pid = 0 to np - 1 do
    ignore (vis pid)
  done;
  let dp = Prog.max_level prog in
  let by_level =
    Array.init (dp + 1) (fun l ->
        let v = Bitvec.create nv in
        for i = 0 to nv - 1 do
          if var_level.(i) <= l then Bitvec.set v i
        done;
        v)
  in
  { prog; local; non_local; global; visible; var_level; by_level }

let prog t = t.prog
let with_prog t prog = { t with prog }
let n_vars t = Prog.n_vars t.prog
let local t pid = t.local.(pid)
let non_local t pid = t.non_local.(pid)
let global t = t.global
let visible t pid = t.visible.(pid)
let var_level t vid = t.var_level.(vid)

let level_at_most t l =
  let max_l = Array.length t.by_level - 1 in
  t.by_level.(if l > max_l then max_l else l)

let fresh t = Bitvec.create (n_vars t)

let fold_up_nesting t sets =
  let p = t.prog in
  let result = Array.map Bitvec.copy sets in
  (* Deepest procedures first, so children are final before parents
     fold them in. *)
  let order =
    List.sort
      (fun a b -> compare (Prog.proc p b).Prog.level (Prog.proc p a).Prog.level)
      (List.init (Prog.n_procs p) (fun i -> i))
  in
  List.iter
    (fun pid ->
      List.iter
        (fun q ->
          let escaped = Bitvec.copy result.(q) in
          ignore (Bitvec.inter_into ~src:t.non_local.(q) ~dst:escaped);
          ignore (Bitvec.union_into ~src:escaped ~dst:result.(pid)))
        (Prog.proc p pid).Prog.nested)
    order;
  result
