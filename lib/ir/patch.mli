(** Structural surgery on resolved programs.

    The incremental engine's edit language bottoms out here: each
    function builds a fresh {!Prog.t} (inputs are never mutated) that
    preserves the table invariants {!Validate} enforces — dense
    self-consistent variable/procedure/site ids, call statements and
    the site table referencing each other exactly, and the nesting
    tree shape.  Semantic well-formedness of an edit (the assigned
    variable is visible in its new home, a retargeted call's argument
    types match) is deliberately {e not} checked here; callers are
    expected to revalidate with {!Validate.run} after a batch of
    patches (the test suite does so after every generated edit).

    All functions raise [Invalid_argument] on structurally impossible
    requests (out-of-range ids, arity/mode mismatches, removing a
    procedure that is still called). *)

val append_stmt : Prog.t -> proc:int -> Stmt.t -> Prog.t
(** Append a call-free statement to a procedure's body.  Use
    {!add_call} for calls — a [Call] statement needs a site-table
    entry. *)

val remove_stmt : Prog.t -> proc:int -> index:int -> Prog.t
(** Remove the [index]-th top-level statement of a procedure's body.
    The statement must be an assignment (removing a call statement
    must go through {!remove_call} so the site table stays exact). *)

val add_call : Prog.t -> caller:int -> callee:int -> args:Prog.arg array -> Prog.t * int
(** Append a fresh call site (returned id is [n_sites] of the input)
    and a matching [Call] statement at the end of the caller's body.
    Args must match the callee's formals in arity and mode. *)

val remove_call : Prog.t -> sid:int -> Prog.t
(** Delete a call site: its [Call] statement disappears from the
    caller's body and every later site id shifts down by one (ids stay
    dense; call statements are renumbered program-wide). *)

val retarget_call : Prog.t -> sid:int -> callee:int -> Prog.t
(** Point an existing site at a different callee with the same arity
    and parameter modes.  Argument {e types} are left to
    {!Validate}. *)

val add_proc :
  Prog.t ->
  name:string ->
  formals:(string * Prog.param_mode * Types.t) list ->
  locals:(string * Types.t) list ->
  body:(formals:int array -> locals:int array -> Stmt.t list) ->
  Prog.t * int
(** Append a new top-level procedure (a child of main, level 1).  New
    variable ids are allocated densely after the existing ones and
    passed to the [body] builder; the body must be call-free (wire the
    new procedure up with {!add_call} afterwards).  Returns the new
    pid ([n_procs] of the input). *)

val remove_proc : Prog.t -> pid:int -> Prog.t
(** Remove a leaf procedure that is never called and contains no call
    sites (cascade removals are the edit layer's job).  Its variables
    disappear and every table — variable kinds, parent/nested links,
    formal/local lists, bodies, site arguments — is renumbered to keep
    ids dense. *)
