(** Internal-consistency checker for resolved programs.

    Run by the test suite on everything the front end and the workload
    generators produce, so that analysis results are never computed
    over ill-formed inputs.  Checks: dense self-consistent ids; the
    nesting tree is a tree rooted at main; formal/local tables agree
    with variable kinds; call arguments match the callee's formals in
    arity and mode; by-reference actuals are lvalues; every variable
    mentioned in a procedure's body (and in its call sites' arguments)
    is visible there; indexing respects array rank; call statements and
    the site table reference each other exactly. *)

type error = {
  where : string;  (** Procedure or table the fault was found in. *)
  what : string;  (** Human-readable description. *)
}

val run : Prog.t -> (unit, error list) result
(** All detected errors, or [Ok ()]. *)

val check_exn : Prog.t -> unit
(** Raises [Invalid_argument] with a formatted report on failure. *)

val pp_error : Format.formatter -> error -> unit

val check_cfg :
  where:string ->
  n_blocks:int ->
  entry:int ->
  exit_:int ->
  succs:(int -> int list) ->
  error list
(** Well-formedness of a control-flow graph given abstractly (this
    library cannot depend on the dataflow layer that builds CFGs):
    blocks are [0..n_blocks-1]; entry/exit and every edge endpoint in
    range; every block reachable from [entry]; every block co-reachable
    from [exit_] (structured statements guarantee both); the exit block
    has no successors.  Returns all violations, empty when well-formed.
    Span nesting is checked by the CFG builder itself, which owns the
    source positions. *)
