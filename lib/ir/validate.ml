type error = {
  where : string;
  what : string;
}

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let run (p : Prog.t) =
  let errors = ref [] in
  let fail where fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let nv = Prog.n_vars p and np = Prog.n_procs p and ns = Prog.n_sites p in
  let var_ok v = v >= 0 && v < nv in
  let proc_ok q = q >= 0 && q < np in

  (* Table ids match positions. *)
  Array.iteri
    (fun i v -> if v.Prog.vid <> i then fail "vars" "vid %d at index %d" v.Prog.vid i)
    p.Prog.vars;
  Array.iteri
    (fun i pr ->
      if pr.Prog.pid <> i then fail "procs" "pid %d at index %d" pr.Prog.pid i)
    p.Prog.procs;
  Array.iteri
    (fun i s -> if s.Prog.sid <> i then fail "sites" "sid %d at index %d" s.Prog.sid i)
    p.Prog.sites;

  if not (proc_ok p.Prog.main) then fail "program" "main pid %d out of range" p.Prog.main
  else if (Prog.proc p p.Prog.main).Prog.parent <> None then
    fail "program" "main has a parent";

  (* Nesting is a tree rooted at main: parent pointers acyclic, levels
     consistent, nested lists match parents. *)
  Array.iter
    (fun pr ->
      let name = pr.Prog.pname in
      (match pr.Prog.parent with
      | None ->
        if pr.Prog.pid <> p.Prog.main then fail name "non-main procedure has no parent";
        if pr.Prog.level <> 0 then fail name "root level is %d, not 0" pr.Prog.level
      | Some parent ->
        if not (proc_ok parent) then fail name "parent %d out of range" parent
        else begin
          let ppr = Prog.proc p parent in
          if pr.Prog.level <> ppr.Prog.level + 1 then
            fail name "level %d but parent level %d" pr.Prog.level ppr.Prog.level;
          if not (List.mem pr.Prog.pid ppr.Prog.nested) then
            fail name "missing from parent's nested list"
        end);
      List.iter
        (fun child ->
          if not (proc_ok child) then fail name "nested pid %d out of range" child
          else if (Prog.proc p child).Prog.parent <> Some pr.Prog.pid then
            fail name "nested proc %s does not point back"
              (Prog.proc p child).Prog.pname)
        pr.Prog.nested)
    p.Prog.procs;

  (* Variable kinds agree with the proc tables. *)
  Array.iter
    (fun v ->
      let name = v.Prog.vname in
      match v.Prog.kind with
      | Prog.Global -> ()
      | Prog.Local pid ->
        if not (proc_ok pid) then fail name "owner %d out of range" pid
        else if not (List.mem v.Prog.vid (Prog.proc p pid).Prog.locals) then
          fail name "local missing from %s's locals" (Prog.proc p pid).Prog.pname
      | Prog.Formal { proc = pid; index; _ } ->
        if not (proc_ok pid) then fail name "owner %d out of range" pid
        else begin
          let formals = (Prog.proc p pid).Prog.formals in
          if index < 0 || index >= Array.length formals then
            fail name "formal index %d out of range" index
          else if formals.(index) <> v.Prog.vid then
            fail name "formal table of %s disagrees at index %d"
              (Prog.proc p pid).Prog.pname index
        end)
    p.Prog.vars;

  (* Body checks per procedure: visibility, indexing rank, call/site
     cross references. *)
  let seen_sites = Array.make ns false in
  let check_var_use pname pid vid ctx =
    if not (var_ok vid) then fail pname "%s: variable id %d out of range" ctx vid
    else if not (Prog.visible p ~proc:pid ~var:vid) then
      fail pname "%s: %s not visible here" ctx (Prog.var p vid).Prog.vname
  in
  let rec check_expr pname pid ctx (e : Expr.t) =
    match e with
    | Int _ | Bool _ -> ()
    | Var vid ->
      check_var_use pname pid vid ctx;
      if var_ok vid && Types.is_array (Prog.var p vid).Prog.vty then
        fail pname "%s: array %s read as scalar" ctx (Prog.var p vid).Prog.vname
    | Index (a, idx) ->
      check_var_use pname pid a ctx;
      if var_ok a then begin
        let rank = Types.rank (Prog.var p a).Prog.vty in
        if rank = 0 then
          fail pname "%s: scalar %s indexed" ctx (Prog.var p a).Prog.vname
        else if rank <> List.length idx then
          fail pname "%s: %s indexed with %d subscripts, rank %d" ctx
            (Prog.var p a).Prog.vname (List.length idx) rank
      end;
      List.iter (check_expr pname pid ctx) idx
    | Binop (_, l, r) ->
      check_expr pname pid ctx l;
      check_expr pname pid ctx r;
      ()
    | Unop (_, e) -> check_expr pname pid ctx e
    | Addr vid ->
      check_var_use pname pid vid ctx;
      if var_ok vid && Types.is_array (Prog.var p vid).Prog.vty then
        fail pname "%s: address of array %s" ctx (Prog.var p vid).Prog.vname
    | Deref (vid, d) ->
      check_var_use pname pid vid ctx;
      if d < 1 then fail pname "%s: dereference depth %d < 1" ctx d;
      if var_ok vid && Types.deref d (Prog.var p vid).Prog.vty = None then
        fail pname "%s: %s cannot be dereferenced %d time(s)" ctx
          (Prog.var p vid).Prog.vname d
    | New ty -> if Types.is_array ty then fail pname "%s: new of array type" ctx
  in
  let check_lvalue pname pid ctx (lv : Expr.lvalue) =
    match lv with
    | Expr.Lvar vid -> check_var_use pname pid vid ctx
    | Expr.Lindex (a, idx) -> check_expr pname pid ctx (Expr.Index (a, idx))
    | Expr.Lderef (vid, d) -> check_expr pname pid ctx (Expr.Deref (vid, d))
  in
  let check_site pname pid sid =
    if sid < 0 || sid >= ns then fail pname "call site id %d out of range" sid
    else begin
      let s = Prog.site p sid in
      if seen_sites.(sid) then fail pname "site %d used by two call statements" sid;
      seen_sites.(sid) <- true;
      if s.Prog.caller <> pid then
        fail pname "site %d records caller %d, found in %d" sid s.Prog.caller pid;
      if not (proc_ok s.Prog.callee) then
        fail pname "site %d callee %d out of range" sid s.Prog.callee
      else begin
        let callee = Prog.proc p s.Prog.callee in
        if s.Prog.callee = p.Prog.main then fail pname "site %d calls main" sid;
        let n_formals = Array.length callee.Prog.formals in
        if Array.length s.Prog.args <> n_formals then
          fail pname "site %d passes %d args to %s/%d" sid (Array.length s.Prog.args)
            callee.Prog.pname n_formals
        else
          Array.iteri
            (fun i arg ->
              let mode = Prog.formal_mode p callee i in
              match (arg, mode) with
              | Prog.Arg_ref lv, Prog.By_ref ->
                check_lvalue pname pid (Printf.sprintf "site %d arg %d" sid i) lv;
                (* A whole array actual must match the formal's rank;
                   an element actual feeds a scalar formal. *)
                let formal_ty = (Prog.var p callee.Prog.formals.(i)).Prog.vty in
                let actual_ty =
                  match lv with
                  | Expr.Lvar v when var_ok v -> Some (Prog.var p v).Prog.vty
                  | Expr.Lindex (v, _) when var_ok v -> Some Types.Int
                  | Expr.Lderef (v, d) when var_ok v ->
                    Types.deref d (Prog.var p v).Prog.vty
                  | Expr.Lvar _ | Expr.Lindex _ | Expr.Lderef _ -> None
                in
                (match actual_ty with
                | Some ty when not (Types.equal ty formal_ty) ->
                  fail pname "site %d arg %d: type %s passed by ref to formal of type %s"
                    sid i (Types.to_string ty) (Types.to_string formal_ty)
                | Some _ | None -> ())
              | Prog.Arg_value e, Prog.By_value ->
                check_expr pname pid (Printf.sprintf "site %d arg %d" sid i) e
              | Prog.Arg_ref _, Prog.By_value ->
                fail pname "site %d arg %d: ref actual for value formal" sid i
              | Prog.Arg_value _, Prog.By_ref ->
                fail pname "site %d arg %d: value actual for ref formal" sid i)
            s.Prog.args
      end
    end
  in
  Prog.iter_procs p (fun pr ->
      let pname = pr.Prog.pname in
      let pid = pr.Prog.pid in
      Stmt.iter
        (fun s ->
          match s with
          | Stmt.Assign (lv, e) ->
            check_lvalue pname pid "assign" lv;
            check_expr pname pid "assign" e
          | Stmt.If (c, _, _) -> check_expr pname pid "if" c
          | Stmt.While (c, _) -> check_expr pname pid "while" c
          | Stmt.For (v, lo, hi, _) ->
            check_var_use pname pid v "for";
            if var_ok v && Types.is_array (Prog.var p v).Prog.vty then
              fail pname "for: loop variable %s is an array" (Prog.var p v).Prog.vname;
            check_expr pname pid "for" lo;
            check_expr pname pid "for" hi
          | Stmt.Call sid -> check_site pname pid sid
          | Stmt.Read lv -> check_lvalue pname pid "read" lv
          | Stmt.Write e -> check_expr pname pid "write" e)
        pr.Prog.body);
  Array.iteri
    (fun sid seen -> if not seen then fail "sites" "site %d has no call statement" sid)
    seen_sites;
  match !errors with
  | [] -> Ok ()
  | es -> Error (List.rev es)

let check_exn p =
  match run p with
  | Ok () -> ()
  | Error es ->
    invalid_arg
      (Format.asprintf "Validate.check_exn:@,%a"
         (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_error)
         es)

(* --- CFG well-formedness --- *)

let check_cfg ~where ~n_blocks ~entry ~exit_ ~succs =
  let errors = ref [] in
  let fail fmt =
    Format.kasprintf (fun what -> errors := { where; what } :: !errors) fmt
  in
  let ok b = b >= 0 && b < n_blocks in
  if n_blocks <= 0 then fail "cfg: %d blocks" n_blocks;
  if not (ok entry) then fail "cfg: entry %d out of range" entry;
  if not (ok exit_) then fail "cfg: exit %d out of range" exit_;
  if ok entry && ok exit_ then begin
    let edge_ok = ref true in
    for b = 0 to n_blocks - 1 do
      List.iter
        (fun s ->
          if not (ok s) then begin
            edge_ok := false;
            fail "cfg: edge %d -> %d out of range" b s
          end)
        (succs b)
    done;
    if !edge_ok then begin
      (* Forward reachability from entry. *)
      let reach = Array.make n_blocks false in
      let rec fwd b =
        if not reach.(b) then begin
          reach.(b) <- true;
          List.iter fwd (succs b)
        end
      in
      fwd entry;
      for b = 0 to n_blocks - 1 do
        if not reach.(b) then fail "cfg: block %d unreachable from entry" b
      done;
      (* Co-reachability: every block must reach the exit. *)
      let preds = Array.make n_blocks [] in
      for b = 0 to n_blocks - 1 do
        List.iter (fun s -> preds.(s) <- b :: preds.(s)) (succs b)
      done;
      let coreach = Array.make n_blocks false in
      let rec bwd b =
        if not coreach.(b) then begin
          coreach.(b) <- true;
          List.iter bwd preds.(b)
        end
      in
      bwd exit_;
      for b = 0 to n_blocks - 1 do
        if not coreach.(b) then fail "cfg: block %d cannot reach exit" b
      done;
      if succs exit_ <> [] then fail "cfg: exit %d has successors" exit_
    end
  end;
  List.rev !errors
