(** Resolved MiniProc expressions and lvalues.

    Variables are referred to by their program-wide dense id (see
    {!Prog}); the front end's semantic analysis performs the name
    resolution.  Expressions are side-effect free: MiniProc has no
    value-returning functions, so all interprocedural effects flow
    through call {e statements}. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

type t =
  | Int of int
  | Bool of bool
  | Var of int  (** Scalar variable read, by id. *)
  | Index of int * t list  (** [Index (a, idx)] reads element [a[idx]]. *)
  | Binop of binop * t * t
  | Unop of unop * t
  | Addr of int  (** [&x]: address of a scalar variable. *)
  | Deref of int * int
      (** [Deref (p, d)]: the [d]-fold dereference [*...*p] of pointer
          variable [p], [d >= 1]. *)
  | New of Types.t  (** [new T]: fresh heap cell; the value is [ptr of T]. *)

(** Assignable locations. *)
type lvalue =
  | Lvar of int  (** Whole variable (scalar, or whole array). *)
  | Lindex of int * t list  (** One array element. *)
  | Lderef of int * int
      (** [Lderef (p, d)]: the cell reached by [d] dereferences of
          pointer variable [p]. *)

val lvalue_base : lvalue -> int
(** The variable id an lvalue ultimately names. *)

val vars : t -> int list
(** Ids of all variables read by an expression, each listed once,
    ascending. *)

val lvalue_index_vars : lvalue -> int list
(** Variables read to evaluate an lvalue's address (empty for [Lvar];
    subscript variables for [Lindex]; the pointer variable itself for
    [Lderef]), each once, ascending. *)

val equal : t -> t -> bool
val equal_lvalue : lvalue -> lvalue -> bool

val pp_binop : Format.formatter -> binop -> unit
val pp_unop : Format.formatter -> unop -> unit

val binop_precedence : binop -> int
(** Higher binds tighter; used by the pretty-printer to place a
    minimal set of parentheses. *)
