(* Structural surgery on resolved programs.  Every function returns a
   fresh [Prog.t] (inputs are never mutated) preserving the table
   invariants [Validate] checks: dense self-consistent ids, call
   statements and the site table referencing each other exactly, and
   the nesting tree shape.  Semantic well-formedness of the *edit*
   (visibility of a variable in its new home, type agreement of a
   retargeted call) is the caller's business — re-run [Validate] after
   a batch of patches. *)

let rec map_expr fv (e : Expr.t) =
  match e with
  | Expr.Int _ | Expr.Bool _ | Expr.New _ -> e
  | Expr.Var v -> Expr.Var (fv v)
  | Expr.Addr v -> Expr.Addr (fv v)
  | Expr.Deref (v, d) -> Expr.Deref (fv v, d)
  | Expr.Index (a, idx) -> Expr.Index (fv a, List.map (map_expr fv) idx)
  | Expr.Binop (op, l, r) -> Expr.Binop (op, map_expr fv l, map_expr fv r)
  | Expr.Unop (op, e) -> Expr.Unop (op, map_expr fv e)

let map_lvalue fv (lv : Expr.lvalue) =
  match lv with
  | Expr.Lvar v -> Expr.Lvar (fv v)
  | Expr.Lindex (a, idx) -> Expr.Lindex (fv a, List.map (map_expr fv) idx)
  | Expr.Lderef (v, d) -> Expr.Lderef (fv v, d)

(* Rewrite a statement list: variable ids through [fv], call-site ids
   through [fsid] ([None] drops the call statement). *)
let rec map_stmts ~fv ~fsid stmts =
  List.filter_map
    (fun (s : Stmt.t) ->
      match s with
      | Stmt.Assign (lv, e) -> Some (Stmt.Assign (map_lvalue fv lv, map_expr fv e))
      | Stmt.If (c, a, b) ->
        Some (Stmt.If (map_expr fv c, map_stmts ~fv ~fsid a, map_stmts ~fv ~fsid b))
      | Stmt.While (c, b) -> Some (Stmt.While (map_expr fv c, map_stmts ~fv ~fsid b))
      | Stmt.For (v, lo, hi, b) ->
        Some (Stmt.For (fv v, map_expr fv lo, map_expr fv hi, map_stmts ~fv ~fsid b))
      | Stmt.Call sid -> (
        match fsid sid with
        | None -> None
        | Some sid' -> Some (Stmt.Call sid'))
      | Stmt.Read lv -> Some (Stmt.Read (map_lvalue fv lv))
      | Stmt.Write e -> Some (Stmt.Write (map_expr fv e)))
    stmts

let id_var v = v
let keep_sid sid = Some sid

let with_proc (p : Prog.t) pid f =
  let procs = Array.copy p.Prog.procs in
  procs.(pid) <- f procs.(pid);
  { p with Prog.procs }

let check_pid (p : Prog.t) pid what =
  if pid < 0 || pid >= Prog.n_procs p then
    invalid_arg (Printf.sprintf "Patch.%s: pid %d out of range" what pid)

let forbid_calls what stmts =
  Stmt.iter
    (fun s ->
      match s with
      | Stmt.Call _ ->
        invalid_arg (Printf.sprintf "Patch.%s: statement contains a call (use add_call)" what)
      | Stmt.Assign _ | Stmt.If _ | Stmt.While _ | Stmt.For _ | Stmt.Read _
      | Stmt.Write _ ->
        ())
    stmts

let append_stmt p ~proc stmt =
  check_pid p proc "append_stmt";
  forbid_calls "append_stmt" [ stmt ];
  with_proc p proc (fun pr -> { pr with Prog.body = pr.Prog.body @ [ stmt ] })

let remove_stmt p ~proc ~index =
  check_pid p proc "remove_stmt";
  with_proc p proc (fun pr ->
      let removed = ref None in
      let body =
        List.filteri
          (fun i s ->
            if i = index then begin
              removed := Some s;
              false
            end
            else true)
          pr.Prog.body
      in
      match !removed with
      | None -> invalid_arg "Patch.remove_stmt: index out of range"
      | Some (Stmt.Assign _) -> { pr with Prog.body }
      | Some _ -> invalid_arg "Patch.remove_stmt: statement at index is not an assignment")

let add_call p ~caller ~callee ~args =
  check_pid p caller "add_call";
  check_pid p callee "add_call";
  if callee = p.Prog.main then invalid_arg "Patch.add_call: cannot call main";
  let formals = (Prog.proc p callee).Prog.formals in
  if Array.length args <> Array.length formals then
    invalid_arg
      (Printf.sprintf "Patch.add_call: %d args for %d formals" (Array.length args)
         (Array.length formals));
  Array.iteri
    (fun i arg ->
      match (arg, Prog.formal_mode p (Prog.proc p callee) i) with
      | Prog.Arg_ref _, Prog.By_ref | Prog.Arg_value _, Prog.By_value -> ()
      | Prog.Arg_ref _, Prog.By_value | Prog.Arg_value _, Prog.By_ref ->
        invalid_arg (Printf.sprintf "Patch.add_call: arg %d mode mismatch" i))
    args;
  let sid = Prog.n_sites p in
  let sites = Array.append p.Prog.sites [| { Prog.sid; caller; callee; args } |] in
  let p = { p with Prog.sites } in
  (with_proc p caller (fun pr -> { pr with Prog.body = pr.Prog.body @ [ Stmt.Call sid ] }), sid)

let remove_call p ~sid =
  let ns = Prog.n_sites p in
  if sid < 0 || sid >= ns then invalid_arg "Patch.remove_call: sid out of range";
  let fsid s = if s = sid then None else Some (if s > sid then s - 1 else s) in
  let sites =
    Array.init (ns - 1) (fun i ->
        let s = p.Prog.sites.(if i < sid then i else i + 1) in
        { s with Prog.sid = i })
  in
  let procs =
    Array.map
      (fun pr -> { pr with Prog.body = map_stmts ~fv:id_var ~fsid pr.Prog.body })
      p.Prog.procs
  in
  { p with Prog.sites; procs }

let retarget_call p ~sid ~callee =
  if sid < 0 || sid >= Prog.n_sites p then
    invalid_arg "Patch.retarget_call: sid out of range";
  check_pid p callee "retarget_call";
  if callee = p.Prog.main then invalid_arg "Patch.retarget_call: cannot call main";
  let s = Prog.site p sid in
  let new_callee = Prog.proc p callee in
  if Array.length s.Prog.args <> Array.length new_callee.Prog.formals then
    invalid_arg "Patch.retarget_call: arity mismatch";
  Array.iteri
    (fun i arg ->
      match (arg, Prog.formal_mode p new_callee i) with
      | Prog.Arg_ref _, Prog.By_ref | Prog.Arg_value _, Prog.By_value -> ()
      | Prog.Arg_ref _, Prog.By_value | Prog.Arg_value _, Prog.By_ref ->
        invalid_arg (Printf.sprintf "Patch.retarget_call: arg %d mode mismatch" i))
    s.Prog.args;
  let sites = Array.copy p.Prog.sites in
  sites.(sid) <- { s with Prog.callee };
  { p with Prog.sites }

let add_proc p ~name ~formals ~locals ~body =
  let nv = Prog.n_vars p in
  let pid = Prog.n_procs p in
  let main = Prog.proc p p.Prog.main in
  let formal_vids = Array.init (List.length formals) (fun i -> nv + i) in
  let local_vids =
    Array.init (List.length locals) (fun i -> nv + Array.length formal_vids + i)
  in
  let new_vars =
    List.mapi
      (fun i (vname, mode, vty) ->
        {
          Prog.vid = formal_vids.(i);
          vname;
          vty;
          kind = Prog.Formal { proc = pid; index = i; mode };
        })
      formals
    @ List.mapi
        (fun i (vname, vty) ->
          { Prog.vid = local_vids.(i); vname; vty; kind = Prog.Local pid })
        locals
  in
  let body = body ~formals:formal_vids ~locals:local_vids in
  forbid_calls "add_proc" body;
  let new_proc =
    {
      Prog.pid;
      pname = name;
      parent = Some p.Prog.main;
      level = main.Prog.level + 1;
      formals = formal_vids;
      locals = Array.to_list local_vids;
      nested = [];
      body;
    }
  in
  let procs = Array.append p.Prog.procs [| new_proc |] in
  procs.(p.Prog.main) <-
    { main with Prog.nested = main.Prog.nested @ [ pid ] };
  ({ p with Prog.vars = Array.append p.Prog.vars (Array.of_list new_vars); procs }, pid)

let remove_proc p ~pid =
  check_pid p pid "remove_proc";
  if pid = p.Prog.main then invalid_arg "Patch.remove_proc: cannot remove main";
  let pr = Prog.proc p pid in
  if pr.Prog.nested <> [] then
    invalid_arg "Patch.remove_proc: procedure has nested procedures";
  Prog.iter_sites p (fun s ->
      if s.Prog.callee = pid then invalid_arg "Patch.remove_proc: procedure is still called";
      if s.Prog.caller = pid then
        invalid_arg "Patch.remove_proc: procedure body contains call sites");
  let nv = Prog.n_vars p in
  let dead = Array.make nv false in
  Array.iter (fun vid -> dead.(vid) <- true) pr.Prog.formals;
  List.iter (fun vid -> dead.(vid) <- true) pr.Prog.locals;
  let vid_map = Array.make nv (-1) in
  let next = ref 0 in
  for v = 0 to nv - 1 do
    if not dead.(v) then begin
      vid_map.(v) <- !next;
      incr next
    end
  done;
  let fv v =
    let v' = vid_map.(v) in
    (* Visibility means no surviving body can mention a dead variable. *)
    assert (v' >= 0);
    v'
  in
  let fp q = if q > pid then q - 1 else q in
  let vars =
    Array.of_list
      (List.filter_map
         (fun (v : Prog.var) ->
           if dead.(v.Prog.vid) then None
           else
             Some
               {
                 v with
                 Prog.vid = vid_map.(v.Prog.vid);
                 kind =
                   (match v.Prog.kind with
                   | Prog.Global -> Prog.Global
                   | Prog.Local q -> Prog.Local (fp q)
                   | Prog.Formal f -> Prog.Formal { f with proc = fp f.proc });
               })
         (Array.to_list p.Prog.vars))
  in
  let procs =
    Array.of_list
      (List.filter_map
         (fun (q : Prog.proc) ->
           if q.Prog.pid = pid then None
           else
             Some
               {
                 q with
                 Prog.pid = fp q.Prog.pid;
                 parent = Option.map fp q.Prog.parent;
                 formals = Array.map fv q.Prog.formals;
                 locals = List.map fv q.Prog.locals;
                 nested = List.filter_map (fun c -> if c = pid then None else Some (fp c)) q.Prog.nested;
                 body = map_stmts ~fv ~fsid:keep_sid q.Prog.body;
               })
         (Array.to_list p.Prog.procs))
  in
  let sites =
    Array.map
      (fun (s : Prog.site) ->
        {
          s with
          Prog.caller = fp s.Prog.caller;
          callee = fp s.Prog.callee;
          args =
            Array.map
              (fun arg ->
                match arg with
                | Prog.Arg_ref lv -> Prog.Arg_ref (map_lvalue fv lv)
                | Prog.Arg_value e -> Prog.Arg_value (map_expr fv e))
              s.Prog.args;
        })
      p.Prog.sites
  in
  { p with Prog.vars; procs; sites; main = fp p.Prog.main }
