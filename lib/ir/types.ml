type t =
  | Int
  | Bool
  | Array of int list
  | Ptr of t

let rec equal a b =
  match (a, b) with
  | Int, Int | Bool, Bool -> true
  | Array d1, Array d2 -> List.length d1 = List.length d2 && List.for_all2 ( = ) d1 d2
  | Ptr a, Ptr b -> equal a b
  | (Int | Bool | Array _ | Ptr _), _ -> false

let rank = function
  | Int | Bool | Ptr _ -> 0
  | Array dims -> List.length dims

let is_array = function
  | Array _ -> true
  | Int | Bool | Ptr _ -> false

let is_ptr = function
  | Ptr _ -> true
  | Int | Bool | Array _ -> false

(* Pointer nesting depth: [int] has depth 0, [ptr of int] depth 1, ... *)
let rec ptr_depth = function
  | Ptr t -> 1 + ptr_depth t
  | Int | Bool | Array _ -> 0

(* Strip [n] levels of pointer; [None] if the type is not that deep. *)
let rec deref n t =
  if n = 0 then Some t
  else
    match t with
    | Ptr t -> deref (n - 1) t
    | Int | Bool | Array _ -> None

let rec pp ppf = function
  | Int -> Format.pp_print_string ppf "int"
  | Bool -> Format.pp_print_string ppf "bool"
  | Array dims ->
    Format.fprintf ppf "array[%a] of int"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_int)
      dims
  | Ptr t -> Format.fprintf ppf "ptr of %a" pp t

let to_string t = Format.asprintf "%a" pp t
