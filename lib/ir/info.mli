(** Precomputed per-program set views.

    The paper's equations are stated over the sets [LOCAL(p)],
    [GLOBAL], and visibility; this module materialises them as bit
    vectors over variable ids, once, so that every solver (new
    algorithm, baselines, test oracle) shares identical inputs. *)

type t

val make : Prog.t -> t

val prog : t -> Prog.t

val with_prog : t -> Prog.t -> t
(** O(1) re-association with a structurally identical program — same
    variable/procedure tables, possibly different statement bodies or
    site table.  The incremental engine uses this to reuse the set
    views across body- and call-shape-preserving edits; passing a
    program whose declarations differ invalidates every set in [t]. *)

val n_vars : t -> int

val local : t -> int -> Bitvec.t
(** [LOCAL(p)]: formals and locals declared by procedure [p].  For the
    main procedure this excludes program-level (global) variables.  Do
    not mutate. *)

val non_local : t -> int -> Bitvec.t
(** Complement of [local] within the variable universe — the set the
    corrected equation (4) intersects with.  Do not mutate. *)

val global : t -> Bitvec.t
(** All program-level variables.  Do not mutate. *)

val visible : t -> int -> Bitvec.t
(** Variables visible inside procedure [p]: globals plus everything
    declared by [p] or a lexical ancestor.  Do not mutate. *)

val var_level : t -> int -> int
(** Declaration nesting level of a variable (0 for globals). *)

val level_at_most : t -> int -> Bitvec.t
(** Variables declared at nesting level [<= l] — the variable universe
    of the level-[l] problem in the multi-level algorithm (§4).  Do not
    mutate. *)

val fresh : t -> Bitvec.t
(** A new empty vector over the variable universe. *)

val fold_up_nesting : t -> Bitvec.t array -> Bitvec.t array
(** [fold_up_nesting info sets] applies the §3.3 nesting extension to a
    per-procedure family of variable sets: bottom-up over the nesting
    tree, [result(p) = sets(p) ∪ ⋃_{q ∈ Nest(p)} (result(q) ∖
    LOCAL(q))].  Fresh vectors; the input is not mutated.  Both [IMOD]
    and [IMOD+] (and their [USE] analogues) are closed with this. *)
