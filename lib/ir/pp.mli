(** Pretty-printer from resolved programs back to MiniProc source.

    The output is valid MiniProc concrete syntax, re-parsable by the
    front end — the round-trip [parse ∘ print = id] (up to ids) is a
    test-suite invariant, and the workload generators use this printer
    to exercise the whole front end on large synthetic programs.

    Where a declaration shadows an outer name the printed name is the
    declared one; MiniProc scoping rules make the reparse resolve it to
    the same declaration. *)

val pp_expr : Prog.t -> Format.formatter -> Expr.t -> unit
val pp_lvalue : Prog.t -> Format.formatter -> Expr.lvalue -> unit
val pp_stmt : Prog.t -> Format.formatter -> Stmt.t -> unit
val pp_proc : Prog.t -> Format.formatter -> Prog.proc -> unit

val pp_program : Format.formatter -> Prog.t -> unit
(** The whole program, main block last. *)

val to_string : Prog.t -> string

val var_name : Prog.t -> int -> string
(** Display name of a variable: its source name. *)

val qualified_var_name : Prog.t -> int -> string
(** The name as reports print it: bare for globals, [proc.x]
    otherwise. *)

val proc_name : Prog.t -> int -> string

val pp_var_set : Prog.t -> Format.formatter -> Bitvec.t -> unit
(** Print a variable-id bit vector as [{name, name, ...}] with names
    qualified by owner ([proc.x]) when not global, ascending by id —
    handy in analysis reports and test diagnostics. *)
