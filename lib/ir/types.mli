(** MiniProc value types.

    MiniProc is the small Pascal/Fortran-flavoured language this
    reproduction analyzes: integer and boolean scalars plus
    multi-dimensional integer arrays (the payload of §6's regular
    section analysis). *)

type t =
  | Int
  | Bool
  | Array of int list
      (** [Array dims] — one extent per dimension, each positive.
          Element type is always [Int]. *)
  | Ptr of t  (** Typed pointer to a scalar or pointer cell. *)

val equal : t -> t -> bool

val rank : t -> int
(** Number of array dimensions; 0 for scalars. *)

val is_array : t -> bool
val is_ptr : t -> bool

val ptr_depth : t -> int
(** Pointer nesting depth: 0 for non-pointers, [1 + ptr_depth t] for
    [Ptr t]. *)

val deref : int -> t -> t option
(** [deref n t] strips [n] levels of [Ptr]; [None] if [t] is not that
    deep. *)

val pp : Format.formatter -> t -> unit
(** Concrete MiniProc syntax: [int], [bool],
    [array[d1, d2] of int], [ptr of int]. *)

val to_string : t -> string
