type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Gt | Ge | Eq | Ne | And | Or
type unop = Neg | Not

type t =
  | Int of int
  | Bool of bool
  | Var of int
  | Index of int * t list
  | Binop of binop * t * t
  | Unop of unop * t
  | Addr of int  (** address of a scalar variable: [&x] *)
  | Deref of int * int  (** [Deref (p, d)]: [d]-fold dereference [*...*p], d >= 1 *)
  | New of Types.t  (** [new T]: fresh heap cell, value has type [ptr of T] *)

type lvalue =
  | Lvar of int
  | Lindex of int * t list
  | Lderef of int * int  (** write through [d] dereferences of variable [p] *)

let lvalue_base = function
  | Lvar v | Lindex (v, _) | Lderef (v, _) -> v

module Int_set = Set.Make (Int)

let rec add_vars acc = function
  | Int _ | Bool _ | New _ -> acc
  | Var v | Addr v | Deref (v, _) -> Int_set.add v acc
  | Index (a, idx) -> List.fold_left add_vars (Int_set.add a acc) idx
  | Binop (_, l, r) -> add_vars (add_vars acc l) r
  | Unop (_, e) -> add_vars acc e

let vars e = Int_set.elements (add_vars Int_set.empty e)

let lvalue_index_vars = function
  | Lvar _ -> []
  | Lindex (_, idx) ->
    Int_set.elements (List.fold_left add_vars Int_set.empty idx)
  | Lderef (p, _) -> [ p ]

let rec equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Bool x, Bool y -> x = y
  | Var x, Var y -> x = y
  | Index (x, xi), Index (y, yi) ->
    x = y && List.length xi = List.length yi && List.for_all2 equal xi yi
  | Binop (o1, l1, r1), Binop (o2, l2, r2) -> o1 = o2 && equal l1 l2 && equal r1 r2
  | Unop (o1, e1), Unop (o2, e2) -> o1 = o2 && equal e1 e2
  | Addr x, Addr y -> x = y
  | Deref (x, dx), Deref (y, dy) -> x = y && dx = dy
  | New t1, New t2 -> Types.equal t1 t2
  | (Int _ | Bool _ | Var _ | Index _ | Binop _ | Unop _ | Addr _ | Deref _ | New _), _
    ->
    false

let equal_lvalue a b =
  match (a, b) with
  | Lvar x, Lvar y -> x = y
  | Lindex (x, xi), Lindex (y, yi) ->
    x = y && List.length xi = List.length yi && List.for_all2 equal xi yi
  | Lderef (x, dx), Lderef (y, dy) -> x = y && dx = dy
  | (Lvar _ | Lindex _ | Lderef _), _ -> false

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "=="
    | Ne -> "!="
    | And -> "and"
    | Or -> "or")

let pp_unop ppf op =
  Format.pp_print_string ppf
    (match op with
    | Neg -> "-"
    | Not -> "not")

let binop_precedence = function
  | Or -> 1
  | And -> 2
  | Lt | Le | Gt | Ge | Eq | Ne -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5
