(** A reusable pool of worker domains executing task batches.

    [create ~jobs] sizes the pool at [jobs] workers; the [jobs - 1]
    worker domains spawn lazily, on the first batch with more than one
    task (so a pool that only ever sees sequential work costs
    nothing); [run] publishes an array of tasks, participates in
    executing them on the calling domain, and returns once every task
    has finished.  Tasks within a batch run concurrently in unspecified
    order, so they must write disjoint state; consecutive batches are
    totally ordered — the batch join is a synchronisation point, so
    every write made by a task (result arrays, sharded {!Obs.Metric}
    counters) happens-before anything the caller does after [run]
    returns.  This is exactly the barrier discipline the
    condensation-wavefront scheduler ({!Wavefront}) needs: one batch
    per topological level.

    Counters [par.tasks] and [par.batches] record scheduling volume
    (per parallel batch; the [jobs = 1] in-line path counts nothing). *)

type t

val create : jobs:int -> t
(** A pool of [max 1 jobs] total workers (the caller counts as worker
    0).  The [jobs - 1] worker domains are not spawned here but on the
    first {!run} whose batch has two or more tasks.  Call {!shutdown}
    when done; a pool whose owner exits without shutdown leaves its
    domains blocked on the queue, which is safe but unjoined. *)

val jobs : t -> int
(** Total parallelism, caller included.  Task slot indices are
    [0 .. jobs t - 1]. *)

val spawned : t -> bool
(** Whether the worker domains have started — i.e. whether any batch
    so far actually had parallelism to exploit.  Observability only. *)

val run : t -> (int -> unit) array -> unit
(** [run t tasks] executes every task and returns when all are done.
    Each task receives the {e slot} of the worker running it — a stable
    index in [0 .. jobs t - 1] — for indexing per-worker scratch
    state.  If tasks raise, one of the exceptions is re-raised in the
    caller after the whole batch has drained.  With [jobs t = 1], or
    for a single-task batch, the tasks simply run in order on the
    calling domain (a single-task batch still counts towards
    [par.tasks]/[par.batches]).  Not reentrant: tasks must not call
    [run] on their own pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val effective_jobs : int -> int
(** The CLI convention: [0] means [Domain.recommended_domain_count ()],
    anything else is clamped to at least 1. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f]: applies {!effective_jobs}, then runs [f None]
    when the result is 1 (callers take their unchanged sequential
    path), or [f (Some pool)] with shutdown guaranteed afterwards. *)
