(** A reusable pool of worker domains executing task batches.

    [create ~jobs] spawns [jobs - 1] worker domains (none for
    [jobs <= 1]); [run] publishes an array of tasks, participates in
    executing them on the calling domain, and returns once every task
    has finished.  Tasks within a batch run concurrently in unspecified
    order, so they must write disjoint state; consecutive batches are
    totally ordered — the batch join is a synchronisation point, so
    every write made by a task (result arrays, sharded {!Obs.Metric}
    counters) happens-before anything the caller does after [run]
    returns.  This is exactly the barrier discipline the
    condensation-wavefront scheduler ({!Wavefront}) needs: one batch
    per topological level.

    Counters [par.tasks] and [par.batches] record scheduling volume
    (per parallel batch; the [jobs = 1] in-line path counts nothing). *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] total workers (the caller counts as
    worker 0, so [jobs - 1] domains are spawned).  Call {!shutdown}
    when done; a pool whose owner exits without shutdown leaves its
    domains blocked on the queue, which is safe but unjoined. *)

val jobs : t -> int
(** Total parallelism, caller included.  Task slot indices are
    [0 .. jobs t - 1]. *)

val run : t -> (int -> unit) array -> unit
(** [run t tasks] executes every task and returns when all are done.
    Each task receives the {e slot} of the worker running it — a stable
    index in [0 .. jobs t - 1] — for indexing per-worker scratch
    state.  If tasks raise, one of the exceptions is re-raised in the
    caller after the whole batch has drained.  With [jobs t = 1] the
    tasks simply run in order on the calling domain.  Not reentrant:
    tasks must not call [run] on their own pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val effective_jobs : int -> int
(** The CLI convention: [0] means [Domain.recommended_domain_count ()],
    anything else is clamped to at least 1. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f]: applies {!effective_jobs}, then runs [f None]
    when the result is 1 (callers take their unchanged sequential
    path), or [f (Some pool)] with shutdown guaranteed afterwards. *)
