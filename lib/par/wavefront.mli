(** Condensation-wavefront scheduling.

    Both [findgmod] (Figure 2) and the RMOD pass (Figure 1) factor
    through a strongly-connected-component condensation whose
    reverse-topological {e levels} are embarrassingly parallel: a
    component only reads values of components it has edges into, all
    of which sit at strictly smaller levels.  The wavefront schedule
    evaluates level 0 (the sinks) first, then each successive level as
    one {!Pool} batch — the batch join is the barrier that makes every
    lower-level result (and its operation counts) visible.  Work
    {e inside} a component is left to the caller and stays sequential
    per task, which is what keeps parallel results bit-identical to
    the sequential one-pass (see docs/parallel.md). *)

type levels = {
  level : int array;  (** Per component. *)
  n_levels : int;
  by_level : int array array;
      (** Components of each level, ascending component id. *)
  max_width : int;
      (** Largest level population — the available parallelism. *)
}

val of_comp_succs : n_comps:int -> succs_of:(int -> int list) -> levels
(** Level a condensation given per-component successor lists.
    Component ids must be reverse-topological (every inter-component
    edge points to a smaller id — what {!Graphs.Scc.compute} and
    {!schedule} produce); duplicate edges and self-loops are ignored.
    [level.(c) = 1 + max] over successors, [0] at sinks.  O(N + E). *)

type schedule = {
  n_comps : int;
  comp : int array;  (** Component per node; [-1] for inactive nodes. *)
  entry : int array;
      (** Per component: the node at which a sequential Figure-2 DFS —
          [first_root] first, then index order — first enters the
          component.  Restarting a per-component traversal there
          reproduces the sequential visit order exactly. *)
  levels : levels;
}

val schedule :
  n:int ->
  ?active:(int -> bool) ->
  first_root:int ->
  succs:int array array ->
  unit ->
  schedule
(** Tarjan over the active subgraph in the sequential solver's exact
    visit order, plus the leveling of the resulting condensation.
    [succs] rows of inactive nodes are never read; edges to inactive
    nodes are skipped.  Graph work only — performs no bit-vector
    operations, so it adds nothing to the paper's step counts. *)

(** {1 Coarse plans}

    The plain per-level {!iter} pays one barrier per level and chunks
    by component count — too fine when the condensation is deep and
    narrow (long singleton runs) or when components differ wildly in
    cost.  A {!plan} coarsens both axes: consecutive singleton levels
    fuse into one sequential stage that runs inline on the caller (no
    barrier, no task), and each genuinely wide level is split into at
    most [2 * jobs] batches balanced by a caller-supplied cost
    estimate (e.g. {!Bitvec.live_estimate} of the seeds) instead of
    node count.  A plan whose stages are all sequential ([chain =
    true]) never touches the pool at all — combined with lazy domain
    spawn in {!Pool}, [--jobs N] on a chain-shaped program costs
    nothing. *)

type batch = { comps : int array; cost : int }

type stage =
  | Seq of int array
      (** A fused run of consecutive singleton levels, in level order;
          executed inline on the caller, without a barrier. *)
  | Par of batch array  (** One level, cost-balanced into batches. *)

type plan = {
  stages : stage array;
  n_levels : int;  (** Levels of the underlying {!levels}. *)
  fused_levels : int;  (** Singleton levels absorbed into [Seq] stages. *)
  n_batches : int;  (** Total batches across [Par] stages. *)
  mean_batch_cost : float;  (** Mean estimated cost per [Par] batch. *)
  chain : bool;
      (** No [Par] stage at all — the condensation is effectively a
          chain and parallel execution has nothing to win. *)
  max_width : int;  (** Copied from the underlying {!levels}. *)
}

val plan : levels -> jobs:int -> cost:(int -> int) -> plan
(** Build a coarse execution plan.  [cost c] estimates the work of
    component [c] (clamped to at least 1); batching is deterministic —
    heaviest-first into the lightest batch, ties by component id and
    batch index — so two runs over the same inputs produce the same
    plan regardless of pool size or machine. *)

val run_plan :
  Pool.t option -> plan -> f:(slot:int -> comp:int -> unit) -> unit
(** Execute a plan: [Seq] stages inline on the caller (slot 0), each
    [Par] stage as one {!Pool.run} batch with one task per cost
    batch.  The requirements on [f] match {!iter}; with [None], plain
    sequential iteration in stage order. *)

val iter :
  Pool.t option -> levels -> f:(slot:int -> comp:int -> unit) -> unit
(** Evaluate every component, level by level.  With a pool, each level
    is one task batch (components chunked a few per worker, ascending
    id); [f] must only write state owned by [comp] and only read state
    of strictly lower levels, plus per-[slot] scratch.  With [None],
    plain sequential iteration in level-then-id order. *)
