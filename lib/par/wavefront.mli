(** Condensation-wavefront scheduling.

    Both [findgmod] (Figure 2) and the RMOD pass (Figure 1) factor
    through a strongly-connected-component condensation whose
    reverse-topological {e levels} are embarrassingly parallel: a
    component only reads values of components it has edges into, all
    of which sit at strictly smaller levels.  The wavefront schedule
    evaluates level 0 (the sinks) first, then each successive level as
    one {!Pool} batch — the batch join is the barrier that makes every
    lower-level result (and its operation counts) visible.  Work
    {e inside} a component is left to the caller and stays sequential
    per task, which is what keeps parallel results bit-identical to
    the sequential one-pass (see docs/parallel.md). *)

type levels = {
  level : int array;  (** Per component. *)
  n_levels : int;
  by_level : int array array;
      (** Components of each level, ascending component id. *)
  max_width : int;
      (** Largest level population — the available parallelism. *)
}

val of_comp_succs : n_comps:int -> succs_of:(int -> int list) -> levels
(** Level a condensation given per-component successor lists.
    Component ids must be reverse-topological (every inter-component
    edge points to a smaller id — what {!Graphs.Scc.compute} and
    {!schedule} produce); duplicate edges and self-loops are ignored.
    [level.(c) = 1 + max] over successors, [0] at sinks.  O(N + E). *)

type schedule = {
  n_comps : int;
  comp : int array;  (** Component per node; [-1] for inactive nodes. *)
  entry : int array;
      (** Per component: the node at which a sequential Figure-2 DFS —
          [first_root] first, then index order — first enters the
          component.  Restarting a per-component traversal there
          reproduces the sequential visit order exactly. *)
  levels : levels;
}

val schedule :
  n:int ->
  ?active:(int -> bool) ->
  first_root:int ->
  succs:int array array ->
  unit ->
  schedule
(** Tarjan over the active subgraph in the sequential solver's exact
    visit order, plus the leveling of the resulting condensation.
    [succs] rows of inactive nodes are never read; edges to inactive
    nodes are skipped.  Graph work only — performs no bit-vector
    operations, so it adds nothing to the paper's step counts. *)

val iter :
  Pool.t option -> levels -> f:(slot:int -> comp:int -> unit) -> unit
(** Evaluate every component, level by level.  With a pool, each level
    is one task batch (components chunked a few per worker, ascending
    id); [f] must only write state owned by [comp] and only read state
    of strictly lower levels, plus per-[slot] scratch.  With [None],
    plain sequential iteration in level-then-id order. *)
