(* A reusable pool of worker domains executing task batches.  See
   pool.mli for the contract.  Stdlib only: Domain + Mutex/Condition.

   One mutex guards all shared state.  A batch is published by bumping
   [batch] and broadcasting [work]; workers (and the caller, which
   participates) claim tasks by advancing the [next] cursor under the
   mutex and run them with the mutex released.  The caller blocks on
   [donec] until [unfinished] reaches zero.  That join is the
   synchronisation point the rest of the repository relies on: every
   write a task made (result arrays, sharded Obs counters)
   happens-before anything the caller does after [run] returns. *)

let tasks_metric = Obs.Metric.counter "par.tasks"
let batches_metric = Obs.Metric.counter "par.batches"

type t = {
  jobs : int;
  mu : Mutex.t;
  work : Condition.t;  (* workers: a new batch is available *)
  donec : Condition.t;  (* caller: the current batch completed *)
  mutable tasks : (int -> unit) array;
  mutable next : int;
  mutable unfinished : int;
  mutable batch : int;
  mutable stop : bool;
  mutable error : exn option;
  mutable domains : unit Domain.t list;
  mutable spawned : bool;
}

let effective_jobs jobs =
  if jobs = 0 then Domain.recommended_domain_count () else max 1 jobs

let jobs t = t.jobs
let spawned t = t.spawned

(* Claim-and-run loop over the current batch.  Called with [t.mu] held;
   returns with it held. *)
let drain t slot =
  while t.next < Array.length t.tasks do
    let i = t.next in
    t.next <- i + 1;
    Mutex.unlock t.mu;
    (try t.tasks.(i) slot
     with e ->
       Mutex.lock t.mu;
       if t.error = None then t.error <- Some e;
       Mutex.unlock t.mu);
    Mutex.lock t.mu;
    t.unfinished <- t.unfinished - 1;
    if t.unfinished = 0 then Condition.broadcast t.donec
  done

let rec worker_loop t slot seen_batch =
  Mutex.lock t.mu;
  while (not t.stop) && t.batch = seen_batch do
    Condition.wait t.work t.mu
  done;
  if t.stop then Mutex.unlock t.mu
  else begin
    let b = t.batch in
    drain t slot;
    Mutex.unlock t.mu;
    worker_loop t slot b
  end

let create ~jobs =
  let jobs = max 1 jobs in
  {
    jobs;
    mu = Mutex.create ();
    work = Condition.create ();
    donec = Condition.create ();
    tasks = [||];
    next = 0;
    unfinished = 0;
    batch = 0;
    stop = false;
    error = None;
    domains = [];
    spawned = false;
  }

(* Worker domains spawn on the first batch that can actually use them.
   A pool whose every batch turns out to be sequential (singleton
   batches, or a chain-shaped condensation whose plan has no parallel
   stage at all — see Wavefront.plan) never pays domain startup. *)
let ensure_spawned t =
  if not t.spawned then begin
    t.spawned <- true;
    t.domains <-
      List.init (t.jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker_loop t (i + 1) t.batch))
  end

let run t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.jobs <= 1 then Array.iter (fun f -> f 0) tasks
  else if n = 1 then begin
    (* A one-task batch has no parallelism to exploit: run it on the
       caller, skipping both domain startup and the batch handshake. *)
    Obs.Metric.incr batches_metric;
    Obs.Metric.incr tasks_metric;
    tasks.(0) 0
  end
  else begin
    Obs.Metric.incr batches_metric;
    Obs.Metric.add tasks_metric n;
    ensure_spawned t;
    Mutex.lock t.mu;
    t.tasks <- tasks;
    t.next <- 0;
    t.unfinished <- n;
    t.batch <- t.batch + 1;
    Condition.broadcast t.work;
    drain t 0;
    while t.unfinished > 0 do
      Condition.wait t.donec t.mu
    done;
    t.tasks <- [||];
    let err = t.error in
    t.error <- None;
    Mutex.unlock t.mu;
    match err with Some e -> raise e | None -> ()
  end

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mu;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let jobs = effective_jobs jobs in
  if jobs <= 1 then f None
  else begin
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
  end
