(* Condensation-wavefront scheduling.  See wavefront.mli.

   Component ids come out of Tarjan in reverse topological order —
   every inter-component edge points from a larger id to a smaller one
   — so a single pass over components in increasing id sees each
   successor's level final: level(c) = 1 + max level over successors,
   0 at sinks.  Components sharing a level have no paths between them
   and are safe to evaluate concurrently; consecutive levels are
   separated by one Pool.run barrier. *)

type levels = {
  level : int array;
  n_levels : int;
  by_level : int array array;
  max_width : int;
}

let of_comp_succs ~n_comps ~succs_of =
  let level = Array.make n_comps 0 in
  for c = 0 to n_comps - 1 do
    List.iter
      (fun cd -> if cd <> c then level.(c) <- max level.(c) (level.(cd) + 1))
      (succs_of c)
  done;
  let n_levels = Array.fold_left (fun acc l -> max acc (l + 1)) 0 level in
  let width = Array.make (max 1 n_levels) 0 in
  Array.iter (fun l -> width.(l) <- width.(l) + 1) level;
  let by_level = Array.map (fun w -> Array.make w 0) width in
  let cursor = Array.make (max 1 n_levels) 0 in
  for c = 0 to n_comps - 1 do
    let l = level.(c) in
    by_level.(l).(cursor.(l)) <- c;
    cursor.(l) <- cursor.(l) + 1
  done;
  { level; n_levels; by_level; max_width = Array.fold_left max 0 width }

type schedule = {
  n_comps : int;
  comp : int array;
  entry : int array;
  levels : levels;
}

(* Plain Tarjan (graph work only, no bit-vector operations) replicating
   the exact visit order of the sequential findgmod: [first_root]
   first, then every remaining active node in index order, successors
   in the given array order.  Because of that, [entry.(c)] — the root
   at which component [c] closed — is precisely the first member of [c]
   the sequential one-pass enters, which is what makes the per-level
   re-runs of the solver bit- and operation-count-identical to it. *)
let schedule ~n ?(active = fun _ -> true) ~first_root ~succs () =
  let dfn = Array.make n 0 in
  let low = Array.make n 0 in
  let comp = Array.make n (-1) in
  let on_stack = Array.make n false in
  let tarjan_stack = ref [] in
  let next_dfn = ref 1 in
  let n_comps = ref 0 in
  let entry_rev = ref [] in
  let frame_node = Array.make (n + 1) 0 in
  let frame_next = Array.make (n + 1) 0 in
  let close_component v =
    let c = !n_comps in
    incr n_comps;
    entry_rev := v :: !entry_rev;
    let rec pop () =
      match !tarjan_stack with
      | [] -> assert false
      | u :: rest ->
        tarjan_stack := rest;
        on_stack.(u) <- false;
        comp.(u) <- c;
        if u <> v then pop ()
    in
    pop ()
  in
  let search root =
    if dfn.(root) = 0 then begin
      let sp = ref 0 in
      let push v =
        dfn.(v) <- !next_dfn;
        low.(v) <- !next_dfn;
        incr next_dfn;
        tarjan_stack := v :: !tarjan_stack;
        on_stack.(v) <- true;
        frame_node.(!sp) <- v;
        frame_next.(!sp) <- 0;
        incr sp
      in
      push root;
      while !sp > 0 do
        let v = frame_node.(!sp - 1) in
        let i = frame_next.(!sp - 1) in
        if i < Array.length succs.(v) then begin
          frame_next.(!sp - 1) <- i + 1;
          let q = succs.(v).(i) in
          if active q then
            if dfn.(q) = 0 then push q
            else if on_stack.(q) then low.(v) <- min low.(v) dfn.(q)
        end
        else begin
          decr sp;
          if low.(v) = dfn.(v) then close_component v;
          if !sp > 0 then begin
            let parent = frame_node.(!sp - 1) in
            low.(parent) <- min low.(parent) low.(v)
          end
        end
      done
    end
  in
  if first_root >= 0 && first_root < n && active first_root then search first_root;
  for v = 0 to n - 1 do
    if active v then search v
  done;
  let n_comps = !n_comps in
  let entry = Array.make (max 1 n_comps) 0 in
  List.iteri (fun i v -> entry.(n_comps - 1 - i) <- v) !entry_rev;
  (* Component adjacency (duplicates are harmless to the max-fold). *)
  let csuccs = Array.make (max 1 n_comps) [] in
  for v = 0 to n - 1 do
    let cs = comp.(v) in
    if cs >= 0 then
      Array.iter
        (fun q ->
          let cd = comp.(q) in
          if cd >= 0 && cd <> cs then csuccs.(cs) <- cd :: csuccs.(cs))
        succs.(v)
  done;
  let levels = of_comp_succs ~n_comps ~succs_of:(Array.get csuccs) in
  { n_comps; comp; entry; levels }

(* --- coarse plans: singleton-level fusion + cost-balanced batches --- *)

(* Scheduler-shape observability: how many singleton levels were fused
   away, and how often a pooled solve found the condensation to be an
   effective chain and downgraded to fully-inline execution (paying no
   barrier and — with lazy spawn — no domain startup at all). *)
let fused_levels_metric = Obs.Metric.counter "par.fused_levels"
let chain_downgrades_metric = Obs.Metric.counter "par.chain_downgrades"

type batch = { comps : int array; cost : int }
type stage = Seq of int array | Par of batch array

type plan = {
  stages : stage array;
  n_levels : int;
  fused_levels : int;
  n_batches : int;
  mean_batch_cost : float;
  chain : bool;
  max_width : int;
}

(* Deterministic LPT: heaviest component first (ties by ascending id,
   via stable sort over an id-ordered base), each into the currently
   lightest batch (ties by lowest batch index).  Batch count is capped
   at [2 * jobs]: enough slack to absorb cost-estimate error, coarse
   enough that per-batch scheduling overhead stays negligible. *)
let balance comps ~jobs ~cost =
  let width = Array.length comps in
  let n_batches = max 1 (min width (2 * jobs)) in
  let order = Array.init width (fun i -> i) in
  let costs = Array.map (fun c -> max 1 (cost c)) comps in
  Array.stable_sort (fun a b -> compare costs.(b) costs.(a)) order;
  let totals = Array.make n_batches 0 in
  let members = Array.make n_batches [] in
  Array.iter
    (fun i ->
      let best = ref 0 in
      for b = 1 to n_batches - 1 do
        if totals.(b) < totals.(!best) then best := b
      done;
      totals.(!best) <- totals.(!best) + costs.(i);
      members.(!best) <- i :: members.(!best))
    order;
  let batches =
    Array.init n_batches (fun b ->
        {
          comps = Array.of_list (List.rev_map (fun i -> comps.(i)) members.(b));
          cost = totals.(b);
        })
  in
  Array.of_list
    (List.filter (fun b -> Array.length b.comps > 0) (Array.to_list batches))

let plan levels ~jobs ~cost =
  let stages = ref [] in
  let pending = ref [] in
  let fused = ref 0 in
  let n_batches = ref 0 in
  let total_cost = ref 0 in
  let flush () =
    match !pending with
    | [] -> ()
    | singles ->
      stages := Seq (Array.of_list (List.rev singles)) :: !stages;
      pending := []
  in
  Array.iter
    (fun comps ->
      if Array.length comps = 1 then begin
        pending := comps.(0) :: !pending;
        incr fused
      end
      else begin
        flush ();
        let batches = balance comps ~jobs ~cost in
        n_batches := !n_batches + Array.length batches;
        Array.iter (fun b -> total_cost := !total_cost + b.cost) batches;
        stages := Par batches :: !stages
      end)
    levels.by_level;
  flush ();
  let stages = Array.of_list (List.rev !stages) in
  {
    stages;
    n_levels = levels.n_levels;
    fused_levels = !fused;
    n_batches = !n_batches;
    mean_batch_cost =
      (if !n_batches = 0 then 0.
       else float_of_int !total_cost /. float_of_int !n_batches);
    chain = Array.for_all (function Seq _ -> true | Par _ -> false) stages;
    max_width = levels.max_width;
  }

let run_plan pool plan ~f =
  let seq comps = Array.iter (fun c -> f ~slot:0 ~comp:c) comps in
  match pool with
  | None ->
    Array.iter
      (function
        | Seq comps -> seq comps
        | Par batches -> Array.iter (fun b -> seq b.comps) batches)
      plan.stages
  | Some pool ->
    Obs.Metric.add fused_levels_metric plan.fused_levels;
    if plan.chain then Obs.Metric.add chain_downgrades_metric 1;
    Array.iter
      (function
        | Seq comps ->
          (* Fused singleton run: inline on the caller, no barrier. *)
          seq comps
        | Par batches ->
          Pool.run pool
            (Array.map
               (fun b slot ->
                 Array.iter (fun c -> f ~slot ~comp:c) b.comps)
               batches))
      plan.stages

let iter pool levels ~f =
  match pool with
  | None ->
    Array.iter (fun comps -> Array.iter (fun c -> f ~slot:0 ~comp:c) comps)
      levels.by_level
  | Some pool ->
    let jobs = Pool.jobs pool in
    Array.iter
      (fun comps ->
        let width = Array.length comps in
        if width > 0 then begin
          (* A few chunks per worker balances heterogeneous component
             sizes without paying per-component scheduling. *)
          let chunk = max 1 ((width + (jobs * 4) - 1) / (jobs * 4)) in
          let n_tasks = (width + chunk - 1) / chunk in
          Pool.run pool
            (Array.init n_tasks (fun ti slot ->
                 let lo = ti * chunk in
                 let hi = min width (lo + chunk) in
                 for k = lo to hi - 1 do
                   f ~slot ~comp:comps.(k)
                 done))
        end)
      levels.by_level
