module Digraph = Graphs.Digraph
module Binding = Callgraph.Binding
module Prog = Ir.Prog

let passes_metric = Obs.Metric.counter "baseline.iterative.passes"

let rmod_passes (binding : Binding.t) ~imod =
  Obs.Span.with_ "baseline.iterative.rmod" @@ fun () ->
  let g = binding.Binding.graph in
  let n = Digraph.n_nodes g in
  let value = Array.make n false in
  for node = 0 to n - 1 do
    let vid = Binding.var binding node in
    let owner =
      match (Prog.var binding.Binding.prog vid).Prog.kind with
      | Prog.Formal { proc; _ } -> proc
      | Prog.Global | Prog.Local _ -> assert false
    in
    value.(node) <- Bitvec.get imod.(owner) vid
  done;
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr passes;
    Digraph.iter_edges g (fun _ src dst ->
        if value.(dst) && not value.(src) then begin
          value.(src) <- true;
          changed := true
        end)
  done;
  Obs.Metric.add passes_metric !passes;
  (value, !passes)

let rmod binding ~imod = fst (rmod_passes binding ~imod)

let gmod_passes info (call : Callgraph.Call.t) ~imod_plus =
  Obs.Span.with_ "baseline.iterative.gmod" @@ fun () ->
  let g = call.Callgraph.Call.graph in
  let gmod = Array.map Bitvec.copy imod_plus in
  let scratch = Bitvec.create (Ir.Info.n_vars info) in
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr passes;
    Digraph.iter_edges g (fun _ p q ->
        Bitvec.blit ~src:gmod.(q) ~dst:scratch;
        ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info q) ~dst:scratch);
        if Bitvec.union_into ~src:scratch ~dst:gmod.(p) then changed := true)
  done;
  Obs.Metric.add passes_metric !passes;
  (gmod, !passes)

let gmod info call ~imod_plus = fst (gmod_passes info call ~imod_plus)
