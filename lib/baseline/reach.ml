module Prog = Ir.Prog

let applicable prog = Prog.max_level prog <= 1

let gmod info (call : Callgraph.Call.t) ~imod_plus =
  let prog = call.Callgraph.Call.prog in
  if not (applicable prog) then
    invalid_arg "Reach.gmod: only defined for flat (two-level) programs";
  Obs.Span.with_ "baseline.reach.gmod" @@ fun () ->
  let g = call.Callgraph.Call.graph in
  let global = Ir.Info.global info in
  Array.init (Prog.n_procs prog) (fun p ->
      let result = Bitvec.copy imod_plus.(p) in
      let reachable = Graphs.Reach.from g p in
      Bitvec.iter
        (fun q ->
          if q <> p then begin
            let escaped = Bitvec.inter imod_plus.(q) global in
            ignore (Bitvec.union_into ~src:escaped ~dst:result)
          end)
        reachable;
      result)
