module Binding = Callgraph.Binding
module Prog = Ir.Prog
module Expr = Ir.Expr

let rmod (binding : Binding.t) ~imod =
  Obs.Span.with_ "baseline.swift.rmod" @@ fun () ->
  let prog = binding.Binding.prog in
  let nv = Prog.n_vars prog in
  let np = Prog.n_procs prog in
  (* RMOD(p) as a bit vector over the whole variable universe (the
     swift representation: one bit per formal in the program; unused
     positions stay zero). *)
  let value = Array.init np (fun _ -> Bitvec.create nv) in
  Prog.iter_vars prog (fun v ->
      if Prog.is_ref_formal v then begin
        match v.Prog.kind with
        | Prog.Formal { proc; _ } ->
          if Bitvec.get imod.(proc) v.Prog.vid then Bitvec.set value.(proc) v.Prog.vid
        | Prog.Global | Prog.Local _ -> assert false
      end);
  (* Per-site projection: if a callee formal bit is set, set the bit of
     the actual's base when that base is itself a by-ref formal (of
     whatever lexically enclosing procedure owns it). *)
  let scratch = Bitvec.create nv in
  let changed = ref true in
  while !changed do
    changed := false;
    Prog.iter_sites prog (fun s ->
        let callee = Prog.proc prog s.Prog.callee in
        Bitvec.blit ~src:value.(s.Prog.callee) ~dst:scratch;
        Array.iteri
          (fun i arg ->
            match arg with
            | Prog.Arg_value _ -> ()
            | Prog.Arg_ref lv ->
              let base = Expr.lvalue_base lv in
              if
                Prog.is_ref_formal (Prog.var prog base)
                && Bitvec.get scratch callee.Prog.formals.(i)
              then begin
                let owner =
                  match (Prog.var prog base).Prog.kind with
                  | Prog.Formal { proc; _ } -> proc
                  | Prog.Global | Prog.Local _ -> assert false
                in
                if not (Bitvec.get value.(owner) base) then begin
                  Bitvec.set value.(owner) base;
                  changed := true
                end
              end)
          s.Prog.args)
  done;
  value

let rmod_as_nodes binding ~imod =
  let value = rmod binding ~imod in
  let prog = binding.Binding.prog in
  Array.init (Binding.n_nodes binding) (fun node ->
      let vid = Binding.var binding node in
      let owner =
        match (Prog.var prog vid).Prog.kind with
        | Prog.Formal { proc; _ } -> proc
        | Prog.Global | Prog.Local _ -> assert false
      in
      Bitvec.get value.(owner) vid)
