module Prog = Ir.Prog

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

type highlight = {
  pure_procs : int list;
  inflated_sites : int list;
}

let no_highlight = { pure_procs = []; inflated_sites = [] }

let call_graph ?(highlight = no_highlight) (t : Call.t) =
  let buf = Buffer.create 1024 in
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  b "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  Prog.iter_procs t.Call.prog (fun pr ->
      let main = pr.Prog.pid = t.Call.prog.Prog.main in
      let pure = List.mem pr.Prog.pid highlight.pure_procs in
      let attrs =
        match (main, pure) with
        | false, false -> ""
        | true, false -> ", style=bold"
        | false, true -> ", style=filled, fillcolor=palegreen"
        | true, true -> ", style=\"bold,filled\", fillcolor=palegreen"
      in
      b "  p%d [label=\"%s\\nlevel %d\"%s];\n" pr.Prog.pid
        (escape pr.Prog.pname) pr.Prog.level attrs);
  Prog.iter_sites t.Call.prog (fun s ->
      b "  p%d -> p%d [label=\"s%d\"%s];\n" s.Prog.caller s.Prog.callee
        s.Prog.sid
        (if List.mem s.Prog.sid highlight.inflated_sites then
           ", color=red, fontcolor=red"
         else ""));
  b "}\n";
  Buffer.contents buf

let binding_graph (t : Binding.t) =
  let prog = t.Binding.prog in
  let buf = Buffer.create 1024 in
  let b fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  b "digraph binding {\n  rankdir=LR;\n  node [shape=ellipse, fontname=\"monospace\"];\n";
  for node = 0 to Binding.n_nodes t - 1 do
    let vid = Binding.var t node in
    let v = Prog.var prog vid in
    let owner =
      match Prog.var_owner v with
      | Some pid -> (Prog.proc prog pid).Prog.pname
      | None -> "?"
    in
    b "  f%d [label=\"%s.%s\"];\n" node (escape owner) (escape v.Prog.vname)
  done;
  Graphs.Digraph.iter_edges t.Binding.graph (fun e src dst ->
      let info = t.Binding.edges.(e) in
      b "  f%d -> f%d [label=\"s%d\"%s];\n" src dst info.Binding.site
        (if info.Binding.via_element then ", style=dashed" else ""));
  b "}\n";
  Buffer.contents buf

let write_file path dot =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc dot)
