(** The binding multi-graph [β = (N_β, E_β)] of §3.1 — the paper's new
    data structure.

    Nodes stand for by-reference formal parameters (written [fp_i^p] in
    the paper).  There is one edge per {e binding event}: call site [s]
    in a procedure binds actual [a] to the by-reference formal [f] of
    the callee, and [a] is itself (an element of) a by-reference formal
    of some procedure — by the §3.3 scoping rule, not necessarily the
    innermost procedure containing [s], just a lexically visible one.
    The edge runs from the {e actual's} formal to the {e callee's}
    formal, matching equation (6)'s right-hand sides: [RMOD] flows
    edge-backwards, from callee to caller.

    By-value formals never carry modifications out of their procedure,
    so they are not nodes; a by-value actual generates no edge (its
    evaluation is a local {!Frontend.Local} use, not a binding).

    A call site passing only non-formal variables contributes no edges,
    and the graph is a multi-graph: the same formal pair may be linked
    once per site that binds them. *)

type edge_info = {
  site : int;  (** The call site this binding event belongs to. *)
  arg_pos : int;  (** Which argument position (0-based). *)
  via_element : bool;
      (** [true] when the actual is an array {e element} [A[i]] of a
          formal array [A] rather than the whole variable — the case
          where §6's binding function [g_e] is not the identity.  At
          the bit granularity of §3, the edge still (conservatively)
          links [A] to the callee's formal. *)
}

type t = {
  prog : Ir.Prog.t;
  graph : Graphs.Digraph.t;  (** Nodes are β-node indices. *)
  node_of_var : int array;  (** vid → β node, or [-1]. *)
  var_of_node : int array;  (** β node → vid. *)
  edges : edge_info array;  (** Indexed by β edge id. *)
}

val build : ?deref:(int -> int -> int list) -> Ir.Prog.t -> t
(** Build the β binding multigraph.  [deref p d] lists the variables a
    [d]-fold dereference of [p] may name (from the points-to solution);
    a dereference actual contributes one binding edge per by-ref-formal
    target.  Defaults to the empty projection — exact when the program
    has no pointers.  Linear in the size of the program's site table
    (§3.1). *)

val n_nodes : t -> int
val n_edges : t -> int

val node : t -> int -> int
(** β node of a by-reference formal's vid.  Raises [Invalid_argument]
    for other variables. *)

val node_opt : t -> int -> int option

val var : t -> int -> int
(** vid of a β node. *)

val edges_by_level : t -> (int * int) list
(** [(level, count)] per nesting level [1 .. max 1 dP]: how many β
    edges bind into a formal whose owner is declared at that level.
    Levels beyond 1 only appear in nested (Pascal-style) programs;
    [sidefx stats] and [sidefx profile] print this so graph-shape
    vocabulary agrees across commands. *)

val pp_stats : Format.formatter -> t -> unit
(** Sizes of β next to the sizes of [C], with the paper's [µ_f]/[µ_a]
    averages and the resulting blow-up factor [k] (§3.1's size
    comparison). *)

val mu_f : Ir.Prog.t -> float
(** Average number of formals per procedure (main excluded). *)

val mu_a : Ir.Prog.t -> float
(** Average number of actuals per call site. *)
