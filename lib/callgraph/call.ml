module Digraph = Graphs.Digraph
module Prog = Ir.Prog

type t = {
  prog : Prog.t;
  graph : Digraph.t;
}

let nodes_metric = Obs.Metric.gauge "callgraph.call.nodes"
let edges_metric = Obs.Metric.gauge "callgraph.call.edges"

let build prog =
  Obs.Span.with_ "callgraph.call" @@ fun () ->
  let b = Digraph.Builder.create ~nodes:(Prog.n_procs prog) () in
  Prog.iter_sites prog (fun s ->
      let e = Digraph.Builder.add_edge b ~src:s.Prog.caller ~dst:s.Prog.callee in
      (* Site ids are dense and iterated in order, so edge id = sid. *)
      assert (e = s.Prog.sid));
  let t = { prog; graph = Digraph.Builder.freeze b } in
  Obs.Metric.set nodes_metric (Digraph.n_nodes t.graph);
  Obs.Metric.set edges_metric (Digraph.n_edges t.graph);
  t

let site_of_edge t e = Prog.site t.prog e

let reachable_from_main t = Graphs.Reach.from t.graph t.prog.Prog.main

let pp_stats ppf t =
  let scc = Graphs.Scc.compute t.graph in
  Format.fprintf ppf "%d procedures, %d call sites, %d SCCs"
    (Digraph.n_nodes t.graph) (Digraph.n_edges t.graph) scc.Graphs.Scc.n_comps
