module Digraph = Graphs.Digraph
module Prog = Ir.Prog
module Expr = Ir.Expr

type edge_info = {
  site : int;
  arg_pos : int;
  via_element : bool;
}

type t = {
  prog : Prog.t;
  graph : Digraph.t;
  node_of_var : int array;
  var_of_node : int array;
  edges : edge_info array;
}

let nodes_metric = Obs.Metric.gauge "callgraph.beta.nodes"
let edges_metric = Obs.Metric.gauge "callgraph.beta.edges"

let build ?(deref = fun _ _ -> []) prog =
  Obs.Span.with_ "callgraph.binding" @@ fun () ->
  let nv = Prog.n_vars prog in
  let node_of_var = Array.make nv (-1) in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  Prog.iter_vars prog (fun v ->
      if Prog.is_ref_formal v then begin
        node_of_var.(v.Prog.vid) <- !n_nodes;
        nodes := v.Prog.vid :: !nodes;
        incr n_nodes
      end);
  let var_of_node = Array.of_list (List.rev !nodes) in
  let b = Digraph.Builder.create ~nodes:!n_nodes () in
  let edges = ref [] in
  Prog.iter_sites prog (fun s ->
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun arg_pos arg ->
          match arg with
          | Prog.Arg_value _ -> ()
          | Prog.Arg_ref lv ->
            let dst = node_of_var.(callee.Prog.formals.(arg_pos)) in
            assert (dst >= 0);
            let add_edge ~src ~via_element =
              if src >= 0 then begin
                ignore (Digraph.Builder.add_edge b ~src ~dst);
                edges := { site = s.Prog.sid; arg_pos; via_element } :: !edges
              end
            in
            (match lv with
            | Expr.Lvar base -> add_edge ~src:node_of_var.(base) ~via_element:false
            | Expr.Lindex (base, _) ->
              add_edge ~src:node_of_var.(base) ~via_element:true
            | Expr.Lderef (ptr, d) ->
              (* The actual names whatever cell [*...*ptr] reaches: one
                 binding event per by-ref formal the points-to
                 projection says it may name. *)
              List.iter
                (fun target ->
                  add_edge ~src:node_of_var.(target) ~via_element:true)
                (deref ptr d)))
        s.Prog.args);
  let t =
    {
      prog;
      graph = Digraph.Builder.freeze b;
      node_of_var;
      var_of_node;
      edges = Array.of_list (List.rev !edges);
    }
  in
  Obs.Metric.set nodes_metric (Digraph.n_nodes t.graph);
  Obs.Metric.set edges_metric (Digraph.n_edges t.graph);
  t

let n_nodes t = Digraph.n_nodes t.graph
let n_edges t = Digraph.n_edges t.graph

let node t vid =
  let n = t.node_of_var.(vid) in
  if n < 0 then
    invalid_arg
      (Printf.sprintf "Binding.node: %s is not a by-reference formal"
         (Prog.var t.prog vid).Prog.vname);
  n

let node_opt t vid =
  let n = t.node_of_var.(vid) in
  if n < 0 then None else Some n

let var t node = t.var_of_node.(node)

let edges_by_level t =
  let dp = max 1 (Prog.max_level t.prog) in
  let counts = Array.make (dp + 1) 0 in
  Array.iter
    (fun e ->
      let s = Prog.site t.prog e.site in
      let lvl = (Prog.proc t.prog s.Prog.callee).Prog.level in
      counts.(lvl) <- counts.(lvl) + 1)
    t.edges;
  List.init dp (fun i -> (i + 1, counts.(i + 1)))

let mu_f prog =
  let total = ref 0 and count = ref 0 in
  Prog.iter_procs prog (fun pr ->
      if pr.Prog.pid <> prog.Prog.main then begin
        total := !total + Array.length pr.Prog.formals;
        incr count
      end);
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

let mu_a prog =
  let total = ref 0 and count = ref 0 in
  Prog.iter_sites prog (fun s ->
      total := !total + Array.length s.Prog.args;
      incr count);
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count

let pp_stats ppf t =
  let np = Prog.n_procs t.prog and ns = Prog.n_sites t.prog in
  let nb = n_nodes t and eb = n_edges t in
  let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den in
  Format.fprintf ppf
    "C: %d nodes, %d edges; beta: %d nodes, %d edges; mu_f = %.2f, mu_a = %.2f; \
     size ratio N_beta/N_C = %.2f, E_beta/E_C = %.2f"
    np ns nb eb (mu_f t.prog) (mu_a t.prog) (ratio nb np) (ratio eb ns)
