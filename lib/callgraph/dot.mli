(** Graphviz (DOT) export of the two multi-graphs, for inspecting what
    the analysis actually runs on.

    Call multi-graph: one node per procedure (labelled with name and
    nesting level), one edge per call site (labelled with the site id).
    Binding multi-graph: one node per by-reference formal (labelled
    [proc.formal]), one edge per binding event (labelled with its site;
    dashed when the binding passes an array element). *)

type highlight = {
  pure_procs : int list;
      (** Pids drawn filled green — procedures with no global side
          effects (the lint engine's [pure-proc] verdict). *)
  inflated_sites : int list;
      (** Site ids drawn red — call edges whose [MOD] was strictly
          enlarged by the alias closure ([alias-inflation]). *)
}
(** Analysis-derived decoration for {!call_graph}.  The fields are
    supplied by [Lint.Engine.highlight]; this module only knows how to
    colour, not why. *)

val no_highlight : highlight
(** Both lists empty — the undecorated graph. *)

val call_graph : ?highlight:highlight -> Call.t -> string

val binding_graph : Binding.t -> string

val write_file : string -> string -> unit
(** [write_file path dot] — tiny convenience used by the CLI. *)
