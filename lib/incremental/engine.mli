(** The incremental driver: a program plus its last {!Core.Analyze.t},
    updated in place as {!Edit} values arrive.

    The contract is the one the test suite enforces: after every edit,
    {!analysis} is {e bit-identical} to [Core.Analyze.run] on the
    edited program (the per-result operation counters aside).  What the
    driver buys is locality:

    - a {b body} edit reruns local analysis for the one edited
      procedure, refolds the nesting cone above it, pushes flipped seed
      bits through the cached β condensation ({!Core.Rmod.resolve}),
      recomputes [IMOD+] for the touched callers, and reruns [findgmod]
      only on the call-graph condensation ancestors of procedures whose
      seeds changed ({!Core.Gmod.solve_region}) — everything else is
      shared with the previous analysis;
    - a {b call-shape} edit additionally rebuilds the two multi-graphs
      and the alias sets (site-table products, linear in the site
      count) and re-solves β in full (cheap single-word booleans), but
      still confines the bit-vector [GMOD]/[GUSE] work to the ancestor
      cone of the edited caller;
    - a {b structural} edit (procedure added/removed — every id
      renumbered), a dirty cone larger than [threshold × n_procs], or
      a program nesting deeper than one level at the [GMOD] stage,
      falls back to a full [Core.Analyze.run].

    The engine never validates the edited program (that would cost the
    [O(N)] it just avoided); callers that accept untrusted edit scripts
    should run {!Ir.Validate} themselves.

    Telemetry: counters [incremental.edits],
    [incremental.procs_resolved] (per-side [GMOD]/[GUSE] procedure
    re-solves), [incremental.full_fallbacks]; every {!apply} runs under
    an [incremental.resolve] span and records its wall-clock latency in
    the [incremental.edit_s] histogram ({!Obs.Metric.histogram}). *)

type t

type outcome = {
  fallback : string option;
      (** [Some reason] when the edit took the full-re-analysis path. *)
  procs_resolved : int;
      (** Procedures whose [GMOD] or [GUSE] vector was recomputed (each
          side counted; [2 × n_procs] for a full run). *)
}

val create :
  ?threshold:float -> ?pool:Par.Pool.t -> ?provenance:bool -> Ir.Prog.t -> t
(** Analyze from scratch and prime the caches.  [threshold] (default
    [0.5]) is the dirty-cone fraction above which {!apply} abandons the
    region path.  [?pool], when given, is retained for the engine's
    lifetime and reused by the initial analysis, every full-fallback
    re-analysis, and the region [GMOD]/[GUSE] cone re-solves; the pool
    remains owned by the caller (the engine never shuts it down).
    [?provenance] (default [false]) keeps a {!Core.Provenance}
    derivation forest alive across edits: after every {!apply} the
    forest is rebuilt against the updated solutions (a post-pass
    linear in the fact count — the cone re-solve itself is unchanged),
    so witnesses never go stale. *)

val of_analysis : ?threshold:float -> ?pool:Par.Pool.t -> Core.Analyze.t -> t
(** Adopt an already-solved batch result instead of re-running it:
    only the caches are built (local set re-derivation plus the cached
    β solutions — no bit-vector [GMOD] work).  The adopted record is
    treated as read-only: until the first {!apply} the engine answers
    queries straight from it, and every edit replaces the engine's
    analysis wholesale, so several engines may adopt one shared record
    concurrently (the analysis server gives each client session its
    own engine over one registry entry this way).  Provenance upkeep
    is inherited from the record: it stays live across edits iff
    [analysis.provenance] is [Some _]. *)

val apply : t -> Edit.t -> outcome
(** Apply one edit and bring {!analysis} up to date.  Raises
    [Invalid_argument] (from {!Ir.Patch}) on structurally impossible
    edits, leaving the engine untouched. *)

val analysis : t -> Core.Analyze.t
val prog : t -> Ir.Prog.t

val edits_applied : t -> int

val lint : ?rules:Lint.Rule.t list -> t -> Lint.Diagnostic.t list
(** Findings for the current {!analysis} (default: every rule), at
    dummy source positions — edits renumber ids, so edited programs
    have no spans, and the pre-edit run uses dummies too so that the
    result is bit-identical to a batch [Lint.Engine.run] on the same
    program.  Cached until the next {!apply} (keyed on the edit count
    and the rule-name list); [sidefx edit --lint] calls this around
    every edit to report diagnostic deltas ({!Lint.Engine.delta}) and
    pays one lint pass per distinct program version.

    Statement-level rules (dead-store, rmw-hint) reuse a
    {!Dataflow.Driver.t} held by the engine: body edits only drop the
    solutions of the edited procedure and of callers whose callee
    summaries actually changed; call-shape and structural edits drop
    the cache (sites renumber).  Findings stay bit-identical to the
    batch run either way — the cache can only skip recomputing answers
    whose inputs are unchanged. *)
