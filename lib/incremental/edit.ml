module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt

type t =
  | Add_assign of { proc : int; target : int; value : Expr.t }
  | Remove_assign of { proc : int; index : int }
  | Add_call of { caller : int; callee : int; args : Prog.arg array }
  | Remove_call of { sid : int }
  | Retarget_call of { sid : int; callee : int }
  | Add_proc of { name : string; writes : int list; reads : int list }
  | Remove_proc of { pid : int }

type kind =
  | Body of { proc : int }
  | Call_shape of { caller : int; local_sets_touched : bool }
  | Structural

let apply prog = function
  | Add_assign { proc; target; value } ->
    Ir.Patch.append_stmt prog ~proc (Stmt.Assign (Expr.Lvar target, value))
  | Remove_assign { proc; index } -> Ir.Patch.remove_stmt prog ~proc ~index
  | Add_call { caller; callee; args } ->
    fst (Ir.Patch.add_call prog ~caller ~callee ~args)
  | Remove_call { sid } -> Ir.Patch.remove_call prog ~sid
  | Retarget_call { sid; callee } -> Ir.Patch.retarget_call prog ~sid ~callee
  | Add_proc { name; writes; reads } ->
    fst
      (Ir.Patch.add_proc prog ~name ~formals:[] ~locals:[]
         ~body:(fun ~formals:_ ~locals:_ ->
           List.map (fun w -> Stmt.Assign (Expr.Lvar w, Expr.Int 1)) writes
           @ List.map (fun r -> Stmt.Write (Expr.Var r)) reads))
  | Remove_proc { pid } -> Ir.Patch.remove_proc prog ~pid

let kind prog = function
  | Add_assign { proc; _ } | Remove_assign { proc; _ } -> Body { proc }
  | Add_call { caller; _ } -> Call_shape { caller; local_sets_touched = true }
  | Remove_call { sid } ->
    Call_shape
      { caller = (Prog.site prog sid).Prog.caller; local_sets_touched = true }
  | Retarget_call { sid; _ } ->
    (* Same call statement, same argument expressions: the caller's
       local MOD/USE sets cannot move, only the graphs do. *)
    Call_shape
      { caller = (Prog.site prog sid).Prog.caller; local_sets_touched = false }
  | Add_proc _ | Remove_proc _ -> Structural

let vname prog vid = (Prog.var prog vid).Prog.vname
let pname prog pid = (Prog.proc prog pid).Prog.pname

let pp prog ppf = function
  | Add_assign { proc; target; value } ->
    Format.fprintf ppf "add-assign %s %s := %a" (pname prog proc)
      (vname prog target) (Ir.Pp.pp_expr prog) value
  | Remove_assign { proc; index } ->
    Format.fprintf ppf "remove-assign %s #%d" (pname prog proc) index
  | Add_call { caller; callee; args } ->
    Format.fprintf ppf "add-call %s -> %s/%d" (pname prog caller)
      (pname prog callee) (Array.length args)
  | Remove_call { sid } ->
    let s = Prog.site prog sid in
    Format.fprintf ppf "remove-call site %d (%s -> %s)" sid
      (pname prog s.Prog.caller) (pname prog s.Prog.callee)
  | Retarget_call { sid; callee } ->
    let s = Prog.site prog sid in
    Format.fprintf ppf "retarget-call site %d (%s -> %s, now %s)" sid
      (pname prog s.Prog.caller) (pname prog s.Prog.callee) (pname prog callee)
  | Add_proc { name; writes; reads } ->
    Format.fprintf ppf "add-proc %s writes={%s} reads={%s}" name
      (String.concat "," (List.map (vname prog) writes))
      (String.concat "," (List.map (vname prog) reads))
  | Remove_proc { pid } -> Format.fprintf ppf "remove-proc %s" (pname prog pid)

let to_string prog e = Format.asprintf "%a" (pp prog) e
