(** The typed edit language over {!Ir.Prog.t}.

    Each constructor names one program change the incremental driver
    knows how to classify; {!apply} realises it through {!Ir.Patch}, so
    a structurally impossible edit raises [Invalid_argument] and a
    structurally possible one yields a program that {!Ir.Validate}
    accepts whenever the edit is also scope- and type-sensible (the
    generator in [Workload.Edits] only emits such edits; hand-written
    scripts should revalidate). *)

type t =
  | Add_assign of { proc : int; target : int; value : Ir.Expr.t }
      (** Append [target := value] to [proc]'s body.  Aimed at globals
          and by-reference formals — the variables interprocedural
          analysis can see — though any visible scalar is accepted. *)
  | Remove_assign of { proc : int; index : int }
      (** Remove the [index]-th top-level statement of [proc]'s body,
          which must be an assignment. *)
  | Add_call of { caller : int; callee : int; args : Ir.Prog.arg array }
      (** Append a call statement (and its site-table entry). *)
  | Remove_call of { sid : int }
  | Retarget_call of { sid : int; callee : int }
      (** Point site [sid] at a signature-compatible other callee. *)
  | Add_proc of { name : string; writes : int list; reads : int list }
      (** New top-level procedure whose body assigns each of [writes]
          and reads each of [reads] (all global variable ids). *)
  | Remove_proc of { pid : int }
      (** Remove an uncalled, call-free, leaf procedure. *)

(** How much cached analysis an edit can invalidate — the driver's
    dispatch. *)
type kind =
  | Body of { proc : int }
      (** One procedure's statements changed; the site table, both
          multi-graphs, and the alias sets are untouched. *)
  | Call_shape of { caller : int; local_sets_touched : bool }
      (** The site table changed (graphs must be rebuilt, aliases
          recomputed) but the declaration tables did not;
          [local_sets_touched] is [false] when even the caller's
          [LMOD]/[LUSE] are provably unchanged (retargeting keeps the
          argument expressions). *)
  | Structural
      (** Declarations changed (procedure added or removed): ids are
          renumbered, nothing survives — full re-analysis. *)

val apply : Ir.Prog.t -> t -> Ir.Prog.t

val kind : Ir.Prog.t -> t -> kind
(** Classify against the {e pre-edit} program (site lookups for
    [Remove_call]/[Retarget_call] use the old table). *)

val pp : Ir.Prog.t -> Format.formatter -> t -> unit
(** Render with pre-edit names. *)

val to_string : Ir.Prog.t -> t -> string
