module Prog = Ir.Prog
module Info = Ir.Info
module Call = Callgraph.Call
module Binding = Callgraph.Binding
module Analyze = Core.Analyze
module Rmod = Core.Rmod
module Gmod = Core.Gmod

let edits_c = Obs.Metric.counter "incremental.edits"
let procs_resolved_c = Obs.Metric.counter "incremental.procs_resolved"
let fallbacks_c = Obs.Metric.counter "incremental.full_fallbacks"
let edit_hist = Obs.Metric.histogram "incremental.edit_s"

(* Per-program site indexes: which sites a procedure contains, and
   which sites bind an actual to a given by-reference formal.  Both are
   what turns "this RMOD bit flipped" into "these callers' IMOD+ may
   move" without a scan of the whole site table. *)
type site_index = {
  by_caller : int list array;
  by_formal : int list array;
}

type caches = {
  imod_flat : Bitvec.t array;  (** Pre-nesting-fold [⋃ LMOD]. *)
  iuse_flat : Bitvec.t array;
  imod_aug : Bitvec.t array;
      (** [IMOD ∪ RMOD-site-projections], before the second nesting
          fold — the [sets] argument [IMOD+] is the fold of. *)
  iuse_aug : Bitvec.t array;
  rmod_sol : Rmod.solution;
  ruse_sol : Rmod.solution;
  must_sol : Core.Mustmod.solution;
      (** [MUSTMOD] with its call condensation, for the same
          ancestor-cone change propagation the β side gets. *)
  sites : site_index;
}

type t = {
  threshold : float;
  pool : Par.Pool.t option;
  provenance : bool;
  mutable analysis : Analyze.t;
  mutable caches : caches;
  mutable edits : int;
  mutable lint_cache : (int * string list * Lint.Diagnostic.t list) option;
      (** Findings computed at (edit count, rule names) — any [apply]
          bumps the edit count and so invalidates the entry. *)
  mutable dataflow : Dataflow.Driver.t option;
      (** Statement-level solution cache, created the first time {!lint}
          runs a dataflow rule.  Body edits invalidate it per procedure
          ({!Dataflow.Driver.refresh}); shape or structural changes
          renumber sites and drop it wholesale. *)
}

type outcome = {
  fallback : string option;
  procs_resolved : int;
}

exception Fallback of string

let site_index prog =
  let by_caller = Array.make (Prog.n_procs prog) [] in
  let by_formal = Array.make (Prog.n_vars prog) [] in
  Prog.iter_sites prog (fun s ->
      by_caller.(s.Prog.caller) <- s.Prog.sid :: by_caller.(s.Prog.caller);
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          match arg with
          | Prog.Arg_ref _ ->
            let f = callee.Prog.formals.(i) in
            by_formal.(f) <- s.Prog.sid :: by_formal.(f)
          | Prog.Arg_value _ -> ())
        s.Prog.args);
  { by_caller; by_formal }

(* One procedure's flat LMOD/LUSE union — Frontend.Local.flat_union,
   restricted. *)
let flat_of_proc info prog pid per_stmt =
  let acc = Info.fresh info in
  Ir.Stmt.iter
    (fun s -> List.iter (fun v -> Bitvec.set acc v) (per_stmt prog s))
    (Prog.proc prog pid).Prog.body;
  acc

(* The first phase of Imod_plus.compute: folded IMOD plus the RMOD
   projection of every site, per caller, before the second nesting
   fold. *)
let aug_full prog ~imod ~(rmod : Rmod.result) =
  let result = Array.map Bitvec.copy imod in
  Prog.iter_sites prog (fun s ->
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          match arg with
          | Prog.Arg_value _ -> ()
          | Prog.Arg_ref lv ->
            if Rmod.modified rmod callee.Prog.formals.(i) then
              Bitvec.set result.(s.Prog.caller) (Ir.Expr.lvalue_base lv))
        s.Prog.args);
  result

let aug_of_proc prog ~imod ~(rmod : Rmod.result) ~sites q =
  let v = Bitvec.copy imod.(q) in
  List.iter
    (fun sid ->
      let s = Prog.site prog sid in
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          match arg with
          | Prog.Arg_value _ -> ()
          | Prog.Arg_ref lv ->
            if Rmod.modified rmod callee.Prog.formals.(i) then
              Bitvec.set v (Ir.Expr.lvalue_base lv))
        s.Prog.args)
    sites.by_caller.(q);
  v

(* Region form of Info.fold_up_nesting: [folded] is the fold of a
   previous [flat] family that differed, at most, at [seeds].  Only the
   seeds and their lexical ancestors can move; walk that cone deepest
   level first, skip an ancestor whose children all came out unchanged,
   and share every untouched vector.  Returns the procedures whose
   folded value actually changed. *)
let refold_region info prog ~flat ~folded ~seeds =
  let np = Prog.n_procs prog in
  let is_seed = Array.make np false in
  let in_cone = Array.make np false in
  List.iter (fun q -> is_seed.(q) <- true) seeds;
  let rec mark q =
    if not in_cone.(q) then begin
      in_cone.(q) <- true;
      match (Prog.proc prog q).Prog.parent with
      | Some parent -> mark parent
      | None -> ()
    end
  in
  List.iter mark seeds;
  let cone =
    List.init np Fun.id
    |> List.filter (fun q -> in_cone.(q))
    |> List.sort (fun a b ->
           compare (Prog.proc prog b).Prog.level (Prog.proc prog a).Prog.level)
  in
  let result = Array.copy folded in
  let changed = Array.make np false in
  List.iter
    (fun q ->
      let pr = Prog.proc prog q in
      let must =
        is_seed.(q) || List.exists (fun ch -> changed.(ch)) pr.Prog.nested
      in
      if must then begin
        let v = Bitvec.copy flat.(q) in
        List.iter
          (fun ch ->
            let esc = Bitvec.copy result.(ch) in
            ignore (Bitvec.inter_into ~src:(Info.non_local info ch) ~dst:esc);
            ignore (Bitvec.union_into ~src:esc ~dst:v))
          pr.Prog.nested;
        if not (Bitvec.equal v folded.(q)) then begin
          result.(q) <- v;
          changed.(q) <- true
        end
      end)
    cone;
  (result, List.filter (fun q -> changed.(q)) cone)

let rebind (sol : Rmod.solution) binding =
  { sol with Rmod.res = { sol.Rmod.res with Rmod.binding } }

let build_caches ?pool (a : Analyze.t) =
  let prog = a.Analyze.prog in
  {
    imod_flat = Frontend.Local.imod_flat ?pool a.Analyze.info;
    iuse_flat = Frontend.Local.iuse_flat ?pool a.Analyze.info;
    imod_aug = aug_full prog ~imod:a.Analyze.imod ~rmod:a.Analyze.rmod;
    iuse_aug = aug_full prog ~imod:a.Analyze.iuse ~rmod:a.Analyze.ruse;
    rmod_sol = Rmod.solve_cached ?pool a.Analyze.binding ~imod:a.Analyze.imod;
    ruse_sol =
      Rmod.solve_cached ~label:"ruse" ?pool a.Analyze.binding
        ~imod:a.Analyze.iuse;
    must_sol =
      Core.Mustmod.solve_cached ?pool a.Analyze.info a.Analyze.call
        ~alias:a.Analyze.alias ~gmod:a.Analyze.gmod;
    sites = site_index prog;
  }

let create ?(threshold = 0.5) ?pool ?(provenance = false) prog =
  let analysis = Analyze.run ?pool ~provenance prog in
  {
    threshold;
    pool;
    provenance;
    analysis;
    caches = build_caches ?pool analysis;
    edits = 0;
    lint_cache = None;
    dataflow = None;
  }

(* Adopt an existing batch result instead of re-running it.  The
   analysis server creates one engine per client session over a shared
   registry entry, so re-entry must cost only the caches: the adopted
   record is treated as read-only (the solvers never mutate cached
   vectors; every edit replaces [t.analysis] wholesale), which keeps a
   still-unedited session's queries reading the same vectors as the
   registry base. *)
let of_analysis ?(threshold = 0.5) ?pool (analysis : Analyze.t) =
  {
    threshold;
    pool;
    provenance = analysis.Analyze.provenance <> None;
    analysis;
    caches = build_caches ?pool analysis;
    edits = 0;
    lint_cache = None;
    dataflow = None;
  }

let analysis t = t.analysis
let prog t = t.analysis.Analyze.prog
let edits_applied t = t.edits

let lint ?(rules = Lint.Rule.all) t =
  let names = List.map (fun r -> r.Lint.Rule.name) rules in
  match t.lint_cache with
  | Some (edits, cached_names, ds) when edits = t.edits && cached_names = names
    ->
    ds
  | _ ->
    (* Dummy locations on purpose: edited programs have no source
       positions (Ir.Patch renumbers ids), and using them for the
       initial program too keeps the incremental findings comparable —
       and bit-identical — to a batch [Lint.Engine.run] on the same
       edited program. *)
    let drv =
      match t.dataflow with
      | Some d when Dataflow.Driver.analysis d == t.analysis -> d
      | Some _ | None ->
        let d = Dataflow.Driver.create t.analysis in
        t.dataflow <- Some d;
        d
    in
    let ds = Lint.Engine.run ?pool:t.pool ~dataflow:drv ~rules t.analysis in
    t.lint_cache <- Some (t.edits, names, ds);
    ds

let full t prog reason =
  Obs.Metric.incr fallbacks_c;
  let analysis = Analyze.run ?pool:t.pool ~provenance:t.provenance prog in
  t.analysis <- analysis;
  t.caches <- build_caches ?pool:t.pool analysis;
  t.dataflow <- None;
  let resolved = 2 * Prog.n_procs prog in
  Obs.Metric.add procs_resolved_c resolved;
  { fallback = Some reason; procs_resolved = resolved }

(* One side (MOD or USE) of the seed pipeline: flat → nesting fold →
   β re-solve → IMOD+ recompute.  Returns everything the GMOD stage
   needs, changed-sets included. *)
let solve_side ~info ~prog ~binding ~graph_changed ~flat ~old_flat ~old_folded
    ~flat_seeds ~old_sol ~rmod_label =
  let changed_flat =
    List.filter (fun q -> not (Bitvec.equal flat.(q) old_flat.(q))) flat_seeds
  in
  let folded, folded_changed =
    if changed_flat = [] then (old_folded, [])
    else refold_region info prog ~flat ~folded:old_folded ~seeds:changed_flat
  in
  let sol, changed_nodes =
    if graph_changed then begin
      let sol = Rmod.solve_cached ~label:rmod_label binding ~imod:folded in
      let old_rmod = old_sol.Rmod.res.Rmod.rmod in
      let changed = ref [] in
      Array.iteri
        (fun node b -> if b <> old_rmod.(node) then changed := node :: !changed)
        sol.Rmod.res.Rmod.rmod;
      (sol, !changed)
    end
    else if folded_changed = [] then (rebind old_sol binding, [])
    else
      Rmod.resolve ~label:(rmod_label ^ ".region") (rebind old_sol binding)
        ~imod:folded ~changed_procs:folded_changed
  in
  (folded, folded_changed, sol, changed_nodes)

let aug_and_plus ~info ~prog ~sites ~folded ~folded_changed ~sol ~changed_nodes
    ~old_aug ~old_plus ~extra_seeds =
  let binding = sol.Rmod.res.Rmod.binding in
  let aug_seeds =
    folded_changed
    @ List.concat_map
        (fun node ->
          let vid = Binding.var binding node in
          List.map (fun sid -> (Prog.site prog sid).Prog.caller)
            sites.by_formal.(vid))
        changed_nodes
    @ extra_seeds
    |> List.sort_uniq compare
  in
  let aug, aug_changed =
    if aug_seeds = [] then (old_aug, [])
    else begin
      let aug = Array.copy old_aug in
      let changed = ref [] in
      List.iter
        (fun q ->
          let v = aug_of_proc prog ~imod:folded ~rmod:sol.Rmod.res ~sites q in
          if not (Bitvec.equal v old_aug.(q)) then begin
            aug.(q) <- v;
            changed := q :: !changed
          end)
        aug_seeds;
      (aug, !changed)
    end
  in
  let plus, plus_changed =
    if aug_changed = [] then (old_plus, [])
    else refold_region info prog ~flat:aug ~folded:old_plus ~seeds:aug_changed
  in
  (aug, plus, plus_changed)

let incremental t prog kind =
  let old = t.analysis in
  let c = t.caches in
  let np = Prog.n_procs prog in
  let info = Info.with_prog old.Analyze.info prog in
  let graph_changed, call, binding, sites, flat_seeds, shape_seeds =
    match kind with
    | `Body proc ->
      ( false,
        { old.Analyze.call with Call.prog },
        { old.Analyze.binding with Binding.prog },
        c.sites,
        [ proc ],
        [] )
    | `Shape (caller, local_sets_touched) ->
      ( true,
        Call.build prog,
        Binding.build prog,
        site_index prog,
        (if local_sets_touched then [ caller ] else []),
        [ caller ] )
  in
  (* Local re-analysis of the touched procedures only. *)
  let imod_flat, iuse_flat =
    match flat_seeds with
    | [] -> (c.imod_flat, c.iuse_flat)
    | seeds ->
      let im = Array.copy c.imod_flat and iu = Array.copy c.iuse_flat in
      List.iter
        (fun q ->
          im.(q) <- flat_of_proc info prog q Frontend.Local.lmod_stmt;
          iu.(q) <- flat_of_proc info prog q Frontend.Local.luse_stmt)
        seeds;
      (im, iu)
  in
  let imod, imod_changed, rmod_sol, rmod_changed =
    solve_side ~info ~prog ~binding ~graph_changed ~flat:imod_flat
      ~old_flat:c.imod_flat ~old_folded:old.Analyze.imod ~flat_seeds
      ~old_sol:c.rmod_sol ~rmod_label:"rmod"
  in
  let iuse, iuse_changed, ruse_sol, ruse_changed =
    solve_side ~info ~prog ~binding ~graph_changed ~flat:iuse_flat
      ~old_flat:c.iuse_flat ~old_folded:old.Analyze.iuse ~flat_seeds
      ~old_sol:c.ruse_sol ~rmod_label:"ruse"
  in
  let imod_aug, imod_plus, imod_plus_changed =
    aug_and_plus ~info ~prog ~sites ~folded:imod ~folded_changed:imod_changed
      ~sol:rmod_sol ~changed_nodes:rmod_changed ~old_aug:c.imod_aug
      ~old_plus:old.Analyze.imod_plus ~extra_seeds:shape_seeds
  in
  let iuse_aug, iuse_plus, iuse_plus_changed =
    aug_and_plus ~info ~prog ~sites ~folded:iuse ~folded_changed:iuse_changed
      ~sol:ruse_sol ~changed_nodes:ruse_changed ~old_aug:c.iuse_aug
      ~old_plus:old.Analyze.iuse_plus ~extra_seeds:shape_seeds
  in
  (* GMOD/GUSE: re-solve the condensation-ancestor cone of everything
     whose seed (or out-edge set) changed; beyond the threshold a full
     run is cheaper than the bookkeeping. *)
  let nested = Prog.max_level prog > 1 in
  let gmod, guse, resolved =
    if nested then
      (* The multi-level findgmod has no region form; both sides rerun
         in full (the rest of the pipeline above was still shared). *)
      ( Core.Gmod_nested.solve info call ~imod_plus,
        Core.Gmod_nested.solve ~label:"guse" info call ~imod_plus:iuse_plus,
        2 * np )
    else begin
      let side seeds plus cached =
        match List.sort_uniq compare (seeds @ shape_seeds) with
        | [] -> (cached, 0)
        | seeds ->
          let dirty =
            Graphs.Reach.ancestors call.Call.graph (Bitvec.of_list np seeds)
          in
          let card = Bitvec.cardinal dirty in
          if float_of_int card > t.threshold *. float_of_int np then
            raise
              (Fallback
                 (Printf.sprintf "dirty fraction %d/%d over threshold" card np));
          ( Gmod.solve_region ?pool:t.pool info call ~seed:plus ~dirty ~cached,
            card )
      in
      let gmod, n_mod = side imod_plus_changed imod_plus old.Analyze.gmod in
      let guse, n_use = side iuse_plus_changed iuse_plus old.Analyze.guse in
      (gmod, guse, n_mod + n_use)
    end
  in
  (* A body edit leaves the site table — and therefore the alias pairs
     and their recorded reasons — untouched; a shape edit recomputes
     both, recording into a fresh table. *)
  let alias, alias_table =
    if graph_changed then begin
      let table =
        if t.provenance then Some (Core.Provenance.create_alias_table ())
        else None
      in
      (Core.Alias.compute ?provenance:table info, table)
    end
    else
      ( old.Analyze.alias,
        match old.Analyze.provenance with
        | Some p -> Some p.Core.Provenance.alias
        | None -> None )
  in
  (* MUSTMOD rides the same cached condensation: a body edit reseeds
     the edited procedure plus every procedure whose GMOD (the ∩-cap)
     actually moved, and change propagation walks the pruned
     condensation-ancestor cone; a shape edit rebuilt the call graph,
     so the cached condensation is stale and the solve reruns. *)
  let must_sol =
    if graph_changed then
      Core.Mustmod.solve_cached ?pool:t.pool info call ~alias ~gmod
    else begin
      let gmod_changed =
        if gmod == old.Analyze.gmod then []
        else
          List.filter
            (fun q -> not (Bitvec.equal gmod.(q) old.Analyze.gmod.(q)))
            (List.init np Fun.id)
      in
      let seeds = List.sort_uniq compare (flat_seeds @ gmod_changed) in
      fst (Core.Mustmod.resolve c.must_sol info ~alias ~gmod ~changed_procs:seeds)
    end
  in
  let summary = Core.Summary.make info ~gmod ~guse ~alias in
  (* Provenance is a post-pass over the final solutions, so a cone
     re-solve just rebuilds the forest against whatever the caches now
     hold — reasons can never go stale. *)
  let provenance =
    if not t.provenance then None
    else begin
      let table =
        match alias_table with
        | Some tbl -> tbl
        | None -> Core.Provenance.create_alias_table ()
      in
      let must = Core.Provenance.create_must_table () in
      Core.Mustmod.ground_reasons must_sol.Core.Mustmod.res must;
      Some
        (Core.Provenance.compute ~must info ~binding ~imod ~iuse
           ~rmod:rmod_sol.Rmod.res ~ruse:ruse_sol.Rmod.res ~imod_plus
           ~iuse_plus ~gmod ~guse ~alias:table)
    end
  in
  t.analysis <-
    {
      Analyze.prog;
      info;
      call;
      binding;
      (* This path only runs for pointer-free programs ([apply] forces
         a full re-analysis whenever pointers are present), so the
         projection caches carried over are the trivial ones. *)
      ptsto = old.Analyze.ptsto;
      deref = old.Analyze.deref;
      imod;
      iuse;
      rmod = rmod_sol.Rmod.res;
      ruse = ruse_sol.Rmod.res;
      imod_plus;
      iuse_plus;
      gmod;
      guse;
      alias;
      mustmod = must_sol.Core.Mustmod.res;
      summary;
      provenance;
    };
  t.caches <-
    {
      imod_flat;
      iuse_flat;
      imod_aug;
      iuse_aug;
      rmod_sol;
      ruse_sol;
      must_sol;
      sites;
    };
  (match t.dataflow with
  | None -> ()
  | Some d -> (
    match kind with
    | `Body proc -> ignore (Dataflow.Driver.refresh d t.analysis ~edited:[ proc ])
    | `Shape _ ->
      (* Call-shape edits renumber the site table the cached CFGs
         index into. *)
      Dataflow.Driver.reset d t.analysis));
  Obs.Metric.add procs_resolved_c resolved;
  { fallback = None; procs_resolved = resolved }

let apply t edit =
  let t0 = Obs.Clock.now () in
  let outcome =
    Obs.Span.with_ "incremental.resolve" @@ fun () ->
    let old_prog = t.analysis.Analyze.prog in
    let kind = Edit.kind old_prog edit in
    let prog = Edit.apply old_prog edit in
    Obs.Metric.incr edits_c;
    t.edits <- t.edits + 1;
    match kind with
    | _ when Ptsto.has_pointers old_prog || Ptsto.has_pointers prog ->
      (* Points-to is a whole-program, flow-insensitive solution: any
         edit can redirect a pointer and move the dereference
         projection every cached phase was built with.  Re-deriving
         which regions that invalidates costs as much as re-solving,
         so pointer programs always take the full path. *)
      full t prog "pointer program: points-to solution may shift"
    | Edit.Structural -> full t prog "structural edit"
    | Edit.Body { proc } -> (
      try incremental t prog (`Body proc) with Fallback r -> full t prog r)
    | Edit.Call_shape { caller; local_sets_touched } -> (
      try incremental t prog (`Shape (caller, local_sets_touched))
      with Fallback r -> full t prog r)
  in
  Obs.Metric.observe edit_hist (Obs.Clock.now () -. t0);
  outcome
