module Prog = Ir.Prog
module Expr = Ir.Expr

let ( let* ) = Result.bind

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let find_proc prog name =
  match Prog.find_proc prog name with
  | Some p -> Ok p.Prog.pid
  | None -> err "no such procedure: %s" name

let find_var prog ~proc name =
  match Prog.find_var prog ~proc name with
  | Some v -> Ok v.Prog.vid
  | None ->
    err "no variable %s visible in %s" name (Prog.proc prog proc).Prog.pname

let int_of name s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> err "%s: not an integer: %s" name s

let site_ok prog sid =
  if sid >= 0 && sid < Prog.n_sites prog then Ok sid
  else err "no such site: %d" sid

(* One call argument: [&name] passes by reference, a bare name reads a
   scalar, an integer literal is a constant. *)
let parse_arg prog ~caller s =
  if String.length s > 0 && s.[0] = '&' then
    let name = String.sub s 1 (String.length s - 1) in
    let* vid = find_var prog ~proc:caller name in
    Ok (Prog.Arg_ref (Expr.Lvar vid))
  else
    match int_of_string_opt s with
    | Some i -> Ok (Prog.Arg_value (Expr.Int i))
    | None ->
      let* vid = find_var prog ~proc:caller s in
      Ok (Prog.Arg_value (Expr.Var vid))

let split_names = function
  | "" -> []
  | s -> String.split_on_char ',' s

(* [key=v1,v2] fields for add-proc. *)
let parse_field prog key s =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = key ->
    let names = split_names (String.sub s (i + 1) (String.length s - i - 1)) in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | n :: rest ->
        let* vid = find_var prog ~proc:prog.Prog.main n in
        resolve (vid :: acc) rest
    in
    Some (resolve [] names)
  | _ -> None

let parse_line prog line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> Ok None
  | cmd :: args -> (
    let ok e = Ok (Some e) in
    match (cmd, args) with
    | "add-assign", [ pname; vname ] | "add-assign", [ pname; vname; "="; "1" ]
      ->
      let* proc = find_proc prog pname in
      let* target = find_var prog ~proc vname in
      ok (Edit.Add_assign { proc; target; value = Expr.Int 1 })
    | "add-assign", [ pname; vname; "="; v ] ->
      let* proc = find_proc prog pname in
      let* target = find_var prog ~proc vname in
      let* value =
        (* An integer literal, or the name of a variable visible in the
           procedure (the generator emits both shapes). *)
        match int_of_string_opt v with
        | Some i -> Ok (Expr.Int i)
        | None ->
          let* vid = find_var prog ~proc v in
          Ok (Expr.Var vid)
      in
      ok (Edit.Add_assign { proc; target; value })
    | "remove-assign", [ pname; idx ] ->
      let* proc = find_proc prog pname in
      let* index = int_of "remove-assign" idx in
      ok (Edit.Remove_assign { proc; index })
    | "add-call", caller_name :: callee_name :: raw_args ->
      let* caller = find_proc prog caller_name in
      let* callee = find_proc prog callee_name in
      let rec resolve acc = function
        | [] -> Ok (List.rev acc)
        | a :: rest ->
          let* arg = parse_arg prog ~caller a in
          resolve (arg :: acc) rest
      in
      let* args = resolve [] raw_args in
      ok (Edit.Add_call { caller; callee; args = Array.of_list args })
    | "remove-call", [ sid ] ->
      let* sid = int_of "remove-call" sid in
      let* sid = site_ok prog sid in
      ok (Edit.Remove_call { sid })
    | "retarget-call", [ sid; callee_name ] ->
      let* sid = int_of "retarget-call" sid in
      let* sid = site_ok prog sid in
      let* callee = find_proc prog callee_name in
      ok (Edit.Retarget_call { sid; callee })
    | "add-proc", name :: fields ->
      let rec collect writes reads = function
        | [] -> Ok (writes, reads)
        | f :: rest -> (
          match parse_field prog "writes" f with
          | Some r ->
            let* ws = r in
            collect ws reads rest
          | None -> (
            match parse_field prog "reads" f with
            | Some r ->
              let* rs = r in
              collect writes rs rest
            | None -> err "add-proc: bad field %S (want writes=.. or reads=..)" f))
      in
      let* writes, reads = collect [] [] fields in
      if Prog.find_proc prog name <> None then
        err "add-proc: procedure %s already exists" name
      else ok (Edit.Add_proc { name; writes; reads })
    | "remove-proc", [ pname ] ->
      let* pid = find_proc prog pname in
      ok (Edit.Remove_proc { pid })
    | _ ->
      err
        "cannot parse edit %S (commands: add-assign, remove-assign, add-call, \
         remove-call, retarget-call, add-proc, remove-proc)"
        (String.trim line))

(* Emit a parseable script line for an edit.  The inverse of
   [parse_line], up to shadowing: names are ambiguous where a local
   shadows an outer variable, so the candidate line is parsed back and
   only returned when it resolves to exactly the given edit. *)
let render prog edit =
  let vname vid = (Prog.var prog vid).Prog.vname in
  let pname pid = (Prog.proc prog pid).Prog.pname in
  let arg_word = function
    | Prog.Arg_ref (Expr.Lvar v) -> Some ("&" ^ vname v)
    | Prog.Arg_value (Expr.Int i) -> Some (string_of_int i)
    | Prog.Arg_value (Expr.Var v) -> Some (vname v)
    | _ -> None
  in
  let all_args args =
    Array.fold_right
      (fun a acc ->
        match (arg_word a, acc) with
        | Some w, Some ws -> Some (w :: ws)
        | _ -> None)
      args (Some [])
  in
  let line =
    match edit with
    | Edit.Add_assign { proc; target; value } -> (
      match value with
      | Expr.Int i ->
        Some
          (Printf.sprintf "add-assign %s %s = %d" (pname proc) (vname target) i)
      | Expr.Var v ->
        Some
          (Printf.sprintf "add-assign %s %s = %s" (pname proc) (vname target)
             (vname v))
      | _ -> None)
    | Edit.Remove_assign { proc; index } ->
      Some (Printf.sprintf "remove-assign %s %d" (pname proc) index)
    | Edit.Add_call { caller; callee; args } -> (
      match all_args args with
      | None -> None
      | Some words ->
        Some
          (String.concat " "
             ("add-call" :: pname caller :: pname callee :: words)))
    | Edit.Remove_call { sid } -> Some (Printf.sprintf "remove-call %d" sid)
    | Edit.Retarget_call { sid; callee } ->
      Some (Printf.sprintf "retarget-call %d %s" sid (pname callee))
    | Edit.Add_proc { name; writes; reads } ->
      let field key = function
        | [] -> []
        | vs ->
          [ Printf.sprintf "%s=%s" key
              (String.concat "," (List.map vname vs))
          ]
      in
      Some
        (String.concat " "
           (("add-proc" :: name :: field "writes" writes) @ field "reads" reads))
    | Edit.Remove_proc { pid } -> Some (Printf.sprintf "remove-proc %s" (pname pid))
  in
  match line with
  | None -> None
  | Some l -> (
    match parse_line prog l with
    | Ok (Some e) when e = edit -> Some l
    | _ -> None)

type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

let parse prog src =
  let fail line fmt =
    Format.kasprintf (fun message -> Error { line; message }) fmt
  in
  let lines = String.split_on_char '\n' src in
  let rec go prog acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line prog line with
      | Error e -> fail n "%s" e
      | Ok None -> go prog acc (n + 1) rest
      | Ok (Some edit) -> (
        match Edit.apply prog edit with
        | prog' -> (
          match Ir.Validate.run prog' with
          | Ok () -> go prog' ((edit, prog') :: acc) (n + 1) rest
          | Error errs ->
            fail n "edit %S leaves an invalid program: %a" (String.trim line)
              (Format.pp_print_list ~pp_sep:Format.pp_print_newline
                 Ir.Validate.pp_error)
              errs)
        | exception Invalid_argument m -> fail n "%s" m))
  in
  go prog [] 1 lines
