(** The concrete edit-script syntax [sidefx edit --script] consumes.

    One edit per line; [#] starts a comment; blank lines are skipped.
    Names are resolved against the program {e as already edited by the
    preceding lines} (procedure and variable ids shift under
    [remove-proc], so scripts speak in names):

    {v
add-assign PROC VAR [= INT|VAR2]  append VAR := INT (default 1) or
                                VAR := VAR2 to PROC
remove-assign PROC INDEX        delete PROC's INDEX-th top-level statement
add-call CALLER CALLEE [ARG..]  append a call; ARG is &var | var | int
remove-call SID                 delete call site SID
retarget-call SID CALLEE        point site SID at CALLEE
add-proc NAME [writes=g,h] [reads=i]   new top-level procedure
remove-proc NAME                remove an uncalled, call-free procedure
    v} *)

val parse_line : Ir.Prog.t -> string -> (Edit.t option, string) result
(** Parse one line against the given program ([Ok None] for a blank or
    comment line).  Resolution errors (unknown names, bad integers)
    come back as [Error]. *)

val render : Ir.Prog.t -> Edit.t -> string option
(** Emit a script line that {!parse_line} maps back to exactly this
    edit against the same program, or [None] when the edit has no
    concrete syntax (non-literal argument expressions) or its names are
    ambiguous under shadowing.  This is how the analysis server's load
    generator replays [Workload.Edits] over the wire. *)

type error = { line : int; message : string }
(** A whole-script failure: which (1-based) line broke, and why.  Kept
    structured so machine consumers ([sidefx edit --json], the analysis
    server) can report the position as data rather than by parsing a
    rendered string. *)

val error_to_string : error -> string
(** ["line N: MESSAGE"]. *)

val parse : Ir.Prog.t -> string -> ((Edit.t * Ir.Prog.t) list, error) result
(** Parse a whole script, applying each edit as it is parsed so later
    lines resolve against the edited program.  Each returned pair is an
    edit and the (validated) program after it; errors carry the
    failing line number, and an edit whose result fails {!Ir.Validate}
    is an error. *)
