module Cval = Cval
module Prog = Ir.Prog
module Expr = Ir.Expr
module Digraph = Graphs.Digraph
module Scc = Graphs.Scc

(* One call-site contribution to a formal's entry value. *)
type jump =
  | Lit of int
  | Pass of int * int  (* source formal vid, constant offset *)
  | Unknown

type result = {
  value : Cval.t array;
  foldable : Bitvec.t;
  meets : int;
}

(* Full constant folding of a variable-free expression. *)
let rec const_fold (e : Expr.t) : int option =
  match e with
  | Expr.Int n -> Some n
  | Expr.Bool b -> Some (if b then 1 else 0)
  | Expr.Var _ | Expr.Index _ | Expr.Addr _ | Expr.Deref _ | Expr.New _ -> None
  | Expr.Unop (Expr.Neg, e) -> Option.map (fun n -> -n) (const_fold e)
  | Expr.Unop (Expr.Not, e) ->
    Option.map (fun n -> if n = 0 then 1 else 0) (const_fold e)
  | Expr.Binop (op, l, r) -> (
    match (const_fold l, const_fold r) with
    | Some a, Some b -> (
      let bool_ b = Some (if b then 1 else 0) in
      match op with
      | Expr.Add -> Some (a + b)
      | Expr.Sub -> Some (a - b)
      | Expr.Mul -> Some (a * b)
      | Expr.Div -> if b = 0 then None else Some (a / b)
      | Expr.Mod -> if b = 0 then None else Some (a mod b)
      | Expr.Lt -> bool_ (a < b)
      | Expr.Le -> bool_ (a <= b)
      | Expr.Gt -> bool_ (a > b)
      | Expr.Ge -> bool_ (a >= b)
      | Expr.Eq -> bool_ (a = b)
      | Expr.Ne -> bool_ (a <> b)
      | Expr.And -> bool_ (a <> 0 && b <> 0)
      | Expr.Or -> bool_ (a <> 0 || b <> 0))
    | _ -> None)

let analyze info ~imod_plus =
  let prog = Ir.Info.prog info in
  let nv = Prog.n_vars prog in
  (* Variables modified nowhere in the program. *)
  let ever_modified = Bitvec.create nv in
  Array.iter (fun m -> ignore (Bitvec.union_into ~src:m ~dst:ever_modified)) imod_plus;
  (* A variable whose value cannot change during its owner's (or, for
     an unmodified global, anyone's) execution — usable as a
     pass-through jump-function source.  A by-reference formal is never
     one: its cell aliases caller data, so it can change through a
     different name without showing in the owner's IMOD+. *)
  let stable_source v =
    let var = Prog.var prog v in
    match var.Prog.kind with
    | Prog.Formal { proc = owner; mode = Prog.By_value; _ } ->
      not (Bitvec.get imod_plus.(owner) v)
    | Prog.Formal { mode = Prog.By_ref; _ } -> false
    | Prog.Global -> not (Bitvec.get ever_modified v)
    | Prog.Local _ -> false
  in
  let var_jump v =
    let var = Prog.var prog v in
    if Ir.Types.is_array var.Prog.vty || Ir.Types.is_ptr var.Prog.vty then Unknown
    else
    match var.Prog.kind with
    | Prog.Formal _ when stable_source v -> Pass (v, 0)
    | Prog.Global when stable_source v -> Lit 0 (* initial value, never written *)
    | Prog.Formal _ | Prog.Global | Prog.Local _ -> Unknown
  in
  let jump_of_expr (e : Expr.t) =
    match const_fold e with
    | Some n -> Lit n
    | None -> (
      match e with
      | Expr.Var v -> var_jump v
      | Expr.Binop (Expr.Add, Expr.Var v, Expr.Int c)
      | Expr.Binop (Expr.Add, Expr.Int c, Expr.Var v) -> (
        match var_jump v with
        | Pass (src, o) -> Pass (src, o + c)
        | Lit a -> Lit (a + c)
        | Unknown -> Unknown)
      | Expr.Binop (Expr.Sub, Expr.Var v, Expr.Int c) -> (
        match var_jump v with
        | Pass (src, o) -> Pass (src, o - c)
        | Lit a -> Lit (a - c)
        | Unknown -> Unknown)
      | _ -> Unknown)
  in
  (* Gather contributions per formal. *)
  let contributions = Array.make nv [] in
  Prog.iter_sites prog (fun s ->
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          let f = callee.Prog.formals.(i) in
          let j =
            match arg with
            | Prog.Arg_value e -> jump_of_expr e
            | Prog.Arg_ref (Expr.Lvar v) -> jump_of_expr (Expr.Var v)
            | Prog.Arg_ref (Expr.Lindex _ | Expr.Lderef _) -> Unknown
          in
          contributions.(f) <- j :: contributions.(f))
        s.Prog.args);
  (* Dependency graph over formals; solved Figure-1 style: SCCs,
     then one pass over the condensation in forward topological order
     (sources first = decreasing Tarjan component number), iterating
     inside each component until the (height-2) lattice stabilises. *)
  let formals = ref [] in
  let node_of = Array.make nv (-1) in
  let n_nodes = ref 0 in
  Prog.iter_vars prog (fun v ->
      match v.Prog.kind with
      | Prog.Formal _ ->
        node_of.(v.Prog.vid) <- !n_nodes;
        incr n_nodes;
        formals := v.Prog.vid :: !formals
      | Prog.Global | Prog.Local _ -> ());
  let var_of = Array.of_list (List.rev !formals) in
  let b = Digraph.Builder.create ~nodes:!n_nodes () in
  Array.iteri
    (fun f js ->
      List.iter
        (fun j ->
          match j with
          | Pass (src, _) when node_of.(src) >= 0 && node_of.(f) >= 0 ->
            ignore (Digraph.Builder.add_edge b ~src:node_of.(src) ~dst:node_of.(f))
          | Pass _ | Lit _ | Unknown -> ())
        js)
    contributions;
  let g = Digraph.Builder.freeze b in
  let scc = Scc.compute g in
  let members = Scc.members scc in
  let value = Array.make nv Cval.Top in
  Array.iter (fun f -> value.(f) <- Cval.Bottom) var_of;
  let meets = ref 0 in
  let eval_formal f =
    List.fold_left
      (fun acc j ->
        incr meets;
        let v =
          match j with
          | Lit c -> Cval.Const c
          | Unknown -> Cval.Top
          | Pass (src, off) -> Cval.shift off value.(src)
        in
        Cval.meet acc v)
      Cval.Bottom contributions.(f)
  in
  for c = scc.Scc.n_comps - 1 downto 0 do
    let ms = members.(c) in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun node ->
          let f = var_of.(node) in
          let v = eval_formal f in
          if not (Cval.equal v value.(f)) then begin
            value.(f) <- v;
            changed := true
          end)
        ms
    done
  done;
  (* Non-formals report Top (no claim). *)
  let foldable = Bitvec.create nv in
  Array.iter
    (fun f ->
      match value.(f) with
      | Cval.Const _ ->
        let owner =
          match (Prog.var prog f).Prog.kind with
          | Prog.Formal { proc; _ } -> proc
          | Prog.Global | Prog.Local _ -> assert false
        in
        if not (Bitvec.get imod_plus.(owner) f) then Bitvec.set foldable f
      | Cval.Bottom | Cval.Top -> ())
    var_of;
  { value; foldable; meets = !meets }

let constant r vid =
  match r.value.(vid) with
  | Cval.Const c -> Some c
  | Cval.Bottom | Cval.Top -> None

let pp prog ppf r =
  Format.fprintf ppf "@[<v>";
  Prog.iter_procs prog (fun pr ->
      let consts =
        Array.to_list pr.Prog.formals
        |> List.filter_map (fun f ->
               match r.value.(f) with
               | Cval.Const c -> Some (f, c)
               | Cval.Bottom | Cval.Top -> None)
      in
      if consts <> [] then begin
        Format.fprintf ppf "%s:" pr.Prog.pname;
        List.iter
          (fun (f, c) ->
            Format.fprintf ppf " %s = %d%s" (Prog.var prog f).Prog.vname c
              (if Bitvec.get r.foldable f then " (foldable)" else ""))
          consts;
        Format.fprintf ppf "@,"
      end);
  Format.fprintf ppf "@]"
