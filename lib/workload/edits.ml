module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt
module Edit = Incremental.Edit

let ( let* ) = Option.bind

let pick rand = function
  | [] -> None
  | l -> Some (List.nth l (Random.State.int rand (List.length l)))

(* Int-typed scalars the given procedure can name.  Arrays are out:
   MiniProc has no whole-array reads or writes, so an [Lvar]/[Var] of
   array type would fail validation. *)
let visible_ints prog ~proc =
  let acc = ref [] in
  Prog.iter_vars prog (fun v ->
      if v.Prog.vty = Ir.Types.Int && Prog.visible prog ~proc ~var:v.Prog.vid
      then acc := v.Prog.vid :: !acc);
  List.rev !acc

let int_globals prog =
  let acc = ref [] in
  Prog.iter_vars prog (fun v ->
      if v.Prog.vty = Ir.Types.Int && Prog.is_global v then
        acc := v.Prog.vid :: !acc);
  List.rev !acc

let all_pids prog = List.init (Prog.n_procs prog) Fun.id

let gen_add_assign rand prog =
  let* pid = pick rand (all_pids prog) in
  let* target = pick rand (visible_ints prog ~proc:pid) in
  let value =
    if Random.State.bool rand then Expr.Int (Random.State.int rand 100)
    else
      match pick rand (visible_ints prog ~proc:pid) with
      | Some v -> Expr.Var v
      | None -> Expr.Int 0
  in
  Some (Edit.Add_assign { proc = pid; target; value })

let gen_remove_assign rand prog =
  let candidates =
    List.concat_map
      (fun pid ->
        (Prog.proc prog pid).Prog.body
        |> List.mapi (fun i s -> (i, s))
        |> List.filter_map (fun (i, s) ->
               match s with Stmt.Assign _ -> Some (pid, i) | _ -> None))
      (all_pids prog)
  in
  let* pid, index = pick rand candidates in
  Some (Edit.Remove_assign { proc = pid; index })

(* Arguments for a call to [callee] as written in [caller]: each
   by-reference formal needs a visible variable of exactly its type
   (validation compares them); by-value formals take a constant. *)
let args_for rand prog ~caller callee =
  let p = Prog.proc prog callee in
  let args =
    Array.map
      (fun fv ->
        let f = Prog.var prog fv in
        match f.Prog.kind with
        | Prog.Formal { mode = Prog.By_value; _ } ->
          Some (Prog.Arg_value (Expr.Int (Random.State.int rand 10)))
        | Prog.Formal { mode = Prog.By_ref; _ } ->
          let compatible = ref [] in
          Prog.iter_vars prog (fun v ->
              if
                v.Prog.vty = f.Prog.vty
                && Prog.visible prog ~proc:caller ~var:v.Prog.vid
              then compatible := v.Prog.vid :: !compatible);
          let* v = pick rand !compatible in
          Some (Prog.Arg_ref (Expr.Lvar v))
        | _ -> None)
      p.Prog.formals
  in
  if Array.for_all Option.is_some args then Some (Array.map Option.get args)
  else None

let gen_add_call rand prog =
  let* caller = pick rand (all_pids prog) in
  let callees = List.filter (fun pid -> pid <> prog.Prog.main) (all_pids prog) in
  let* callee = pick rand callees in
  let* args = args_for rand prog ~caller callee in
  Some (Edit.Add_call { caller; callee; args })

let gen_remove_call rand prog =
  let* sid = pick rand (List.init (Prog.n_sites prog) Fun.id) in
  Some (Edit.Remove_call { sid })

(* A retarget must keep the argument vector valid for the new callee:
   same arity, same modes, and each [Arg_ref (Lvar v)]'s type equal to
   the new formal's type ([Lindex] actuals bind only [Int] formals). *)
let retarget_ok prog site callee =
  let p = Prog.proc prog callee in
  callee <> site.Prog.callee
  && callee <> prog.Prog.main
  && Array.length p.Prog.formals = Array.length site.Prog.args
  && Array.for_all2
       (fun fv arg ->
         let f = Prog.var prog fv in
         match (f.Prog.kind, arg) with
         | Prog.Formal { mode = Prog.By_value; _ }, Prog.Arg_value _ -> true
         | Prog.Formal { mode = Prog.By_ref; _ }, Prog.Arg_ref lv -> (
           match lv with
           | Expr.Lvar v -> (Prog.var prog v).Prog.vty = f.Prog.vty
           | Expr.Lindex _ -> f.Prog.vty = Ir.Types.Int
           | Expr.Lderef (p, d) -> (
             match Ir.Types.deref d (Prog.var prog p).Prog.vty with
             | Some t -> Ir.Types.equal t f.Prog.vty
             | None -> false))
         | _ -> false)
       p.Prog.formals site.Prog.args

let gen_retarget rand prog =
  let* sid = pick rand (List.init (Prog.n_sites prog) Fun.id) in
  let site = Prog.site prog sid in
  let* callee = pick rand (List.filter (retarget_ok prog site) (all_pids prog)) in
  Some (Edit.Retarget_call { sid; callee })

let gen_add_proc rand prog counter =
  let rec fresh () =
    incr counter;
    let name = Printf.sprintf "edit_q%d" !counter in
    if Prog.find_proc prog name = None then name else fresh ()
  in
  let globals = int_globals prog in
  let sample l = List.filter (fun _ -> Random.State.int rand 3 = 0) l in
  Some
    (Edit.Add_proc
       { name = fresh (); writes = sample globals; reads = sample globals })

(* Only a procedure that is never called, calls no one, and nests no
   one can be removed — in practice the procedures this generator
   itself added. *)
let gen_remove_proc rand prog =
  let called = Array.make (Prog.n_procs prog) false in
  Prog.iter_sites prog (fun s -> called.(s.Prog.callee) <- true);
  let removable =
    List.filter
      (fun pid ->
        let p = Prog.proc prog pid in
        pid <> prog.Prog.main
        && p.Prog.nested = []
        && (not called.(pid))
        && Stmt.call_sites p.Prog.body = [])
      (all_pids prog)
  in
  let* pid = pick rand removable in
  Some (Edit.Remove_proc { pid })

let gen ~rand ~steps prog =
  let counter = ref 0 in
  let generators =
    [|
      gen_add_assign;
      gen_add_assign (* assignments twice: the common, cheap edit *);
      gen_remove_assign;
      gen_add_call;
      gen_remove_call;
      gen_retarget;
      (fun rand prog -> gen_add_proc rand prog counter);
      gen_remove_proc;
    |]
  in
  let rec step prog acc n =
    if n = 0 then List.rev acc
    else
      (* Try random edit kinds until one is constructible on the
         current program; [draw] bounds the attempts so a program with,
         say, no call sites just skips the site edits. *)
      let rec draw tries =
        if tries = 0 then None
        else
          let g =
            generators.(Random.State.int rand (Array.length generators))
          in
          match g rand prog with Some e -> Some e | None -> draw (tries - 1)
      in
      match draw 10 with
      | None -> step prog acc (n - 1)
      | Some edit ->
        let prog' = Edit.apply prog edit in
        (match Ir.Validate.run prog' with
        | Ok () -> ()
        | Error errs ->
          Fmt.failwith "Workload.Edits produced an invalid edit %s: %a"
            (Edit.to_string prog edit)
            (Fmt.list Ir.Validate.pp_error)
            errs);
        step prog' ((edit, prog') :: acc) (n - 1)
  in
  step prog [] steps
