(** Seeded random edit scripts over well-formed programs.

    Each generated edit is constructed to be scope- and type-correct
    against the program {e as edited so far} — by-reference arguments
    get visible variables of exactly the formal's type, retargets pick
    signature-compatible callees, removals pick procedures nothing
    references — and the generator re-validates after every step,
    failing loudly if it ever emits an edit {!Ir.Validate} rejects.
    This is the workload half of the incremental engine's differential
    test: scripts from here exercise every {!Incremental.Edit}
    constructor without tripping the patch layer's preconditions. *)

val gen :
  rand:Random.State.t ->
  steps:int ->
  Ir.Prog.t ->
  (Incremental.Edit.t * Ir.Prog.t) list
(** [gen ~rand ~steps prog] draws up to [steps] edits (a step is
    skipped when the drawn edit kind is not constructible — e.g. no
    call site left to remove).  Each pair is an edit and the validated
    program after applying it; edits apply in order, each against the
    previous pair's program. *)
