(* The fixed families are written as MiniProc source and compiled
   through the real front end — tests thereby cover the whole path from
   text to analysis answers. *)

let compile src =
  match Frontend.Sema.compile ~file:"<family>" src with
  | Ok p -> p
  | Error errs ->
    invalid_arg
      (Format.asprintf "Families: generated source does not compile:@ %a@ ---@ %s"
         (Format.pp_print_list Frontend.Sema.pp_error)
         errs src)

let buf_program ~procs ~main_body =
  Printf.sprintf "program main;\nvar g0 : int;\n%s\nbegin\n%s\nend.\n"
    (String.concat "\n" procs) main_body

let chain_procs n ~last_body ~mid_extra =
  List.init n (fun i ->
      let i = i + 1 in
      let body =
        if i = n then last_body
        else Printf.sprintf "call p%d(x);%s" (i + 1) mid_extra
      in
      Printf.sprintf "procedure p%d(var x : int);\nbegin\n%s\nend;" i body)

let ref_chain n =
  if n < 1 then invalid_arg "Families.ref_chain";
  compile
    (buf_program
       ~procs:(chain_procs n ~last_body:"x := 1;" ~mid_extra:"")
       ~main_body:"call p1(g0);")

let ref_cycle n =
  if n < 2 then invalid_arg "Families.ref_cycle";
  compile
    (buf_program
       ~procs:(chain_procs n ~last_body:"call p1(x); x := 1;" ~mid_extra:"")
       ~main_body:"call p1(g0);")

let clean_chain n =
  if n < 1 then invalid_arg "Families.clean_chain";
  compile
    (buf_program
       ~procs:(chain_procs n ~last_body:"skip;" ~mid_extra:"")
       ~main_body:"call p1(g0);")

let global_chain n =
  if n < 1 then invalid_arg "Families.global_chain";
  let procs =
    List.init n (fun i ->
        let i = i + 1 in
        let body = if i = n then "g0 := 1;" else Printf.sprintf "call p%d();" (i + 1) in
        Printf.sprintf "procedure p%d();\nbegin\n%s\nend;" i body)
  in
  compile (buf_program ~procs ~main_body:"call p1();")

let mutual_pair () =
  compile
    {|program main;
var g0 : int;
procedure a(var x : int);
begin
  call b(x);
end;
procedure b(var y : int);
begin
  call a(y);
  y := 1;
end;
begin
  call a(g0);
end.
|}

let diamond () =
  compile
    {|program main;
var g0 : int;
procedure c();
begin
  g0 := 1;
end;
procedure a();
begin
  call c();
end;
procedure b();
begin
  call c();
end;
begin
  call a();
  call b();
end.
|}

let nested_textbook () =
  compile
    {|program main;
var g0 : int;
procedure outer(var p : int);
var v : int;
  procedure mid(var q : int);
    procedure inner(var r : int);
    begin
      v := v + 1;
      g0 := g0 + 1;
      r := 0;
    end;
  begin
    call inner(q);
    call mid(q);
  end;
begin
  call mid(p);
  call helper(v);
end;
procedure helper(var h : int);
begin
  h := 2;
end;
begin
  call outer(g0);
end.
|}

(* --- pointer families (feed the points-to tiers) ------------------- *)

let ptr_chain n =
  if n < 1 then invalid_arg "Families.ptr_chain";
  let procs = chain_procs n ~last_body:"x := 1;" ~mid_extra:"" in
  compile
    (Printf.sprintf
       "program main;\n\
        var g0 : int;\n\
        var p : ptr of int;\n\
        %s\n\
        begin\n\
       \  p := &g0;\n\
       \  call p1( *p);\n\
        end.\n"
       (String.concat "\n" procs))

let ptr_heap n =
  if n < 1 then invalid_arg "Families.ptr_heap";
  let stmts =
    List.init n (fun i ->
        Printf.sprintf
          "  p := new int;\n  *p := %d;\n  call bump( *p);\n  g0 := g0 + *p;"
          i)
  in
  compile
    (Printf.sprintf
       "program main;\n\
        var g0 : int;\n\
        var p : ptr of int;\n\
        procedure bump(var a : int);\n\
        begin\n\
       \  a := a + 1;\n\
        end;\n\
        begin\n\
        %s\n\
        end.\n"
       (String.concat "\n" stmts))

let ptr_funnel n =
  if n < 2 then invalid_arg "Families.ptr_funnel";
  let decls =
    Printf.sprintf "var %s : int;\nvar %s : ptr of int;\nvar r : ptr of int;"
      (String.concat ", " (List.init n (Printf.sprintf "x%d")))
      (String.concat ", " (List.init n (Printf.sprintf "p%d")))
  in
  let inits =
    List.init n (fun i -> Printf.sprintf "  p%d := &x%d;\n  r := p%d;" i i i)
  in
  (* Two callees, sites alternating between them: under unification the
     funnel [r] merges every [x_i], so each formal aliases all of them
     (2n pairs); inclusion keeps the per-site target exact (n pairs). *)
  let calls =
    List.init n (fun i ->
        Printf.sprintf "  call touch_%c( *p%d);"
          (if i mod 2 = 0 then 'a' else 'b')
          i)
  in
  compile
    (Printf.sprintf
       "program main;\n\
        var g0 : int;\n\
        %s\n\
        procedure touch_a(var a : int);\n\
        begin\n\
       \  a := a + 1;\n\
        end;\n\
        procedure touch_b(var b : int);\n\
        begin\n\
       \  b := b + 1;\n\
        end;\n\
        begin\n\
        %s\n\
        %s\n\
       \  g0 := *r;\n\
        end.\n"
       decls
       (String.concat "\n" inits)
       (String.concat "\n" calls))

let fortran_style ~seed ~n =
  let rng = Random.State.make [| seed; n; 0x0f |] in
  Gen.generate rng
    {
      Gen.default with
      Gen.n_procs = n;
      n_globals = (n / 4) + 8;
      max_depth = 1;
    }

let fortran_fixed ~seed ~n =
  let rng = Random.State.make [| seed; n; 0xf1 |] in
  Gen.generate rng
    {
      Gen.default with
      Gen.n_procs = n;
      n_globals = 64;
      max_depth = 1;
    }

let dag_style ~seed ~n =
  let rng = Random.State.make [| seed; n; 0xda |] in
  Gen.generate rng
    {
      Gen.default with
      Gen.n_procs = n;
      n_globals = (n / 4) + 8;
      max_depth = 1;
      recursion = 0.0;
    }

let pascal_style ~seed ~n ~depth =
  let rng = Random.State.make [| seed; n; depth; 0x9a |] in
  Gen.generate rng
    {
      Gen.default with
      Gen.n_procs = n;
      n_globals = (n / 4) + 8;
      max_depth = depth;
    }
