(** Named workload families with predictable analysis answers — used by
    unit tests (known expected results) and benchmarks (controlled
    shape).  All are flat (level-1) unless stated otherwise. *)

val ref_chain : int -> Ir.Prog.t
(** [p1(var x) → p2(var x) → … → pn(var x)], with only the last
    procedure assigning its parameter.  β is a path of length [n-1];
    the expected answer is [RMOD(pi) = {x_i}] for every [i] — the
    deep-propagation worst case for iterative methods. *)

val ref_cycle : int -> Ir.Prog.t
(** Like {!ref_chain} but the last procedure calls the first, closing a
    β cycle; still every formal is modified. *)

val clean_chain : int -> Ir.Prog.t
(** Like {!ref_chain} but no procedure writes its parameter:
    [RMOD = ∅] everywhere, [GMOD = ∅] everywhere. *)

val global_chain : int -> Ir.Prog.t
(** [p1 → p2 → … → pn]; only [pn] writes, to a distinct global [g_n];
    expected [GMOD(p_i) = {g_n}]. *)

val mutual_pair : unit -> Ir.Prog.t
(** Two mutually recursive procedures exchanging their by-ref formals;
    one writes.  The classic SCC case for Figure 1. *)

val diamond : unit -> Ir.Prog.t
(** main → a, b; a → c; b → c; c writes a global — exercises cross
    edges in [findgmod]. *)

val nested_textbook : unit -> Ir.Prog.t
(** The §3.3/§4 situation: a procedure [outer] with local [v] and
    nested procedures, one of which modifies [v] and an outer global;
    exercises the nesting extension and multi-level [findgmod].
    Procedure levels reach 3. *)

val ptr_chain : int -> Ir.Prog.t
(** {!ref_chain} reached through a pointer: main aims [p] at [g0] and
    passes [*p] by reference into the chain.  Both tiers resolve the
    dereference actual to exactly [{g0}], so [MOD(main's site)] must
    equal the {!ref_chain} answer — a pointer program whose summary
    sets are predictable by hand. *)

val ptr_heap : int -> Ir.Prog.t
(** [n] heap allocations through one pointer, each written via [*p] and
    passed as a [*p] reference actual.  Exercises heap summary
    locations: the dereference names no variable, only [new] sites, so
    §5 heap/heap seeds and the [Arg_ref (Lderef _)] projection paths
    fire without any variable target. *)

val ptr_funnel : int -> Ir.Prog.t
(** The tier-separating family: [p_i := &x_i] for [n] distinct
    variables, all funnelled through one pointer [r := p_i], with the
    [*p_i] call actuals alternating between two callees.  Steensgaard's
    unification merges every [x_i] into one class, so each callee's
    formal aliases all [n] variables ([2n] §5 alias pairs); Andersen
    keeps [pts(p_i) = {x_i}], so each formal aliases only the variables
    its own sites bind ([n] pairs).  Any test that wants Andersen to be
    {e strictly} more precise uses this shape. *)

val fortran_style : seed:int -> n:int -> Ir.Prog.t
(** {!Gen.generate} with defaults scaled to [n] procedures, flat, for
    scaling experiments. *)

val fortran_fixed : seed:int -> n:int -> Ir.Prog.t
(** Like {!fortran_style} but with a {e constant} global population
    (64) independent of [n].  On this family summary sets are bounded,
    so total bit-vector word work should grow linearly with program
    size — the regime where the paper's O(N+E) bound is visible in
    word counts, not just vector-op counts.  ({!fortran_style} scales
    globals with [n], which makes total summary-set {e output} size —
    and hence any representation's word count — inherently
    quadratic.) *)

val dag_style : seed:int -> n:int -> Ir.Prog.t
(** Like {!fortran_style} but with call-back edges disabled
    ([recursion = 0]): the call graph is an acyclic DAG of singleton
    components, so its condensation has wide levels — the
    high-parallelism case for the wavefront scheduler (and the
    Fortran-77 reality: the language forbids recursion). *)

val pascal_style : seed:int -> n:int -> depth:int -> Ir.Prog.t
(** Nested variant. *)
