(** The multi-level nesting extension of [findgmod] (end of §4).

    With procedures declared at nesting levels up to [dP], the
    two-level global/local split no longer holds: what is local to one
    procedure is global to the procedures nested in it.  The paper's
    remedy is to solve [dP] problems simultaneously, where problem [i]
    accounts for effects along call chains that never invoke a
    procedure declared at a level shallower than [i] — i.e. it is
    defined on the sub-multi-graph [C_i] of [C] that drops every edge
    whose callee's declaration level is [< i] — and to read off, from
    problem [i], the fate of the variables declared at level [i - 1]
    (they are the "globals" of that problem: no procedure present in
    [C_i] can own them).

    Two implementations:

    - {!solve_by_levels} runs Figure 2 once per level —
      [O(dP · (E + N))] bit-vector steps — and unions the masked
      results.  It is the reference implementation and the baseline of
      the C1 ablation.
    - {!solve} is the paper's single-pass refinement: one DFS, a
      {e vector} of lowlink values per node (one per level),
      per-level parallel stacks, per-edge unions masked to the variable
      levels the traversed edge can carry, and a suffix-min correction
      of the lowlink vector at node completion — [O(E + dP · N)]
      bit-vector steps.

    Both compute, for every procedure [p],
    [GMOD(p) = IMOD+(p) ∪ ⋃_i (problem-i solution at p, masked to
    level-(i-1) variables)], and agree with the chaotic-iteration
    fixpoint of equation (4) on scope-correct programs (MiniProc's
    semantic analysis guarantees scope-correctness; on hand-built
    [Ir.Prog] values that violate static scoping the masked problems
    are not meaningful).

    For [dP = 1] both reduce exactly to Figure 2. *)

val solve :
  ?label:string -> Ir.Info.t -> Callgraph.Call.t -> imod_plus:Bitvec.t array -> Bitvec.t array
(** Single-pass algorithm, [O(E + dP·N)] bit-vector steps.  Runs under
    an {!Obs.Span} named [label] (default ["gmod"], matching the flat
    solver so profiles key on one phase name). *)

val solve_by_levels :
  ?label:string ->
  ?pool:Par.Pool.t ->
  Ir.Info.t -> Callgraph.Call.t -> imod_plus:Bitvec.t array -> Bitvec.t array
(** Per-level repetition of Figure 2, [O(dP·(E+N))] bit-vector steps.
    Span default ["gmod.by_levels"].  [?pool] is forwarded to each
    level's {!Gmod.solve}; the per-level loop itself is sequential
    (each [C_i] is an independent problem, but the masked unions fold
    into one shared result array).  {!solve} — the single-pass
    algorithm — has no parallel form: its per-level stacks are one
    global traversal state. *)
