(* Witness reconstruction.  See explain.mli. *)

module Prog = Ir.Prog
module Binding = Callgraph.Binding
module Digraph = Graphs.Digraph
module Locs = Frontend.Locs
module Loc = Frontend.Loc

type side = [ `Mod | `Use ]

type gmod_step = { proc : int; reason : Provenance.gmod_reason }
type rmod_step = { node : int; reason : Provenance.rmod_reason }

type alias_link = {
  aproc : int;
  pair : int * int;
  reason : Provenance.alias_reason;
}

type must_step = { mproc : int; mvar : int; reason : Provenance.must_reason }

let gset (a : Analyze.t) side =
  match side with `Mod -> a.Analyze.gmod | `Use -> a.Analyze.guse

let gname side = match side with `Mod -> "GMOD" | `Use -> "GUSE"
let rname side = match side with `Mod -> "RMOD" | `Use -> "RUSE"
let verb side = match side with `Mod -> "writes" | `Use -> "reads"

(* --- structured chains ------------------------------------------------ *)

let gmod_chain (a : Analyze.t) ~side ~proc ~var =
  match a.Analyze.provenance with
  | None -> None
  | Some p ->
    if not (Bitvec.get (gset a side).(proc) var) then None
    else begin
      let table = Provenance.gmod_reasons p ~side in
      let prog = a.Analyze.prog in
      let rec go pid acc seen =
        if List.mem pid seen then Some (List.rev acc)
        else
          match Hashtbl.find_opt table (pid, var) with
          | None -> None
          | Some reason -> (
            let acc = { proc = pid; reason } :: acc in
            match reason with
            | Provenance.Gcall sid ->
              go (Prog.site prog sid).Prog.callee acc (pid :: seen)
            | Provenance.Gnested child -> go child acc (pid :: seen)
            | Provenance.Glocal | Provenance.Gbind _ -> Some (List.rev acc))
      in
      go proc [] []
    end

let rmod_chain (a : Analyze.t) ~side ~var =
  match a.Analyze.provenance with
  | None -> None
  | Some p -> (
    let binding = a.Analyze.binding in
    match Binding.node_opt binding var with
    | None -> None
    | Some node0 ->
      let reasons = Provenance.rmod_reasons p ~side in
      let g = binding.Binding.graph in
      let rec go node acc seen =
        if List.mem node seen then Some (List.rev acc)
        else
          match reasons.(node) with
          | None -> None
          | Some (Provenance.Rseed as reason) ->
            Some (List.rev ({ node; reason } :: acc))
          | Some (Provenance.Redge eid as reason) ->
            go (Digraph.edge_dst g eid) ({ node; reason } :: acc) (node :: seen)
      in
      go node0 [] [])

let alias_links (a : Analyze.t) ~proc x y =
  match a.Analyze.provenance with
  | None -> None
  | Some p ->
    let prog = a.Analyze.prog in
    let links = ref [] in
    let seen = Hashtbl.create 16 in
    let rec go pid (x, y) =
      let x, y = if x <= y then (x, y) else (y, x) in
      if not (Hashtbl.mem seen (pid, x, y)) then begin
        Hashtbl.add seen (pid, x, y) ();
        match Provenance.alias_reason p ~proc:pid x y with
        | None -> ()
        | Some reason ->
          links := { aproc = pid; pair = (x, y); reason } :: !links;
          (match reason with
          | Provenance.Apropagated { site; from_pair } ->
            go (Prog.site prog site).Prog.caller from_pair
          | Provenance.Ainherited { parent } -> go parent (x, y)
          | Provenance.Apositions _ | Provenance.Avisible _
          | Provenance.Apointsto _ ->
            ())
      end
    in
    go proc (x, y);
    (match Provenance.alias_reason p ~proc x y with
    | None -> None
    | Some _ -> Some (List.rev !links))

(* --- rendering -------------------------------------------------------- *)

let vname prog vid = Ir.Pp.var_name prog vid
let qvname prog vid = Ir.Pp.qualified_var_name prog vid
let pname prog pid = Ir.Pp.proc_name prog pid

let loc_suffix loc =
  if loc = Loc.dummy then "" else Printf.sprintf " at %s" (Loc.to_string loc)

let site_loc locs sid = Locs.site locs sid

(* First statement of [proc]'s own body — else of a lexical descendant
   — whose direct effect touches [var]. *)
let find_def (a : Analyze.t) ~side ~proc ~var =
  let prog = a.Analyze.prog in
  let per_stmt =
    match side with
    | `Mod -> Frontend.Local.lmod_stmt
    | `Use -> Frontend.Local.luse_stmt
  in
  let in_body pid =
    let ord = ref (-1) in
    let found = ref None in
    Ir.Stmt.iter
      (fun s ->
        incr ord;
        if !found = None && List.mem var (per_stmt prog s) then
          found := Some !ord)
      (Prog.proc prog pid).Prog.body;
    !found
  in
  let rec search pid =
    match in_body pid with
    | Some ord -> Some (pid, ord)
    | None ->
      List.fold_left
        (fun acc child -> match acc with Some _ -> acc | None -> search child)
        None (Prog.proc prog pid).Prog.nested
  in
  search proc

let def_line a ~locs ~side ~proc ~var =
  let prog = a.Analyze.prog in
  match find_def a ~side ~proc ~var with
  | Some (pid, ord) ->
    Printf.sprintf "%s %s '%s'%s" (pname prog pid) (verb side)
      (vname prog var)
      (loc_suffix (Locs.stmt locs ~proc:pid ord))
  | None ->
    (* Defensive: the fact held, so a def-site should exist. *)
    Printf.sprintf "%s %s '%s'" (pname prog proc) (verb side) (vname prog var)

let rmod_lines (a : Analyze.t) ~locs ~side steps =
  let prog = a.Analyze.prog in
  let binding = a.Analyze.binding in
  List.concat_map
    (fun { node; reason } ->
      let f = Binding.var binding node in
      match reason with
      | Provenance.Rseed ->
        let owner =
          match (Prog.var prog f).Prog.kind with
          | Prog.Formal { proc; _ } -> proc
          | _ -> assert false
        in
        [ def_line a ~locs ~side ~proc:owner ~var:f ]
      | Provenance.Redge eid ->
        let info = binding.Binding.edges.(eid) in
        let dst = Digraph.edge_dst binding.Binding.graph eid in
        let fdst = Binding.var binding dst in
        [
          Printf.sprintf "'%s' is bound by reference to '%s' at site %d (arg %d)%s"
            (qvname prog f) (qvname prog fdst) info.Binding.site
            info.Binding.arg_pos
            (loc_suffix (site_loc locs info.Binding.site));
        ])
    steps

let explain_rmod (a : Analyze.t) ~locs ~side ~var =
  match rmod_chain a ~side ~var with
  | None -> None
  | Some steps ->
    let prog = a.Analyze.prog in
    let head =
      Printf.sprintf "'%s' ∈ %s" (qvname prog var) (rname side)
    in
    Some (head :: rmod_lines a ~locs ~side steps)

let explain_gmod (a : Analyze.t) ~locs ~side ~proc ~var =
  match gmod_chain a ~side ~proc ~var with
  | None -> None
  | Some steps ->
    let prog = a.Analyze.prog in
    (* Compact arrow chain: p →site 3 q ⊃ r … *)
    let buf = Buffer.create 64 in
    Buffer.add_string buf (pname prog proc);
    List.iter
      (fun ({ reason; _ } : gmod_step) ->
        match reason with
        | Provenance.Gcall sid ->
          Buffer.add_string buf
            (Printf.sprintf " →site %d %s" sid
               (pname prog (Prog.site prog sid).Prog.callee))
        | Provenance.Gnested child ->
          Buffer.add_string buf (Printf.sprintf " ⊃ %s" (pname prog child))
        | Provenance.Glocal | Provenance.Gbind _ -> ())
      steps;
    let chain_line =
      Printf.sprintf "'%s' ∈ %s(%s): %s" (vname prog var) (gname side)
        (pname prog proc) (Buffer.contents buf)
    in
    let step_lines =
      List.concat_map
        (fun { proc = pid; reason } ->
          match reason with
          | Provenance.Glocal -> [ def_line a ~locs ~side ~proc:pid ~var ]
          | Provenance.Gcall sid ->
            let callee = (Prog.site prog sid).Prog.callee in
            [
              Printf.sprintf "%s calls %s at site %d%s; '%s' ∈ %s(%s) and is not local to %s"
                (pname prog pid) (pname prog callee) sid
                (loc_suffix (site_loc locs sid))
                (vname prog var) (gname side) (pname prog callee)
                (pname prog callee);
            ]
          | Provenance.Gnested child ->
            [
              Printf.sprintf "'%s' escapes from %s, declared inside %s"
                (vname prog var) (pname prog child) (pname prog pid);
            ]
          | Provenance.Gbind { site; arg_pos } ->
            let s = Prog.site prog site in
            let callee = Prog.proc prog s.Prog.callee in
            let f = callee.Prog.formals.(arg_pos) in
            let bind_line =
              Printf.sprintf
                "%s passes '%s' by reference at site %d (arg %d)%s, binding '%s'; '%s' ∈ %s"
                (pname prog pid) (vname prog var) site arg_pos
                (loc_suffix (site_loc locs site))
                (qvname prog f) (qvname prog f) (rname side)
            in
            let tail =
              match rmod_chain a ~side ~var:f with
              | Some steps -> rmod_lines a ~locs ~side steps
              | None -> []
            in
            bind_line :: tail)
        steps
    in
    Some (chain_line :: step_lines)

let must_chain (a : Analyze.t) ~proc ~var =
  match a.Analyze.provenance with
  | None -> None
  | Some p ->
    if not (Bitvec.get (Mustmod.mustmod_of a.Analyze.mustmod proc) var) then
      None
    else begin
      let prog = a.Analyze.prog in
      let rec go pid vid acc seen =
        if List.mem (pid, vid) seen then Some (List.rev acc)
        else
          match Provenance.must_reason_of p ~proc:pid vid with
          | None -> None
          | Some (Provenance.Mdef as reason) ->
            Some (List.rev ({ mproc = pid; mvar = vid; reason } :: acc))
          | Some (Provenance.Mcall { site; pre } as reason) ->
            go
              (Prog.site prog site).Prog.callee
              pre
              ({ mproc = pid; mvar = vid; reason } :: acc)
              ((pid, vid) :: seen)
      in
      go proc var [] []
    end

let explain_must (a : Analyze.t) ~locs ~proc ~var =
  match must_chain a ~proc ~var with
  | None -> None
  | Some steps ->
    let prog = a.Analyze.prog in
    (* Compact arrow chain, like GMOD's: p →site 3 q … *)
    let buf = Buffer.create 64 in
    Buffer.add_string buf (pname prog proc);
    List.iter
      (fun ({ reason; _ } : must_step) ->
        match reason with
        | Provenance.Mcall { site; _ } ->
          Buffer.add_string buf
            (Printf.sprintf " →site %d %s" site
               (pname prog (Prog.site prog site).Prog.callee))
        | Provenance.Mdef -> ())
      steps;
    let chain_line =
      Printf.sprintf "'%s' ∈ MUSTMOD(%s): %s" (vname prog var)
        (pname prog proc) (Buffer.contents buf)
    in
    let step_lines =
      List.concat_map
        (fun { mproc = pid; mvar = vid; reason } ->
          match reason with
          | Provenance.Mdef ->
            [
              (match find_def a ~side:`Mod ~proc:pid ~var:vid with
              | Some (dp, ord) ->
                Printf.sprintf "%s writes '%s' on every path to exit%s"
                  (pname prog dp) (vname prog vid)
                  (loc_suffix (Locs.stmt locs ~proc:dp ord))
              | None ->
                Printf.sprintf "%s writes '%s' on every path to exit"
                  (pname prog pid) (vname prog vid));
            ]
          | Provenance.Mcall { site; pre } ->
            let callee = (Prog.site prog site).Prog.callee in
            [
              Printf.sprintf
                "%s calls %s at site %d%s; '%s' ∈ MUSTMOD(%s) lands on '%s'"
                (pname prog pid) (pname prog callee) site
                (loc_suffix (site_loc locs site))
                (qvname prog pre) (pname prog callee) (vname prog vid);
            ])
        steps
    in
    Some (chain_line :: step_lines)

let alias_link_lines (a : Analyze.t) ~locs links =
  let prog = a.Analyze.prog in
  List.map
    (fun { aproc; pair = (x, y); reason } ->
      let pair_str =
        Printf.sprintf "<%s, %s>" (vname prog x) (vname prog y)
      in
      match reason with
      | Provenance.Apositions { site; pos_i; pos_j } ->
        let s = Prog.site prog site in
        let base =
          match s.Prog.args.(pos_i) with
          | Prog.Arg_ref lv -> Ir.Expr.lvalue_base lv
          | Prog.Arg_value _ -> x
        in
        Printf.sprintf
          "%s in %s: '%s' is passed by reference at both args %d and %d of site %d%s"
          pair_str (pname prog aproc) (vname prog base) pos_i pos_j site
          (loc_suffix (site_loc locs site))
      | Provenance.Avisible { site; pos } ->
        let f = (Prog.proc prog aproc).Prog.formals.(pos) in
        let b = if f = x then y else x in
        Printf.sprintf
          "%s in %s: '%s', still visible inside %s, is passed by reference at arg %d of site %d%s"
          pair_str (pname prog aproc) (vname prog b) (pname prog aproc) pos
          site
          (loc_suffix (site_loc locs site))
      | Provenance.Apropagated { site; from_pair = (fx, fy) } ->
        Printf.sprintf
          "%s in %s: pair <%s, %s> holding in %s flows through the bindings of site %d%s"
          pair_str (pname prog aproc) (vname prog fx) (vname prog fy)
          (pname prog (Prog.site prog site).Prog.caller)
          site
          (loc_suffix (site_loc locs site))
      | Provenance.Ainherited { parent } ->
        Printf.sprintf "%s in %s: inherited from lexical parent %s" pair_str
          (pname prog aproc) (pname prog parent)
      | Provenance.Apointsto { site; pos } ->
        let s = Prog.site prog site in
        let actual =
          match s.Prog.args.(pos) with
          | Prog.Arg_ref lv -> Fmt.to_to_string (Ir.Pp.pp_lvalue prog) lv
          | Prog.Arg_value _ -> "?"
        in
        Printf.sprintf
          "%s in %s: the dereference actual '%s' at arg %d of site %d may \
           name the paired cell (points-to projection)%s"
          pair_str (pname prog aproc) actual pos site
          (loc_suffix (site_loc locs site)))
    links

let explain_alias (a : Analyze.t) ~locs ~proc x y =
  match alias_links a ~proc x y with
  | None -> None
  | Some links ->
    let prog = a.Analyze.prog in
    let head =
      Printf.sprintf "<%s, %s> ∈ ALIAS(%s)" (vname prog (min x y))
        (vname prog (max x y)) (pname prog proc)
    in
    Some (head :: alias_link_lines a ~locs links)
