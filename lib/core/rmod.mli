(** The reference-formal-parameter problem, solved on the binding
    multi-graph — Figure 1 of the paper.

    [RMOD(fp_i^p)] is [true] iff the [i]-th (by-reference) formal of
    [p] may be modified by an invocation of [p].  The system solved is
    equation (6):

    {v RMOD(m) = IMOD(m) ∨ ⋁_(m,n)∈Eβ RMOD(n) v}

    whose solution is constant on each strongly-connected component of
    β, so the algorithm is: (1) find the SCCs of β, (2) or together the
    [IMOD] bits within each component, (3) propagate from leaves to
    roots of the condensation, (4) copy each component's answer to its
    members.  Every step is [O(Nβ + Eβ)] single-word boolean
    operations — the "order of magnitude" gain over bit-vector methods
    (§3.2). *)

type result = {
  binding : Callgraph.Binding.t;
  rmod : bool array;  (** Per β node. *)
  steps : int;
      (** Simple boolean steps executed (node initialisations plus edge
          relaxations, over both the condensation and the copy-back) —
          the quantity the paper's [O(Nβ + Eβ)] bound counts.  Used by
          the empirical-linearity experiment. *)
}

type solution = {
  res : result;
  scc : Graphs.Scc.result;  (** Condensation of β, cached for reuse. *)
  members : int list array;  (** β nodes per component. *)
  edges_by_comp : int list array;
      (** Inter-component successor lists ([cs -> cd] with [cd < cs]). *)
  preds_by_comp : int list array;
      (** The reverse adjacency — change propagation walks these. *)
  comp_val : bool array;  (** Fixpoint value per component. *)
  seed : bool array;  (** The [IMOD] seed bit each β node was solved with. *)
}
(** A solved instance together with the condensation it was solved on —
    everything {!resolve} needs to push a seed change through without
    re-walking the graph. *)

val solve :
  ?label:string -> ?pool:Par.Pool.t -> Callgraph.Binding.t -> imod:Bitvec.t array -> result
(** [imod] is the per-procedure [IMOD] family (nesting extension
    included) from {!Frontend.Local.imod}; only its formal-parameter
    bits are consulted.

    With [?pool], steps 2 and 4 are chunked across workers and step 3
    runs as a condensation wavefront (step 1, the SCC pass, stays
    sequential); results and the [steps] total are identical to the
    sequential pass.

    Runs under an {!Obs.Span} named [label] (default ["rmod"]; the
    [USE]-side solve passes ["ruse"]) and adds its boolean step count
    to the [rmod.steps] registry counter. *)

val solve_cached :
  ?label:string -> ?pool:Par.Pool.t -> Callgraph.Binding.t -> imod:Bitvec.t array -> solution
(** As {!solve}, but keeps the condensation artifacts for incremental
    re-solving. *)

val resolve :
  ?label:string ->
  solution ->
  imod:Bitvec.t array ->
  changed_procs:int list ->
  solution * int list
(** [resolve sol ~imod ~changed_procs] updates a cached solution after
    an edit that left the binding multi-graph intact but may have
    changed the [IMOD] bits of the listed procedures.  Re-reads seeds
    only for those procedures' by-reference formals, then runs change
    propagation leaves-to-roots over the cached condensation: a
    component is re-evaluated only if its own seed flipped or a
    successor component's value actually changed (the
    condensation-ancestor cone, pruned at unchanged values).  Returns
    the new solution and the β nodes whose [RMOD] bit changed.  Equal,
    bit for bit, to [solve] on the new seeds (default span label
    ["rmod.region"]). *)

val modified : result -> int -> bool
(** [modified r vid]: is this by-reference formal modified?  [false]
    for variables that are not by-reference formals. *)

val to_var_set : result -> Bitvec.t
(** All modified by-reference formals, as a variable-id set. *)

val rmod_of_proc : result -> int -> int list
(** The modified by-reference formals of one procedure, as variable
    ids, ascending — the paper's [RMOD(p)]. *)

val pp : Format.formatter -> result -> unit
