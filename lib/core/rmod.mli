(** The reference-formal-parameter problem, solved on the binding
    multi-graph — Figure 1 of the paper.

    [RMOD(fp_i^p)] is [true] iff the [i]-th (by-reference) formal of
    [p] may be modified by an invocation of [p].  The system solved is
    equation (6):

    {v RMOD(m) = IMOD(m) ∨ ⋁_(m,n)∈Eβ RMOD(n) v}

    whose solution is constant on each strongly-connected component of
    β, so the algorithm is: (1) find the SCCs of β, (2) or together the
    [IMOD] bits within each component, (3) propagate from leaves to
    roots of the condensation, (4) copy each component's answer to its
    members.  Every step is [O(Nβ + Eβ)] single-word boolean
    operations — the "order of magnitude" gain over bit-vector methods
    (§3.2). *)

type result = {
  binding : Callgraph.Binding.t;
  rmod : bool array;  (** Per β node. *)
  steps : int;
      (** Simple boolean steps executed (node initialisations plus edge
          relaxations, over both the condensation and the copy-back) —
          the quantity the paper's [O(Nβ + Eβ)] bound counts.  Used by
          the empirical-linearity experiment. *)
}

val solve : ?label:string -> Callgraph.Binding.t -> imod:Bitvec.t array -> result
(** [imod] is the per-procedure [IMOD] family (nesting extension
    included) from {!Frontend.Local.imod}; only its formal-parameter
    bits are consulted.

    Runs under an {!Obs.Span} named [label] (default ["rmod"]; the
    [USE]-side solve passes ["ruse"]) and adds its boolean step count
    to the [rmod.steps] registry counter. *)

val modified : result -> int -> bool
(** [modified r vid]: is this by-reference formal modified?  [false]
    for variables that are not by-reference formals. *)

val to_var_set : result -> Bitvec.t
(** All modified by-reference formals, as a variable-id set. *)

val rmod_of_proc : result -> int -> int list
(** The modified by-reference formals of one procedure, as variable
    ids, ascending — the paper's [RMOD(p)]. *)

val pp : Format.formatter -> result -> unit
