(** Witness reconstruction from a {!Provenance} forest.

    Where {!Provenance} stores one machine word per first-set event,
    this module walks those reasons back into complete {e witness
    chains} — the call/β path that carried a fact to where it was
    observed, ending at source-level evidence (a def-site, a reference
    binding, an alias introduction).  Chains come in two forms:

    - {e structured} ({!gmod_chain}, {!rmod_chain}, {!alias_links}) —
      the raw steps, for tests that replay a chain against the graphs
      and for JSON output;
    - {e rendered} ({!explain_gmod}, {!explain_rmod},
      {!explain_alias}) — human-readable lines with source spans from
      a {!Frontend.Locs.t} table, the form [sidefx explain] prints and
      lint findings embed as their [witness] field.

    Every function returns [None] when the analysis carries no
    provenance, when the queried fact does not hold, or (for [rmod])
    when the variable has no β node. *)

type side = [ `Mod | `Use ]

type gmod_step = { proc : int; reason : Provenance.gmod_reason }
(** One link of a [GMOD]/[GUSE] chain: why [var ∈ GMOD(proc)].  A
    [Gcall]/[Gnested] reason continues at the callee/child with the
    same variable; [Glocal]/[Gbind] reasons are terminal. *)

type rmod_step = { node : int; reason : Provenance.rmod_reason }
(** One link of an [RMOD]/[RUSE] chain over β nodes; [Rseed] is
    terminal, [Redge e] continues at [e]'s destination. *)

type alias_link = {
  aproc : int;
  pair : int * int;
  reason : Provenance.alias_reason;
}
(** One recorded derivation step of the §5 closure, in the procedure
    [aproc] the pair holds in. *)

type must_step = { mproc : int; mvar : int; reason : Provenance.must_reason }
(** One link of a [MUSTMOD] chain: why [mvar ∈ MUSTMOD(mproc)].  An
    [Mcall {site; pre}] reason continues at [site]'s callee with the
    callee-side variable [pre]; [Mdef] (a definite write in the
    procedure's own body) is terminal. *)

val gmod_chain :
  Analyze.t -> side:side -> proc:int -> var:int -> gmod_step list option
(** The derivation path from [var ∈ GMOD(proc)] (resp. [GUSE]) down to
    its eq. 5 seed.  The head's [proc] is the queried procedure; each
    [Gcall sid] step continues at [sid]'s callee, each [Gnested c] at
    the child [c]; the last step carries the terminal reason. *)

val rmod_chain : Analyze.t -> side:side -> var:int -> rmod_step list option
(** The β path from the by-reference formal [var]'s node to a seed
    node (a formal in its owner's folded [IMOD]/[IUSE]). *)

val must_chain : Analyze.t -> proc:int -> var:int -> must_step list option
(** The derivation path from [var ∈ MUSTMOD(proc)] down to a definite
    write in some (transitive) callee's own body.  Each [Mcall] step is
    single-step evidence — one contributing call site on the witness
    path, not a proof that every path goes through it (the set
    membership itself certifies the every-path property). *)

val alias_links :
  Analyze.t -> proc:int -> int -> int -> alias_link list option
(** The full derivation of an alias pair: the queried pair's reason
    first, followed (depth-first) by the derivations of every pair a
    [Apropagated]/[Ainherited] reason references.  Acyclic because
    reasons reference strictly earlier fixpoint facts; each pair is
    expanded once. *)

val explain_gmod :
  Analyze.t ->
  locs:Frontend.Locs.t ->
  side:side ->
  proc:int ->
  var:int ->
  string list option
(** Rendered witness: a compact arrow chain ([p →site 3 q ⊃ r]) plus
    one evidence line per step, def-sites and call sites located
    through [locs]. *)

val explain_rmod :
  Analyze.t -> locs:Frontend.Locs.t -> side:side -> var:int -> string list option

val explain_must :
  Analyze.t -> locs:Frontend.Locs.t -> proc:int -> var:int -> string list option
(** Rendered [MUSTMOD] witness: a compact arrow chain plus one evidence
    line per step, ending at a definite write located through [locs]. *)

val explain_alias :
  Analyze.t -> locs:Frontend.Locs.t -> proc:int -> int -> int -> string list option

val find_def :
  Analyze.t -> side:side -> proc:int -> var:int -> (int * int) option
(** [(procedure, statement ordinal)] of the first statement (pre-order,
    the {!Frontend.Locs.stmt} ordinal) in [proc]'s own body — or,
    failing that, a lexical descendant's — whose direct
    [LMOD]/[LUSE] contains [var]. *)
