(** Flow-insensitive reference-parameter alias analysis.

    §5 of the paper assumes "simple sets of alias pairs are available
    for each procedure"; this module computes them in the standard
    Banning/Cooper style, so the [MOD]/[USE] step runs on real input.

    A pair [<x, y> ∈ ALIAS(p)] means [x] and [y] may name the same
    location on some entry to [p].  Pairs are introduced by
    by-reference parameter passing at each call site [s : r → q]:

    - the same base variable passed at two by-reference positions
      [i ≠ j] introduces [<f_i, f_j>] in the callee;
    - a base variable [b] that is itself visible inside the callee
      (a global, or a local of a lexical ancestor of the callee) passed
      at position [i] introduces [<f_i, b>];
    - an existing pair [<x, y> ∈ ALIAS(r)] propagates: both passed →
      [<f_i, f_j>]; [x] passed and [y] visible in the callee →
      [<f_i, y>].

    Pairs are inherited down the nesting tree: anything that may hold
    on entry to [p] also holds inside procedures declared in [p], which
    execute within [p]'s activation.

    The pairs are closed by a worklist over call sites.  Two distinct
    array elements of the same array are (conservatively) treated like
    the whole arrays, consistent with the §3 bit granularity. *)

type t

val norm : int -> int -> int * int
(** Order a pair as [(min, max)] — the key form of {!pairs} and of
    {!Provenance.alias_table}. *)

val compute :
  ?provenance:Provenance.alias_table ->
  ?deref:(int -> int -> int list) ->
  ?seeds:(int * (int * int) * int * int) list ->
  Ir.Info.t ->
  t
(** With [~provenance], the fixpoint records the §5 rule that first
    introduced each pair into the given table (see {!Provenance});
    the computed pairs — and the counted bit-vector operations — are
    identical either way.

    [~deref] (the points-to projection, {!Ptsto.deref}) expands a
    dereference actual [*...*p] into one by-reference binding per
    variable the dereference may name, so the §5 introduction and
    propagation rules fire for pointer-carried bindings too; such
    pairs carry the {!Provenance.Apointsto} reason.  [~seeds] adds
    pre-derived pairs [(proc, (x, y), site, pos)] — the heap-overlap
    formal pairs computed in {!Analyze} — before the fixpoint. *)

val pairs : t -> int -> (int * int) list
(** [ALIAS(p)] as normalised [(min vid, max vid)] pairs, sorted. *)

val pointer_tainted : t -> proc:int -> int * int -> bool
(** Did some derivation of the pair pass through pointer resolution —
    a dereference binding expanded by the points-to projection, or a
    heap-overlap seed — transitively through §5 propagation and
    nesting inheritance?  Pairs that owe their
    existence purely to by-reference parameter binding answer [false].
    The must-modify analysis keys its demotion strength on this: a
    binding-only pair re-resolves exactly at every call site, a
    pointer-tainted one does not (see {!Mustmod}). *)

val aliases_of : t -> proc:int -> var:int -> int list
(** Variables possibly aliased to one variable on entry to [proc],
    ascending. *)

val may_alias : t -> proc:int -> int -> int -> bool

val close : t -> proc:int -> Bitvec.t -> Bitvec.t
(** One-step alias extension of a variable set within a procedure —
    the §5 [MOD(s)] rule: every alias of a member is added (fresh
    vector). *)

val total_pairs : t -> int
(** Σ_p |ALIAS(p)| — the size term the paper's §5 cost analysis is
    linear in. *)

val pp : Ir.Prog.t -> Format.formatter -> t -> unit
