(** One-call driver for the whole analysis pipeline.

    Runs, in order: program views ({!Ir.Info}), local analysis
    ({!Frontend.Local}), call multi-graph and binding multi-graph
    construction ({!Callgraph}), [RMOD]/[RUSE] on β (Figure 1),
    [IMOD+]/[IUSE+] (equation 5), [GMOD]/[GUSE] ([findgmod], Figure 2 —
    or its multi-level variant when the program nests procedures more
    than one level deep), alias pairs, and the per-site summary
    machinery of §5.

    The [USE] side is run through the same algorithms with the [USE]
    seeds — the paper's "analogous solution". *)

type t = {
  prog : Ir.Prog.t;
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  ptsto : Ptsto.t option;
      (** The points-to solution; [None] iff the program is
          pointer-free (then every phase ran its original, pointer-less
          code path). *)
  deref : int -> int -> int list;
      (** The dereference projection every phase consumed:
          [Ptsto.deref] of the solution above, or the empty projection
          for pointer-free programs. *)
  imod : Bitvec.t array;  (** Nesting-extended [IMOD], per procedure. *)
  iuse : Bitvec.t array;
  rmod : Rmod.result;
  ruse : Rmod.result;
  imod_plus : Bitvec.t array;
  iuse_plus : Bitvec.t array;
  gmod : Bitvec.t array;
  guse : Bitvec.t array;
  alias : Alias.t;
  mustmod : Mustmod.result;
      (** Interprocedural must-modify summaries — the
          intersection-over-paths dual of [gmod], with
          [MUSTMOD(p) ⊆ GMOD(p)] enforced ({!Mustmod}). *)
  summary : Summary.t;
  provenance : Provenance.t option;
      (** Derivation forest over the facts above; present iff the run
          asked for it.  [sidefx explain] and lint witnesses read it. *)
}

val run :
  ?force_flat:bool ->
  ?jobs:int ->
  ?pool:Par.Pool.t ->
  ?provenance:bool ->
  ?ptsto:Ptsto.tier ->
  Ir.Prog.t ->
  t
(** Analyze a program.  When the program declares procedures below
    nesting level 1 the multi-level [findgmod] is used automatically;
    [force_flat] forces plain Figure 2 regardless (used by tests and
    ablations).

    Parallelism: [?pool], when given, is used for the local, [RMOD],
    and flat [GMOD]/[GUSE] phases (the nested single-pass solver stays
    sequential); otherwise [?jobs] (default [1]; [0] means
    [Domain.recommended_domain_count ()]) builds a transient
    {!Par.Pool} for this run — [jobs = 1] takes the sequential code
    paths unchanged.  Results and [bitvec.vector_ops]/[word_ops]
    totals are bit-identical at every jobs setting (docs/parallel.md).

    [~provenance:true] (default [false]) additionally records the
    first derivation reason of every fact ({!Provenance}); the
    analysis results and the counted bit-vector operations are
    identical either way — provenance construction reads bits only
    through uncounted single-bit operations.

    [~ptsto] picks the points-to tier (default
    {!Ptsto.Steensgaard}) used to build the dereference projection on
    programs with pointers; pointer-free programs never run the solver
    and analyze identically under either tier. *)

val mod_of_site : t -> int -> Bitvec.t
(** [MOD(s)] — §5's final answer for a call site. *)

val use_of_site : t -> int -> Bitvec.t

val dmod_of_site : t -> int -> Bitvec.t
val duse_of_site : t -> int -> Bitvec.t

val gmod_of : t -> int -> Bitvec.t
(** [GMOD(p)] by pid.  Do not mutate. *)

val guse_of : t -> int -> Bitvec.t

val mustmod_of : t -> int -> Bitvec.t
(** [MUSTMOD(p)] by pid — variables definitely written on every
    terminating path through an invocation of [p].  Do not mutate. *)

val modified_anywhere : t -> Bitvec.t
(** [⋃_p GMOD(p) ∪ IMOD(p)] — every variable some procedure may write.
    Fresh vector; client analyses (the lint engine's write-only-global
    rule) read whole-program effect coverage off this. *)

val used_anywhere : t -> Bitvec.t
(** [⋃_p GUSE(p) ∪ IUSE(p)] — every variable some procedure may read
    (argument-evaluation [LUSE] included, via [IUSE]).  Fresh vector. *)

val pp_report : Format.formatter -> t -> unit
(** Human-readable report: per-procedure [RMOD]/[GMOD]/[GUSE], alias
    pairs, and per-site [MOD]/[USE] sets. *)
