(** Interprocedural must-modify analysis — the intersection-over-paths
    dual of the paper's [GMOD].

    [MUSTMOD(p)] under-approximates the set of variables an invocation
    of [p] writes on {e every} path to its exit (assuming it
    terminates; non-termination makes every kill claim vacuous, which
    is the sound direction for a kill set).  It is computed on the same
    condensation machinery as the may-side:

    - {b IMUSTDEF}: per procedure, the least fixpoint of the forward
      must-reach system over the body — solved by structural recursion,
      which coincides with the CFG fixpoint because MiniProc control
      flow is fully structured.  Sequences accumulate, conditionals
      contribute the intersection of their branches, loop bodies
      contribute nothing (zero iterations), a [for] header always
      writes its index, and a call contributes the callee's bound
      [MUSTMOD] projected into the caller's frame.
    - {b Propagation}: bottom-up over the call condensation in reverse
      topological component order (callees final before callers);
      cyclic components iterate their members from ∅ to the least
      fixpoint, so recursion only keeps what every unrolling agrees
      on.
    - {b Demotion}: a variable in any §5 alias pair of the procedure
      (pointer-carried and heap-seeded pairs included) is demoted from
      must to may, and the result is capped by [GMOD] — the enforced
      [MUSTMOD(p) ⊆ GMOD(p)] invariant.

    The dataflow layer's call kill sets ({!Dataflow.Transfer} in
    [lib/dataflow]) project these sets per site; docs/mustmod.md has
    the full write-up. *)

type result = {
  prog : Ir.Prog.t;
  mustmod : Bitvec.t array;  (** Final per-procedure [MUSTMOD], by pid. *)
  intra : Bitvec.t array;
      (** Call-free [IMUSTDEF] — definite assignments by the
          procedure's own statements, before demotion.  Grounds the
          provenance forest and is reported as the intraprocedural
          column of [sidefx must]. *)
  demoted : Bitvec.t array;
      (** Per-procedure alias-demoted variables (members of any §5
          pair). *)
  rounds : int;  (** Component-iteration rounds executed. *)
}

type solution = {
  res : result;
  scc : Graphs.Scc.result;  (** Call-graph condensation, cached. *)
  members : int list array;  (** Pids per component. *)
  succs_by_comp : int list array;  (** Caller comp → callee comps. *)
  preds_by_comp : int list array;  (** Callee comp → caller comps. *)
  callers_in_comp : int list array;
      (** Per pid: its callers {e inside} its own component, deduped
          ascending — the worklist re-entry edges of the cyclic-SCC
          iteration. *)
  trivial : bool array;  (** Singleton-without-self-loop components. *)
}
(** A solved instance plus the condensation it was solved on —
    everything {!resolve} needs to push an edit through without
    re-walking the graph. *)

val solve :
  ?label:string ->
  ?pool:Par.Pool.t ->
  Ir.Info.t ->
  Callgraph.Call.t ->
  alias:Alias.t ->
  gmod:Bitvec.t array ->
  result
(** Solve the whole program.  With [?pool], components are scheduled as
    a wavefront over the condensation levels; per-component work is the
    sequential code, so results and counted bit-vector op totals are
    bit-identical at every jobs setting.  Runs under an {!Obs.Span}
    named [label] (default ["mustmod"]) and adds its round count to the
    [mustmod.rounds] registry counter. *)

val solve_cached :
  ?label:string ->
  ?pool:Par.Pool.t ->
  Ir.Info.t ->
  Callgraph.Call.t ->
  alias:Alias.t ->
  gmod:Bitvec.t array ->
  solution
(** As {!solve}, but keeps the condensation artifacts for incremental
    re-solving. *)

val resolve :
  ?label:string ->
  solution ->
  Ir.Info.t ->
  alias:Alias.t ->
  gmod:Bitvec.t array ->
  changed_procs:int list ->
  solution * int list
(** [resolve sol info ~alias ~gmod ~changed_procs] updates a
    cached solution after a body edit that left the call graph's shape
    intact.  Re-derives the edited procedures' own gen and demotion
    sets, then runs change propagation leaves-to-roots over the cached
    condensation (cyclic components re-solve from ∅ — must facts can
    shrink under an edit); the walk stops where recomputed sets come
    out unchanged — the condensation-ancestor cone, pruned.  Returns
    the new solution and the pids whose [MUSTMOD] changed, ascending.
    Equal, bit for bit, to {!solve_cached} on the edited program
    (default span label ["mustmod.region"]). *)

val ground_reasons : result -> Provenance.must_table -> unit
(** Fill a pre-created {!Provenance.must_table} with a first-reason
    derivation forest over the solved facts: a breadth-first search
    from the [Mdef] seeds ([mustmod ∩ intra]) through the call-site
    projections, so reasons are acyclic even inside call cycles.
    Touches bits only through [Bitvec.get] — op-count metrics are
    identical whether or not provenance is on. *)

val mustmod_of : result -> int -> Bitvec.t
(** [MUSTMOD(p)] by pid.  Do not mutate. *)

val intra_of : result -> int -> Bitvec.t
val demoted_of : result -> int -> Bitvec.t

val check_subset : result -> gmod:Bitvec.t array -> bool
(** Does [MUSTMOD(p) ⊆ GMOD(p)] hold for every procedure?  True by
    construction; exported so tests assert the invariant end to end. *)

val pp : Format.formatter -> result -> unit
