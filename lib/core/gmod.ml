module Digraph = Graphs.Digraph
module Prog = Ir.Prog

(* Iterative rendering of Figure 2.  The recursion of [search] becomes
   an explicit frame stack; everything else follows the paper line by
   line: line 8 is the [gmod.(v) <- copy seed.(v)] on push, line 17 is
   [add_escaped], lines 19-25 are [close_component].

   [~prune] selects how equation (4)'s [∖ LOCAL(src)] strip happens:
   [`Nonlocal] performs it explicitly (blit + intersect with
   NON-LOCAL + union — the general form, needed whenever vectors span
   the full variable universe), while [`None] skips it because the
   caller solves over a compact escape universe that contains no
   procedure-locals at all (see renumber.ml), collapsing the fold to a
   single union.

   With [?region:(dirty, cached)] the traversal is confined to the
   procedures in [dirty]: every other node keeps its [cached] vector
   (shared, not copied) and is pre-marked as an already-closed
   component, so an edge into it takes the forward/cross-edge branch
   and folds the cached value in.  Because the dirty set is closed
   under reachability-into-it (condensation ancestors), a clean node's
   equation-(4) value cannot have changed, and the region run computes
   the same fixpoint Figure 2 computes from scratch. *)
let solve_seq ?region ~prune info (call : Callgraph.Call.t) ~seed =
  let g = call.Callgraph.Call.graph in
  let n = Digraph.n_nodes g in
  let prog = call.Callgraph.Call.prog in
  let active =
    match region with
    | None -> fun _ -> true
    | Some (dirty, _) -> Bitvec.get dirty
  in
  let gmod =
    match region with
    | None -> Array.map Bitvec.copy seed
    | Some (_, cached) ->
      Array.init n (fun v -> if active v then Bitvec.copy seed.(v) else cached.(v))
  in
  let dfn = Array.make n 0 in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let tarjan_stack = ref [] in
  let next_dfn = ref 1 in
  let scratch = Bitvec.create (Bitvec.length seed.(0)) in
  (* GMOD[dst] ∪= GMOD[src] ∖ LOCAL[src]  (equation (4), one edge). *)
  let add_escaped ~src ~dst =
    match prune with
    | `Nonlocal ->
      Bitvec.blit ~src:gmod.(src) ~dst:scratch;
      ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info src) ~dst:scratch);
      ignore (Bitvec.union_into ~src:scratch ~dst:gmod.(dst))
    | `None -> ignore (Bitvec.union_into ~src:gmod.(src) ~dst:gmod.(dst))
  in
  let close_component root =
    Bitvec.blit ~src:gmod.(root) ~dst:scratch;
    (match prune with
    | `Nonlocal ->
      ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info root) ~dst:scratch)
    | `None -> ());
    let rec pop () =
      match !tarjan_stack with
      | [] -> assert false
      | u :: rest ->
        tarjan_stack := rest;
        on_stack.(u) <- false;
        ignore (Bitvec.union_into ~src:scratch ~dst:gmod.(u));
        if u <> root then pop ()
    in
    pop ()
  in
  let succs = Array.make n [||] in
  for v = 0 to n - 1 do
    if active v then begin
      let deg = Digraph.out_degree g v in
      let a = Array.make deg 0 in
      let i = ref 0 in
      Digraph.iter_succ g v (fun w ->
          a.(!i) <- w;
          incr i);
      succs.(v) <- a
    end
    else
      (* A clean node is a closed component: edges into it fold its
         cached value, edges out of it are never walked. *)
      dfn.(v) <- -1
  done;
  let frame_node = Array.make (n + 1) 0 in
  let frame_next = Array.make (n + 1) 0 in
  let search root =
    if dfn.(root) = 0 then begin
      let sp = ref 0 in
      let push v =
        dfn.(v) <- !next_dfn;
        lowlink.(v) <- !next_dfn;
        incr next_dfn;
        tarjan_stack := v :: !tarjan_stack;
        on_stack.(v) <- true;
        frame_node.(!sp) <- v;
        frame_next.(!sp) <- 0;
        incr sp
      in
      push root;
      while !sp > 0 do
        let v = frame_node.(!sp - 1) in
        let i = frame_next.(!sp - 1) in
        if i < Array.length succs.(v) then begin
          frame_next.(!sp - 1) <- i + 1;
          let q = succs.(v).(i) in
          if dfn.(q) = 0 then push q (* tree edge: continue below when q pops *)
          else if on_stack.(q) && dfn.(q) < dfn.(v) then
            (* Back or cross edge within the current component. *)
            lowlink.(v) <- min dfn.(q) lowlink.(v)
          else
            (* Forward edge, or cross edge to a closed component:
               partial application of equation (4). *)
            add_escaped ~src:q ~dst:v
        end
        else begin
          decr sp;
          if lowlink.(v) = dfn.(v) then close_component v;
          if !sp > 0 then begin
            let parent = frame_node.(!sp - 1) in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v);
            (* Tree edge (parent, v), after the subtree finished. *)
            add_escaped ~src:v ~dst:parent
          end
        end
      done
    end
  in
  if active prog.Prog.main then search prog.Prog.main;
  for v = 0 to n - 1 do
    if active v then search v
  done;
  gmod

(* Condensation-wavefront rendering of the same pass (docs/parallel.md).

   A graph-only Tarjan ([Par.Wavefront.schedule], replicating the
   sequential visit order exactly) first condenses the active subgraph
   and levels the condensation.  Each component then becomes one task:
   a Figure-2 traversal restricted to the component's members, started
   at the node where the sequential DFS first entered it.  Every edge
   leaving the component points to a strictly lower level — complete
   before this level's batch started — so it takes the
   forward/cross-edge branch of line 17 and folds in a {e final}
   value, exactly as the sequential run folds closed components (the
   sequential run's tree-edge detours into lower components change
   nothing inside this component before that same fold, and their
   lowlink propagation is provably a no-op).  Discovery order,
   branching, and close order inside the component replicate the
   sequential run, so both the resulting vectors and the
   [bitvec.vector_ops]/[word_ops] totals are identical — batching only
   groups whole components, never reorders the operations any single
   vector sees.

   Components are scheduled through a coarse [Par.Wavefront.plan]:
   consecutive singleton levels fuse into inline sequential stages
   (no barrier), wide levels split into at most [2 * jobs] batches
   balanced by live seed size ([Bitvec.live_estimate]) plus member
   count — summary-size-weighted, not node-count-weighted.  Per-slot
   scratch vectors are allocated once per solve and stay hot across
   every level.

   Race discipline: a task checks [comp.(q) <> c] {e first} and never
   reads [dfn]/[lowlink]/[on_stack]/[gmod] of a node owned by another
   same-level component; lower-level state is frozen by the batch
   join.  Seed copies happen at first visit (push) instead of
   up-front — one copy per active node either way. *)
let solve_par ?region ~prune info (call : Callgraph.Call.t) ~seed ~pool =
  let g = call.Callgraph.Call.graph in
  let n = Digraph.n_nodes g in
  let prog = call.Callgraph.Call.prog in
  let active =
    match region with
    | None -> fun _ -> true
    | Some (dirty, _) -> Bitvec.get dirty
  in
  let succs = Array.make n [||] in
  for v = 0 to n - 1 do
    if active v then begin
      let deg = Digraph.out_degree g v in
      let a = Array.make deg 0 in
      let i = ref 0 in
      Digraph.iter_succ g v (fun w ->
          a.(!i) <- w;
          incr i);
      succs.(v) <- a
    end
  done;
  let sched =
    Par.Wavefront.schedule ~n ~active ~first_root:prog.Prog.main ~succs ()
  in
  let comp = sched.Par.Wavefront.comp in
  (* Active entries are placeholders (never read before the first-visit
     copy overwrites them); clean entries share their cached vector. *)
  let gmod =
    match region with
    | None -> Array.copy seed
    | Some (_, cached) ->
      Array.init n (fun v -> if active v then seed.(v) else cached.(v))
  in
  let jobs = Par.Pool.jobs pool in
  let scratch_len = Bitvec.length seed.(0) in
  let scratches = Array.init jobs (fun _ -> Bitvec.create scratch_len) in
  let frame_nodes = Array.init jobs (fun _ -> Array.make (n + 1) 0) in
  let frame_nexts = Array.init jobs (fun _ -> Array.make (n + 1) 0) in
  let dfn = Array.make n 0 in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let run_comp ~slot ~comp:c =
    let scratch = scratches.(slot) in
    let frame_node = frame_nodes.(slot) in
    let frame_next = frame_nexts.(slot) in
    let add_escaped ~src ~dst =
      match prune with
      | `Nonlocal ->
        Bitvec.blit ~src:gmod.(src) ~dst:scratch;
        ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info src) ~dst:scratch);
        ignore (Bitvec.union_into ~src:scratch ~dst:gmod.(dst))
      | `None -> ignore (Bitvec.union_into ~src:gmod.(src) ~dst:gmod.(dst))
    in
    let tarjan_stack = ref [] in
    let close_component root =
      Bitvec.blit ~src:gmod.(root) ~dst:scratch;
      (match prune with
      | `Nonlocal ->
        ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info root) ~dst:scratch)
      | `None -> ());
      let rec pop () =
        match !tarjan_stack with
        | [] -> assert false
        | u :: rest ->
          tarjan_stack := rest;
          on_stack.(u) <- false;
          ignore (Bitvec.union_into ~src:scratch ~dst:gmod.(u));
          if u <> root then pop ()
      in
      pop ()
    in
    (* Task-local numbering: only same-component dfn values are ever
       compared, so relative order is all that matters. *)
    let next_dfn = ref 1 in
    let sp = ref 0 in
    let push v =
      gmod.(v) <- Bitvec.copy seed.(v);
      dfn.(v) <- !next_dfn;
      lowlink.(v) <- !next_dfn;
      incr next_dfn;
      tarjan_stack := v :: !tarjan_stack;
      on_stack.(v) <- true;
      frame_node.(!sp) <- v;
      frame_next.(!sp) <- 0;
      incr sp
    in
    push sched.Par.Wavefront.entry.(c);
    while !sp > 0 do
      let v = frame_node.(!sp - 1) in
      let i = frame_next.(!sp - 1) in
      if i < Array.length succs.(v) then begin
        frame_next.(!sp - 1) <- i + 1;
        let q = succs.(v).(i) in
        if comp.(q) <> c then
          (* Strictly lower level (or clean): final, fold it in. *)
          add_escaped ~src:q ~dst:v
        else if dfn.(q) = 0 then push q
        else if on_stack.(q) && dfn.(q) < dfn.(v) then
          lowlink.(v) <- min dfn.(q) lowlink.(v)
        else add_escaped ~src:q ~dst:v
      end
      else begin
        decr sp;
        if lowlink.(v) = dfn.(v) then close_component v;
        if !sp > 0 then begin
          let parent = frame_node.(!sp - 1) in
          lowlink.(parent) <- min lowlink.(parent) lowlink.(v);
          add_escaped ~src:v ~dst:parent
        end
      end
    done
  in
  (* Batch cost: member count plus live seed words — an uncounted O(1)
     probe per node that weighs components by estimated summary size. *)
  let cost_of = Array.make (max 1 sched.Par.Wavefront.n_comps) 0 in
  for v = 0 to n - 1 do
    let c = comp.(v) in
    if c >= 0 then
      cost_of.(c) <-
        cost_of.(c) + 1 + (Bitvec.live_estimate seed.(v) / Sys.int_size)
  done;
  let plan =
    Par.Wavefront.plan sched.Par.Wavefront.levels ~jobs ~cost:(Array.get cost_of)
  in
  Par.Wavefront.run_plan (Some pool) plan ~f:run_comp;
  gmod

let solve_seeded ?region ?pool ?(prune = `Nonlocal) info call ~seed =
  match pool with
  | Some pool -> solve_par ?region ~prune info call ~seed ~pool
  | None -> solve_seq ?region ~prune info call ~seed

(* Flat programs take the compact escape-universe path: renumber the
   seeded globals (renumber.ml), run the same traversal over compact
   vectors with the local-strip implicit, and expand the results onto
   the IMOD+ bases.  Nested programs (any procedure visible inside
   another's scope) keep the explicit [`Nonlocal] strip over the full
   universe. *)
let solve_full ?pool info (call : Callgraph.Call.t) ~seed =
  if Prog.max_level call.Callgraph.Call.prog <= 1 then begin
    let rn = Renumber.build info ~seed in
    let compact =
      solve_seeded ?pool ~prune:`None info call ~seed:(Renumber.compact_seeds rn)
    in
    Renumber.expand rn ~base:seed ~compact
  end
  else solve_seeded ?pool info call ~seed

let solve ?(label = "gmod") ?pool info call ~imod_plus =
  Obs.Span.with_ label (fun () -> solve_full ?pool info call ~seed:imod_plus)

let solve_use ?(label = "guse") ?pool info call ~iuse_plus =
  Obs.Span.with_ label (fun () -> solve_full ?pool info call ~seed:iuse_plus)

let solve_region ?(label = "gmod.region") ?pool info call ~seed ~dirty ~cached =
  Obs.Span.with_ label (fun () ->
      solve_seeded ~region:(dirty, cached) ?pool info call ~seed)
