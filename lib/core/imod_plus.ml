module Prog = Ir.Prog
module Expr = Ir.Expr

let compute ?(label = "imod_plus") ?(deref = Frontend.Local.no_deref) info ~rmod
    ~imod =
  Obs.Span.with_ label @@ fun () ->
  let prog = Ir.Info.prog info in
  let result = Array.map Bitvec.copy imod in
  Prog.iter_sites prog (fun s ->
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          match arg with
          | Prog.Arg_value _ -> ()
          | Prog.Arg_ref lv ->
            if Rmod.modified rmod callee.Prog.formals.(i) then (
              match lv with
              | Expr.Lvar b | Expr.Lindex (b, _) ->
                Bitvec.set result.(s.Prog.caller) b
              | Expr.Lderef (base, d) ->
                List.iter
                  (fun v -> Bitvec.set result.(s.Prog.caller) v)
                  (deref base d)))
        s.Prog.args);
  Ir.Info.fold_up_nesting info result
