(* Compact escape-universe renumbering.  See renumber.mli.

   In a flat program (no procedure nesting, [Prog.max_level <= 1]) the
   only variables equation (4) ever propagates across a call edge are
   globals: GMOD[p] ∖ LOCAL[p] ⊆ GLOBAL, because every non-global is
   local to exactly one procedure and visible nowhere else.  So the
   Figure-2 fold can run over vectors indexed by a renumbered compact
   universe — the globals that actually occur in some seed — instead
   of the full variable universe.  Three structural wins:

   - the [∖ LOCAL] strip becomes implicit (locals are simply not in
     the universe), turning the three-op escape fold into one union;
   - per-procedure seed bits at high variable ids (each procedure's
     own formals/locals) no longer inflate the occupied prefix of
     promoted dense vectors — compact sets stay compact;
   - the compact universe is usually far smaller than [n_vars], so
     even fully-saturated summary sets cost G/word words per fold, the
     information floor.

   Compact ids are assigned in first-touch order scanning procedures
   ascending and seed bits ascending — deterministic and independent
   of any schedule, which is what keeps sequential and pooled solves
   op-count-identical. *)

type t = {
  n_compact : int;
  of_compact : int array;
  compact_seeds : Bitvec.t array;
}

let n_compact t = t.n_compact
let of_compact t c = t.of_compact.(c)

let build info ~seed =
  let nv = Ir.Info.n_vars info in
  let n = Array.length seed in
  let to_compact = Array.make nv (-1) in
  let rev_order = ref [] in
  let count = ref 0 in
  (* Per-proc compact members, collected during the same counted scan
     that discovers the universe (the [iter] is the honest read of the
     seed; vector construction below reuses the cached lists). *)
  let members = Array.make n [] in
  for p = 0 to n - 1 do
    let mine = ref [] in
    Bitvec.iter
      (fun v ->
        if Ir.Info.var_level info v = 0 then begin
          if to_compact.(v) < 0 then begin
            to_compact.(v) <- !count;
            rev_order := v :: !rev_order;
            incr count
          end;
          mine := to_compact.(v) :: !mine
        end)
      seed.(p);
    members.(p) <- !mine
  done;
  let n_compact = !count in
  let of_compact = Array.make (max 1 n_compact) 0 in
  List.iteri (fun i v -> of_compact.(n_compact - 1 - i) <- v) !rev_order;
  let compact_seeds =
    Array.map (fun cs -> Bitvec.of_list n_compact (List.rev cs)) members
  in
  { n_compact; of_compact; compact_seeds }

let compact_seeds t = t.compact_seeds

let expand t ~base ~compact =
  Array.init (Array.length base) (fun p ->
      let out = Bitvec.copy base.(p) in
      Bitvec.iter (fun c -> Bitvec.set out t.of_compact.(c)) compact.(p);
      out)
