(** [IMOD+] — equation (5) of the paper:

    {v IMOD+(p) = IMOD(p) ∪ ⋃_(e=(p,q)) b_e(RMOD(q)) v}

    where [b_e] is restricted to actual-to-formal bindings: for each
    call site in [p] and each by-reference formal of the callee that
    {!Rmod} marks modified, the {e base variable} of the corresponding
    actual is added.  (When the actual is an array element [A[i]], the
    base is the whole array [A] — the §3 bit granularity.)

    The result is then closed under the §3.3 nesting extension
    ({!Ir.Info.fold_up_nesting}), the "corresponding redefinition of
    IMOD+" the paper calls for: effects that a nested procedure's call
    sites inflict on variables non-local to it belong to every
    enclosing procedure as well. *)

val compute :
  ?label:string ->
  ?deref:(int -> int -> int list) ->
  Ir.Info.t ->
  rmod:Rmod.result ->
  imod:Bitvec.t array ->
  Bitvec.t array
(** Per-procedure [IMOD+]; [imod] must be the nesting-extended family
    the [rmod] solve was seeded with.  Runs under an {!Obs.Span} named
    [label] (default ["imod_plus"]; the [USE] side passes
    ["iuse_plus"]). *)
