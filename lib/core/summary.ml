module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt

type t = {
  info : Ir.Info.t;
  gmod : Bitvec.t array;
  guse : Bitvec.t array;
  alias : Alias.t;
  deref : int -> int -> int list;
}

let make ?(deref = Frontend.Local.no_deref) info ~gmod ~guse ~alias =
  { info; gmod; guse; alias; deref }

let projection t ~mode sid =
  let prog = Ir.Info.prog t.info in
  let s = Prog.site prog sid in
  let callee = Prog.proc prog s.Prog.callee in
  let summary =
    match mode with
    | `Mod -> t.gmod.(s.Prog.callee)
    | `Use -> t.guse.(s.Prog.callee)
  in
  (* Non-local survivors. *)
  let result = Bitvec.copy summary in
  ignore (Bitvec.inter_into ~src:(Ir.Info.non_local t.info s.Prog.callee) ~dst:result);
  (* Formal-to-actual projection. *)
  Array.iteri
    (fun i arg ->
      match arg with
      | Prog.Arg_value _ -> ()
      | Prog.Arg_ref lv ->
        if Bitvec.get summary callee.Prog.formals.(i) then (
          match lv with
          | Expr.Lvar b | Expr.Lindex (b, _) -> Bitvec.set result b
          (* A dereference actual binds the cell [*...*p] may name —
             the effect lands on the pointed-to variables, never on
             the pointer itself. *)
          | Expr.Lderef (base, d) ->
            List.iter (fun v -> Bitvec.set result v) (t.deref base d)))
    s.Prog.args;
  result

let dmod_site t sid = projection t ~mode:`Mod sid

let duse_site t sid =
  let prog = Ir.Info.prog t.info in
  let result = projection t ~mode:`Use sid in
  List.iter (fun v -> Bitvec.set result v)
    (Frontend.Local.luse_stmt ~deref:t.deref prog (Stmt.Call sid));
  result

let close_in_proc t ~proc set = Alias.close t.alias ~proc set

let mod_site t sid =
  let prog = Ir.Info.prog t.info in
  let s = Prog.site prog sid in
  close_in_proc t ~proc:s.Prog.caller (dmod_site t sid)

let use_site t sid =
  let prog = Ir.Info.prog t.info in
  let s = Prog.site prog sid in
  close_in_proc t ~proc:s.Prog.caller (duse_site t sid)

(* Equation (2) over a whole statement: local effects of the statement
   and all sub-statements, plus the projection of every contained call
   site. *)
let stmt_effect t ~mode ~local_of stmt =
  let prog = Ir.Info.prog t.info in
  let result = Ir.Info.fresh t.info in
  Stmt.iter
    (fun s ->
      List.iter (fun v -> Bitvec.set result v) (local_of prog s);
      match s with
      | Stmt.Call sid ->
        let proj = projection t ~mode sid in
        ignore (Bitvec.union_into ~src:proj ~dst:result)
      | Stmt.Assign _ | Stmt.If _ | Stmt.While _ | Stmt.For _ | Stmt.Read _
      | Stmt.Write _ ->
        ())
    [ stmt ];
  result

let dmod_stmt t ~proc:_ stmt =
  stmt_effect t ~mode:`Mod
    ~local_of:(fun prog s -> Frontend.Local.lmod_stmt ~deref:t.deref prog s)
    stmt

let duse_stmt t ~proc:_ stmt =
  stmt_effect t ~mode:`Use
    ~local_of:(fun prog s -> Frontend.Local.luse_stmt ~deref:t.deref prog s)
    stmt

let mod_stmt t ~proc stmt = close_in_proc t ~proc (dmod_stmt t ~proc stmt)
let use_stmt t ~proc stmt = close_in_proc t ~proc (duse_stmt t ~proc stmt)
