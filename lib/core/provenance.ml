(* Derivation forests for the finished solutions.  See provenance.mli.

   Everything here reads bits with [Bitvec.get] only — no counted
   operations, not even [Bitvec.fold]/[iter] (those count one vector op
   per call) — so building provenance leaves the op-count metrics
   exactly as the solvers left them. *)

module Prog = Ir.Prog
module Expr = Ir.Expr
module Binding = Callgraph.Binding
module Digraph = Graphs.Digraph

type rmod_reason = Rseed | Redge of int

type gmod_reason =
  | Glocal
  | Gbind of { site : int; arg_pos : int }
  | Gnested of int
  | Gcall of int

type alias_reason =
  | Apositions of { site : int; pos_i : int; pos_j : int }
  | Avisible of { site : int; pos : int }
  | Apropagated of { site : int; from_pair : int * int }
  | Ainherited of { parent : int }
  | Apointsto of { site : int; pos : int }

type alias_table = (int * int * int, alias_reason) Hashtbl.t

type must_reason =
  | Mdef
  | Mcall of { site : int; pre : int }

type must_table = (int * int, must_reason) Hashtbl.t

type t = {
  rmod : rmod_reason option array;
  ruse : rmod_reason option array;
  gmod : (int * int, gmod_reason) Hashtbl.t;
  guse : (int * int, gmod_reason) Hashtbl.t;
  alias : alias_table;
  must : must_table;
}

let create_alias_table () : alias_table = Hashtbl.create 64
let create_must_table () : must_table = Hashtbl.create 64

(* --- RMOD forest ------------------------------------------------------ *)

(* [RMOD(node)] is true iff some β path from [node] reaches a seed
   node (eq. 6 unrolled to its least fixpoint).  A BFS from the seeds
   along reversed β edges therefore reaches exactly the set nodes;
   the edge that first reaches a node is its reason. *)
let rmod_forest (binding : Binding.t) ~imod =
  let prog = binding.Binding.prog in
  let g = binding.Binding.graph in
  let n = Digraph.n_nodes g in
  let seed_bit node =
    let vid = Binding.var binding node in
    match (Prog.var prog vid).Prog.kind with
    | Prog.Formal { proc; _ } -> Bitvec.get imod.(proc) vid
    | Prog.Global | Prog.Local _ -> assert false
  in
  (* Incoming edges of each node, as (edge id, source). *)
  let preds = Array.make n [] in
  Digraph.iter_edges g (fun eid src dst -> preds.(dst) <- (eid, src) :: preds.(dst));
  let reason = Array.make n None in
  let queue = Queue.create () in
  for node = 0 to n - 1 do
    if seed_bit node then begin
      reason.(node) <- Some Rseed;
      Queue.add node queue
    end
  done;
  while not (Queue.is_empty queue) do
    let dst = Queue.take queue in
    List.iter
      (fun (eid, src) ->
        if reason.(src) = None then begin
          reason.(src) <- Some (Redge eid);
          Queue.add src queue
        end)
      preds.(dst)
  done;
  reason

(* --- GMOD forest ------------------------------------------------------ *)

(* Seeds are the IMOD+ bits, classified by the three exhaustive cases
   of eq. 5 under the §3.3 nesting fold; propagation is eq. 4 walked
   callee-to-caller over the call sites. *)
let gmod_forest info ~deref ~flat ~rmod ~plus ~gsets ~sites_by_callee =
  let prog = Ir.Info.prog info in
  let table : (int * int, gmod_reason) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let assign pid vid reason =
    if not (Hashtbl.mem table (pid, vid)) then begin
      Hashtbl.add table (pid, vid) reason;
      Queue.add (pid, vid) queue
    end
  in
  (* Why is [vid ∈ IMOD+(p)]?  Either it is in the flat local set, or
     a by-reference binding at one of p's sites projects an RMOD
     formal onto it, or it escaped from a nested child. *)
  let seed_reason (pr : Prog.proc) vid =
    let pid = pr.Prog.pid in
    if Hashtbl.mem flat (pid, vid) then Some Glocal
    else begin
      let found = ref None in
      Prog.iter_sites prog (fun (s : Prog.site) ->
          if !found = None && s.Prog.caller = pid then begin
            let callee = Prog.proc prog s.Prog.callee in
            Array.iteri
              (fun i arg ->
                match arg with
                | Prog.Arg_value _ -> ()
                | Prog.Arg_ref lv ->
                  let binds_vid =
                    match lv with
                    | Expr.Lvar b | Expr.Lindex (b, _) -> b = vid
                    | Expr.Lderef (p, d) -> List.mem vid (deref p d)
                  in
                  if
                    !found = None && binds_vid
                    && Rmod.modified rmod callee.Prog.formals.(i)
                  then found := Some (Gbind { site = s.Prog.sid; arg_pos = i }))
              s.Prog.args
          end);
      match !found with
      | Some _ as r -> r
      | None ->
        List.fold_left
          (fun acc child_pid ->
            match acc with
            | Some _ -> acc
            | None ->
              if
                Bitvec.get plus.(child_pid) vid
                && not (Bitvec.get (Ir.Info.local info child_pid) vid)
              then Some (Gnested child_pid)
              else None)
          None pr.Prog.nested
    end
  in
  (* Scan with [Bitvec.get] rather than [Bitvec.fold]: [fold] counts a
     vector op per call, and provenance must be invisible to the
     op-count contracts. *)
  let nv = Ir.Info.n_vars info in
  Prog.iter_procs prog (fun pr ->
      let pid = pr.Prog.pid in
      for vid = 0 to nv - 1 do
        if Bitvec.get plus.(pid) vid then
          match seed_reason pr vid with
          | Some r -> assign pid vid r
          | None -> ()
      done);
  (* Eq. 4: a caller inherits every non-local bit of its callee. *)
  while not (Queue.is_empty queue) do
    let q, vid = Queue.take queue in
    if not (Bitvec.get (Ir.Info.local info q) vid) then
      List.iter
        (fun (s : Prog.site) ->
          if Bitvec.get gsets.(s.Prog.caller) vid then
            assign s.Prog.caller vid (Gcall s.Prog.sid))
        sites_by_callee.(q)
  done;
  table

let compute ?(deref = Frontend.Local.no_deref) ?(must = create_must_table ())
    info ~binding ~imod ~iuse ~rmod ~ruse ~imod_plus ~iuse_plus ~gmod ~guse
    ~alias =
  let prog = Ir.Info.prog info in
  let sites_by_callee = Array.make (Prog.n_procs prog) [] in
  Prog.iter_sites prog (fun s ->
      sites_by_callee.(s.Prog.callee) <- s :: sites_by_callee.(s.Prog.callee));
  (* The flat LMOD/LUSE families, as hash sets rather than through
     [Frontend.Local.imod_flat]: allocating bit vectors would count
     ops, and provenance must stay invisible to the op-count
     contracts. *)
  let flat_table per_stmt =
    let tbl : (int * int, unit) Hashtbl.t = Hashtbl.create 512 in
    Prog.iter_procs prog (fun pr ->
        Ir.Stmt.iter
          (fun s ->
            List.iter
              (fun v -> Hashtbl.replace tbl (pr.Prog.pid, v) ())
              (per_stmt prog s))
          pr.Prog.body);
    tbl
  in
  let flat_mod = flat_table (fun prog s -> Frontend.Local.lmod_stmt ~deref prog s) in
  let flat_use = flat_table (fun prog s -> Frontend.Local.luse_stmt ~deref prog s) in
  {
    rmod = rmod_forest binding ~imod;
    ruse = rmod_forest binding ~imod:iuse;
    gmod =
      gmod_forest info ~deref ~flat:flat_mod ~rmod ~plus:imod_plus ~gsets:gmod
        ~sites_by_callee;
    guse =
      gmod_forest info ~deref ~flat:flat_use ~rmod:ruse ~plus:iuse_plus
        ~gsets:guse ~sites_by_callee;
    alias;
    must;
  }

let rmod_reasons t ~side = match side with `Mod -> t.rmod | `Use -> t.ruse
let gmod_reasons t ~side = match side with `Mod -> t.gmod | `Use -> t.guse

let alias_reason t ~proc x y =
  let x, y = if x <= y then (x, y) else (y, x) in
  Hashtbl.find_opt t.alias (proc, x, y)

let must_reason_of t ~proc vid = Hashtbl.find_opt t.must (proc, vid)
