module Binding = Callgraph.Binding
module Digraph = Graphs.Digraph
module Scc = Graphs.Scc
module Prog = Ir.Prog

type result = {
  binding : Binding.t;
  rmod : bool array;
  steps : int;
}

type solution = {
  res : result;
  scc : Scc.result;
  members : int list array;
  edges_by_comp : int list array;
  preds_by_comp : int list array;
  comp_val : bool array;
  seed : bool array;
}

module Int_set = Set.Make (Int)

(* The paper's O(Nβ + Eβ) bound counts simple boolean steps; mirror the
   per-result [steps] field into the registry so spans see it. *)
let steps_metric = Obs.Metric.counter "rmod.steps"

let owner_of (binding : Binding.t) node =
  let vid = Binding.var binding node in
  match (Prog.var binding.Binding.prog vid).Prog.kind with
  | Prog.Formal { proc; _ } -> proc
  | Prog.Global | Prog.Local _ -> assert false

let seed_bit (binding : Binding.t) imod node =
  Bitvec.get imod.(owner_of binding node) (Binding.var binding node)

let solve_cached ?(label = "rmod") ?pool (binding : Binding.t) ~imod =
  Obs.Span.with_ label @@ fun () ->
  let g = binding.Binding.graph in
  let n = Digraph.n_nodes g in
  (* Step 1: strongly-connected components of β (always sequential —
     graph work, outside the paper's boolean step count). *)
  let scc = Scc.compute g in
  let n_comps = scc.Scc.n_comps in
  let members = Scc.members scc in
  let comp_val = Array.make n_comps false in
  let seed = Array.make n false in
  let rmod = Array.make n false in
  let edges_by_comp = Array.make n_comps [] in
  let preds_by_comp = Array.make n_comps [] in
  Digraph.iter_edges g (fun _ src dst ->
      let cs = scc.Scc.comp.(src) and cd = scc.Scc.comp.(dst) in
      if cs <> cd then begin
        edges_by_comp.(cs) <- cd :: edges_by_comp.(cs);
        preds_by_comp.(cd) <- cs :: preds_by_comp.(cd)
      end);
  let steps =
    match pool with
    | None ->
      let steps = ref 0 in
      (* Step 2: each component's IMOD is the or of its members'. *)
      for node = 0 to n - 1 do
        incr steps;
        let b = seed_bit binding imod node in
        seed.(node) <- b;
        if b then comp_val.(scc.Scc.comp.(node)) <- true
      done;
      (* Step 3: leaves-to-roots pass over the condensation.
         Components are numbered in reverse topological order (every
         inter-component edge points to a smaller number), so
         processing components in increasing order sees each successor
         final; one relaxation per edge applies equation (6). *)
      for c = 0 to n_comps - 1 do
        List.iter
          (fun cd ->
            incr steps;
            if comp_val.(cd) then comp_val.(c) <- true)
          edges_by_comp.(c)
      done;
      (* Step 4: copy the representer's value back to every member. *)
      for node = 0 to n - 1 do
        incr steps;
        rmod.(node) <- comp_val.(scc.Scc.comp.(node))
      done;
      !steps
    | Some pool ->
      (* Same four steps, same boolean-step totals.  Steps 2 and 4 are
         independent per component / per node; step 3 runs as a
         wavefront over the condensation levels, so a component only
         reads successor values made final by an earlier batch.  Step
         counts accumulate per worker slot (each slot is owned by one
         domain) and are summed after the last join. *)
      let jobs = Par.Pool.jobs pool in
      let slot_steps = Array.make jobs 0 in
      let chunked total f =
        if total > 0 then begin
          let chunk = max 1 ((total + (jobs * 4) - 1) / (jobs * 4)) in
          let n_tasks = (total + chunk - 1) / chunk in
          Par.Pool.run pool
            (Array.init n_tasks (fun ti slot ->
                 f slot (ti * chunk) (min total ((ti + 1) * chunk))))
        end
      in
      (* Step 2, by component: the node writes and the comp_val write
         are then disjoint across tasks.  Sum of member counts = Nβ. *)
      chunked n_comps (fun slot lo hi ->
          let st = ref 0 in
          for c = lo to hi - 1 do
            List.iter
              (fun node ->
                incr st;
                let b = seed_bit binding imod node in
                seed.(node) <- b;
                if b then comp_val.(c) <- true)
              members.(c)
          done;
          slot_steps.(slot) <- slot_steps.(slot) + !st);
      (* Step 3: condensation wavefront; one relaxation per edge.
         Scheduled coarsely: singleton-level runs fuse into inline
         sequential stages, wide levels batch by per-component edge
         count, so a chain-shaped condensation never pays a barrier. *)
      let levels =
        Par.Wavefront.of_comp_succs ~n_comps
          ~succs_of:(fun c -> edges_by_comp.(c))
      in
      let plan =
        Par.Wavefront.plan levels ~jobs ~cost:(fun c ->
            1 + List.length edges_by_comp.(c))
      in
      Par.Wavefront.run_plan (Some pool) plan ~f:(fun ~slot ~comp:c ->
          let st = ref 0 in
          List.iter
            (fun cd ->
              incr st;
              if comp_val.(cd) then comp_val.(c) <- true)
            edges_by_comp.(c);
          slot_steps.(slot) <- slot_steps.(slot) + !st);
      (* Step 4, by node. *)
      chunked n (fun slot lo hi ->
          let st = ref 0 in
          for node = lo to hi - 1 do
            incr st;
            rmod.(node) <- comp_val.(scc.Scc.comp.(node))
          done;
          slot_steps.(slot) <- slot_steps.(slot) + !st);
      Array.fold_left ( + ) 0 slot_steps
  in
  Obs.Metric.add steps_metric steps;
  {
    res = { binding; rmod; steps };
    scc;
    members;
    edges_by_comp;
    preds_by_comp;
    comp_val;
    seed;
  }

let solve ?label ?pool binding ~imod =
  (solve_cached ?label ?pool binding ~imod).res

let resolve ?(label = "rmod.region") sol ~imod ~changed_procs =
  Obs.Span.with_ label @@ fun () ->
  let binding = sol.res.binding in
  let prog = binding.Binding.prog in
  let steps = ref 0 in
  (* Re-read the seed bit of the β nodes (by-reference formals) of the
     procedures whose IMOD may have changed; a flipped bit queues the
     node's component. *)
  let seed = Array.copy sol.seed in
  let queue = ref Int_set.empty in
  List.iter
    (fun pid ->
      Array.iter
        (fun vid ->
          match Binding.node_opt binding vid with
          | None -> ()
          | Some node ->
            incr steps;
            let b = seed_bit binding imod node in
            if b <> seed.(node) then begin
              seed.(node) <- b;
              queue := Int_set.add sol.scc.Scc.comp.(node) !queue
            end)
        (Prog.proc prog pid).Prog.formals)
    changed_procs;
  (* Change propagation leaves-to-roots over the cached condensation.
     Components are numbered in reverse topological order, so taking
     the smallest queued component always sees final successor values;
     when a value actually changes, the component's condensation
     predecessors (all larger-numbered) join the queue.  The walk stops
     as soon as recomputed values come out unchanged — the
     condensation-ancestor cone, pruned. *)
  let comp_val = Array.copy sol.comp_val in
  let changed_comps = ref [] in
  while not (Int_set.is_empty !queue) do
    let c = Int_set.min_elt !queue in
    queue := Int_set.remove c !queue;
    let v =
      List.exists
        (fun node ->
          incr steps;
          seed.(node))
        sol.members.(c)
      || List.exists
           (fun cd ->
             incr steps;
             comp_val.(cd))
           sol.edges_by_comp.(c)
    in
    if v <> comp_val.(c) then begin
      comp_val.(c) <- v;
      changed_comps := c :: !changed_comps;
      List.iter
        (fun cp ->
          incr steps;
          queue := Int_set.add cp !queue)
        sol.preds_by_comp.(c)
    end
  done;
  let rmod = Array.copy sol.res.rmod in
  let changed_nodes = ref [] in
  List.iter
    (fun c ->
      List.iter
        (fun node ->
          incr steps;
          rmod.(node) <- comp_val.(c);
          changed_nodes := node :: !changed_nodes)
        sol.members.(c))
    !changed_comps;
  Obs.Metric.add steps_metric !steps;
  ( {
      sol with
      res = { binding; rmod; steps = !steps };
      comp_val;
      seed;
    },
    !changed_nodes )

let modified r vid =
  match Binding.node_opt r.binding vid with
  | None -> false
  | Some node -> r.rmod.(node)

let to_var_set r =
  let set = Bitvec.create (Prog.n_vars r.binding.Binding.prog) in
  Array.iteri (fun node b -> if b then Bitvec.set set (Binding.var r.binding node)) r.rmod;
  set

let rmod_of_proc r pid =
  let prog = r.binding.Binding.prog in
  let formals = (Prog.proc prog pid).Prog.formals in
  Array.to_list formals |> List.filter (fun vid -> modified r vid)

let pp ppf r =
  let prog = r.binding.Binding.prog in
  Format.fprintf ppf "@[<v>";
  Prog.iter_procs prog (fun pr ->
      match rmod_of_proc r pr.Prog.pid with
      | [] -> ()
      | vids ->
        Format.fprintf ppf "RMOD(%s) = {%a}@," pr.Prog.pname
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
             (fun ppf vid -> Format.pp_print_string ppf (Prog.var prog vid).Prog.vname))
          vids);
  Format.fprintf ppf "@]"
