module Binding = Callgraph.Binding
module Digraph = Graphs.Digraph
module Scc = Graphs.Scc
module Prog = Ir.Prog

type result = {
  binding : Binding.t;
  rmod : bool array;
  steps : int;
}

(* The paper's O(Nβ + Eβ) bound counts simple boolean steps; mirror the
   per-result [steps] field into the registry so spans see it. *)
let steps_metric = Obs.Metric.counter "rmod.steps"

let solve ?(label = "rmod") (binding : Binding.t) ~imod =
  Obs.Span.with_ label @@ fun () ->
  let g = binding.Binding.graph in
  let n = Digraph.n_nodes g in
  let steps = ref 0 in
  (* Step 1: strongly-connected components of β. *)
  let scc = Scc.compute g in
  (* Step 2: each component's IMOD is the or of its members'. *)
  let comp_val = Array.make scc.Scc.n_comps false in
  for node = 0 to n - 1 do
    incr steps;
    let vid = Binding.var binding node in
    let owner =
      match (Prog.var binding.Binding.prog vid).Prog.kind with
      | Prog.Formal { proc; _ } -> proc
      | Prog.Global | Prog.Local _ -> assert false
    in
    if Bitvec.get imod.(owner) vid then comp_val.(scc.Scc.comp.(node)) <- true
  done;
  (* Step 3: leaves-to-roots pass over the condensation.  Components
     are numbered in reverse topological order (every inter-component
     edge points to a smaller number), so processing components in
     increasing order sees each successor final; one relaxation per
     edge applies equation (6). *)
  let edges_by_comp = Array.make scc.Scc.n_comps [] in
  Digraph.iter_edges g (fun _ src dst ->
      let cs = scc.Scc.comp.(src) and cd = scc.Scc.comp.(dst) in
      if cs <> cd then edges_by_comp.(cs) <- cd :: edges_by_comp.(cs));
  for c = 0 to scc.Scc.n_comps - 1 do
    List.iter
      (fun cd ->
        incr steps;
        if comp_val.(cd) then comp_val.(c) <- true)
      edges_by_comp.(c)
  done;
  (* Step 4: copy the representer's value back to every member. *)
  let rmod = Array.make n false in
  for node = 0 to n - 1 do
    incr steps;
    rmod.(node) <- comp_val.(scc.Scc.comp.(node))
  done;
  Obs.Metric.add steps_metric !steps;
  { binding; rmod; steps = !steps }

let modified r vid =
  match Binding.node_opt r.binding vid with
  | None -> false
  | Some node -> r.rmod.(node)

let to_var_set r =
  let set = Bitvec.create (Prog.n_vars r.binding.Binding.prog) in
  Array.iteri (fun node b -> if b then Bitvec.set set (Binding.var r.binding node)) r.rmod;
  set

let rmod_of_proc r pid =
  let prog = r.binding.Binding.prog in
  let formals = (Prog.proc prog pid).Prog.formals in
  Array.to_list formals |> List.filter (fun vid -> modified r vid)

let pp ppf r =
  let prog = r.binding.Binding.prog in
  Format.fprintf ppf "@[<v>";
  Prog.iter_procs prog (fun pr ->
      match rmod_of_proc r pr.Prog.pid with
      | [] -> ()
      | vids ->
        Format.fprintf ppf "RMOD(%s) = {%a}@," pr.Prog.pname
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
             (fun ppf vid -> Format.pp_print_string ppf (Prog.var prog vid).Prog.vname))
          vids);
  Format.fprintf ppf "@]"
