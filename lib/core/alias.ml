module Prog = Ir.Prog
module Expr = Ir.Expr

module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = {
  info : Ir.Info.t;
  alias : Pair_set.t array; (* per procedure *)
  tainted : Pair_set.t array;
      (* pairs whose derivation involved pointer resolution (a
         dereference binding or a heap-overlap seed), transitively
         through propagation and inheritance *)
}

let norm x y = if x <= y then (x, y) else (y, x)

let pairs_metric = Obs.Metric.gauge "alias.pairs"

let compute ?provenance ?(deref = Frontend.Local.no_deref) ?(seeds = []) info =
  Obs.Span.with_ "alias" @@ fun () ->
  let prog = Ir.Info.prog info in
  let np = Prog.n_procs prog in
  let alias = Array.make np Pair_set.empty in
  let changed = ref true in
  (* Provenance hook: remember the rule that first put the pair in.
     [add] is only called under [not mem], so first-add-wins and the
     recorded reasons reference strictly earlier facts.  Recording is
     pure hashtable work — the bit-vector op counts cannot differ. *)
  let record =
    match provenance with
    | None -> fun _ _ _ -> ()
    | Some table ->
      fun pid (x, y) reason ->
        if not (Hashtbl.mem table (pid, x, y)) then
          Hashtbl.add table (pid, x, y) reason
  in
  let tainted = Array.make np Pair_set.empty in
  (* [taint] marks a pointer-resolved derivation.  It is an OR over
     all derivations of the pair, so a pair introduced clean can
     become tainted by a later pointer-carried derivation — the
     [changed] flag covers taint growth and the fixpoint closes it
     under propagation and inheritance like the pairs themselves. *)
  let add pid pair ~taint reason =
    if not (Pair_set.mem pair alias.(pid)) then begin
      record pid pair reason;
      alias.(pid) <- Pair_set.add pair alias.(pid);
      changed := true
    end;
    if taint && not (Pair_set.mem pair tainted.(pid)) then begin
      tainted.(pid) <- Pair_set.add pair tainted.(pid);
      changed := true
    end
  in
  (* By-reference bindings of one site:
     (argument position, formal vid, actual base vid, via pointer?).
     A dereference actual [*...*p] binds the cell the dereference may
     name, so it expands to one binding per variable in the points-to
     projection — flagged so the provenance reason says so. *)
  let ref_bindings (s : Prog.site) =
    let callee = Prog.proc prog s.Prog.callee in
    let acc = ref [] in
    Array.iteri
      (fun i arg ->
        match arg with
        | Prog.Arg_value _ -> ()
        | Prog.Arg_ref (Expr.Lderef (p, d)) ->
          List.iter
            (fun t -> acc := (i, callee.Prog.formals.(i), t, true) :: !acc)
            (deref p d)
        | Prog.Arg_ref lv ->
          acc := (i, callee.Prog.formals.(i), Expr.lvalue_base lv, false) :: !acc)
      s.Prog.args;
    List.rev !acc
  in
  (* Nesting inheritance: a pair that may hold on entry to [p] also
     holds inside every procedure declared in [p] (it executes within
     [p]'s activation and sees the same bindings).  Part of the
     fixpoint: sites inside nested procedures must propagate inherited
     pairs onward. *)
  let inherit_down () =
    Prog.iter_procs prog (fun pr ->
        match pr.Prog.parent with
        | None -> ()
        | Some parent ->
          Pair_set.iter
            (fun pair ->
              add pr.Prog.pid pair
                ~taint:(Pair_set.mem pair tainted.(parent))
                (Provenance.Ainherited { parent }))
            alias.(parent))
  in
  let process_site (s : Prog.site) =
    let callee = s.Prog.callee in
    let sid = s.Prog.sid in
    let bindings = ref_bindings s in
    (* Introduction: same base (or same may-named cell) at two
       positions; visible base. *)
    List.iter
      (fun (pi, fi, bi, ptr_i) ->
        List.iter
          (fun (pj, fj, bj, ptr_j) ->
            if pi < pj && bi = bj then
              add callee (norm fi fj) ~taint:(ptr_i || ptr_j)
                (if ptr_i then Provenance.Apointsto { site = sid; pos = pi }
                 else if ptr_j then Provenance.Apointsto { site = sid; pos = pj }
                 else Provenance.Apositions { site = sid; pos_i = pi; pos_j = pj }))
          bindings;
        (* [fi = bi] only at a direct recursive call passing a formal to
           itself — a reflexive "pair" no consumer treats as an alias
           ([may_alias] is irreflexive), so never introduce one. *)
        if bi <> fi && Prog.visible prog ~proc:callee ~var:bi then
          add callee (norm fi bi) ~taint:ptr_i
            (if ptr_i then Provenance.Apointsto { site = sid; pos = pi }
             else Provenance.Avisible { site = sid; pos = pi }))
      bindings;
    (* Propagation of the caller's pairs through the bindings. *)
    Pair_set.iter
      (fun (x, y) ->
        let reason = Provenance.Apropagated { site = sid; from_pair = (x, y) } in
        let t0 = Pair_set.mem (x, y) tainted.(s.Prog.caller) in
        List.iter
          (fun (_, fi, bi, ptr_i) ->
            if bi = x || bi = y then begin
              let other = if bi = x then y else x in
              List.iter
                (fun (_, fj, bj, ptr_j) ->
                  if fj <> fi && bj = other then
                    add callee (norm fi fj) ~taint:(t0 || ptr_i || ptr_j) reason)
                bindings;
              if other <> fi && Prog.visible prog ~proc:callee ~var:other then
                add callee (norm fi other) ~taint:(t0 || ptr_i) reason
            end)
          bindings)
      alias.(s.Prog.caller)
  in
  (* Pointer-induced pairs the binding expansion cannot express —
     two dereference actuals overlapping only through a heap summary
     location — enter as seeds and close under propagation and
     inheritance like any other pair. *)
  List.iter
    (fun (pid, (x, y), site, pos) ->
      if x <> y then
        add pid (norm x y) ~taint:true (Provenance.Apointsto { site; pos }))
    seeds;
  while !changed do
    changed := false;
    Prog.iter_sites prog process_site;
    inherit_down ()
  done;
  Obs.Metric.set pairs_metric
    (Array.fold_left (fun acc s -> acc + Pair_set.cardinal s) 0 alias);
  { info; alias; tainted }

let pairs t pid = Pair_set.elements t.alias.(pid)

let pointer_tainted t ~proc (x, y) = Pair_set.mem (norm x y) t.tainted.(proc)

let aliases_of t ~proc ~var =
  Pair_set.fold
    (fun (x, y) acc ->
      if x = var then y :: acc else if y = var then x :: acc else acc)
    t.alias.(proc) []
  |> List.sort_uniq compare

let may_alias t ~proc x y = x <> y && Pair_set.mem (norm x y) t.alias.(proc)

let close t ~proc set =
  let result = Bitvec.copy set in
  Pair_set.iter
    (fun (x, y) ->
      if Bitvec.get set x then Bitvec.set result y;
      if Bitvec.get set y then Bitvec.set result x)
    t.alias.(proc);
  result

let total_pairs t = Array.fold_left (fun acc s -> acc + Pair_set.cardinal s) 0 t.alias

let pp prog ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun pid set ->
      if not (Pair_set.is_empty set) then
        Format.fprintf ppf "ALIAS(%s) = {%a}@,"
          (Prog.proc prog pid).Prog.pname
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
             (fun ppf (x, y) ->
               Format.fprintf ppf "<%s, %s>" (Prog.var prog x).Prog.vname
                 (Prog.var prog y).Prog.vname))
          (Pair_set.elements set))
    t.alias;
  Format.fprintf ppf "@]"
