module Digraph = Graphs.Digraph
module Prog = Ir.Prog

(* --- per-level repetition (reference implementation) --- *)

let solve_by_levels ?(label = "gmod.by_levels") ?pool info
    (call : Callgraph.Call.t) ~imod_plus =
  Obs.Span.with_ label @@ fun () ->
  let prog = call.Callgraph.Call.prog in
  let dp = Prog.max_level prog in
  let result = Array.map Bitvec.copy imod_plus in
  (* One contribution scratch for the whole run, hot across levels. *)
  let scratch = Bitvec.create (Ir.Info.n_vars info) in
  for i = 1 to max 1 dp do
    (* C_i: drop edges whose callee is declared at a level < i. *)
    let b = Digraph.Builder.create ~nodes:(Prog.n_procs prog) () in
    Prog.iter_sites prog (fun s ->
        if (Prog.proc prog s.Prog.callee).Prog.level >= i then
          ignore (Digraph.Builder.add_edge b ~src:s.Prog.caller ~dst:s.Prog.callee));
    let call_i = { call with Callgraph.Call.graph = Digraph.Builder.freeze b } in
    let gmod_i = Gmod.solve ?pool info call_i ~imod_plus in
    (* Problem i owns the variables declared at level i - 1. *)
    let mask = Ir.Info.level_at_most info (i - 1) in
    let strict =
      if i = 1 then mask
      else Bitvec.diff mask (Ir.Info.level_at_most info (i - 2))
    in
    Array.iteri
      (fun pid g ->
        Bitvec.blit ~src:g ~dst:scratch;
        ignore (Bitvec.inter_into ~src:strict ~dst:scratch);
        ignore (Bitvec.union_into ~src:scratch ~dst:result.(pid)))
      gmod_i
  done;
  result

(* --- single-pass algorithm with lowlink vectors --- *)

let solve ?(label = "gmod") info (call : Callgraph.Call.t) ~imod_plus =
  Obs.Span.with_ label @@ fun () ->
  let prog = call.Callgraph.Call.prog in
  let g = call.Callgraph.Call.graph in
  let n = Digraph.n_nodes g in
  let dp = max 1 (Prog.max_level prog) in
  let gmod = Array.map Bitvec.copy imod_plus in
  let dfn = Array.make n 0 in
  (* lowlink.(v).(i), 1 <= i <= dp, is v's lowlink in problem i.  A
     single-index update records an edge's contribution at the callee's
     level; the suffix-min pass at node completion spreads it to every
     problem the edge belongs to (i <= level(callee)). *)
  let lowlink = Array.make n [||] in
  (* stacked_to.(v): v is on the problem-i stack for 1 <= i <=
     stacked_to.(v).  Pops happen from deep problems towards problem 1
     (a level-(i+1) component is a subset of the level-i one and closes
     no later). *)
  let stacked_to = Array.make n 0 in
  let stacks = Array.make (dp + 1) [] in
  let next_dfn = ref 1 in
  let scratch = Bitvec.create (Ir.Info.n_vars info) in
  (* GMOD[dst] ∪= (GMOD[src] ∖ LOCAL[src]) ∩ {vars at level < lim}. *)
  let add_escaped_masked ~src ~dst ~lim =
    Bitvec.blit ~src:gmod.(src) ~dst:scratch;
    ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info src) ~dst:scratch);
    ignore (Bitvec.inter_into ~src:(Ir.Info.level_at_most info (lim - 1)) ~dst:scratch);
    ignore (Bitvec.union_into ~src:scratch ~dst:gmod.(dst))
  in
  let close_component root i =
    (* Level-i root: distribute the level-(< i) variables of the root's
       set to every member of the level-i component. *)
    Bitvec.blit ~src:gmod.(root) ~dst:scratch;
    ignore (Bitvec.inter_into ~src:(Ir.Info.non_local info root) ~dst:scratch);
    ignore (Bitvec.inter_into ~src:(Ir.Info.level_at_most info (i - 1)) ~dst:scratch);
    let rec pop () =
      match stacks.(i) with
      | [] -> assert false
      | u :: rest ->
        stacks.(i) <- rest;
        assert (stacked_to.(u) = i);
        stacked_to.(u) <- i - 1;
        ignore (Bitvec.union_into ~src:scratch ~dst:gmod.(u));
        if u <> root then pop ()
    in
    pop ()
  in
  let succs = Array.make n [||] in
  for v = 0 to n - 1 do
    let deg = Digraph.out_degree g v in
    let a = Array.make deg 0 in
    let i = ref 0 in
    Digraph.iter_succ g v (fun w ->
        a.(!i) <- w;
        incr i);
    succs.(v) <- a
  done;
  let frame_node = Array.make (n + 1) 0 in
  let frame_next = Array.make (n + 1) 0 in
  let search root =
    if dfn.(root) = 0 then begin
      let sp = ref 0 in
      let push v =
        dfn.(v) <- !next_dfn;
        lowlink.(v) <- Array.make (dp + 1) !next_dfn;
        incr next_dfn;
        for i = 1 to dp do
          stacks.(i) <- v :: stacks.(i)
        done;
        stacked_to.(v) <- dp;
        frame_node.(!sp) <- v;
        frame_next.(!sp) <- 0;
        incr sp
      in
      push root;
      while !sp > 0 do
        let v = frame_node.(!sp - 1) in
        let i = frame_next.(!sp - 1) in
        if i < Array.length succs.(v) then begin
          frame_next.(!sp - 1) <- i + 1;
          let q = succs.(v).(i) in
          let lq = max 1 (Prog.proc prog q).Prog.level in
          if dfn.(q) = 0 then push q
          else begin
            (* The edge exists in problems 1..lq.  Problems where q is
               still stacked and older get a lowlink contribution;
               problems where q's component has closed get the masked
               equation-(4) union.  Unioning early for the still-open
               problems is harmless — their closes redistribute. *)
            let stacked_limit = min lq stacked_to.(q) in
            if dfn.(q) < dfn.(v) && stacked_limit >= 1 then
              lowlink.(v).(stacked_limit) <-
                min lowlink.(v).(stacked_limit) dfn.(q);
            if dfn.(q) > dfn.(v) || stacked_to.(q) < lq then
              add_escaped_masked ~src:q ~dst:v ~lim:lq
          end
        end
        else begin
          decr sp;
          (* Suffix-min correction: a contribution recorded at level j
             belongs to every problem i <= j. *)
          for i = dp - 1 downto 1 do
            lowlink.(v).(i) <- min lowlink.(v).(i) lowlink.(v).(i + 1)
          done;
          for i = dp downto 1 do
            if lowlink.(v).(i) = dfn.(v) && stacked_to.(v) >= i then
              close_component v i
          done;
          if !sp > 0 then begin
            let parent = frame_node.(!sp - 1) in
            let lv = max 1 (Prog.proc prog v).Prog.level in
            (* Tree edge (parent, v): exists in problems 1..level(v). *)
            for i = 1 to min lv dp do
              lowlink.(parent).(i) <- min lowlink.(parent).(i) lowlink.(v).(i)
            done;
            add_escaped_masked ~src:v ~dst:parent ~lim:lv
          end
        end
      done
    end
  in
  search prog.Prog.main;
  for v = 0 to n - 1 do
    search v
  done;
  gmod
