(* Interprocedural must-modify analysis — the intersection-over-paths
   dual of GMOD.  See mustmod.mli for the semantics and docs/mustmod.md
   for the write-up. *)

module Prog = Ir.Prog
module Stmt = Ir.Stmt
module E = Ir.Expr
module Call = Callgraph.Call
module Digraph = Graphs.Digraph
module Scc = Graphs.Scc

type result = {
  prog : Prog.t;
  mustmod : Bitvec.t array;
  intra : Bitvec.t array;
  demoted : Bitvec.t array;
  rounds : int;
}

type solution = {
  res : result;
  scc : Scc.result;
  members : int list array;
  succs_by_comp : int list array;
  preds_by_comp : int list array;
  callers_in_comp : int list array;
  trivial : bool array;
}

module Int_set = Set.Make (Int)

let rounds_metric = Obs.Metric.counter "mustmod.rounds"

(* The callee's MUSTMOD carried through a call site into the caller's
   frame — the same projection the dataflow kill sets use: a by-ref
   formal lands on a scalar whole-variable actual, non-locals of the
   callee pass through, everything else (callee locals, by-value
   formals, element and dereference actuals — a dereference may-defines
   its targets but never must-defines any one of them) is dropped. *)
let project prog callee_must sid out =
  let s = Prog.site prog sid in
  Bitvec.iter
    (fun vid ->
      match (Prog.var prog vid).Prog.kind with
      | Prog.Formal { proc; index; mode = Prog.By_ref } when proc = s.Prog.callee
        -> (
        match s.Prog.args.(index) with
        | Prog.Arg_ref (E.Lvar b) ->
          if not (Ir.Types.is_array (Prog.var prog b).Prog.vty) then
            Bitvec.set out b
        | Prog.Arg_ref (E.Lindex _ | E.Lderef _) | Prog.Arg_value _ -> ())
      | Prog.Formal { proc; _ } when proc = s.Prog.callee -> ()
      | Prog.Local owner when owner = s.Prog.callee -> ()
      | _ -> Bitvec.set out vid)
    callee_must

(* Definite assignments of a statement sequence, by structural
   recursion.  MiniProc control flow is fully structured, so these
   equations coincide with the least fixpoint of the forward
   must-reach system over the procedure's CFG: a sequence accumulates,
   a conditional contributes the intersection of its branches, a loop
   body contributes nothing (zero iterations), a [for] header always
   writes its index.  [mustmod] supplies the call transfer; [None]
   computes the call-free IMUSTDEF used for provenance grounding. *)
let rec seq_gen prog mustmod nv acc stmts =
  List.iter (stmt_gen prog mustmod nv acc) stmts

and stmt_gen prog mustmod nv acc = function
  | Stmt.Assign (E.Lvar x, _) | Stmt.Read (E.Lvar x) -> Bitvec.set acc x
  | Stmt.Assign ((E.Lindex _ | E.Lderef _), _)
  | Stmt.Read (E.Lindex _ | E.Lderef _)
  | Stmt.Write _ ->
    ()
  | Stmt.For (x, _, _, _) -> Bitvec.set acc x
  | Stmt.While _ -> ()
  | Stmt.If (_, t, e) ->
    let bt = Bitvec.create nv in
    let be = Bitvec.create nv in
    seq_gen prog mustmod nv bt t;
    seq_gen prog mustmod nv be e;
    ignore (Bitvec.inter_into ~src:be ~dst:bt);
    ignore (Bitvec.union_into ~src:bt ~dst:acc)
  | Stmt.Call sid -> (
    match mustmod with
    | Some sets -> project prog sets.((Prog.site prog sid).Prog.callee) sid acc
    | None -> ())

let gen_of prog mustmod nv pid =
  let acc = Bitvec.create nv in
  seq_gen prog mustmod nv acc (Prog.proc prog pid).Prog.body;
  acc

(* --- compact per-procedure frames (flat programs) --------------------- *)

(* In a flat program ([Prog.max_level <= 1]) a procedure's transfer
   only ever touches variables visible in its own frame: the globals
   plus its own formals and locals.  Like [Renumber] on the may side,
   the fixpoint therefore runs over per-procedure compact universes —
   the globals as a shared low prefix, the procedure's own variables
   as a short tail — and expands onto the full universe once, after
   convergence.  Every counted operation of the hot loop then walks
   the occupied word prefix of a vector of length [G + own], which is
   independent of program size; without the frames the same sets sit
   in the full universe where the hybrid representation's small form
   charges card-proportional merges (~|GMOD| element steps per
   transfer), and total word work picks up a representation-transition
   bump that the bench gate reads as superlinear
   (bench/bench_check.ml section 1b pins the compact behaviour). *)
type frame = {
  n_globals : int;
  globals : int array;  (* global rank -> vid *)
  cid : int array;  (* vid -> compact id within its owner's universe *)
  owner_of : int array;  (* vid -> owning pid, or -1 for a global *)
  owned : int array array;  (* pid -> tail index -> vid *)
}

let build_frame prog =
  let nv = Prog.n_vars prog in
  let np = Prog.n_procs prog in
  let cid = Array.make nv 0 in
  let owner_of = Array.make nv (-1) in
  let tails = Array.make np [] in
  let globals = ref [] in
  let n_globals = ref 0 in
  for vid = 0 to nv - 1 do
    match (Prog.var prog vid).Prog.kind with
    | Prog.Global ->
      cid.(vid) <- !n_globals;
      globals := vid :: !globals;
      incr n_globals
    | Prog.Local owner | Prog.Formal { proc = owner; _ } ->
      owner_of.(vid) <- owner;
      tails.(owner) <- vid :: tails.(owner)
  done;
  let owned = Array.map (fun l -> Array.of_list (List.rev l)) tails in
  Array.iter
    (fun tail -> Array.iteri (fun i vid -> cid.(vid) <- !n_globals + i) tail)
    owned;
  {
    n_globals = !n_globals;
    globals = Array.of_list (List.rev !globals);
    cid;
    owner_of;
    owned;
  }

let frame_len fr pid = max 1 (fr.n_globals + Array.length fr.owned.(pid))

(* [project], in compact coordinates: the callee's tail ids are its
   own variables, so the callee-frame case analysis reduces to "tail
   by-ref formals re-bind through the site, every other tail id drops,
   the global prefix passes through unchanged". *)
let c_project fr prog callee_must sid out =
  let s = Prog.site prog sid in
  Bitvec.iter
    (fun c ->
      if c < fr.n_globals then Bitvec.set out c
      else
        let vid = fr.owned.(s.Prog.callee).(c - fr.n_globals) in
        match (Prog.var prog vid).Prog.kind with
        | Prog.Formal { index; mode = Prog.By_ref; _ } -> (
          match s.Prog.args.(index) with
          | Prog.Arg_ref (E.Lvar b) ->
            if not (Ir.Types.is_array (Prog.var prog b).Prog.vty) then
              Bitvec.set out fr.cid.(b)
          | Prog.Arg_ref (E.Lindex _ | E.Lderef _) | Prog.Arg_value _ -> ())
        | Prog.Formal _ | Prog.Local _ | Prog.Global -> ())
    callee_must

let rec c_seq_gen fr prog mustmod len acc stmts =
  List.iter (c_stmt_gen fr prog mustmod len acc) stmts

and c_stmt_gen fr prog mustmod len acc = function
  | Stmt.Assign (E.Lvar x, _) | Stmt.Read (E.Lvar x) -> Bitvec.set acc fr.cid.(x)
  | Stmt.Assign ((E.Lindex _ | E.Lderef _), _)
  | Stmt.Read (E.Lindex _ | E.Lderef _)
  | Stmt.Write _ ->
    ()
  | Stmt.For (x, _, _, _) -> Bitvec.set acc fr.cid.(x)
  | Stmt.While _ -> ()
  | Stmt.If (_, t, e) ->
    let bt = Bitvec.create len in
    let be = Bitvec.create len in
    c_seq_gen fr prog mustmod len bt t;
    c_seq_gen fr prog mustmod len be e;
    ignore (Bitvec.inter_into ~src:be ~dst:bt);
    ignore (Bitvec.union_into ~src:bt ~dst:acc)
  | Stmt.Call sid -> (
    match mustmod with
    | Some sets ->
      c_project fr prog sets.((Prog.site prog sid).Prog.callee) sid acc
    | None -> ())

let c_gen_of fr prog mustmod pid =
  let acc = Bitvec.create (frame_len fr pid) in
  c_seq_gen fr prog mustmod (frame_len fr pid) acc (Prog.proc prog pid).Prog.body;
  acc

(* Compact image of a full-universe per-procedure set (the GMOD cap,
   the demotion set).  Ids outside [pid]'s frame are dropped: in a
   flat program the transfer cannot generate them, so they are inert
   under both the cap and the demotion anyway. *)
let c_of_full fr pid len full =
  let v = Bitvec.create len in
  Bitvec.iter
    (fun vid ->
      if fr.owner_of.(vid) < 0 || fr.owner_of.(vid) = pid then
        Bitvec.set v fr.cid.(vid))
    full;
  v

let expand_frame fr nv compact =
  Array.mapi
    (fun pid cv ->
      let out = Bitvec.create nv in
      Bitvec.iter
        (fun c ->
          Bitvec.set out
            (if c < fr.n_globals then fr.globals.(c)
             else fr.owned.(pid).(c - fr.n_globals)))
        cv;
      out)
    compact

(* §5/ptsto demotion.  A pair [<x, y> ∈ ALIAS(p)] makes a must-claim
   unreliable for any member whose cell the projection cannot
   re-resolve.  [p]'s own by-ref formal keeps its must-facts under a
   pure parameter-binding pair — every call re-binds the formal and
   [project] re-attributes the write to that site's actual, so a
   direct write through the formal reaches its bound cell on every
   entry — but a visible member is always demoted (its name may be a
   second name for a formal's cell, reached on only some entries), and
   a {e pointer-tainted} pair (a dereference binding resolved by the
   points-to projection, or a heap-overlap seed — the pairs a coarser
   [--ptsto] keeps and a finer one refutes) demotes every member
   including formals: the cells behind those names are not re-resolved
   by any site, so no must-claim that touches them survives. *)
let demotions info alias pid =
  let prog = Ir.Info.prog info in
  let v = Ir.Info.fresh info in
  let own_byref vid =
    match (Prog.var prog vid).Prog.kind with
    | Prog.Formal { proc; mode = Prog.By_ref; _ } -> proc = pid
    | _ -> false
  in
  List.iter
    (fun (x, y) ->
      let tainted = Alias.pointer_tainted alias ~proc:pid (x, y) in
      let demote vid = Bitvec.set v vid in
      match (own_byref x, own_byref y) with
      | true, false ->
        demote y;
        if tainted then demote x
      | false, true ->
        demote x;
        if tainted then demote y
      | true, true -> if tainted then (demote x; demote y)
      | false, false ->
        demote x;
        demote y)
    (Alias.pairs alias pid);
  v

(* Chaotic worklist iteration of one cyclic component, largest pid
   first — call edges skew towards higher pids, so draining from the
   top tends to stabilise callees before their in-component callers.
   A member re-enters the list only when a callee inside the component
   changed, so the transfer count is bounded by the bits the
   component's values gain on the way up to the least fixpoint — not
   members × sweep rounds, which goes quadratic on large components.
   Returns the number of transfers computed.  [mustmod] must hold the
   starting values (∅ for a from-scratch solve) for every member. *)
let iterate_comp ~transfer ~mustmod ~callers_in_comp procs =
  let rounds = ref 0 in
  let work =
    ref (List.fold_left (fun s p -> Int_set.add p s) Int_set.empty procs)
  in
  while not (Int_set.is_empty !work) do
    let pid = Int_set.max_elt !work in
    work := Int_set.remove pid !work;
    incr rounds;
    let v = transfer pid in
    if not (Bitvec.equal v mustmod.(pid)) then begin
      mustmod.(pid) <- v;
      List.iter
        (fun caller -> work := Int_set.add caller !work)
        callers_in_comp.(pid)
    end
  done;
  !rounds

let solve_cached ?(label = "mustmod") ?pool info call ~alias ~gmod =
  Obs.Span.with_ label @@ fun () ->
  let prog = Ir.Info.prog info in
  let nv = Ir.Info.n_vars info in
  let np = Prog.n_procs prog in
  let g = call.Call.graph in
  let scc = Scc.compute g in
  let n_comps = scc.Scc.n_comps in
  let members = Scc.members scc in
  let succs_by_comp = Array.make n_comps [] in
  let preds_by_comp = Array.make n_comps [] in
  let callers_in_comp = Array.make np [] in
  Digraph.iter_edges g (fun _ src dst ->
      let cs = scc.Scc.comp.(src) and cd = scc.Scc.comp.(dst) in
      if cs <> cd then begin
        succs_by_comp.(cs) <- cd :: succs_by_comp.(cs);
        preds_by_comp.(cd) <- cs :: preds_by_comp.(cd)
      end
      else if src <> dst then
        callers_in_comp.(dst) <- src :: callers_in_comp.(dst));
  Array.iteri
    (fun pid l -> callers_in_comp.(pid) <- List.sort_uniq compare l)
    callers_in_comp;
  let trivial = Array.init n_comps (fun c -> Scc.is_trivial g scc c) in
  (* The call-free IMUSTDEF, always computed (not only under
     provenance) so counted op totals are identical either way; it is
     also what [sidefx must] reports as the intraprocedural column. *)
  let intra = Array.init np (fun pid -> gen_of prog None nv pid) in
  let demoted = Array.init np (fun pid -> demotions info alias pid) in
  (* One procedure's transfer under the current callee values:
     structural IMUSTDEF with the call projection, demoted to may on
     alias involvement, capped by GMOD (a must-write is a may-write —
     the enforced MUSTMOD ⊆ GMOD invariant).  Flat programs run the
     fixpoint in compact per-procedure frames (see [build_frame]);
     nested ones, where an inner procedure can must-write an outer
     frame's variable, keep the full universe. *)
  let frame =
    if Prog.max_level prog <= 1 then Some (build_frame prog) else None
  in
  let mustmod =
    match frame with
    | Some fr -> Array.init np (fun pid -> Bitvec.create (frame_len fr pid))
    | None -> Array.init np (fun _ -> Bitvec.create nv)
  in
  let transfer =
    match frame with
    | Some fr ->
      let gmod_c =
        Array.init np (fun pid -> c_of_full fr pid (frame_len fr pid) gmod.(pid))
      in
      let demoted_c =
        Array.init np (fun pid ->
            c_of_full fr pid (frame_len fr pid) demoted.(pid))
      in
      fun pid ->
        let v = c_gen_of fr prog (Some mustmod) pid in
        ignore (Bitvec.diff_into ~src:demoted_c.(pid) ~dst:v);
        ignore (Bitvec.inter_into ~src:gmod_c.(pid) ~dst:v);
        v
    | None ->
      fun pid ->
        let v = gen_of prog (Some mustmod) nv pid in
        ignore (Bitvec.diff_into ~src:demoted.(pid) ~dst:v);
        ignore (Bitvec.inter_into ~src:gmod.(pid) ~dst:v);
        v
  in
  (* Components are numbered in reverse topological order of the call
     condensation, so walking them in increasing order sees every
     callee's value final — the same leaves-to-roots convention as
     Figure 1's step 3.  Within a cyclic component the members iterate
     from ∅ to the least fixpoint: the transfer is monotone in the
     callee values, so the chaotic iteration converges, and starting
     at ∅ keeps the answer conservative (a recursive procedure's
     must-set only contains what every unrolling agrees on). *)
  let solve_comp c =
    match members.(c) with
    | [ pid ] when trivial.(c) ->
      mustmod.(pid) <- transfer pid;
      1
    | procs -> iterate_comp ~transfer ~mustmod ~callers_in_comp procs
  in
  let rounds =
    match pool with
    | None ->
      let total = ref 0 in
      for c = 0 to n_comps - 1 do
        total := !total + solve_comp c
      done;
      !total
    | Some pool ->
      (* Condensation wavefront: a component is scheduled only after
         every callee component's level completed, so each [solve_comp]
         reads final successor values — per-component work is the
         sequential code, hence results and counted op totals are
         bit-identical to jobs = 1. *)
      let jobs = Par.Pool.jobs pool in
      let slot_rounds = Array.make jobs 0 in
      let levels =
        Par.Wavefront.of_comp_succs ~n_comps ~succs_of:(fun c ->
            succs_by_comp.(c))
      in
      let plan =
        Par.Wavefront.plan levels ~jobs ~cost:(fun c ->
            List.fold_left
              (fun acc pid -> acc + Stmt.count (Prog.proc prog pid).Prog.body)
              1 members.(c))
      in
      Par.Wavefront.run_plan (Some pool) plan ~f:(fun ~slot ~comp ->
          slot_rounds.(slot) <- slot_rounds.(slot) + solve_comp comp);
      Array.fold_left ( + ) 0 slot_rounds
  in
  Obs.Metric.add rounds_metric rounds;
  let mustmod =
    match frame with
    | Some fr -> expand_frame fr nv mustmod
    | None -> mustmod
  in
  {
    res = { prog; mustmod; intra; demoted; rounds };
    scc;
    members;
    succs_by_comp;
    preds_by_comp;
    callers_in_comp;
    trivial;
  }

let solve ?label ?pool info call ~alias ~gmod =
  (solve_cached ?label ?pool info call ~alias ~gmod).res

let resolve ?(label = "mustmod.region") sol info ~alias ~gmod ~changed_procs =
  Obs.Span.with_ label @@ fun () ->
  let prog = Ir.Info.prog info in
  let nv = Ir.Info.n_vars info in
  let np = Prog.n_procs prog in
  (* Re-derive the per-procedure ingredients of the edited procedures
     (body gen and alias demotion can both shift under a body edit),
     then push change leaves-to-roots over the cached condensation —
     the same pruned ancestor cone as [Rmod.resolve]: the smallest
     queued component always has final callee values, and a component
     whose recomputed sets come out unchanged stops the walk. *)
  let intra = Array.copy sol.res.intra in
  let demoted = Array.copy sol.res.demoted in
  let mustmod = Array.copy sol.res.mustmod in
  let queue = ref Int_set.empty in
  List.iter
    (fun pid ->
      intra.(pid) <- gen_of prog None nv pid;
      demoted.(pid) <- demotions info alias pid;
      queue := Int_set.add sol.scc.Scc.comp.(pid) !queue)
    changed_procs;
  let transfer pid =
    let v = gen_of prog (Some mustmod) nv pid in
    ignore (Bitvec.diff_into ~src:demoted.(pid) ~dst:v);
    ignore (Bitvec.inter_into ~src:gmod.(pid) ~dst:v);
    v
  in
  let rounds = ref 0 in
  let changed_set = Array.make np false in
  while not (Int_set.is_empty !queue) do
    let c = Int_set.min_elt !queue in
    queue := Int_set.remove c !queue;
    let comp_changed = ref false in
    (match sol.members.(c) with
    | [ pid ] when sol.trivial.(c) ->
      incr rounds;
      let v = transfer pid in
      if not (Bitvec.equal v mustmod.(pid)) then begin
        mustmod.(pid) <- v;
        comp_changed := true;
        changed_set.(pid) <- true
      end
    | procs ->
      (* A cyclic component re-solves from ∅: restarting at the cached
         values could keep stale bits alive (the must lattice grows
         downward under an edit that removes a write). *)
      List.iter (fun pid -> mustmod.(pid) <- Bitvec.create nv) procs;
      rounds :=
        !rounds
        + iterate_comp ~transfer ~mustmod
            ~callers_in_comp:sol.callers_in_comp procs;
      List.iter
        (fun pid ->
          if not (Bitvec.equal mustmod.(pid) sol.res.mustmod.(pid)) then begin
            comp_changed := true;
            changed_set.(pid) <- true
          end)
        procs);
    if !comp_changed then
      List.iter (fun cp -> queue := Int_set.add cp !queue) sol.preds_by_comp.(c)
  done;
  Obs.Metric.add rounds_metric !rounds;
  let changed = ref [] in
  for pid = np - 1 downto 0 do
    if changed_set.(pid) then changed := pid :: !changed
  done;
  ( {
      sol with
      res = { prog; mustmod; intra; demoted; rounds = !rounds };
    },
    !changed )

(* --- provenance grounding --------------------------------------------- *)

(* Breadth-first grounding of every MUSTMOD fact, from the procedures'
   own definite assignments outwards through the call-site projections.
   Touches bits only through [Bitvec.get] — never counted operations —
   so op-count metrics are identical whether or not provenance is on
   (the same contract as [Provenance.compute]'s forests).  BFS order
   guarantees the reason forest is acyclic even inside call cycles. *)
let ground_reasons (r : result) (table : Provenance.must_table) =
  let prog = r.prog in
  let nv = Prog.n_vars prog in
  let sites_by_callee = Array.make (Prog.n_procs prog) [] in
  Prog.iter_sites prog (fun s ->
      sites_by_callee.(s.Prog.callee) <- s :: sites_by_callee.(s.Prog.callee));
  let sites_by_callee = Array.map List.rev sites_by_callee in
  let queue = Queue.create () in
  let assign pid vid reason =
    if not (Hashtbl.mem table (pid, vid)) then begin
      Hashtbl.add table (pid, vid) reason;
      Queue.add (pid, vid) queue
    end
  in
  Prog.iter_procs prog (fun pr ->
      let pid = pr.Prog.pid in
      for vid = 0 to nv - 1 do
        if Bitvec.get r.mustmod.(pid) vid && Bitvec.get r.intra.(pid) vid then
          assign pid vid Provenance.Mdef
      done);
  while not (Queue.is_empty queue) do
    let q, u = Queue.take queue in
    List.iter
      (fun (s : Prog.site) ->
        let caller = s.Prog.caller in
        let reach w =
          if Bitvec.get r.mustmod.(caller) w then
            assign caller w (Provenance.Mcall { site = s.Prog.sid; pre = u })
        in
        match (Prog.var prog u).Prog.kind with
        | Prog.Formal { proc; index; mode = Prog.By_ref } when proc = q -> (
          match s.Prog.args.(index) with
          | Prog.Arg_ref (E.Lvar b) -> reach b
          | Prog.Arg_ref (E.Lindex _ | E.Lderef _) | Prog.Arg_value _ -> ())
        | Prog.Formal { proc; _ } when proc = q -> ()
        | Prog.Local owner when owner = q -> ()
        | _ -> reach u)
      sites_by_callee.(q)
  done

(* --- accessors and reporting ------------------------------------------ *)

let mustmod_of r pid = r.mustmod.(pid)
let intra_of r pid = r.intra.(pid)
let demoted_of r pid = r.demoted.(pid)

let check_subset r ~gmod =
  let ok = ref true in
  Array.iteri
    (fun pid m -> if not (Bitvec.subset m gmod.(pid)) then ok := false)
    r.mustmod;
  !ok

let pp ppf r =
  let prog = r.prog in
  Format.fprintf ppf "@[<v>";
  Prog.iter_procs prog (fun pr ->
      Format.fprintf ppf "MUSTMOD(%s) = %a@," pr.Prog.pname
        (Ir.Pp.pp_var_set prog) r.mustmod.(pr.Prog.pid));
  Format.fprintf ppf "@]"
