(** Derivation provenance for the analysis facts.

    Every bit the solvers set has a {e first derivation}: the β edge
    that carried an [RMOD] bit to its formal (eq. 6), the local
    def-site, reference binding or call-graph edge that put a variable
    into [IMOD+]/[GMOD] (eqs. 4–5), the §5 closure step that introduced
    an alias pair.  This module records one compact reason per
    first-set event — a derivation {e forest} over the fact space — so
    [sidefx explain] can walk reasons back to source-level evidence
    without re-running any solver.

    Construction is a post-pass over the finished solutions: breadth-
    first searches over β (for [RMOD]/[RUSE]) and over the call graph
    (for [GMOD]/[GUSE]) that touch bits only through [Bitvec.get],
    never through counted operations ([fold]/[iter] included) — so
    op-count metrics are identical whether or not provenance is on.
    Alias reasons are the exception: the §5 fixpoint discovers pairs in
    an order no post-pass can reconstruct, so {!Alias.compute} records
    them inline into a pre-created {!alias_table}. *)

(** Why a β node's [RMOD] (or [RUSE]) bit is set. *)
type rmod_reason =
  | Rseed  (** The formal is in its owner's (folded) [IMOD]. *)
  | Redge of int
      (** β edge id: the bit flowed edge-backwards (eq. 6) from the
          edge's destination, which was derived first. *)

(** Why a variable is in a procedure's [GMOD] (or [GUSE]).  The first
    three are the [IMOD+] seed cases of eq. 5 (exhaustive over the §3.3
    nesting fold); the last is eq. 4's propagation. *)
type gmod_reason =
  | Glocal  (** Assigned (used) directly in the procedure's own body. *)
  | Gbind of { site : int; arg_pos : int }
      (** Passed by reference at this site into a formal whose
          [RMOD]/[RUSE] holds — the caller-side projection of eq. 5. *)
  | Gnested of int
      (** Escaped from this nested child procedure (pid): the variable
          is in the child's [IMOD+] and not local to it (§3.3). *)
  | Gcall of int
      (** Call site id: the caller inherits the bit from the callee's
          [GMOD] minus the callee's locals (eq. 4). *)

(** Why an alias pair holds on entry to a procedure (§5 introduction
    and propagation rules). *)
type alias_reason =
  | Apositions of { site : int; pos_i : int; pos_j : int }
      (** The same actual is bound by reference at two positions. *)
  | Avisible of { site : int; pos : int }
      (** A by-reference actual remains visible inside the callee. *)
  | Apropagated of { site : int; from_pair : int * int }
      (** A pair already holding in the caller flows through the
          site's reference bindings. *)
  | Ainherited of { parent : int }
      (** The pair holds in the lexical parent, hence here (§3.3). *)
  | Apointsto of { site : int; pos : int }
      (** A dereference actual [*...*p] at [pos] may name the other
          member of the pair, per the points-to projection
          ({!Ptsto}). *)

type alias_table = (int * int * int, alias_reason) Hashtbl.t
(** Keyed by [(pid, x, y)] with [x <= y] ({!Alias.norm}); holds the
    first recorded reason for each pair. *)

(** Why a variable is in a procedure's [MUSTMOD] (the must-modify dual
    of [GMOD], {!Mustmod}).  A reason is single-step evidence — the
    first grounding found by a breadth-first search from the
    procedures' own definite assignments — not a full path proof:
    [Mcall] cites {e one} contributing call site even when the fact
    needed several branches to agree. *)
type must_reason =
  | Mdef  (** Definitely assigned by the procedure's own statements. *)
  | Mcall of { site : int; pre : int }
      (** Inherited through this call site from the callee's
          [MUSTMOD]; [pre] is the callee-side variable (the bound
          formal, or the variable itself when it passes through). *)

type must_table = (int * int, must_reason) Hashtbl.t
(** Keyed by [(pid, vid)]; holds the first recorded reason for each
    [MUSTMOD] fact. *)

type t = {
  rmod : rmod_reason option array;  (** By β node. *)
  ruse : rmod_reason option array;  (** By β node. *)
  gmod : (int * int, gmod_reason) Hashtbl.t;  (** By [(pid, vid)]. *)
  guse : (int * int, gmod_reason) Hashtbl.t;  (** By [(pid, vid)]. *)
  alias : alias_table;
  must : must_table;
}

val create_alias_table : unit -> alias_table

val create_must_table : unit -> must_table
(** Pre-created and handed to {!Mustmod.solve}'s grounding post-pass,
    mirroring the {!alias_table} flow through {!Alias.compute}. *)

val compute :
  ?deref:(int -> int -> int list) ->
  ?must:must_table ->
  Ir.Info.t ->
  binding:Callgraph.Binding.t ->
  imod:Bitvec.t array ->
  iuse:Bitvec.t array ->
  rmod:Rmod.result ->
  ruse:Rmod.result ->
  imod_plus:Bitvec.t array ->
  iuse_plus:Bitvec.t array ->
  gmod:Bitvec.t array ->
  guse:Bitvec.t array ->
  alias:alias_table ->
  t
(** Build the derivation forest for a finished analysis.  [imod]/
    [iuse] are the {e folded} local sets the [RMOD] solver was seeded
    with; [imod_plus]/[iuse_plus] the folded eq. 5 families.  Every
    set [RMOD]/[RUSE] node and every [(p, v)] with [v ∈ GMOD(p)] (resp.
    [GUSE]) receives a reason; the alias and must tables are stored as
    given ([?must] defaults to an empty table for callers that did not
    run {!Mustmod}). *)

val rmod_reasons : t -> side:[ `Mod | `Use ] -> rmod_reason option array
val gmod_reasons : t -> side:[ `Mod | `Use ] -> (int * int, gmod_reason) Hashtbl.t

val alias_reason : t -> proc:int -> int -> int -> alias_reason option
(** Reason the (normalised) pair holds on entry to [proc]. *)

val must_reason_of : t -> proc:int -> int -> must_reason option
(** Reason a variable is in [MUSTMOD(proc)]. *)
