(** [findgmod] — Figure 2 of the paper: the global-variable problem
    solved by a one-pass extension of Tarjan's strongly-connected
    components algorithm over the call multi-graph.

    Solves equation (4),

    {v GMOD(p) = IMOD+(p) ∪ ⋃_(e=(p,q)) (GMOD(q) ∖ LOCAL(q)) v}

    (set difference restored from the paper's lost overbar, see
    DESIGN.md) in [O(N_C + E_C)] bit-vector steps: the per-edge union
    of line 17 runs once per call edge, and the per-member
    strongly-connected-component adjustment of line 22 runs once per
    procedure.

    The DFS starts at the main procedure (the paper's [search(1)]); any
    procedure not reachable from main is then covered by further
    searches so the result is total, but — exactly as the paper assumes
    — [GMOD] of an unreachable procedure is only meaningful with
    respect to chains starting at it.

    Every solver takes [?pool].  With a pool, the pass is scheduled as
    a condensation wavefront: components of the call multi-graph are
    evaluated level-by-level, concurrently within a level, each by a
    Figure-2 traversal restricted to the component and started where
    the sequential DFS first entered it.  Scheduling is coarse
    ({!Par.Wavefront.plan}): consecutive singleton levels run inline
    on the caller without a barrier, wide levels are batched by
    estimated summary size.  Results {e and} the
    [bitvec.vector_ops]/[word_ops] step counts are bit-identical to
    the sequential pass (see docs/parallel.md); without a pool the
    original sequential code runs unchanged.

    On flat programs (no procedure nesting) {!solve} and {!solve_use}
    run the propagation over a compact renumbered escape universe —
    only the seeded globals, the only variables a call edge can carry
    (see {!Renumber}) — which makes the fold's word cost track live
    set sizes instead of the full variable universe.  The computed
    sets are identical either way; {!solve_region} always uses the
    full universe so cached vectors stay directly compatible. *)

val solve :
  ?label:string ->
  ?pool:Par.Pool.t ->
  Ir.Info.t -> Callgraph.Call.t -> imod_plus:Bitvec.t array -> Bitvec.t array
(** Per-procedure [GMOD].  Fresh vectors.  Runs under an {!Obs.Span}
    named [label] (default ["gmod"]), whose [bitvec.vector_ops] /
    [bitvec.word_ops] deltas are the paper's bit-vector-step count. *)

val solve_use :
  ?label:string ->
  ?pool:Par.Pool.t ->
  Ir.Info.t -> Callgraph.Call.t -> iuse_plus:Bitvec.t array -> Bitvec.t array
(** The identical algorithm seeded with [IUSE+], producing [GUSE] (§2:
    "the USE problem has an analogous solution").  Span default
    ["guse"]. *)

val solve_region :
  ?label:string ->
  ?pool:Par.Pool.t ->
  Ir.Info.t ->
  Callgraph.Call.t ->
  seed:Bitvec.t array ->
  dirty:Bitvec.t ->
  cached:Bitvec.t array ->
  Bitvec.t array
(** [findgmod] confined to a dirty region.  [dirty] must be closed
    under reaches-into-it on the call multi-graph — every procedure
    with a path to a procedure whose seed changed (condensation
    ancestors) — so a clean procedure's fixpoint value is provably
    [cached].  Runs Figure 2 over the dirty-induced subgraph, treating
    each clean successor as an already-closed component whose [cached]
    vector is folded in, and returns a full per-procedure array in
    which clean entries {e share} (not copy) their [cached] vectors.
    Bit-identical to {!solve} on the new seeds.  Cost: the dirty
    procedures' nodes and out-edges only.  Span default
    ["gmod.region"]. *)
