(** §5 — from [GMOD] to per-call-site [DMOD] and [MOD] (and the
    symmetric [USE] chain).

    Equation (2):
    {v DMOD(s) = LMOD(s) ∪ ⋃_(e=(p,q)∈s) b_e(GMOD(q)) v}

    For a call site [e = (p, q)], the projection [b_e(GMOD(q))] is

    - the variables of [GMOD(q)] that are not local to [q] (they
      survive [q]'s return unchanged in identity), plus
    - for every by-reference formal of [q] in [GMOD(q)], the base
      variable of the corresponding actual.

    [MOD(s)] then extends [DMOD(s)] by one step of alias pairs:
    [∀x ∈ DMOD(s), <x,y> ∈ ALIAS(p) ⇒ y ∈ MOD(s)]. *)

type t

val make :
  ?deref:(int -> int -> int list) ->
  Ir.Info.t ->
  gmod:Bitvec.t array ->
  guse:Bitvec.t array ->
  alias:Alias.t ->
  t
(** [~deref] is the points-to projection ({!Ptsto.deref}): a
    dereference actual [*...*p] at a by-reference position projects a
    modified formal onto the variables the dereference may name, not
    onto [p]. *)

val projection : t -> mode:[ `Mod | `Use ] -> int -> Bitvec.t
(** [b_e(GMOD(q))] (resp. [GUSE]) for call site [e] — the
    interprocedural part of the site's effect, before local effects and
    aliases.  Fresh vector. *)

val dmod_site : t -> int -> Bitvec.t
(** [DMOD] of the call statement at a site: since a call statement has
    no local modifications, this is exactly the projection. *)

val duse_site : t -> int -> Bitvec.t
(** [DUSE] of the call statement at a site: the projection plus the
    argument-evaluation uses ([LUSE] of the call statement). *)

val mod_site : t -> int -> Bitvec.t
(** [MOD(s)]: [DMOD(s)] extended with aliases of the surrounding
    procedure. *)

val use_site : t -> int -> Bitvec.t
(** [USE(s)]: [DUSE(s)] extended with aliases. *)

val dmod_stmt : t -> proc:int -> Ir.Stmt.t -> Bitvec.t
(** Equation (2) for an arbitrary statement: its [LMOD] plus the
    projections of every call site it contains (recursively). *)

val duse_stmt : t -> proc:int -> Ir.Stmt.t -> Bitvec.t

val mod_stmt : t -> proc:int -> Ir.Stmt.t -> Bitvec.t
val use_stmt : t -> proc:int -> Ir.Stmt.t -> Bitvec.t
