module Prog = Ir.Prog

type t = {
  prog : Prog.t;
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  imod : Bitvec.t array;
  iuse : Bitvec.t array;
  rmod : Rmod.result;
  ruse : Rmod.result;
  imod_plus : Bitvec.t array;
  iuse_plus : Bitvec.t array;
  gmod : Bitvec.t array;
  guse : Bitvec.t array;
  alias : Alias.t;
  summary : Summary.t;
  provenance : Provenance.t option;
}

let run_with ?(force_flat = false) ?pool ?(provenance = false) prog =
  Obs.Span.with_ "analyze" @@ fun () ->
  let info = Obs.Span.with_ "info" (fun () -> Ir.Info.make prog) in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build prog in
  let imod = Obs.Span.with_ "local" (fun () -> Frontend.Local.imod ?pool info) in
  let iuse =
    Obs.Span.with_ "local.use" (fun () -> Frontend.Local.iuse ?pool info)
  in
  let rmod = Rmod.solve ?pool binding ~imod in
  let ruse = Rmod.solve ~label:"ruse" ?pool binding ~imod:iuse in
  let imod_plus = Imod_plus.compute info ~rmod ~imod in
  let iuse_plus = Imod_plus.compute ~label:"iuse_plus" info ~rmod:ruse ~imod:iuse in
  let nested = (not force_flat) && Prog.max_level prog > 1 in
  let gmod, guse =
    if nested then
      (* The single-pass multi-level algorithm interleaves its per-level
         stacks in one traversal; it has no wavefront form and stays
         sequential regardless of the pool. *)
      ( Gmod_nested.solve info call ~imod_plus,
        Gmod_nested.solve ~label:"guse" info call ~imod_plus:iuse_plus )
    else
      ( Gmod.solve ?pool info call ~imod_plus,
        Gmod.solve_use ?pool info call ~iuse_plus )
  in
  let alias_table =
    if provenance then Some (Provenance.create_alias_table ()) else None
  in
  let alias = Alias.compute ?provenance:alias_table info in
  let summary = Obs.Span.with_ "summary" (fun () -> Summary.make info ~gmod ~guse ~alias) in
  let prov =
    match alias_table with
    | None -> None
    | Some table ->
      Some
        (Obs.Span.with_ "provenance" (fun () ->
             Provenance.compute info ~binding ~imod ~iuse ~rmod ~ruse ~imod_plus
               ~iuse_plus ~gmod ~guse ~alias:table))
  in
  {
    prog;
    info;
    call;
    binding;
    imod;
    iuse;
    rmod;
    ruse;
    imod_plus;
    iuse_plus;
    gmod;
    guse;
    alias;
    summary;
    provenance = prov;
  }

let run ?force_flat ?(jobs = 1) ?pool ?provenance prog =
  match pool with
  | Some _ -> run_with ?force_flat ?pool ?provenance prog
  | None ->
    Par.Pool.with_pool ~jobs (fun pool -> run_with ?force_flat ?pool ?provenance prog)

let union_over t family family' =
  let acc = Ir.Info.fresh t.info in
  Prog.iter_procs t.prog (fun pr ->
      let pid = pr.Prog.pid in
      ignore (Bitvec.union_into ~src:family.(pid) ~dst:acc);
      ignore (Bitvec.union_into ~src:family'.(pid) ~dst:acc));
  acc

let modified_anywhere t = union_over t t.gmod t.imod
let used_anywhere t = union_over t t.guse t.iuse

let mod_of_site t sid = Summary.mod_site t.summary sid
let use_of_site t sid = Summary.use_site t.summary sid
let dmod_of_site t sid = Summary.dmod_site t.summary sid
let duse_of_site t sid = Summary.duse_site t.summary sid
let gmod_of t pid = t.gmod.(pid)
let guse_of t pid = t.guse.(pid)

let pp_report ppf t =
  let prog = t.prog in
  Format.fprintf ppf "@[<v>== analysis report: %s ==@," prog.Prog.name;
  Format.fprintf ppf "%a@," Callgraph.Call.pp_stats t.call;
  Format.fprintf ppf "%a@,@," Callgraph.Binding.pp_stats t.binding;
  Prog.iter_procs prog (fun pr ->
      let pid = pr.Prog.pid in
      Format.fprintf ppf "procedure %s:@," pr.Prog.pname;
      (match Rmod.rmod_of_proc t.rmod pid with
      | [] -> ()
      | vids ->
        Format.fprintf ppf "  RMOD = {%a}@,"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
             (fun ppf vid ->
               Format.pp_print_string ppf (Prog.var prog vid).Prog.vname))
          vids);
      Format.fprintf ppf "  IMOD+ = %a@," (Ir.Pp.pp_var_set prog) t.imod_plus.(pid);
      Format.fprintf ppf "  GMOD  = %a@," (Ir.Pp.pp_var_set prog) t.gmod.(pid);
      Format.fprintf ppf "  GUSE  = %a@," (Ir.Pp.pp_var_set prog) t.guse.(pid));
  Format.fprintf ppf "@,%a@," (Alias.pp prog) t.alias;
  Prog.iter_sites prog (fun s ->
      Format.fprintf ppf "@,site %d: %s calls %s@,  MOD = %a@,  USE = %a@,"
        s.Prog.sid
        (Prog.proc prog s.Prog.caller).Prog.pname
        (Prog.proc prog s.Prog.callee).Prog.pname
        (Ir.Pp.pp_var_set prog)
        (mod_of_site t s.Prog.sid)
        (Ir.Pp.pp_var_set prog)
        (use_of_site t s.Prog.sid));
  Format.fprintf ppf "@]"
