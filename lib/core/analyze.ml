module Prog = Ir.Prog

type t = {
  prog : Prog.t;
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  ptsto : Ptsto.t option;
  deref : int -> int -> int list;
  imod : Bitvec.t array;
  iuse : Bitvec.t array;
  rmod : Rmod.result;
  ruse : Rmod.result;
  imod_plus : Bitvec.t array;
  iuse_plus : Bitvec.t array;
  gmod : Bitvec.t array;
  guse : Bitvec.t array;
  alias : Alias.t;
  mustmod : Mustmod.result;
  summary : Summary.t;
  provenance : Provenance.t option;
}

(* Heap-overlap seeds for §5: two dereference actuals at one site that
   can only collide through a heap summary location (no shared variable
   target, so the binding expansion inside [Alias] cannot see the
   overlap). *)
let heap_seeds prog pt =
  let acc = ref [] in
  Prog.iter_sites prog (fun s ->
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          match arg with
          | Prog.Arg_ref (Ir.Expr.Lderef (p, d)) ->
            let heap_i = Ptsto.deref_heap pt p d in
            if heap_i <> [] then
              Array.iteri
                (fun j arg' ->
                  match arg' with
                  | Prog.Arg_ref (Ir.Expr.Lderef (q, d')) when j > i ->
                    if
                      List.exists
                        (fun k -> List.mem k (Ptsto.deref_heap pt q d'))
                        heap_i
                    then
                      acc :=
                        ( s.Prog.callee,
                          (callee.Prog.formals.(i), callee.Prog.formals.(j)),
                          s.Prog.sid,
                          i )
                        :: !acc
                  | _ -> ())
                s.Prog.args
          | _ -> ())
        s.Prog.args);
  List.rev !acc

let run_with ?(force_flat = false) ?pool ?(provenance = false)
    ?(ptsto = Ptsto.Steensgaard) prog =
  Obs.Span.with_ "analyze" @@ fun () ->
  let info = Obs.Span.with_ "info" (fun () -> Ir.Info.make prog) in
  (* Points-to runs first: every later phase consumes its dereference
     projection.  Pointer-free programs skip it entirely — the default
     empty projection leaves each phase on its original code path, so
     results (and counted bit-vector ops) are bit-identical to a
     pointer-less build. *)
  let pt =
    if Ptsto.has_pointers prog then
      Some (Obs.Span.with_ "ptsto" (fun () -> Ptsto.analyze ~tier:ptsto prog))
    else None
  in
  let deref =
    match pt with Some t -> Ptsto.deref t | None -> Frontend.Local.no_deref
  in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build ~deref prog in
  let imod =
    Obs.Span.with_ "local" (fun () -> Frontend.Local.imod ?pool ~deref info)
  in
  let iuse =
    Obs.Span.with_ "local.use" (fun () -> Frontend.Local.iuse ?pool ~deref info)
  in
  let rmod = Rmod.solve ?pool binding ~imod in
  let ruse = Rmod.solve ~label:"ruse" ?pool binding ~imod:iuse in
  let imod_plus = Imod_plus.compute ~deref info ~rmod ~imod in
  let iuse_plus =
    Imod_plus.compute ~label:"iuse_plus" ~deref info ~rmod:ruse ~imod:iuse
  in
  let nested = (not force_flat) && Prog.max_level prog > 1 in
  let gmod, guse =
    if nested then
      (* The single-pass multi-level algorithm interleaves its per-level
         stacks in one traversal; it has no wavefront form and stays
         sequential regardless of the pool. *)
      ( Gmod_nested.solve info call ~imod_plus,
        Gmod_nested.solve ~label:"guse" info call ~imod_plus:iuse_plus )
    else
      ( Gmod.solve ?pool info call ~imod_plus,
        Gmod.solve_use ?pool info call ~iuse_plus )
  in
  let alias_table =
    if provenance then Some (Provenance.create_alias_table ()) else None
  in
  let seeds = match pt with None -> [] | Some t -> heap_seeds prog t in
  let alias = Alias.compute ?provenance:alias_table ~deref ~seeds info in
  let mustmod = Mustmod.solve ?pool info call ~alias ~gmod in
  let summary =
    Obs.Span.with_ "summary" (fun () -> Summary.make ~deref info ~gmod ~guse ~alias)
  in
  let prov =
    match alias_table with
    | None -> None
    | Some table ->
      Some
        (Obs.Span.with_ "provenance" (fun () ->
             let must = Provenance.create_must_table () in
             Mustmod.ground_reasons mustmod must;
             Provenance.compute ~deref ~must info ~binding ~imod ~iuse ~rmod
               ~ruse ~imod_plus ~iuse_plus ~gmod ~guse ~alias:table))
  in
  {
    prog;
    info;
    call;
    binding;
    ptsto = pt;
    deref;
    imod;
    iuse;
    rmod;
    ruse;
    imod_plus;
    iuse_plus;
    gmod;
    guse;
    alias;
    mustmod;
    summary;
    provenance = prov;
  }

let run ?force_flat ?(jobs = 1) ?pool ?provenance ?ptsto prog =
  match pool with
  | Some _ -> run_with ?force_flat ?pool ?provenance ?ptsto prog
  | None ->
    Par.Pool.with_pool ~jobs (fun pool ->
        run_with ?force_flat ?pool ?provenance ?ptsto prog)

let union_over t family family' =
  let acc = Ir.Info.fresh t.info in
  Prog.iter_procs t.prog (fun pr ->
      let pid = pr.Prog.pid in
      ignore (Bitvec.union_into ~src:family.(pid) ~dst:acc);
      ignore (Bitvec.union_into ~src:family'.(pid) ~dst:acc));
  acc

let modified_anywhere t = union_over t t.gmod t.imod
let used_anywhere t = union_over t t.guse t.iuse

let mod_of_site t sid = Summary.mod_site t.summary sid
let use_of_site t sid = Summary.use_site t.summary sid
let dmod_of_site t sid = Summary.dmod_site t.summary sid
let duse_of_site t sid = Summary.duse_site t.summary sid
let gmod_of t pid = t.gmod.(pid)
let guse_of t pid = t.guse.(pid)
let mustmod_of t pid = Mustmod.mustmod_of t.mustmod pid

let pp_report ppf t =
  let prog = t.prog in
  Format.fprintf ppf "@[<v>== analysis report: %s ==@," prog.Prog.name;
  Format.fprintf ppf "%a@," Callgraph.Call.pp_stats t.call;
  Format.fprintf ppf "%a@,@," Callgraph.Binding.pp_stats t.binding;
  Prog.iter_procs prog (fun pr ->
      let pid = pr.Prog.pid in
      Format.fprintf ppf "procedure %s:@," pr.Prog.pname;
      (match Rmod.rmod_of_proc t.rmod pid with
      | [] -> ()
      | vids ->
        Format.fprintf ppf "  RMOD = {%a}@,"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
             (fun ppf vid ->
               Format.pp_print_string ppf (Prog.var prog vid).Prog.vname))
          vids);
      Format.fprintf ppf "  IMOD+ = %a@," (Ir.Pp.pp_var_set prog) t.imod_plus.(pid);
      Format.fprintf ppf "  GMOD  = %a@," (Ir.Pp.pp_var_set prog) t.gmod.(pid);
      Format.fprintf ppf "  GUSE  = %a@," (Ir.Pp.pp_var_set prog) t.guse.(pid);
      Format.fprintf ppf "  MUSTMOD = %a@," (Ir.Pp.pp_var_set prog)
        (Mustmod.mustmod_of t.mustmod pid));
  Format.fprintf ppf "@,%a@," (Alias.pp prog) t.alias;
  Prog.iter_sites prog (fun s ->
      Format.fprintf ppf "@,site %d: %s calls %s@,  MOD = %a@,  USE = %a@,"
        s.Prog.sid
        (Prog.proc prog s.Prog.caller).Prog.pname
        (Prog.proc prog s.Prog.callee).Prog.pname
        (Ir.Pp.pp_var_set prog)
        (mod_of_site t s.Prog.sid)
        (Ir.Pp.pp_var_set prog)
        (use_of_site t s.Prog.sid));
  Format.fprintf ppf "@]"
