(** Compact escape-universe renumbering for the flat Figure-2 solve.

    For programs without procedure nesting, the only variables that
    survive equation (4)'s [∖ LOCAL(p)] strip — the only ones a call
    edge can propagate — are globals.  [build] renumbers the globals
    that occur in at least one seed into a dense compact universe
    [0 .. n_compact), in deterministic first-touch order (procedures
    ascending, seed bits ascending), and projects every seed into it.
    {!Gmod} runs the whole propagation over the compact vectors (where
    the local-strip is implicit: locals are not in the universe) and
    {!expand} maps each result back, unioned onto the per-procedure
    base ([IMOD+], which carries the procedure's own formals and
    locals).

    Only valid when no variable of one procedure is visible in another
    — i.e. [Ir.Prog.max_level prog <= 1]; callers gate on that.  The
    counted bit-vector work of [build]/[expand] is one [iter] per seed
    or result plus one copy per base vector — linear in live data. *)

type t

val build : Ir.Info.t -> seed:Bitvec.t array -> t
(** Scan the seeds, assign compact ids, and project every seed into
    the compact universe. *)

val n_compact : t -> int
(** Size of the compact universe: distinct seeded globals. *)

val of_compact : t -> int -> int
(** Map a compact id back to its variable id. *)

val compact_seeds : t -> Bitvec.t array
(** Per-procedure seeds over the compact universe ([length =
    n_compact]); the caller may mutate them freely. *)

val expand : t -> base:Bitvec.t array -> compact:Bitvec.t array -> Bitvec.t array
(** [expand t ~base ~compact] is, per procedure, a copy of [base.(p)]
    with every bit of [compact.(p)] mapped back to full variable ids
    and set.  Fresh vectors; inputs are not mutated. *)
