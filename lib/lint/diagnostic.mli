(** Lint findings: stable codes, severities, source spans, and the two
    reporters (text and stable JSON).

    Codes are {e stable identifiers} ([SFX001], [SFX002], …): once a
    code has shipped its meaning never changes, so editor integrations
    and suppression lists can key on it.  Messages and hints may be
    reworded freely.

    Ordering is deterministic: {!compare} sorts by source position,
    then code, scope, and message — so a finding list is reproducible
    across runs, rule orderings, and [--jobs] settings. *)

type severity =
  | Note  (** Informational — an opportunity, not a problem. *)
  | Warning  (** Likely mistake or precision loss. *)
  | Error  (** A real hazard (e.g. writes through aliased names). *)

val severity_to_string : severity -> string
(** ["note"] / ["warning"] / ["error"] — the JSON encoding and the
    [--severity-threshold] vocabulary. *)

val severity_of_string : string -> severity option

val severity_order : severity -> int
(** [Note < Warning < Error]; used by threshold comparisons. *)

type t = {
  code : string;  (** Stable code, [SFX001..]. *)
  rule : string;  (** Emitting rule's CLI name (e.g. ["pure-proc"]). *)
  severity : severity;
  loc : Frontend.Loc.t;  (** {!Frontend.Loc.dummy} when the program has no source. *)
  scope : string;  (** Enclosing procedure (the program name for globals). *)
  message : string;
  hint : string option;  (** A suggested fix, when the rule has one. *)
  witness : string list;
      (** Derivation evidence, one rendered line per step — filled by
          the rules when the analysis carries {!Core.Provenance} (the
          [sidefx explain]/[lint --explain] path), empty otherwise.
          Not part of {!key} or {!compare}: a finding's identity does
          not depend on how it was derived. *)
}

val compare : t -> t -> int
(** Total order: [(loc.file, loc.line, loc.col, code, scope, message)]. *)

val key : t -> string * string * string
(** Location-free identity [(code, scope, message)] — what diagnostic
    deltas match on (edits renumber ids and invalidate positions, but a
    finding that persists keeps its key). *)

val pp : Format.formatter -> t -> unit
(** One text-report entry: [file:line:col: severity[CODE] scope:
    message], the position omitted when it is {!Frontend.Loc.dummy},
    with an indented [hint:] line when present and indented [witness:]
    lines when the finding carries a derivation chain. *)

val to_json : t -> Obs.Json.t
(** Stable key set: [code], [rule], [severity], [file], [line], [col],
    [scope], [message], [hint] (JSON [null] when absent), [witness]
    (list of strings, empty when no provenance was recorded). *)
