(** The rule set — every diagnostic the engine knows how to derive from
    a solved analysis.

    Rules are pure functions of a {!ctx}: they read the summaries
    ({!Core.Analyze.t} exposes both the pre-alias [DMOD] and the
    post-alias [MOD] of every site), never re-solve anything, and emit
    located {!Diagnostic} values.  Because they share no mutable state
    they can run concurrently on a {!Par.Pool} (see {!Engine.run}).

    Catalogue (stable codes — see docs/lint.md for triggering examples):

    - [unused-formal] [SFX001] {e warning} — a by-reference formal in
      neither [RMOD] nor [RUSE]: no invocation ever touches it.
    - [write-only-global] [SFX002] {e warning} — a global in some
      [GMOD]/[IMOD] but in no [GUSE]/[IUSE] anywhere: stored, never read.
    - [pure-proc] [SFX003] {e note} — no global side effects
      ([GMOD(p) ⊆ LOCAL(p)]; this repo's [GMOD] keeps a procedure's own
      modified formals in the set) and no transitive I/O: a memoization
      / parallelization candidate.
    - [alias-inflation] [SFX004] {e warning} — a call site where the §5
      alias closure strictly enlarges [DMOD], with the pair named.
    - [aliased-actuals] [SFX005] {e error} — two actuals of one call
      bound to aliased storage while a bound formal is in [RMOD].
    - [loop-parallel] [SFX006] {e warning} / [SFX007] {e note} — the
      §6 {!Sections.Deps.analyze_loop} verdict of each [for] loop:
      conflict variables and reasons, or provable parallelisability.
    - [dead-store] [SFX008] {e warning} — a scalar store no execution
      path can read before it is definitely overwritten or the value's
      lifetime ends, judged by the statement-level liveness solver with
      calls made transparent by [b_e(GUSE(q))]/must-[DMOD] transfer
      functions and the §5 alias closure (docs/dataflow.md).
    - [rmw-hint] [SFX009] {e note} — a call site whose [USE ∩ MOD] is
      non-empty on a location the caller still reads afterwards: a
      read-modify-write a caller could batch. *)

type ctx = {
  analysis : Core.Analyze.t;
  locs : Frontend.Locs.t;
      (** Source spans; {!Frontend.Locs.dummy} for generated or edited
          programs. *)
  sections : Sections.Analyze_sections.t option;
      (** The §6 sectioned analysis, present when the program is flat
          and a selected rule needs it; [None] disables the loop
          verdicts. *)
  dataflow : Dataflow.Driver.t option;
      (** Statement-level CFG/liveness solutions, present when a
          selected rule needs them.  Presolved by the engine before
          rules fan out, so concurrent rule execution only reads. *)
}

type t = {
  name : string;  (** CLI name ([--rules name,...]). *)
  codes : string list;  (** Diagnostic codes this rule may emit. *)
  doc : string;  (** One-line description (rule catalogue, [--help]). *)
  metric : string;  (** Registry counter fed with the finding count. *)
  needs_sections : bool;
  needs_dataflow : bool;
  run : ctx -> Diagnostic.t list;
}

val all : t list
(** Every rule, in catalogue order. *)

val find : string -> t option

val pure_procs : Core.Analyze.t -> int list
(** Pids with [GMOD(p) ⊆ LOCAL(p)] and no transitive I/O, ascending
    (main excluded) — the [pure-proc] predicate, exposed for graph
    highlighting. *)

val inflated_sites : Core.Analyze.t -> int list
(** Sites where the alias closure strictly enlarges [DMOD], ascending —
    the [alias-inflation] predicate, exposed for graph highlighting. *)
