type severity =
  | Note
  | Warning
  | Error

let severity_to_string = function
  | Note -> "note"
  | Warning -> "warning"
  | Error -> "error"

let severity_of_string = function
  | "note" -> Some Note
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let severity_order = function
  | Note -> 0
  | Warning -> 1
  | Error -> 2

type t = {
  code : string;
  rule : string;
  severity : severity;
  loc : Frontend.Loc.t;
  scope : string;
  message : string;
  hint : string option;
  witness : string list;
}

let compare a b =
  Stdlib.compare
    ( a.loc.Frontend.Loc.file,
      a.loc.Frontend.Loc.line,
      a.loc.Frontend.Loc.col,
      a.code,
      a.scope,
      a.message )
    ( b.loc.Frontend.Loc.file,
      b.loc.Frontend.Loc.line,
      b.loc.Frontend.Loc.col,
      b.code,
      b.scope,
      b.message )

let key d = (d.code, d.scope, d.message)

let pp ppf d =
  if d.loc = Frontend.Loc.dummy then
    Format.fprintf ppf "%s[%s] %s: %s"
      (severity_to_string d.severity)
      d.code d.scope d.message
  else
    Format.fprintf ppf "%a: %s[%s] %s: %s" Frontend.Loc.pp d.loc
      (severity_to_string d.severity)
      d.code d.scope d.message;
  (match d.hint with
  | None -> ()
  | Some h -> Format.fprintf ppf "@,    hint: %s" h);
  match d.witness with
  | [] -> ()
  | lines ->
    Format.fprintf ppf "@,    witness:";
    List.iter (fun l -> Format.fprintf ppf "@,      %s" l) lines

let to_json d =
  Obs.Json.Obj
    [
      ("code", Obs.Json.String d.code);
      ("rule", Obs.Json.String d.rule);
      ("severity", Obs.Json.String (severity_to_string d.severity));
      ("file", Obs.Json.String d.loc.Frontend.Loc.file);
      ("line", Obs.Json.Int d.loc.Frontend.Loc.line);
      ("col", Obs.Json.Int d.loc.Frontend.Loc.col);
      ("scope", Obs.Json.String d.scope);
      ("message", Obs.Json.String d.message);
      ( "hint",
        match d.hint with
        | None -> Obs.Json.Null
        | Some h -> Obs.Json.String h );
      ("witness", Obs.Json.List (List.map (fun l -> Obs.Json.String l) d.witness));
    ]
