module P = Ir.Prog
module A = Core.Analyze

type ctx = {
  analysis : Core.Analyze.t;
  locs : Frontend.Locs.t;
  sections : Sections.Analyze_sections.t option;
  dataflow : Dataflow.Driver.t option;
}

type t = {
  name : string;
  codes : string list;
  doc : string;
  metric : string;
  needs_sections : bool;
  needs_dataflow : bool;
  run : ctx -> Diagnostic.t list;
}

let name_of ctx vid = Ir.Pp.var_name ctx.analysis.A.prog vid
let qname_of ctx vid = Ir.Pp.qualified_var_name ctx.analysis.A.prog vid
let proc_name ctx pid = (P.proc ctx.analysis.A.prog pid).P.pname

(* --- witnesses --------------------------------------------------------

   When the analysis carries a {!Core.Provenance} forest (the [sidefx
   explain] / [lint --explain] path), every finding gets a rendered
   derivation chain via {!Core.Explain}.  Without provenance all
   witnesses are [[]] and the text report is unchanged. *)

let explain_on ctx = ctx.analysis.A.provenance <> None

let gmod_witness ctx ~side ~proc ~var =
  Option.value ~default:[]
    (Core.Explain.explain_gmod ctx.analysis ~locs:ctx.locs ~side ~proc ~var)

let rmod_witness ctx ~side ~var =
  Option.value ~default:[]
    (Core.Explain.explain_rmod ctx.analysis ~locs:ctx.locs ~side ~var)

let alias_witness ctx ~proc x y =
  Option.value ~default:[]
    (Core.Explain.explain_alias ctx.analysis ~locs:ctx.locs ~proc x y)

let must_witness ctx ~proc ~var =
  Option.value ~default:[]
    (Core.Explain.explain_must ctx.analysis ~locs:ctx.locs ~proc ~var)

(* Why is [v] in MOD(s) (side [`Mod]) or USE(s) (side [`Use])?  Walks
   the §5 summary cases — direct escape from the callee's GMOD/GUSE,
   reference projection through an RMOD/RUSE formal, argument
   evaluation, alias closure — each chained into the underlying fact's
   own witness. *)
let site_witness ctx ~side sid v =
  if not (explain_on ctx) then []
  else begin
    let t = ctx.analysis in
    let prog = t.A.prog in
    let s = P.site prog sid in
    let callee = P.proc prog s.P.callee in
    let gset = match side with `Mod -> t.A.gmod | `Use -> t.A.guse in
    let rsol = match side with `Mod -> t.A.rmod | `Use -> t.A.ruse in
    let action = match side with `Mod -> "modify" | `Use -> "read" in
    let direct v =
      if
        Bitvec.get gset.(s.P.callee) v
        && not (Bitvec.get (Ir.Info.local t.A.info s.P.callee) v)
      then
        Some
          (Printf.sprintf "call to '%s' at site %d may %s '%s' directly"
             callee.P.pname sid action (qname_of ctx v)
          :: gmod_witness ctx ~side ~proc:s.P.callee ~var:v)
      else begin
        let found = ref None in
        Array.iteri
          (fun i arg ->
            match arg with
            | P.Arg_ref lv
              when !found = None
                   && Ir.Expr.lvalue_base lv = v
                   && Core.Rmod.modified rsol callee.P.formals.(i) ->
              found := Some i
            | _ -> ())
          s.P.args;
        match !found with
        | Some i ->
          Some
            (Printf.sprintf
               "'%s' is passed by reference at site %d (arg %d), binding '%s'"
               (qname_of ctx v) sid i
               (qname_of ctx callee.P.formals.(i))
            :: rmod_witness ctx ~side ~var:callee.P.formals.(i))
        | None -> (
          match side with
          | `Use
            when List.mem v (Frontend.Local.luse_stmt prog (Ir.Stmt.Call sid))
            ->
            Some
              [
                Printf.sprintf
                  "'%s' is read when evaluating the arguments of site %d"
                  (qname_of ctx v) sid;
              ]
          | _ -> None)
      end
    in
    match direct v with
    | Some lines -> lines
    | None -> (
      (* Alias closure: some member of the direct set aliases [v]. *)
      let dset =
        match side with
        | `Mod -> A.dmod_of_site t sid
        | `Use -> A.duse_of_site t sid
      in
      let x =
        List.find_opt
          (fun x -> Bitvec.get dset x)
          (Core.Alias.aliases_of t.A.alias ~proc:s.P.caller ~var:v)
      in
      match x with
      | None -> []
      | Some x ->
        alias_witness ctx ~proc:s.P.caller x v
        @ (match direct x with Some lines -> lines | None -> []))
  end

(* Transitive I/O: a procedure whose body contains a read/write
   statement, or that (transitively) calls one that does.  GMOD is
   blind to I/O effects, so the pure-proc rule must mask these out. *)
let io_procs prog =
  let io = Array.make (P.n_procs prog) false in
  P.iter_procs prog (fun pr ->
      Ir.Stmt.iter
        (fun st ->
          match st with
          | Ir.Stmt.Read _ | Ir.Stmt.Write _ -> io.(pr.P.pid) <- true
          | _ -> ())
        pr.P.body);
  let changed = ref true in
  while !changed do
    changed := false;
    P.iter_sites prog (fun s ->
        if io.(s.P.callee) && not io.(s.P.caller) then begin
          io.(s.P.caller) <- true;
          changed := true
        end)
  done;
  io

(* SFX001 — by-reference formals no invocation modifies or uses. *)
let unused_formal ctx =
  let t = ctx.analysis in
  let out = ref [] in
  P.iter_vars t.A.prog (fun v ->
      match v.P.kind with
      | P.Formal { proc; mode = P.By_ref; index } ->
          if
            (not (Core.Rmod.modified t.A.rmod v.P.vid))
            && not (Core.Rmod.modified t.A.ruse v.P.vid)
          then
            out :=
              {
                Diagnostic.code = "SFX001";
                rule = "unused-formal";
                severity = Diagnostic.Warning;
                loc = Frontend.Locs.var ctx.locs v.P.vid;
                scope = proc_name ctx proc;
                message =
                  Printf.sprintf
                    "by-reference formal '%s' (parameter %d) is never \
                     modified or used by any invocation"
                    v.P.vname (index + 1);
                hint = Some "drop the parameter, or pass it by value";
                witness =
                  (if explain_on ctx then
                     [
                       Printf.sprintf
                         "no β path from '%s' reaches a definition or use: \
                          its RMOD and RUSE bits are both unset"
                         (qname_of ctx v.P.vid);
                     ]
                   else []);
              }
              :: !out
      | _ -> ());
  !out

(* SFX002 — globals some procedure writes but none ever reads. *)
let write_only_global ctx =
  let t = ctx.analysis in
  let written = A.modified_anywhere t in
  let read = A.used_anywhere t in
  let out = ref [] in
  Bitvec.iter
    (fun vid ->
      if not (Bitvec.get read vid) then
        out :=
          {
            Diagnostic.code = "SFX002";
            rule = "write-only-global";
            severity = Diagnostic.Warning;
            loc = Frontend.Locs.var ctx.locs vid;
            scope = t.A.prog.P.name;
            message =
              Printf.sprintf "global '%s' is written but never read"
                (name_of ctx vid);
            hint = Some "delete the variable and the stores into it";
            witness =
              (if explain_on ctx then begin
                 let writer = ref None in
                 P.iter_procs t.A.prog (fun pr ->
                     if
                       !writer = None
                       && Bitvec.get t.A.gmod.(pr.P.pid) vid
                     then writer := Some pr.P.pid);
                 (match !writer with
                 | Some pid ->
                   gmod_witness ctx ~side:`Mod ~proc:pid ~var:vid
                 | None -> [])
                 @ [
                     Printf.sprintf
                       "'%s' appears in no GUSE set: nothing ever reads it"
                       (name_of ctx vid);
                   ]
               end
               else []);
          }
          :: !out)
    (Bitvec.inter written (Ir.Info.global t.A.info));
  !out

(* "Pure" here means no effect visible outside the invocation except
   through the reference formals: GMOD(p) ⊆ LOCAL(p).  (This repo's
   GMOD convention keeps a procedure's own modified formals in the set,
   so plain emptiness would be too strict.)  I/O is invisible to GMOD
   and masked separately. *)
let pure_procs t =
  let io = io_procs t.A.prog in
  let out = ref [] in
  P.iter_procs t.A.prog (fun pr ->
      let pid = pr.P.pid in
      if
        pid <> t.A.prog.P.main
        && Bitvec.subset t.A.gmod.(pid) (Ir.Info.local t.A.info pid)
        && not io.(pid)
      then out := pid :: !out);
  List.rev !out

(* SFX003 — GMOD(p) escapes nothing, and no transitive I/O. *)
let pure_proc ctx =
  let t = ctx.analysis in
  List.map
    (fun pid ->
      let writes_formal =
        Core.Rmod.rmod_of_proc t.A.rmod pid <> []
      in
      {
        Diagnostic.code = "SFX003";
        rule = "pure-proc";
        severity = Diagnostic.Note;
        loc = Frontend.Locs.proc ctx.locs pid;
        scope = proc_name ctx pid;
        message =
          Printf.sprintf "procedure '%s' has no global side effects"
            (proc_name ctx pid);
        hint =
          Some
            (if writes_formal then
               "it writes only through its reference formals; calls with \
                disjoint actuals can run in parallel"
             else "candidate for memoization and parallel execution");
        witness =
          (if explain_on ctx then
             Printf.sprintf
               "GMOD(%s) ⊆ LOCAL(%s): no write escapes the invocation, \
                and no transitive callee performs I/O"
               (proc_name ctx pid) (proc_name ctx pid)
             ::
             (if writes_formal then
                List.concat_map
                  (fun f -> rmod_witness ctx ~side:`Mod ~var:f)
                  (Core.Rmod.rmod_of_proc t.A.rmod pid)
              else [])
           else []);
      })
    (pure_procs t)

let inflated_sites t =
  let out = ref [] in
  P.iter_sites t.A.prog (fun s ->
      let dmod = A.dmod_of_site t s.P.sid in
      let m = A.mod_of_site t s.P.sid in
      if not (Bitvec.subset m dmod) then out := s.P.sid :: !out);
  List.rev !out

(* SFX004 — sites where the §5 alias closure strictly enlarges DMOD. *)
let alias_inflation ctx =
  let t = ctx.analysis in
  List.concat_map
    (fun sid ->
      let s = P.site t.A.prog sid in
      let dmod = A.dmod_of_site t sid in
      let added = Bitvec.diff (A.mod_of_site t sid) dmod in
      Bitvec.fold
        (fun y acc ->
          let witness =
            List.find_opt
              (fun x -> Bitvec.get dmod x)
              (Core.Alias.aliases_of t.A.alias ~proc:s.P.caller ~var:y)
          in
          let message =
            match witness with
            | Some x ->
                Printf.sprintf
                  "call to '%s' may modify '%s' only through alias pair <%s, \
                   %s>"
                  (proc_name ctx s.P.callee) (qname_of ctx y) (qname_of ctx x)
                  (qname_of ctx y)
            | None ->
                Printf.sprintf
                  "call to '%s' may modify '%s' only through aliasing"
                  (proc_name ctx s.P.callee) (qname_of ctx y)
          in
          {
            Diagnostic.code = "SFX004";
            rule = "alias-inflation";
            severity = Diagnostic.Warning;
            loc = Frontend.Locs.site ctx.locs sid;
            scope = proc_name ctx s.P.caller;
            message;
            hint =
              Some
                "the alias pair widens MOD beyond DMOD; passing distinct \
                 variables restores precision";
            witness = site_witness ctx ~side:`Mod sid y;
          }
          :: acc)
        added []
      |> List.rev)
    (inflated_sites t)

(* SFX005 — one call passing aliased storage at two by-reference
   positions while a bound formal is in RMOD. *)
let aliased_actuals ctx =
  let t = ctx.analysis in
  let out = ref [] in
  P.iter_sites t.A.prog (fun s ->
      let callee = P.proc t.A.prog s.P.callee in
      let refs = ref [] in
      Array.iteri
        (fun i arg ->
          match arg with
          | P.Arg_ref lv -> refs := (i, Ir.Expr.lvalue_base lv) :: !refs
          | P.Arg_value _ -> ())
        s.P.args;
      let refs = List.rev !refs in
      List.iteri
        (fun k (i, bi) ->
          List.iteri
            (fun k' (j, bj) ->
              if k' > k then
                let aliased =
                  bi = bj
                  || Core.Alias.may_alias t.A.alias ~proc:s.P.caller bi bj
                in
                let fi = callee.P.formals.(i) and fj = callee.P.formals.(j) in
                let modified =
                  Core.Rmod.modified t.A.rmod fi
                  || Core.Rmod.modified t.A.rmod fj
                in
                if aliased && modified then
                  let wf =
                    if Core.Rmod.modified t.A.rmod fi then fi else fj
                  in
                  out :=
                    {
                      Diagnostic.code = "SFX005";
                      rule = "aliased-actuals";
                      severity = Diagnostic.Error;
                      loc = Frontend.Locs.site ctx.locs s.P.sid;
                      scope = proc_name ctx s.P.caller;
                      message =
                        Printf.sprintf
                          "arguments %d and %d of call to '%s' may name the \
                           same location ('%s' and '%s'), and '%s' modifies \
                           formal '%s'"
                          (i + 1) (j + 1) callee.P.pname (qname_of ctx bi)
                          (qname_of ctx bj) callee.P.pname (name_of ctx wf);
                      hint =
                        Some
                          "copy one argument into a temporary before the call";
                      witness =
                        (if explain_on ctx then
                           (if bi = bj then
                              [
                                Printf.sprintf
                                  "arguments %d and %d both pass '%s'"
                                  (i + 1) (j + 1) (qname_of ctx bi);
                              ]
                            else
                              alias_witness ctx ~proc:s.P.caller bi bj)
                           @ rmod_witness ctx ~side:`Mod ~var:wf
                         else []);
                    }
                    :: !out)
            refs)
        refs);
  List.rev !out

(* SFX006 / SFX007 — §6 loop verdicts, for loops that call procedures. *)
let loop_parallel ctx =
  match ctx.sections with
  | None -> []
  | Some sec ->
      let t = ctx.analysis in
      let out = ref [] in
      P.iter_procs t.A.prog (fun pr ->
          let ord = ref 0 in
          Ir.Stmt.iter
            (fun st ->
              match st with
              | Ir.Stmt.For (ivar, _, _, body) ->
                  let k = !ord in
                  incr ord;
                  if Ir.Stmt.call_sites body <> [] then begin
                    let loc = Frontend.Locs.loop ctx.locs ~proc:pr.P.pid k in
                    let scope = pr.P.pname in
                    let mod_map, use_map =
                      Sections.Analyze_sections.loop_summary sec
                        ~proc:pr.P.pid ~ivar ~body
                    in
                    let v =
                      Sections.Deps.analyze_loop t.A.prog ~ivar ~mod_map
                        ~use_map
                    in
                    if v.Sections.Deps.parallel then
                      out :=
                        {
                          Diagnostic.code = "SFX007";
                          rule = "loop-parallel";
                          severity = Diagnostic.Note;
                          loc;
                          scope;
                          message =
                            Printf.sprintf
                              "loop over '%s' is parallelisable: iterations \
                               are provably independent"
                              (name_of ctx ivar);
                          hint = Some "candidate for data decomposition";
                          witness =
                            (if explain_on ctx then
                               [
                                 "every cross-iteration effect of the \
                                  body's calls is confined to element \
                                  sections indexed by the loop variable";
                               ]
                             else []);
                        }
                        :: !out
                    else
                      let conflicts =
                        List.map
                          (fun (vid, reason) ->
                            Printf.sprintf "'%s' (%s)" (qname_of ctx vid)
                              reason)
                          v.Sections.Deps.conflicts
                        |> String.concat "; "
                      in
                      out :=
                        {
                          Diagnostic.code = "SFX006";
                          rule = "loop-parallel";
                          severity = Diagnostic.Warning;
                          loc;
                          scope;
                          message =
                            Printf.sprintf
                              "loop over '%s' is not parallelisable: %s"
                              (name_of ctx ivar) conflicts;
                          hint =
                            Some
                              "privatise the conflicting variables or split \
                               the loop";
                          witness =
                            (match v.Sections.Deps.conflicts with
                            | (cv, _) :: _ when explain_on ctx -> (
                              let sites = Ir.Stmt.call_sites body in
                              let site_with pred = List.find_opt pred sites in
                              let lead =
                                Printf.sprintf "iterations conflict on '%s':"
                                  (qname_of ctx cv)
                              in
                              match
                                site_with (fun sid ->
                                    Bitvec.get (A.mod_of_site t sid) cv)
                              with
                              | Some sid ->
                                lead :: site_witness ctx ~side:`Mod sid cv
                              | None -> (
                                match
                                  site_with (fun sid ->
                                      Bitvec.get (A.use_of_site t sid) cv)
                                with
                                | Some sid ->
                                  lead :: site_witness ctx ~side:`Use sid cv
                                | None -> [ lead ]))
                            | _ -> []);
                        }
                        :: !out
                  end
              | _ -> ())
            pr.P.body);
      List.rev !out

(* SFX008 — scalar stores no execution path can read.  The liveness
   solver already treats calls as transparent (gen = the site's
   alias-closed USE, kill = its must-DMOD scalars), so a store is
   flagged only when neither the variable nor any §5 alias of it is
   live after the assignment: a value a callee might still read through
   an aliased name keeps the store. *)
let dead_store ctx =
  match ctx.dataflow with
  | None -> []
  | Some drv ->
    let t = ctx.analysis in
    let prog = t.A.prog in
    let tf = Dataflow.Driver.transfer drv in
    let out = ref [] in
    P.iter_procs prog (fun pr ->
        let pid = pr.P.pid in
        let sol = Dataflow.Driver.solution drv pid in
        let aliases = Hashtbl.create 8 in
        let aliases_of v =
          match Hashtbl.find_opt aliases v with
          | Some l -> l
          | None ->
            let l = Core.Alias.aliases_of t.A.alias ~proc:pid ~var:v in
            Hashtbl.add aliases v l;
            l
        in
        for b = 0 to Dataflow.Cfg.n_blocks sol.Dataflow.Driver.cfg - 1 do
          out :=
            Dataflow.Live.fold_instrs sol.Dataflow.Driver.live tf ~block:b
              ~init:!out ~f:(fun acc ~live_after ~ord ins ->
                match ins with
                | Dataflow.Cfg.Assign (Ir.Expr.Lvar v, _)
                  when (not (Ir.Types.is_array (P.var prog v).P.vty))
                       && (not (Bitvec.get live_after v))
                       && List.for_all
                            (fun w -> not (Bitvec.get live_after w))
                            (aliases_of v) ->
                  {
                    Diagnostic.code = "SFX008";
                    rule = "dead-store";
                    severity = Diagnostic.Warning;
                    loc = Frontend.Locs.stmt ctx.locs ~proc:pid ord;
                    scope = proc_name ctx pid;
                    message =
                      Printf.sprintf
                        "value stored to '%s' is never read: every path \
                         definitely overwrites it or ends its lifetime first"
                        (name_of ctx v);
                    hint = Some "delete the store, or use the value before it is overwritten";
                    witness =
                      (if explain_on ctx then
                         [
                           Printf.sprintf
                             "'%s' is not live after this store, and no \
                              §5 alias of it is"
                             (name_of ctx v);
                         ]
                       else []);
                  }
                  :: acc
                | _ -> acc)
        done);
    !out

(* SFX009 — a call both reads and writes a location the caller still
   needs afterwards: USE(s) ∩ MOD(s) restricted to what is live after
   the call.  Pure ordering information — the kind of read-modify-write
   a caller could batch across a loop instead of paying per call. *)
let rmw_hint ctx =
  match ctx.dataflow with
  | None -> []
  | Some drv ->
    let t = ctx.analysis in
    let prog = t.A.prog in
    let tf = Dataflow.Driver.transfer drv in
    let out = ref [] in
    P.iter_procs prog (fun pr ->
        let pid = pr.P.pid in
        let sol = Dataflow.Driver.solution drv pid in
        for b = 0 to Dataflow.Cfg.n_blocks sol.Dataflow.Driver.cfg - 1 do
          out :=
            Dataflow.Live.fold_instrs sol.Dataflow.Driver.live tf ~block:b
              ~init:!out ~f:(fun acc ~live_after ~ord:_ ins ->
                match ins with
                | Dataflow.Cfg.Call sid ->
                  let rmw =
                    Bitvec.inter
                      (Dataflow.Transfer.use_of_site tf sid)
                      (Dataflow.Transfer.mod_of_site tf sid)
                  in
                  ignore (Bitvec.inter_into ~src:live_after ~dst:rmw);
                  if Bitvec.is_empty rmw then acc
                  else
                    let callee =
                      (P.proc prog (P.site prog sid).P.callee).P.pname
                    in
                    {
                      Diagnostic.code = "SFX009";
                      rule = "rmw-hint";
                      severity = Diagnostic.Note;
                      loc = Frontend.Locs.site ctx.locs sid;
                      scope = proc_name ctx pid;
                      message =
                        Printf.sprintf
                          "call to '%s' reads and writes %s, and the caller \
                           reads the result: a read-modify-write the caller \
                           could batch"
                          callee
                          (String.concat ", "
                             (List.map
                                (fun v -> Printf.sprintf "'%s'" (qname_of ctx v))
                                (Bitvec.to_list rmw)));
                      hint =
                        Some
                          "hoist the read or batch the updates to cut \
                           call-boundary traffic";
                      witness =
                        (match Bitvec.to_list rmw with
                        | w :: _ when explain_on ctx ->
                          (Printf.sprintf "the call reads '%s':"
                             (qname_of ctx w)
                          :: site_witness ctx ~side:`Use sid w)
                          @ (Printf.sprintf "the call writes '%s':"
                               (qname_of ctx w)
                            :: site_witness ctx ~side:`Mod sid w)
                          @ [
                              Printf.sprintf
                                "'%s' is live after the call" (qname_of ctx w);
                            ]
                        | _ -> []);
                    }
                    :: acc
                | _ -> acc)
        done);
    !out

(* SFX010 — pointer variables whose value never feeds a dereference.
   Direct syntactic absence is not enough: [p := &x; r := p; g0 := *r]
   dereferences [p]'s value through [r], so the rule closes "feeds a
   dereference" backwards over pointer copies (assignments and call
   bindings) before flagging.  Intermediate hops of a multi-level chain
   ([**pp] reads through whatever [pp] points at) are resolved with the
   analysis' points-to projection. *)
let undereferenced_ptr ctx =
  let t = ctx.analysis in
  let prog = t.A.prog in
  let any_ptr = ref false in
  P.iter_vars prog (fun v ->
      if Ir.Types.is_ptr v.P.vty then any_ptr := true);
  if not !any_ptr then []
  else begin
    let is_ptr v = Ir.Types.is_ptr (P.var prog v).P.vty in
    let feeds = Array.make (P.n_vars prog) false in
    let copies = ref [] in
    let copy dst src =
      if is_ptr dst && is_ptr src then copies := (dst, src) :: !copies
    in
    let mark_deref p d =
      feeds.(p) <- true;
      for d' = 1 to d - 1 do
        List.iter (fun v -> if is_ptr v then feeds.(v) <- true) (t.A.deref p d')
      done
    in
    let rec expr = function
      | Ir.Expr.Deref (p, d) -> mark_deref p d
      | Ir.Expr.Binop (_, a, b) ->
        expr a;
        expr b
      | Ir.Expr.Unop (_, a) -> expr a
      | Ir.Expr.Index (_, idx) -> List.iter expr idx
      | Ir.Expr.Int _ | Ir.Expr.Bool _ | Ir.Expr.Var _ | Ir.Expr.Addr _
      | Ir.Expr.New _ ->
        ()
    in
    let lvalue = function
      | Ir.Expr.Lderef (p, d) -> mark_deref p d
      | Ir.Expr.Lindex (_, idx) -> List.iter expr idx
      | Ir.Expr.Lvar _ -> ()
    in
    P.iter_procs prog (fun pr ->
        Ir.Stmt.iter
          (fun st ->
            match st with
            | Ir.Stmt.Assign (lv, e) -> (
              lvalue lv;
              expr e;
              match (lv, e) with
              | Ir.Expr.Lvar d, Ir.Expr.Var s -> copy d s
              | _ -> ())
            | Ir.Stmt.If (c, _, _) | Ir.Stmt.While (c, _) -> expr c
            | Ir.Stmt.For (_, lo, hi, _) ->
              expr lo;
              expr hi
            | Ir.Stmt.Read lv -> lvalue lv
            | Ir.Stmt.Write e -> expr e
            | Ir.Stmt.Call _ -> ())
          pr.P.body);
    P.iter_sites prog (fun s ->
        let callee = P.proc prog s.P.callee in
        Array.iteri
          (fun i arg ->
            let f = callee.P.formals.(i) in
            match arg with
            | P.Arg_value e -> (
              expr e;
              match e with Ir.Expr.Var src -> copy f src | _ -> ())
            | P.Arg_ref (Ir.Expr.Lvar b) ->
              (* one cell, two names: a dereference of either feeds both *)
              copy f b;
              copy b f
            | P.Arg_ref lv -> lvalue lv)
          s.P.args);
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (dst, src) ->
          if feeds.(dst) && not feeds.(src) then begin
            feeds.(src) <- true;
            changed := true
          end)
        !copies
    done;
    let out = ref [] in
    P.iter_vars prog (fun v ->
        if Ir.Types.is_ptr v.P.vty && not feeds.(v.P.vid) then
          out :=
            {
              Diagnostic.code = "SFX010";
              rule = "undereferenced-ptr";
              severity = Diagnostic.Warning;
              loc = Frontend.Locs.var ctx.locs v.P.vid;
              scope =
                (match v.P.kind with
                | P.Global -> prog.P.name
                | P.Local pid | P.Formal { proc = pid; _ } ->
                  proc_name ctx pid);
              message =
                Printf.sprintf
                  "pointer '%s' is never dereferenced: no use of its value \
                   ever reaches a '*'"
                  v.P.vname;
              hint =
                Some "delete the pointer, or dereference it where it is used";
              witness =
                (if explain_on ctx then
                   [
                     Printf.sprintf
                       "'%s' appears in no dereference, and no pointer copied \
                        from it does either"
                       (qname_of ctx v.P.vid);
                   ]
                 else []);
            }
            :: !out);
    List.rev !out
  end

(* SFX011 — a store through a pointer that may strike a by-reference
   formal of the enclosing procedure: the caller's actual changes with
   no textual mention of the formal near the store.  Fires when the
   points-to targets of the written dereference contain the formal
   itself (via name equivalence) or a §5 alias of it. *)
let ptr_formal_store ctx =
  let t = ctx.analysis in
  let prog = t.A.prog in
  let out = ref [] in
  P.iter_procs prog (fun pr ->
      let pid = pr.P.pid in
      let ref_formals =
        Array.to_list pr.P.formals
        |> List.filter (fun f ->
               match (P.var prog f).P.kind with
               | P.Formal { mode = P.By_ref; _ } -> true
               | _ -> false)
      in
      if ref_formals <> [] then begin
        let ord = ref (-1) in
        Ir.Stmt.iter
          (fun st ->
            incr ord;
            match st with
            | Ir.Stmt.Assign (Ir.Expr.Lderef (p, d), _)
            | Ir.Stmt.Read (Ir.Expr.Lderef (p, d)) ->
              let targets = t.A.deref p d in
              let hit =
                List.find_map
                  (fun f ->
                    if List.mem f targets then Some (f, `Direct)
                    else
                      match
                        List.find_opt
                          (fun tv ->
                            Core.Alias.may_alias t.A.alias ~proc:pid tv f)
                          targets
                      with
                      | Some tv -> Some (f, `Alias tv)
                      | None -> None)
                  ref_formals
              in
              (match hit with
              | None -> ()
              | Some (f, how) ->
                out :=
                  {
                    Diagnostic.code = "SFX011";
                    rule = "ptr-formal-store";
                    severity = Diagnostic.Warning;
                    loc = Frontend.Locs.stmt ctx.locs ~proc:pid !ord;
                    scope = proc_name ctx pid;
                    message =
                      Printf.sprintf
                        "store through '%s' may modify by-reference formal \
                         '%s': the caller's actual changes without naming it"
                        (name_of ctx p) (name_of ctx f);
                    hint =
                      Some
                        "write the formal directly, or document that the \
                         pointer aims at it";
                    witness =
                      (if explain_on ctx then
                         (Printf.sprintf
                            "points-to: the %d-fold dereference of '%s' may \
                             name {%s}"
                            d (qname_of ctx p)
                            (String.concat ", "
                               (List.map (qname_of ctx) targets))
                         ::
                         (match how with
                         | `Direct -> []
                         | `Alias tv ->
                           Option.value ~default:[]
                             (Core.Explain.explain_alias t ~locs:ctx.locs
                                ~proc:pid tv f)))
                       else []);
                  }
                  :: !out)
            | _ -> ())
          pr.P.body
      end);
  List.rev !out

(* SFX012 — reads no definition can reach, across call sites.  The
   reaching-definition universe already treats calls as writers (gen =
   the site's MOD, kill = the callee's projected MUSTMOD), so "no
   reaching definition" means: on every path from procedure entry,
   nothing — not even a callee — has written the variable yet.  Two
   shapes fire: a direct read of an unwritten scalar local, and an
   unwritten scalar local passed by reference to a callee that consumes
   the bound formal's incoming value (the formal is live at the
   callee's entry: some path reads it before any definite write). *)
let use_before_init ctx =
  match ctx.dataflow with
  | None -> []
  | Some drv ->
    let t = ctx.analysis in
    let prog = t.A.prog in
    let tf = Dataflow.Driver.transfer drv in
    let out = ref [] in
    P.iter_procs prog (fun pr ->
        let pid = pr.P.pid in
        let sol = Dataflow.Driver.solution drv pid in
        let reach = sol.Dataflow.Driver.reach in
        let candidate v =
          (match (P.var prog v).P.kind with
          | P.Local owner -> owner = pid
          | P.Global | P.Formal _ -> false)
          && not (Ir.Types.is_array (P.var prog v).P.vty)
        in
        let unwritten reach_before v =
          List.for_all
            (fun d -> not (Bitvec.get reach_before d))
            (Dataflow.Reach.defs_of_var reach v)
        in
        let direct_diag ~ord v =
          {
            Diagnostic.code = "SFX012";
            rule = "use-before-init";
            severity = Diagnostic.Warning;
            loc = Frontend.Locs.stmt ctx.locs ~proc:pid ord;
            scope = proc_name ctx pid;
            message =
              Printf.sprintf
                "'%s' may be read before initialization: no definition \
                 reaches this statement"
                (name_of ctx v);
            hint = Some "assign the variable on every path before it is read";
            witness =
              (if explain_on ctx then
                 [
                   Printf.sprintf
                     "no store to '%s' — and no call whose MOD set contains \
                      it — lies on any path from %s's entry to this statement"
                     (name_of ctx v) (proc_name ctx pid);
                 ]
               else []);
          }
        in
        let byref_diag ~sid v f =
          let callee_pid = (P.site prog sid).P.callee in
          {
            Diagnostic.code = "SFX012";
            rule = "use-before-init";
            severity = Diagnostic.Warning;
            loc = Frontend.Locs.site ctx.locs sid;
            scope = proc_name ctx pid;
            message =
              Printf.sprintf
                "'%s' is passed by reference before initialization, and \
                 '%s' may read formal '%s' before definitely writing it"
                (name_of ctx v)
                (proc_name ctx callee_pid)
                (name_of ctx f);
            hint =
              Some "assign the variable before the call, or make the callee \
                    write the formal first";
            witness =
              (if explain_on ctx then
                 Printf.sprintf
                   "no definition of '%s' reaches site %d, and '%s' is live \
                    at %s's entry"
                   (name_of ctx v) sid (qname_of ctx f)
                   (proc_name ctx callee_pid)
                 :: rmod_witness ctx ~side:`Use ~var:f
               else []);
          }
        in
        for b = 0 to Dataflow.Cfg.n_blocks sol.Dataflow.Driver.cfg - 1 do
          out :=
            Dataflow.Reach.fold_instrs reach tf ~block:b ~init:!out
              ~f:(fun acc ~reach_before ~ord ins ->
                match ins with
                | Dataflow.Cfg.Call sid ->
                  let s = P.site prog sid in
                  let callee = P.proc prog s.P.callee in
                  let acc = ref acc in
                  let flag_reads vs =
                    List.iter
                      (fun v ->
                        if candidate v && unwritten reach_before v then
                          acc := direct_diag ~ord v :: !acc)
                      vs
                  in
                  Array.iteri
                    (fun i arg ->
                      match arg with
                      | P.Arg_value e ->
                        flag_reads (Frontend.Local.expr_reads ~deref:t.A.deref e)
                      | P.Arg_ref (Ir.Expr.Lvar x) ->
                        if candidate x && unwritten reach_before x then begin
                          let f = callee.P.formals.(i) in
                          let csol = Dataflow.Driver.solution drv s.P.callee in
                          let entry_live =
                            Dataflow.Live.live_in csol.Dataflow.Driver.live
                              csol.Dataflow.Driver.cfg.Dataflow.Cfg.entry
                          in
                          if Bitvec.get entry_live f then
                            acc := byref_diag ~sid x f :: !acc
                        end
                      | P.Arg_ref lv ->
                        flag_reads
                          (Frontend.Local.lvalue_addr_reads ~deref:t.A.deref lv))
                    s.P.args;
                  !acc
                | _ ->
                  let uses = Bitvec.create (P.n_vars prog) in
                  Dataflow.Transfer.add_use tf uses ins;
                  Bitvec.fold
                    (fun v acc ->
                      if candidate v && unwritten reach_before v then
                        direct_diag ~ord v :: acc
                      else acc)
                    uses acc)
        done);
    List.rev !out

(* SFX013 — a store whose value a callee definitely overwrites before
   any use: between the store and a later call in the same block there
   is no read of the variable, the call's projected MUSTMOD kills it,
   and the call itself does not read it.  The witness walks the
   callee's MUSTMOD derivation (docs/mustmod.md). *)
let redundant_store ctx =
  match ctx.dataflow with
  | None -> []
  | Some drv ->
    let t = ctx.analysis in
    let prog = t.A.prog in
    let tf = Dataflow.Driver.transfer drv in
    let nv = P.n_vars prog in
    let out = ref [] in
    (* The callee-side variable the kill of [v] projects from: [v]
       itself when it passes through the binding (a visible non-local),
       else the by-reference formal bound to [v] at the site. *)
    let pre_image sid v =
      let s = P.site prog sid in
      let mm = Dataflow.Transfer.must_mod tf s.P.callee in
      if Bitvec.get mm v then Some v
      else begin
        let callee = P.proc prog s.P.callee in
        let found = ref None in
        Array.iteri
          (fun k arg ->
            match arg with
            | P.Arg_ref (Ir.Expr.Lvar b)
              when b = v && !found = None
                   && Bitvec.get mm callee.P.formals.(k) ->
              found := Some callee.P.formals.(k)
            | _ -> ())
          s.P.args;
        !found
      end
    in
    P.iter_procs prog (fun pr ->
        let pid = pr.P.pid in
        let sol = Dataflow.Driver.solution drv pid in
        let emit ~ord v sid =
          let callee_pid = (P.site prog sid).P.callee in
          out :=
            {
              Diagnostic.code = "SFX013";
              rule = "redundant-store";
              severity = Diagnostic.Warning;
              loc = Frontend.Locs.stmt ctx.locs ~proc:pid ord;
              scope = proc_name ctx pid;
              message =
                Printf.sprintf
                  "value stored to '%s' is redundant: the call to '%s' at \
                   site %d definitely overwrites it before any use"
                  (name_of ctx v)
                  (proc_name ctx callee_pid)
                  sid;
              hint = Some "delete the store, or move it after the call";
              witness =
                (if explain_on ctx then
                   match pre_image sid v with
                   | Some pre ->
                     Printf.sprintf
                       "the call does not read '%s' and definitely \
                        overwrites it:"
                       (name_of ctx v)
                     :: must_witness ctx ~proc:callee_pid ~var:pre
                   | None -> []
                 else []);
            }
            :: !out
        in
        Array.iter
          (fun blk ->
            let instrs = blk.Dataflow.Cfg.instrs in
            Array.iteri
              (fun i (ord, ins) ->
                match ins with
                | Dataflow.Cfg.Assign (Ir.Expr.Lvar v, _)
                  when not (Ir.Types.is_array (P.var prog v).P.vty) ->
                  (* Forward scan: a read of [v] clears the store, a
                     plain overwrite is SFX008's business, a call
                     must-killing [v] before either fires. *)
                  let rec scan j =
                    if j < Array.length instrs then begin
                      let _, ins_j = instrs.(j) in
                      let uses = Bitvec.create nv in
                      Dataflow.Transfer.add_use tf uses ins_j;
                      if Bitvec.get uses v then ()
                      else
                        match ins_j with
                        | Dataflow.Cfg.Call sid
                          when Bitvec.get
                                 (Dataflow.Transfer.kill_of_site tf sid)
                                 v ->
                          emit ~ord v sid
                        | Dataflow.Cfg.Assign (Ir.Expr.Lvar w, _)
                        | Dataflow.Cfg.Read (Ir.Expr.Lvar w)
                        | Dataflow.Cfg.For_init (w, _, _)
                          when w = v ->
                          ()
                        | _ -> scan (j + 1)
                    end
                  in
                  scan (i + 1)
                | _ -> ())
              instrs)
          sol.Dataflow.Driver.cfg.Dataflow.Cfg.blocks);
    List.rev !out

let all =
  [
    {
      name = "unused-formal";
      codes = [ "SFX001" ];
      doc = "by-reference formals no invocation modifies or uses";
      metric = "lint.findings.unused_formal";
      needs_sections = false;
      needs_dataflow = false;
      run = unused_formal;
    };
    {
      name = "write-only-global";
      codes = [ "SFX002" ];
      doc = "globals that are written somewhere but read nowhere";
      metric = "lint.findings.write_only_global";
      needs_sections = false;
      needs_dataflow = false;
      run = write_only_global;
    };
    {
      name = "pure-proc";
      codes = [ "SFX003" ];
      doc = "procedures with empty GMOD and no transitive I/O";
      metric = "lint.findings.pure_proc";
      needs_sections = false;
      needs_dataflow = false;
      run = pure_proc;
    };
    {
      name = "alias-inflation";
      codes = [ "SFX004" ];
      doc = "call sites where the alias closure strictly enlarges DMOD";
      metric = "lint.findings.alias_inflation";
      needs_sections = false;
      needs_dataflow = false;
      run = alias_inflation;
    };
    {
      name = "aliased-actuals";
      codes = [ "SFX005" ];
      doc = "calls passing aliased storage to a modified reference formal";
      metric = "lint.findings.aliased_actuals";
      needs_sections = false;
      needs_dataflow = false;
      run = aliased_actuals;
    };
    {
      name = "loop-parallel";
      codes = [ "SFX006"; "SFX007" ];
      doc = "section-based parallelisability verdicts for call-bearing loops";
      metric = "lint.findings.loop_parallel";
      needs_sections = true;
      needs_dataflow = false;
      run = loop_parallel;
    };
    {
      name = "dead-store";
      codes = [ "SFX008" ];
      doc = "scalar stores no execution path can read, across call sites";
      metric = "lint.findings.dead_store";
      needs_sections = false;
      needs_dataflow = true;
      run = dead_store;
    };
    {
      name = "rmw-hint";
      codes = [ "SFX009" ];
      doc = "calls that read and write a location the caller still needs";
      metric = "lint.findings.rmw_hint";
      needs_sections = false;
      needs_dataflow = true;
      run = rmw_hint;
    };
    {
      name = "undereferenced-ptr";
      codes = [ "SFX010" ];
      doc = "pointer variables whose value never feeds a dereference";
      metric = "lint.findings.undereferenced_ptr";
      needs_sections = false;
      needs_dataflow = false;
      run = undereferenced_ptr;
    };
    {
      name = "ptr-formal-store";
      codes = [ "SFX011" ];
      doc = "stores through pointers that may strike a by-reference formal";
      metric = "lint.findings.ptr_formal_store";
      needs_sections = false;
      needs_dataflow = false;
      run = ptr_formal_store;
    };
    {
      name = "use-before-init";
      codes = [ "SFX012" ];
      doc = "reads no definition — local or callee — can reach";
      metric = "lint.findings.use_before_init";
      needs_sections = false;
      needs_dataflow = true;
      run = use_before_init;
    };
    {
      name = "redundant-store";
      codes = [ "SFX013" ];
      doc = "stores a callee's MUSTMOD definitely overwrites before any use";
      metric = "lint.findings.redundant_store";
      needs_sections = false;
      needs_dataflow = true;
      run = redundant_store;
    };
  ]

let find name = List.find_opt (fun r -> r.name = name) all
