(** The lint driver: runs a rule selection over a solved analysis and
    produces the deterministic finding list, the JSON report, finding
    deltas (for the incremental path), and the graph decoration.

    Determinism contract: the result of {!run} is a function of the
    analysis, the location table, and the {e set} of selected rules —
    not of rule order, scheduling, or [?pool].  Rules write private
    result slots; slots are concatenated in catalogue order and then
    sorted with {!Diagnostic.compare}, so [--jobs N] output is
    bit-identical to the sequential run (tested by property in
    [test_lint.ml] and pinned in the CLI cram suite). *)

val run :
  ?pool:Par.Pool.t ->
  ?locs:Frontend.Locs.t ->
  ?dataflow:Dataflow.Driver.t ->
  ?rules:Rule.t list ->
  Core.Analyze.t ->
  Diagnostic.t list
(** Evaluate the rules (default: all of {!Rule.all}) and return the
    sorted, deduplicated findings.

    [?locs] defaults to {!Frontend.Locs.dummy} — every finding at the
    dummy position — which is what generated and edited programs use;
    the CLI passes the table from
    {!Frontend.Sema.compile_with_locs}.

    [?pool] runs independent rules as one task batch (the §6 sectioned
    analysis, when some selected rule needs it and the program is flat,
    is computed once on the calling domain first).

    [?dataflow] lets the incremental engine donate its per-procedure
    solution cache; it is used only when it targets exactly this
    [analysis] value (otherwise a fresh driver is built), and when some
    selected rule needs statement-level solutions they are presolved —
    ["lint.dataflow"] span, {!Dataflow.Driver.solve_all} under [?pool]
    — before rules fan out, so pooled rules never mutate shared
    state.

    Telemetry: everything runs under a span named ["lint"]; on the
    sequential path each rule additionally gets a ["lint.<rule>"]
    sub-span (pool tasks record no spans — worker-domain traces would
    vary with scheduling).  Each rule's finding count is added to its
    [lint.findings.*] counter, on the calling domain, in catalogue
    order.  Counters are registered on entry, not at module
    initialisation, so merely linking the library does not widen the
    [sidefx profile] metric set. *)

val report_json :
  program:string -> rules:Rule.t list -> Diagnostic.t list -> Obs.Json.t
(** Stable shape: [{"program", "rules": [names...], "findings":
    [{!Diagnostic.to_json}...], "counts": {"note", "warning",
    "error"}}]. *)

val delta :
  before:Diagnostic.t list ->
  after:Diagnostic.t list ->
  Diagnostic.t list * Diagnostic.t list
(** [(added, removed)], matched on {!Diagnostic.key} — the
    location-free identity, because edits renumber positions.  Each
    side is deduplicated by key and in {!Diagnostic.compare} order. *)

val highlight : Core.Analyze.t -> Callgraph.Dot.highlight
(** The [sidefx dot --highlight lint] decoration: {!Rule.pure_procs}
    filled green, {!Rule.inflated_sites} edges red. *)
