let run ?pool ?locs ?dataflow ?(rules = Rule.all) analysis =
  let prog = analysis.Core.Analyze.prog in
  let locs =
    match locs with Some l -> l | None -> Frontend.Locs.dummy prog
  in
  let handles =
    List.map (fun r -> Obs.Metric.counter r.Rule.metric) rules
  in
  Obs.Span.with_ "lint" (fun () ->
      let sections =
        if
          List.exists (fun r -> r.Rule.needs_sections) rules
          && Sections.Analyze_sections.applicable prog
        then
          Some
            (Obs.Span.with_ "lint.sections" (fun () ->
                 Sections.Analyze_sections.run prog))
        else None
      in
      let dataflow =
        if List.exists (fun r -> r.Rule.needs_dataflow) rules then begin
          let drv =
            match dataflow with
            (* A caller-cached driver is only usable against the very
               analysis we are linting. *)
            | Some d when Dataflow.Driver.analysis d == analysis -> d
            | Some _ | None -> Dataflow.Driver.create ~locs analysis
          in
          (* Presolve every procedure before rules fan out: rules on a
             pool must only read the solution cache. *)
          Obs.Span.with_ "lint.dataflow" (fun () ->
              Dataflow.Driver.solve_all ?pool drv);
          Some drv
        end
        else None
      in
      let ctx = { Rule.analysis; locs; sections; dataflow } in
      let rules_a = Array.of_list rules in
      let results = Array.make (Array.length rules_a) [] in
      (match pool with
      | Some pool when Par.Pool.jobs pool > 1 ->
          Par.Pool.run pool
            (Array.mapi
               (fun i r (_slot : int) -> results.(i) <- r.Rule.run ctx)
               rules_a)
      | _ ->
          Array.iteri
            (fun i r ->
              Obs.Span.with_ ("lint." ^ r.Rule.name) (fun () ->
                  results.(i) <- r.Rule.run ctx))
            rules_a);
      List.iteri
        (fun i h -> Obs.Metric.add h (List.length results.(i)))
        handles;
      Array.to_list results |> List.concat
      |> List.sort_uniq Diagnostic.compare)

let report_json ~program ~rules findings =
  let count sev =
    List.length
      (List.filter (fun d -> d.Diagnostic.severity = sev) findings)
  in
  Obs.Json.Obj
    [
      ("program", Obs.Json.String program);
      ( "rules",
        Obs.Json.List
          (List.map (fun r -> Obs.Json.String r.Rule.name) rules) );
      ("findings", Obs.Json.List (List.map Diagnostic.to_json findings));
      ( "counts",
        Obs.Json.Obj
          [
            ("note", Obs.Json.Int (count Diagnostic.Note));
            ("warning", Obs.Json.Int (count Diagnostic.Warning));
            ("error", Obs.Json.Int (count Diagnostic.Error));
          ] );
    ]

module Keys = Set.Make (struct
  type t = string * string * string

  let compare = Stdlib.compare
end)

let dedup_by_key ds =
  let _, out =
    List.fold_left
      (fun (seen, out) d ->
        let k = Diagnostic.key d in
        if Keys.mem k seen then (seen, out)
        else (Keys.add k seen, d :: out))
      (Keys.empty, []) ds
  in
  List.rev out

let delta ~before ~after =
  let keys ds = Keys.of_list (List.map Diagnostic.key ds) in
  let kb = keys before and ka = keys after in
  let added =
    dedup_by_key
      (List.filter (fun d -> not (Keys.mem (Diagnostic.key d) kb)) after)
  in
  let removed =
    dedup_by_key
      (List.filter (fun d -> not (Keys.mem (Diagnostic.key d) ka)) before)
  in
  (added, removed)

let highlight analysis =
  {
    Callgraph.Dot.pure_procs = Rule.pure_procs analysis;
    inflated_sites = Rule.inflated_sites analysis;
  }
