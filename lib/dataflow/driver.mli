(** Per-procedure solution cache and scheduling.

    Owns one {!Transfer.t} per analysed program and a lazily filled
    per-procedure cache of (CFG, liveness, reaching definitions).
    {!solve_all} fills every empty slot — under a {!Par.Pool} one task
    per procedure, each writing its own slot, so results are
    jobs-invariant by construction; clients that run in parallel
    themselves (the lint engine) must presolve through it before
    fanning out.

    {!refresh} is the incremental hook: after a body-preserving edit it
    re-derives the transfer functions, drops the slots of the edited
    procedures plus every procedure with a call site whose callee's
    summary inputs (GMOD, GUSE, MUSTDEF) or whose own alias pairs
    changed, and keeps the rest — their inputs are bit-identical, so
    re-solving them could only reproduce the cached answer.  Any shape
    change falls back to {!reset}. *)

type solution = {
  cfg : Cfg.t;
  live : Live.t;
  reach : Reach.t;
}

type t

val create : ?locs:Frontend.Locs.t -> Core.Analyze.t -> t
(** No solving happens yet; [locs] defaults to dummy positions. *)

val analysis : t -> Core.Analyze.t
val transfer : t -> Transfer.t

val solution : t -> int -> solution
(** Solve (and cache) one procedure on demand. *)

val solve_all : ?pool:Par.Pool.t -> t -> unit
(** Fill every unsolved slot, under the "dataflow.solve" span; counters
    [dataflow.procs_solved], [dataflow.blocks], [dataflow.live_passes],
    [dataflow.reach_passes]. *)

val refresh : ?locs:Frontend.Locs.t -> t -> Core.Analyze.t -> edited:int list -> int list
(** Re-target the driver at a re-analysed program after body edits
    (same variable/procedure/site tables — anything else resets
    everything).  Returns the invalidated pids, for telemetry and
    tests; counter [dataflow.invalidated]. *)

val reset : ?locs:Frontend.Locs.t -> t -> Core.Analyze.t -> unit
(** Drop everything and re-target. *)
