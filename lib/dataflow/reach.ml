type def = {
  did : int;
  block : int;
  ord : int;
  var : int;
  must : bool;
}

type t = {
  cfg_ : Cfg.t;
  defs : def array;
  by_var : int list array;  (** Per variable, ascending dids. *)
  block_start : int array;  (** First did contributed by each block. *)
  res : Solver.result;
}

let enumerate tf cfg nv =
  let rev = ref [] in
  let n = ref 0 in
  Cfg.iter_instrs cfg (fun ~block ord ins ->
      let must = Bitvec.create nv in
      Transfer.iter_must_def tf ins (fun v -> Bitvec.set must v);
      Transfer.iter_may_def tf ins (fun v ->
          rev := { did = !n; block; ord; var = v; must = Bitvec.get must v } :: !rev;
          incr n));
  let defs = Array.of_list (List.rev !rev) in
  let by_var = Array.make nv [] in
  for d = Array.length defs - 1 downto 0 do
    by_var.(defs.(d).var) <- d :: by_var.(defs.(d).var)
  done;
  (defs, by_var)

let solve tf cfg =
  let a = Transfer.analysis tf in
  let nv = Ir.Prog.n_vars a.Core.Analyze.prog in
  let defs, by_var = enumerate tf cfg nv in
  let nd = Array.length defs in
  let gen = Array.map (fun _ -> Bitvec.create nd) cfg.Cfg.blocks in
  let kill = Array.map (fun _ -> Bitvec.create nd) cfg.Cfg.blocks in
  (* Forward composition per block: a definite write first kills every
     definition of the variable, then the instruction's own definitions
     (definite or not) are downward-exposed. *)
  let cursor = ref 0 in
  Array.iteri
    (fun bid b ->
      let g = gen.(bid) and k = kill.(bid) in
      Array.iter
        (fun (_, ins) ->
          Transfer.iter_must_def tf ins (fun v ->
              List.iter
                (fun d ->
                  Bitvec.unset g d;
                  Bitvec.set k d)
                by_var.(v));
          Transfer.iter_may_def tf ins (fun _ ->
              Bitvec.set g !cursor;
              incr cursor))
        b.Cfg.instrs)
    cfg.Cfg.blocks;
  assert (!cursor = nd);
  (* Dids are assigned in block order, so each block's defs are the
     contiguous run starting at the count of defs in earlier blocks. *)
  let block_start = Array.make (Array.length cfg.Cfg.blocks) 0 in
  Array.iter (fun d -> block_start.(d.block) <- block_start.(d.block) + 1) defs;
  let acc = ref 0 in
  Array.iteri
    (fun b n ->
      block_start.(b) <- !acc;
      acc := !acc + n)
    (Array.copy block_start);
  let problem =
    {
      Solver.direction = Solver.Forward;
      n_bits = nd;
      gen = (fun b -> gen.(b));
      kill = (fun b -> kill.(b));
      boundary = Bitvec.create nd;  (* Nothing reaches procedure entry. *)
    }
  in
  { cfg_ = cfg; defs; by_var; block_start; res = Solver.solve cfg problem }

let cfg t = t.cfg_
let passes t = t.res.Solver.passes
let n_defs t = Array.length t.defs
let def t d = t.defs.(d)
let defs_of_var t v = t.by_var.(v)
let reach_in t b = t.res.Solver.in_.(b)
let reach_out t b = t.res.Solver.out.(b)

let fold_instrs t tf ~block ~init ~f =
  let reach = Bitvec.copy (reach_in t block) in
  let instrs = t.cfg_.Cfg.blocks.(block).Cfg.instrs in
  let cursor = ref t.block_start.(block) in
  let acc = ref init in
  Array.iter
    (fun (ord, ins) ->
      acc := f !acc ~reach_before:reach ~ord ins;
      Transfer.iter_must_def tf ins (fun v ->
          List.iter (fun d -> Bitvec.unset reach d) t.by_var.(v));
      Transfer.iter_may_def tf ins (fun _ ->
          Bitvec.set reach !cursor;
          incr cursor))
    instrs;
  !acc
