module P = Ir.Prog
module E = Ir.Expr
module A = Core.Analyze

type t = {
  analysis : A.t;
  deref : int -> int -> int list;
  must_mod_ : Bitvec.t array;
  aliased_ : Bitvec.t array;
  use_site : Bitvec.t array;
  mod_site : Bitvec.t array;
  kill_site : Bitvec.t array;
  exit_live_ : Bitvec.t array;
}

(* MUSTDEF(callee) carried through a call site into the caller's frame:
   by-ref formals land on scalar whole-variable actuals, non-locals of
   the callee pass through, everything else (callee locals, by-value
   formals, element actuals) is dropped. *)
let project_must prog must_of sid =
  let s = P.site prog sid in
  let out = Bitvec.create (P.n_vars prog) in
  Bitvec.iter
    (fun vid ->
      match (P.var prog vid).P.kind with
      | P.Formal { proc; index; mode = P.By_ref } when proc = s.P.callee -> (
        match s.P.args.(index) with
        | P.Arg_ref (E.Lvar b) ->
          if not (Ir.Types.is_array (P.var prog b).P.vty) then Bitvec.set out b
        (* A dereference actual may-defines its targets but never
           must-defines any one of them. *)
        | P.Arg_ref (E.Lindex _ | E.Lderef _) | P.Arg_value _ -> ())
      | P.Formal { proc; _ } when proc = s.P.callee -> ()
      | P.Local owner when owner = s.P.callee -> ()
      | _ -> Bitvec.set out vid)
    (must_of s.P.callee);
  out

(* The retired local under-approximation, kept for comparison tests
   and the precision-delta experiment: least fixpoint of the
   definitely-written scalars counting only top-level statements — a
   branch may be skipped, a loop body may run zero times, but a [for]
   initialisation and anything before/after control flow always runs.
   Strictly weaker than [Core.Mustmod] (which intersects over branch
   paths and demotes on aliasing instead of claiming everything). *)
let local_must_mod prog =
  let nv = P.n_vars prog and np = P.n_procs prog in
  let must = Array.init np (fun _ -> Bitvec.create nv) in
  let changed = ref true in
  while !changed do
    changed := false;
    P.iter_procs prog (fun pr ->
        let v = Bitvec.create nv in
        List.iter
          (fun s ->
            match s with
            | Ir.Stmt.Assign (E.Lvar x, _) | Ir.Stmt.Read (E.Lvar x) -> Bitvec.set v x
            | Ir.Stmt.For (x, _, _, _) -> Bitvec.set v x
            | Ir.Stmt.Call sid ->
              ignore
                (Bitvec.union_into
                   ~src:(project_must prog (fun q -> must.(q)) sid)
                   ~dst:v)
            | Ir.Stmt.Assign _ | Ir.Stmt.Read _ | Ir.Stmt.If _ | Ir.Stmt.While _
            | Ir.Stmt.Write _ ->
              ())
          pr.P.body;
        if not (Bitvec.equal v must.(pr.P.pid)) then begin
          must.(pr.P.pid) <- v;
          changed := true
        end)
  done;
  must

let make (a : A.t) =
  let prog = a.A.prog in
  let info = a.A.info in
  let np = P.n_procs prog and ns = P.n_sites prog in
  (* Kill sets come from the interprocedural must-modify summaries:
     intersection over branch paths, propagated through the call
     condensation, alias-demoted and capped by GMOD (Core.Mustmod) —
     strictly stronger than the old top-level-statement
     under-approximation ([local_must_mod]). *)
  let must_mod_ = Array.init np (fun pid -> Core.Mustmod.mustmod_of a.A.mustmod pid) in
  let aliased_ =
    Array.init np (fun pid ->
        let v = Ir.Info.fresh info in
        List.iter
          (fun (x, y) ->
            Bitvec.set v x;
            Bitvec.set v y)
          (Core.Alias.pairs a.A.alias pid);
        v)
  in
  let use_site = Array.init ns (fun sid -> A.use_of_site a sid) in
  let mod_site = Array.init ns (fun sid -> A.mod_of_site a sid) in
  let kill_site =
    Array.init ns (fun sid ->
        let k = project_must prog (fun q -> must_mod_.(q)) sid in
        ignore (Bitvec.diff_into ~src:aliased_.((P.site prog sid).P.caller) ~dst:k);
        k)
  in
  let exit_live_ =
    Array.init np (fun pid ->
        let v = Bitvec.copy (Ir.Info.non_local info pid) in
        Array.iteri
          (fun i f ->
            match P.formal_mode prog (P.proc prog pid) i with
            | P.By_ref -> Bitvec.set v f
            | P.By_value -> ())
          (P.proc prog pid).P.formals;
        v)
  in
  {
    analysis = a;
    deref = a.A.deref;
    must_mod_;
    aliased_;
    use_site;
    mod_site;
    kill_site;
    exit_live_;
  }

let analysis t = t.analysis
let must_mod t pid = t.must_mod_.(pid)
let aliased t pid = t.aliased_.(pid)
let use_of_site t sid = t.use_site.(sid)
let mod_of_site t sid = t.mod_site.(sid)
let kill_of_site t sid = t.kill_site.(sid)
let exit_live t pid = t.exit_live_.(pid)

let add_use t acc (i : Cfg.instr) =
  let set v = Bitvec.set acc v in
  let deref = t.deref in
  match i with
  | Cfg.Assign (lv, e) ->
    List.iter set (Frontend.Local.expr_reads ~deref e);
    List.iter set (Frontend.Local.lvalue_addr_reads ~deref lv)
  | Cfg.Read lv -> List.iter set (Frontend.Local.lvalue_addr_reads ~deref lv)
  | Cfg.Write e | Cfg.Cond e -> List.iter set (Frontend.Local.expr_reads ~deref e)
  | Cfg.For_init (_, lo, hi) ->
    List.iter set (E.vars lo);
    List.iter set (E.vars hi)
  | Cfg.For_test v | Cfg.For_step v -> set v
  | Cfg.Call sid -> ignore (Bitvec.union_into ~src:t.use_site.(sid) ~dst:acc)

let iter_must_def t (i : Cfg.instr) f =
  match i with
  | Cfg.Assign (E.Lvar v, _) | Cfg.Read (E.Lvar v) -> f v
  | Cfg.For_init (v, _, _) | Cfg.For_step v -> f v
  | Cfg.Call sid -> Bitvec.iter f t.kill_site.(sid)
  | Cfg.Assign ((E.Lindex _ | E.Lderef _), _)
  | Cfg.Read (E.Lindex _ | E.Lderef _)
  | Cfg.Write _ | Cfg.Cond _ | Cfg.For_test _ ->
    ()

let iter_may_def t (i : Cfg.instr) f =
  match i with
  | Cfg.Assign (lv, _) | Cfg.Read lv ->
    List.iter f (Frontend.Local.lvalue_writes ~deref:t.deref lv)
  | Cfg.For_init (v, _, _) | Cfg.For_step v -> f v
  | Cfg.Call sid -> Bitvec.iter f t.mod_site.(sid)
  | Cfg.Write _ | Cfg.Cond _ | Cfg.For_test _ -> ()
