(** Statement-level transfer functions derived from the solved
    summaries.

    Ordinary instructions contribute their syntactic uses and
    definitions.  Call instructions are where Cooper–Kennedy pays off:
    a call's {e use} set is [LUSE(s) ∪ b_e(GUSE(q))] closed under the
    caller's §5 alias pairs (exactly {!Core.Analyze.use_of_site}), its
    {e may-def} set is [MOD(s)] (eq. 2 plus aliases), and its {e kill}
    set is the must-modified scalars of the callee projected through
    the binding — so classical liveness and reaching definitions flow
    {e through} call sites instead of dying at them.

    The must side comes from the interprocedural [MUSTMOD] summaries
    ({!Core.Mustmod}): intersection over branch paths, propagated
    bottom-up over the call condensation, §5/ptsto alias-demoted, and
    capped by [GMOD].  Under-approximating must-kill is always sound; a
    procedure that never returns makes any kill claim vacuous.  Kill
    sets additionally drop every variable in one of the caller's alias
    pairs: when two names may share a location, "definitely
    overwritten" claims about either are off the table
    (docs/dataflow.md and docs/mustmod.md work the examples). *)

type t

val make : Core.Analyze.t -> t

val analysis : t -> Core.Analyze.t

val must_mod : t -> int -> Bitvec.t
(** [MUSTMOD(q)]: variables procedure [q] definitely writes on every
    terminating run, in the callee's own frame — the interprocedural
    summaries of {!Core.Mustmod}.  Do not mutate. *)

val local_must_mod : Ir.Prog.t -> Bitvec.t array
(** The retired per-procedure under-approximation (top-level statements
    only, no branch intersection, no alias demotion) — kept so tests
    can pin the precision gained by the interprocedural summaries. *)

val aliased : t -> int -> Bitvec.t
(** Variables appearing in some §5 alias pair of the procedure.  Do not
    mutate. *)

val use_of_site : t -> int -> Bitvec.t
(** Cached {!Core.Analyze.use_of_site}.  Do not mutate. *)

val mod_of_site : t -> int -> Bitvec.t
(** Cached {!Core.Analyze.mod_of_site}.  Do not mutate. *)

val kill_of_site : t -> int -> Bitvec.t
(** Must-kill at a call site, in the caller's frame: [MUSTDEF(callee)]
    projected through the binding (by-ref formals to scalar actual
    bases, non-locals kept, callee locals and by-value formals
    dropped), minus the caller's aliased variables.  Do not mutate. *)

val exit_live : t -> int -> Bitvec.t
(** Liveness boundary at a procedure's exit: everything that outlives
    the activation — non-locals plus the procedure's by-ref formals.
    Main keeps every global alive (program output is observable), so
    end-of-run stores to globals are deliberately never dead.  Do not
    mutate. *)

val add_use : t -> Bitvec.t -> Cfg.instr -> unit
(** Accumulate an instruction's use set (for liveness gen). *)

val iter_must_def : t -> Cfg.instr -> (int -> unit) -> unit
(** Variables the instruction definitely overwrites (liveness /
    reaching-definition kill). *)

val iter_may_def : t -> Cfg.instr -> (int -> unit) -> unit
(** Variables the instruction may write (reaching-definition gen);
    ascending, a superset of {!iter_must_def}'s. *)
