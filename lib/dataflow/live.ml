type t = {
  cfg_ : Cfg.t;
  res : Solver.result;
}

(* Block-level gen/kill composed backward over member instructions:
   gen = uses upward-exposed past earlier kills, kill = union of
   definite defs. *)
let block_sets tf nv instrs =
  let gen = Bitvec.create nv and kill = Bitvec.create nv in
  for i = Array.length instrs - 1 downto 0 do
    let _, ins = instrs.(i) in
    Transfer.iter_must_def tf ins (fun v ->
        Bitvec.unset gen v;
        Bitvec.set kill v);
    Transfer.add_use tf gen ins
  done;
  (gen, kill)

let solve tf cfg =
  let a = Transfer.analysis tf in
  let nv = Ir.Prog.n_vars a.Core.Analyze.prog in
  let sets =
    Array.map (fun b -> block_sets tf nv b.Cfg.instrs) cfg.Cfg.blocks
  in
  let problem =
    {
      Solver.direction = Solver.Backward;
      n_bits = nv;
      gen = (fun b -> fst sets.(b));
      kill = (fun b -> snd sets.(b));
      boundary = Transfer.exit_live tf cfg.Cfg.proc;
    }
  in
  { cfg_ = cfg; res = Solver.solve cfg problem }

let cfg t = t.cfg_
let passes t = t.res.Solver.passes
let live_in t b = t.res.Solver.in_.(b)
let live_out t b = t.res.Solver.out.(b)

let fold_instrs t tf ~block ~init ~f =
  let live = Bitvec.copy (live_out t block) in
  let instrs = t.cfg_.Cfg.blocks.(block).Cfg.instrs in
  let acc = ref init in
  for i = Array.length instrs - 1 downto 0 do
    let ord, ins = instrs.(i) in
    acc := f !acc ~live_after:live ~ord ins;
    Transfer.iter_must_def tf ins (fun v -> Bitvec.unset live v);
    Transfer.add_use tf live ins
  done;
  !acc
