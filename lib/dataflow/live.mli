(** Liveness — the backward instance over variable ids.

    A variable is live at a point when some path reaches a read of it
    (possibly inside a callee, via the call's summary-derived use set)
    before any definite overwrite.  The exit boundary is
    {!Transfer.exit_live}: whatever outlives the activation. *)

type t

val solve : Transfer.t -> Cfg.t -> t
val cfg : t -> Cfg.t
val passes : t -> int

val live_in : t -> int -> Bitvec.t
(** Live at block entry.  Do not mutate. *)

val live_out : t -> int -> Bitvec.t
(** Live at block exit.  Do not mutate. *)

val fold_instrs : t -> Transfer.t -> block:int -> init:'a ->
  f:('a -> live_after:Bitvec.t -> ord:int -> Cfg.instr -> 'a) -> 'a
(** Walk one block's instructions backward, exposing the live-after set
    of each (a scratch vector, valid only during the callback). *)
