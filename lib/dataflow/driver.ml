module P = Ir.Prog
module A = Core.Analyze

type solution = {
  cfg : Cfg.t;
  live : Live.t;
  reach : Reach.t;
}

type t = {
  mutable analysis : A.t;
  mutable locs : Frontend.Locs.t;
  mutable tf : Transfer.t option;
  mutable slots : solution option array;
}

let m_solved = Obs.Metric.counter "dataflow.procs_solved"
let m_blocks = Obs.Metric.counter "dataflow.blocks"
let m_live_passes = Obs.Metric.counter "dataflow.live_passes"
let m_reach_passes = Obs.Metric.counter "dataflow.reach_passes"
let m_invalidated = Obs.Metric.counter "dataflow.invalidated"

let create ?locs (a : A.t) =
  {
    analysis = a;
    locs = (match locs with Some l -> l | None -> Frontend.Locs.dummy a.A.prog);
    tf = None;
    slots = Array.make (P.n_procs a.A.prog) None;
  }

let analysis t = t.analysis

let transfer t =
  match t.tf with
  | Some tf -> tf
  | None ->
    let tf = Transfer.make t.analysis in
    t.tf <- Some tf;
    tf

let solve_one tf locs prog pid =
  let cfg = Cfg.build ~locs prog pid in
  let live = Live.solve tf cfg in
  let reach = Reach.solve tf cfg in
  { cfg; live; reach }

let note sol =
  Obs.Metric.add m_solved 1;
  Obs.Metric.add m_blocks (Cfg.n_blocks sol.cfg);
  Obs.Metric.add m_live_passes (Live.passes sol.live);
  Obs.Metric.add m_reach_passes (Reach.passes sol.reach)

let solution t pid =
  match t.slots.(pid) with
  | Some s -> s
  | None ->
    let s = solve_one (transfer t) t.locs t.analysis.A.prog pid in
    note s;
    t.slots.(pid) <- Some s;
    s

let solve_all ?pool t =
  Obs.Span.with_ "dataflow.solve" @@ fun () ->
  let todo = ref [] in
  Array.iteri (fun pid s -> if s = None then todo := pid :: !todo) t.slots;
  let todo = Array.of_list (List.rev !todo) in
  if Array.length todo > 0 then begin
    let tf = transfer t in
    (* Each task owns its slot, so the pool path writes disjoint cells
       and the answers cannot depend on scheduling.  The procedures are
       independent (one flat level), batched coarsely by estimated CFG
       size — statement and call-site counts — rather than one task
       per procedure. *)
    (match pool with
    | Some pool when Par.Pool.jobs pool > 1 ->
      let width = Array.length todo in
      let levels =
        {
          Par.Wavefront.level = Array.make width 0;
          n_levels = 1;
          by_level = [| Array.init width Fun.id |];
          max_width = width;
        }
      in
      let prog = t.analysis.A.prog in
      let cost i =
        let pid = todo.(i) in
        1
        + List.length (P.proc prog pid).P.body
        + List.length (P.sites_of prog pid)
      in
      let plan =
        Par.Wavefront.plan levels ~jobs:(Par.Pool.jobs pool) ~cost
      in
      Par.Wavefront.run_plan (Some pool) plan ~f:(fun ~slot:_ ~comp:i ->
          let pid = todo.(i) in
          t.slots.(pid) <- Some (solve_one tf t.locs prog pid))
    | _ ->
      Array.iter
        (fun pid ->
          t.slots.(pid) <- Some (solve_one tf t.locs t.analysis.A.prog pid))
        todo);
    (* Metrics on the calling domain, in pid order, so profiles are
       jobs-invariant too. *)
    Array.iter
      (fun pid ->
        match t.slots.(pid) with
        | Some s -> note s
        | None -> ())
      todo
  end

let reset ?locs t (a : A.t) =
  t.analysis <- a;
  t.locs <- (match locs with Some l -> l | None -> Frontend.Locs.dummy a.A.prog);
  t.tf <- None;
  t.slots <- Array.make (P.n_procs a.A.prog) None

let same_shape old_p new_p =
  P.n_procs old_p = P.n_procs new_p
  && P.n_vars old_p = P.n_vars new_p
  && P.n_sites old_p = P.n_sites new_p

let refresh ?locs t (a : A.t) ~edited =
  let old = t.analysis in
  if not (same_shape old.A.prog a.A.prog) then begin
    reset ?locs t a;
    Array.to_list (Array.init (P.n_procs a.A.prog) (fun p -> p))
  end
  else begin
    let old_tf = transfer t in
    let new_tf = Transfer.make a in
    let np = P.n_procs a.A.prog in
    let summary_changed =
      Array.init np (fun q ->
          (not (Bitvec.equal (A.gmod_of old q) (A.gmod_of a q)))
          || (not (Bitvec.equal (A.guse_of old q) (A.guse_of a q)))
          || not (Bitvec.equal (Transfer.must_mod old_tf q) (Transfer.must_mod new_tf q)))
    in
    let invalid = Array.make np false in
    List.iter (fun pid -> invalid.(pid) <- true) edited;
    P.iter_procs a.A.prog (fun pr ->
        if not (Bitvec.equal (Transfer.aliased old_tf pr.P.pid) (Transfer.aliased new_tf pr.P.pid))
        then invalid.(pr.P.pid) <- true);
    P.iter_sites a.A.prog (fun s ->
        if summary_changed.(s.P.callee) then invalid.(s.P.caller) <- true);
    t.analysis <- a;
    (match locs with Some l -> t.locs <- l | None -> ());
    t.tf <- Some new_tf;
    let dropped = ref [] in
    for pid = np - 1 downto 0 do
      if invalid.(pid) then begin
        t.slots.(pid) <- None;
        dropped := pid :: !dropped
      end
    done;
    Obs.Metric.add m_invalidated (List.length !dropped);
    !dropped
  end
