(** Per-procedure control-flow graphs over {!Ir.Stmt}.

    MiniProc is fully structured, so the CFG is built in one
    deterministic pass: straight-line statements accumulate in the
    current block; [if] opens a then-block, an else-block and a join;
    [while] a test, a body and a join; [for] appends the one-shot
    initialisation to the current block and opens a test, a body, a
    latch and a join.  Block 0 is the entry; the exit block is created
    last, so the block order — and with it every solver result — is a
    pure function of the statement list.

    Every instruction carries the pre-order ordinal of the statement it
    came from (the position {!Ir.Stmt.iter} visits it at), which is the
    index into {!Frontend.Locs.stmts}.  A [for] statement contributes
    three instructions — init, test, step — that share its ordinal,
    mirroring the interpreter: bounds are evaluated once at entry, the
    test reads only the loop variable, the step reads and writes it. *)

type instr =
  | Assign of Ir.Expr.lvalue * Ir.Expr.t
  | Call of int  (** Call-site id. *)
  | Read of Ir.Expr.lvalue
  | Write of Ir.Expr.t
  | Cond of Ir.Expr.t  (** [if]/[while] test; uses only. *)
  | For_init of int * Ir.Expr.t * Ir.Expr.t
      (** Evaluate bounds, store the lower into the loop variable. *)
  | For_test of int  (** Reads only the loop variable. *)
  | For_step of int  (** Reads and writes the loop variable. *)

type block = {
  bid : int;
  instrs : (int * instr) array;  (** (statement ordinal, instruction). *)
  succs : int array;  (** Deterministic order: branch targets before joins. *)
  preds : int array;
  span : (Frontend.Loc.t * Frontend.Loc.t) option;
      (** Source extent of the member statements, [(first, last)] in
          (line, column) order; [None] for empty blocks or when the
          program has no positions ({!Frontend.Locs.dummy}). *)
}

type t = {
  proc : int;
  blocks : block array;
  entry : int;  (** Always 0. *)
  exit_ : int;  (** Always the last block; no successors. *)
  n_stmts : int;  (** Statements of the body, pre-order universe. *)
}

val build : ?locs:Frontend.Locs.t -> Ir.Prog.t -> int -> t
(** CFG of one procedure's body.  Spans come from [locs] when given. *)

val n_blocks : t -> int
val n_edges : t -> int
val n_instrs : t -> int

val iter_instrs : t -> (block:int -> int -> instr -> unit) -> unit
(** Every instruction, blocks in id order, with its statement ordinal. *)

val validate : ?locs:Frontend.Locs.t -> Ir.Prog.t -> (unit, Ir.Validate.error list) result
(** Build every procedure's CFG and check well-formedness with
    {!Ir.Validate.check_cfg}, plus the span discipline the builder
    promises: block spans are ordered pairs in the procedure's source
    file, no earlier than the procedure's own position. *)

val pp : Ir.Prog.t -> Format.formatter -> t -> unit
(** Debug listing: one line per block with instruction ordinals and
    successor ids. *)
