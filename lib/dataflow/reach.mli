(** Reaching definitions — the forward instance over definition ids.

    The definition universe is one id per (instruction occurrence,
    variable written): ordinary writes contribute a single pair, a call
    one pair per variable of [MOD(s)] — a summary-sized proxy for every
    store the callee might do.  A definition is killed only by a
    definite overwrite (the same must-def sets liveness kills with), so
    call sites kill through {!Transfer.kill_of_site}. *)

type def = {
  did : int;
  block : int;
  ord : int;  (** Statement ordinal of the writing instruction. *)
  var : int;
  must : bool;  (** Whether the write is definite (kills other defs). *)
}

type t

val solve : Transfer.t -> Cfg.t -> t
val cfg : t -> Cfg.t
val passes : t -> int
val n_defs : t -> int
val def : t -> int -> def
val defs_of_var : t -> int -> int list
(** Definition ids writing a variable, ascending. *)

val reach_in : t -> int -> Bitvec.t
(** Definitions reaching block entry.  Do not mutate. *)

val reach_out : t -> int -> Bitvec.t

val fold_instrs :
  t ->
  Transfer.t ->
  block:int ->
  init:'a ->
  f:('a -> reach_before:Bitvec.t -> ord:int -> Cfg.instr -> 'a) ->
  'a
(** Forward walk over one block's instructions, exposing the
    definitions reaching {e immediately before} each instruction — the
    dual of {!Live.fold_instrs}.  [reach_before] is a scratch vector
    reused across iterations: read it during [f], do not keep it. *)
