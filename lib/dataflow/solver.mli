(** Generic round-robin bit-vector dataflow solver.

    Classic union/gen-kill framework over a {!Cfg.t}: per-block
    transfer [f(x) = gen ∪ (x ∖ kill)], meet = union, iterated in
    reverse postorder (of the reversed graph for backward problems)
    until a full pass changes nothing.  Rapid in the Kam–Ullman sense,
    so the pass count stays small and — the property the bench
    records — total work is near-linear in program size.

    Determinism: the iteration order is a pure function of the CFG, so
    results (and the pass count) are identical however the caller
    schedules per-procedure solves. *)

type direction =
  | Forward  (** in(b) = ⋃ out(preds); entry seeded with [boundary]. *)
  | Backward  (** out(b) = ⋃ in(succs); exit seeded with [boundary]. *)

type problem = {
  direction : direction;
  n_bits : int;
  gen : int -> Bitvec.t;  (** Block-level gen; not retained, not mutated. *)
  kill : int -> Bitvec.t;  (** Block-level kill. *)
  boundary : Bitvec.t;
      (** Bits live on the boundary edge: entry-in for forward
          problems, exit-out for backward ones. *)
}

type result = {
  in_ : Bitvec.t array;  (** Per block, at block entry. *)
  out : Bitvec.t array;  (** Per block, at block exit. *)
  passes : int;  (** Round-robin passes, including the final quiet one. *)
}

val solve : Cfg.t -> problem -> result

val rpo : Cfg.t -> direction -> int array
(** The visit order [solve] uses: reverse postorder from the entry over
    successor edges (forward), or from the exit over predecessor edges
    (backward).  Exposed for tests. *)
