module P = Ir.Prog
module S = Ir.Stmt
module Loc = Frontend.Loc

type instr =
  | Assign of Ir.Expr.lvalue * Ir.Expr.t
  | Call of int
  | Read of Ir.Expr.lvalue
  | Write of Ir.Expr.t
  | Cond of Ir.Expr.t
  | For_init of int * Ir.Expr.t * Ir.Expr.t
  | For_test of int
  | For_step of int

type block = {
  bid : int;
  instrs : (int * instr) array;
  succs : int array;
  preds : int array;
  span : (Loc.t * Loc.t) option;
}

type t = {
  proc : int;
  blocks : block array;
  entry : int;
  exit_ : int;
  n_stmts : int;
}

(* Mutable block under construction; instruction and successor lists
   are accumulated in reverse. *)
type bb = {
  id : int;
  mutable rinstrs : (int * instr) list;
  mutable rsuccs : int list;
}

let loc_le a b = a.Loc.line < b.Loc.line || (a.Loc.line = b.Loc.line && a.Loc.col <= b.Loc.col)

let span_of_ords locs pid ords =
  match locs with
  | None -> None
  | Some locs ->
    List.fold_left
      (fun acc o ->
        let l = Frontend.Locs.stmt locs ~proc:pid o in
        if l = Loc.dummy then acc
        else
          match acc with
          | None -> Some (l, l)
          | Some (lo, hi) ->
            Some ((if loc_le l lo then l else lo), if loc_le hi l then l else hi))
      None ords

let build ?locs prog pid =
  let body = (P.proc prog pid).P.body in
  let rev_blocks = ref [] in
  let n = ref 0 in
  let new_block () =
    let b = { id = !n; rinstrs = []; rsuccs = [] } in
    incr n;
    rev_blocks := b :: !rev_blocks;
    b
  in
  let edge a b = a.rsuccs <- b.id :: a.rsuccs in
  let add b ord i = b.rinstrs <- (ord, i) :: b.rinstrs in
  let next_ord = ref 0 in
  let take_ord () =
    let o = !next_ord in
    incr next_ord;
    o
  in
  (* Walk a statement list, threading the block new instructions land
     in; returns the block control falls out of. *)
  let rec walk cur stmts = List.fold_left step cur stmts
  and step cur s =
    let o = take_ord () in
    match s with
    | S.Assign (lv, e) ->
      add cur o (Assign (lv, e));
      cur
    | S.Read lv ->
      add cur o (Read lv);
      cur
    | S.Write e ->
      add cur o (Write e);
      cur
    | S.Call sid ->
      add cur o (Call sid);
      cur
    | S.If (c, then_, else_) ->
      add cur o (Cond c);
      let bt = new_block () in
      let be = new_block () in
      edge cur bt;
      edge cur be;
      let tend = walk bt then_ in
      let eend = walk be else_ in
      let join = new_block () in
      edge tend join;
      edge eend join;
      join
    | S.While (c, body) ->
      let test = new_block () in
      edge cur test;
      add test o (Cond c);
      let bb = new_block () in
      edge test bb;
      let bend = walk bb body in
      edge bend test;
      let join = new_block () in
      edge test join;
      join
    | S.For (v, lo, hi, body) ->
      add cur o (For_init (v, lo, hi));
      let test = new_block () in
      edge cur test;
      add test o (For_test v);
      let bb = new_block () in
      edge test bb;
      let bend = walk bb body in
      let latch = new_block () in
      edge bend latch;
      add latch o (For_step v);
      edge latch test;
      let join = new_block () in
      edge test join;
      join
  in
  let b0 = new_block () in
  let last = walk b0 body in
  let ex = new_block () in
  edge last ex;
  let n = !n in
  let by_id = Array.make n None in
  List.iter (fun b -> by_id.(b.id) <- Some b) !rev_blocks;
  let preds = Array.make n [] in
  Array.iter
    (fun b ->
      match b with
      | None -> assert false
      | Some b -> List.iter (fun s -> preds.(s) <- b.id :: preds.(s)) b.rsuccs)
    by_id;
  let blocks =
    Array.map
      (fun b ->
        match b with
        | None -> assert false
        | Some b ->
          let instrs = Array.of_list (List.rev b.rinstrs) in
          {
            bid = b.id;
            instrs;
            succs = Array.of_list (List.rev b.rsuccs);
            preds = Array.of_list (List.rev preds.(b.id));
            span = span_of_ords locs pid (List.map fst (List.rev b.rinstrs));
          })
      by_id
  in
  { proc = pid; blocks; entry = 0; exit_ = n - 1; n_stmts = !next_ord }

let n_blocks t = Array.length t.blocks
let n_edges t = Array.fold_left (fun acc b -> acc + Array.length b.succs) 0 t.blocks
let n_instrs t = Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 t.blocks

let iter_instrs t f =
  Array.iter (fun b -> Array.iter (fun (o, i) -> f ~block:b.bid o i) b.instrs) t.blocks

let validate ?locs prog =
  let errors = ref [] in
  P.iter_procs prog (fun pr ->
      let pid = pr.P.pid in
      let where = Printf.sprintf "dataflow(%s)" pr.P.pname in
      let cfg = build ?locs prog pid in
      let es =
        Ir.Validate.check_cfg ~where ~n_blocks:(n_blocks cfg) ~entry:cfg.entry
          ~exit_:cfg.exit_ ~succs:(fun b ->
            Array.to_list cfg.blocks.(b).succs)
      in
      errors := List.rev_append es !errors;
      (* Span discipline: ordered pairs, in the procedure's file, no
         earlier than the procedure-name token. *)
      (match locs with
      | None -> ()
      | Some locs ->
        let ploc = Frontend.Locs.proc locs pid in
        Array.iter
          (fun b ->
            match b.span with
            | None -> ()
            | Some (lo, hi) ->
              let fail fmt =
                Format.kasprintf
                  (fun what -> errors := { Ir.Validate.where; what } :: !errors)
                  fmt
              in
              if not (loc_le lo hi) then
                fail "cfg: block %d span inverted (%a after %a)" b.bid Loc.pp lo
                  Loc.pp hi;
              if ploc <> Loc.dummy then begin
                if lo.Loc.file <> ploc.Loc.file then
                  fail "cfg: block %d span in file %s, procedure in %s" b.bid
                    lo.Loc.file ploc.Loc.file;
                if not (loc_le ploc lo) then
                  fail "cfg: block %d span %a precedes the procedure at %a" b.bid
                    Loc.pp lo Loc.pp ploc
              end)
          cfg.blocks);
      (* Ordinal discipline: instruction ordinals stay within the
         statement universe. *)
      Array.iter
        (fun b ->
          Array.iter
            (fun (o, _) ->
              if o < 0 || o >= cfg.n_stmts then
                errors :=
                  {
                    Ir.Validate.where;
                    what =
                      Printf.sprintf "cfg: block %d ordinal %d outside 0..%d" b.bid
                        o (cfg.n_stmts - 1);
                  }
                  :: !errors)
            b.instrs)
        cfg.blocks);
  match List.rev !errors with
  | [] -> Ok ()
  | es -> Error es

let pp_instr prog ppf i =
  let name v = (P.var prog v).P.vname in
  match i with
  | Assign (lv, _) -> Format.fprintf ppf "assign %s" (name (Ir.Expr.lvalue_base lv))
  | Call sid -> Format.fprintf ppf "call %s" (P.proc prog (P.site prog sid).P.callee).P.pname
  | Read lv -> Format.fprintf ppf "read %s" (name (Ir.Expr.lvalue_base lv))
  | Write _ -> Format.fprintf ppf "write"
  | Cond _ -> Format.fprintf ppf "cond"
  | For_init (v, _, _) -> Format.fprintf ppf "for-init %s" (name v)
  | For_test v -> Format.fprintf ppf "for-test %s" (name v)
  | For_step v -> Format.fprintf ppf "for-step %s" (name v)

let pp prog ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i b ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "b%d:" b.bid;
      Array.iter (fun (o, ins) -> Format.fprintf ppf " [%d]%a" o (pp_instr prog) ins) b.instrs;
      Format.fprintf ppf " ->";
      Array.iter (Format.fprintf ppf " b%d") b.succs;
      if b.bid = t.exit_ then Format.fprintf ppf " (exit)")
    t.blocks;
  Format.fprintf ppf "@]"
