type direction =
  | Forward
  | Backward

type problem = {
  direction : direction;
  n_bits : int;
  gen : int -> Bitvec.t;
  kill : int -> Bitvec.t;
  boundary : Bitvec.t;
}

type result = {
  in_ : Bitvec.t array;
  out : Bitvec.t array;
  passes : int;
}

(* Reverse postorder via an explicit stack (structured CFGs are
   shallow, but join chains make recursion depth linear in block
   count).  Every block is reachable from the start by construction;
   stray ones are appended defensively so the solver still terminates
   on graphs that fail validation. *)
let rpo cfg direction =
  let n = Array.length cfg.Cfg.blocks in
  let next b =
    match direction with
    | Forward -> cfg.Cfg.blocks.(b).Cfg.succs
    | Backward -> cfg.Cfg.blocks.(b).Cfg.preds
  in
  let start =
    match direction with
    | Forward -> cfg.Cfg.entry
    | Backward -> cfg.Cfg.exit_
  in
  let visited = Array.make n false in
  let post = ref [] in
  let dfs root =
    if not visited.(root) then begin
      visited.(root) <- true;
      let stack = ref [ (root, 0) ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (b, i) :: rest ->
          let ss = next b in
          if i < Array.length ss then begin
            stack := (b, i + 1) :: rest;
            let s = ss.(i) in
            if not visited.(s) then begin
              visited.(s) <- true;
              stack := (s, 0) :: !stack
            end
          end
          else begin
            stack := rest;
            post := b :: !post
          end
      done
    end
  in
  dfs start;
  for b = 0 to n - 1 do
    dfs b
  done;
  Array.of_list !post

let solve cfg p =
  let blocks = cfg.Cfg.blocks in
  let n = Array.length blocks in
  let order = rpo cfg p.direction in
  let in_ = Array.init n (fun _ -> Bitvec.create p.n_bits) in
  let out = Array.init n (fun _ -> Bitvec.create p.n_bits) in
  (* For forward problems [into] is block-in and [from] block-out of
     the meet edges; swapped for backward. *)
  let into, from =
    match p.direction with
    | Forward -> (in_, out)
    | Backward -> (out, in_)
  in
  let meet_edges b =
    match p.direction with
    | Forward -> blocks.(b).Cfg.preds
    | Backward -> blocks.(b).Cfg.succs
  in
  let start =
    match p.direction with
    | Forward -> cfg.Cfg.entry
    | Backward -> cfg.Cfg.exit_
  in
  let scratch = Bitvec.create p.n_bits in
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr passes;
    Array.iter
      (fun b ->
        Bitvec.clear scratch;
        if b = start then ignore (Bitvec.union_into ~src:p.boundary ~dst:scratch);
        Array.iter
          (fun e -> ignore (Bitvec.union_into ~src:from.(e) ~dst:scratch))
          (meet_edges b);
        Bitvec.blit ~src:scratch ~dst:into.(b);
        ignore (Bitvec.diff_into ~src:(p.kill b) ~dst:scratch);
        ignore (Bitvec.union_into ~src:(p.gen b) ~dst:scratch);
        if not (Bitvec.equal scratch from.(b)) then begin
          Bitvec.blit ~src:scratch ~dst:from.(b);
          changed := true
        end)
      order
  done;
  { in_; out; passes = !passes }
