module Prog = Ir.Prog
module Expr = Ir.Expr
module Stmt = Ir.Stmt
module Types = Ir.Types
module Int_set = Set.Make (Int)

type tier = Steensgaard | Andersen

let tier_name = function Steensgaard -> "steensgaard" | Andersen -> "andersen"

let tier_of_string = function
  | "steensgaard" -> Some Steensgaard
  | "andersen" -> Some Andersen
  | _ -> None

let has_pointers prog =
  let n = Prog.n_vars prog in
  let rec scan vid =
    vid < n && (Types.is_ptr (Prog.var prog vid).Prog.vty || scan (vid + 1))
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Constraint extraction.  Pointer values are created by [&x] and
   [new], moved by assignments and by-value argument passing, and
   cells are shared by by-reference bindings.  Sema guarantees a
   pointer-typed expression is a variable, an address-of, a
   dereference, or an allocation — nothing else has pointer type. *)

type rv =
  | Rvar of int  (* the value of variable [v] *)
  | Rderef of int * int  (* the value of [*^d v] *)
  | Raddr of int  (* [&v] *)
  | Rnew of int  (* heap location id *)

type cstr =
  | Flow of (int * int) * rv  (* cell [*^d base] := value *)
  | Bind_var of int * int  (* by-ref: formal names the actual's cell *)
  | Bind_deref of int * int * int  (* by-ref: formal names cell [*^d p] *)

let cell_is_ptr prog base d =
  match Types.deref d (Prog.var prog base).Prog.vty with
  | Some (Types.Ptr _) -> true
  | Some _ | None -> false

let extract prog =
  let cstrs = ref [] in
  let heap_names = ref [] in
  let n_heap = ref 0 in
  let emit c = cstrs := c :: !cstrs in
  let fresh_heap pname =
    let id = !n_heap in
    incr n_heap;
    heap_names := Printf.sprintf "new#%d@%s" id pname :: !heap_names;
    id
  in
  (* Heap ids are assigned in traversal order, so extraction is
     deterministic: procedures in pid order, statements in program
     order, call arguments left to right. *)
  let rv_of pname (e : Expr.t) =
    match e with
    | Expr.Var v -> Some (Rvar v)
    | Expr.Addr v -> Some (Raddr v)
    | Expr.Deref (p, d) -> Some (Rderef (p, d))
    | Expr.New _ -> Some (Rnew (fresh_heap pname))
    | Expr.Int _ | Expr.Bool _ | Expr.Index _ | Expr.Binop _ | Expr.Unop _ -> None
  in
  Prog.iter_procs prog (fun pr ->
      let pname = pr.Prog.pname in
      Stmt.iter
        (fun s ->
          match s with
          | Stmt.Assign (lv, e) -> (
            let cell =
              match lv with
              | Expr.Lvar x -> Some (x, 0)
              | Expr.Lderef (p, d) -> Some (p, d)
              | Expr.Lindex _ -> None
            in
            match cell with
            | Some (base, d) when cell_is_ptr prog base d -> (
              match rv_of pname e with
              | Some rv -> emit (Flow ((base, d), rv))
              | None -> ())
            | Some _ | None -> ())
          | Stmt.If _ | Stmt.While _ | Stmt.For _ | Stmt.Read _ | Stmt.Write _
          | Stmt.Call _ ->
            ())
        pr.Prog.body);
  Prog.iter_sites prog (fun s ->
      let caller = Prog.proc prog s.Prog.caller in
      let callee = Prog.proc prog s.Prog.callee in
      Array.iteri
        (fun i arg ->
          let f = callee.Prog.formals.(i) in
          match arg with
          | Prog.Arg_value e ->
            if Types.is_ptr (Prog.var prog f).Prog.vty then (
              match rv_of caller.Prog.pname e with
              | Some rv -> emit (Flow ((f, 0), rv))
              | None -> ())
          | Prog.Arg_ref (Expr.Lvar b) -> emit (Bind_var (f, b))
          | Prog.Arg_ref (Expr.Lindex _) -> ()
          | Prog.Arg_ref (Expr.Lderef (p, d)) -> emit (Bind_deref (f, p, d)))
        s.Prog.args);
  (List.rev !cstrs, !n_heap, Array.of_list (List.rev !heap_names))

(* ------------------------------------------------------------------ *)
(* Plain union-find (path compression + union by rank). *)

module Uf = struct
  type t = { mutable parent : int array; mutable rank : int array; mutable n : int }

  let create n = { parent = Array.init n Fun.id; rank = Array.make n 0; n }

  let rec find t x =
    let p = t.parent.(x) in
    if p = x then x
    else begin
      let r = find t p in
      t.parent.(x) <- r;
      r
    end

  let fresh t =
    let id = t.n in
    if id = Array.length t.parent then begin
      let cap = max 16 (2 * id) in
      let parent = Array.init cap (fun i -> if i < id then t.parent.(i) else i) in
      let rank = Array.make cap 0 in
      Array.blit t.rank 0 rank 0 id;
      t.parent <- parent;
      t.rank <- rank
    end;
    t.parent.(id) <- id;
    t.rank.(id) <- 0;
    t.n <- id + 1;
    id

  (* Union; returns the surviving root. *)
  let union t a b =
    let ra = find t a and rb = find t b in
    if ra = rb then ra
    else if t.rank.(ra) < t.rank.(rb) then begin
      t.parent.(ra) <- rb;
      rb
    end
    else begin
      t.parent.(rb) <- ra;
      if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
      ra
    end
end

(* ------------------------------------------------------------------ *)
(* Steensgaard: an equivalence class per set of conflated locations,
   each class carrying at most one points-to class.  Merging two
   classes recursively merges what they point to — the classic
   almost-linear unification. *)

module Steens = struct
  type t = { uf : Uf.t; mutable pts : int array (* root -> class, -1 = none *) }

  let create n_locs =
    { uf = Uf.create n_locs; pts = Array.make (max 16 n_locs) (-1) }

  let ensure_pts_capacity t =
    let n = t.uf.Uf.n in
    if n > Array.length t.pts then begin
      let grown = Array.make (max n (2 * Array.length t.pts)) (-1) in
      Array.blit t.pts 0 grown 0 (Array.length t.pts);
      t.pts <- grown
    end

  let rec unify t a b =
    let ra = Uf.find t.uf a and rb = Uf.find t.uf b in
    if ra <> rb then begin
      let pa = t.pts.(ra) and pb = t.pts.(rb) in
      let root = Uf.union t.uf ra rb in
      t.pts.(root) <- (if pa >= 0 then pa else pb);
      if pa >= 0 && pb >= 0 then unify t pa pb
    end

  (* The class this class points to, created on demand. *)
  let pts_of t l =
    let r = Uf.find t.uf l in
    if t.pts.(r) >= 0 then Uf.find t.uf t.pts.(r)
    else begin
      let c = Uf.fresh t.uf in
      ensure_pts_capacity t;
      t.pts.(c) <- -1;
      t.pts.(r) <- c;
      c
    end

  let pts_opt t l =
    let r = Uf.find t.uf l in
    if t.pts.(r) >= 0 then Some (Uf.find t.uf t.pts.(r)) else None

  (* Class of the cell the [d]-fold dereference of variable-loc [v]
     names ([d = 0] is the variable's own cell). *)
  let cell t v d =
    let c = ref (Uf.find t.uf v) in
    for _ = 1 to d do
      c := pts_of t !c
    done;
    !c

  let solve n_locs cstrs =
    let t = create n_locs in
    List.iter
      (fun c ->
        match c with
        | Flow ((base, d), rv) ->
          let lhs_content = pts_of t (cell t base d) in
          let rhs_content =
            match rv with
            | Rvar q -> pts_of t (cell t q 0)
            | Rderef (q, d') -> pts_of t (cell t q d')
            | Raddr x -> Uf.find t.uf x
            | Rnew _ -> assert false (* rewritten to [Raddr] pre-solve *)
          in
          unify t lhs_content rhs_content
        | Bind_var (f, b) -> unify t f b
        | Bind_deref (f, p, d) -> unify t f (cell t p d))
      cstrs;
    t
end

(* ------------------------------------------------------------------ *)
(* Andersen: inclusion constraints solved by naive iteration — small
   programs, and the generated workloads stay well within budget. *)

module Ander = struct
  type t = {
    n_locs : int;
    mutable n : int;
    mutable pts : Int_set.t array;
    mutable succs : int list array;
    edge_set : (int * int, unit) Hashtbl.t;
    mutable loads : (int * int) list;  (* (p, x): ∀l∈pts p, pts x ⊇ pts l *)
    mutable stores : (int * int) list;  (* (p, v): ∀l∈pts p, pts l ⊇ pts v *)
    mutable dirty : bool;
  }

  let create n_locs =
    let cap = max 16 (2 * n_locs) in
    {
      n_locs;
      n = n_locs;
      pts = Array.make cap Int_set.empty;
      succs = Array.make cap [];
      edge_set = Hashtbl.create 64;
      loads = [];
      stores = [];
      dirty = false;
    }

  let fresh t =
    let id = t.n in
    if id = Array.length t.pts then begin
      let cap = 2 * id in
      let pts = Array.make cap Int_set.empty in
      Array.blit t.pts 0 pts 0 id;
      let succs = Array.make cap [] in
      Array.blit t.succs 0 succs 0 id;
      t.pts <- pts;
      t.succs <- succs
    end;
    t.n <- id + 1;
    id

  let add_edge t s d =
    if s <> d && not (Hashtbl.mem t.edge_set (s, d)) then begin
      Hashtbl.add t.edge_set (s, d) ();
      t.succs.(s) <- d :: t.succs.(s);
      t.dirty <- true
    end

  let add_loc t x l =
    if not (Int_set.mem l t.pts.(x)) then begin
      t.pts.(x) <- Int_set.add l t.pts.(x);
      t.dirty <- true
    end

  (* Node whose pts set is the set of cells [*^d v] may name (so the
     node standing for the {e value} of [*^(d-1) v]).  [d = 1] is [v]
     itself. *)
  let rec chain t v d =
    if d = 1 then v
    else begin
      let prev = chain t v (d - 1) in
      let node = fresh t in
      t.loads <- (prev, node) :: t.loads;
      node
    end

  let value_node t rv =
    match rv with
    | Rvar q -> q
    | Rderef (q, d) ->
      let prev = chain t q d in
      let node = fresh t in
      t.loads <- (prev, node) :: t.loads;
      node
    | Raddr x ->
      let node = fresh t in
      add_loc t node x;
      node
    | Rnew _ -> assert false (* rewritten to [Raddr] pre-solve *)

  let solve n_locs cstrs =
    let t = create n_locs in
    List.iter
      (fun c ->
        match c with
        | Flow ((base, d), rv) ->
          let v = value_node t rv in
          if d = 0 then add_edge t v base
          else begin
            let cell = chain t base d in
            t.stores <- (cell, v) :: t.stores
          end
        | Bind_var (f, b) ->
          add_edge t f b;
          add_edge t b f
        | Bind_deref (f, p, d) ->
          let cell = chain t p d in
          t.loads <- (cell, f) :: t.loads;
          t.stores <- (cell, f) :: t.stores)
      cstrs;
    t.dirty <- true;
    while t.dirty do
      t.dirty <- false;
      for s = 0 to t.n - 1 do
        List.iter
          (fun d ->
            let u = Int_set.union t.pts.(d) t.pts.(s) in
            if not (Int_set.equal u t.pts.(d)) then begin
              t.pts.(d) <- u;
              t.dirty <- true
            end)
          t.succs.(s)
      done;
      List.iter
        (fun (p, x) -> Int_set.iter (fun l -> add_edge t l x) t.pts.(p))
        t.loads;
      List.iter
        (fun (p, v) -> Int_set.iter (fun l -> add_edge t v l) t.pts.(p))
        t.stores
    done;
    t

  (* Cells [*^d p] may name, as a loc set. *)
  let cells t p d =
    let s = ref t.pts.(p) in
    for _ = 2 to d do
      s := Int_set.fold (fun l acc -> Int_set.union t.pts.(l) acc) !s Int_set.empty
    done;
    !s
end

(* ------------------------------------------------------------------ *)

type solver = Sol_steens of Steens.t | Sol_ander of Ander.t

type t = {
  prog : Prog.t;
  tier : tier;
  n_heap : int;
  heap_names : string array;
  storage_v : Int_set.t array;
      (* [storage_v.(v)]: variable cells [v]'s storage may actually be —
         [v] itself, plus (for by-ref formals) every cell a binding may
         hand it, transitively.  NOT an equivalence relation: two
         formals bound to the same pair of cells stay distinct, so one
         binding does not fuse its alternative targets. *)
  storage_h : Int_set.t array;  (* likewise, heap cells ([new]-site ids) *)
  steens_members : (int, int list) Hashtbl.t;  (* ECR root -> locs *)
  solver : solver;
  memo : (int * int, int list * int list) Hashtbl.t;
}

let tier t = t.tier
let prog t = t.prog
let n_heap t = t.n_heap
let heap_name t k = t.heap_names.(k)

(* Raw (pre-name-closure) cells of [*^d p], split vars / heap ids. *)
let raw_cells t p d =
  let nv = Prog.n_vars t.prog in
  let split locs =
    let vars = List.filter (fun l -> l < nv) locs in
    let heap = List.filter_map (fun l -> if l >= nv then Some (l - nv) else None) locs in
    (vars, heap)
  in
  match t.solver with
  | Sol_ander a -> split (Int_set.elements (Ander.cells a p d))
  | Sol_steens s ->
    let rec follow c k =
      if k = 0 then Some c
      else
        match Steens.pts_opt s c with
        | None -> None
        | Some c' -> follow c' (k - 1)
    in
    (match follow (Uf.find s.Steens.uf p) d with
    | None -> ([], [])
    | Some root ->
      split (match Hashtbl.find_opt t.steens_members root with
        | Some locs -> locs
        | None -> []))

let closed_cells t p d =
  match Hashtbl.find_opt t.memo (p, d) with
  | Some r -> r
  | None ->
    let vars, heap = raw_cells t p d in
    (* Storage the dereference may actually strike: the raw cells'
       own possible storage (a raw formal cell carries its binding
       sources along). *)
    let s =
      List.fold_left
        (fun acc v -> Int_set.union t.storage_v.(v) acc)
        Int_set.empty vars
    in
    let sh =
      List.fold_left
        (fun acc v -> Int_set.union t.storage_h.(v) acc)
        (Int_set.of_list heap) vars
    in
    (* A variable may name the dereferenced cell iff its possible
       storage meets that of the raw cells. *)
    let out = ref Int_set.empty in
    for v = 0 to Prog.n_vars t.prog - 1 do
      if
        (not (Int_set.is_empty (Int_set.inter t.storage_v.(v) s)))
        || not (Int_set.is_empty (Int_set.inter t.storage_h.(v) sh))
      then out := Int_set.add v !out
    done;
    let r = (Int_set.elements !out, Int_set.elements sh) in
    Hashtbl.replace t.memo (p, d) r;
    r

let deref_targets t p d = if Types.is_ptr (Prog.var t.prog p).Prog.vty then fst (closed_cells t p d) else []
let deref_heap t p d = if Types.is_ptr (Prog.var t.prog p).Prog.vty then snd (closed_cells t p d) else []
let deref t = deref_targets t

let may_overlap t (p, d1) (q, d2) =
  let v1, h1 = (deref_targets t p d1, deref_heap t p d1) in
  let v2, h2 = (deref_targets t q d2, deref_heap t q d2) in
  List.exists (fun x -> List.mem x v2) v1 || List.exists (fun k -> List.mem k h2) h1

let points_to t p =
  List.map (fun v -> `Var v) (deref_targets t p 1)
  @ List.map (fun k -> `Heap k) (deref_heap t p 1)

let size t =
  let nv = Prog.n_vars t.prog in
  let acc = ref 0 in
  for vid = 0 to nv - 1 do
    if Types.is_ptr (Prog.var t.prog vid).Prog.vty then
      acc := !acc + List.length (points_to t vid)
  done;
  !acc

let analyze ?(tier = Steensgaard) prog =
  let cstrs, n_heap, heap_names = extract prog in
  let nv = Prog.n_vars prog in
  let n_locs = nv + n_heap in
  (* Heap site [k] is loc [nv + k]; rewrite Rnew payloads to loc ids
     for the solvers. *)
  let heap_loc k = nv + k in
  let cstrs_loc =
    List.map
      (function
        | Flow (cell, Rnew k) -> Flow (cell, Raddr (heap_loc k))
        | c -> c)
      cstrs
  in
  let solver =
    match tier with
    | Steensgaard -> Sol_steens (Steens.solve n_locs cstrs_loc)
    | Andersen -> Sol_ander (Ander.solve n_locs cstrs_loc)
  in
  let steens_members = Hashtbl.create 64 in
  (match solver with
  | Sol_steens s ->
    for l = 0 to n_locs - 1 do
      let r = Uf.find s.Steens.uf l in
      Hashtbl.replace steens_members r
        (l :: Option.value ~default:[] (Hashtbl.find_opt steens_members r))
    done
  | Sol_ander _ -> ());
  let storage_v = Array.init nv Int_set.singleton in
  let storage_h = Array.make nv Int_set.empty in
  let t =
    {
      prog;
      tier;
      n_heap;
      heap_names;
      storage_v;
      storage_h;
      steens_members;
      solver;
      memo = Hashtbl.create 64;
    }
  in
  (* Seed each by-ref formal's possible storage with its binding
     sources: a [Bind_var] hands it the actual's cell, a [Bind_deref]
     any raw cell of the dereference.  Crucially this stays a per-node
     set, not an equivalence class — [call f(ref *r)] with
     [pts(r) = {x, y}] must not fuse [x] with [y]. *)
  List.iter
    (function
      | Bind_var (f, b) -> storage_v.(f) <- Int_set.add b storage_v.(f)
      | Bind_deref (f, p, d) ->
        let vars, heap = raw_cells t p d in
        storage_v.(f) <-
          List.fold_left (fun a v -> Int_set.add v a) storage_v.(f) vars;
        storage_h.(f) <-
          List.fold_left (fun a k -> Int_set.add k a) storage_h.(f) heap
      | Flow _ -> ())
    cstrs_loc;
  (* Transitive closure: if [f] may be bound to [g]'s cell and [g] to
     [x]'s, then [f] may be [x]'s storage. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to nv - 1 do
      let u =
        Int_set.fold
          (fun s acc -> Int_set.union storage_v.(s) acc)
          storage_v.(v) storage_v.(v)
      and uh =
        Int_set.fold
          (fun s acc -> Int_set.union storage_h.(s) acc)
          storage_v.(v) storage_h.(v)
      in
      if
        (not (Int_set.equal u storage_v.(v)))
        || not (Int_set.equal uh storage_h.(v))
      then begin
        storage_v.(v) <- u;
        storage_h.(v) <- uh;
        changed := true
      end
    done
  done;
  t

let pp ppf t =
  let prog = t.prog in
  let nv = Prog.n_vars prog in
  Format.fprintf ppf "@[<v>points-to (%s):@," (tier_name t.tier);
  for vid = 0 to nv - 1 do
    if Types.is_ptr (Prog.var prog vid).Prog.vty then begin
      let cells = points_to t vid in
      if cells <> [] then
        Format.fprintf ppf "  %s -> {%s}@,"
          (Ir.Pp.qualified_var_name prog vid)
          (String.concat ", "
             (List.map
                (function
                  | `Var v -> Ir.Pp.qualified_var_name prog v
                  | `Heap k -> t.heap_names.(k))
                cells))
    end
  done;
  Format.fprintf ppf "@]"
