(** Flow-insensitive points-to analysis over MiniProc pointers.

    The paper's framework (the call multigraph, β, [RMOD], [GMOD], the
    §5 alias pairs) is oblivious to {e how} a name comes to denote a
    storage cell; it only needs, for every dereference [*...*p], the
    set of variables that dereference may name.  This module computes
    that projection once, up front, so every downstream pass — local
    analysis, β construction, the §5 machinery — stays exactly the
    paper's linear-time algorithm with a slightly fatter input.

    {2 Abstract locations}

    One location per scalar variable, plus one {e heap summary}
    location per syntactic [new] site (numbered in program order).
    Arrays hold integers only, and MiniProc has no pointer-to-array or
    array-of-pointer types, so array cells never enter the pointer
    world.

    {2 The two tiers}

    - {e Steensgaard}: unification-based.  Every assignment [p := q]
      merges the targets of [p] and [q] into one equivalence class
      (almost-linear time, one pass over the program).
    - {e Andersen}: inclusion-based.  [p := q] only constrains
      [pts(p) ⊇ pts(q)]; solved to a least fixpoint by a worklist over
      copy edges and load/store constraints (cubic worst case, far more
      precise).

    Every Andersen points-to set is contained in the corresponding
    Steensgaard set — the generated-program test suite checks the
    induced alias pairs obey that inclusion program by program.

    {2 Storage closure}

    By-reference parameter passing makes two {e names} denote one cell:
    after [call q(x)] binding by-ref formal [f], [f] and [x] are the
    same storage.  Dereference targets must be closed under that
    relation — if [p] may point to [x] then [*p] may name [f] inside
    [q].  The closure tracks, per variable, the set of cells its
    storage {e may actually be} (itself, plus every binding source,
    transitively); a dereference then names every variable whose
    possible storage meets the raw cells'.  This is deliberately {e
    not} an equivalence relation: one formal bound to [x] at one site
    and [y] at another must not fuse [x] with [y], or Andersen's
    precision on exactly the programs that separate the tiers would be
    thrown away.  Both tiers share the construction, so the soundness
    oracle (the interpreter's observed dereference owners) can compare
    against either directly. *)

type tier = Steensgaard | Andersen

val tier_name : tier -> string
(** ["steensgaard"] / ["andersen"] — the [--ptsto] spelling. *)

val tier_of_string : string -> tier option

val has_pointers : Ir.Prog.t -> bool
(** Does any variable have a pointer type?  Dereferences, [&], [new]
    and pointer assignments all require pointer-typed variables, so
    [false] means the program is pointer-free and the analysis is the
    identity (callers skip it entirely: pointer-free runs stay
    bit-identical to a build without this module). *)

type t

val analyze : ?tier:tier -> Ir.Prog.t -> t
(** Solve the chosen tier (default [Steensgaard]) and the shared name
    equivalence.  Linear-ish in program size for Steensgaard; worklist
    fixpoint for Andersen. *)

val tier : t -> tier
val prog : t -> Ir.Prog.t

val n_heap : t -> int
(** Number of [new] sites (heap summary locations). *)

val heap_name : t -> int -> string
(** Display name of heap location [k]: ["new#k@proc"]. *)

val deref_targets : t -> int -> int -> int list
(** [deref_targets t p d]: every variable the [d]-fold dereference
    [*...*p] may name, closed under name equivalence, sorted ascending.
    Empty when [p] is not a pointer or the chain cannot reach variable
    storage.  This is the projection {!Frontend.Local},
    {!Callgraph.Binding} and the §5 seeding consume. *)

val deref_heap : t -> int -> int -> int list
(** Heap locations (by [new]-site id) the [d]-fold dereference may
    name, sorted ascending. *)

val deref : t -> int -> int -> int list
(** [deref t] is [deref_targets t] — shaped for the [?deref] parameters
    downstream. *)

val may_overlap : t -> int * int -> int * int -> bool
(** [may_overlap t (p, d1) (q, d2)]: may the cells named by the two
    dereferences overlap?  True iff their variable targets or their
    heap targets intersect — the formal/formal §5 seed test for two
    dereference actuals at one call site. *)

val points_to : t -> int -> [ `Var of int | `Heap of int ] list
(** Depth-1 cells of pointer variable [p] (its points-to set proper),
    variables first, each group sorted. *)

val size : t -> int
(** [Σ_p |points_to p|] over pointer variables — the standard precision
    metric (smaller is tighter; Andersen ≤ Steensgaard). *)

val pp : Format.formatter -> t -> unit
(** Human-readable listing: one [p -> {x, y, new#0@q}] line per
    pointer variable with a non-empty set. *)
