(* findgmod (Figure 2) tests: known answers, the correctness lemmas as
   runtime invariants, and equivalence with two independent baselines
   on random flat programs. *)

let gmod_of prog =
  let p = Helpers.pipeline prog in
  (p, Core.Gmod.solve p.Helpers.info p.Helpers.call ~imod_plus:p.Helpers.imod_plus)

let test_global_chain () =
  let prog = Workload.Families.global_chain 10 in
  let _, gmod = gmod_of prog in
  for i = 1 to 10 do
    Helpers.check_var_set prog
      (Printf.sprintf "GMOD(p%d)" i)
      [ "g0" ]
      gmod.(Helpers.proc_id prog (Printf.sprintf "p%d" i))
  done

let test_diamond () =
  let prog = Workload.Families.diamond () in
  let _, gmod = gmod_of prog in
  List.iter
    (fun name ->
      Helpers.check_var_set prog name [ "g0" ] gmod.(Helpers.proc_id prog name))
    [ "a"; "b"; "c" ]

let test_locals_do_not_escape () =
  let prog =
    Helpers.compile
      {|program m;
var g : int;
procedure worker();
var scratch : int;
begin
  scratch := 1;
  g := 2;
end;
procedure boss();
begin
  call worker();
end;
begin
  call boss();
end.|}
  in
  let _, gmod = gmod_of prog in
  Helpers.check_var_set prog "worker keeps its local" [ "g"; "worker.scratch" ]
    gmod.(Helpers.proc_id prog "worker");
  Helpers.check_var_set prog "boss sees only the global" [ "g" ]
    gmod.(Helpers.proc_id prog "boss")

let test_formals_projected_not_inherited () =
  (* A callee's modified formal appears in the caller's GMOD as the
     actual (via IMOD+), not as the callee's formal. *)
  let prog = Workload.Families.mutual_pair () in
  let p, gmod = gmod_of prog in
  ignore p;
  Helpers.check_var_set prog "main" [ "g0" ] gmod.(prog.Ir.Prog.main);
  Helpers.check_var_set prog "a" [ "a.x" ] gmod.(Helpers.proc_id prog "a");
  Helpers.check_var_set prog "b" [ "b.y" ] gmod.(Helpers.proc_id prog "b")

let test_self_recursion () =
  let prog =
    Helpers.compile
      {|program m;
var g : int;
procedure rec(var x : int);
begin
  g := g + 1;
  if g < 10 then
    call rec(x);
  end;
  x := 0;
end;
begin
  call rec(g);
end.|}
  in
  let _, gmod = gmod_of prog in
  Helpers.check_var_set prog "rec" [ "g"; "rec.x" ] gmod.(Helpers.proc_id prog "rec")

let test_vector_ops_linear () =
  (* The paper's Figure-2 bound, read off the Obs registry: findgmod
     performs O(N + E) bit-vector operations.  The constant absorbs the
     per-node seeding/copy-back vectors and the per-edge unions of the
     lowlink walk; 10 is generous (measured ratios sit around 3-4). *)
  List.iter
    (fun n ->
      let prog = Workload.Families.fortran_style ~seed:5 ~n in
      let p = Helpers.pipeline prog in
      let snap = Obs.Metric.snapshot () in
      ignore (Core.Gmod.solve p.Helpers.info p.Helpers.call
                ~imod_plus:p.Helpers.imod_plus);
      let vec_ops =
        match Obs.Metric.find "bitvec.vector_ops" with
        | Some h -> Obs.Metric.value_since ~since:snap h
        | None -> Alcotest.fail "bitvec.vector_ops not registered"
      in
      let size = Ir.Prog.n_procs prog + Ir.Prog.n_sites prog in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: vector ops %d <= 10*(N+E) = %d" n vec_ops (10 * size))
        true
        (vec_ops <= 10 * size))
    [ 50; 200; 800 ]

let test_word_ops_subquadratic () =
  (* With the hybrid representation and the compact escape universe,
     *word* ops (not just vector ops) must stay sub-quadratic on the
     scaling family: growth per size doubling well under the ~4x a
     dense full-universe representation gives.  On fortran_fixed
     (constant global population) the expectation is genuine linearity;
     fortran_style scales globals with n, so its summary-set output
     size — and any representation's word count — has a quadratic
     floor, pinned looser. *)
  let word_ops family ~seed ~n =
    let prog = family ~seed ~n in
    let p = Helpers.pipeline prog in
    let snap = Obs.Metric.snapshot () in
    ignore
      (Core.Gmod.solve p.Helpers.info p.Helpers.call
         ~imod_plus:p.Helpers.imod_plus);
    match Obs.Metric.find "bitvec.word_ops" with
    | Some h -> Obs.Metric.value_since ~since:snap h
    | None -> Alcotest.fail "bitvec.word_ops not registered"
  in
  List.iter
    (fun (name, family, ladder, ratio_max) ->
      let counts = List.map (fun n -> (n, word_ops family ~seed:7 ~n)) ladder in
      let rec check_ratios = function
        | (n0, w0) :: ((n1, w1) :: _ as rest) ->
          let r = float_of_int w1 /. float_of_int (max 1 w0) in
          Alcotest.(check bool)
            (Printf.sprintf "%s %d->%d: word ops %d -> %d (%.2fx <= %.2fx)" name
               n0 n1 w0 w1 r ratio_max)
            true (r <= ratio_max);
          check_ratios rest
        | _ -> ()
      in
      check_ratios counts)
    [
      (* 128 is pre-asymptotic for the fixed family: summary sets are
         still filling toward the 64-global ceiling, so the first
         doubling mixes set growth into the size growth. *)
      ("fortran_fixed", Workload.Families.fortran_fixed, [ 256; 512; 1024 ], 2.4);
      ("fortran_style", Workload.Families.fortran_style, [ 128; 256; 512; 1024 ], 2.6);
    ]

let test_hybrid_dense_identity () =
  (* The representation mode is a pure accounting/layout knob: a full
     analysis in legacy dense mode computes bit-identical summaries. *)
  let prog = Workload.Families.fortran_style ~seed:11 ~n:256 in
  let hybrid = Core.Analyze.run prog in
  Bitvec.set_hybrid false;
  let dense =
    Fun.protect ~finally:(fun () -> Bitvec.set_hybrid true) (fun () ->
        Core.Analyze.run prog)
  in
  Alcotest.(check bool) "gmod identical" true
    (Array.for_all2 Bitvec.equal hybrid.Core.Analyze.gmod dense.Core.Analyze.gmod);
  Alcotest.(check bool) "guse identical" true
    (Array.for_all2 Bitvec.equal hybrid.Core.Analyze.guse dense.Core.Analyze.guse);
  Alcotest.(check bool) "imod_plus identical" true
    (Array.for_all2 Bitvec.equal hybrid.Core.Analyze.imod_plus
       dense.Core.Analyze.imod_plus)

(* --- equivalence properties --- *)

let prop_equals_iterative seed =
  let prog = Helpers.flat_of_seed seed in
  let p, gmod = gmod_of prog in
  Helpers.gmod_arrays_equal gmod
    (Baseline.Iterative.gmod p.Helpers.info p.Helpers.call
       ~imod_plus:p.Helpers.imod_plus)

let prop_equals_reachability seed =
  let prog = Helpers.flat_of_seed seed in
  let p, gmod = gmod_of prog in
  Helpers.gmod_arrays_equal gmod
    (Baseline.Reach.gmod p.Helpers.info p.Helpers.call ~imod_plus:p.Helpers.imod_plus)

(* --- the paper's invariants --- *)

let prop_contains_imod_plus seed =
  let prog = Helpers.flat_of_seed seed in
  let p, gmod = gmod_of prog in
  Array.for_all2 (fun seed_set g -> Bitvec.subset seed_set g)
    p.Helpers.imod_plus gmod

let prop_lemma2_on_tree_paths seed =
  (* Lemma 2 / eq (7): along DFS tree edges (p, q) of the call graph,
     GMOD[p] ⊇ GMOD[q] ∖ LOCAL[q].  True of the final sets for any
     edge; we check specifically the DFS tree edges from main. *)
  let prog = Helpers.flat_of_seed seed in
  let p, gmod = gmod_of prog in
  let g = p.Helpers.call.Callgraph.Call.graph in
  let t = Graphs.Dfs.run ~roots:[ prog.Ir.Prog.main ] g in
  let ok = ref true in
  Graphs.Digraph.iter_edges g (fun e src dst ->
      if t.Graphs.Dfs.pre.(src) >= 0 && t.Graphs.Dfs.kind.(e) = Graphs.Dfs.Tree then begin
        let escaped = Bitvec.copy gmod.(dst) in
        ignore
          (Bitvec.inter_into ~src:(Ir.Info.non_local p.Helpers.info dst) ~dst:escaped);
        if not (Bitvec.subset escaped gmod.(src)) then ok := false
      end);
  !ok

let prop_eq8_gmod_nonlocal_is_global seed =
  (* Equation (8): in a flat program the non-local part of GMOD[q] is
     exactly its global part. *)
  let prog = Helpers.flat_of_seed seed in
  let p, gmod = gmod_of prog in
  let ok = ref true in
  Array.iteri
    (fun pid g ->
      let nonlocal = Bitvec.inter g (Ir.Info.non_local p.Helpers.info pid) in
      let global = Bitvec.inter g (Ir.Info.global p.Helpers.info) in
      if not (Bitvec.equal nonlocal global) then ok := false)
    gmod;
  !ok

let prop_global_part_constant_on_sccs seed =
  (* Theorem 1's closing observation: GMOD ∩ GLOBAL is the same for
     every member of a call-graph SCC. *)
  let prog = Helpers.flat_of_seed seed in
  let p, gmod = gmod_of prog in
  let scc = Graphs.Scc.compute p.Helpers.call.Callgraph.Call.graph in
  let value = Array.make scc.Graphs.Scc.n_comps None in
  let ok = ref true in
  Array.iteri
    (fun pid g ->
      let global_part = Bitvec.inter g (Ir.Info.global p.Helpers.info) in
      let c = scc.Graphs.Scc.comp.(pid) in
      match value.(c) with
      | None -> value.(c) <- Some global_part
      | Some v -> if not (Bitvec.equal v global_part) then ok := false)
    gmod;
  !ok

let prop_monotone_under_new_edge seed =
  (* Adding a call site can only grow GMOD sets.  We simulate by
     comparing against the same program whose main gained extra call
     statements (append a call to every top-level procedure). *)
  let prog = Helpers.flat_of_seed seed in
  let _, gmod_before = gmod_of prog in
  (* Rebuild with extra sites from main to every proc. *)
  let main = Ir.Prog.proc prog prog.Ir.Prog.main in
  let n_sites = Ir.Prog.n_sites prog in
  let extra =
    List.filteri (fun i _ -> i > 0) (Array.to_list prog.Ir.Prog.procs)
    |> List.filter (fun (pr : Ir.Prog.proc) -> Array.length pr.Ir.Prog.formals = 0)
  in
  let new_sites =
    List.mapi
      (fun i (pr : Ir.Prog.proc) ->
        {
          Ir.Prog.sid = n_sites + i;
          caller = prog.Ir.Prog.main;
          callee = pr.Ir.Prog.pid;
          args = [||];
        })
      extra
  in
  let prog' =
    {
      prog with
      Ir.Prog.sites = Array.append prog.Ir.Prog.sites (Array.of_list new_sites);
      procs =
        Array.map
          (fun pr ->
            if pr.Ir.Prog.pid = prog.Ir.Prog.main then
              {
                main with
                Ir.Prog.body =
                  main.Ir.Prog.body
                  @ List.map (fun s -> Ir.Stmt.Call s.Ir.Prog.sid) new_sites;
              }
            else pr)
          prog.Ir.Prog.procs;
    }
  in
  (match Ir.Validate.run prog' with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "augmented program invalid");
  let _, gmod_after = gmod_of prog' in
  Array.for_all2 (fun before after -> Bitvec.subset before after) gmod_before
    gmod_after

let () =
  Helpers.run "gmod"
    [
      ( "families",
        [
          Alcotest.test_case "global chain" `Quick test_global_chain;
          Alcotest.test_case "diamond with cross edges" `Quick test_diamond;
          Alcotest.test_case "locals do not escape" `Quick test_locals_do_not_escape;
          Alcotest.test_case "formals stay with their owner" `Quick
            test_formals_projected_not_inherited;
          Alcotest.test_case "self recursion" `Quick test_self_recursion;
          Alcotest.test_case "linear vector-op count via registry" `Quick
            test_vector_ops_linear;
          Alcotest.test_case "sub-quadratic word-op count via registry" `Quick
            test_word_ops_subquadratic;
          Alcotest.test_case "hybrid = dense full analysis" `Quick
            test_hybrid_dense_identity;
        ] );
      ( "equivalence",
        [
          Helpers.qtest "findgmod = iterative eq(4)" Helpers.arb_flat_prog
            prop_equals_iterative;
          Helpers.qtest "findgmod = reachability closed form" Helpers.arb_flat_prog
            prop_equals_reachability;
        ] );
      ( "paper invariants",
        [
          Helpers.qtest "GMOD contains IMOD+" Helpers.arb_flat_prog
            prop_contains_imod_plus;
          Helpers.qtest "lemma 2 on DFS tree edges" Helpers.arb_flat_prog
            prop_lemma2_on_tree_paths;
          Helpers.qtest "eq (8): nonlocal part = global part" Helpers.arb_flat_prog
            prop_eq8_gmod_nonlocal_is_global;
          Helpers.qtest "global part constant on SCCs" Helpers.arb_flat_prog
            prop_global_part_constant_on_sccs;
          Helpers.qtest ~count:40 "monotone under added calls" Helpers.arb_flat_prog
            prop_monotone_under_new_edge;
        ] );
    ]
