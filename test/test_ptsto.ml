(* Points-to property tests: Andersen refines Steensgaard on every
   generated pointer program, both tiers are sound against the
   interpreter's dynamic dereference/alias oracle, and pointer-free
   programs analyze bit-identically with the pass on or off. *)

module P = Ir.Prog
module A = Core.Analyze

(* A seeded random pointer program.  The prologue aims every pointer at
   a distinct global, so each later statement is valid whatever prefix
   the generator picked: pointer assignments only replace one valid
   pointer value with another ([&g], a copy, [new int]), so no
   dereference ever sees an uninitialized cell.  Note the space after
   the paren in deref call actuals — paren-star opens a MiniProc
   comment (LANGUAGE.md). *)
let ptr_src_of_seed seed =
  let st = Random.State.make [| seed; 0x9e37 |] in
  let n_stmts = 6 + Random.State.int st 20 in
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "program gen%d;\n" seed;
  add "var g0, g1, g2, g3 : int;\n";
  add "var p0, p1, p2, p3 : ptr of int;\n";
  add "var pp : ptr of ptr of int;\n";
  add "\nprocedure bump(var c : int);\nbegin\n  c := c + 1;\nend;\n";
  add "\nprocedure mix(var c : int; var d : int);\nbegin\n  c := c + d;\nend;\n";
  add "\nbegin\n";
  for i = 0 to 3 do
    add "  p%d := &g%d;\n" i i
  done;
  add "  pp := &p0;\n";
  for _ = 1 to n_stmts do
    let p = Random.State.int st 4 and g = Random.State.int st 4 in
    match Random.State.int st 10 with
    | 0 -> add "  p%d := &g%d;\n" p g
    | 1 -> add "  p%d := p%d;\n" p (Random.State.int st 4)
    | 2 -> add "  p%d := new int;\n" p
    | 3 -> add "  *p%d := %d;\n" p (Random.State.int st 100)
    | 4 -> add "  g%d := *p%d;\n" g p
    | 5 -> add "  call bump( *p%d);\n" p
    | 6 -> add "  call mix( *p%d, g%d);\n" p g
    | 7 -> add "  pp := &p%d;\n" p
    | 8 -> add "  **pp := %d;\n" (Random.State.int st 100)
    | _ -> add "  g%d := g%d + %d;\n" g g (Random.State.int st 10)
  done;
  add "  write g0 + g1 + g2 + g3;\nend.\n";
  Buffer.contents buf

let ptr_prog_of_seed seed = Helpers.compile (ptr_src_of_seed seed)

let arb_ptr_prog =
  QCheck.make
    ~print:(fun seed ->
      Printf.sprintf "pointer seed %d:\n%s" seed (ptr_src_of_seed seed))
    QCheck.Gen.(0 -- 10_000)

let subset l1 l2 = List.for_all (fun x -> List.mem x l2) l1

let total_pairs t prog =
  let n = ref 0 in
  for pid = 0 to P.n_procs prog - 1 do
    n := !n + List.length (Core.Alias.pairs t.A.alias pid)
  done;
  !n

(* Andersen's solution is pointwise contained in Steensgaard's: raw
   points-to, every dereference projection, and the §5 pairs the
   projections induce. *)
let prop_andersen_refines seed =
  let prog = ptr_prog_of_seed seed in
  let s = Ptsto.analyze ~tier:Ptsto.Steensgaard prog in
  let a = Ptsto.analyze ~tier:Ptsto.Andersen prog in
  let ok = ref (Ptsto.size a <= Ptsto.size s) in
  for v = 0 to P.n_vars prog - 1 do
    for d = 1 to 2 do
      if
        (not (subset (Ptsto.deref_targets a v d) (Ptsto.deref_targets s v d)))
        || not (subset (Ptsto.deref_heap a v d) (Ptsto.deref_heap s v d))
      then ok := false
    done
  done;
  let ts = A.run ~ptsto:Ptsto.Steensgaard prog in
  let ta = A.run ~ptsto:Ptsto.Andersen prog in
  for pid = 0 to P.n_procs prog - 1 do
    if
      not
        (subset
           (Core.Alias.pairs ta.A.alias pid)
           (Core.Alias.pairs ts.A.alias pid))
    then ok := false
  done;
  !ok

(* The interpreter as oracle: every cell a dereference dynamically
   reached is statically predicted, every dynamic entry alias is a
   computed §5 pair. *)
let oracle_sound tier seed =
  let prog = ptr_prog_of_seed seed in
  let t = A.run ~ptsto:tier prog in
  match t.A.ptsto with
  | None -> false (* the generator always emits pointers *)
  | Some pt ->
    let o = Interp.run prog in
    List.for_all
      (fun (p, d, owner) ->
        if owner >= 0 then List.mem owner (Ptsto.deref_targets pt p d)
        else Ptsto.deref_heap pt p d <> [])
      o.Interp.ptr_obs
    && List.for_all
         (fun (pid, x, y) -> Core.Alias.may_alias t.A.alias ~proc:pid x y)
         o.Interp.alias_obs

(* Pointer-free programs never run the solver and are bit-identical
   under either tier flag. *)
let prop_pointer_free_identical seed =
  let prog = Helpers.flat_of_seed seed in
  (not (Ptsto.has_pointers prog))
  &&
  let a = A.run prog in
  let b = A.run ~ptsto:Ptsto.Andersen prog in
  a.A.ptsto = None && b.A.ptsto = None
  && Helpers.gmod_arrays_equal a.A.gmod b.A.gmod
  && Helpers.gmod_arrays_equal a.A.guse b.A.guse
  &&
  let same = ref true in
  for pid = 0 to P.n_procs prog - 1 do
    if Core.Alias.pairs a.A.alias pid <> Core.Alias.pairs b.A.alias pid then
      same := false
  done;
  !same

(* The acceptance separation: on the funnel family Andersen keeps the
   per-pointer targets apart that Steensgaard's unification merges, so
   it proves strictly fewer §5 pairs. *)
let test_funnel_separation () =
  let prog = Workload.Families.ptr_funnel 6 in
  let ns = total_pairs (A.run ~ptsto:Ptsto.Steensgaard prog) prog in
  let na = total_pairs (A.run ~ptsto:Ptsto.Andersen prog) prog in
  Alcotest.(check bool)
    (Printf.sprintf "andersen (%d) < steensgaard (%d)" na ns)
    true (na < ns)

let test_families_sound () =
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun tier ->
          let t = A.run ~ptsto:tier prog in
          let pt = Option.get t.A.ptsto in
          let o = Interp.run prog in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s ptr_obs" name (Ptsto.tier_name tier))
            true
            (List.for_all
               (fun (p, d, owner) ->
                 if owner >= 0 then List.mem owner (Ptsto.deref_targets pt p d)
                 else Ptsto.deref_heap pt p d <> [])
               o.Interp.ptr_obs);
          Alcotest.(check bool)
            (Printf.sprintf "%s %s alias_obs" name (Ptsto.tier_name tier))
            true
            (List.for_all
               (fun (pid, x, y) ->
                 Core.Alias.may_alias t.A.alias ~proc:pid x y)
               o.Interp.alias_obs))
        [ Ptsto.Steensgaard; Ptsto.Andersen ])
    [
      ("ptr_chain", Workload.Families.ptr_chain 8);
      ("ptr_heap", Workload.Families.ptr_heap 8);
      ("ptr_funnel", Workload.Families.ptr_funnel 8);
    ]

let () =
  Helpers.run "ptsto"
    [
      ( "properties",
        [
          Helpers.qtest "andersen ⊆ steensgaard" arb_ptr_prog
            prop_andersen_refines;
          Helpers.qtest "steensgaard sound vs interpreter" arb_ptr_prog
            (oracle_sound Ptsto.Steensgaard);
          Helpers.qtest "andersen sound vs interpreter" arb_ptr_prog
            (oracle_sound Ptsto.Andersen);
          Helpers.qtest "pointer-free programs identical" Helpers.arb_flat_prog
            prop_pointer_free_identical;
        ] );
      ( "families",
        [
          Alcotest.test_case "funnel: andersen strictly refines" `Quick
            test_funnel_separation;
          Alcotest.test_case "pointer families sound, both tiers" `Quick
            test_families_sound;
        ] );
    ]
