(* Shared test utilities: compilation shorthands, set comparisons by
   variable name, program arbitraries for qcheck, and the analysis
   pipeline broken into reusable pieces. *)

let compile src = Frontend.Sema.compile_exn ~file:"<test>" src

let compile_errors src =
  match Frontend.Sema.compile ~file:"<test>" src with
  | Ok _ -> []
  | Error errs -> List.map (fun e -> e.Frontend.Sema.msg) errs

(* Variable lookup by qualified name: "x" for a global, "p.x" for p's
   variable as p's body sees it. *)
let var_id prog qname =
  match String.index_opt qname '.' with
  | None -> (
    match Ir.Prog.find_var prog ~proc:prog.Ir.Prog.main qname with
    | Some v -> v.Ir.Prog.vid
    | None -> Alcotest.failf "no such global: %s" qname)
  | Some i ->
    let pname = String.sub qname 0 i in
    let vname = String.sub qname (i + 1) (String.length qname - i - 1) in
    let proc =
      match Ir.Prog.find_proc prog pname with
      | Some p -> p.Ir.Prog.pid
      | None -> Alcotest.failf "no such procedure: %s" pname
    in
    (match Ir.Prog.find_var prog ~proc vname with
    | Some v -> v.Ir.Prog.vid
    | None -> Alcotest.failf "no such variable: %s" qname)

let proc_id prog name =
  match Ir.Prog.find_proc prog name with
  | Some p -> p.Ir.Prog.pid
  | None -> Alcotest.failf "no such procedure: %s" name

(* Compare a bit vector against an expected list of qualified names. *)
let check_var_set prog msg expected actual =
  let expected_ids = List.sort_uniq compare (List.map (var_id prog) expected) in
  let actual_ids = Bitvec.to_list actual in
  if expected_ids <> actual_ids then
    Alcotest.failf "%s:@ expected %a,@ got %a" msg
      (Fmt.Dump.list Fmt.string)
      expected (Ir.Pp.pp_var_set prog) actual

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The pipeline, piecewise, so tests can interrogate intermediates. *)
type pipeline = {
  prog : Ir.Prog.t;
  info : Ir.Info.t;
  call : Callgraph.Call.t;
  binding : Callgraph.Binding.t;
  imod : Bitvec.t array;
  rmod : Core.Rmod.result;
  imod_plus : Bitvec.t array;
}

let pipeline prog =
  let info = Ir.Info.make prog in
  let call = Callgraph.Call.build prog in
  let binding = Callgraph.Binding.build prog in
  let imod = Frontend.Local.imod info in
  let rmod = Core.Rmod.solve binding ~imod in
  let imod_plus = Core.Imod_plus.compute info ~rmod ~imod in
  { prog; info; call; binding; imod; rmod; imod_plus }

(* qcheck arbitraries: random programs indexed by seed, so failures
   reproduce from the printed seed. *)
let arb_flat_prog =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "flat seed %d" seed)
    QCheck.Gen.(0 -- 10_000)

let flat_of_seed ?(n = 40) seed = Workload.Families.fortran_style ~seed ~n

let arb_nested_prog =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "nested seed %d" seed)
    QCheck.Gen.(0 -- 10_000)

let nested_of_seed ?(n = 40) ?(depth = 4) seed =
  Workload.Families.pascal_style ~seed ~n ~depth

(* Replayable property tests: the generator seed comes from the
   QCHECK_SEED environment variable when set, and is printed on any
   failure so `QCHECK_SEED=n dune runtest` reproduces the exact run. *)
let qcheck_seed =
  lazy
    (match Sys.getenv_opt "QCHECK_SEED" with
    | Some s -> (
      match int_of_string_opt s with
      | Some i -> i
      | None -> Fmt.failwith "QCHECK_SEED must be an integer, got %S" s)
    | None ->
      Random.self_init ();
      Random.int 1_000_000_000)

let qtest ?(count = 100) name arb prop =
  let seed = Lazy.force qcheck_seed in
  let announced = ref false in
  let announce () =
    if not !announced then (
      announced := true;
      Printf.eprintf "[qcheck] %s failed; replay with QCHECK_SEED=%d\n%!" name
        seed)
  in
  let prop x =
    match prop x with
    | true -> true
    | false ->
      announce ();
      false
    | exception e ->
      announce ();
      raise e
  in
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| seed |])
    (QCheck.Test.make ~count ~name arb prop)

(* Directed tests that need randomness must thread the same replayable
   seed as the property tests: a fixed literal state would silently opt
   out of QCHECK_SEED.  [salt] decorrelates streams within one run. *)
let seeded_state ~salt = Random.State.make [| Lazy.force qcheck_seed; salt |]

(* A directed test case drawing from a seeded state; any failure
   (alcotest check or stray exception) reports the effective seed so
   `QCHECK_SEED=n dune runtest` reproduces it exactly. *)
let seeded_case name speed f =
  Alcotest.test_case name speed (fun () ->
      let salt = Hashtbl.hash name in
      try f (seeded_state ~salt)
      with e ->
        Printf.eprintf "[seeded] %s failed; replay with QCHECK_SEED=%d\n%!" name
          (Lazy.force qcheck_seed);
        raise e)

let gmod_arrays_equal a b = Array.for_all2 Bitvec.equal a b

let run name suites = Alcotest.run ~verbose:false name suites
