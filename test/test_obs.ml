(* Obs telemetry tests: registry semantics, snapshot/delta arithmetic,
   span nesting, JSON encode/parse round trips, and the "tracing off
   costs nothing" guarantee the benchmarks rely on. *)

(* --- metric registry --- *)

let test_registry_basics () =
  let c = Obs.Metric.counter "test.obs.counter" in
  let g = Obs.Metric.gauge "test.obs.gauge" in
  Helpers.check_int "fresh counter" 0 (Obs.Metric.value c);
  Obs.Metric.incr c;
  Obs.Metric.add c 41;
  Helpers.check_int "incr + add" 42 (Obs.Metric.value c);
  Obs.Metric.set g 7;
  Obs.Metric.set g 5;
  Helpers.check_int "gauge last write wins" 5 (Obs.Metric.value g);
  Alcotest.(check string) "name" "test.obs.counter" (Obs.Metric.name c);
  Helpers.check_bool "kind" true (Obs.Metric.kind c = Obs.Metric.Counter);
  (* Re-registration returns the same handle, value preserved. *)
  let c' = Obs.Metric.counter "test.obs.counter" in
  Helpers.check_int "same handle" 42 (Obs.Metric.value c');
  Helpers.check_bool "find" true (Obs.Metric.find "test.obs.counter" <> None);
  Helpers.check_bool "find absent" true (Obs.Metric.find "test.obs.absent" = None);
  (* A name cannot change kind. *)
  Helpers.check_bool "kind clash raises" true
    (try
       ignore (Obs.Metric.gauge "test.obs.counter");
       false
     with Invalid_argument _ -> true)

let test_snapshot_delta () =
  let c = Obs.Metric.counter "test.obs.delta_counter" in
  let g = Obs.Metric.gauge "test.obs.delta_gauge" in
  Obs.Metric.add c 10;
  Obs.Metric.set g 100;
  let snap = Obs.Metric.snapshot () in
  Obs.Metric.add c 5;
  Obs.Metric.set g 103;
  Helpers.check_int "counter delta" 5 (Obs.Metric.value_since ~since:snap c);
  Helpers.check_int "gauge delta" 3 (Obs.Metric.value_since ~since:snap g);
  let d = Obs.Metric.delta ~since:snap in
  Helpers.check_int "delta lists counter" 5 (List.assoc "test.obs.delta_counter" d);
  (* A metric registered after the snapshot counts from zero. *)
  let late = Obs.Metric.counter "test.obs.late_counter" in
  Obs.Metric.add late 9;
  Helpers.check_int "late metric counts from 0" 9
    (Obs.Metric.value_since ~since:snap late);
  (* Snapshots are independent: reading one does not disturb another. *)
  let snap2 = Obs.Metric.snapshot () in
  Obs.Metric.add c 2;
  Helpers.check_int "outer snapshot unaffected" 7
    (Obs.Metric.value_since ~since:snap c);
  Helpers.check_int "inner snapshot" 2 (Obs.Metric.value_since ~since:snap2 c)

(* --- spans --- *)

let test_span_nesting () =
  let c = Obs.Metric.counter "test.obs.span_counter" in
  let (), root =
    Obs.Span.collect "root" @@ fun () ->
    Obs.Metric.add c 1;
    Obs.Span.with_ "child_a" (fun () -> Obs.Metric.add c 10);
    Obs.Span.with_ "child_b" (fun () ->
        Obs.Metric.add c 100;
        Obs.Span.with_ "grandchild" (fun () -> Obs.Metric.add c 1000))
  in
  Alcotest.(check string) "root name" "root" root.Obs.Span.name;
  Alcotest.(check (list string))
    "children in completion order" [ "child_a"; "child_b" ]
    (List.map (fun s -> s.Obs.Span.name) root.Obs.Span.children);
  Helpers.check_int "root sees all increments" 1111
    (Obs.Span.metric root "test.obs.span_counter");
  (match Obs.Span.find root "grandchild" with
  | None -> Alcotest.fail "grandchild not found"
  | Some s ->
    Helpers.check_int "grandchild sees its own" 1000
      (Obs.Span.metric s "test.obs.span_counter"));
  (match Obs.Span.find root "child_b" with
  | None -> Alcotest.fail "child_b not found"
  | Some s ->
    Helpers.check_int "child_b includes grandchild" 1100
      (Obs.Span.metric s "test.obs.span_counter"));
  Helpers.check_bool "elapsed is non-negative" true (root.Obs.Span.elapsed >= 0.)

let test_span_disabled_records_nothing () =
  Helpers.check_bool "tracing starts disabled" false (Obs.Span.enabled ());
  let r = Obs.Span.with_ "ghost" (fun () -> 17) in
  Helpers.check_int "value passes through" 17 r;
  Helpers.check_bool "nothing recorded" true (Obs.Span.drain () = [])

let test_span_exception_still_closes () =
  let (), root =
    Obs.Span.collect "outer" @@ fun () ->
    try Obs.Span.with_ "thrower" (fun () -> failwith "boom")
    with Failure _ -> ()
  in
  Helpers.check_bool "thrower recorded as child" true
    (Obs.Span.find root "thrower" <> None)

let test_collect_isolated () =
  (* collect inside an enabled trace must not leak spans in or out. *)
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Span.set_enabled false;
      ignore (Obs.Span.drain ()))
  @@ fun () ->
  Obs.Span.with_ "ambient" (fun () -> ());
  let (), inner = Obs.Span.collect "island" (fun () -> Obs.Span.with_ "i" ignore) in
  Helpers.check_bool "island has its child" true (Obs.Span.find inner "i" <> None);
  Helpers.check_bool "tracing state restored" true (Obs.Span.enabled ());
  let roots = List.map (fun s -> s.Obs.Span.name) (Obs.Span.drain ()) in
  Helpers.check_bool "ambient kept, island not duplicated" true
    (roots = [ "ambient" ])

(* --- the no-cost-when-off guarantee --- *)

let test_tracing_off_op_identical () =
  (* The acceptance bar for instrumenting the solvers: an analyze run
     with tracing off performs exactly the same counted operations as
     one with tracing on (spans read counters; they never add to them). *)
  let prog = Workload.Families.fortran_style ~seed:11 ~n:30 in
  let counters_only d =
    (* Gauges report levels, not work: a second identical run re-sets
       them to the value they already hold, so only counter deltas are
       comparable across runs. *)
    List.filter
      (fun (name, _) ->
        match Obs.Metric.find name with
        | Some h -> Obs.Metric.kind h = Obs.Metric.Counter
        | None -> false)
      d
  in
  let measure () =
    let snap = Obs.Metric.snapshot () in
    ignore (Core.Analyze.run prog);
    counters_only (Obs.Metric.delta ~since:snap)
  in
  let off = measure () in
  let (on_delta, _span) = Obs.Span.collect "traced" measure in
  Helpers.check_bool "some ops counted" true
    (List.exists (fun (_, v) -> v > 0) off);
  List.iter2
    (fun (name, a) (name', b) ->
      Alcotest.(check string) "same metric order" name name';
      Helpers.check_int (Printf.sprintf "%s identical on/off" name) a b)
    off on_delta

(* --- JSON --- *)

let sample_values =
  [
    Obs.Json.Null;
    Obs.Json.Bool true;
    Obs.Json.Bool false;
    Obs.Json.Int 0;
    Obs.Json.Int (-42);
    Obs.Json.Int max_int;
    Obs.Json.Float 0.25;
    Obs.Json.Float 1e-9;
    Obs.Json.Float (-3.5e20);
    Obs.Json.String "";
    Obs.Json.String "plain";
    Obs.Json.String "esc \" \\ \n \t \x01 \x7f";
    Obs.Json.List [];
    Obs.Json.Obj [];
    Obs.Json.List [ Obs.Json.Int 1; Obs.Json.List [ Obs.Json.Null ] ];
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 1);
        ("b", Obs.Json.Obj [ ("nested", Obs.Json.Bool false) ]);
        ("empty key", Obs.Json.String "x");
      ];
  ]

let test_json_round_trip () =
  List.iter
    (fun j ->
      let s = Obs.Json.to_string j in
      match Obs.Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j' ->
        Alcotest.(check string)
          (Printf.sprintf "stable re-encode of %s" s)
          s (Obs.Json.to_string j'))
    sample_values

let test_json_parse_standard () =
  (* Inputs we do not generate but must accept. *)
  List.iter
    (fun (s, expect) ->
      match Obs.Json.parse s with
      | Ok j -> Alcotest.(check string) s expect (Obs.Json.to_string j)
      | Error e -> Alcotest.failf "parse %s: %s" s e)
    [
      ("  [ 1 , 2 ]  ", "[1,2]");
      ("{\"k\" :\ttrue}", "{\"k\":true}");
      ("\"\\u0041\\u00e9\"", Obs.Json.to_string (Obs.Json.String "A\xc3\xa9"));
      ("1e3", Obs.Json.to_string (Obs.Json.Float 1000.));
      ("-0.5", Obs.Json.to_string (Obs.Json.Float (-0.5)));
    ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "{\"a\":}"; "[1] trailing" ]

let test_json_member () =
  let j = Obs.Json.Obj [ ("x", Obs.Json.Int 1) ] in
  Helpers.check_bool "member hit" true (Obs.Json.member "x" j = Some (Obs.Json.Int 1));
  Helpers.check_bool "member miss" true (Obs.Json.member "y" j = None);
  Helpers.check_bool "member of non-obj" true
    (Obs.Json.member "x" (Obs.Json.Int 3) = None)

let test_trace_json_shape () =
  let (), span = Obs.Span.collect "shape" (fun () -> Obs.Span.with_ "kid" ignore) in
  let j = Obs.trace_json [ span ] in
  let s = Obs.Json.to_string j in
  (match Obs.Json.parse s with
  | Error e -> Alcotest.failf "trace json reparses: %s" e
  | Ok j' -> Alcotest.(check string) "stable" s (Obs.Json.to_string j'));
  match j with
  | Obs.Json.List [ root ] ->
    List.iter
      (fun key ->
        Helpers.check_bool (key ^ " present") true (Obs.Json.member key root <> None))
      [ "name"; "elapsed_s"; "metrics"; "children" ]
  | _ -> Alcotest.fail "trace_json is a list of roots"

let () =
  Helpers.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_basics;
          Alcotest.test_case "snapshot/delta" `Quick test_snapshot_delta;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and attribution" `Quick test_span_nesting;
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "exception still closes" `Quick
            test_span_exception_still_closes;
          Alcotest.test_case "collect is isolated" `Quick test_collect_isolated;
          Alcotest.test_case "tracing off is op-identical" `Quick
            test_tracing_off_op_identical;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip is stable" `Quick test_json_round_trip;
          Alcotest.test_case "accepts standard inputs" `Quick test_json_parse_standard;
          Alcotest.test_case "rejects malformed inputs" `Quick test_json_parse_errors;
          Alcotest.test_case "member lookup" `Quick test_json_member;
          Alcotest.test_case "trace_json shape" `Quick test_trace_json_shape;
        ] );
    ]
