(* Obs telemetry tests: registry semantics, snapshot/delta arithmetic,
   span nesting, JSON encode/parse round trips, and the "tracing off
   costs nothing" guarantee the benchmarks rely on. *)

(* --- metric registry --- *)

let test_registry_basics () =
  let c = Obs.Metric.counter "test.obs.counter" in
  let g = Obs.Metric.gauge "test.obs.gauge" in
  Helpers.check_int "fresh counter" 0 (Obs.Metric.value c);
  Obs.Metric.incr c;
  Obs.Metric.add c 41;
  Helpers.check_int "incr + add" 42 (Obs.Metric.value c);
  Obs.Metric.set g 7;
  Obs.Metric.set g 5;
  Helpers.check_int "gauge last write wins" 5 (Obs.Metric.value g);
  Alcotest.(check string) "name" "test.obs.counter" (Obs.Metric.name c);
  Helpers.check_bool "kind" true (Obs.Metric.kind c = Obs.Metric.Counter);
  (* Re-registration returns the same handle, value preserved. *)
  let c' = Obs.Metric.counter "test.obs.counter" in
  Helpers.check_int "same handle" 42 (Obs.Metric.value c');
  Helpers.check_bool "find" true (Obs.Metric.find "test.obs.counter" <> None);
  Helpers.check_bool "find absent" true (Obs.Metric.find "test.obs.absent" = None);
  (* A name cannot change kind. *)
  Helpers.check_bool "kind clash raises" true
    (try
       ignore (Obs.Metric.gauge "test.obs.counter");
       false
     with Invalid_argument _ -> true)

let test_snapshot_delta () =
  let c = Obs.Metric.counter "test.obs.delta_counter" in
  let g = Obs.Metric.gauge "test.obs.delta_gauge" in
  Obs.Metric.add c 10;
  Obs.Metric.set g 100;
  let snap = Obs.Metric.snapshot () in
  Obs.Metric.add c 5;
  Obs.Metric.set g 103;
  Helpers.check_int "counter delta" 5 (Obs.Metric.value_since ~since:snap c);
  Helpers.check_int "gauge delta" 3 (Obs.Metric.value_since ~since:snap g);
  let d = Obs.Metric.delta ~since:snap in
  Helpers.check_int "delta lists counter" 5 (List.assoc "test.obs.delta_counter" d);
  (* A metric registered after the snapshot counts from zero. *)
  let late = Obs.Metric.counter "test.obs.late_counter" in
  Obs.Metric.add late 9;
  Helpers.check_int "late metric counts from 0" 9
    (Obs.Metric.value_since ~since:snap late);
  (* Snapshots are independent: reading one does not disturb another. *)
  let snap2 = Obs.Metric.snapshot () in
  Obs.Metric.add c 2;
  Helpers.check_int "outer snapshot unaffected" 7
    (Obs.Metric.value_since ~since:snap c);
  Helpers.check_int "inner snapshot" 2 (Obs.Metric.value_since ~since:snap2 c)

(* --- spans --- *)

let test_span_nesting () =
  let c = Obs.Metric.counter "test.obs.span_counter" in
  let (), root =
    Obs.Span.collect "root" @@ fun () ->
    Obs.Metric.add c 1;
    Obs.Span.with_ "child_a" (fun () -> Obs.Metric.add c 10);
    Obs.Span.with_ "child_b" (fun () ->
        Obs.Metric.add c 100;
        Obs.Span.with_ "grandchild" (fun () -> Obs.Metric.add c 1000))
  in
  Alcotest.(check string) "root name" "root" root.Obs.Span.name;
  Alcotest.(check (list string))
    "children in completion order" [ "child_a"; "child_b" ]
    (List.map (fun s -> s.Obs.Span.name) root.Obs.Span.children);
  Helpers.check_int "root sees all increments" 1111
    (Obs.Span.metric root "test.obs.span_counter");
  (match Obs.Span.find root "grandchild" with
  | None -> Alcotest.fail "grandchild not found"
  | Some s ->
    Helpers.check_int "grandchild sees its own" 1000
      (Obs.Span.metric s "test.obs.span_counter"));
  (match Obs.Span.find root "child_b" with
  | None -> Alcotest.fail "child_b not found"
  | Some s ->
    Helpers.check_int "child_b includes grandchild" 1100
      (Obs.Span.metric s "test.obs.span_counter"));
  Helpers.check_bool "elapsed is non-negative" true (root.Obs.Span.elapsed >= 0.)

let test_span_disabled_records_nothing () =
  Helpers.check_bool "tracing starts disabled" false (Obs.Span.enabled ());
  let r = Obs.Span.with_ "ghost" (fun () -> 17) in
  Helpers.check_int "value passes through" 17 r;
  Helpers.check_bool "nothing recorded" true (Obs.Span.drain () = [])

let test_span_exception_still_closes () =
  let (), root =
    Obs.Span.collect "outer" @@ fun () ->
    try Obs.Span.with_ "thrower" (fun () -> failwith "boom")
    with Failure _ -> ()
  in
  Helpers.check_bool "thrower recorded as child" true
    (Obs.Span.find root "thrower" <> None)

let test_collect_isolated () =
  (* collect inside an enabled trace must not leak spans in or out. *)
  Obs.Span.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Obs.Span.set_enabled false;
      ignore (Obs.Span.drain ()))
  @@ fun () ->
  Obs.Span.with_ "ambient" (fun () -> ());
  let (), inner = Obs.Span.collect "island" (fun () -> Obs.Span.with_ "i" ignore) in
  Helpers.check_bool "island has its child" true (Obs.Span.find inner "i" <> None);
  Helpers.check_bool "tracing state restored" true (Obs.Span.enabled ());
  let roots = List.map (fun s -> s.Obs.Span.name) (Obs.Span.drain ()) in
  Helpers.check_bool "ambient kept, island not duplicated" true
    (roots = [ "ambient" ])

(* --- the no-cost-when-off guarantee --- *)

let test_tracing_off_op_identical () =
  (* The acceptance bar for instrumenting the solvers: an analyze run
     with tracing off performs exactly the same counted operations as
     one with tracing on (spans read counters; they never add to them). *)
  let prog = Workload.Families.fortran_style ~seed:11 ~n:30 in
  let counters_only d =
    (* Gauges report levels, not work: a second identical run re-sets
       them to the value they already hold, so only counter deltas are
       comparable across runs. *)
    List.filter
      (fun (name, _) ->
        match Obs.Metric.find name with
        | Some h -> Obs.Metric.kind h = Obs.Metric.Counter
        | None -> false)
      d
  in
  let measure () =
    let snap = Obs.Metric.snapshot () in
    ignore (Core.Analyze.run prog);
    counters_only (Obs.Metric.delta ~since:snap)
  in
  let off = measure () in
  let (on_delta, _span) = Obs.Span.collect "traced" measure in
  Helpers.check_bool "some ops counted" true
    (List.exists (fun (_, v) -> v > 0) off);
  List.iter2
    (fun (name, a) (name', b) ->
      Alcotest.(check string) "same metric order" name name';
      Helpers.check_int (Printf.sprintf "%s identical on/off" name) a b)
    off on_delta

(* --- JSON --- *)

let sample_values =
  [
    Obs.Json.Null;
    Obs.Json.Bool true;
    Obs.Json.Bool false;
    Obs.Json.Int 0;
    Obs.Json.Int (-42);
    Obs.Json.Int max_int;
    Obs.Json.Float 0.25;
    Obs.Json.Float 1e-9;
    Obs.Json.Float (-3.5e20);
    Obs.Json.String "";
    Obs.Json.String "plain";
    Obs.Json.String "esc \" \\ \n \t \x01 \x7f";
    Obs.Json.List [];
    Obs.Json.Obj [];
    Obs.Json.List [ Obs.Json.Int 1; Obs.Json.List [ Obs.Json.Null ] ];
    Obs.Json.Obj
      [
        ("a", Obs.Json.Int 1);
        ("b", Obs.Json.Obj [ ("nested", Obs.Json.Bool false) ]);
        ("empty key", Obs.Json.String "x");
      ];
  ]

let test_json_round_trip () =
  List.iter
    (fun j ->
      let s = Obs.Json.to_string j in
      match Obs.Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok j' ->
        Alcotest.(check string)
          (Printf.sprintf "stable re-encode of %s" s)
          s (Obs.Json.to_string j'))
    sample_values

let test_json_parse_standard () =
  (* Inputs we do not generate but must accept. *)
  List.iter
    (fun (s, expect) ->
      match Obs.Json.parse s with
      | Ok j -> Alcotest.(check string) s expect (Obs.Json.to_string j)
      | Error e -> Alcotest.failf "parse %s: %s" s e)
    [
      ("  [ 1 , 2 ]  ", "[1,2]");
      ("{\"k\" :\ttrue}", "{\"k\":true}");
      ("\"\\u0041\\u00e9\"", Obs.Json.to_string (Obs.Json.String "A\xc3\xa9"));
      ("1e3", Obs.Json.to_string (Obs.Json.Float 1000.));
      ("-0.5", Obs.Json.to_string (Obs.Json.Float (-0.5)));
    ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "nul"; "\"unterminated"; "1 2"; "{\"a\":}"; "[1] trailing" ]

let test_json_member () =
  let j = Obs.Json.Obj [ ("x", Obs.Json.Int 1) ] in
  Helpers.check_bool "member hit" true (Obs.Json.member "x" j = Some (Obs.Json.Int 1));
  Helpers.check_bool "member miss" true (Obs.Json.member "y" j = None);
  Helpers.check_bool "member of non-obj" true
    (Obs.Json.member "x" (Obs.Json.Int 3) = None)

(* --- histograms --- *)

let test_histogram_buckets () =
  let h = Obs.Metric.histogram "test.obs.hist_buckets" in
  Alcotest.(check string) "name" "test.obs.hist_buckets" (Obs.Metric.hist_name h);
  Obs.Metric.observe_ns h 1;
  (* Re-registration returns the same histogram, observations kept. *)
  let h' = Obs.Metric.histogram "test.obs.hist_buckets" in
  Helpers.check_int "idempotent registration" 1 (Obs.Metric.hist_observations h');
  Obs.Metric.observe_ns h 0;
  Obs.Metric.observe_ns h (-5);
  Obs.Metric.observe_ns h 2;
  Obs.Metric.observe_ns h 3;
  Obs.Metric.observe_ns h 4;
  Obs.Metric.observe_ns h 1023;
  Obs.Metric.observe_ns h 1024;
  Helpers.check_int "observations" 8 (Obs.Metric.hist_observations h);
  Helpers.check_int "sum clamps negatives to zero" (1 + 2 + 3 + 4 + 1023 + 1024)
    (Obs.Metric.hist_sum_ns h);
  (* Bucket 0 is [0,2) (1, 0 and the clamped -5); bucket [i] is
     [2^i, 2^(i+1)), so 2 and 3 share a bucket, 1023 and 1024 do not. *)
  Alcotest.(check (list (pair int int)))
    "log2 bucket lower bounds, ascending"
    [ (0, 3); (2, 2); (4, 1); (512, 1); (1024, 1) ]
    (Obs.Metric.hist_nonzero_buckets h)

let test_histogram_quantiles () =
  let h = Obs.Metric.histogram "test.obs.hist_quantiles" in
  Helpers.check_int "empty histogram quantile" 0
    (Obs.Metric.hist_quantile_ns h 0.5);
  for _ = 1 to 10 do
    Obs.Metric.observe_ns h 1000
  done;
  (* The quantile is the containing bucket's conservative upper bound,
     so it never under-reports and is exact to one power of two. *)
  let q50 = Obs.Metric.hist_quantile_ns h 0.5 in
  Alcotest.(check bool)
    "q0.5 within one power of two of the sample"
    true
    (q50 >= 1000 && q50 <= 2047);
  (* Quantiles are monotone in q, and out-of-range q is clamped. *)
  Obs.Metric.observe_ns h 1_000_000;
  let q q' = Obs.Metric.hist_quantile_ns h q' in
  Alcotest.(check bool) "monotone in q" true (q 0.0 <= q 0.5 && q 0.5 <= q 0.99);
  Helpers.check_int "q>1 clamps to max" (q 1.0) (q 2.0);
  Helpers.check_int "q<0 clamps to min" (q 0.0) (q (-1.0));
  Alcotest.(check bool) "q1 covers the largest sample" true (q 1.0 >= 1_000_000)

let test_histogram_observe_seconds () =
  let h = Obs.Metric.histogram "test.obs.hist_seconds" in
  Obs.Metric.observe h 1.0;
  (* 1 s = 1e9 ns, which lives in [2^29, 2^30). *)
  Alcotest.(check (list (pair int int)))
    "one second lands in the 2^29 bucket"
    [ (536870912, 1) ]
    (Obs.Metric.hist_nonzero_buckets h);
  Helpers.check_int "sum in ns" 1_000_000_000 (Obs.Metric.hist_sum_ns h);
  Obs.Metric.observe h (-1.0);
  Helpers.check_int "negative seconds clamp" 1_000_000_000 (Obs.Metric.hist_sum_ns h);
  Helpers.check_bool "find_histogram hit" true
    (Obs.Metric.find_histogram "test.obs.hist_seconds" <> None);
  Helpers.check_bool "find_histogram miss" true
    (Obs.Metric.find_histogram "test.obs.hist_missing" = None);
  Helpers.check_bool "listed in registration order" true
    (List.exists
       (fun h -> Obs.Metric.hist_name h = "test.obs.hist_seconds")
       (Obs.Metric.histograms_in_order ()))

let test_histograms_json_shape () =
  let h = Obs.Metric.histogram "test.obs.hist_json" in
  Obs.Metric.observe_ns h 7;
  Obs.Metric.observe_ns h 7;
  let j = Obs.histograms_json () in
  let s = Obs.Json.to_string j in
  (match Obs.Json.parse s with
  | Error e -> Alcotest.failf "histograms_json reparses: %s" e
  | Ok j' -> Alcotest.(check string) "stable" s (Obs.Json.to_string j'));
  match Obs.Json.member "test.obs.hist_json" j with
  | None -> Alcotest.fail "histogram listed by name"
  | Some entry ->
    Helpers.check_bool "count" true
      (Obs.Json.member "count" entry = Some (Obs.Json.Int 2));
    Helpers.check_bool "sum_ns" true
      (Obs.Json.member "sum_ns" entry = Some (Obs.Json.Int 14));
    Helpers.check_bool "buckets as [lower, count] pairs" true
      (Obs.Json.member "buckets" entry
      = Some (Obs.Json.List [ Obs.Json.List [ Obs.Json.Int 4; Obs.Json.Int 2 ] ]))

(* --- GC-aware spans --- *)

let test_span_gc_fields () =
  let (), span =
    Obs.Span.collect "gc_span" (fun () ->
        (* Churn enough to make allocation visible without depending on
           collector scheduling for the assertions below. *)
        ignore (Sys.opaque_identity (Array.init 10_000 (fun i -> float_of_int i))))
  in
  let g = span.Obs.Span.gc in
  Helpers.check_bool "minor_collections delta >= 0" true (g.Obs.Span.minor_collections >= 0);
  Helpers.check_bool "major_collections delta >= 0" true (g.Obs.Span.major_collections >= 0);
  Helpers.check_bool "promoted_words delta >= 0" true (g.Obs.Span.promoted_words >= 0);
  Helpers.check_bool "top_heap_words absolute >= 0" true (g.Obs.Span.top_heap_words >= 0);
  Helpers.check_bool "start is a clock reading" true (span.Obs.Span.start >= 0.);
  (* trace_json carries the gc block per span. *)
  match Obs.trace_json [ span ] with
  | Obs.Json.List [ root ] ->
    (match Obs.Json.member "gc" root with
    | Some (Obs.Json.Obj fields) ->
      Alcotest.(check (list string))
        "gc field order"
        [ "minor_collections"; "major_collections"; "promoted_words"; "top_heap_words" ]
        (List.map fst fields)
    | _ -> Alcotest.fail "span json has a gc object");
    Helpers.check_bool "start_s serialised" true (Obs.Json.member "start_s" root <> None)
  | _ -> Alcotest.fail "trace_json is a list of roots"

(* --- trace-event export --- *)

let test_trace_events_shape () =
  let (), span =
    Obs.Span.collect "tev_root" (fun () -> Obs.Span.with_ "tev_kid" ignore)
  in
  let j = Obs.trace_events_json [ span ] in
  let s = Obs.Json.to_string j in
  (match Obs.Json.parse s with
  | Error e -> Alcotest.failf "trace_events_json reparses: %s" e
  | Ok j' -> Alcotest.(check string) "stable" s (Obs.Json.to_string j'));
  Helpers.check_bool "displayTimeUnit" true
    (Obs.Json.member "displayTimeUnit" j = Some (Obs.Json.String "ms"));
  match Obs.Json.member "traceEvents" j with
  | Some (Obs.Json.List events) ->
    Helpers.check_int "one complete event per span" 2 (List.length events);
    Alcotest.(check (list string))
      "pre-order: parent before child" [ "tev_root"; "tev_kid" ]
      (List.map
         (fun e ->
           match Obs.Json.member "name" e with
           | Some (Obs.Json.String n) -> n
           | _ -> "?")
         events);
    List.iter
      (fun e ->
        Helpers.check_bool "ph is X" true
          (Obs.Json.member "ph" e = Some (Obs.Json.String "X"));
        Helpers.check_bool "pid" true (Obs.Json.member "pid" e = Some (Obs.Json.Int 1));
        Helpers.check_bool "tid" true (Obs.Json.member "tid" e = Some (Obs.Json.Int 1));
        (match Obs.Json.member "ts" e with
        | Some (Obs.Json.Float ts) -> Helpers.check_bool "ts >= 0" true (ts >= 0.)
        | _ -> Alcotest.fail "ts is a float");
        (match Obs.Json.member "dur" e with
        | Some (Obs.Json.Float d) -> Helpers.check_bool "dur >= 0" true (d >= 0.)
        | _ -> Alcotest.fail "dur is a float");
        match Obs.Json.member "args" e with
        | Some (Obs.Json.Obj _ as args) ->
          List.iter
            (fun k ->
              Helpers.check_bool (k ^ " in args") true (Obs.Json.member k args <> None))
            [
              "gc.minor_collections";
              "gc.major_collections";
              "gc.promoted_words";
              "gc.top_heap_words";
            ]
        | _ -> Alcotest.fail "args is an object")
      events;
    (* Timestamps are relative to the earliest root: the root is at 0. *)
    (match Obs.Json.member "ts" (List.hd events) with
    | Some (Obs.Json.Float ts) -> Helpers.check_bool "root ts is 0" true (ts = 0.)
    | _ -> Alcotest.fail "root ts is a float")
  | _ -> Alcotest.fail "traceEvents is a list"

(* --- hostile names --- *)

let hostile = "evil \"name\" \\with\\ \n newline \t tab \x01 ctrl \x7f del"

let test_hostile_names_encode () =
  (* Every sink must survive metric, histogram and span names chosen to
     break naive JSON string emission. *)
  let c = Obs.Metric.counter ("test.obs.c " ^ hostile) in
  Obs.Metric.add c 3;
  let h = Obs.Metric.histogram ("test.obs.h " ^ hostile) in
  Obs.Metric.observe_ns h 5;
  let (), span =
    Obs.Span.collect hostile (fun () -> Obs.Span.with_ hostile ignore)
  in
  List.iter
    (fun (what, j) ->
      let s = Obs.Json.to_string j in
      match Obs.Json.parse s with
      | Error e -> Alcotest.failf "%s with hostile names reparses: %s" what e
      | Ok j' ->
        Alcotest.(check string) (what ^ " stable") s (Obs.Json.to_string j'))
    [
      ("metrics_json", Obs.metrics_json ());
      ("histograms_json", Obs.histograms_json ());
      ("trace_json", Obs.trace_json [ span ]);
      ("trace_events_json", Obs.trace_events_json [ span ]);
    ];
  (* The name round-trips as data, not just as syntax. *)
  match Obs.Json.parse (Obs.Json.to_string (Obs.Json.String hostile)) with
  | Ok (Obs.Json.String s) -> Alcotest.(check string) "lossless" hostile s
  | _ -> Alcotest.fail "hostile string round-trips"

let test_trace_json_shape () =
  let (), span = Obs.Span.collect "shape" (fun () -> Obs.Span.with_ "kid" ignore) in
  let j = Obs.trace_json [ span ] in
  let s = Obs.Json.to_string j in
  (match Obs.Json.parse s with
  | Error e -> Alcotest.failf "trace json reparses: %s" e
  | Ok j' -> Alcotest.(check string) "stable" s (Obs.Json.to_string j'));
  match j with
  | Obs.Json.List [ root ] ->
    List.iter
      (fun key ->
        Helpers.check_bool (key ^ " present") true (Obs.Json.member key root <> None))
      [ "name"; "elapsed_s"; "metrics"; "children" ]
  | _ -> Alcotest.fail "trace_json is a list of roots"

let () =
  Helpers.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick test_registry_basics;
          Alcotest.test_case "snapshot/delta" `Quick test_snapshot_delta;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and attribution" `Quick test_span_nesting;
          Alcotest.test_case "disabled records nothing" `Quick
            test_span_disabled_records_nothing;
          Alcotest.test_case "exception still closes" `Quick
            test_span_exception_still_closes;
          Alcotest.test_case "collect is isolated" `Quick test_collect_isolated;
          Alcotest.test_case "tracing off is op-identical" `Quick
            test_tracing_off_op_identical;
          Alcotest.test_case "gc and start fields" `Quick test_span_gc_fields;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "log2 buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "bucketed quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "observe in seconds" `Quick test_histogram_observe_seconds;
          Alcotest.test_case "json shape" `Quick test_histograms_json_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip is stable" `Quick test_json_round_trip;
          Alcotest.test_case "accepts standard inputs" `Quick test_json_parse_standard;
          Alcotest.test_case "rejects malformed inputs" `Quick test_json_parse_errors;
          Alcotest.test_case "member lookup" `Quick test_json_member;
          Alcotest.test_case "trace_json shape" `Quick test_trace_json_shape;
          Alcotest.test_case "trace-event export shape" `Quick test_trace_events_shape;
          Alcotest.test_case "hostile names encode safely" `Quick
            test_hostile_names_encode;
        ] );
    ]
