(* The lint engine: directed per-rule cases on minimal programs,
   determinism under rule order and worker count, an interpreter
   cross-check of the pure-proc verdict, and diagnostic deltas across
   incremental edits. *)

module D = Lint.Diagnostic
module E = Lint.Engine
module R = Lint.Rule

let pool4 = lazy (Par.Pool.create ~jobs:4)

let () =
  at_exit (fun () ->
      if Lazy.is_val pool4 then Par.Pool.shutdown (Lazy.force pool4))

let lint src =
  let prog = Helpers.compile src in
  (prog, E.run (Core.Analyze.run prog))

let has code scope fs =
  List.exists (fun d -> d.D.code = code && d.D.scope = scope) fs

let count code fs = List.length (List.filter (fun d -> d.D.code = code) fs)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- directed rule cases --- *)

let test_unused_formal () =
  let _, fs =
    lint
      {|program t1;
var g, h : int;

procedure p(var used : int; var dead : int);
begin
  used := used + 1;
end;

begin
  g := 0;
  call p(g, h);
  write g;
end.|}
  in
  Helpers.check_int "one SFX001" 1 (count "SFX001" fs);
  Helpers.check_bool "scope is p" true (has "SFX001" "p" fs);
  let d = List.find (fun d -> d.D.code = "SFX001") fs in
  Helpers.check_bool "names the formal" true (contains d.D.message "dead");
  (* 'used' is in both RMOD and RUSE, so it is not reported; and with
     distinct actuals nothing aliases. *)
  Helpers.check_int "no SFX004" 0 (count "SFX004" fs);
  Helpers.check_int "no SFX005" 0 (count "SFX005" fs)

let test_write_only_global () =
  let _, fs =
    lint
      {|program t2;
var sink, src : int;

procedure logit(x : int);
begin
  sink := x;
end;

begin
  src := 1;
  call logit(src);
end.|}
  in
  Helpers.check_int "one SFX002" 1 (count "SFX002" fs);
  let d = List.find (fun d -> d.D.code = "SFX002") fs in
  Helpers.check_bool "names sink" true (contains d.D.message "sink");
  Alcotest.(check string) "global scope is the program" "t2" d.D.scope;
  (* logit writes a global: not pure. *)
  Helpers.check_bool "logit not pure" false (has "SFX003" "logit" fs)

let test_pure_proc_io_masked () =
  let prog, fs =
    lint
      {|program t3;
var g : int;

procedure pure_inc(var x : int);
begin
  x := x + 1;
end;

procedure noisy(var x : int);
begin
  write x;
end;

procedure wraps(var x : int);
begin
  call noisy(x);
end;

begin
  g := 0;
  call pure_inc(g);
  call wraps(g);
  write g;
end.|}
  in
  Helpers.check_bool "pure_inc flagged" true (has "SFX003" "pure_inc" fs);
  Helpers.check_bool "direct I/O masked" false (has "SFX003" "noisy" fs);
  Helpers.check_bool "transitive I/O masked" false (has "SFX003" "wraps" fs);
  let t = Core.Analyze.run prog in
  Alcotest.(check (list int))
    "pure_procs = the one pid"
    [ Helpers.proc_id prog "pure_inc" ]
    (R.pure_procs t)

let alias_src =
  {|program t4;
var g : int;

procedure set(var x : int);
begin
  x := 1;
end;

procedure pair(var a : int; var b : int);
begin
  call set(a);
  b := b + 0;
end;

begin
  g := 0;
  call pair(g, g);
  write g;
end.|}

let test_alias_inflation () =
  let prog, fs = lint alias_src in
  Helpers.check_bool "SFX004 inside pair" true (has "SFX004" "pair" fs);
  let d = List.find (fun d -> d.D.code = "SFX004") fs in
  Helpers.check_bool "witness pair named" true (contains d.D.message "<");
  (* The highlight predicate agrees with the rule: the inflated site is
     the call to set inside pair. *)
  let t = Core.Analyze.run prog in
  let sids = R.inflated_sites t in
  Helpers.check_bool "some inflated site" true (sids <> []);
  List.iter
    (fun sid ->
      let s = Ir.Prog.site prog sid in
      Helpers.check_int "inflated caller is pair"
        (Helpers.proc_id prog "pair")
        s.Ir.Prog.caller)
    sids

let test_aliased_actuals () =
  let _, fs = lint alias_src in
  Helpers.check_int "one SFX005" 1 (count "SFX005" fs);
  let d = List.find (fun d -> d.D.code = "SFX005") fs in
  Alcotest.(check string) "at the main call" "t4" d.D.scope;
  Helpers.check_bool "is an error" true (d.D.severity = D.Error)

let test_loop_parallel () =
  let _, fs =
    lint
      {|program t5;
var n, i, total : int;
var a : array[8] of int;

procedure inc(var cell : int);
begin
  cell := cell + 1;
end;

procedure acc(var cell : int);
begin
  total := total + cell;
end;

begin
  n := 8;
  for i := 1 to n do
    call inc(a[i]);
  end;
  for i := 1 to n do
    call acc(a[i]);
  end;
  write total;
end.|}
  in
  Helpers.check_int "one parallel loop" 1 (count "SFX007" fs);
  Helpers.check_int "one conflicting loop" 1 (count "SFX006" fs);
  let d = List.find (fun d -> d.D.code = "SFX006") fs in
  Helpers.check_bool "conflict names total" true (contains d.D.message "total")

(* --- locations --- *)

let test_locations () =
  let src =
    "program t6;\n\
     var g, h : int;\n\
     \n\
     procedure p(var used : int; var dead : int);\n\
     begin\n\
    \  used := 1;\n\
     end;\n\
     \n\
     begin\n\
    \  g := 0;\n\
    \  call p(g, h);\n\
    \  write g;\n\
     end."
  in
  match Frontend.Sema.compile_with_locs ~file:"t6.mp" src with
  | Error _ -> Alcotest.fail "t6 does not compile"
  | Ok (prog, locs) ->
    let t = Core.Analyze.run prog in
    let fs = E.run ~locs t in
    let d = List.find (fun d -> d.D.code = "SFX001") fs in
    Alcotest.(check string) "file" "t6.mp" d.D.loc.Frontend.Loc.file;
    Helpers.check_int "formal's line" 4 d.D.loc.Frontend.Loc.line;
    (* Without a table every finding sits at the dummy position. *)
    List.iter
      (fun d ->
        Helpers.check_bool "dummy loc" true (d.D.loc = Frontend.Loc.dummy))
      (E.run t)

(* --- reporter stability --- *)

let test_json_keys () =
  let _, fs = lint alias_src in
  Helpers.check_bool "has findings" true (fs <> []);
  List.iter
    (fun d ->
      match D.to_json d with
      | Obs.Json.Obj fields ->
        Alcotest.(check (list string))
          "stable key set"
          [
            "code"; "rule"; "severity"; "file"; "line"; "col"; "scope";
            "message"; "hint"; "witness";
          ]
          (List.map fst fields)
      | _ -> Alcotest.fail "finding JSON must be an object")
    fs

let test_severity_roundtrip () =
  List.iter
    (fun s ->
      match D.severity_of_string (D.severity_to_string s) with
      | Some s' -> Helpers.check_bool "roundtrip" true (s = s')
      | None -> Alcotest.fail "severity roundtrip")
    [ D.Note; D.Warning; D.Error ];
  Helpers.check_bool "unknown rejected" true
    (D.severity_of_string "fatal" = None);
  Helpers.check_bool "order" true
    (D.severity_order D.Note < D.severity_order D.Warning
    && D.severity_order D.Warning < D.severity_order D.Error)

(* --- determinism --- *)

let test_rule_order_irrelevant () =
  let prog = Helpers.compile alias_src in
  let t = Core.Analyze.run prog in
  let a = E.run t and b = E.run ~rules:(List.rev R.all) t in
  Helpers.check_bool "reversed rule order, same findings" true
    (List.equal (fun x y -> D.compare x y = 0) a b)

let report t prog fs =
  ignore t;
  Obs.Json.to_string (E.report_json ~program:prog.Ir.Prog.name ~rules:R.all fs)

let prop_jobs_invariant seed =
  let prog = Helpers.flat_of_seed ~n:30 seed in
  let t = Core.Analyze.run prog in
  let seq = E.run t in
  let par = E.run ~pool:(Lazy.force pool4) t in
  report t prog seq = report t prog par

(* --- dynamic cross-check: a pure-flagged callee can only be observed
   modifying the by-reference actuals of the site --- *)

let prop_pure_matches_interp seed =
  let prog = Helpers.flat_of_seed ~n:20 seed in
  let t = Core.Analyze.run prog in
  let pure = R.pure_procs t in
  let o = Interp.run ~fuel:100_000 prog in
  let ok = ref true in
  Ir.Prog.iter_sites prog (fun s ->
      if
        o.Interp.calls_executed.(s.Ir.Prog.sid) > 0
        && List.mem s.Ir.Prog.callee pure
      then begin
        let actuals = Ir.Info.fresh t.Core.Analyze.info in
        Array.iter
          (function
            | Ir.Prog.Arg_ref lv ->
              Bitvec.set actuals (Ir.Expr.lvalue_base lv)
            | Ir.Prog.Arg_value _ -> ())
          s.Ir.Prog.args;
        (* A write through a by-reference formal surfaces in the caller
           under every §5 alias of the actual as well (the interpreter
           names the location at each binding level), so the allowance
           is the alias closure — the same closure MOD(s) applies to
           DMOD(s). *)
        let allowed =
          Core.Alias.close t.Core.Analyze.alias ~proc:s.Ir.Prog.caller actuals
        in
        if not (Bitvec.subset (Interp.observed_mod o s.Ir.Prog.sid) allowed)
        then ok := false
      end);
  !ok

(* --- incremental deltas --- *)

let test_incremental_delta () =
  let prog =
    Helpers.compile
      {|program p;
var g, h : int;

procedure q(var x : int);
begin
  x := x + 1;
end;

begin
  g := 0;
  call q(g);
  h := g;
end.|}
  in
  let eng = Incremental.Engine.create prog in
  let before = Incremental.Engine.lint eng in
  Helpers.check_bool "q pure before the edit" true (has "SFX003" "q" before);
  Helpers.check_bool "h write-only throughout" true (has "SFX002" "p" before);
  Helpers.check_bool "second query hits the cache" true
    (before == Incremental.Engine.lint eng);
  let gid = Helpers.var_id prog "g" and qid = Helpers.proc_id prog "q" in
  let (_ : Incremental.Engine.outcome) =
    Incremental.Engine.apply eng
      (Incremental.Edit.Add_assign
         { proc = qid; target = gid; value = Ir.Expr.Int 1 })
  in
  let after = Incremental.Engine.lint eng in
  Helpers.check_bool "q no longer pure" false (has "SFX003" "q" after);
  Helpers.check_bool "h still write-only" true (has "SFX002" "p" after);
  let added, removed = E.delta ~before ~after in
  Helpers.check_int "nothing added" 0 (List.length added);
  Helpers.check_bool "purity note removed" true
    (List.exists (fun d -> d.D.code = "SFX003" && d.D.scope = "q") removed);
  (* The incremental path and a batch run on the edited program agree
     finding for finding. *)
  let batch = E.run (Core.Analyze.run (Incremental.Engine.prog eng)) in
  Helpers.check_bool "incremental = batch" true
    (List.equal (fun x y -> D.compare x y = 0) after batch)

let prop_incremental_matches_batch seed =
  let prog = Helpers.flat_of_seed ~n:12 seed in
  let eng = Incremental.Engine.create prog in
  let steps =
    Workload.Edits.gen ~rand:(Random.State.make [| seed; 0x11 |]) ~steps:3 prog
  in
  List.iter
    (fun (edit, _) ->
      let (_ : Incremental.Engine.outcome) =
        Incremental.Engine.apply eng edit
      in
      ())
    steps;
  let incr = Incremental.Engine.lint eng in
  let batch = E.run (Core.Analyze.run (Incremental.Engine.prog eng)) in
  List.equal (fun x y -> D.compare x y = 0) incr batch

let () =
  Helpers.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "unused formal (SFX001)" `Quick test_unused_formal;
          Alcotest.test_case "write-only global (SFX002)" `Quick
            test_write_only_global;
          Alcotest.test_case "pure proc, I/O masked (SFX003)" `Quick
            test_pure_proc_io_masked;
          Alcotest.test_case "alias inflation (SFX004)" `Quick
            test_alias_inflation;
          Alcotest.test_case "aliased actuals (SFX005)" `Quick
            test_aliased_actuals;
          Alcotest.test_case "loop verdicts (SFX006/7)" `Quick
            test_loop_parallel;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "source locations" `Quick test_locations;
          Alcotest.test_case "JSON key set" `Quick test_json_keys;
          Alcotest.test_case "severity encoding" `Quick
            test_severity_roundtrip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "rule order irrelevant" `Quick
            test_rule_order_irrelevant;
          Helpers.qtest ~count:25 "jobs 4 = jobs 1 (bit-identical JSON)"
            Helpers.arb_flat_prog prop_jobs_invariant;
        ] );
      ( "cross-checks",
        [
          Helpers.qtest ~count:20 "pure procs under the interpreter"
            Helpers.arb_flat_prog prop_pure_matches_interp;
          Alcotest.test_case "incremental delta" `Quick
            test_incremental_delta;
          Helpers.qtest ~count:15 "incremental lint = batch lint"
            Helpers.arb_flat_prog prop_incremental_matches_batch;
        ] );
    ]
