(* The parallel engine: the Par.Pool/Par.Wavefront machinery itself,
   and the headline determinism contract — [Analyze.run ~jobs:k] is
   bit-identical to [~jobs:1] for every k, results and
   [bitvec.vector_ops]/[word_ops] step counts both (docs/parallel.md).

   The worker-count property holds on any host: correctness of the
   wavefront schedule does not depend on how many cores actually back
   the domains. *)

open Helpers
module A = Core.Analyze
module Pool = Par.Pool
module Wavefront = Par.Wavefront

(* One shared 4-way pool for the whole binary: pools are reusable, and
   spawning domains per qcheck case would dominate the run. *)
let pool4 = lazy (Pool.create ~jobs:4)

let () =
  at_exit (fun () -> if Lazy.is_val pool4 then Pool.shutdown (Lazy.force pool4))

(* --- Pool --- *)

let test_pool_runs_all () =
  let pool = Lazy.force pool4 in
  let n = 100 in
  let hits = Array.make n 0 in
  let slots = Array.make n (-1) in
  Pool.run pool
    (Array.init n (fun i slot ->
         hits.(i) <- hits.(i) + 1;
         slots.(i) <- slot));
  Array.iteri (fun i h -> check_int (Printf.sprintf "task %d ran once" i) 1 h) hits;
  Array.iter
    (fun s -> check_bool "slot in range" true (s >= 0 && s < Pool.jobs pool))
    slots;
  (* Batches are reusable: a second run on the same pool. *)
  let sum = Atomic.make 0 in
  Pool.run pool
    (Array.init 37 (fun i _slot -> ignore (Atomic.fetch_and_add sum (i + 1))));
  check_int "second batch total" (37 * 38 / 2) (Atomic.get sum)

let test_pool_empty_and_errors () =
  let pool = Lazy.force pool4 in
  Pool.run pool [||];
  (* One failing task: the batch drains and the exception resurfaces. *)
  let ran = Atomic.make 0 in
  (try
     Pool.run pool
       (Array.init 16 (fun i _slot ->
            ignore (Atomic.fetch_and_add ran 1);
            if i = 7 then failwith "boom"));
     Alcotest.fail "expected the task exception to propagate"
   with Failure m -> check_bool "task exception" true (m = "boom"));
  check_int "whole batch still drained" 16 (Atomic.get ran);
  (* And the pool survives: it is not poisoned by a failed batch. *)
  Pool.run pool (Array.init 4 (fun _ _ -> ()))

let test_effective_jobs () =
  check_int "1 is 1" 1 (Pool.effective_jobs 1);
  check_int "4 is 4" 4 (Pool.effective_jobs 4);
  check_bool "0 is recommended (>= 1)" true (Pool.effective_jobs 0 >= 1);
  check_int "negative clamps to 1" 1 (Pool.effective_jobs (-3));
  Pool.with_pool ~jobs:1 (fun p -> check_bool "jobs=1 has no pool" true (p = None));
  Pool.with_pool ~jobs:2 (fun p ->
      match p with
      | None -> Alcotest.fail "jobs=2 should build a pool"
      | Some p -> check_int "pool width" 2 (Pool.jobs p))

(* --- Wavefront --- *)

let test_leveling () =
  (* 4 <- {2,3} <- ... a diamond condensation: 0 and 1 are sinks,
     2 and 3 depend on them, 4 on both of those. *)
  let succs = [| []; []; [ 0; 1 ]; [ 1 ]; [ 2; 3 ] |]
  in
  let l = Wavefront.of_comp_succs ~n_comps:5 ~succs_of:(fun c -> succs.(c)) in
  check_int "n_levels" 3 l.Wavefront.n_levels;
  check_int "max_width" 2 l.Wavefront.max_width;
  Alcotest.(check (list int)) "level 0" [ 0; 1 ]
    (Array.to_list l.Wavefront.by_level.(0));
  Alcotest.(check (list int)) "level 1" [ 2; 3 ]
    (Array.to_list l.Wavefront.by_level.(1));
  Alcotest.(check (list int)) "level 2" [ 4 ]
    (Array.to_list l.Wavefront.by_level.(2))

let test_schedule_diamond () =
  (* main(0) -> a(1), b(2); a,b -> c(3); c is the only sink. *)
  let succs = [| [| 1; 2 |]; [| 3 |]; [| 3 |]; [||] |] in
  let s = Wavefront.schedule ~n:4 ~first_root:0 ~succs () in
  check_int "4 singleton components" 4 s.Wavefront.n_comps;
  (* Reverse topological: c first, main last. *)
  check_int "comp of c is 0" 0 s.Wavefront.comp.(3);
  check_int "comp of main is largest" 3 s.Wavefront.comp.(0);
  Array.iteri
    (fun c v -> check_int (Printf.sprintf "entry of comp %d" c) c s.Wavefront.comp.(v))
    s.Wavefront.entry;
  check_int "3 levels" 3 s.Wavefront.levels.Wavefront.n_levels;
  check_int "a,b share a level" 2 s.Wavefront.levels.Wavefront.max_width;
  (* Sequential and pooled iteration both visit every component once,
     and never a component before all of its successors. *)
  List.iter
    (fun pool ->
      let done_ = Array.make s.Wavefront.n_comps false in
      let mu = Mutex.create () in
      Wavefront.iter pool s.Wavefront.levels ~f:(fun ~slot:_ ~comp ->
          Mutex.lock mu;
          check_bool "not evaluated twice" false done_.(comp);
          done_.(comp) <- true;
          Mutex.unlock mu);
      Array.iter (fun b -> check_bool "all components evaluated" true b) done_)
    [ None; Some (Lazy.force pool4) ]

let test_plan_fusion_and_chain () =
  (* A pure chain condensation: every level is a singleton, so the plan
     must fuse everything into one Seq stage, report chain = true, and
     never touch the pool. *)
  let succs = [| []; [ 0 ]; [ 1 ]; [ 2 ] |] in
  let l = Wavefront.of_comp_succs ~n_comps:4 ~succs_of:(fun c -> succs.(c)) in
  let p = Wavefront.plan l ~jobs:4 ~cost:(fun _ -> 1) in
  check_bool "chain" true p.Wavefront.chain;
  check_int "all levels fused" 4 p.Wavefront.fused_levels;
  check_int "no parallel batches" 0 p.Wavefront.n_batches;
  check_int "one stage" 1 (Array.length p.Wavefront.stages);
  (match p.Wavefront.stages.(0) with
  | Wavefront.Seq comps ->
    Alcotest.(check (list int)) "level order" [ 0; 1; 2; 3 ] (Array.to_list comps)
  | Wavefront.Par _ -> Alcotest.fail "expected Seq stage");
  (* run_plan on a chain must not require the pool at all: poison the
     pool argument with None and also check visiting order inline. *)
  let visited = ref [] in
  Wavefront.run_plan None p ~f:(fun ~slot ~comp ->
      check_int "inline slot" 0 slot;
      visited := comp :: !visited);
  Alcotest.(check (list int)) "visit order" [ 0; 1; 2; 3 ] (List.rev !visited)

let test_plan_batching () =
  (* A wide level with skewed costs: batches must partition the level,
     respect the 2*jobs cap, and balance deterministically (LPT:
     heaviest first into the lightest batch). *)
  let width = 10 in
  let succs = Array.make (width + 1) [] in
  (* component [width] depends on all of level 0 — gives 2 levels *)
  succs.(width) <- List.init width (fun i -> i);
  let l =
    Wavefront.of_comp_succs ~n_comps:(width + 1) ~succs_of:(fun c -> succs.(c))
  in
  let cost c = if c = 0 then 100 else 1 in
  let p = Wavefront.plan l ~jobs:2 ~cost in
  check_bool "not a chain" false p.Wavefront.chain;
  check_int "singleton top level fused" 1 p.Wavefront.fused_levels;
  (match p.Wavefront.stages.(0) with
  | Wavefront.Par batches ->
    check_bool "at most 2*jobs batches" true (Array.length batches <= 4);
    let seen = Array.make width false in
    Array.iter
      (fun b ->
        Array.iter
          (fun c ->
            check_bool "no component twice" false seen.(c);
            seen.(c) <- true)
          b.Wavefront.comps)
      batches;
    Array.iter (fun b -> check_bool "batch covered" true b) seen;
    (* The heavy component dominates: its batch should contain it alone
       (total other cost 9 < 100 never balances up to it). *)
    let heavy =
      Array.to_list batches
      |> List.find (fun b -> Array.exists (fun c -> c = 0) b.Wavefront.comps)
    in
    check_int "heavy component isolated" 1 (Array.length heavy.Wavefront.comps)
  | Wavefront.Seq _ -> Alcotest.fail "expected Par stage");
  (* Determinism: same inputs, same plan. *)
  let p' = Wavefront.plan l ~jobs:2 ~cost in
  check_bool "plans identical" true (p = p')

let test_schedule_cycle_entry () =
  (* 0 -> 1 <-> 2, entered at 1: the SCC {1,2} must record entry 1 —
     where a sequential DFS from 0 first touches it. *)
  let succs = [| [| 1 |]; [| 2 |]; [| 1 |]; [||] |] in
  let s = Wavefront.schedule ~n:4 ~first_root:0 ~succs () in
  check_int "three components" 3 s.Wavefront.n_comps;
  let c12 = s.Wavefront.comp.(1) in
  check_int "1 and 2 share a component" c12 s.Wavefront.comp.(2);
  check_int "entered at 1" 1 s.Wavefront.entry.(c12)

let test_schedule_active_subset () =
  (* Restricting to the active subset must ignore inactive nodes and
     the edges touching them. *)
  let succs = [| [| 1; 2 |]; [| 2 |]; [| 0 |]; [||] |] in
  let s =
    Wavefront.schedule ~n:4 ~active:(fun v -> v <> 2) ~first_root:0 ~succs ()
  in
  check_int "inactive node has no component" (-1) s.Wavefront.comp.(2);
  check_int "two active components" 3 s.Wavefront.n_comps;
  check_bool "0 and 1 in different components" true
    (s.Wavefront.comp.(0) <> s.Wavefront.comp.(1))

(* --- determinism: jobs=4 vs jobs=1, values and step counts --- *)

let bool_arrays_equal = Array.for_all2 Bool.equal

let check_same_analysis msg (seq : A.t) (par : A.t) =
  let ok name b = if not b then Alcotest.failf "%s: %s differs" msg name in
  ok "RMOD" (bool_arrays_equal seq.A.rmod.Core.Rmod.rmod par.A.rmod.Core.Rmod.rmod);
  ok "RUSE" (bool_arrays_equal seq.A.ruse.Core.Rmod.rmod par.A.ruse.Core.Rmod.rmod);
  ok "RMOD steps" (seq.A.rmod.Core.Rmod.steps = par.A.rmod.Core.Rmod.steps);
  ok "IMOD" (gmod_arrays_equal seq.A.imod par.A.imod);
  ok "IUSE" (gmod_arrays_equal seq.A.iuse par.A.iuse);
  ok "IMOD+" (gmod_arrays_equal seq.A.imod_plus par.A.imod_plus);
  ok "IUSE+" (gmod_arrays_equal seq.A.iuse_plus par.A.iuse_plus);
  ok "GMOD" (gmod_arrays_equal seq.A.gmod par.A.gmod);
  ok "GUSE" (gmod_arrays_equal seq.A.guse par.A.guse);
  for sid = 0 to Ir.Prog.n_sites seq.A.prog - 1 do
    ok
      (Printf.sprintf "MOD(s%d)" sid)
      (Bitvec.equal (A.mod_of_site seq sid) (A.mod_of_site par sid));
    ok
      (Printf.sprintf "USE(s%d)" sid)
      (Bitvec.equal (A.use_of_site seq sid) (A.use_of_site par sid))
  done

let vector_ops = lazy (Option.get (Obs.Metric.find "bitvec.vector_ops"))
let word_ops = lazy (Option.get (Obs.Metric.find "bitvec.word_ops"))

(* Run [f] and report its (vector_ops, word_ops) interval. *)
let counted f =
  let snap = Obs.Metric.snapshot () in
  let r = f () in
  ( r,
    Obs.Metric.value_since ~since:snap (Lazy.force vector_ops),
    Obs.Metric.value_since ~since:snap (Lazy.force word_ops) )

let prop_jobs_deterministic of_seed seed =
  let prog = of_seed seed in
  let seq, sv, sw = counted (fun () -> A.run prog) in
  let par, pv, pw =
    counted (fun () -> A.run ~pool:(Lazy.force pool4) prog)
  in
  check_same_analysis (Printf.sprintf "seed %d" seed) seq par;
  check_int "vector_ops identical" sv pv;
  check_int "word_ops identical" sw pw;
  true

let prop_incremental_deterministic seed =
  let prog = flat_of_seed ~n:24 seed in
  let mk_script () =
    (* Same rand stream both times, so both engines replay one script. *)
    let rand = Random.State.make [| seed; 0xed17 |] in
    Workload.Edits.gen ~rand ~steps:6 prog
  in
  let seq = Incremental.Engine.create prog in
  let par = Incremental.Engine.create ~pool:(Lazy.force pool4) prog in
  check_same_analysis "initial"
    (Incremental.Engine.analysis seq)
    (Incremental.Engine.analysis par);
  List.iteri
    (fun i ((edit, _expected), (edit', _)) ->
      assert (edit = edit');
      let (_ : Incremental.Engine.outcome) = Incremental.Engine.apply seq edit in
      let (_ : Incremental.Engine.outcome) = Incremental.Engine.apply par edit in
      check_same_analysis
        (Printf.sprintf "seed %d edit %d" seed i)
        (Incremental.Engine.analysis seq)
        (Incremental.Engine.analysis par))
    (List.combine (mk_script ()) (mk_script ()));
  true

let () =
  run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "runs every task once" `Quick test_pool_runs_all;
          Alcotest.test_case "empty batches and errors" `Quick
            test_pool_empty_and_errors;
          Alcotest.test_case "effective_jobs / with_pool" `Quick
            test_effective_jobs;
        ] );
      ( "wavefront",
        [
          Alcotest.test_case "leveling of a diamond" `Quick test_leveling;
          Alcotest.test_case "schedule: diamond" `Quick test_schedule_diamond;
          Alcotest.test_case "plan: chain fusion" `Quick
            test_plan_fusion_and_chain;
          Alcotest.test_case "plan: cost batching" `Quick test_plan_batching;
          Alcotest.test_case "schedule: cycle entry" `Quick
            test_schedule_cycle_entry;
          Alcotest.test_case "schedule: active subset" `Quick
            test_schedule_active_subset;
        ] );
      ( "determinism",
        [
          qtest ~count:160 "analyze jobs=4 = jobs=1 (flat)" arb_flat_prog
            (prop_jobs_deterministic (flat_of_seed ~n:40));
          qtest ~count:60 "analyze jobs=4 = jobs=1 (dag)" arb_flat_prog
            (prop_jobs_deterministic (fun seed ->
                 Workload.Families.dag_style ~seed ~n:40));
          qtest ~count:40 "analyze jobs=4 = jobs=1 (nested)" arb_nested_prog
            (prop_jobs_deterministic (nested_of_seed ~n:24 ~depth:3));
          qtest ~count:30 "incremental engine jobs=4 = jobs=1" arb_flat_prog
            prop_incremental_deterministic;
        ] );
    ]
