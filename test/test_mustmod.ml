(* Interprocedural MUSTMOD — the must-modify dual of GMOD.  Directed
   cases pin the structural equations (branch intersection, loop
   erasure, call projection), the §5/ptsto demotion rules, and the
   precision gained by interprocedural kill sets over the retired local
   under-approximation; property tests check the MUSTMOD ⊆ GMOD
   invariant and soundness against the interpreter's dynamic
   must-write oracle on random programs, pointer families included. *)

module P = Ir.Prog
module A = Core.Analyze
module M = Core.Mustmod

let pool4 = lazy (Par.Pool.create ~jobs:4)

let () =
  at_exit (fun () ->
      if Lazy.is_val pool4 then Par.Pool.shutdown (Lazy.force pool4))

let mustmod_of a pid = M.mustmod_of a.A.mustmod pid

let check_must a msg proc expected =
  let prog = a.A.prog in
  Helpers.check_var_set prog msg expected
    (mustmod_of a (Helpers.proc_id prog proc))

(* --- structural equations --- *)

(* A sequence accumulates; both-branch writes survive the intersection,
   one-branch writes and loop-body writes do not; a for header always
   writes its index (the interpreter stores the bound before the first
   test, so this is dynamically exact even for zero iterations). *)
let test_structure () =
  let a =
    A.run
      (Helpers.compile
         {|program t;
var g, h, u, w, i, acc : int;

begin
  g := 1;
  if g > 0 then
    h := 1;
    u := 1;
  else
    h := 2;
  end;
  while g < 10 do
    w := w + 1;
  end;
  for i := 1 to g do
    acc := acc + i;
  end;
  write acc;
end.|})
  in
  check_must a "main: both-branch h kept, one-branch u and loop body dropped"
    "t" [ "g"; "h"; "i" ]

(* Call statements contribute the callee's MUSTMOD through the binding:
   by-ref formals land on scalar whole-variable actuals, globals pass
   through, callee locals and by-value formals vanish. *)
let test_call_projection () =
  let a =
    A.run
      (Helpers.compile
         {|program t;
var g, x, y : int;

procedure leaf(v : int; var out : int);
var tmp : int;
begin
  tmp := v;
  out := tmp;
  g := g + 1;
end;

procedure mid(var o : int);
begin
  call leaf(3, o);
end;

begin
  call mid(x);
  write x + y;
end.|})
  in
  check_must a "leaf writes its by-ref formal, g, and tmp" "leaf"
    [ "leaf.out"; "leaf.tmp"; "g" ];
  check_must a "mid: out lands on o, g passes through, tmp dropped" "mid"
    [ "mid.o"; "g" ];
  check_must a "main: o lands on x" "t" [ "x"; "g" ]

(* Recursion: the SCC iterates from ∅, so a self-call contributes only
   what every unrolling agrees on — here nothing, because the recursive
   branch's writes meet the base branch's. *)
let test_recursion () =
  let a =
    A.run
      (Helpers.compile
         {|program t;
var g, n : int;

procedure down(var k : int);
begin
  if k > 0 then
    k := k - 1;
    call down(k);
  else
    g := 0;
  end;
end;

begin
  n := 3;
  call down(n);
  write g;
end.|})
  in
  check_must a "recursive branches disagree: nothing definite" "down" [];
  check_must a "main keeps its own write" "t" [ "n" ]

(* --- §5/ptsto demotion --- *)

(* A visible variable paired with a by-ref formal: the formal keeps its
   must-facts (the projection re-binds it at every site), the visible
   member is demoted. *)
let test_visible_demotion () =
  let a =
    A.run
      (Helpers.compile
         {|program t;
var sink : int;

procedure set(var out : int);
begin
  out := 1;
  sink := 2;
end;

begin
  call set(sink);
  write sink;
end.|})
  in
  let prog = a.A.prog in
  let pid = Helpers.proc_id prog "set" in
  check_must a "formal survives the <sink, out> pair; sink is demoted" "set"
    [ "set.out" ];
  Helpers.check_var_set prog "demoted column names sink" [ "sink" ]
    (M.demoted_of a.A.mustmod pid);
  check_must a "projection still re-attributes the write" "t" [ "sink" ]

(* Satellite: heap-overlap demotion must consult the ptsto tier.  The
   two dereference actuals can only collide through heap cells —
   Steensgaard unifies the two allocations (r flows from both p and q),
   Andersen keeps them apart — so the formal–formal pair exists only
   under the coarser tier, and only there are the formals excluded from
   MUSTMOD. *)
let heap_demo_src =
  {|program t;
var a, b : int;
var p, q, r : ptr of int;

procedure mix(var c : int; var d : int);
begin
  c := 1;
  d := 2;
end;

begin
  p := new int;
  q := new int;
  r := p;
  r := q;
  call mix( *p, *q);
  a := *p;
  b := *q;
  write a + b;
end.|}

let test_heap_demotion () =
  let prog = Helpers.compile heap_demo_src in
  let coarse = A.run ~ptsto:Ptsto.Steensgaard prog in
  let fine = A.run ~ptsto:Ptsto.Andersen prog in
  check_must coarse
    "steensgaard: unified heap cells alias the formals, both demoted" "mix" [];
  check_must fine "andersen: allocations stay apart, both formals definite"
    "mix" [ "mix.c"; "mix.d" ]

(* --- precision over the retired local approximation --- *)

(* A pinned family: the definite write sits under an if/else at the
   bottom of a call chain, invisible to the retired top-level local
   MUSTDEF but carried up by the interprocedural summaries — so the
   dataflow kill set crosses the chain and the dead-store rule fires on
   the store before the call.  Soundness of the claim is cross-checked
   against the interpreter: every completed execution of the site
   writes x, and none reads it first. *)
let deep_kill_src depth =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "program deep;\nvar x : int;\n";
  add
    "\nprocedure w0(var v : int);\nbegin\n  if 1 > 0 then\n    v := 1;\n\
    \  else\n    v := 2;\n  end;\nend;\n";
  for k = 1 to depth do
    add "\nprocedure w%d(var v : int);\nbegin\n  call w%d(v);\nend;\n" k (k - 1)
  done;
  add "\nbegin\n  x := 5;\n  call w%d(x);\n  write x;\nend.\n" depth;
  Buffer.contents buf

let test_deep_kill () =
  List.iter
    (fun depth ->
      let prog = Helpers.compile (deep_kill_src depth) in
      let a = A.run prog in
      let top = Printf.sprintf "w%d" depth in
      check_must a (top ^ " carries the branch-intersected write up") top
        [ top ^ ".v" ];
      let tf = Dataflow.Transfer.make a in
      let local = Dataflow.Transfer.local_must_mod prog in
      let x = Helpers.var_id prog "x" in
      let sid = ref (-1) in
      P.iter_sites prog (fun s ->
          if s.P.caller = prog.P.main then sid := s.P.sid);
      Helpers.check_bool "interprocedural kill reaches x" true
        (Bitvec.get (Dataflow.Transfer.kill_of_site tf !sid) x);
      Helpers.check_bool "the local approximation sees nothing" true
        (Bitvec.is_empty local.(Helpers.proc_id prog "w0"));
      let fs = Lint.Engine.run a in
      Helpers.check_bool "SFX008 flags the pre-call store" true
        (List.exists (fun d -> d.Lint.Diagnostic.code = "SFX008") fs);
      let o = Interp.run prog in
      Helpers.check_bool "run not truncated" false o.Interp.truncated;
      (match Interp.observed_must o !sid with
      | None -> Alcotest.fail "site never completed"
      | Some om ->
        Helpers.check_bool "every completed run writes x" true (Bitvec.get om x));
      Helpers.check_bool "no run reads x before writing it" false
        (Bitvec.get (Interp.observed_live o !sid) x))
    [ 1; 4; 9 ]

(* --- properties --- *)

let subset_prop prog =
  let a = A.run prog in
  M.check_subset a.A.mustmod ~gmod:a.A.gmod

(* Soundness against the dynamic oracle: the kill set the dataflow
   consumes (projected MUSTMOD minus caller-side aliasing) claims only
   variables every completed, skip-free execution of the site wrote. *)
let oracle_prop prog =
  let a = A.run prog in
  let tf = Dataflow.Transfer.make a in
  let o = Interp.run ~fuel:50_000 ~max_depth:128 prog in
  let ok = ref true in
  P.iter_sites prog (fun s ->
      match Interp.observed_must o s.P.sid with
      | None -> ()
      | Some om ->
        let kill = Dataflow.Transfer.kill_of_site tf s.P.sid in
        Bitvec.iter
          (fun v ->
            if not (Bitvec.get om v) then begin
              ok := false;
              QCheck.Test.fail_reportf
                "site %d: '%s' claimed must-written but some completed run \
                 skipped it"
                s.P.sid
                (Ir.Pp.qualified_var_name prog v)
            end)
          kill);
  !ok

(* Random pointer programs, in the style of the points-to suite: every
   pointer starts aimed at a distinct global, so any generated suffix
   is valid and deref-safe. *)
let ptr_src_of_seed seed =
  let st = Random.State.make [| seed; 0x5eed |] in
  let n_stmts = 6 + Random.State.int st 16 in
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "program gen%d;\n" seed;
  add "var g0, g1, g2, g3 : int;\n";
  add "var p0, p1, p2 : ptr of int;\n";
  add
    "\nprocedure put(var c : int; var d : int);\nbegin\n  c := d + 1;\n\
    \  if d > 3 then\n    d := 0;\n  end;\nend;\n";
  add "\nbegin\n";
  for i = 0 to 2 do
    add "  p%d := &g%d;\n" i i
  done;
  for _ = 1 to n_stmts do
    let p = Random.State.int st 3 and g = Random.State.int st 4 in
    match Random.State.int st 8 with
    | 0 -> add "  p%d := &g%d;\n" p g
    | 1 -> add "  p%d := p%d;\n" p (Random.State.int st 3)
    | 2 -> add "  p%d := new int;\n" p
    | 3 -> add "  *p%d := %d;\n" p (Random.State.int st 100)
    | 4 -> add "  g%d := *p%d;\n" g p
    | 5 -> add "  call put( *p%d, g%d);\n" p g
    | 6 -> add "  call put(g%d, *p%d);\n" g p
    | _ -> add "  g%d := g%d + %d;\n" g g (Random.State.int st 10)
  done;
  add "  write g0 + g1 + g2 + g3;\nend.\n";
  Buffer.contents buf

let ptr_prog_of_seed seed = Helpers.compile (ptr_src_of_seed seed)

let arb_ptr_prog =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "ptr seed %d" seed)
    QCheck.Gen.(0 -- 10_000)

(* --- parallel and incremental agreement --- *)

let jobs_prop of_seed seed =
  let prog = of_seed seed in
  let seq = A.run prog in
  let par = A.run ~pool:(Lazy.force pool4) prog in
  Helpers.gmod_arrays_equal seq.A.mustmod.M.mustmod par.A.mustmod.M.mustmod

let test_incremental_resolve () =
  let prog = Helpers.compile (deep_kill_src 4) in
  let engine = Incremental.Engine.create prog in
  let w0 = Helpers.proc_id prog "w0" in
  let g = Helpers.var_id prog "x" in
  (* Turn w0's one-branch structure into an unconditional prologue
     write: the whole ancestor cone's MUSTMOD shifts. *)
  let (_ : Incremental.Engine.outcome) =
    Incremental.Engine.apply engine
      (Incremental.Edit.Add_assign
         { proc = w0; target = g; value = Ir.Expr.Int 7 })
  in
  let inc = Incremental.Engine.analysis engine in
  let batch = A.run (Incremental.Engine.prog engine) in
  Helpers.check_bool "resolved MUSTMOD = batch MUSTMOD" true
    (Helpers.gmod_arrays_equal inc.A.mustmod.M.mustmod
       batch.A.mustmod.M.mustmod)

let () =
  Helpers.run "mustmod"
    [
      ( "directed",
        [
          Alcotest.test_case "structural equations" `Quick test_structure;
          Alcotest.test_case "call projection" `Quick test_call_projection;
          Alcotest.test_case "recursion meets to bottom" `Quick test_recursion;
          Alcotest.test_case "visible-member demotion" `Quick
            test_visible_demotion;
          Alcotest.test_case "heap demotion follows the ptsto tier" `Quick
            test_heap_demotion;
          Alcotest.test_case "interprocedural kills beat local MUSTDEF" `Quick
            test_deep_kill;
          Alcotest.test_case "incremental resolve agrees with batch" `Quick
            test_incremental_resolve;
        ] );
      ( "properties",
        [
          Helpers.qtest ~count:60 "MUSTMOD ⊆ GMOD (flat)" Helpers.arb_flat_prog
            (fun seed -> subset_prop (Helpers.flat_of_seed seed));
          Helpers.qtest ~count:40 "MUSTMOD ⊆ GMOD (nested)"
            Helpers.arb_nested_prog (fun seed ->
              subset_prop (Helpers.nested_of_seed seed));
          Helpers.qtest ~count:60 "MUSTMOD ⊆ GMOD (pointers)" arb_ptr_prog
            (fun seed -> subset_prop (ptr_prog_of_seed seed));
          Helpers.qtest ~count:40 "kill sets sound vs interpreter (flat)"
            Helpers.arb_flat_prog (fun seed ->
              oracle_prop (Helpers.flat_of_seed seed));
          Helpers.qtest ~count:30 "kill sets sound vs interpreter (nested)"
            Helpers.arb_nested_prog (fun seed ->
              oracle_prop (Helpers.nested_of_seed seed));
          Helpers.qtest ~count:40 "kill sets sound vs interpreter (pointers)"
            arb_ptr_prog (fun seed -> oracle_prop (ptr_prog_of_seed seed));
          Helpers.qtest ~count:30 "pool run bit-identical (flat)"
            Helpers.arb_flat_prog (jobs_prop Helpers.flat_of_seed);
          Helpers.qtest ~count:20 "pool run bit-identical (nested)"
            Helpers.arb_nested_prog (jobs_prop Helpers.nested_of_seed);
        ] );
    ]
