(* Differential soundness testing: execute random programs under the
   tracing interpreter and check that everything observed at run time
   is predicted by the static analysis —

     observed_mod(s) ⊆ MOD(s)   and   observed_use(s) ⊆ USE(s)

   for every call site of every program, including truncated runs
   (fuel exhaustion, arithmetic faults): events already recorded
   really happened.  This validates the entire pipeline against an
   implementation that shares nothing with it but the IR. *)

let check_analysis ?(fuel = 10_000) t prog =
  let o = Interp.run ~fuel ~max_depth:256 prog in
  let bad = ref [] in
  Ir.Prog.iter_sites prog (fun s ->
      let sid = s.Ir.Prog.sid in
      if o.Interp.calls_executed.(sid) > 0 then begin
        let om = Interp.observed_mod o sid in
        let ou = Interp.observed_use o sid in
        if not (Bitvec.subset om (Core.Analyze.mod_of_site t sid)) then
          bad := (sid, "MOD") :: !bad;
        if not (Bitvec.subset ou (Core.Analyze.use_of_site t sid)) then
          bad := (sid, "USE") :: !bad
      end);
  !bad

let check_program ?fuel prog = check_analysis ?fuel (Core.Analyze.run prog) prog

let prop_sound prog =
  match check_program prog with
  | [] -> true
  | (sid, what) :: _ ->
    QCheck.Test.fail_reportf "site %d: observed %s not predicted" sid what

let test_families () =
  List.iter
    (fun (name, prog) ->
      match check_program prog with
      | [] -> ()
      | (sid, what) :: _ ->
        Alcotest.failf "%s: site %d observed %s exceeds prediction" name sid what)
    [
      ("ref_chain", Workload.Families.ref_chain 10);
      ("ref_cycle", Workload.Families.ref_cycle 6);
      ("global_chain", Workload.Families.global_chain 8);
      ("mutual_pair", Workload.Families.mutual_pair ());
      ("diamond", Workload.Families.diamond ());
      ("nested_textbook", Workload.Families.nested_textbook ());
    ]

let test_kernels () =
  for seed = 0 to 15 do
    let prog = Workload.Arrays.generate ~seed ~n_kernels:6 in
    match check_program prog with
    | [] -> ()
    | (sid, what) :: _ ->
      Alcotest.failf "kernels seed %d: site %d observed %s exceeds prediction" seed
        sid what
  done

let prop_sound_flat seed = prop_sound (Helpers.flat_of_seed seed)
let prop_sound_nested seed = prop_sound (Helpers.nested_of_seed seed)

let prop_sound_nested_deep seed =
  prop_sound (Helpers.nested_of_seed ~n:25 ~depth:6 seed)

(* Post-edit programs, analysed *incrementally*: the engine's cached
   answers — not a fresh run — must still cover everything the
   interpreter observes, after every step of a random edit script. *)
let prop_sound_edited seed =
  let prog = Helpers.flat_of_seed ~n:20 seed in
  let rand = Random.State.make [| seed; 0x50ed |] in
  let script = Workload.Edits.gen ~rand ~steps:6 prog in
  let engine = Incremental.Engine.create prog in
  List.for_all
    (fun (edit, _) ->
      let before = Incremental.Engine.prog engine in
      let (_ : Incremental.Engine.outcome) =
        Incremental.Engine.apply engine edit
      in
      match
        check_analysis
          (Incremental.Engine.analysis engine)
          (Incremental.Engine.prog engine)
      with
      | [] -> true
      | (sid, what) :: _ ->
        QCheck.Test.fail_reportf "after %s: site %d observed %s not predicted"
          (Incremental.Edit.to_string before edit)
          sid what)
    script

(* Sections: the flattened sectioned MOD, closed under alias pairs the
   way §5 closes DMOD (the sectioned projection itself is alias-free,
   like the paper's DMOD), must cover the observations. *)
let prop_sections_sound seed =
  let prog = Workload.Arrays.generate ~seed ~n_kernels:5 in
  let t = Sections.Analyze_sections.run prog in
  let alias = Core.Alias.compute t.Sections.Analyze_sections.info in
  let o = Interp.run ~fuel:10_000 ~max_depth:256 prog in
  let ok = ref true in
  Ir.Prog.iter_sites prog (fun s ->
      let sid = s.Ir.Prog.sid in
      if o.Interp.calls_executed.(sid) > 0 then begin
        let flat =
          Sections.Secmap.to_bits (Sections.Analyze_sections.mod_of_site t sid)
        in
        let static = Core.Alias.close alias ~proc:s.Ir.Prog.caller flat in
        if not (Bitvec.subset (Interp.observed_mod o sid) static) then ok := false
      end);
  !ok

(* Precision accounting (not an assertion, a sanity bound): observed
   sets are usually much smaller than MOD — but never empty when the
   static set is forced by a direct write. *)
let test_exact_on_straight_line () =
  let prog =
    Helpers.compile
      {|program p;
var g, h : int;
procedure f(var x : int);
begin
  x := h;
end;
begin
  call f(g);
end.|}
  in
  let t = Core.Analyze.run prog in
  let o = Interp.run prog in
  (* On straight-line code the analysis is exact. *)
  Alcotest.(check bool) "MOD exact" true
    (Bitvec.equal (Interp.observed_mod o 0) (Core.Analyze.mod_of_site t 0));
  Alcotest.(check bool) "USE exact" true
    (Bitvec.equal (Interp.observed_use o 0) (Core.Analyze.use_of_site t 0))

let () =
  Helpers.run "soundness"
    [
      ( "fixed",
        [
          Alcotest.test_case "families" `Quick test_families;
          Alcotest.test_case "array kernels" `Quick test_kernels;
          Alcotest.test_case "exact on straight-line code" `Quick
            test_exact_on_straight_line;
        ] );
      ( "random",
        [
          Helpers.qtest ~count:60 "flat programs sound" Helpers.arb_flat_prog
            prop_sound_flat;
          Helpers.qtest ~count:60 "nested programs sound" Helpers.arb_nested_prog
            prop_sound_nested;
          Helpers.qtest ~count:40 "deeply nested programs sound"
            Helpers.arb_nested_prog prop_sound_nested_deep;
          Helpers.qtest ~count:40 "sectioned MOD sound" Helpers.arb_flat_prog
            prop_sections_sound;
          Helpers.qtest ~count:40 "post-edit programs sound (incremental)"
            Helpers.arb_flat_prog prop_sound_edited;
        ] );
    ]
