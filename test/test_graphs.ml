(* Graph kernel tests: CSR representation, Tarjan SCC against a
   reachability-based oracle, condensation, DFS classification, topo
   order, reachability. *)

module D = Graphs.Digraph
module Scc = Graphs.Scc
module Dfs = Graphs.Dfs

let mk nodes edges = D.of_edges ~nodes edges

(* --- digraph --- *)

let test_builder () =
  let b = D.Builder.create () in
  let a = D.Builder.add_node b in
  let c = D.Builder.add_node b in
  Alcotest.(check int) "ids" 0 a;
  Alcotest.(check int) "ids" 1 c;
  let e0 = D.Builder.add_edge b ~src:a ~dst:c in
  let e1 = D.Builder.add_edge b ~src:a ~dst:c in
  Alcotest.(check int) "edge ids" 0 e0;
  Alcotest.(check int) "multi-edge ids" 1 e1;
  let g = D.Builder.freeze b in
  Alcotest.(check int) "nodes" 2 (D.n_nodes g);
  Alcotest.(check int) "edges" 2 (D.n_edges g);
  Alcotest.(check (list int)) "succ with multiplicity" [ 1; 1 ] (D.succ_list g 0);
  Alcotest.(check int) "out degree" 2 (D.out_degree g 0);
  Alcotest.(check int) "sink degree" 0 (D.out_degree g 1)

let test_edge_endpoints () =
  let g = mk 3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check int) "src" 1 (D.edge_src g 1);
  Alcotest.(check int) "dst" 2 (D.edge_dst g 1);
  let r = D.reverse g in
  Alcotest.(check int) "reversed src" 2 (D.edge_src r 1);
  Alcotest.(check int) "reversed dst" 1 (D.edge_dst r 1)

let test_bad_edge () =
  let b = D.Builder.create ~nodes:2 () in
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Digraph.Builder.add_edge: (0, 2) with 2 nodes") (fun () ->
      ignore (D.Builder.add_edge b ~src:0 ~dst:2))

(* --- SCC --- *)

(* Oracle: components via pairwise mutual reachability. *)
let scc_oracle g =
  let n = D.n_nodes g in
  let reach = Graphs.Reach.all g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) = -1 then begin
      let c = !next in
      incr next;
      for w = v to n - 1 do
        if comp.(w) = -1 && Bitvec.get reach.(v) w && Bitvec.get reach.(w) v then
          comp.(w) <- c
      done
    end
  done;
  comp

let same_partition c1 c2 =
  let n = Array.length c1 in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if c1.(i) = c1.(j) <> (c2.(i) = c2.(j)) then ok := false
    done
  done;
  !ok

let test_scc_simple () =
  let g = mk 5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4) ] in
  let r = Scc.compute g in
  Alcotest.(check int) "three components" 3 r.Scc.n_comps;
  Alcotest.(check bool) "cycle together" true (r.Scc.comp.(0) = r.Scc.comp.(1));
  Alcotest.(check bool) "cycle together" true (r.Scc.comp.(1) = r.Scc.comp.(2));
  Alcotest.(check bool) "tail separate" true (r.Scc.comp.(3) <> r.Scc.comp.(2));
  (* Reverse topological numbering: edges cross to smaller ids. *)
  D.iter_edges g (fun _ s d ->
      if r.Scc.comp.(s) <> r.Scc.comp.(d) then
        Alcotest.(check bool) "reverse topo" true (r.Scc.comp.(s) > r.Scc.comp.(d)))

let test_scc_self_loop () =
  let g = mk 2 [ (0, 0) ] in
  let r = Scc.compute g in
  Alcotest.(check int) "two singletons" 2 r.Scc.n_comps;
  Alcotest.(check bool) "self-loop not trivial" false (Scc.is_trivial g r r.Scc.comp.(0));
  Alcotest.(check bool) "isolated trivial" true (Scc.is_trivial g r r.Scc.comp.(1))

let test_condense () =
  let g = mk 6 [ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (3, 4); (0, 4); (4, 5) ] in
  let r = Scc.compute g in
  let c = Scc.condense g r in
  Alcotest.(check int) "four comps" 4 r.Scc.n_comps;
  (* Condensation is a simple DAG. *)
  Alcotest.(check bool) "acyclic" true (Graphs.Topo.sort c <> None);
  let seen = Hashtbl.create 8 in
  D.iter_edges c (fun _ s d ->
      Alcotest.(check bool) "no dup edges" false (Hashtbl.mem seen (s, d));
      Hashtbl.add seen (s, d) ())

let arb_graph =
  let gen =
    QCheck.Gen.(
      let* n = 1 -- 25 in
      let* m = 0 -- 60 in
      let* seed = 0 -- 100000 in
      return (n, m, seed))
  in
  QCheck.make gen ~print:(fun (n, m, s) -> Printf.sprintf "n=%d m=%d seed=%d" n m s)

let graph_of (n, m, seed) =
  Graphs.Gen.random (Random.State.make [| seed |]) ~nodes:n ~edges:m

let prop_scc_matches_oracle params =
  let g = graph_of params in
  same_partition (Scc.compute g).Scc.comp (scc_oracle g)

let prop_scc_reverse_topo params =
  let g = graph_of params in
  let r = Scc.compute g in
  let ok = ref true in
  D.iter_edges g (fun _ s d ->
      if r.Scc.comp.(s) <> r.Scc.comp.(d) && r.Scc.comp.(s) <= r.Scc.comp.(d) then
        ok := false);
  !ok

let prop_condensation_acyclic params =
  let g = graph_of params in
  let r = Scc.compute g in
  Graphs.Topo.sort (Scc.condense g r) <> None

(* --- DFS --- *)

let test_dfs_classification () =
  (* 0 -> 1 -> 2, 0 -> 2 (forward), 2 -> 0 (back), plus 3 -> 1 (cross,
     when 3 is searched after the first tree). *)
  let g = mk 4 [ (0, 1); (1, 2); (0, 2); (2, 0); (3, 1) ] in
  let t = Dfs.run g in
  Alcotest.(check bool) "tree" true (t.Dfs.kind.(0) = Dfs.Tree);
  Alcotest.(check bool) "tree" true (t.Dfs.kind.(1) = Dfs.Tree);
  Alcotest.(check bool) "forward" true (t.Dfs.kind.(2) = Dfs.Forward);
  Alcotest.(check bool) "back" true (t.Dfs.kind.(3) = Dfs.Back);
  Alcotest.(check bool) "cross" true (t.Dfs.kind.(4) = Dfs.Cross);
  Alcotest.(check bool) "ancestor" true (Dfs.is_ancestor t ~anc:0 ~desc:2);
  Alcotest.(check bool) "not ancestor" false (Dfs.is_ancestor t ~anc:3 ~desc:2)

let prop_dfs_edge_kinds params =
  (* Classification laws: tree/forward edges go to descendants, back
     edges to ancestors, cross edges to finished non-descendants. *)
  let g = graph_of params in
  let t = Dfs.run g in
  let ok = ref true in
  D.iter_edges g (fun e s d ->
      let anc_sd = Dfs.is_ancestor t ~anc:s ~desc:d in
      let anc_ds = Dfs.is_ancestor t ~anc:d ~desc:s in
      (match t.Dfs.kind.(e) with
      | Dfs.Tree -> if not (anc_sd && t.Dfs.parent.(d) = s) then ok := false
      | Dfs.Forward -> if not anc_sd then ok := false
      | Dfs.Back -> if not anc_ds then ok := false
      | Dfs.Cross ->
        if anc_sd || not (t.Dfs.pre.(d) < t.Dfs.pre.(s)) then ok := false);
      ())
    ;
  !ok

(* --- topo / reach --- *)

let test_topo () =
  let g = mk 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  (match Graphs.Topo.sort g with
  | None -> Alcotest.fail "DAG reported cyclic"
  | Some order ->
    let pos = Array.make 4 0 in
    List.iteri (fun i v -> pos.(v) <- i) order;
    D.iter_edges g (fun _ s d ->
        Alcotest.(check bool) "order respects edges" true (pos.(s) < pos.(d))));
  Alcotest.(check bool) "cycle detected" true
    (Graphs.Topo.sort (mk 2 [ (0, 1); (1, 0) ]) = None)

let test_reach () =
  let g = mk 5 [ (0, 1); (1, 2); (3, 4) ] in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ] (Bitvec.to_list (Graphs.Reach.from g 0));
  Alcotest.(check bool) "0 to 2" true (Graphs.Reach.reaches g ~src:0 ~dst:2);
  Alcotest.(check bool) "0 to 4" false (Graphs.Reach.reaches g ~src:0 ~dst:4)

let test_deep_chain_no_overflow () =
  (* The iterative implementations must survive a 200k-node path. *)
  let n = 200_000 in
  let g = Graphs.Gen.chain n in
  let r = Scc.compute g in
  Alcotest.(check int) "all singletons" n r.Scc.n_comps;
  let t = Dfs.run g in
  Alcotest.(check int) "last preorder" (n - 1) t.Dfs.pre.(n - 1)

let test_misc_api () =
  let g = mk 4 [ (0, 1); (1, 2); (2, 1); (0, 3) ] in
  (* fold over out-edges *)
  let deg0 = D.fold_out_edges g 0 ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  Alcotest.(check int) "fold counts out-edges" 2 deg0;
  (* one representative per SCC, a member of it *)
  let r = Scc.compute g in
  let reps = Scc.representative r in
  Alcotest.(check int) "one rep per comp" r.Scc.n_comps (Array.length reps);
  Array.iteri
    (fun c v -> Alcotest.(check int) "rep belongs to its comp" c r.Scc.comp.(v))
    reps;
  (* reverse postorder of a DAG is a topological order *)
  let dag = mk 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let order = Graphs.Topo.reverse_post_order dag in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  D.iter_edges dag (fun _ s d ->
      Alcotest.(check bool) "rpo respects edges" true (pos.(s) < pos.(d)))

let test_fixed_generators rng =
  let cyc = Graphs.Gen.cycle 5 in
  let r = Scc.compute cyc in
  Alcotest.(check int) "cycle is one SCC" 1 r.Scc.n_comps;
  let k = Graphs.Gen.complete 5 in
  Alcotest.(check int) "complete edges" 20 (D.n_edges k);
  Alcotest.(check int) "complete is one SCC" 1 (Scc.compute k).Scc.n_comps;
  let tr = Graphs.Gen.tree rng ~nodes:50 ~arity:3 in
  Alcotest.(check int) "tree edges" 49 (D.n_edges tr);
  Alcotest.(check bool) "tree acyclic" true (Graphs.Topo.sort tr <> None);
  Alcotest.(check int) "tree reaches all from root" 50
    (Bitvec.cardinal (Graphs.Reach.from tr 0));
  let cl = Graphs.Gen.clustered rng ~clusters:4 ~cluster_size:5 ~extra:6 in
  let rc = Scc.compute cl in
  Alcotest.(check int) "clustered: one SCC per cluster" 4 rc.Scc.n_comps;
  Alcotest.(check bool) "condensation acyclic" true
    (Graphs.Topo.sort (Scc.condense cl rc) <> None)

let prop_generators_shape params =
  let n, m, seed = params in
  let rng = Random.State.make [| seed |] in
  let dag = if n >= 2 then Graphs.Gen.random_dag rng ~nodes:n ~edges:m else Graphs.Gen.chain 1 in
  Graphs.Topo.sort dag <> None

let () =
  Helpers.run "graphs"
    [
      ( "digraph",
        [
          Alcotest.test_case "builder and CSR" `Quick test_builder;
          Alcotest.test_case "edge endpoints and reverse" `Quick test_edge_endpoints;
          Alcotest.test_case "bad edge raises" `Quick test_bad_edge;
        ] );
      ( "scc",
        [
          Alcotest.test_case "simple cycle plus tail" `Quick test_scc_simple;
          Alcotest.test_case "self loop vs isolated" `Quick test_scc_self_loop;
          Alcotest.test_case "condensation" `Quick test_condense;
          Helpers.qtest "matches mutual-reachability oracle" arb_graph
            prop_scc_matches_oracle;
          Helpers.qtest "components in reverse topo order" arb_graph
            prop_scc_reverse_topo;
          Helpers.qtest "condensation acyclic" arb_graph prop_condensation_acyclic;
        ] );
      ( "dfs",
        [
          Alcotest.test_case "edge classification" `Quick test_dfs_classification;
          Helpers.qtest "classification laws" arb_graph prop_dfs_edge_kinds;
        ] );
      ( "topo-reach",
        [
          Alcotest.test_case "topological sort" `Quick test_topo;
          Alcotest.test_case "reachability" `Quick test_reach;
          Alcotest.test_case "200k-node chain, iterative" `Slow
            test_deep_chain_no_overflow;
          Helpers.seeded_case "fixed generator shapes" `Quick test_fixed_generators;
          Alcotest.test_case "misc graph API" `Quick test_misc_api;
          Helpers.qtest "random_dag is acyclic" arb_graph prop_generators_shape;
        ] );
    ]
