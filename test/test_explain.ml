(* Provenance / explain soundness.

   Two contracts from the observability work:

   1. {e Replay}: every witness chain the explain layer reconstructs is
      a real path in the call / binding multigraph, and replaying each
      step against the finished solutions (and the ground-truth local
      sets) re-derives the fact.  Checked exhaustively: every GMOD/GUSE
      bit, every set RMOD/RUSE β node and every §5 alias pair of every
      program must yield a chain that validates step by step.

   2. {e Invisibility}: [~provenance:true] changes neither a single
      result bit nor a single counted operation — recording reasons
      must stay off the measured paths. *)

module A = Core.Analyze
module P = Core.Provenance
module E = Core.Explain
module B = Callgraph.Binding

let analyze prog = A.run ~provenance:true prog

let gset (t : A.t) = function `Mod -> t.A.gmod | `Use -> t.A.guse
let rres (t : A.t) = function `Mod -> t.A.rmod | `Use -> t.A.ruse
let iplus (t : A.t) = function `Mod -> t.A.imod_plus | `Use -> t.A.iuse_plus
let ifold (t : A.t) = function `Mod -> t.A.imod | `Use -> t.A.iuse

(* The flat (unfolded) LMOD/LUSE family — the eq. 5 ground truth a
   terminal [Glocal] step must replay against. *)
let flat_local (t : A.t) = function
  | `Mod -> Frontend.Local.imod_flat t.A.info
  | `Use -> Frontend.Local.iuse_flat t.A.info

let side_name = function `Mod -> "MOD" | `Use -> "USE"

let ref_base (s : Ir.Prog.site) pos =
  if pos < 0 || pos >= Array.length s.Ir.Prog.args then None
  else
    match s.Ir.Prog.args.(pos) with
    | Ir.Prog.Arg_ref lv -> Some (Ir.Expr.lvalue_base lv)
    | Ir.Prog.Arg_value _ -> None

(* --- GMOD/GUSE chains ------------------------------------------------ *)

(* One link of eq. 4/5: either a propagation step whose side condition
   holds and whose successor continues at the right procedure, or a
   terminal seed that replays against ground truth. *)
let gmod_step_ok t side ~var (step : E.gmod_step) (next : E.gmod_step option) =
  let prog = t.A.prog in
  match (step.E.reason, next) with
  | P.Gcall sid, Some n ->
    let s = Ir.Prog.site prog sid in
    s.Ir.Prog.caller = step.E.proc
    && s.Ir.Prog.callee = n.E.proc
    && Bitvec.get (gset t side).(n.E.proc) var
    && not (Bitvec.get (Ir.Info.local t.A.info n.E.proc) var)
  | P.Gnested c, Some n ->
    n.E.proc = c
    && List.mem c (Ir.Prog.proc prog step.E.proc).Ir.Prog.nested
    && Bitvec.get (iplus t side).(c) var
    && not (Bitvec.get (Ir.Info.local t.A.info c) var)
  | P.Glocal, None -> Bitvec.get (flat_local t side).(step.E.proc) var
  | P.Gbind { site; arg_pos }, None ->
    let s = Ir.Prog.site prog site in
    let callee = Ir.Prog.proc prog s.Ir.Prog.callee in
    s.Ir.Prog.caller = step.E.proc
    && ref_base s arg_pos = Some var
    && arg_pos < Array.length callee.Ir.Prog.formals
    && Core.Rmod.modified (rres t side) callee.Ir.Prog.formals.(arg_pos)
  | _ -> false (* terminal reason mid-chain, or propagation at the end *)

let rec gmod_chain_ok t side ~var = function
  | [] -> false
  | [ last ] -> gmod_step_ok t side ~var last None
  | step :: (next :: _ as rest) ->
    gmod_step_ok t side ~var step (Some next) && gmod_chain_ok t side ~var rest

let check_gmod_fact t side ~proc ~var =
  match E.gmod_chain t ~side ~proc ~var with
  | None -> QCheck.Test.fail_reportf "no chain for %s fact p%d v%d" (side_name side) proc var
  | Some [] -> QCheck.Test.fail_reportf "empty chain for p%d v%d" proc var
  | Some (head :: _ as chain) ->
    if head.E.proc <> proc then
      QCheck.Test.fail_reportf "chain for p%d v%d starts at p%d" proc var head.E.proc;
    if not (gmod_chain_ok t side ~var chain) then
      QCheck.Test.fail_reportf "chain for %s p%d v%d does not replay" (side_name side)
        proc var;
    true

(* --- RMOD/RUSE chains ------------------------------------------------ *)

let check_rmod_fact t side ~var =
  let b = t.A.binding in
  let res = rres t side in
  match E.rmod_chain t ~side ~var with
  | None -> QCheck.Test.fail_reportf "no β chain for %s formal v%d" (side_name side) var
  | Some [] -> QCheck.Test.fail_reportf "empty β chain for v%d" var
  | Some (head :: _ as chain) ->
    if B.node_opt b var <> Some head.E.node then
      QCheck.Test.fail_reportf "β chain for v%d starts at node %d" var head.E.node;
    let rec walk : E.rmod_step list -> bool = function
      | [] -> assert false
      | [ last ] -> (
        (* A chain ends at a seed: the node's formal is in its owner's
           folded IMOD/IUSE. *)
        match last.E.reason with
        | P.Rseed ->
          let v' = B.var b last.E.node in
          let owner = Option.get (Ir.Prog.var_owner (Ir.Prog.var t.A.prog v')) in
          res.Core.Rmod.rmod.(last.E.node) && Bitvec.get (ifold t side).(owner) v'
        | P.Redge _ -> false)
      | step :: (next :: _ as rest) -> (
        match step.E.reason with
        | P.Rseed -> false
        | P.Redge e ->
          (* eq. 6: the bit flows edge-backwards, so the chain walks the
             edge forwards, from its source to its destination. *)
          res.Core.Rmod.rmod.(step.E.node)
          && Graphs.Digraph.edge_src b.B.graph e = step.E.node
          && Graphs.Digraph.edge_dst b.B.graph e = next.E.node
          && walk rest)
    in
    if not (walk chain) then
      QCheck.Test.fail_reportf "β chain for %s v%d does not replay" (side_name side) var;
    true

(* --- alias pairs ----------------------------------------------------- *)

let alias_link_ok t (l : E.alias_link) =
  let prog = t.A.prog in
  let x, y = l.E.pair in
  Core.Alias.may_alias t.A.alias ~proc:l.E.aproc x y
  &&
  match l.E.reason with
  | P.Apositions { site; pos_i; pos_j } ->
    let s = Ir.Prog.site prog site in
    let callee = Ir.Prog.proc prog s.Ir.Prog.callee in
    l.E.aproc = s.Ir.Prog.callee
    && (match (ref_base s pos_i, ref_base s pos_j) with
       | Some a, Some b -> a = b
       | _ -> false)
    && Core.Alias.norm callee.Ir.Prog.formals.(pos_i) callee.Ir.Prog.formals.(pos_j)
       = (x, y)
  | P.Avisible { site; pos } ->
    let s = Ir.Prog.site prog site in
    let callee = Ir.Prog.proc prog s.Ir.Prog.callee in
    l.E.aproc = s.Ir.Prog.callee
    && (match ref_base s pos with
       | Some b ->
         Core.Alias.norm callee.Ir.Prog.formals.(pos) b = (x, y)
         && Ir.Prog.visible prog ~proc:s.Ir.Prog.callee ~var:b
       | None -> false)
  | P.Apropagated { site; from_pair } ->
    let s = Ir.Prog.site prog site in
    let fx, fy = from_pair in
    l.E.aproc = s.Ir.Prog.callee
    && Core.Alias.may_alias t.A.alias ~proc:s.Ir.Prog.caller fx fy
  | P.Ainherited { parent } ->
    (Ir.Prog.proc prog l.E.aproc).Ir.Prog.parent = Some parent
    && Core.Alias.may_alias t.A.alias ~proc:parent x y
  | P.Apointsto { site; pos } ->
    (* A points-to-introduced pair: the flagged position is a
       dereference actual of the right site. *)
    let s = Ir.Prog.site prog site in
    l.E.aproc = s.Ir.Prog.callee
    && pos < Array.length s.Ir.Prog.args
    &&
    (match s.Ir.Prog.args.(pos) with
    | Ir.Prog.Arg_ref (Ir.Expr.Lderef _) -> true
    | _ -> false)

let check_alias_fact t ~proc x y =
  match E.alias_links t ~proc x y with
  | None | Some [] ->
    QCheck.Test.fail_reportf "no derivation for alias <%d,%d> in p%d" x y proc
  | Some (head :: _ as links) ->
    if head.E.aproc <> proc || head.E.pair <> Core.Alias.norm x y then
      QCheck.Test.fail_reportf "alias derivation head mismatch for p%d" proc;
    List.iter
      (fun l ->
        if not (alias_link_ok t l) then
          let lx, ly = l.E.pair in
          let r =
            match l.E.reason with
            | P.Apositions { site; pos_i; pos_j } ->
              Printf.sprintf "Apositions s%d %d/%d" site pos_i pos_j
            | P.Avisible { site; pos } -> Printf.sprintf "Avisible s%d %d" site pos
            | P.Apropagated { site; from_pair = fx, fy } ->
              Printf.sprintf "Apropagated s%d <%d,%d>" site fx fy
            | P.Ainherited { parent } -> Printf.sprintf "Ainherited p%d" parent
            | P.Apointsto { site; pos } -> Printf.sprintf "Apointsto s%d %d" site pos
          in
          QCheck.Test.fail_reportf "alias link <%d,%d> in p%d (%s) does not replay" lx
            ly l.E.aproc r)
      links;
    true

(* --- exhaustive per-program check ------------------------------------ *)

(* Returns the number of facts checked so tests can insist the corpus
   was not vacuous. *)
let check_program prog =
  let t = analyze prog in
  let facts = ref 0 in
  List.iter
    (fun side ->
      Array.iteri
        (fun pid set ->
          List.iter
            (fun vid ->
              incr facts;
              ignore (check_gmod_fact t side ~proc:pid ~var:vid))
            (Bitvec.to_list set))
        (gset t side);
      let res = rres t side in
      Ir.Prog.iter_vars prog (fun v ->
          if Ir.Prog.is_ref_formal v then
            let vid = v.Ir.Prog.vid in
            match B.node_opt t.A.binding vid with
            | Some n when res.Core.Rmod.rmod.(n) ->
              incr facts;
              ignore (check_rmod_fact t side ~var:vid)
            | _ -> ()))
    [ `Mod; `Use ];
  Ir.Prog.iter_procs prog (fun p ->
      List.iter
        (fun (x, y) ->
          incr facts;
          ignore (check_alias_fact t ~proc:p.Ir.Prog.pid x y))
        (Core.Alias.pairs t.A.alias p.Ir.Prog.pid));
  !facts

let prop_replay_flat seed = check_program (Helpers.flat_of_seed seed) >= 0
let prop_replay_nested seed = check_program (Helpers.nested_of_seed seed) >= 0

let prop_replay_generated seed =
  let rand = Random.State.make [| seed; 0x3a17e55 |] in
  check_program (Workload.Gen.generate rand Workload.Gen.default) >= 0

let test_families_exhaustive () =
  let total =
    List.fold_left
      (fun acc (name, prog) ->
        let n = check_program prog in
        if n = 0 then Alcotest.failf "%s: no facts to explain" name;
        acc + n)
      0
      [
        ("ref_chain", Workload.Families.ref_chain 10);
        ("ref_cycle", Workload.Families.ref_cycle 6);
        ("global_chain", Workload.Families.global_chain 8);
        ("mutual_pair", Workload.Families.mutual_pair ());
        ("diamond", Workload.Families.diamond ());
        ("nested_textbook", Workload.Families.nested_textbook ());
        ("arrays", Workload.Arrays.generate ~seed:3 ~n_kernels:5);
      ]
  in
  Helpers.check_bool "corpus is not vacuous" true (total > 100)

(* --- provenance is invisible ----------------------------------------- *)

let counters_only d =
  List.filter
    (fun (name, _) ->
      match Obs.Metric.find name with
      | Some h -> Obs.Metric.kind h = Obs.Metric.Counter
      | None -> false)
    d

let same_bits (a : A.t) (b : A.t) =
  Array.for_all2 Bitvec.equal a.A.gmod b.A.gmod
  && Array.for_all2 Bitvec.equal a.A.guse b.A.guse
  && Array.for_all2 Bool.equal a.A.rmod.Core.Rmod.rmod b.A.rmod.Core.Rmod.rmod
  && Array.for_all2 Bool.equal a.A.ruse.Core.Rmod.rmod b.A.ruse.Core.Rmod.rmod
  && a.A.rmod.Core.Rmod.steps = b.A.rmod.Core.Rmod.steps
  && Core.Alias.total_pairs a.A.alias = Core.Alias.total_pairs b.A.alias

let prop_provenance_invisible seed =
  let prog = Helpers.nested_of_seed ~n:20 seed in
  let measure provenance =
    let snap = Obs.Metric.snapshot () in
    let t = A.run ~provenance prog in
    (t, counters_only (Obs.Metric.delta ~since:snap))
  in
  let off, d_off = measure false in
  let on, d_on = measure true in
  if not (same_bits off on) then
    QCheck.Test.fail_reportf "provenance changed result bits (seed %d)" seed;
  List.iter2
    (fun (name, a) (name', b) ->
      if name <> name' || a <> b then
        QCheck.Test.fail_reportf "provenance changed op counts: %s %d <> %d" name a b)
    d_off d_on;
  on.A.provenance <> None && off.A.provenance = None

let () =
  Helpers.run "explain"
    [
      ( "replay",
        [
          Alcotest.test_case "fixed families, every fact" `Quick
            test_families_exhaustive;
          Helpers.qtest ~count:40 "flat programs replay" Helpers.arb_flat_prog
            prop_replay_flat;
          Helpers.qtest ~count:40 "nested programs replay" Helpers.arb_nested_prog
            prop_replay_nested;
          Helpers.qtest ~count:25 "generator programs replay" Helpers.arb_flat_prog
            prop_replay_generated;
        ] );
      ( "invisibility",
        [
          Helpers.qtest ~count:30 "bits and op counts identical"
            Helpers.arb_nested_prog prop_provenance_invisible;
        ] );
    ]
