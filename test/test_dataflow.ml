(* The statement-level dataflow layer: CFG shape against the documented
   construction, solver results against hand computations, graph
   well-formedness on generated programs, the interpreter's
   read-before-write oracle for liveness, and the determinism contracts
   of the dead-store / rmw-hint rules (jobs-invariance, incremental
   equals batch). *)

module P = Ir.Prog
module Cfg = Dataflow.Cfg

let compile = Helpers.compile
let check_int = Helpers.check_int
let check_bool = Helpers.check_bool

let compile_locs src =
  match Frontend.Sema.compile_with_locs ~file:"<test>" src with
  | Ok r -> r
  | Error _ -> Alcotest.fail "compile_with_locs failed"

let main_cfg ?locs prog = Cfg.build ?locs prog prog.P.main

let ids = Array.to_list

(* --- CFG shape ----------------------------------------------------- *)

let test_shape_straight () =
  let prog = compile {|program p; var x : int; begin x := 1; x := 2; write x; end.|} in
  let c = main_cfg prog in
  check_int "blocks" 2 (Cfg.n_blocks c);
  check_int "edges" 1 (Cfg.n_edges c);
  check_int "instrs" 3 (Cfg.n_instrs c);
  check_int "entry" 0 c.Cfg.entry;
  check_int "exit is last" (Cfg.n_blocks c - 1) c.Cfg.exit_

let test_shape_if () =
  let prog =
    compile
      {|program p; var x : int;
begin
  if x < 1 then
    x := 1;
  else
    x := 2;
  end;
  write x;
end.|}
  in
  let c = main_cfg prog in
  (* entry (cond), then, else, join, exit *)
  check_int "blocks" 5 (Cfg.n_blocks c);
  check_int "edges" 5 (Cfg.n_edges c);
  let b0 = c.Cfg.blocks.(0) in
  check_int "entry branches" 2 (Array.length b0.Cfg.succs);
  (match b0.Cfg.instrs.(Array.length b0.Cfg.instrs - 1) with
  | _, Cfg.Cond _ -> ()
  | _ -> Alcotest.fail "entry should end in the if condition");
  let bt = b0.Cfg.succs.(0) and be = b0.Cfg.succs.(1) in
  check_bool "then before else" true (bt < be);
  Alcotest.(check (list int))
    "arms meet at the join"
    (ids c.Cfg.blocks.(bt).Cfg.succs)
    (ids c.Cfg.blocks.(be).Cfg.succs)

let test_shape_while () =
  let prog =
    compile
      {|program p; var x : int;
begin
  while x > 0 do
    x := x - 1;
  end;
end.|}
  in
  let c = main_cfg prog in
  (* entry, test, body, join, exit *)
  check_int "blocks" 5 (Cfg.n_blocks c);
  check_int "edges" 5 (Cfg.n_edges c);
  let test = c.Cfg.blocks.(0).Cfg.succs.(0) in
  let tb = c.Cfg.blocks.(test) in
  check_int "test branches" 2 (Array.length tb.Cfg.succs);
  let body = tb.Cfg.succs.(0) in
  check_bool "body loops back to the test" true
    (Array.exists (fun s -> s = test) c.Cfg.blocks.(body).Cfg.succs)

let test_shape_for () =
  let prog =
    compile
      {|program p; var x, i : int;
begin
  for i := 1 to 3 do
    x := x + i;
  end;
end.|}
  in
  let c = main_cfg prog in
  (* entry (init), test, body, latch, join, exit *)
  check_int "blocks" 6 (Cfg.n_blocks c);
  check_int "edges" 6 (Cfg.n_edges c);
  (match c.Cfg.blocks.(0).Cfg.instrs with
  | [| (0, Cfg.For_init _) |] -> ()
  | _ -> Alcotest.fail "entry should hold exactly the for-init");
  (* init, test and step share the for statement's ordinal; the body
     assignment gets the next one. *)
  let ords = Hashtbl.create 8 in
  Cfg.iter_instrs c (fun ~block:_ ord i ->
      let tag =
        match i with
        | Cfg.For_init _ -> "init"
        | Cfg.For_test _ -> "test"
        | Cfg.For_step _ -> "step"
        | Cfg.Assign _ -> "assign"
        | _ -> "other"
      in
      Hashtbl.replace ords tag ord);
  check_int "test shares the for ordinal" (Hashtbl.find ords "init")
    (Hashtbl.find ords "test");
  check_int "step shares the for ordinal" (Hashtbl.find ords "init")
    (Hashtbl.find ords "step");
  check_int "body statement is the next ordinal"
    (Hashtbl.find ords "init" + 1)
    (Hashtbl.find ords "assign")

(* --- statement positions ------------------------------------------- *)

let test_stmt_locs () =
  let _prog, locs =
    compile_locs
      {|program p;
var x, i : int;
begin
  x := 0;
  for i := 1 to 3 do
    x := x + i;
  end;
  write x;
end.|}
  in
  let line ord = (Frontend.Locs.stmt locs ~proc:0 ord).Frontend.Loc.line in
  check_int "first assign" 4 (line 0);
  check_int "for header" 5 (line 1);
  check_int "loop body has its own position" 6 (line 2);
  check_int "write" 8 (line 3)

(* --- liveness / dead-store directed cases -------------------------- *)

let df_rules = List.filter_map Lint.Rule.find [ "dead-store"; "rmw-hint" ]

let findings_of ?rules src =
  let prog, locs = compile_locs src in
  let rules = Option.value ~default:df_rules rules in
  (prog, Lint.Engine.run ~locs ~rules (Core.Analyze.run prog))

let codes ds = List.map (fun d -> d.Lint.Diagnostic.code) ds

let test_dead_through_call_kill () =
  (* 'set' definitely overwrites x without reading it, so the earlier
     store is dead across the call. *)
  let _, ds =
    findings_of
      {|program p;
var x : int;
procedure set(var a : int);
begin
  a := 5;
end;
begin
  x := 1;
  call set(x);
  write x;
end.|}
  in
  Alcotest.(check (list string)) "one dead store" [ "SFX008" ] (codes ds);
  check_int "on the store before the call" 8
    (List.hd ds).Lint.Diagnostic.loc.Frontend.Loc.line

let test_alias_keeps_store () =
  (* 'v := 3' is read only through the other name: <u, v> is a §5 alias
     pair of outer (both bound to sum), so the read of u at the readit
     call keeps v alive; 'v := 0' survives through the by-ref exit
     boundary.  No dead store anywhere. *)
  let _, ds =
    findings_of
      {|program p;
var sum : int;
procedure readit(var a : int);
begin
  sum := sum + a;
end;
procedure outer(var u : int; var v : int);
begin
  v := 3;
  call readit(u);
  v := 0;
end;
begin
  sum := 0;
  call outer(sum, sum);
  write sum;
end.|}
  in
  check_bool "no dead-store under aliasing" true
    (not (List.exists (fun d -> d.Lint.Diagnostic.code = "SFX008") ds))

let test_dead_despite_callee_alias () =
  (* The converse: 'both' definitely writes through formal a whatever a
     aliases, so projecting MUSTDEF through the binding still kills x
     in the caller — the store before the call is a true positive. *)
  let _, ds =
    findings_of
      {|program p;
var x : int;
procedure both(var a : int; var b : int);
begin
  a := 1;
  b := 2;
end;
begin
  x := 1;
  call both(x, x);
  write x;
end.|}
  in
  check_bool "dead store still found" true
    (List.exists (fun d -> d.Lint.Diagnostic.code = "SFX008") ds)

let test_use_before_kill_keeps_store () =
  (* The callee reads its formal before overwriting it: gen beats kill. *)
  let _, ds =
    findings_of
      {|program p;
var x : int;
procedure inc(var a : int);
begin
  a := a + 1;
end;
begin
  x := 1;
  call inc(x);
  write x;
end.|}
  in
  check_bool "no dead-store when the call reads first" true
    (not (List.exists (fun d -> d.Lint.Diagnostic.code = "SFX008") ds));
  check_bool "rmw-hint fires instead" true
    (List.exists (fun d -> d.Lint.Diagnostic.code = "SFX009") ds)

let test_exit_boundary_keeps_global () =
  (* End-of-main stores to globals are never dead: output is
     observable. *)
  let _, ds =
    findings_of {|program p;
var x : int;
begin
  x := 1;
end.|}
  in
  Alcotest.(check (list string)) "no findings" [] (codes ds)

(* --- reaching definitions ------------------------------------------ *)

let test_reach_straight_line () =
  let prog =
    compile {|program p; var x : int; begin x := 1; x := 2; write x; end.|}
  in
  let t = Core.Analyze.run prog in
  let drv = Dataflow.Driver.create t in
  let s = Dataflow.Driver.solution drv prog.P.main in
  let r = s.Dataflow.Driver.reach in
  check_int "two definitions" 2 (Dataflow.Reach.n_defs r);
  (* Only the second store reaches the exit: the universe is enumerated
     in block/instruction order, so it is def 1. *)
  Alcotest.(check (list int))
    "second store reaches exit" [ 1 ]
    (Bitvec.to_list (Dataflow.Reach.reach_in r s.Dataflow.Driver.cfg.Cfg.exit_));
  let d = Dataflow.Reach.def r 1 in
  check_bool "and it is a must-def" true d.Dataflow.Reach.must

let test_reach_call_defs () =
  (* A call contributes one definition per variable of MOD(s). *)
  let prog =
    compile
      {|program p;
var g, h : int;
procedure w(var a : int);
begin
  a := 1;
  g := 2;
end;
begin
  call w(h);
  write g;
  write h;
end.|}
  in
  let t = Core.Analyze.run prog in
  let drv = Dataflow.Driver.create t in
  let s = Dataflow.Driver.solution drv prog.P.main in
  let r = s.Dataflow.Driver.reach in
  check_int "call defines g and h" 2 (Dataflow.Reach.n_defs r);
  Alcotest.(check (list int))
    "both reach exit" [ 0; 1 ]
    (Bitvec.to_list (Dataflow.Reach.reach_in r s.Dataflow.Driver.cfg.Cfg.exit_))

(* --- well-formedness ------------------------------------------------ *)

let check_validate prog =
  match Cfg.validate prog with
  | Ok () -> true
  | Error errs ->
    QCheck.Test.fail_reportf "CFG invalid: %a"
      (Fmt.list ~sep:Fmt.comma Ir.Validate.pp_error)
      errs

let prop_valid_flat seed = check_validate (Helpers.flat_of_seed seed)
let prop_valid_nested seed = check_validate (Helpers.nested_of_seed seed)

let test_check_cfg_rejects () =
  let errs ~n_blocks ~entry ~exit_ succs =
    Ir.Validate.check_cfg ~where:"test" ~n_blocks ~entry ~exit_
      ~succs:(fun b -> succs.(b))
  in
  let expect name es = check_bool name true (es <> []) in
  expect "successor out of range"
    (errs ~n_blocks:2 ~entry:0 ~exit_:1 [| [ 5 ]; [] |]);
  expect "exit with a successor"
    (errs ~n_blocks:2 ~entry:0 ~exit_:1 [| [ 1 ]; [ 0 ] |]);
  expect "unreachable block"
    (errs ~n_blocks:3 ~entry:0 ~exit_:2 [| [ 2 ]; [ 2 ]; [] |]);
  expect "block that cannot reach exit"
    (errs ~n_blocks:3 ~entry:0 ~exit_:2 [| [ 1; 2 ]; []; [] |]);
  check_bool "well-formed diamond accepted" true
    (errs ~n_blocks:4 ~entry:0 ~exit_:3 [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |] = [])

(* --- the interpreter's liveness oracle ------------------------------ *)

(* Project the callee-frame live-at-entry set through a site's binding
   into the caller's frame: globals survive, by-ref formals map to the
   base variable of their actual, everything else (locals, by-value
   formals — whose argument evaluation the interpreter charges to the
   caller, not the site) drops out. *)
let project_entry_live prog (site : P.site) live =
  let out = Bitvec.create (P.n_vars prog) in
  Bitvec.iter
    (fun v ->
      match (P.var prog v).P.kind with
      | P.Global -> Bitvec.set out v
      | P.Local _ -> ()
      | P.Formal { proc; index; mode } ->
        if proc = site.P.callee && mode = P.By_ref then (
          match site.P.args.(index) with
          | P.Arg_ref (Ir.Expr.Lvar a) -> Bitvec.set out a
          | P.Arg_ref (Ir.Expr.Lindex (a, _) | Ir.Expr.Lderef (a, _)) ->
            Bitvec.set out a
          | P.Arg_value _ -> ()))
    live;
  out

(* Every cell a call read before writing must be predicted live into
   the callee: observed_live(s) ⊆ aliases(b_e(LIVE_in(entry))).  The
   sharp half of the dataflow contract — a kill set that is too eager
   (an unsound MUSTDEF, a missing alias subtraction) fails here even
   though plain USE-soundness still holds. *)
let prop_live_oracle seed =
  let prog = Helpers.flat_of_seed ~n:20 seed in
  let t = Core.Analyze.run prog in
  let drv = Dataflow.Driver.create t in
  let o = Interp.run ~fuel:10_000 ~max_depth:256 prog in
  o.Interp.truncated
  ||
  let ok = ref true in
  P.iter_sites prog (fun s ->
      let sid = s.P.sid in
      if o.Interp.calls_executed.(sid) > 0 then begin
        let sol = Dataflow.Driver.solution drv s.P.callee in
        let live =
          Dataflow.Live.live_in sol.Dataflow.Driver.live
            sol.Dataflow.Driver.cfg.Cfg.entry
        in
        let static =
          Core.Alias.close t.Core.Analyze.alias ~proc:s.P.caller
            (project_entry_live prog s live)
        in
        if not (Bitvec.subset (Interp.observed_live o sid) static) then begin
          ok := false;
          QCheck.Test.fail_reportf
            "site %d: observed read-before-write not predicted live" sid
        end
      end);
  !ok

let test_live_oracle_exact_straight_line () =
  (* On a straight-line, call-free callee the solver is exact: the
     dynamic read-before-write set equals the projected live-in. *)
  let prog =
    compile
      {|program p;
var g, h : int;
procedure f(var x : int);
begin
  g := x;
  x := h;
end;
begin
  h := 1;
  call f(g);
  write g;
end.|}
  in
  let t = Core.Analyze.run prog in
  let drv = Dataflow.Driver.create t in
  let o = Interp.run prog in
  let s = P.site prog 0 in
  let sol = Dataflow.Driver.solution drv s.P.callee in
  let live =
    Dataflow.Live.live_in sol.Dataflow.Driver.live
      sol.Dataflow.Driver.cfg.Cfg.entry
  in
  let static =
    Core.Alias.close t.Core.Analyze.alias ~proc:s.P.caller
      (project_entry_live prog s live)
  in
  check_bool "observed = predicted" true
    (Bitvec.equal (Interp.observed_live o 0) static)

(* --- determinism ---------------------------------------------------- *)

let render prog rules ds =
  Obs.Json.to_string (Lint.Engine.report_json ~program:prog.P.name ~rules ds)

let prop_jobs_invariant pool seed =
  let prog = Helpers.flat_of_seed ~n:20 seed in
  let t = Core.Analyze.run prog in
  let seq = Lint.Engine.run ~rules:df_rules t in
  let par = Lint.Engine.run ?pool ~rules:df_rules t in
  String.equal (render prog df_rules seq) (render prog df_rules par)
  || QCheck.Test.fail_reportf "jobs=1 and jobs=4 lint JSON differ"

let prop_incremental_matches_batch seed =
  let prog = Helpers.flat_of_seed ~n:20 seed in
  let rand = Random.State.make [| seed; 0xdf |] in
  let script = Workload.Edits.gen ~rand ~steps:6 prog in
  let engine = Incremental.Engine.create prog in
  List.for_all
    (fun (edit, _) ->
      let before = Incremental.Engine.prog engine in
      let (_ : Incremental.Engine.outcome) =
        Incremental.Engine.apply engine edit
      in
      let inc = Incremental.Engine.lint ~rules:df_rules engine in
      let batch =
        Lint.Engine.run ~rules:df_rules (Incremental.Engine.analysis engine)
      in
      inc = batch
      || QCheck.Test.fail_reportf "incremental lint diverged after %s"
           (Incremental.Edit.to_string before edit))
    script

let () =
  let pool = Par.Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Par.Pool.shutdown pool) @@ fun () ->
  Helpers.run "dataflow"
    [
      ( "cfg",
        [
          Alcotest.test_case "straight line" `Quick test_shape_straight;
          Alcotest.test_case "if/else" `Quick test_shape_if;
          Alcotest.test_case "while" `Quick test_shape_while;
          Alcotest.test_case "for" `Quick test_shape_for;
          Alcotest.test_case "statement positions" `Quick test_stmt_locs;
          Alcotest.test_case "check_cfg rejects malformed graphs" `Quick
            test_check_cfg_rejects;
        ] );
      ( "rules",
        [
          Alcotest.test_case "dead through call kill" `Quick
            test_dead_through_call_kill;
          Alcotest.test_case "alias pair keeps the store" `Quick
            test_alias_keeps_store;
          Alcotest.test_case "dead despite callee alias" `Quick
            test_dead_despite_callee_alias;
          Alcotest.test_case "callee read defeats kill" `Quick
            test_use_before_kill_keeps_store;
          Alcotest.test_case "exit boundary keeps globals" `Quick
            test_exit_boundary_keeps_global;
        ] );
      ( "reach",
        [
          Alcotest.test_case "straight line" `Quick test_reach_straight_line;
          Alcotest.test_case "call definitions" `Quick test_reach_call_defs;
        ] );
      ( "random",
        [
          Helpers.qtest ~count:60 "flat CFGs well-formed" Helpers.arb_flat_prog
            prop_valid_flat;
          Helpers.qtest ~count:60 "nested CFGs well-formed"
            Helpers.arb_nested_prog prop_valid_nested;
          Helpers.qtest ~count:60 "liveness covers read-before-write"
            Helpers.arb_flat_prog prop_live_oracle;
          Helpers.qtest ~count:40 "lint jobs-invariant" Helpers.arb_flat_prog
            (prop_jobs_invariant (Some pool));
          Helpers.qtest ~count:30 "incremental lint = batch lint"
            Helpers.arb_flat_prog prop_incremental_matches_batch;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exact on straight-line callee" `Quick
            test_live_oracle_exact_straight_line;
        ] );
    ]
