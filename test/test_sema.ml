(* Semantic analysis tests: scoping, shadowing, typing, id layout,
   diagnostics, and validation of the produced IR. *)

let compile = Helpers.compile

let errors_contain src frag =
  let msgs = Helpers.compile_errors src in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  if msgs = [] then Alcotest.failf "expected a diagnostic mentioning %S" frag;
  if not (List.exists (fun m -> contains m frag) msgs) then
    Alcotest.failf "diagnostics %a lack %S" Fmt.(Dump.list string) msgs frag

(* --- id layout and structure --- *)

let test_layout () =
  let p =
    compile
      {|program m;
var g1, g2 : int;
procedure a(var x : int; y : int);
var t : int;
begin
  t := y;
  x := t;
end;
procedure b();
begin
  call a(g1, g2);
end;
begin
  call b();
end.|}
  in
  Ir.Validate.check_exn p;
  Alcotest.(check int) "main pid" 0 p.Ir.Prog.main;
  Alcotest.(check string) "main name" "m" (Ir.Prog.proc p 0).Ir.Prog.pname;
  Alcotest.(check int) "procs" 3 (Ir.Prog.n_procs p);
  Alcotest.(check int) "vars: 2 globals + 3 in a" 5 (Ir.Prog.n_vars p);
  Alcotest.(check int) "sites" 2 (Ir.Prog.n_sites p);
  (* globals first *)
  Alcotest.(check bool) "g1 global" true (Ir.Prog.is_global (Ir.Prog.var p 0));
  Alcotest.(check bool) "g2 global" true (Ir.Prog.is_global (Ir.Prog.var p 1));
  let a = Option.get (Ir.Prog.find_proc p "a") in
  Alcotest.(check int) "a has 2 formals" 2 (Array.length a.Ir.Prog.formals);
  Alcotest.(check bool) "x by ref" true
    (Ir.Prog.is_ref_formal (Ir.Prog.var p a.Ir.Prog.formals.(0)));
  Alcotest.(check bool) "y by value" false
    (Ir.Prog.is_ref_formal (Ir.Prog.var p a.Ir.Prog.formals.(1)))

let test_site_table () =
  let p =
    compile
      {|program m;
var g : int;
procedure f(var x : int);
begin
  x := 1;
end;
begin
  call f(g);
  call f(g);
end.|}
  in
  let sites = Ir.Prog.sites_of p p.Ir.Prog.main in
  Alcotest.(check int) "two sites in main" 2 (List.length sites);
  List.iter
    (fun s ->
      Alcotest.(check int) "caller is main" 0 s.Ir.Prog.caller;
      Alcotest.(check string) "callee f" "f"
        (Ir.Prog.proc p s.Ir.Prog.callee).Ir.Prog.pname)
    sites

(* --- scoping --- *)

let test_shadowing () =
  let p =
    compile
      {|program m;
var x : int;
procedure f(var x : int);
begin
  x := 1;
end;
procedure g();
var x : int;
begin
  x := 2;
end;
begin
  x := 3;
end.|}
  in
  Ir.Validate.check_exn p;
  (* three distinct variables named x *)
  let f_x = Helpers.var_id p "f.x" in
  let g_x = Helpers.var_id p "g.x" in
  let glob_x = Helpers.var_id p "x" in
  Alcotest.(check bool) "distinct" true
    (f_x <> g_x && g_x <> glob_x && f_x <> glob_x);
  (* each assignment hits its own x *)
  let target pname =
    let pr = Option.get (Ir.Prog.find_proc p pname) in
    match pr.Ir.Prog.body with
    | [ Ir.Stmt.Assign (Ir.Expr.Lvar v, _) ] -> v
    | _ -> Alcotest.fail "unexpected body"
  in
  Alcotest.(check int) "f assigns f.x" f_x (target "f");
  Alcotest.(check int) "g assigns g.x" g_x (target "g")

let test_nested_scoping () =
  let p =
    compile
      {|program m;
var g : int;
procedure outer(var a : int);
var v : int;
  procedure inner();
  begin
    v := a + g;
  end;
begin
  call inner();
end;
begin
  call outer(g);
end.|}
  in
  Ir.Validate.check_exn p;
  let inner = Option.get (Ir.Prog.find_proc p "inner") in
  Alcotest.(check int) "inner level" 2 inner.Ir.Prog.level;
  Alcotest.(check bool) "outer.v visible in inner" true
    (Ir.Prog.visible p ~proc:inner.Ir.Prog.pid ~var:(Helpers.var_id p "outer.v"))

let test_sibling_calls () =
  (* Mutually recursive siblings, forward reference allowed. *)
  let p =
    compile
      {|program m;
procedure even();
begin
  call odd();
end;
procedure odd();
begin
  call even();
end;
begin
  call even();
end.|}
  in
  Ir.Validate.check_exn p;
  Alcotest.(check int) "three sites" 3 (Ir.Prog.n_sites p)

let test_ancestor_call () =
  let p =
    compile
      {|program m;
procedure outer();
  procedure inner();
  begin
    call outer();
  end;
begin
  call inner();
end;
begin
  call outer();
end.|}
  in
  Ir.Validate.check_exn p;
  Alcotest.(check int) "sites" 3 (Ir.Prog.n_sites p)

let test_call_into_nest_rejected () =
  errors_contain
    {|program m;
procedure outer();
  procedure inner();
  begin
    skip;
  end;
begin
  skip;
end;
begin
  call inner();
end.|}
    "unknown procedure 'inner'"

(* --- diagnostics --- *)

let test_diagnostics () =
  errors_contain "program m; begin x := 1; end." "unknown variable 'x'";
  errors_contain "program m; begin call f(); end." "unknown procedure 'f'";
  errors_contain "program m; var x, x : int; begin end." "duplicate global 'x'";
  errors_contain
    "program m; procedure f(var x : int; x : int); begin end; begin call f(1, 2); end."
    "duplicate declaration of 'x'";
  errors_contain
    "program m; procedure f(); begin end; procedure f(); begin end; begin end."
    "already used";
  errors_contain "program m; var b : bool; begin b := 1; end." "expected type bool";
  errors_contain "program m; var x : int; begin if x then skip; end; end."
    "expected type bool";
  errors_contain "program m; var a : array[2] of int; begin a := 1; end."
    "whole array 'a' cannot be assigned";
  errors_contain "program m; var a : array[2] of int; begin a[1, 2] := 1; end."
    "rank 1 but 2 subscripts";
  errors_contain "program m; var x : int; begin x[1] := 1; end."
    "scalar 'x' cannot be indexed";
  errors_contain "program m; var a : array[2] of int; var x : int; begin x := a + 1; end."
    "array 'a' cannot be read as a scalar";
  errors_contain
    "program m; procedure f(a : array[2] of int); begin end; begin end."
    "must be passed by reference";
  errors_contain
    {|program m;
var x : int;
procedure f(var y : int);
begin
  y := 1;
end;
begin
  call f(x + 1);
end.|}
    "must be a variable, an array element, or a pointer dereference";
  errors_contain
    {|program m;
var b : bool;
procedure f(var y : int);
begin
  y := 1;
end;
begin
  call f(b);
end.|}
    "cannot bind to 'var' parameter";
  errors_contain
    "program m; procedure f(x : int); begin end; begin call f(); end."
    "expects 1 argument(s), got 0";
  errors_contain "program m; var b : bool; begin for b := 1 to 2 do skip; end; end."
    "loop variable 'b' must be int";
  errors_contain "program m; var a : array[0] of int; begin end."
    "extent 0 is not positive"

let test_multiple_errors_reported () =
  let msgs =
    Helpers.compile_errors
      "program m; begin x := 1; y := 2; call f(); end."
  in
  Alcotest.(check int) "three diagnostics" 3 (List.length msgs)

(* --- whole-program validation under qcheck --- *)

let prop_sema_output_validates seed =
  let prog = Helpers.flat_of_seed seed in
  let reparsed = Frontend.Sema.compile_exn ~file:"v" (Ir.Pp.to_string prog) in
  Ir.Validate.run reparsed = Ok ()

let () =
  Helpers.run "sema"
    [
      ( "structure",
        [
          Alcotest.test_case "id layout" `Quick test_layout;
          Alcotest.test_case "site table" `Quick test_site_table;
        ] );
      ( "scoping",
        [
          Alcotest.test_case "shadowing" `Quick test_shadowing;
          Alcotest.test_case "nested visibility" `Quick test_nested_scoping;
          Alcotest.test_case "mutually recursive siblings" `Quick test_sibling_calls;
          Alcotest.test_case "calling an ancestor" `Quick test_ancestor_call;
          Alcotest.test_case "nested procs invisible outside" `Quick
            test_call_into_nest_rejected;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "each kind of error" `Quick test_diagnostics;
          Alcotest.test_case "multiple errors in one pass" `Quick
            test_multiple_errors_reported;
        ] );
      ( "validation",
        [
          Helpers.qtest ~count:50 "sema output validates" Helpers.arb_flat_prog
            prop_sema_output_validates;
        ] );
    ]
