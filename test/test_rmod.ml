(* RMOD (Figure 1) tests: known answers on the fixed families, the
   paper's SCC-constancy observation, and equivalence with the two
   independent baseline solvers on random programs. *)

let rmod_names pipeline pid =
  List.map
    (fun vid -> (Ir.Prog.var pipeline.Helpers.prog vid).Ir.Prog.vname)
    (Core.Rmod.rmod_of_proc pipeline.Helpers.rmod pid)

let test_ref_chain () =
  let prog = Workload.Families.ref_chain 12 in
  let p = Helpers.pipeline prog in
  (* Every procedure's x is modified: the write in p12 propagates back
     through the whole β path. *)
  for i = 1 to 12 do
    Alcotest.(check (list string))
      (Printf.sprintf "RMOD(p%d)" i)
      [ "x" ]
      (rmod_names p (Helpers.proc_id prog (Printf.sprintf "p%d" i)))
  done

let test_clean_chain () =
  let prog = Workload.Families.clean_chain 8 in
  let p = Helpers.pipeline prog in
  for i = 1 to 8 do
    Alcotest.(check (list string))
      (Printf.sprintf "RMOD(p%d) empty" i)
      []
      (rmod_names p (Helpers.proc_id prog (Printf.sprintf "p%d" i)))
  done

let test_ref_cycle () =
  let prog = Workload.Families.ref_cycle 6 in
  let p = Helpers.pipeline prog in
  for i = 1 to 6 do
    Alcotest.(check (list string))
      (Printf.sprintf "RMOD(p%d)" i)
      [ "x" ]
      (rmod_names p (Helpers.proc_id prog (Printf.sprintf "p%d" i)))
  done

let test_mutual_pair () =
  let prog = Workload.Families.mutual_pair () in
  let p = Helpers.pipeline prog in
  Alcotest.(check (list string)) "a" [ "x" ] (rmod_names p (Helpers.proc_id prog "a"));
  Alcotest.(check (list string)) "b" [ "y" ] (rmod_names p (Helpers.proc_id prog "b"))

let test_value_param_blocks_propagation () =
  (* A by-value hop breaks the modification chain. *)
  let prog =
    Helpers.compile
      {|program m;
var g : int;
procedure sink(var s : int);
begin
  s := 1;
end;
procedure hop(h : int);
begin
  write h;
end;
procedure src(var x : int);
begin
  call hop(x);
end;
begin
  call src(g);
  call sink(g);
end.|}
  in
  let p = Helpers.pipeline prog in
  Alcotest.(check (list string)) "sink" [ "s" ]
    (rmod_names p (Helpers.proc_id prog "sink"));
  Alcotest.(check (list string)) "src unmodified" []
    (rmod_names p (Helpers.proc_id prog "src"))

let test_element_binding_conservative () =
  (* Passing a[i] by ref: modifying the formal modifies the array. *)
  let prog =
    Helpers.compile
      {|program m;
var g : array[5] of int;
procedure bump(var e : int);
begin
  e := e + 1;
end;
procedure owner(var a : array[5] of int; i : int);
begin
  call bump(a[i]);
end;
begin
  call owner(g, 2);
end.|}
  in
  let p = Helpers.pipeline prog in
  Alcotest.(check (list string)) "owner's array modified" [ "a" ]
    (rmod_names p (Helpers.proc_id prog "owner"))

let test_steps_linear () =
  (* O(Nβ + Eβ): steps on a chain of n is within a small constant. *)
  let prog = Workload.Families.ref_chain 400 in
  let p = Helpers.pipeline prog in
  let b = p.Helpers.binding in
  let size = Callgraph.Binding.n_nodes b + Callgraph.Binding.n_edges b in
  Alcotest.(check bool) "steps <= 4*(Nb+Eb)" true
    (p.Helpers.rmod.Core.Rmod.steps <= 4 * size)

let test_steps_metric_linear () =
  (* The same O(Nβ + Eβ) bound read off the Obs registry: the
     [rmod.steps] counter delta across a solve equals the result's
     step field, so external observers (sidefx profile, benchmarks)
     see the paper's cost unit without touching solver internals. *)
  let prog = Workload.Families.fortran_style ~seed:3 ~n:300 in
  let info = Ir.Info.make prog in
  let binding = Callgraph.Binding.build prog in
  let imod = Frontend.Local.imod info in
  let snap = Obs.Metric.snapshot () in
  let rmod = Core.Rmod.solve binding ~imod in
  let counted =
    match Obs.Metric.find "rmod.steps" with
    | Some h -> Obs.Metric.value_since ~since:snap h
    | None -> Alcotest.fail "rmod.steps not registered"
  in
  Helpers.check_int "registry delta = result.steps" rmod.Core.Rmod.steps counted;
  let size = Callgraph.Binding.n_nodes binding + Callgraph.Binding.n_edges binding in
  Alcotest.(check bool)
    (Printf.sprintf "counted steps %d <= 4*(Nb+Eb) = %d" counted (4 * size))
    true
    (counted <= 4 * size)

(* --- properties --- *)

let prop_equals_iterative seed =
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  p.Helpers.rmod.Core.Rmod.rmod
  = Baseline.Iterative.rmod p.Helpers.binding ~imod:p.Helpers.imod

let prop_equals_swift seed =
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  p.Helpers.rmod.Core.Rmod.rmod
  = Baseline.Swift.rmod_as_nodes p.Helpers.binding ~imod:p.Helpers.imod

let prop_equals_iterative_nested seed =
  let prog = Helpers.nested_of_seed seed in
  let p = Helpers.pipeline prog in
  p.Helpers.rmod.Core.Rmod.rmod
  = Baseline.Iterative.rmod p.Helpers.binding ~imod:p.Helpers.imod

let prop_constant_on_sccs seed =
  (* §3.2: the solution is identical at every node of a β SCC. *)
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  let scc = Graphs.Scc.compute p.Helpers.binding.Callgraph.Binding.graph in
  let value = Array.make scc.Graphs.Scc.n_comps None in
  let ok = ref true in
  Array.iteri
    (fun node r ->
      let c = scc.Graphs.Scc.comp.(node) in
      match value.(c) with
      | None -> value.(c) <- Some r
      | Some r' -> if r <> r' then ok := false)
    p.Helpers.rmod.Core.Rmod.rmod;
  !ok

let prop_seeded_by_imod seed =
  (* RMOD(f) ⊇ IMOD bit of f, and RMOD without any β edges = IMOD. *)
  let prog = Helpers.flat_of_seed seed in
  let p = Helpers.pipeline prog in
  let ok = ref true in
  Array.iteri
    (fun node r ->
      let vid = Callgraph.Binding.var p.Helpers.binding node in
      let owner =
        match (Ir.Prog.var prog vid).Ir.Prog.kind with
        | Ir.Prog.Formal { proc; _ } -> proc
        | _ -> -1
      in
      if Bitvec.get p.Helpers.imod.(owner) vid && not r then ok := false)
    p.Helpers.rmod.Core.Rmod.rmod;
  !ok

let () =
  Helpers.run "rmod"
    [
      ( "families",
        [
          Alcotest.test_case "ref chain propagates" `Quick test_ref_chain;
          Alcotest.test_case "clean chain stays empty" `Quick test_clean_chain;
          Alcotest.test_case "cycle (SCC) propagates" `Quick test_ref_cycle;
          Alcotest.test_case "mutual recursion" `Quick test_mutual_pair;
          Alcotest.test_case "by-value hop blocks" `Quick
            test_value_param_blocks_propagation;
          Alcotest.test_case "element binding is whole-array" `Quick
            test_element_binding_conservative;
          Alcotest.test_case "linear step count" `Quick test_steps_linear;
          Alcotest.test_case "linear step count via registry" `Quick
            test_steps_metric_linear;
        ] );
      ( "equivalence",
        [
          Helpers.qtest "figure 1 = iterative (flat)" Helpers.arb_flat_prog
            prop_equals_iterative;
          Helpers.qtest "figure 1 = swift bit-vector (flat)" Helpers.arb_flat_prog
            prop_equals_swift;
          Helpers.qtest "figure 1 = iterative (nested)" Helpers.arb_nested_prog
            prop_equals_iterative_nested;
        ] );
      ( "invariants",
        [
          Helpers.qtest "constant on beta SCCs" Helpers.arb_flat_prog
            prop_constant_on_sccs;
          Helpers.qtest "contains the IMOD seed" Helpers.arb_flat_prog
            prop_seeded_by_imod;
        ] );
    ]
