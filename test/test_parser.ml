(* Parser tests: grammar coverage, expression precedence, error
   reporting, and print/reparse stability through the front end. *)

module P = Frontend.Parser
module A = Frontend.Ast
module E = Ir.Expr

let parse_expr src =
  match P.parse_expr src with
  | Ok e -> e
  | Error (loc, msg) -> Alcotest.failf "parse_expr %S: %s: %s" src (Frontend.Loc.to_string loc) msg

(* Structure of surface expressions, written compactly for comparison. *)
let rec sexp (e : A.expr) =
  match e with
  | A.Int (n, _) -> string_of_int n
  | A.Bool (b, _) -> string_of_bool b
  | A.Name id -> id.A.name
  | A.Index (id, idx) ->
    Printf.sprintf "%s[%s]" id.A.name (String.concat "," (List.map sexp idx))
  | A.Binop (op, l, r) ->
    Printf.sprintf "(%s %s %s)" (sexp l)
      (Fmt.to_to_string E.pp_binop op)
      (sexp r)
  | A.Unop (E.Neg, e) -> Printf.sprintf "(- %s)" (sexp e)
  | A.Unop (E.Not, e) -> Printf.sprintf "(not %s)" (sexp e)
  | A.Addr id -> Printf.sprintf "(& %s)" id.A.name
  | A.Deref (d, id) -> Printf.sprintf "(%s %s)" (String.make d '*') id.A.name
  | A.New (_, _) -> "(new)"

let check_expr src expected =
  Alcotest.(check string) src expected (sexp (parse_expr src))

let test_precedence () =
  check_expr "1 + 2 * 3" "(1 + (2 * 3))";
  check_expr "1 * 2 + 3" "((1 * 2) + 3)";
  check_expr "(1 + 2) * 3" "((1 + 2) * 3)";
  check_expr "1 - 2 - 3" "((1 - 2) - 3)";
  check_expr "1 + 2 < 3 * 4" "((1 + 2) < (3 * 4))";
  check_expr "a < 1 and b > 2 or c == 3"
    "(((a < 1) and (b > 2)) or (c == 3))";
  check_expr "not a < 1" "((not a) < 1)";
  check_expr "-x + 1" "((- x) + 1)";
  check_expr "- -x" "(- (- x))";
  check_expr "a[i + 1, j]" "a[(i + 1),j]";
  check_expr "1 % 2 / 3" "((1 % 2) / 3)"

let parse_ok src =
  match P.parse ~file:"t.mp" src with
  | Ok p -> p
  | Error (loc, msg) -> Alcotest.failf "%s: %s" (Frontend.Loc.to_string loc) msg

let parse_err src =
  match P.parse ~file:"t.mp" src with
  | Ok _ -> Alcotest.failf "expected parse error for %S" src
  | Error (_, msg) -> msg

let test_minimal_program () =
  let p = parse_ok "program p; begin end." in
  Alcotest.(check string) "name" "p" p.A.prog_name.A.name;
  Alcotest.(check int) "no globals" 0 (List.length p.A.globals);
  Alcotest.(check int) "no procs" 0 (List.length p.A.top_procs);
  Alcotest.(check int) "empty body" 0 (List.length p.A.main_body)

let test_full_grammar () =
  let p =
    parse_ok
      {|program full;
var a, b : int;
var flag : bool;
var m : array[3, 4] of int;
procedure q(var x : int; y : int; var z : array[3, 4] of int);
var t : int;
begin
  skip;
  t := y + 1;
  x := t;
  z[1, t] := x;
  if t < 3 then
    write t;
  else
    read x;
  end;
  while t > 0 do
    t := t - 1;
  end;
  for t := 1 to 10 do
    skip;
  end;
  call q(x, t, z);
end;
begin
  flag := true;
  if flag then
    call q(a, b, m);
  end;
end.|}
  in
  Alcotest.(check int) "three global decls" 3 (List.length p.A.globals);
  Alcotest.(check int) "one proc" 1 (List.length p.A.top_procs);
  let q = List.hd p.A.top_procs in
  Alcotest.(check int) "three params" 3 (List.length q.A.params);
  (match q.A.params with
  | [ x; y; z ] ->
    Alcotest.(check bool) "x by ref" true (x.A.p_mode = Ir.Prog.By_ref);
    Alcotest.(check bool) "y by value" true (y.A.p_mode = Ir.Prog.By_value);
    Alcotest.(check bool) "z array by ref" true
      (z.A.p_mode = Ir.Prog.By_ref && z.A.p_ty = A.Ty_array [ 3; 4 ])
  | _ -> Alcotest.fail "params");
  Alcotest.(check int) "q body statements" 8 (List.length q.A.body)

let test_nested_procs () =
  let p =
    parse_ok
      {|program n;
procedure outer();
  procedure inner();
  begin
    skip;
  end;
begin
  call inner();
end;
begin
  call outer();
end.|}
  in
  let outer = List.hd p.A.top_procs in
  Alcotest.(check int) "one nested" 1 (List.length outer.A.procs);
  Alcotest.(check string) "inner name" "inner"
    (List.hd outer.A.procs).A.proc_name.A.name

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_err src frag =
  let msg = parse_err src in
  if not (contains msg frag) then Alcotest.failf "error %S lacks %S" msg frag

let test_errors () =
  check_err "program; begin end." "program name";
  check_err "program p begin end." "';'";
  check_err "program p; begin end" "'.'";
  check_err "program p; begin x := ; end." "expression";
  check_err "program p; begin x = 1; end." "unexpected character";
  check_err "program p; begin if x then end." "';'";
  (* the branch's 'end' closes the if, so the parser next wants ';' *)
  check_err "program p; var x : array[] of int; begin end." "array extent";
  check_err "program p; begin call f(; end." "expression";
  check_err "program p; begin while x do skip; end." "';'";
  check_err "program p; x := 1; begin end." "'begin'"

let test_empty_if_branch_ok () =
  (* An if with only skips parses. *)
  ignore (parse_ok "program p; begin if true then skip; end; end.")

let test_trailing_garbage () =
  check_err "program p; begin end. extra" "end of input"

(* Print/reparse stability on the fixed workload families. *)
let test_roundtrip_families () =
  List.iter
    (fun prog ->
      let s1 = Ir.Pp.to_string prog in
      let p2 = Frontend.Sema.compile_exn ~file:"rt" s1 in
      Alcotest.(check string) "fixed point" s1 (Ir.Pp.to_string p2))
    [
      Workload.Families.ref_chain 5;
      Workload.Families.ref_cycle 4;
      Workload.Families.global_chain 5;
      Workload.Families.mutual_pair ();
      Workload.Families.diamond ();
      Workload.Families.nested_textbook ();
    ]

let prop_roundtrip_random seed =
  let prog = Helpers.flat_of_seed seed in
  let s1 = Ir.Pp.to_string prog in
  let p2 = Frontend.Sema.compile_exn ~file:"rt" s1 in
  String.equal s1 (Ir.Pp.to_string p2)

let prop_roundtrip_nested seed =
  let prog = Helpers.nested_of_seed seed in
  let s1 = Ir.Pp.to_string prog in
  let p2 = Frontend.Sema.compile_exn ~file:"rt" s1 in
  String.equal s1 (Ir.Pp.to_string p2)

let () =
  Helpers.run "parser"
    [
      ( "expressions",
        [ Alcotest.test_case "precedence and associativity" `Quick test_precedence ] );
      ( "programs",
        [
          Alcotest.test_case "minimal program" `Quick test_minimal_program;
          Alcotest.test_case "full statement grammar" `Quick test_full_grammar;
          Alcotest.test_case "nested procedures" `Quick test_nested_procs;
          Alcotest.test_case "empty if branch" `Quick test_empty_if_branch_ok;
        ] );
      ( "errors",
        [
          Alcotest.test_case "diagnostics" `Quick test_errors;
          Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "fixed families" `Quick test_roundtrip_families;
          Helpers.qtest ~count:50 "random flat programs" Helpers.arb_flat_prog
            prop_roundtrip_random;
          Helpers.qtest ~count:50 "random nested programs" Helpers.arb_nested_prog
            prop_roundtrip_nested;
        ] );
    ]
