(* Regular-section (§6) tests: lattice laws, local sections, binding
   functions, the β solver, sectioned GMOD, the bit-level bridge, and
   loop dependence verdicts. *)

module S = Sections.Section

let atom_i = S.Affine { var = 100; offset = 0 }
let atom_i1 = S.Affine { var = 100; offset = 1 }
let atom_j = S.Affine { var = 101; offset = 0 }
let c3 = S.Const 3
let c4 = S.Const 4

let sec dims = S.Section (Array.of_list dims)
let ex a = S.Exact a

(* --- lattice unit tests --- *)

let test_join_table () =
  let row = sec [ ex atom_i; S.Star ] in
  let col = sec [ S.Star; ex atom_j ] in
  let el = sec [ ex atom_i; ex atom_j ] in
  let whole = S.whole ~rank:2 in
  Alcotest.(check bool) "el ⊔ row = row" true (S.equal (S.join el row) row);
  Alcotest.(check bool) "row ⊔ col = whole" true (S.equal (S.join row col) whole);
  Alcotest.(check bool) "bottom identity" true (S.equal (S.join S.bottom row) row);
  Alcotest.(check bool) "same atom preserved" true
    (S.equal (S.join (sec [ ex atom_i; ex c3 ]) (sec [ ex atom_i; ex c4 ]))
       (sec [ ex atom_i; S.Star ]))

let test_leq () =
  let row = sec [ ex atom_i; S.Star ] in
  let el = sec [ ex atom_i; ex atom_j ] in
  Alcotest.(check bool) "el ⊑ row" true (S.leq el row);
  Alcotest.(check bool) "row ⋢ el" false (S.leq row el);
  Alcotest.(check bool) "bottom ⊑ all" true (S.leq S.bottom el);
  Alcotest.(check bool) "all ⊑ whole" true (S.leq row (S.whole ~rank:2))

let test_intersects () =
  Alcotest.(check bool) "same row" true
    (S.intersects (sec [ ex atom_i; S.Star ]) (sec [ ex atom_i; S.Star ]));
  Alcotest.(check bool) "const 3 vs const 4 disjoint" false
    (S.intersects (sec [ ex c3; S.Star ]) (sec [ ex c4; S.Star ]));
  Alcotest.(check bool) "i vs i+1 disjoint" false
    (S.intersects (sec [ ex atom_i ]) (sec [ ex atom_i1 ]));
  Alcotest.(check bool) "i vs j may meet" true
    (S.intersects (sec [ ex atom_i ]) (sec [ ex atom_j ]));
  Alcotest.(check bool) "bottom never" false
    (S.intersects S.bottom (S.whole ~rank:2))

let test_rank_mismatch () =
  Alcotest.check_raises "join mismatch"
    (Invalid_argument "Section.join: rank mismatch") (fun () ->
      ignore (S.join (S.whole ~rank:1) (S.whole ~rank:2)))

(* lattice laws under qcheck *)
let arb_section =
  let gen_atom =
    QCheck.Gen.(
      oneof
        [
          map (fun c -> S.Const c) (0 -- 5);
          map2 (fun v o -> S.Affine { var = 100 + v; offset = o }) (0 -- 2) (0 -- 2);
        ])
  in
  let gen_dim =
    QCheck.Gen.(oneof [ return S.Star; map (fun a -> S.Exact a) gen_atom ])
  in
  let gen =
    QCheck.Gen.(
      oneof
        [
          return S.Bottom;
          map (fun l -> sec l) (list_size (return 2) gen_dim);
        ])
  in
  QCheck.make gen ~print:(Fmt.to_to_string (S.pp ?var_name:None))

let arb_pair = QCheck.pair arb_section arb_section
let arb_triple = QCheck.triple arb_section arb_section arb_section

let prop_join_comm (a, b) = S.equal (S.join a b) (S.join b a)
let prop_join_idem (a, _) = S.equal (S.join a a) a
let prop_join_assoc (a, b, c) = S.equal (S.join (S.join a b) c) (S.join a (S.join b c))
let prop_leq_reflexive (a, _) = S.leq a a

let prop_leq_antisym (a, b) = if S.leq a b && S.leq b a then S.equal a b else true

let prop_join_is_lub (a, b) = S.leq a (S.join a b) && S.leq b (S.join a b)

let prop_intersects_monotone (a, b) =
  (* widening either side cannot make an intersecting pair disjoint *)
  if S.intersects a b then S.intersects (S.join a b) b else true

(* --- local sections --- *)

let kernel =
  Helpers.compile
    {|program k;
var n, s : int;
var a : array[8, 8] of int;
procedure rowk(var m : array[8, 8] of int; i : int);
var j : int;
begin
  for j := 1 to n do
    m[i, j] := 0;
  end;
end;
procedure elemk(var m : array[8, 8] of int; i : int; j : int);
begin
  m[i, j] := m[j, i] + 1;
end;
begin
  call rowk(a, 1);
  call elemk(a, 2, 3);
end.|}

let test_lrsd () =
  let info = Ir.Info.make kernel in
  let rowk = Helpers.proc_id kernel "rowk" in
  let m = Helpers.var_id kernel "rowk.m" in
  let i = Helpers.var_id kernel "rowk.i" in
  let lmod = Sections.Lrsd.lrsd_mod info rowk in
  (* j is the loop variable, unstable, so the write is the whole row *)
  Alcotest.(check bool) "row section" true
    (S.equal (Sections.Secmap.get lmod m)
       (sec [ ex (S.Affine { var = i; offset = 0 }); S.Star ]));
  let elemk = Helpers.proc_id kernel "elemk" in
  let me = Helpers.var_id kernel "elemk.m" in
  let ie = Helpers.var_id kernel "elemk.i" in
  let je = Helpers.var_id kernel "elemk.j" in
  let lmod_e = Sections.Lrsd.lrsd_mod info elemk in
  Alcotest.(check bool) "element write" true
    (S.equal (Sections.Secmap.get lmod_e me)
       (sec
          [ ex (S.Affine { var = ie; offset = 0 }); ex (S.Affine { var = je; offset = 0 }) ]));
  let luse_e = Sections.Lrsd.lrsd_use info elemk in
  Alcotest.(check bool) "transposed element read" true
    (S.equal (Sections.Secmap.get luse_e me)
       (sec
          [ ex (S.Affine { var = je; offset = 0 }); ex (S.Affine { var = ie; offset = 0 }) ]))

let test_atomize () =
  let unstable = Bitvec.of_list 10 [ 7 ] in
  let at e = Sections.Lrsd.atomize ~unstable e in
  Alcotest.(check bool) "const" true (at (Ir.Expr.Int 3) = ex c3);
  Alcotest.(check bool) "stable var" true
    (at (Ir.Expr.Var 2) = ex (S.Affine { var = 2; offset = 0 }));
  Alcotest.(check bool) "unstable var" true (at (Ir.Expr.Var 7) = S.Star);
  Alcotest.(check bool) "v + 1" true
    (at (Ir.Expr.Binop (Ir.Expr.Add, Ir.Expr.Var 2, Ir.Expr.Int 1))
    = ex (S.Affine { var = 2; offset = 1 }));
  Alcotest.(check bool) "v - 2" true
    (at (Ir.Expr.Binop (Ir.Expr.Sub, Ir.Expr.Var 2, Ir.Expr.Int 2))
    = ex (S.Affine { var = 2; offset = -2 }));
  Alcotest.(check bool) "compound" true
    (at (Ir.Expr.Binop (Ir.Expr.Mul, Ir.Expr.Var 2, Ir.Expr.Int 2)) = S.Star)

(* --- end-to-end on the kernel program --- *)

let test_site_sections () =
  let t = Sections.Analyze_sections.run kernel in
  let sites = Ir.Prog.sites_of kernel kernel.Ir.Prog.main in
  let a = Helpers.var_id kernel "a" in
  (match sites with
  | [ s_row; s_elem ] ->
    let mod_row = Sections.Analyze_sections.mod_of_site t s_row.Ir.Prog.sid in
    Alcotest.(check bool) "row 1 of a" true
      (S.equal (Sections.Secmap.get mod_row a) (sec [ ex (S.Const 1); S.Star ]));
    let mod_elem = Sections.Analyze_sections.mod_of_site t s_elem.Ir.Prog.sid in
    Alcotest.(check bool) "element (2,3)" true
      (S.equal (Sections.Secmap.get mod_elem a) (sec [ ex (S.Const 2); ex (S.Const 3) ]))
  | _ -> Alcotest.fail "expected two sites")

(* --- rsd through β: forwarding chain keeps the row shape --- *)

let test_rsd_chain () =
  let prog =
    Helpers.compile
      {|program c;
var n : int;
var g : array[8, 8] of int;
procedure base(var m : array[8, 8] of int; i : int);
var j : int;
begin
  for j := 1 to n do
    m[i, j] := 1;
  end;
end;
procedure fwd(var m : array[8, 8] of int; i : int);
begin
  call base(m, i);
end;
begin
  call fwd(g, 4);
end.|}
  in
  let t = Sections.Analyze_sections.run prog in
  let fwd_m = Helpers.var_id prog "fwd.m" in
  let fwd_i = Helpers.var_id prog "fwd.i" in
  let s = Sections.Rsmod.section_of t.Sections.Analyze_sections.rsmod fwd_m in
  Alcotest.(check bool) "fwd's array modified in row i" true
    (S.equal s (sec [ ex (S.Affine { var = fwd_i; offset = 0 }); S.Star ]));
  let sid = (List.hd (Ir.Prog.sites_of prog prog.Ir.Prog.main)).Ir.Prog.sid in
  let m = Sections.Analyze_sections.mod_of_site t sid in
  Alcotest.(check bool) "site sees row 4" true
    (S.equal
       (Sections.Secmap.get m (Helpers.var_id prog "g"))
       (sec [ ex (S.Const 4); S.Star ]))

let test_element_binding_restriction () =
  let prog =
    Helpers.compile
      {|program e;
var g : array[8, 8] of int;
var k : int;
procedure bump(var x : int);
begin
  x := x + 1;
end;
begin
  call bump(g[k, 3]);
end.|}
  in
  let t = Sections.Analyze_sections.run prog in
  let sid = (List.hd (Ir.Prog.sites_of prog prog.Ir.Prog.main)).Ir.Prog.sid in
  let m = Sections.Analyze_sections.mod_of_site t sid in
  let k = Helpers.var_id prog "k" in
  Alcotest.(check bool) "single element g(k, 3)" true
    (S.equal
       (Sections.Secmap.get m (Helpers.var_id prog "g"))
       (sec [ ex (S.Affine { var = k; offset = 0 }); ex c3 ]))

(* --- properties on random kernel programs --- *)

let arb_kernels =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "kernels seed %d" seed)
    QCheck.Gen.(0 -- 5_000)

let kernels_of seed = Workload.Arrays.generate ~seed ~n_kernels:(4 + (seed mod 8))

let prop_flatten_matches_bits seed =
  let prog = kernels_of seed in
  let sec_t = Sections.Analyze_sections.run prog in
  let bit_t = Core.Analyze.run prog in
  let ok = ref true in
  for pid = 0 to Ir.Prog.n_procs prog - 1 do
    if
      not
        (Bitvec.equal
           (Sections.Secmap.to_bits sec_t.Sections.Analyze_sections.gmod.(pid))
           bit_t.Core.Analyze.gmod.(pid))
    then ok := false;
    if
      not
        (Bitvec.equal
           (Sections.Secmap.to_bits sec_t.Sections.Analyze_sections.guse.(pid))
           bit_t.Core.Analyze.guse.(pid))
    then ok := false
  done;
  !ok

let prop_tarjan_equals_iterative seed =
  let prog = kernels_of seed in
  let t = Sections.Analyze_sections.run prog in
  let oracle =
    Sections.Gmod_sections.solve_iterative t.Sections.Analyze_sections.info
      t.Sections.Analyze_sections.call ~seed:t.Sections.Analyze_sections.imod_plus
  in
  Array.for_all2 Sections.Secmap.equal t.Sections.Analyze_sections.gmod oracle

let prop_rsd_flatten_matches_rmod seed =
  let prog = kernels_of seed in
  let t = Sections.Analyze_sections.run prog in
  let bit = Helpers.pipeline prog in
  let ok = ref true in
  for node = 0 to Callgraph.Binding.n_nodes bit.Helpers.binding - 1 do
    let vid = Callgraph.Binding.var bit.Helpers.binding node in
    let sec = Sections.Rsmod.section_of t.Sections.Analyze_sections.rsmod vid in
    let has_section = not (S.equal sec S.bottom) in
    if has_section <> bit.Helpers.rmod.Core.Rmod.rmod.(node) then ok := false
  done;
  !ok

let prop_cycle_condition seed =
  (* §6's third property: g_e never enlarges a section it maps around
     a cycle — equivalently every rsd value is ⊒ its own image joined
     in, which the fixpoint guarantees; check fixpoint stability. *)
  let prog = kernels_of seed in
  let t = Sections.Analyze_sections.run prog in
  let rs = t.Sections.Analyze_sections.rsmod in
  let binding = t.Sections.Analyze_sections.binding in
  let info = t.Sections.Analyze_sections.info in
  let ok = ref true in
  Graphs.Digraph.iter_edges binding.Callgraph.Binding.graph (fun e m n ->
      let { Callgraph.Binding.site; arg_pos; _ } = binding.Callgraph.Binding.edges.(e) in
      let site = Ir.Prog.site prog site in
      let callee_section = rs.Sections.Rsmod.rsd.(n) in
      if not (S.equal callee_section S.bottom) then begin
        let _, induced =
          Sections.Bindfn.project info ~site ~arg_pos ~callee_section
        in
        if not (S.leq induced rs.Sections.Rsmod.rsd.(m)) then ok := false
      end);
  !ok

(* --- dependence verdicts --- *)

let test_deps () =
  let ivar = 100 in
  let row_i = sec [ ex (S.Affine { var = ivar; offset = 0 }); S.Star ] in
  let row_i1 = sec [ ex (S.Affine { var = ivar; offset = 1 }); S.Star ] in
  Alcotest.(check bool) "row i vs row i independent" true
    (Sections.Deps.loop_independent ~ivar row_i row_i);
  Alcotest.(check bool) "row i vs row i+1 conflict" false
    (Sections.Deps.loop_independent ~ivar row_i row_i1);
  Alcotest.(check bool) "row i vs whole conflict" false
    (Sections.Deps.loop_independent ~ivar row_i (S.whole ~rank:2));
  Alcotest.(check bool) "bottom independent" true
    (Sections.Deps.loop_independent ~ivar row_i S.bottom)

(* A loop whose body both writes and reads a shared scalar trips the
   conflict detector several ways (mod/mod and mod/use); the verdict
   must still list each (variable, reason) pair exactly once, sorted —
   the canonical form downstream consumers (the lint engine's one
   finding per pair) rely on. *)
let test_conflicts_deduped () =
  let prog =
    Helpers.compile
      {|program dedup;
var n, i, total : int;
var a : array[8] of int;

procedure bump(var cell : int);
begin
  total := total + cell;
  cell := total;
end;

begin
  n := 8;
  for i := 1 to n do
    call bump(a[i]);
  end;
  write total;
end.|}
  in
  let t = Sections.Analyze_sections.run prog in
  let main = Ir.Prog.proc prog prog.Ir.Prog.main in
  let ivar, body =
    match
      List.find_map
        (function
          | Ir.Stmt.For (iv, _, _, body) -> Some (iv, body)
          | _ -> None)
        main.Ir.Prog.body
    with
    | Some l -> l
    | None -> Alcotest.fail "no loop in main"
  in
  let mod_map, use_map =
    Sections.Analyze_sections.loop_summary t ~proc:prog.Ir.Prog.main ~ivar
      ~body
  in
  let v = Sections.Deps.analyze_loop prog ~ivar ~mod_map ~use_map in
  Alcotest.(check bool) "conflicting" false v.Sections.Deps.parallel;
  Alcotest.(check bool) "non-empty" true (v.Sections.Deps.conflicts <> []);
  Alcotest.(check bool) "deduplicated and sorted" true
    (v.Sections.Deps.conflicts
    = List.sort_uniq compare v.Sections.Deps.conflicts)

let () =
  Helpers.run "sections"
    [
      ( "lattice",
        [
          Alcotest.test_case "join table (figure 3)" `Quick test_join_table;
          Alcotest.test_case "order" `Quick test_leq;
          Alcotest.test_case "intersection test" `Quick test_intersects;
          Alcotest.test_case "rank mismatch" `Quick test_rank_mismatch;
          Helpers.qtest "join commutative" arb_pair prop_join_comm;
          Helpers.qtest "join idempotent" arb_pair prop_join_idem;
          Helpers.qtest "join associative" arb_triple prop_join_assoc;
          Helpers.qtest "leq reflexive" arb_pair prop_leq_reflexive;
          Helpers.qtest "leq antisymmetric" arb_pair prop_leq_antisym;
          Helpers.qtest "join is an upper bound" arb_pair prop_join_is_lub;
          Helpers.qtest "intersects monotone" arb_pair prop_intersects_monotone;
        ] );
      ( "local",
        [
          Alcotest.test_case "lrsd rows and elements" `Quick test_lrsd;
          Alcotest.test_case "atomize" `Quick test_atomize;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "per-site sections" `Quick test_site_sections;
          Alcotest.test_case "forwarding chain keeps rows" `Quick test_rsd_chain;
          Alcotest.test_case "element binding restricts" `Quick
            test_element_binding_restriction;
          Helpers.qtest ~count:60 "flattening = bit analysis" arb_kernels
            prop_flatten_matches_bits;
          Helpers.qtest ~count:60 "sectioned findgmod = chaotic" arb_kernels
            prop_tarjan_equals_iterative;
          Helpers.qtest ~count:60 "rsd flattening = RMOD" arb_kernels
            prop_rsd_flatten_matches_rmod;
          Helpers.qtest ~count:60 "fixpoint stable under g_e" arb_kernels
            prop_cycle_condition;
        ] );
      ( "dependence",
        [
          Alcotest.test_case "loop independence verdicts" `Quick test_deps;
          Alcotest.test_case "conflicts deduplicated and sorted" `Quick
            test_conflicts_deduped;
        ] );
    ]
