(* Unit and property tests for the bit-vector substrate. *)

module B = Bitvec

let check_list msg expected v = Alcotest.(check (list int)) msg expected (B.to_list v)

(* --- unit tests --- *)

let test_create_empty () =
  let v = B.create 0 in
  Alcotest.(check int) "length" 0 (B.length v);
  Alcotest.(check bool) "empty" true (B.is_empty v);
  check_list "no bits" [] v

let test_set_get () =
  let v = B.create 130 in
  B.set v 0;
  B.set v 63;
  B.set v 64;
  B.set v 129;
  Alcotest.(check bool) "bit 0" true (B.get v 0);
  Alcotest.(check bool) "bit 1" false (B.get v 1);
  Alcotest.(check bool) "bit 63" true (B.get v 63);
  Alcotest.(check bool) "bit 64" true (B.get v 64);
  Alcotest.(check bool) "bit 129" true (B.get v 129);
  check_list "contents" [ 0; 63; 64; 129 ] v;
  B.unset v 64;
  check_list "after unset" [ 0; 63; 129 ] v

let test_out_of_range () =
  let v = B.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec.get: index -1 out of [0, 10)")
    (fun () -> ignore (B.get v (-1)));
  Alcotest.check_raises "set 10" (Invalid_argument "Bitvec.set: index 10 out of [0, 10)")
    (fun () -> B.set v 10)

let test_length_mismatch () =
  let a = B.create 5 and b = B.create 6 in
  Alcotest.check_raises "union" (Invalid_argument "Bitvec.union_into: lengths differ (5 vs 6)")
    (fun () -> ignore (B.union_into ~src:a ~dst:b))

let test_union_change_flag () =
  let a = B.of_list 100 [ 1; 50; 99 ] in
  let b = B.of_list 100 [ 50 ] in
  Alcotest.(check bool) "changes" true (B.union_into ~src:a ~dst:b);
  check_list "union result" [ 1; 50; 99 ] b;
  Alcotest.(check bool) "no further change" false (B.union_into ~src:a ~dst:b)

let test_inter_diff () =
  let a = B.of_list 80 [ 1; 2; 3; 64; 65 ] in
  let b = B.of_list 80 [ 2; 3; 4; 65; 79 ] in
  check_list "inter" [ 2; 3; 65 ] (B.inter a b);
  check_list "diff" [ 1; 64 ] (B.diff a b);
  check_list "a unchanged" [ 1; 2; 3; 64; 65 ] a

let test_subset_disjoint () =
  let a = B.of_list 70 [ 3; 69 ] in
  let b = B.of_list 70 [ 1; 3; 69 ] in
  Alcotest.(check bool) "a ⊆ b" true (B.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (B.subset b a);
  Alcotest.(check bool) "not disjoint" false (B.disjoint a b);
  Alcotest.(check bool) "disjoint" true (B.disjoint a (B.of_list 70 [ 0; 2 ]))

let test_cardinal_choose () =
  let v = B.of_list 200 [ 5; 66; 190 ] in
  Alcotest.(check int) "cardinal" 3 (B.cardinal v);
  Alcotest.(check (option int)) "choose" (Some 5) (B.choose v);
  Alcotest.(check (option int)) "choose empty" None (B.choose (B.create 8))

let test_fold_exists () =
  let v = B.of_list 100 [ 10; 20; 30 ] in
  Alcotest.(check int) "fold sum" 60 (B.fold ( + ) v 0);
  Alcotest.(check bool) "exists" true (B.exists (fun i -> i = 20) v);
  Alcotest.(check bool) "not exists" false (B.exists (fun i -> i = 21) v)

let test_blit_clear () =
  let a = B.of_list 33 [ 0; 32 ] in
  let b = B.create 33 in
  B.blit ~src:a ~dst:b;
  check_list "blit" [ 0; 32 ] b;
  B.clear b;
  check_list "clear" [] b;
  check_list "src untouched" [ 0; 32 ] a

(* Pin the branch-free SWAR popcount against the old one-bit-at-a-time
   loop it replaced (Kernighan's bit clear), on the edge words and a
   haystack of random full-width words. *)
let test_popcount_word st =
  let reference x =
    let c = ref 0 and x = ref x in
    while !x <> 0 do
      incr c;
      x := !x land (!x - 1)
    done;
    !c
  in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "popcount %#x" x)
        (reference x) (B.popcount_word x))
    [ 0; 1; 2; 3; -1; max_int; min_int; min_int + 1; 0x1234; lnot 0x1234 ];
  for _ = 1 to 10_000 do
    let x = Int64.to_int (Random.State.bits64 st) in
    let want = reference x in
    let got = B.popcount_word x in
    if want <> got then
      Alcotest.failf "popcount_word %#x: want %d, got %d" x want got
  done

let test_stats_counters () =
  B.Stats.reset ();
  let a = B.create 1000 and b = B.create 1000 in
  ignore (B.union_into ~src:a ~dst:b);
  ignore (B.equal a b);
  Alcotest.(check int) "two vector ops (plus creates don't count)" 2
    (B.Stats.vector_ops ());
  Alcotest.(check bool) "word ops counted" true (B.Stats.word_ops () > 0)

(* --- hybrid representation --- *)

(* The hybrid small-set/dense split must be invisible: same sets, same
   change flags, same exceptions as the dense-only mode — only the
   word-op accounting differs.  These tests drive random op sequences
   across the promotion/demotion boundary (universe 1000 → threshold
   [small_threshold 1000]) against a sorted-list model, in both modes. *)

let with_mode hybrid f =
  let saved = B.hybrid_enabled () in
  B.set_hybrid hybrid;
  Fun.protect ~finally:(fun () -> B.set_hybrid saved) f

let hybrid_len = 1000

type hop =
  | Hset of int
  | Hunset of int
  | Hunion  (* v1 ∪= v0 *)
  | Hinter  (* v1 ∩= v0 *)
  | Hdiff   (* v1 ∖= v0 *)
  | Hblit   (* v1 := v0 *)
  | Hclear

let gen_hop =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun i -> Hset i) (0 -- (hybrid_len - 1)));
        (2, map (fun i -> Hunset i) (0 -- (hybrid_len - 1)));
        (2, return Hunion);
        (1, return Hinter);
        (1, return Hdiff);
        (1, return Hblit);
        (1, return Hclear);
      ])

let print_hop = function
  | Hset i -> Printf.sprintf "set %d" i
  | Hunset i -> Printf.sprintf "unset %d" i
  | Hunion -> "union"
  | Hinter -> "inter"
  | Hdiff -> "diff"
  | Hblit -> "blit"
  | Hclear -> "clear"

let arb_hops =
  QCheck.make
    QCheck.Gen.(list_size (0 -- 120) (pair bool gen_hop))
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (fun (snd_target, op) ->
             Printf.sprintf "%s@v%d" (print_hop op) (if snd_target then 1 else 0))
           ops))

module IS = Set.Make (Int)

(* Apply one op to (vector pair, model pair); return the op's change
   flag (or None for flagless ops) so modes can be compared on it. *)
let apply_hop (v0, v1) (m0, m1) (snd_target, op) =
  let v, m, other = if snd_target then (v1, m1, v0) else (v0, m0, v1) in
  ignore other;
  match op with
  | Hset i ->
    B.set v i;
    let m' = IS.add i m in
    ((if snd_target then (m0, m') else (m', m1)), None)
  | Hunset i ->
    B.unset v i;
    let m' = IS.remove i m in
    ((if snd_target then (m0, m') else (m', m1)), None)
  | Hclear ->
    B.clear v;
    ((if snd_target then (m0, IS.empty) else (IS.empty, m1)), None)
  | Hblit ->
    if snd_target then begin
      B.blit ~src:v0 ~dst:v1;
      ((m0, m0), None)
    end
    else begin
      B.blit ~src:v1 ~dst:v0;
      ((m1, m1), None)
    end
  | Hunion ->
    let changed = B.union_into ~src:v0 ~dst:v1 in
    ((m0, IS.union m0 m1), Some changed)
  | Hinter ->
    let changed = B.inter_into ~src:v0 ~dst:v1 in
    ((m0, IS.inter m0 m1), Some changed)
  | Hdiff ->
    let changed = B.diff_into ~src:v0 ~dst:v1 in
    ((m0, IS.diff m1 m0), Some changed)

let run_hops ~hybrid ops =
  with_mode hybrid @@ fun () ->
  let v0 = B.create hybrid_len and v1 = B.create hybrid_len in
  let threshold = B.small_threshold hybrid_len in
  let trace = ref [] in
  let rec go models = function
    | [] -> ()
    | op :: rest ->
      let models, flag = apply_hop (v0, v1) models op in
      let m0, m1 = models in
      (* Set semantics must match the model after every op... *)
      if B.to_list v0 <> IS.elements m0 then failwith "v0 diverged from model";
      if B.to_list v1 <> IS.elements m1 then failwith "v1 diverged from model";
      (* ...and in hybrid mode a Small repr must respect the threshold
         (promotion is mandatory past it). *)
      if hybrid then
        List.iter
          (fun v ->
            if B.repr_kind v = `Small && B.cardinal v > threshold then
              failwith "small repr over threshold")
          [ v0; v1 ];
      if not hybrid then
        List.iter
          (fun v ->
            if B.repr_kind v = `Small then failwith "small repr in dense mode")
          [ v0; v1 ];
      trace := flag :: !trace;
      go models rest
  in
  go (IS.empty, IS.empty) ops;
  (B.to_list v0, B.to_list v1, List.rev !trace)

(* Both modes, same sequence: same sets, same change flags. *)
let prop_hybrid_model ops =
  let h0, h1, hflags = run_hops ~hybrid:true ops in
  let d0, d1, dflags = run_hops ~hybrid:false ops in
  h0 = d0 && h1 = d1 && hflags = dflags

(* Read-only queries agree across representations of the same set. *)
let prop_hybrid_queries (a, b) =
  with_mode true @@ fun () ->
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  (* Force va dense while keeping the same set, via a same-set blit
     into a vector pushed over the threshold and back. *)
  let dense_a = B.create 100 in
  B.blit ~src:va ~dst:dense_a;
  for i = 0 to 99 do
    B.set dense_a i
  done;
  B.blit ~src:va ~dst:dense_a;
  B.equal va dense_a
  && B.cardinal va = B.cardinal dense_a
  && B.subset va vb = B.subset dense_a vb
  && B.disjoint va vb = B.disjoint dense_a vb
  && B.to_list (B.union dense_a vb) = B.to_list (B.union va vb)
  && B.to_list (B.inter dense_a vb) = B.to_list (B.inter va vb)
  && B.to_list (B.diff dense_a vb) = B.to_list (B.diff va vb)

let test_hybrid_promotion_boundary () =
  with_mode true @@ fun () ->
  let v = B.create hybrid_len in
  let threshold = B.small_threshold hybrid_len in
  for i = 1 to threshold do
    B.set v (i * 7);
    Alcotest.(check bool)
      (Printf.sprintf "small at card %d" i)
      true
      (B.repr_kind v = `Small)
  done;
  B.set v 1;
  Alcotest.(check bool) "dense past threshold" true (B.repr_kind v = `Dense);
  Alcotest.(check int) "cardinal across promotion" (threshold + 1) (B.cardinal v);
  B.clear v;
  Alcotest.(check bool) "clear demotes" true (B.repr_kind v = `Small)

(* The accounting contract: ops on small sets are charged by live size,
   not universe size — and bump [small_ops]; dense mode charges the
   full word span as before. *)
let test_hybrid_accounting () =
  let len = 100_000 in
  let full_span = (len + Sys.int_size - 1) / Sys.int_size in
  let probe mode =
    with_mode mode @@ fun () ->
    let a = B.of_list len [ 1; 50_000; 99_999 ] in
    let b = B.of_list len [ 2; 50_000 ] in
    B.Stats.reset ();
    ignore (B.union_into ~src:a ~dst:b);
    (B.Stats.vector_ops (), B.Stats.word_ops ())
  in
  let hv, hw = probe true in
  let dv, dw = probe false in
  Alcotest.(check int) "one vector op (hybrid)" 1 hv;
  Alcotest.(check int) "one vector op (dense)" 1 dv;
  Alcotest.(check bool)
    (Printf.sprintf "hybrid words ~ live size (%d)" hw)
    true (hw <= 8);
  Alcotest.(check int) "dense words = full span" full_span dw;
  with_mode true @@ fun () ->
  let snap = Obs.Metric.snapshot () in
  let a = B.of_list len [ 3 ] and b = B.of_list len [ 4 ] in
  ignore (B.union_into ~src:a ~dst:b);
  Alcotest.(check bool) "small_ops counted" true
    (Obs.Metric.value_since ~since:snap (Obs.Metric.counter "bitvec.small_ops")
    > 0)

(* --- property tests against a list model --- *)

let arb_sets =
  let gen =
    QCheck.Gen.(
      pair (list_size (0 -- 40) (0 -- 99)) (list_size (0 -- 40) (0 -- 99)))
  in
  QCheck.make gen ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)"
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))

let model_of l = List.sort_uniq compare l

let prop_union (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.to_list (B.union va vb) = model_of (a @ b)

let prop_inter (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.to_list (B.inter va vb) = List.filter (fun x -> List.mem x b) (model_of a)

let prop_diff (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.to_list (B.diff va vb) = List.filter (fun x -> not (List.mem x b)) (model_of a)

let prop_cardinal (a, _) =
  B.cardinal (B.of_list 100 a) = List.length (model_of a)

let prop_subset_iff (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.subset va vb = List.for_all (fun x -> List.mem x b) a

let prop_equal_roundtrip (a, _) =
  let v = B.of_list 100 a in
  B.equal v (B.of_list 100 (List.rev a)) && B.to_list v = model_of a

let () =
  Helpers.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "create empty" `Quick test_create_empty;
          Alcotest.test_case "set/get/unset across words" `Quick test_set_get;
          Alcotest.test_case "out of range raises" `Quick test_out_of_range;
          Alcotest.test_case "length mismatch raises" `Quick test_length_mismatch;
          Alcotest.test_case "union change flag" `Quick test_union_change_flag;
          Alcotest.test_case "inter and diff" `Quick test_inter_diff;
          Alcotest.test_case "subset and disjoint" `Quick test_subset_disjoint;
          Alcotest.test_case "cardinal and choose" `Quick test_cardinal_choose;
          Alcotest.test_case "fold and exists" `Quick test_fold_exists;
          Alcotest.test_case "blit and clear" `Quick test_blit_clear;
          Helpers.seeded_case "popcount_word vs reference" `Quick
            test_popcount_word;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
          Alcotest.test_case "hybrid promotion boundary" `Quick
            test_hybrid_promotion_boundary;
          Alcotest.test_case "hybrid cost accounting" `Quick
            test_hybrid_accounting;
        ] );
      ( "properties",
        [
          Helpers.qtest "union = list union" arb_sets prop_union;
          Helpers.qtest "inter = list inter" arb_sets prop_inter;
          Helpers.qtest "diff = list diff" arb_sets prop_diff;
          Helpers.qtest "cardinal = |set|" arb_sets prop_cardinal;
          Helpers.qtest "subset iff containment" arb_sets prop_subset_iff;
          Helpers.qtest "equal ignores insertion order" arb_sets prop_equal_roundtrip;
          Helpers.qtest "hybrid = dense = model over op sequences" arb_hops
            prop_hybrid_model;
          Helpers.qtest "queries agree across representations" arb_sets
            prop_hybrid_queries;
        ] );
    ]
