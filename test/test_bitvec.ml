(* Unit and property tests for the bit-vector substrate. *)

module B = Bitvec

let check_list msg expected v = Alcotest.(check (list int)) msg expected (B.to_list v)

(* --- unit tests --- *)

let test_create_empty () =
  let v = B.create 0 in
  Alcotest.(check int) "length" 0 (B.length v);
  Alcotest.(check bool) "empty" true (B.is_empty v);
  check_list "no bits" [] v

let test_set_get () =
  let v = B.create 130 in
  B.set v 0;
  B.set v 63;
  B.set v 64;
  B.set v 129;
  Alcotest.(check bool) "bit 0" true (B.get v 0);
  Alcotest.(check bool) "bit 1" false (B.get v 1);
  Alcotest.(check bool) "bit 63" true (B.get v 63);
  Alcotest.(check bool) "bit 64" true (B.get v 64);
  Alcotest.(check bool) "bit 129" true (B.get v 129);
  check_list "contents" [ 0; 63; 64; 129 ] v;
  B.unset v 64;
  check_list "after unset" [ 0; 63; 129 ] v

let test_out_of_range () =
  let v = B.create 10 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec.get: index -1 out of [0, 10)")
    (fun () -> ignore (B.get v (-1)));
  Alcotest.check_raises "set 10" (Invalid_argument "Bitvec.set: index 10 out of [0, 10)")
    (fun () -> B.set v 10)

let test_length_mismatch () =
  let a = B.create 5 and b = B.create 6 in
  Alcotest.check_raises "union" (Invalid_argument "Bitvec.union_into: lengths differ (5 vs 6)")
    (fun () -> ignore (B.union_into ~src:a ~dst:b))

let test_union_change_flag () =
  let a = B.of_list 100 [ 1; 50; 99 ] in
  let b = B.of_list 100 [ 50 ] in
  Alcotest.(check bool) "changes" true (B.union_into ~src:a ~dst:b);
  check_list "union result" [ 1; 50; 99 ] b;
  Alcotest.(check bool) "no further change" false (B.union_into ~src:a ~dst:b)

let test_inter_diff () =
  let a = B.of_list 80 [ 1; 2; 3; 64; 65 ] in
  let b = B.of_list 80 [ 2; 3; 4; 65; 79 ] in
  check_list "inter" [ 2; 3; 65 ] (B.inter a b);
  check_list "diff" [ 1; 64 ] (B.diff a b);
  check_list "a unchanged" [ 1; 2; 3; 64; 65 ] a

let test_subset_disjoint () =
  let a = B.of_list 70 [ 3; 69 ] in
  let b = B.of_list 70 [ 1; 3; 69 ] in
  Alcotest.(check bool) "a ⊆ b" true (B.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (B.subset b a);
  Alcotest.(check bool) "not disjoint" false (B.disjoint a b);
  Alcotest.(check bool) "disjoint" true (B.disjoint a (B.of_list 70 [ 0; 2 ]))

let test_cardinal_choose () =
  let v = B.of_list 200 [ 5; 66; 190 ] in
  Alcotest.(check int) "cardinal" 3 (B.cardinal v);
  Alcotest.(check (option int)) "choose" (Some 5) (B.choose v);
  Alcotest.(check (option int)) "choose empty" None (B.choose (B.create 8))

let test_fold_exists () =
  let v = B.of_list 100 [ 10; 20; 30 ] in
  Alcotest.(check int) "fold sum" 60 (B.fold ( + ) v 0);
  Alcotest.(check bool) "exists" true (B.exists (fun i -> i = 20) v);
  Alcotest.(check bool) "not exists" false (B.exists (fun i -> i = 21) v)

let test_blit_clear () =
  let a = B.of_list 33 [ 0; 32 ] in
  let b = B.create 33 in
  B.blit ~src:a ~dst:b;
  check_list "blit" [ 0; 32 ] b;
  B.clear b;
  check_list "clear" [] b;
  check_list "src untouched" [ 0; 32 ] a

(* Pin the branch-free SWAR popcount against the old one-bit-at-a-time
   loop it replaced (Kernighan's bit clear), on the edge words and a
   haystack of random full-width words. *)
let test_popcount_word st =
  let reference x =
    let c = ref 0 and x = ref x in
    while !x <> 0 do
      incr c;
      x := !x land (!x - 1)
    done;
    !c
  in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "popcount %#x" x)
        (reference x) (B.popcount_word x))
    [ 0; 1; 2; 3; -1; max_int; min_int; min_int + 1; 0x1234; lnot 0x1234 ];
  for _ = 1 to 10_000 do
    let x = Int64.to_int (Random.State.bits64 st) in
    let want = reference x in
    let got = B.popcount_word x in
    if want <> got then
      Alcotest.failf "popcount_word %#x: want %d, got %d" x want got
  done

let test_stats_counters () =
  B.Stats.reset ();
  let a = B.create 1000 and b = B.create 1000 in
  ignore (B.union_into ~src:a ~dst:b);
  ignore (B.equal a b);
  Alcotest.(check int) "two vector ops (plus creates don't count)" 2
    (B.Stats.vector_ops ());
  Alcotest.(check bool) "word ops counted" true (B.Stats.word_ops () > 0)

(* --- property tests against a list model --- *)

let arb_sets =
  let gen =
    QCheck.Gen.(
      pair (list_size (0 -- 40) (0 -- 99)) (list_size (0 -- 40) (0 -- 99)))
  in
  QCheck.make gen ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)"
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))

let model_of l = List.sort_uniq compare l

let prop_union (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.to_list (B.union va vb) = model_of (a @ b)

let prop_inter (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.to_list (B.inter va vb) = List.filter (fun x -> List.mem x b) (model_of a)

let prop_diff (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.to_list (B.diff va vb) = List.filter (fun x -> not (List.mem x b)) (model_of a)

let prop_cardinal (a, _) =
  B.cardinal (B.of_list 100 a) = List.length (model_of a)

let prop_subset_iff (a, b) =
  let va = B.of_list 100 a and vb = B.of_list 100 b in
  B.subset va vb = List.for_all (fun x -> List.mem x b) a

let prop_equal_roundtrip (a, _) =
  let v = B.of_list 100 a in
  B.equal v (B.of_list 100 (List.rev a)) && B.to_list v = model_of a

let () =
  Helpers.run "bitvec"
    [
      ( "unit",
        [
          Alcotest.test_case "create empty" `Quick test_create_empty;
          Alcotest.test_case "set/get/unset across words" `Quick test_set_get;
          Alcotest.test_case "out of range raises" `Quick test_out_of_range;
          Alcotest.test_case "length mismatch raises" `Quick test_length_mismatch;
          Alcotest.test_case "union change flag" `Quick test_union_change_flag;
          Alcotest.test_case "inter and diff" `Quick test_inter_diff;
          Alcotest.test_case "subset and disjoint" `Quick test_subset_disjoint;
          Alcotest.test_case "cardinal and choose" `Quick test_cardinal_choose;
          Alcotest.test_case "fold and exists" `Quick test_fold_exists;
          Alcotest.test_case "blit and clear" `Quick test_blit_clear;
          Helpers.seeded_case "popcount_word vs reference" `Quick
            test_popcount_word;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
      ( "properties",
        [
          Helpers.qtest "union = list union" arb_sets prop_union;
          Helpers.qtest "inter = list inter" arb_sets prop_inter;
          Helpers.qtest "diff = list diff" arb_sets prop_diff;
          Helpers.qtest "cardinal = |set|" arb_sets prop_cardinal;
          Helpers.qtest "subset iff containment" arb_sets prop_subset_iff;
          Helpers.qtest "equal ignores insertion order" arb_sets prop_equal_roundtrip;
        ] );
    ]
