(* Differential testing of the incremental engine: after every edit of
   every script, the engine's analysis must be bit-identical to a
   from-scratch [Core.Analyze.run] on the edited program (operation
   counters excepted), and single-procedure edits must re-solve only
   the condensation-ancestor cone, not the whole program. *)

open Helpers
module A = Core.Analyze
module Engine = Incremental.Engine
module Edit = Incremental.Edit

let bool_arrays_equal = Array.for_all2 Bool.equal

(* The headline guarantee, field by field. *)
let check_equiv msg (inc : A.t) (batch : A.t) =
  let ok name b = if not b then Alcotest.failf "%s: %s differs" msg name in
  ok "RMOD" (bool_arrays_equal inc.A.rmod.Core.Rmod.rmod batch.A.rmod.Core.Rmod.rmod);
  ok "RUSE" (bool_arrays_equal inc.A.ruse.Core.Rmod.rmod batch.A.ruse.Core.Rmod.rmod);
  ok "IMOD+" (gmod_arrays_equal inc.A.imod_plus batch.A.imod_plus);
  ok "IUSE+" (gmod_arrays_equal inc.A.iuse_plus batch.A.iuse_plus);
  ok "GMOD" (gmod_arrays_equal inc.A.gmod batch.A.gmod);
  ok "GUSE" (gmod_arrays_equal inc.A.guse batch.A.guse);
  ok "MUSTMOD"
    (gmod_arrays_equal inc.A.mustmod.Core.Mustmod.mustmod
       batch.A.mustmod.Core.Mustmod.mustmod);
  ok "IMUSTDEF"
    (gmod_arrays_equal inc.A.mustmod.Core.Mustmod.intra
       batch.A.mustmod.Core.Mustmod.intra);
  for sid = 0 to Ir.Prog.n_sites batch.A.prog - 1 do
    ok
      (Printf.sprintf "MOD(s%d)" sid)
      (Bitvec.equal (A.mod_of_site inc sid) (A.mod_of_site batch sid));
    ok
      (Printf.sprintf "USE(s%d)" sid)
      (Bitvec.equal (A.use_of_site inc sid) (A.use_of_site batch sid))
  done

(* Run a generated script through the engine, checking equivalence (and
   that the engine's program is the one the script built) after every
   single edit. *)
let run_script prog script =
  let engine = Engine.create prog in
  List.iteri
    (fun i (edit, expected) ->
      let before = Engine.prog engine in
      let label = Printf.sprintf "edit %d (%s)" i (Edit.to_string before edit) in
      let (_ : Engine.outcome) = Engine.apply engine edit in
      if Engine.prog engine <> expected then
        Alcotest.failf "%s: engine program diverges from script program" label;
      check_equiv label (Engine.analysis engine) (A.run expected))
    script;
  List.length script

let prop_script of_seed steps seed =
  let prog = of_seed seed in
  let rand = Random.State.make [| seed; 0xed17 |] in
  let script = Workload.Edits.gen ~rand ~steps prog in
  let (_ : int) = run_script prog script in
  true

(* Directed cases: one per edit constructor, on the textbook families,
   with spot checks on the answers as well as full equivalence. *)

let apply_checked engine edit =
  let before = Engine.prog engine in
  let out = Engine.apply engine edit in
  let prog = Engine.prog engine in
  (match Ir.Validate.run prog with
  | Ok () -> ()
  | Error _ ->
    Alcotest.failf "edit %s left an invalid program" (Edit.to_string before edit));
  check_equiv (Edit.to_string before edit) (Engine.analysis engine) (A.run prog);
  out

let test_add_assign_mutual () =
  let prog = Workload.Families.mutual_pair () in
  (* Three procedures total, so any cone trips the default threshold;
     raise it to exercise the region path on the mutual SCC. *)
  let engine = Engine.create ~threshold:1.0 prog in
  let out =
    apply_checked engine
      (Edit.Add_assign
         {
           proc = proc_id prog "a";
           target = var_id prog "g0";
           value = Ir.Expr.Int 7;
         })
  in
  check_bool "body edit stays incremental" true (out.Engine.fallback = None);
  let a = Engine.analysis engine in
  check_var_set (Engine.prog engine) "GMOD(main) after a writes g0" [ "g0" ]
    (A.gmod_of a (proc_id prog "main"))

let test_remove_assign_mutual () =
  let prog = Workload.Families.mutual_pair () in
  let engine = Engine.create prog in
  (* b's body is [call a(y); y := 1] — drop the assignment and the
     whole mutual SCC stops modifying anything. *)
  let (_ : Engine.outcome) =
    apply_checked engine
      (Edit.Remove_assign { proc = proc_id prog "b"; index = 1 })
  in
  let a = Engine.analysis engine in
  check_bool "RMOD(a.x) gone" false
    (Core.Rmod.modified a.A.rmod (var_id prog "a.x"));
  check_bool "RMOD(b.y) gone" false
    (Core.Rmod.modified a.A.rmod (var_id prog "b.y"))

let test_add_call_diamond () =
  let prog = Workload.Families.diamond () in
  let engine = Engine.create prog in
  let (_ : Engine.outcome) =
    apply_checked engine
      (Edit.Add_call
         { caller = proc_id prog "a"; callee = proc_id prog "b"; args = [||] })
  in
  ()

let test_remove_call_diamond () =
  let prog = Workload.Families.diamond () in
  (* Cut b's call to c: GMOD(b) loses g0, GMOD(main) keeps it via a. *)
  let sid =
    match Ir.Prog.sites_of prog (proc_id prog "b") with
    | [ s ] -> s.Ir.Prog.sid
    | _ -> Alcotest.fail "diamond: b should have exactly one site"
  in
  let engine = Engine.create prog in
  let (_ : Engine.outcome) = apply_checked engine (Edit.Remove_call { sid }) in
  let a = Engine.analysis engine in
  check_var_set (Engine.prog engine) "GMOD(b) empty" []
    (A.gmod_of a (proc_id prog "b"));
  check_var_set (Engine.prog engine) "GMOD(main) still g0" [ "g0" ]
    (A.gmod_of a (proc_id prog "main"))

let test_retarget_diamond () =
  let prog = Workload.Families.diamond () in
  (* Point b's call at a instead of c — same empty signature. *)
  let sid =
    match Ir.Prog.sites_of prog (proc_id prog "b") with
    | [ s ] -> s.Ir.Prog.sid
    | _ -> Alcotest.fail "diamond: b should have exactly one site"
  in
  let engine = Engine.create prog in
  let (_ : Engine.outcome) =
    apply_checked engine (Edit.Retarget_call { sid; callee = proc_id prog "a" })
  in
  let a = Engine.analysis engine in
  check_var_set (Engine.prog engine) "GMOD(b) via a -> c" [ "g0" ]
    (A.gmod_of a (proc_id prog "b"))

let test_add_remove_proc_diamond () =
  let prog = Workload.Families.diamond () in
  let engine = Engine.create prog in
  let out =
    apply_checked engine
      (Edit.Add_proc
         { name = "fresh"; writes = [ var_id prog "g0" ]; reads = [] })
  in
  check_bool "structural edit falls back" true (out.Engine.fallback <> None);
  let prog' = Engine.prog engine in
  let a = Engine.analysis engine in
  (* Uncalled, so its effect shows in GMOD(fresh) but not GMOD(main). *)
  check_var_set prog' "GMOD(fresh)" [ "g0" ] (A.gmod_of a (proc_id prog' "fresh"));
  let (_ : Engine.outcome) =
    apply_checked engine (Edit.Remove_proc { pid = proc_id prog' "fresh" })
  in
  check_int "back to the original shape" (Ir.Prog.n_procs prog)
    (Ir.Prog.n_procs (Engine.prog engine))

let test_nested_body_edit () =
  let prog = Workload.Families.nested_textbook () in
  let engine = Engine.create prog in
  let (_ : Engine.outcome) =
    apply_checked engine
      (Edit.Add_assign
         {
           proc = proc_id prog "helper";
           target = var_id prog "helper.h";
           value = Ir.Expr.Int 0;
         })
  in
  let a = Engine.analysis engine in
  check_bool "RMOD(helper.h)" true
    (Core.Rmod.modified a.A.rmod (var_id prog "helper.h"))

let test_nested_script rand =
  let prog = Workload.Families.nested_textbook () in
  let script = Workload.Edits.gen ~rand ~steps:12 prog in
  let n = run_script prog script in
  check_bool "script not empty" true (n > 0)

(* Satellite 3: a shape-preserving edit on [ref_chain 64] must re-solve
   O(SCC-cone) procedures, not O(N).  The cone of p1 is {main, p1} on
   the MOD side and nothing on the USE side. *)
let test_opcount_ref_chain () =
  let prog = Workload.Families.ref_chain 64 in
  let engine = Engine.create prog in
  let resolved =
    Option.get (Obs.Metric.find "incremental.procs_resolved")
  in
  let fallbacks = Option.get (Obs.Metric.find "incremental.full_fallbacks") in
  let snap = Obs.Metric.snapshot () in
  let out =
    apply_checked engine
      (Edit.Add_assign
         {
           proc = proc_id prog "p1";
           target = var_id prog "g0";
           value = Ir.Expr.Int 1;
         })
  in
  check_int "no fallback" 0 (Obs.Metric.value_since ~since:snap fallbacks);
  let delta = Obs.Metric.value_since ~since:snap resolved in
  check_int "outcome agrees with registry" delta out.Engine.procs_resolved;
  if delta > 4 then
    Alcotest.failf "edit on p1 re-solved %d procedures (O(N)=64, want O(SCC))"
      delta;
  (* A mid-chain edit's ancestor cone is the upper half of the chain —
     bigger, but still region-local and under the fallback threshold. *)
  let snap = Obs.Metric.snapshot () in
  let (_ : Engine.outcome) =
    apply_checked engine
      (Edit.Add_assign
         {
           proc = proc_id prog "p31";
           target = var_id prog "g0";
           value = Ir.Expr.Int 1;
         })
  in
  check_int "no fallback mid-chain" 0
    (Obs.Metric.value_since ~since:snap fallbacks);
  let delta = Obs.Metric.value_since ~since:snap resolved in
  if delta >= 64 then
    Alcotest.failf "edit on p31 re-solved %d procedures (>= N)" delta;
  (* Deep in the chain the cone is nearly everything: the threshold
     policy must notice and take the full run instead. *)
  let snap = Obs.Metric.snapshot () in
  let out =
    apply_checked engine
      (Edit.Add_assign
         {
           proc = proc_id prog "p63";
           target = var_id prog "g0";
           value = Ir.Expr.Int 1;
         })
  in
  check_bool "oversized cone falls back" true (out.Engine.fallback <> None);
  check_int "fallback counted" 1
    (Obs.Metric.value_since ~since:snap fallbacks)

(* [Script.render] must be a left inverse of [Script.parse_line]
   against the pre-edit program — the contract the analysis server's
   load generator relies on to replay [Workload.Edits] over the wire.
   [None] is legitimate (no concrete syntax); a rendered line that
   fails to parse, parses as blank, or comes back as a different edit
   is not. *)
let prop_render_roundtrip of_seed steps seed =
  let prog = of_seed seed in
  let rand = Random.State.make [| seed; 0x5c71 |] in
  let script = Workload.Edits.gen ~rand ~steps prog in
  let rec go prog = function
    | [] -> true
    | (edit, after) :: rest ->
      (match Incremental.Script.render prog edit with
      | None -> ()
      | Some line -> (
        match Incremental.Script.parse_line prog line with
        | Ok (Some edit') ->
          if edit' <> edit then
            QCheck.Test.fail_reportf "render/parse mismatch on %S: %s vs %s"
              line
              (Edit.to_string prog edit')
              (Edit.to_string prog edit)
        | Ok None ->
          QCheck.Test.fail_reportf "rendered line %S parsed as blank" line
        | Error msg ->
          QCheck.Test.fail_reportf "rendered line %S failed to parse: %s" line
            msg));
      go after rest
  in
  go prog script

(* [Engine.of_analysis] (the adoption path the server uses to give
   each session its own engine over one shared batch record) must
   track [Engine.create] exactly: same answers before any edit, and
   bit-identical analyses after every edit of any script. *)
let prop_of_analysis_equiv of_seed steps seed =
  let prog = of_seed seed in
  let rand = Random.State.make [| seed; 0x0fa1 |] in
  let script = Workload.Edits.gen ~rand ~steps prog in
  let created = Engine.create prog in
  let adopted = Engine.of_analysis (A.run prog) in
  check_equiv "pre-edit adoption" (Engine.analysis adopted)
    (Engine.analysis created);
  List.iteri
    (fun i (edit, expected) ->
      let (_ : Engine.outcome) = Engine.apply created edit in
      let (_ : Engine.outcome) = Engine.apply adopted edit in
      let label = Printf.sprintf "edit %d" i in
      check_equiv
        (label ^ " (created vs batch)")
        (Engine.analysis created) (A.run expected);
      check_equiv
        (label ^ " (adopted vs created)")
        (Engine.analysis adopted) (Engine.analysis created))
    script;
  true

let () =
  run "incremental"
    [
      ( "directed",
        [
          Alcotest.test_case "add-assign mutual_pair" `Quick
            test_add_assign_mutual;
          Alcotest.test_case "remove-assign mutual_pair" `Quick
            test_remove_assign_mutual;
          Alcotest.test_case "add-call diamond" `Quick test_add_call_diamond;
          Alcotest.test_case "remove-call diamond" `Quick
            test_remove_call_diamond;
          Alcotest.test_case "retarget diamond" `Quick test_retarget_diamond;
          Alcotest.test_case "add/remove proc diamond" `Quick
            test_add_remove_proc_diamond;
          Alcotest.test_case "nested body edit" `Quick test_nested_body_edit;
          Helpers.seeded_case "nested script" `Quick test_nested_script;
        ] );
      ( "opcount",
        [ Alcotest.test_case "ref_chain 64 region" `Quick test_opcount_ref_chain ] );
      ( "equivalence",
        [
          qtest ~count:160 "incremental = batch (flat scripts)" arb_flat_prog
            (prop_script (flat_of_seed ~n:24) 8);
          qtest ~count:60 "incremental = batch (nested scripts)" arb_nested_prog
            (prop_script (nested_of_seed ~n:20 ~depth:3) 8);
          qtest ~count:100 "render/parse_line round trip" arb_flat_prog
            (prop_render_roundtrip (flat_of_seed ~n:24) 8);
          qtest ~count:60 "of_analysis = create" arb_flat_prog
            (prop_of_analysis_equiv (flat_of_seed ~n:24) 6);
        ] );
    ]
