(* The analysis server, tested at the wire: protocol totality under
   hostile bytes, structured errors for every bad request, and the
   central contract — after any interleaving of session edit scripts,
   every fact the server reports over the protocol is identical to a
   from-scratch [Core.Analyze.run] on a client-side mirror of the
   program.  A differential suite also drives the tracing interpreter
   against server-reported MOD(s)/USE(s) (the per-site projections of
   GMOD/GUSE), so the soundness statement survives the protocol
   encoder and decoder. *)

module Json = Obs.Json
module Protocol = Serve.Protocol
module Server = Serve.Server

(* --- decoding helpers: a response must be a {id, ok, ...} object --- *)

let parse_json line =
  match Json.parse line with
  | Ok j -> j
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m line

let member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response missing %S: %s" name (Json.to_string j)

let str_list what = function
  | Json.List l ->
    List.map
      (function
        | Json.String s -> s
        | j -> Alcotest.failf "%s: not a string: %s" what (Json.to_string j))
      l
  | j -> Alcotest.failf "%s: not a list: %s" what (Json.to_string j)

let has_substring hay sub =
  let n = String.length sub and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = sub || go (i + 1)) in
  n = 0 || go 0

let send srv ~client req =
  Server.handle_line srv ~client (Protocol.to_line ~id:(Json.Int 1) req)

let send_ok srv ~client req =
  let line = send srv ~client req in
  let j = parse_json line in
  (match member "ok" j with
  | Json.Bool true -> ()
  | _ -> Alcotest.failf "expected ok:true, got: %s" line);
  member "result" j

let send_err srv ~client req =
  let j = parse_json (send srv ~client req) in
  match (member "ok" j, Json.member "error" j) with
  | Json.Bool false, Some (Json.String m) -> m
  | _ -> Alcotest.failf "expected ok:false, got: %s" (Json.to_string j)

let load srv ~client name prog =
  let source = Ir.Pp.to_string prog in
  ignore (send_ok srv ~client (Protocol.Load { program = name; source }))

(* Re-parse a program from its own pretty-printed text.  The server
   compiles the source it is sent, and compilation numbers variables
   and call sites by textual order — which the in-memory programs the
   workload generators build need not follow.  Tests that compare
   per-site or per-variable facts must speak the server's numbering,
   so they mirror the program exactly as the server sees it. *)
let normalize prog = Helpers.compile (Ir.Pp.to_string prog)

(* --- protocol round-trip --- *)

let hostile = "evil \"name\" \\with\\ \n newline \t tab \x01 ctrl \x7f del"

let sample_requests =
  [
    Protocol.Load { program = "p"; source = "program p; begin skip; end." };
    Protocol.Load { program = hostile; source = hostile };
    Protocol.Unload { program = "p" };
    Protocol.Query { program = "p"; session = ""; query = Protocol.Gmod { proc = "q" } };
    Protocol.Query
      { program = "p"; session = "s"; query = Protocol.Guse { proc = hostile } };
    Protocol.Query
      { program = "p"; session = ""; query = Protocol.Rmod { proc = "q"; var = "x" } };
    Protocol.Query
      { program = "p"; session = "s"; query = Protocol.Ruse { proc = "q"; var = "x" } };
    Protocol.Query { program = "p"; session = ""; query = Protocol.Alias { proc = "q" } };
    Protocol.Query { program = "p"; session = ""; query = Protocol.Purity { proc = "q" } };
    Protocol.Query { program = "p"; session = ""; query = Protocol.Mod_site { site = 3 } };
    Protocol.Query { program = "p"; session = ""; query = Protocol.Use_site { site = 0 } };
    Protocol.Query { program = "p"; session = "s"; query = Protocol.Lint_delta };
    Protocol.Query { program = "p"; session = ""; query = Protocol.Source };
    Protocol.Edit
      { program = "p"; session = ""; script = "add-assign q g = 7"; lint = true };
    Protocol.Edit { program = hostile; session = hostile; script = ""; lint = false };
    Protocol.Explain
      { program = "p"; session = ""; fact = Some "gmod q g"; all = false };
    Protocol.Explain { program = "p"; session = "s"; fact = None; all = true };
    Protocol.Stats;
    Protocol.Shutdown;
  ]

let test_protocol_roundtrip () =
  List.iteri
    (fun i req ->
      let id = Json.Int i in
      let line = Protocol.to_line ~id req in
      let inc = Protocol.parse line in
      if inc.Protocol.id <> id then
        Alcotest.failf "request %d: id not recovered from %s" i line;
      match inc.Protocol.request with
      | Ok req' when req' = req -> ()
      | Ok _ -> Alcotest.failf "request %d: parsed to a different request: %s" i line
      | Error m -> Alcotest.failf "request %d: did not parse (%s): %s" i m line)
    sample_requests

let test_protocol_malformed () =
  let cases =
    [
      ("", false);
      ("   ", false);
      ("nonsense", false);
      ("[1, 2, 3]", false);
      ("42", false);
      ("{}", true);
      ({|{"op": 42}|}, true);
      ({|{"op": "frobnicate"}|}, true);
      ({|{"op": "load"}|}, true);
      ({|{"op": "load", "program": "p"}|}, true);
      ({|{"op": "query", "program": "p"}|}, true);
      ({|{"op": "query", "program": 7, "query": "gmod", "proc": "q"}|}, true);
      ({|{"op": "edit", "program": "p"}|}, true);
      ({|{"op": "explain", "program": "p"}|}, true);
      ({|{"op": "explain", "program": "p", "fact": "gmod q g", "all": true}|}, true);
    ]
  in
  List.iter
    (fun (line, is_obj) ->
      let inc = Protocol.parse line in
      (match inc.Protocol.request with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed line: %s" line);
      (* id recovery only makes sense for objects; either way parse is
         total and the id defaults to Null. *)
      if (not is_obj) && inc.Protocol.id <> Json.Null then
        Alcotest.failf "non-object line recovered an id: %s" line)
    cases;
  (* The id is recovered even when the request is rejected. *)
  let inc = Protocol.parse {|{"id": 42, "op": "frobnicate"}|} in
  Alcotest.(check bool) "id recovered" true (inc.Protocol.id = Json.Int 42)

let test_op_class () =
  let check req cls = Alcotest.(check string) cls cls (Protocol.op_class (Ok req)) in
  check (List.nth sample_requests 0) "load";
  check (List.nth sample_requests 3) "query.gmod";
  check (List.nth sample_requests 12) "query.source";
  check (List.nth sample_requests 13) "edit";
  check (List.nth sample_requests 15) "explain";
  check Protocol.Stats "stats";
  check Protocol.Shutdown "shutdown";
  Alcotest.(check string) "invalid" "invalid" (Protocol.op_class (Error "x"))

(* --- protocol fuzz: the server answers every line, never dies --- *)

let fuzz_server = lazy (Server.create ())

(* Any response must itself parse as a {id, ok} envelope. *)
let well_formed_response line =
  match Json.parse line with
  | Error _ -> false
  | Ok j -> (
    match (Json.member "id" j, Json.member "ok" j) with
    | Some _, Some (Json.Bool true) -> Json.member "result" j <> None
    | Some _, Some (Json.Bool false) -> (
      match Json.member "error" j with Some (Json.String _) -> true | _ -> false)
    | _ -> false)

let prop_server_answers line =
  let srv = Lazy.force fuzz_server in
  let resp = Server.handle_line srv ~client:99 line in
  well_formed_response resp
  (* ... and the server is still serving afterwards. *)
  && well_formed_response (Server.handle_line srv ~client:99 {|{"op": "stats"}|})

let arb_garbage =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 1 126)) (0 -- 300))

(* JSON-shaped soup reaches deeper parser and dispatch states than raw
   bytes: well-bracketed noise with op-like keys and hostile values. *)
let json_fragments =
  [|
    "{"; "}"; "["; "]"; ":"; ","; "\"op\""; "\"id\""; "\"program\""; "\"query\"";
    "\"session\""; "\"proc\""; "\"var\""; "\"site\""; "\"script\""; "\"fact\"";
    "\"all\""; "\"lint\""; "\"load\""; "\"unload\""; "\"edit\""; "\"explain\"";
    "\"stats\""; "\"shutdown\""; "\"gmod\""; "\"guse\""; "\"rmod\""; "\"ruse\"";
    "\"alias\""; "\"purity\""; "\"mod\""; "\"use\""; "\"lint-delta\"";
    "\"source\""; "true"; "false"; "null"; "0"; "-1"; "42"; "1e9"; "\"\"";
    "\"p\""; "\"q\""; "\"x\"";
  |]

let arb_json_soup =
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      map
        (fun picks ->
          String.concat " "
            (List.map (fun i -> json_fragments.(i mod Array.length json_fragments)) picks))
        (list_size (0 -- 60) (0 -- 1000)))

(* Valid requests cut off mid-line: every prefix must still get a
   structured answer. *)
let arb_truncated =
  let lines =
    Array.of_list (List.map (fun r -> Protocol.to_line r) sample_requests)
  in
  QCheck.make
    ~print:(fun s -> Printf.sprintf "%S" s)
    QCheck.Gen.(
      map2
        (fun i frac ->
          let line = lines.(i mod Array.length lines) in
          let n = String.length line in
          String.sub line 0 (min n (int_of_float (frac *. float_of_int n))))
        (0 -- 1000) (float_bound_inclusive 1.0))

(* Hostile names inside *valid* requests: the server must answer with a
   structured error (unknown program), not a parse failure or a crash. *)
let prop_hostile_names i =
  let srv = Lazy.force fuzz_server in
  let name = Printf.sprintf "%s-%d" hostile i in
  let reqs =
    [
      Protocol.Query
        { program = name; session = name; query = Protocol.Gmod { proc = name } };
      Protocol.Edit { program = name; session = name; script = name; lint = true };
      Protocol.Explain { program = name; session = name; fact = Some name; all = false };
      Protocol.Unload { program = name };
    ]
  in
  List.for_all
    (fun req ->
      let resp = Server.handle_line srv ~client:98 (Protocol.to_line req) in
      well_formed_response resp
      &&
      match Json.member "ok" (Result.get_ok (Json.parse resp)) with
      | Some (Json.Bool false) -> true
      | _ -> false)
    reqs

(* --- directed server tests --- *)

(* Happy path: every query class against the registry base must agree
   with a direct Core.Analyze.run through the same naming scheme. *)
let check_state ?(program = "p") srv ~client ~session mirror =
  let fresh = Core.Analyze.run mirror in
  let q query = Protocol.Query { program; session; query } in
  (match member "source" (send_ok srv ~client (q Protocol.Source)) with
  | Json.String s -> Alcotest.(check string) "source" (Ir.Pp.to_string mirror) s
  | j -> Alcotest.failf "source not a string: %s" (Json.to_string j));
  Ir.Prog.iter_procs mirror (fun p ->
      let pname = p.Ir.Prog.pname in
      let pid = p.Ir.Prog.pid in
      let vars_of req = str_list pname (member "vars" (send_ok srv ~client (q req))) in
      Alcotest.(check (list string))
        ("gmod " ^ pname)
        (Serve.Delta.set_names mirror fresh.Core.Analyze.gmod.(pid))
        (vars_of (Protocol.Gmod { proc = pname }));
      Alcotest.(check (list string))
        ("guse " ^ pname)
        (Serve.Delta.set_names mirror fresh.Core.Analyze.guse.(pid))
        (vars_of (Protocol.Guse { proc = pname }));
      (match member "pure" (send_ok srv ~client (q (Protocol.Purity { proc = pname }))) with
      | Json.Bool b ->
        Alcotest.(check bool)
          ("purity " ^ pname)
          (List.mem pid (Lint.Rule.pure_procs fresh))
          b
      | j -> Alcotest.failf "purity not a bool: %s" (Json.to_string j));
      let expect_pairs =
        List.map
          (fun (x, y) ->
            [
              Ir.Pp.qualified_var_name mirror x; Ir.Pp.qualified_var_name mirror y;
            ])
          (Core.Alias.pairs fresh.Core.Analyze.alias pid)
      in
      let got_pairs =
        match member "pairs" (send_ok srv ~client (q (Protocol.Alias { proc = pname }))) with
        | Json.List l -> List.map (str_list "alias pair") l
        | j -> Alcotest.failf "pairs not a list: %s" (Json.to_string j)
      in
      Alcotest.(check (list (list string))) ("alias " ^ pname) expect_pairs got_pairs);
  Ir.Prog.iter_vars mirror (fun v ->
      match v.Ir.Prog.kind with
      | Ir.Prog.Formal { proc; mode = Ir.Prog.By_ref; _ } ->
        let pname = (Ir.Prog.proc mirror proc).Ir.Prog.pname in
        let check_member what req expected =
          match member "member" (send_ok srv ~client (q req)) with
          | Json.Bool b ->
            Alcotest.(check bool)
              (Printf.sprintf "%s %s.%s" what pname v.Ir.Prog.vname)
              expected b
          | j -> Alcotest.failf "member not a bool: %s" (Json.to_string j)
        in
        check_member "rmod"
          (Protocol.Rmod { proc = pname; var = v.Ir.Prog.vname })
          (Core.Rmod.modified fresh.Core.Analyze.rmod v.Ir.Prog.vid);
        check_member "ruse"
          (Protocol.Ruse { proc = pname; var = v.Ir.Prog.vname })
          (Core.Rmod.modified fresh.Core.Analyze.ruse v.Ir.Prog.vid)
      | _ -> ());
  for site = 0 to Ir.Prog.n_sites mirror - 1 do
    let vars_of req = str_list "site" (member "vars" (send_ok srv ~client (q req))) in
    Alcotest.(check (list string))
      (Printf.sprintf "mod site %d" site)
      (Serve.Delta.set_names mirror (Core.Analyze.mod_of_site fresh site))
      (vars_of (Protocol.Mod_site { site }));
    Alcotest.(check (list string))
      (Printf.sprintf "use site %d" site)
      (Serve.Delta.set_names mirror (Core.Analyze.use_of_site fresh site))
      (vars_of (Protocol.Use_site { site }))
  done

let test_query_vs_batch () =
  let srv = Server.create () in
  let prog = normalize (Workload.Families.diamond ()) in
  load srv ~client:1 "p" prog;
  check_state srv ~client:1 ~session:"" prog;
  (* An unedited lint-delta is empty — and carries the key contract. *)
  let r =
    send_ok srv ~client:1
      (Protocol.Query { program = "p"; session = ""; query = Protocol.Lint_delta })
  in
  Alcotest.(check (list string)) "lint_added" [] (str_list "lint_added" (member "lint_added" r));
  Alcotest.(check (list string))
    "lint_removed" [] (str_list "lint_removed" (member "lint_removed" r))

let test_structured_errors () =
  let srv = Server.create () in
  load srv ~client:1 "p" (Workload.Families.diamond ());
  let expect_err what req frag =
    let m = send_err srv ~client:1 req in
    if not (has_substring m frag) then
      Alcotest.failf "%s: error %S does not mention %S" what m frag
  in
  let q query = Protocol.Query { program = "p"; session = ""; query } in
  expect_err "unknown program"
    (Protocol.Query { program = "nope"; session = ""; query = Protocol.Source })
    "unknown program";
  expect_err "unknown proc" (q (Protocol.Gmod { proc = "nope" })) "unknown procedure";
  expect_err "unknown var" (q (Protocol.Rmod { proc = "a"; var = "nope" }))
    "unknown variable";
  expect_err "bad site" (q (Protocol.Mod_site { site = 9999 })) "no such site";
  expect_err "bad site" (q (Protocol.Use_site { site = -1 })) "no such site";
  expect_err "bad script"
    (Protocol.Edit { program = "p"; session = ""; script = "gibberish here"; lint = false })
    "bad edit script";
  expect_err "bad fact"
    (Protocol.Explain { program = "p"; session = ""; fact = Some "wat"; all = false })
    "unrecognised fact";
  expect_err "bad load"
    (Protocol.Load { program = "p"; source = "program p; begin frob; end." })
    ":";
  expect_err "empty name" (Protocol.Load { program = ""; source = "" }) "empty";
  expect_err "unload unknown" (Protocol.Unload { program = "nope" }) "unknown program"

(* A deep by-ref chain: an edit at the bottom re-solves (nearly) every
   procedure, so the engine falls back to a full solve mid-session —
   and the session keeps answering, identically to from-scratch. *)
let test_edit_fallback () =
  let srv = Server.create () in
  let base = normalize (Workload.Families.ref_chain 6) in
  load srv ~client:1 "p" base;
  let r =
    send_ok srv ~client:1
      (Protocol.Edit
         { program = "p"; session = ""; script = "add-assign p6 g0 = 7"; lint = true })
  in
  (match member "fallbacks" r with
  | Json.Int n when n >= 1 -> ()
  | j -> Alcotest.failf "expected fallbacks >= 1, got %s" (Json.to_string j));
  (match member "edits" r with
  | Json.List [ Json.String _ ] -> ()
  | j -> Alcotest.failf "expected one rendered edit, got %s" (Json.to_string j));
  ignore (member "gmod_delta" r);
  ignore (member "guse_delta" r);
  ignore (member "lint_added" r);
  (* The session must now agree with a fresh analysis of the edited
     program. *)
  let mirror =
    match Incremental.Script.parse base "add-assign p6 g0 = 7" with
    | Ok [ (_, p') ] -> p'
    | _ -> Alcotest.fail "script did not parse"
  in
  check_state srv ~client:1 ~session:"" mirror

let test_unload_drops_sessions () =
  let srv = Server.create () in
  let base = Workload.Families.diamond () in
  load srv ~client:1 "p" base;
  ignore
    (send_ok srv ~client:1
       (Protocol.Edit
          { program = "p"; session = "s"; script = "add-proc zz writes=g0"; lint = false }));
  let session_source () =
    match
      member "source"
        (send_ok srv ~client:1
           (Protocol.Query { program = "p"; session = "s"; query = Protocol.Source }))
    with
    | Json.String s -> s
    | j -> Alcotest.failf "source not a string: %s" (Json.to_string j)
  in
  let edited = session_source () in
  Alcotest.(check bool) "session saw the edit" true (edited <> Ir.Pp.to_string base);
  ignore (send_ok srv ~client:1 (Protocol.Unload { program = "p" }));
  let m =
    send_err srv ~client:1
      (Protocol.Query { program = "p"; session = "s"; query = Protocol.Source })
  in
  Alcotest.(check bool) "unloaded" true (has_substring m "unknown program");
  (* Reload: the session did not survive the unload. *)
  load srv ~client:1 "p" base;
  Alcotest.(check string) "session dropped" (Ir.Pp.to_string base) (session_source ())

let test_explain () =
  let srv = Server.create () in
  load srv ~client:1 "p" (Workload.Families.ref_chain 4);
  let r =
    send_ok srv ~client:1
      (Protocol.Explain
         { program = "p"; session = ""; fact = Some "gmod:p1:x"; all = false })
  in
  (match member "witness" r with
  | Json.List (_ :: _) -> ()
  | j -> Alcotest.failf "expected a non-empty witness, got %s" (Json.to_string j));
  let r =
    send_ok srv ~client:1
      (Protocol.Explain { program = "p"; session = ""; fact = None; all = true })
  in
  (match (member "total" r, member "missing" r) with
  | Json.Int total, Json.Int 0 when total > 0 -> ()
  | t, m ->
    Alcotest.failf "explain all: total %s missing %s" (Json.to_string t)
      (Json.to_string m))

let test_stats_and_shutdown () =
  let srv = Server.create () in
  load srv ~client:1 "p" (Workload.Families.diamond ());
  ignore
    (send_ok srv ~client:1
       (Protocol.Query { program = "p"; session = ""; query = Protocol.Source }));
  let r = send_ok srv ~client:1 Protocol.Stats in
  (match member "programs" r with
  | Json.List (Json.Obj fields :: _) ->
    List.iter
      (fun k ->
        if not (List.mem_assoc k fields) then
          Alcotest.failf "stats program entry missing %S" k)
      [
        "name"; "procedures"; "sites"; "analyzed"; "sessions"; "edits";
        "call_levels"; "call_max_width";
      ]
  | j -> Alcotest.failf "stats.programs: %s" (Json.to_string j));
  (match member "recommended_domain_count" r with
  | Json.Int c when c >= 1 -> ()
  | j -> Alcotest.failf "stats.recommended_domain_count: %s" (Json.to_string j));
  ignore (member "requests" r);
  ignore (member "latency" r);
  Alcotest.(check bool) "not stopping" false (Server.stopping srv);
  let r = send_ok srv ~client:1 Protocol.Shutdown in
  (match member "stopping" r with
  | Json.Bool true -> ()
  | j -> Alcotest.failf "shutdown: %s" (Json.to_string j));
  Alcotest.(check bool) "stopping" true (Server.stopping srv)

(* --- concurrency: pooled batches behave exactly like serial ones --- *)

let batch_requests rand programs =
  let lines = ref [] in
  let push client req =
    lines := (client, Protocol.to_line ~id:(Json.Int (List.length !lines)) req) :: !lines
  in
  List.iteri
    (fun i (name, base) ->
      let client = i + 1 in
      let mirror = ref base in
      for _ = 1 to 2 do
        (match Workload.Edits.gen ~rand ~steps:1 !mirror with
        | [ (edit, prog') ] -> (
          match Incremental.Script.render !mirror edit with
          | Some script ->
            push client
              (Protocol.Edit { program = name; session = "s"; script; lint = true });
            mirror := prog'
          | None -> ())
        | _ -> ());
        Ir.Prog.iter_procs !mirror (fun p ->
            push client
              (Protocol.Query
                 {
                   program = name;
                   session = "s";
                   query = Protocol.Gmod { proc = p.Ir.Prog.pname };
                 }))
      done;
      push client (Protocol.Query { program = name; session = "s"; query = Protocol.Source }))
    programs;
  (* Interleave the two clients' requests so the batch alternates
     programs — the grouping logic has to untangle them. *)
  let a, b = List.partition (fun (c, _) -> c = 1) (List.rev !lines) in
  let rec weave xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | x :: xs, y :: ys -> x :: y :: weave xs ys
  in
  weave a b

let test_concurrent_sessions rand =
  let programs =
    [
      ("a", normalize (Helpers.flat_of_seed ~n:8 11));
      ("b", normalize (Helpers.nested_of_seed ~n:8 22));
    ]
  in
  let batch = batch_requests rand programs in
  let run srv =
    List.iter (fun (name, prog) -> load srv ~client:0 name prog) programs;
    Server.handle_batch srv batch
  in
  let serial = run (Server.create ()) in
  Par.Pool.with_pool ~jobs:4 (fun pool ->
      let pooled = run (Server.create ?pool ()) in
      Alcotest.(check (list string)) "pooled = serial" serial pooled)

(* --- the socket transport, end to end --- *)

let test_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sidefx-test-%d.sock" (Unix.getpid ()))
  in
  let srv = Server.create () in
  let d = Domain.spawn (fun () -> Server.serve_socket ~max_clients:8 srv ~path) in
  Fun.protect
    ~finally:(fun () ->
      (* Make sure the server domain winds down even when a check above
         failed before the scripted shutdown. *)
      (if not (Server.stopping srv) then
         try
           let c = Serve.Loadgen.socket_conn ~retries:5 ~path () in
           c.Serve.Loadgen.send (Protocol.to_line Protocol.Shutdown);
           (try ignore (c.Serve.Loadgen.recv ()) with _ -> ());
           c.Serve.Loadgen.close ()
         with _ -> ());
      Domain.join d)
    (fun () ->
      let prog = Workload.Families.diamond () in
      let conn = Serve.Loadgen.socket_conn ~path () in
      let roundtrip req =
        conn.Serve.Loadgen.send (Protocol.to_line ~id:(Json.Int 7) req);
        let j = parse_json (conn.Serve.Loadgen.recv ()) in
        Alcotest.(check bool)
          "id echo" true
          (Json.member "id" j = Some (Json.Int 7));
        (match member "ok" j with
        | Json.Bool true -> ()
        | _ -> Alcotest.failf "socket request failed: %s" (Json.to_string j));
        member "result" j
      in
      ignore
        (roundtrip (Protocol.Load { program = "p"; source = Ir.Pp.to_string prog }));
      let r =
        roundtrip
          (Protocol.Query
             { program = "p"; session = ""; query = Protocol.Gmod { proc = "a" } })
      in
      ignore (member "vars" r);
      ignore (roundtrip Protocol.Shutdown);
      conn.Serve.Loadgen.close ());
  Alcotest.(check bool) "server stopped" true (Server.stopping srv)

(* A small in-process loadgen run doubles as an integration test: the
   report must come back clean, with every edit it sent accepted. *)
let test_loadgen_clean rand =
  let seed = Random.State.int rand 10_000 in
  let srv = Server.create () in
  let programs =
    [
      ("flat", Ir.Pp.to_string (Helpers.flat_of_seed ~n:8 3));
      ("nested", Ir.Pp.to_string (Helpers.nested_of_seed ~n:8 4));
    ]
  in
  let r =
    Serve.Loadgen.run ~concurrency:8 ~clients:16 ~seed ~programs
      ~connect:(Serve.Loadgen.in_process srv) ()
  in
  if r.Serve.Loadgen.protocol_errors <> 0 then
    Alcotest.failf "loadgen saw %d protocol errors: %s"
      r.Serve.Loadgen.protocol_errors
      (String.concat "; " r.Serve.Loadgen.error_samples);
  Alcotest.(check bool) "requests flowed" true (r.Serve.Loadgen.requests > 16)

(* --- the central property: sessions are bit-identical to batch --- *)

(* Two sessions on one program, edited in interleaved rounds; after
   every edit, every queryable fact of *both* sessions must equal a
   from-scratch analysis of that session's mirror (and the untouched
   session must be unaffected — isolation). *)
let prop_session_equivalence seed =
  let base = normalize (Helpers.flat_of_seed ~n:6 seed) in
  let srv = Server.create () in
  load srv ~client:1 "p" base;
  check_state srv ~client:1 ~session:"" base;
  let rand = Random.State.make [| seed; 0x5e55 |] in
  let mirrors = [| ref base; ref base |] in
  let sessions = [| "a"; "b" |] in
  for round = 0 to 2 do
    let which = (round + Random.State.int rand 2) mod 2 in
    let mirror = mirrors.(which) in
    (match Workload.Edits.gen ~rand ~steps:1 !mirror with
    | [ (edit, prog') ] -> (
      match Incremental.Script.render !mirror edit with
      | Some script ->
        ignore
          (send_ok srv ~client:1
             (Protocol.Edit
                { program = "p"; session = sessions.(which); script; lint = false }));
        mirror := prog'
      | None -> ())
    | _ -> ());
    check_state srv ~client:1 ~session:sessions.(which) !(mirrors.(which));
    (* The *other* session must not have moved. *)
    let other = 1 - which in
    check_state srv ~client:1 ~session:sessions.(other) !(mirrors.(other))
  done;
  true

(* --- cross-layer soundness, through the protocol --- *)

(* Execute the program under the tracing interpreter and check that
   everything it observed at each executed call site is contained in
   the MOD(s)/USE(s) the *server* reports for that site — GMOD/GUSE
   projected to the site, encoded to JSON, decoded back to variable
   ids.  A defect anywhere in analysis, encoder, or decoder breaks
   containment. *)
let prop_protocol_sound seed =
  (* Reparse the pretty-printed source so interpreter and server agree
     on every id (pp ∘ compile is the identity on pp output). *)
  let prog = Helpers.compile (Ir.Pp.to_string (Helpers.flat_of_seed ~n:12 seed)) in
  let srv = Server.create () in
  load srv ~client:1 "p" prog;
  let o = Interp.run ~fuel:10_000 ~max_depth:256 prog in
  let decode req =
    let vars = str_list "vars" (member "vars" (send_ok srv ~client:1 req)) in
    List.map (Helpers.var_id prog) vars
  in
  let ok = ref true in
  Ir.Prog.iter_sites prog (fun s ->
      let sid = s.Ir.Prog.sid in
      if !ok && o.Interp.calls_executed.(sid) > 0 then begin
        let q query = Protocol.Query { program = "p"; session = ""; query } in
        let served_mod = decode (q (Protocol.Mod_site { site = sid })) in
        let served_use = decode (q (Protocol.Use_site { site = sid })) in
        let contained observed served =
          List.for_all (fun v -> List.mem v served) (Bitvec.to_list observed)
        in
        if not (contained (Interp.observed_mod o sid) served_mod) then begin
          ok := false;
          QCheck.Test.fail_reportf "site %d: observed MOD not in served MOD(s)" sid
        end;
        if not (contained (Interp.observed_use o sid) served_use) then begin
          ok := false;
          QCheck.Test.fail_reportf "site %d: observed USE not in served USE(s)" sid
        end
      end);
  !ok

let () =
  Helpers.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "requests round-trip" `Quick test_protocol_roundtrip;
          Alcotest.test_case "malformed lines rejected" `Quick test_protocol_malformed;
          Alcotest.test_case "op classes" `Quick test_op_class;
        ] );
      ( "protocol-fuzz",
        [
          Helpers.qtest ~count:300 "raw bytes always answered" arb_garbage
            prop_server_answers;
          Helpers.qtest ~count:300 "json soup always answered" arb_json_soup
            prop_server_answers;
          Helpers.qtest ~count:300 "truncated requests always answered" arb_truncated
            prop_server_answers;
          Helpers.qtest ~count:50 "hostile names get structured errors"
            QCheck.(make ~print:string_of_int Gen.(0 -- 1000))
            prop_hostile_names;
        ] );
      ( "server",
        [
          Alcotest.test_case "queries match direct analysis" `Quick test_query_vs_batch;
          Alcotest.test_case "structured errors" `Quick test_structured_errors;
          Alcotest.test_case "mid-session fallback to full solve" `Quick
            test_edit_fallback;
          Alcotest.test_case "unload drops sessions" `Quick test_unload_drops_sessions;
          Alcotest.test_case "explain facts and --all" `Quick test_explain;
          Alcotest.test_case "stats and shutdown" `Quick test_stats_and_shutdown;
          Helpers.seeded_case "pooled batch = serial batch" `Quick
            test_concurrent_sessions;
          Alcotest.test_case "socket transport round-trip" `Quick test_socket;
          Helpers.seeded_case "loadgen runs clean in-process" `Quick test_loadgen_clean;
        ] );
      ( "equivalence",
        [
          Helpers.qtest ~count:200 "session facts = from-scratch analysis"
            Helpers.arb_flat_prog prop_session_equivalence;
        ] );
      ( "soundness",
        [
          Helpers.qtest ~count:60 "observed effects within served MOD/USE"
            Helpers.arb_flat_prog prop_protocol_sound;
        ] );
    ]
